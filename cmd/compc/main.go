// Command compc is the COMP source-to-source compiler driver: it reads an
// offload-annotated MiniC file, applies the paper's optimizations, and
// prints the transformed source plus a report of what was applied.
//
// Usage:
//
//	compc file.c                       # all optimizations
//	compc -streaming=false file.c      # disable individual passes
//	compc -passes merge,streaming file.c  # explicit pipeline spec
//	compc -blocks 16 file.c            # fix the streaming block count
//	compc -tune file.c                 # pick pipeline + blocks with the cost-model tuner
//	compc -tune -tune-model m.json file.c  # persist the tuner's learned model across runs
//	compc -report file.c               # report only, no source
//	compc -remarks file.c              # full remark trail on stderr
//	compc -remarks-json file.c         # remark trail as JSON on stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"comp/internal/core"
	"comp/internal/pass"
	"comp/internal/runtime"
	"comp/internal/tune"
	"comp/internal/vm"
)

// setExecMode installs the requested MiniC engine for the whole process,
// or writes a one-line usage error naming the valid modes to stderr and
// returns the usage exit code.
func setExecMode(mode string, stderr io.Writer) int {
	if err := vm.SetExecMode(mode); err != nil {
		fmt.Fprintln(stderr, "compc:", err)
		return 2
	}
	return 0
}

func main() {
	streaming := flag.Bool("streaming", true, "enable data streaming (SIII)")
	reduceMem := flag.Bool("reduce-memory", true, "enable the double-buffer memory reduction (SIII-B)")
	persistent := flag.Bool("persistent", true, "enable MIC thread reuse (SIII-C)")
	merge := flag.Bool("merge", true, "enable offload merging (SIII-C)")
	regularize := flag.Bool("regularize", true, "enable regularization (SIV)")
	blocks := flag.Int("blocks", 0, "streaming block count (0 = default)")
	passes := flag.String("passes", "", "explicit pipeline `spec` (e.g. \"merge,streaming\"); overrides the per-pass flags")
	reportOnly := flag.Bool("report", false, "print only the optimization report")
	remarks := flag.Bool("remarks", false, "print the full remark trail (every applied and skipped decision) on stderr")
	remarksJSON := flag.Bool("remarks-json", false, "print the remark trail as JSON on stdout instead of the source")
	auto := flag.Bool("auto", false, "insert offload clauses into plain OpenMP code first (Apricot mode)")
	tuneFlag := flag.Bool("tune", false, "pick the pass pipeline and block count with the cost-model tuner (internal/tune); spends simulated probe runs, overrides -passes and the per-pass flags")
	tuneModel := flag.String("tune-model", "", "JSON `file` the -tune learned model is loaded from and saved back to (repeat compiles converge in 0-2 probes)")
	execMode := flag.String("exec", vm.ExecVM, "MiniC execution engine for measured tuning runs: vm, interp, or columnar")
	flag.Parse()

	if code := setExecMode(*execMode, os.Stderr); code != 0 {
		os.Exit(code)
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: compc [flags] file.c")
		fmt.Fprintf(os.Stderr, "known passes for -passes: %v\n", pass.KnownPasses())
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "compc:", err)
		os.Exit(1)
	}
	opt := core.Options{
		Streaming:    *streaming,
		ReduceMemory: *reduceMem,
		Persistent:   *persistent,
		Merge:        *merge,
		Regularize:   *regularize,
		Blocks:       *blocks,
	}
	var res *core.Result
	switch {
	case *tuneFlag:
		res, err = tuneCompile(string(src), flag.Arg(0), *tuneModel)
	case *passes != "":
		spec := *passes
		if *auto {
			spec = "auto-offload," + spec
		}
		res, err = core.OptimizeSpec(string(src), spec, opt.PassConfig())
	case *auto:
		res, err = core.OffloadAndOptimize(string(src), opt)
	default:
		res, err = core.Optimize(string(src), opt)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "compc:", err)
		os.Exit(1)
	}
	if *remarks {
		fmt.Fprint(os.Stderr, res.Report.Remarks.Render())
	} else {
		for _, a := range res.Report.Applied {
			fmt.Fprintf(os.Stderr, "applied: %s\n", a)
		}
		for _, n := range res.Report.Notes {
			fmt.Fprintf(os.Stderr, "note: %s\n", n)
		}
	}
	if *remarksJSON {
		if err := res.Report.Remarks.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "compc:", err)
			os.Exit(1)
		}
		return
	}
	if !*reportOnly {
		fmt.Print(res.Source())
	}
}

// tuneCompile runs the cost-model tuner on the input (probing candidate
// configurations by simulated execution) and compiles the winning
// pipeline. With a model path the learned predictor persists across
// invocations, so recompiling the same or a similar file converges in 0-2
// probes.
func tuneCompile(src, key, modelPath string) (*core.Result, error) {
	model := tune.NewModel()
	if modelPath != "" {
		var err error
		if model, err = tune.LoadModel(modelPath); err != nil {
			return nil, err
		}
	}
	cfg := runtime.DefaultConfig()
	cfg.DisableTrace = true
	d, err := core.TuneSource(&tune.Tuner{Model: model}, key, src, cfg, nil)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "tuned: %s\n", d.Remark().Reason)
	if modelPath != "" {
		if err := model.Save(modelPath); err != nil {
			return nil, err
		}
	}
	return core.OptimizeTuned(src, &d.TuneDecision)
}
