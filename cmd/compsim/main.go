// Command compsim runs a MiniC program on the simulated CPU + Xeon Phi
// platform and reports the execution statistics, optionally optimizing the
// program first and optionally dumping the event timeline.
//
// Usage:
//
//	compsim file.c                  # run as written
//	compsim -optimize file.c        # run through the COMP compiler first
//	compsim -optimize -blocks auto file.c  # pick the block count by measurement
//	compsim -tune file.c            # pick pipeline + blocks with the cost-model tuner
//	compsim -tune -tune-model m.json file.c  # persist the tuner's learned model
//	compsim -passes merge,streaming file.c # explicit pass pipeline (implies -optimize)
//	compsim -cpu file.c             # strip offload pragmas, run host-only
//	compsim -streams 4 file.c       # run 4 concurrent copies on 4 device streams
//	compsim -streams 4 -requests 8 file.c  # 8 queued requests over 4 streams
//	compsim -trace out.json file.c  # dump the Chrome trace_event timeline
//	compsim -timeline file.c        # print an ASCII timeline
//	compsim -spans file.c           # print the raw span list
//	compsim -report file.c          # print derived utilization metrics
//	compsim -faults 0.2 file.c      # inject faults at rate 0.2 per operation
//
// A -trace file loads directly in chrome://tracing or https://ui.perfetto.dev.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"comp/internal/core"
	"comp/internal/interp"
	"comp/internal/minic"
	"comp/internal/pass"
	"comp/internal/runtime"
	"comp/internal/sim/engine"
	"comp/internal/sim/fault"
	"comp/internal/sim/metrics"
	"comp/internal/transform"
	tunepkg "comp/internal/tune"
	"comp/internal/vm"
	"comp/internal/workloads"
)

// setExecMode installs the requested MiniC engine for the whole process,
// or writes a one-line usage error naming the valid modes to stderr and
// returns the usage exit code.
func setExecMode(mode string, stderr io.Writer) int {
	if err := vm.SetExecMode(mode); err != nil {
		fmt.Fprintln(stderr, "compsim:", err)
		return 2
	}
	return 0
}

func main() {
	optimize := flag.Bool("optimize", false, "apply the COMP optimizations before running")
	cpuOnly := flag.Bool("cpu", false, "strip offload pragmas and run on the host model only")
	trace := flag.String("trace", "", "write the timeline as Chrome trace_event JSON to this file (\"-\" = stdout)")
	timeline := flag.Bool("timeline", false, "print an ASCII timeline of the run")
	spans := flag.Bool("spans", false, "print the raw simulated span list")
	report := flag.Bool("report", false, "print derived per-resource utilization metrics")
	width := flag.Int("timeline-width", 100, "column width of the -timeline chart")
	blocks := flag.String("blocks", "0", "streaming block count when optimizing (0 = default, \"auto\" = tune by measurement)")
	passes := flag.String("passes", "", "explicit pass pipeline `spec`, e.g. \"merge,regularize,streaming\" (implies -optimize)")
	streams := flag.Int("streams", 1, "device streams; >1 runs concurrent copies through the multi-stream scheduler")
	requests := flag.Int("requests", 0, "concurrent requests for the scheduler (0 = one per stream)")
	faults := flag.Float64("faults", 0, "uniform fault injection rate in [0,1] for DMA/launch/hang/alloc (0 = off)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the deterministic fault schedule")
	tuneFlag := flag.Bool("tune", false, "pick the pass pipeline and block count with the cost-model tuner before running (overrides -optimize/-passes/-blocks)")
	tuneModel := flag.String("tune-model", "", "JSON `file` the -tune learned model is loaded from and saved back to")
	execMode := flag.String("exec", vm.ExecVM, "MiniC execution engine: vm, interp, or columnar")
	flag.Parse()

	if code := setExecMode(*execMode, os.Stderr); code != 0 {
		os.Exit(code)
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: compsim [flags] file.c")
		fmt.Fprintln(os.Stderr, "  e.g. compsim -optimize -blocks auto file.c     (tune block count by measurement)")
		fmt.Fprintln(os.Stderr, "       compsim -passes merge,streaming file.c   (explicit pass pipeline)")
		fmt.Fprintln(os.Stderr, "       compsim -streams 4 -requests 8 file.c    (8 requests over 4 device streams)")
		fmt.Fprintf(os.Stderr, "  known passes: %v\n", pass.KnownPasses())
		flag.PrintDefaults()
		os.Exit(2)
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	src := string(raw)

	cfg := runtime.DefaultConfig()
	if *faults != 0 {
		cfg.Faults = fault.Uniform(*faultSeed, *faults)
	}
	if err := cfg.Validate(); err != nil {
		fail(err)
	}

	if *cpuOnly {
		f, err := minic.Parse(src)
		if err != nil {
			fail(err)
		}
		workloads.StripOffload(f)
		src = minic.Print(f)
	} else if *tuneFlag {
		src = tuneSource(src, cfg, *tuneModel)
	} else if *optimize || *passes != "" {
		nblocks, err := resolveBlocks(*blocks, src, cfg)
		if err != nil {
			fail(err)
		}
		opt := core.DefaultOptions()
		opt.Blocks = nblocks
		var res *core.Result
		if *passes != "" {
			res, err = core.OptimizeSpec(src, *passes, opt.PassConfig())
		} else {
			res, err = core.Optimize(src, opt)
		}
		if err != nil {
			fail(err)
		}
		for _, a := range res.Report.Applied {
			fmt.Fprintf(os.Stderr, "applied: %s\n", a)
		}
		src = res.Source()
	}

	nReq := *requests
	if nReq == 0 {
		nReq = *streams
	}
	if *streams > 1 || nReq > 1 {
		runScheduler(src, cfg, *streams, nReq, *spans, *timeline, *report, *width, *trace)
		return
	}

	prog, err := interp.Compile(src)
	if err != nil {
		fail(err)
	}
	rt := runtime.New(cfg)
	if err := prog.Run(rt); err != nil {
		fail(err)
	}
	st := rt.Finish()
	if out := prog.Output(); out != "" {
		fmt.Print(out)
	}
	fmt.Printf("time            %v\n", st.Time)
	fmt.Printf("host busy       %v\n", st.HostBusy)
	fmt.Printf("device busy     %v\n", st.DeviceBusy)
	fmt.Printf("transfer busy   %v\n", st.TransferBusy)
	fmt.Printf("overlap         %v\n", st.Overlap)
	fmt.Printf("kernel launches %d\n", st.KernelLaunches)
	fmt.Printf("dma transfers   %d\n", st.Transfers)
	fmt.Printf("bytes in/out    %d / %d\n", st.BytesIn, st.BytesOut)
	fmt.Printf("peak device mem %d bytes\n", st.PeakDeviceBytes)
	if *faults > 0 {
		fmt.Printf("faults injected %d\n", st.FaultsInjected)
		fmt.Printf("retries         %d\n", st.Retries)
		fmt.Printf("watchdog fires  %d\n", st.WatchdogFires)
	}
	for _, w := range st.Fallbacks {
		fmt.Printf("FALLBACK: %s\n", w)
	}
	for _, w := range st.FaultWarnings {
		fmt.Printf("FAULT: %s\n", w)
	}
	for _, w := range st.RaceWarnings {
		fmt.Printf("WARNING: %s\n", w)
	}
	for _, w := range st.DeadlockWarnings {
		fmt.Printf("WARNING: %s\n", w)
	}
	dumpTrace(rt.Trace(), st.Time, *spans, *timeline, *report, *width, *trace)
}

// tuneSource runs the cost-model tuner on the program (probing candidate
// pipelines by simulated execution on the same platform configuration the
// real run uses, minus fault injection noise) and returns the winning
// compilation. With a model path the learned predictor persists across
// invocations.
func tuneSource(src string, cfg runtime.Config, modelPath string) string {
	model := tunepkg.NewModel()
	if modelPath != "" {
		var err error
		if model, err = tunepkg.LoadModel(modelPath); err != nil {
			fail(err)
		}
	}
	probeCfg := cfg
	probeCfg.Faults = fault.Config{}
	probeCfg.DisableTrace = true
	d, err := core.TuneSource(&tunepkg.Tuner{Model: model}, flag.Arg(0), src, probeCfg, nil)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "tuned: %s\n", d.Remark().Reason)
	if modelPath != "" {
		if err := model.Save(modelPath); err != nil {
			fail(err)
		}
	}
	res, err := core.OptimizeTuned(src, &d.TuneDecision)
	if err != nil {
		fail(err)
	}
	for _, a := range res.Report.Applied {
		fmt.Fprintf(os.Stderr, "applied: %s\n", a)
	}
	return res.Source()
}

// resolveBlocks parses the -blocks flag. "auto" tunes by measurement: one
// unoptimized run seeds the §III-B model, then transform.AutoTuner probes
// optimized runs at candidate counts and keeps the fastest.
func resolveBlocks(flagVal, src string, cfg runtime.Config) (int, error) {
	if flagVal != "auto" {
		n, err := strconv.Atoi(flagVal)
		if err != nil {
			return 0, fmt.Errorf("-blocks must be an integer or \"auto\": %v", err)
		}
		return n, nil
	}
	measure := func(nblocks int) (engine.Duration, error) {
		opt := core.DefaultOptions()
		opt.Blocks = nblocks
		res, err := core.Optimize(src, opt)
		if err != nil {
			return 0, err
		}
		p, err := interp.Compile(res.Source())
		if err != nil {
			return 0, err
		}
		r, err := runtime.Run(p, cfg)
		if err != nil {
			return 0, err
		}
		return r.Stats.Time, nil
	}
	// Profile run of the program as written, for the analytic seed.
	p, err := interp.Compile(src)
	if err != nil {
		return 0, err
	}
	base, err := runtime.Run(p, cfg)
	if err != nil {
		return 0, err
	}
	seed := core.ProfileFromStats(base.Stats, cfg.MIC.LaunchOverhead).Blocks()
	var tuner transform.AutoTuner
	tuned, err := tuner.Tune(flag.Arg(0), seed, measure)
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(os.Stderr, "tuned blocks: %d (model seed %d, %d probes, best %v)\n",
		tuned.Blocks, seed, tuned.Probes, tuned.Time)
	return tuned.Blocks, nil
}

// runScheduler executes n concurrent copies of the program through the
// multi-stream scheduler and prints global, per-stream and per-request
// summaries.
func runScheduler(src string, cfg runtime.Config, streams, n int, spans, timeline, report bool, width int, trace string) {
	s, err := runtime.NewScheduler(cfg, streams)
	if err != nil {
		fail(err)
	}
	for i := 0; i < n; i++ {
		p, err := interp.Compile(src)
		if err != nil {
			fail(err)
		}
		s.Submit(runtime.Request{Label: fmt.Sprintf("req-%02d", i), Program: p})
	}
	res, err := s.Run()
	if err != nil {
		fail(err)
	}
	st := res.Stats
	fmt.Printf("time                 %v\n", st.Time)
	fmt.Printf("cross-stream overlap %v\n", st.CrossStreamOverlap)
	fmt.Printf("transfer busy        %v\n", st.TransferBusy)
	fmt.Printf("kernel launches      %d\n", st.KernelLaunches)
	fmt.Printf("dma transfers        %d\n", st.Transfers)
	fmt.Printf("bytes in/out         %d / %d\n", st.BytesIn, st.BytesOut)
	fmt.Printf("peak device mem      %d bytes\n", st.PeakDeviceBytes)
	if st.FaultsInjected > 0 {
		fmt.Printf("faults injected      %d\n", st.FaultsInjected)
		fmt.Printf("retries              %d\n", st.Retries)
		fmt.Printf("watchdog fires       %d\n", st.WatchdogFires)
	}
	for _, ss := range st.Streams {
		fmt.Printf("stream %d: cores=%d threads=%d requests=%d busy=%v host=%v overlap=%v queue-wait=%v launches=%d\n",
			ss.StreamID, ss.Cores, ss.Threads, ss.Requests, ss.DeviceBusy, ss.HostBusy,
			ss.Overlap, ss.QueueWait, ss.KernelLaunches)
	}
	for _, rq := range st.Requests {
		fmt.Printf("request %s: stream=%d wait=%v start=%v end=%v\n",
			rq.Label, rq.StreamID, rq.QueueWait, rq.Start, rq.End)
		for _, w := range rq.Fallbacks {
			fmt.Printf("  FALLBACK: %s\n", w)
		}
		for _, w := range rq.FaultWarnings {
			fmt.Printf("  FAULT: %s\n", w)
		}
		for _, w := range rq.RaceWarnings {
			fmt.Printf("  WARNING: %s\n", w)
		}
		for _, w := range rq.DeadlockWarnings {
			fmt.Printf("  WARNING: %s\n", w)
		}
	}
	dumpTrace(res.Trace, st.Time, spans, timeline, report, width, trace)
}

// dumpTrace serves the timeline flags shared by both execution paths.
func dumpTrace(tr *engine.Trace, makespan engine.Duration, spans, timeline, report bool, width int, trace string) {
	if spans {
		fmt.Print(tr.String())
	}
	if timeline {
		tr.Timeline(os.Stdout, width)
	}
	if report {
		fmt.Print(metrics.FromTrace(tr, makespan).Format())
	}
	if trace != "" {
		if err := writeChromeTrace(trace, tr); err != nil {
			fail(err)
		}
	}
}

// writeChromeTrace dumps the trace in Chrome trace_event JSON to the given
// path, or to stdout for "-".
func writeChromeTrace(path string, tr *engine.Trace) error {
	if path == "-" {
		return tr.ChromeJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.ChromeJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "compsim:", err)
	os.Exit(1)
}
