// Command compsim runs a MiniC program on the simulated CPU + Xeon Phi
// platform and reports the execution statistics, optionally optimizing the
// program first and optionally dumping the event timeline.
//
// Usage:
//
//	compsim file.c                  # run as written
//	compsim -optimize file.c        # run through the COMP compiler first
//	compsim -cpu file.c             # strip offload pragmas, run host-only
//	compsim -trace out.json file.c  # dump the Chrome trace_event timeline
//	compsim -timeline file.c        # print an ASCII timeline
//	compsim -spans file.c           # print the raw span list
//	compsim -report file.c          # print derived utilization metrics
//	compsim -faults 0.2 file.c      # inject faults at rate 0.2 per operation
//
// A -trace file loads directly in chrome://tracing or https://ui.perfetto.dev.
package main

import (
	"flag"
	"fmt"
	"os"

	"comp/internal/core"
	"comp/internal/interp"
	"comp/internal/minic"
	"comp/internal/runtime"
	"comp/internal/sim/engine"
	"comp/internal/sim/fault"
	"comp/internal/sim/metrics"
	"comp/internal/workloads"
)

func main() {
	optimize := flag.Bool("optimize", false, "apply the COMP optimizations before running")
	cpuOnly := flag.Bool("cpu", false, "strip offload pragmas and run on the host model only")
	trace := flag.String("trace", "", "write the timeline as Chrome trace_event JSON to this file (\"-\" = stdout)")
	timeline := flag.Bool("timeline", false, "print an ASCII timeline of the run")
	spans := flag.Bool("spans", false, "print the raw simulated span list")
	report := flag.Bool("report", false, "print derived per-resource utilization metrics")
	width := flag.Int("timeline-width", 100, "column width of the -timeline chart")
	blocks := flag.Int("blocks", 0, "streaming block count when optimizing (0 = default)")
	faults := flag.Float64("faults", 0, "uniform fault injection rate in [0,1] for DMA/launch/hang/alloc (0 = off)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the deterministic fault schedule")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: compsim [flags] file.c")
		flag.PrintDefaults()
		os.Exit(2)
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	src := string(raw)
	if *cpuOnly {
		f, err := minic.Parse(src)
		if err != nil {
			fail(err)
		}
		workloads.StripOffload(f)
		src = minic.Print(f)
	} else if *optimize {
		opt := core.DefaultOptions()
		opt.Blocks = *blocks
		res, err := core.Optimize(src, opt)
		if err != nil {
			fail(err)
		}
		for _, a := range res.Report.Applied {
			fmt.Fprintf(os.Stderr, "applied: %s\n", a)
		}
		src = res.Source()
	}

	prog, err := interp.Compile(src)
	if err != nil {
		fail(err)
	}
	cfg := runtime.DefaultConfig()
	if *faults != 0 {
		cfg.Faults = fault.Uniform(*faultSeed, *faults)
	}
	if err := cfg.Validate(); err != nil {
		fail(err)
	}
	rt := runtime.New(cfg)
	if err := prog.Run(rt); err != nil {
		fail(err)
	}
	st := rt.Finish()
	if out := prog.Output(); out != "" {
		fmt.Print(out)
	}
	fmt.Printf("time            %v\n", st.Time)
	fmt.Printf("host busy       %v\n", st.HostBusy)
	fmt.Printf("device busy     %v\n", st.DeviceBusy)
	fmt.Printf("transfer busy   %v\n", st.TransferBusy)
	fmt.Printf("overlap         %v\n", st.Overlap)
	fmt.Printf("kernel launches %d\n", st.KernelLaunches)
	fmt.Printf("dma transfers   %d\n", st.Transfers)
	fmt.Printf("bytes in/out    %d / %d\n", st.BytesIn, st.BytesOut)
	fmt.Printf("peak device mem %d bytes\n", st.PeakDeviceBytes)
	if *faults > 0 {
		fmt.Printf("faults injected %d\n", st.FaultsInjected)
		fmt.Printf("retries         %d\n", st.Retries)
		fmt.Printf("watchdog fires  %d\n", st.WatchdogFires)
	}
	for _, w := range st.Fallbacks {
		fmt.Printf("FALLBACK: %s\n", w)
	}
	for _, w := range st.FaultWarnings {
		fmt.Printf("FAULT: %s\n", w)
	}
	for _, w := range st.RaceWarnings {
		fmt.Printf("WARNING: %s\n", w)
	}
	for _, w := range st.DeadlockWarnings {
		fmt.Printf("WARNING: %s\n", w)
	}
	tr := rt.Trace()
	if *spans {
		fmt.Print(tr.String())
	}
	if *timeline {
		tr.Timeline(os.Stdout, *width)
	}
	if *report {
		fmt.Print(metrics.FromTrace(tr, st.Time).Format())
	}
	if *trace != "" {
		if err := writeChromeTrace(*trace, tr); err != nil {
			fail(err)
		}
	}
}

// writeChromeTrace dumps the trace in Chrome trace_event JSON to the given
// path, or to stdout for "-".
func writeChromeTrace(path string, tr *engine.Trace) error {
	if path == "-" {
		return tr.ChromeJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.ChromeJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "compsim:", err)
	os.Exit(1)
}
