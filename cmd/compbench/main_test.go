package main

import (
	"bytes"
	"strings"
	"testing"

	"comp/internal/vm"
)

// TestExecFlagTable pins the -exec contract: the three engine names are
// accepted silently, anything else is rejected with exit code 2 and a
// one-line usage error that names every valid mode.
func TestExecFlagTable(t *testing.T) {
	defer vm.SetExecMode(vm.ExecVM)
	cases := []struct {
		mode string
		ok   bool
	}{
		{"vm", true},
		{"interp", true},
		{"columnar", true},
		{"", false},
		{"VM", false},
		{"Columnar", false},
		{"columnar ", false},
		{"jit", false},
		{"vm,interp", false},
	}
	for _, tc := range cases {
		var errb bytes.Buffer
		code := setExecMode(tc.mode, &errb)
		if tc.ok {
			if code != 0 || errb.Len() != 0 {
				t.Errorf("-exec %q: exit %d, stderr %q; want silent success", tc.mode, code, errb.String())
			}
			continue
		}
		if code != 2 {
			t.Errorf("-exec %q: exit %d, want 2", tc.mode, code)
		}
		out := errb.String()
		if strings.Count(out, "\n") != 1 {
			t.Errorf("-exec %q: usage error is not one line:\n%s", tc.mode, out)
		}
		for _, want := range []string{"compbench:", "unknown exec mode", "interp", "vm", "columnar"} {
			if !strings.Contains(out, want) {
				t.Errorf("-exec %q: usage error lacks %q: %s", tc.mode, want, out)
			}
		}
	}
}
