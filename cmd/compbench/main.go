// Command compbench regenerates the paper's evaluation: every figure and
// table from §VI plus the design ablations.
//
// Usage:
//
//	compbench                 # all figures and tables
//	compbench -only fig12     # one figure (fig1, fig4, fig10..fig15, table2, table3)
//	compbench -ablations      # block-size sweep and design ablations
//	compbench -streams 4      # multi-stream scheduler + autotuner report
//	compbench -serve          # serving-layer load report (steady + overload)
//	compbench -fleet          # sharded fleet scenario table (steady, overload, device-loss)
//	compbench -scenarios      # built-in scenario table: admitted/rejected/deadline-miss/fault-recovery
//	compbench -tune           # cost-model tuner vs exhaustive oracle, cold/warm/held-out
//	compbench -vmbench        # bytecode VM vs tree-walker on every workload
//	compbench -columnar       # columnar batch tier vs scalar VM
//	compbench -sweep          # pick block counts by exhaustive sweep (oracle)
//	compbench -passes merge,streaming  # per-pass applied/skipped table for a pipeline spec
//
// Output files. Every report mode also writes a committed JSON artifact
// (pass "-" to print to stdout only); these are the goldens the env-gated
// regression guards in internal/bench compare fresh runs against:
//
//	-streams   → -streams-out    (default BENCH_streams.json)
//	-fleet     → -fleet-out      (default BENCH_fleet.json)
//	-vmbench   → -vmbench-out    (default BENCH_vm.json)
//	-columnar  → -columnar-out   (default BENCH_columnar.json)
//	-tune      → -tune-out       (default BENCH_tune.json)
//	             -tune-model     (default TUNE_model.json, the trained predictor)
//	-serve     → -serve-out      (default "-": stdout only, no committed golden)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"comp/internal/bench"
	"comp/internal/vm"
)

// setExecMode installs the requested MiniC engine for the whole process,
// or writes a one-line usage error naming the valid modes to stderr and
// returns the usage exit code.
func setExecMode(mode string, stderr io.Writer) int {
	if err := vm.SetExecMode(mode); err != nil {
		fmt.Fprintln(stderr, "compbench:", err)
		return 2
	}
	return 0
}

func main() {
	only := flag.String("only", "", "regenerate a single figure/table by id (e.g. fig12, table3)")
	ablations := flag.Bool("ablations", false, "run the design ablations instead of the paper figures")
	traceDir := flag.String("tracedir", "", "dump each run's Chrome trace + metrics report into this directory")
	streams := flag.Int("streams", 0, "run the multi-stream scheduler report with this many streams (0 = off)")
	requests := flag.Int("requests", 0, "concurrent requests per workload for -streams (0 = streams)")
	streamsOut := flag.String("streams-out", "BENCH_streams.json", "write the -streams report as JSON to this file (\"-\" = stdout only)")
	sweep := flag.Bool("sweep", false, "use the exhaustive block-count sweep instead of the autotuner")
	fleetMode := flag.Bool("fleet", false, "replay the deterministic fleet scenario table (steady, overload, device-loss) against a sharded multi-device fleet")
	fleetHosts := flag.Int("fleet-hosts", 2, "simulated hosts for -fleet")
	fleetDevices := flag.Int("fleet-devices", 2, "devices per host for -fleet")
	fleetRequests := flag.Int("fleet-requests", 48, "requests per scenario for -fleet")
	fleetOut := flag.String("fleet-out", "BENCH_fleet.json", "write the -fleet report as JSON to this file (\"-\" = stdout only)")
	serveMode := flag.Bool("serve", false, "drive the offload serving layer with a synthetic client fleet")
	serveClients := flag.Int("serve-clients", 32, "concurrent clients for -serve")
	servePer := flag.Int("serve-requests", 2, "requests per client for -serve")
	serveOut := flag.String("serve-out", "-", "write the -serve report as JSON to this file (\"-\" = stdout only)")
	passes := flag.String("passes", "", "compile every benchmark under this pipeline `spec` (e.g. \"merge,regularize,streaming\") and print the per-pass applied/skipped table with full remark trails")
	scenarios := flag.Bool("scenarios", false, "replay every built-in serving scenario (internal/scenario) and print the per-scenario admission/fault-recovery table")
	scenarioSeed := flag.Int64("scenario-seed", 1, "trace seed for -scenarios")
	execMode := flag.String("exec", vm.ExecVM, "MiniC execution engine: vm, interp, or columnar")
	vmbench := flag.Bool("vmbench", false, "benchmark the bytecode VM against the tree-walker on every workload")
	vmbenchIters := flag.Int("vmbench-iters", 3, "full runs per engine for -vmbench (best-of)")
	vmbenchOut := flag.String("vmbench-out", "BENCH_vm.json", "write the -vmbench report as JSON to this file (\"-\" = stdout only)")
	columnar := flag.Bool("columnar", false, "benchmark the columnar batch tier against the scalar VM on every workload plus the element-wise kernel set (AoS vs SoA included)")
	columnarIters := flag.Int("columnar-iters", 3, "full runs per mode for -columnar (best-of)")
	columnarOut := flag.String("columnar-out", "BENCH_columnar.json", "write the -columnar report as JSON to this file (\"-\" = stdout only)")
	tuneMode := flag.Bool("tune", false, "run the cost-model tuner against the exhaustive oracle on every workload (cold, warm-model repeat, held-out machine)")
	tuneOut := flag.String("tune-out", "BENCH_tune.json", "write the -tune report as JSON to this file (\"-\" = stdout only)")
	tuneModel := flag.String("tune-model", "TUNE_model.json", "write the -tune trained predictor model to this file (\"-\" = don't write)")
	flag.Parse()

	if code := setExecMode(*execMode, os.Stderr); code != 0 {
		os.Exit(code)
	}

	r := bench.NewRunner()
	r.UseSweep = *sweep
	if *traceDir != "" {
		r.SetTraceDir(*traceDir)
	}

	if *tuneMode {
		rep, model, err := r.TuneBench()
		if err != nil {
			fmt.Fprintln(os.Stderr, "compbench:", err)
			os.Exit(1)
		}
		fmt.Print(rep.Format())
		writeJSON(*tuneOut, rep.WriteJSON)
		if *tuneModel != "-" {
			if err := model.Save(*tuneModel); err != nil {
				fmt.Fprintln(os.Stderr, "compbench:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *tuneModel)
		}
		return
	}

	if *columnar {
		rep, err := r.ColumnarBench(*columnarIters)
		if err != nil {
			fmt.Fprintln(os.Stderr, "compbench:", err)
			os.Exit(1)
		}
		fmt.Print(rep.Format())
		writeJSON(*columnarOut, rep.WriteJSON)
		return
	}

	if *vmbench {
		rep, err := r.VMBench(*vmbenchIters)
		if err != nil {
			fmt.Fprintln(os.Stderr, "compbench:", err)
			os.Exit(1)
		}
		fmt.Print(rep.Format())
		writeJSON(*vmbenchOut, rep.WriteJSON)
		return
	}

	if *fleetMode {
		rep, err := r.FleetLoad(*fleetHosts, *fleetDevices, *fleetRequests)
		if err != nil {
			fmt.Fprintln(os.Stderr, "compbench:", err)
			os.Exit(1)
		}
		fmt.Print(rep.Format())
		writeJSON(*fleetOut, rep.WriteJSON)
		return
	}

	if *scenarios {
		fig, err := r.Scenarios(*scenarioSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "compbench:", err)
			os.Exit(1)
		}
		fmt.Println(fig.Format())
		return
	}

	if *passes != "" {
		fig, err := r.PassFigure(*passes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "compbench:", err)
			os.Exit(1)
		}
		fmt.Println(fig.Format())
		return
	}

	if *serveMode {
		ns := *streams
		if ns == 0 {
			ns = 4
		}
		rep, err := r.ServeLoad(ns, *serveClients, *servePer)
		if err != nil {
			fmt.Fprintln(os.Stderr, "compbench:", err)
			os.Exit(1)
		}
		fmt.Print(rep.Format())
		writeJSON(*serveOut, rep.WriteJSON)
		return
	}

	if *streams > 0 {
		n := *requests
		if n == 0 {
			n = *streams
		}
		rep, err := r.Streams(*streams, n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "compbench:", err)
			os.Exit(1)
		}
		fmt.Print(rep.Format())
		writeJSON(*streamsOut, rep.WriteJSON)
		return
	}

	var figs []*bench.Figure
	var err error
	switch {
	case *ablations:
		figs, err = r.Ablations()
	case *only != "":
		figs, err = one(r, *only)
	default:
		figs, err = r.All()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "compbench:", err)
		os.Exit(1)
	}
	for _, f := range figs {
		fmt.Println(f.Format())
	}
}

// writeJSON writes one report to path via its WriteJSON method, exiting on
// failure; "-" skips the file (the table already went to stdout).
func writeJSON(path string, write func(io.Writer) error) {
	if path == "-" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compbench:", err)
		os.Exit(1)
	}
	if err := write(f); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "compbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func one(r *bench.Runner, id string) ([]*bench.Figure, error) {
	gens := map[string]func() (*bench.Figure, error){
		"fig1":   r.Figure1,
		"fig4":   r.Figure4,
		"fig10":  r.Figure10,
		"fig11":  r.Figure11,
		"fig12":  r.Figure12,
		"fig13":  r.Figure13,
		"fig14":  r.Figure14,
		"fig15":  r.Figure15,
		"table2": r.Table2,
		"table3": r.Table3,
	}
	gen, ok := gens[id]
	if !ok {
		return nil, fmt.Errorf("unknown figure %q (try fig1, fig4, fig10..fig15, table2, table3)", id)
	}
	f, err := gen()
	if err != nil {
		return nil, err
	}
	return []*bench.Figure{f}, nil
}
