// Command compscen runs, replays and verifies serving-stack scenarios
// (internal/scenario): reproducible load traces with arrival processes,
// workload mixes, deadline distributions, fault storms, device hot-unplug
// and queue squeezes, all checked against the serving invariants.
//
// Usage:
//
//	compscen list                             # built-in scenarios
//	compscen run -scenario fault-storm        # one replay + invariant check
//	compscen run -file custom.json -seed 7    # scenario from a JSON file
//	compscen run -scenario steady -json -     # machine-readable result
//	compscen verify -scenario hot-unplug      # two replays, bit-identical evidence
//	compscen trace -scenario burst -seed 3    # dump the expanded request trace
//	compscen sched -scenario steady           # raw-scheduler replay (no serving layer)
//	compscen show -scenario mixed-chaos       # print a built-in as JSON
//
// Every command is deterministic in (scenario, seed): verify demands
// bit-identical per-request outcomes and ServerReport across two replays,
// which is the same check CI runs over every built-in.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"comp/internal/scenario"
	"comp/internal/vm"
)

// newFlagSet builds a subcommand flag set that reports parse errors to the
// caller instead of exiting.
func newFlagSet(cmd string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet("compscen "+cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

const usageText = `usage: compscen <command> [flags]

commands:
  list      list the built-in scenarios
  show      print a scenario as JSON
  run       replay a scenario once and check the serving invariants
  verify    replay twice and require bit-identical outcomes and report
  trace     print the deterministic request trace for (scenario, seed)
  sched     replay on the raw scheduler (no serving layer) and verify determinism

common flags (run/verify/trace/sched/show):
  -scenario name   a built-in scenario (see compscen list)
  -file path       a scenario JSON file instead of a built-in
  -seed n          trace seed (default 1)
  -json path       write the machine-readable result to path ("-" = stdout)
  -exec engine     MiniC execution engine: vm (default), interp, or columnar
`

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(stderr, usageText)
		return 2
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "list":
		if len(rest) > 0 {
			fmt.Fprintln(stderr, "compscen list takes no flags")
			fmt.Fprint(stderr, usageText)
			return 2
		}
		err = list(stdout)
	case "show", "run", "verify", "trace", "sched":
		var opts *cmdOpts
		opts, err = parseOpts(cmd, rest, stderr)
		if err != nil {
			fmt.Fprintln(stderr, "compscen:", err)
			fmt.Fprint(stderr, usageText)
			return 2
		}
		switch cmd {
		case "show":
			err = show(opts, stdout)
		case "run":
			err = runOnce(opts, stdout)
		case "verify":
			err = verify(opts, stdout)
		case "trace":
			err = trace(opts, stdout)
		case "sched":
			err = sched(opts, stdout)
		}
	default:
		fmt.Fprintf(stderr, "compscen: unknown command %q\n", cmd)
		fmt.Fprint(stderr, usageText)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "compscen:", err)
		return 1
	}
	return 0
}

type cmdOpts struct {
	sc      *scenario.Scenario
	seed    int64
	jsonOut string
}

// parseOpts parses the shared flag set and resolves the scenario.
func parseOpts(cmd string, args []string, stderr io.Writer) (*cmdOpts, error) {
	fs := newFlagSet(cmd, stderr)
	name := fs.String("scenario", "", "built-in scenario name")
	file := fs.String("file", "", "scenario JSON file")
	seed := fs.Int64("seed", 1, "trace seed")
	jsonOut := fs.String("json", "", "write machine-readable result to path (\"-\" = stdout)")
	exec := fs.String("exec", vm.ExecVM, "MiniC execution engine: vm, interp, or columnar")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if err := vm.SetExecMode(*exec); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	sc, err := loadScenario(*name, *file)
	if err != nil {
		return nil, err
	}
	return &cmdOpts{sc: sc, seed: *seed, jsonOut: *jsonOut}, nil
}

// loadScenario resolves exactly one of a built-in name or a JSON file.
func loadScenario(name, file string) (*scenario.Scenario, error) {
	switch {
	case name == "" && file == "":
		return nil, fmt.Errorf("pick a scenario: -scenario <name> or -file <path>")
	case name != "" && file != "":
		return nil, fmt.Errorf("-scenario and -file are mutually exclusive")
	case name != "":
		return scenario.Lookup(name)
	default:
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return scenario.ParseJSON(data)
	}
}

func list(w io.Writer) error {
	fmt.Fprintf(w, "%-16s %-8s %-9s %-6s %-7s %s\n", "NAME", "WINDOWS", "ARRIVAL", "MIX", "EVENTS", "DESCRIPTION")
	for _, sc := range scenario.Builtins() {
		fmt.Fprintf(w, "%-16s %-8d %-9s %-6d %-7d %s\n",
			sc.Name, sc.Windows, sc.Arrival.Process, len(sc.Mix), len(sc.Events), sc.Description)
	}
	return nil
}

func show(o *cmdOpts, w io.Writer) error {
	data, err := o.sc.JSON()
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}

// result is the machine-readable shape run/verify emit with -json.
type result struct {
	Scenario *scenario.Scenario `json:"scenario"`
	Seed     int64              `json:"seed"`
	Requests int                `json:"requests"`
	Verified bool               `json:"verified"`
	Report   json.RawMessage    `json:"report"`
	Outcomes []scenario.Outcome `json:"outcomes,omitempty"`
}

func emit(o *cmdOpts, res *scenario.Result, verified bool) error {
	if o.jsonOut == "" {
		return nil
	}
	out := result{
		Scenario: res.Trace.Scenario,
		Seed:     res.Trace.Seed,
		Requests: len(res.Trace.Requests),
		Verified: verified,
		Report:   json.RawMessage(res.ReportJSON),
		Outcomes: res.Outcomes,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return writeOut(o.jsonOut, append(data, '\n'))
}

func writeOut(path string, data []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func runOnce(o *cmdOpts, w io.Writer) error {
	res, err := scenario.Replay(o.sc, o.seed)
	if err != nil {
		return err
	}
	if err := res.CheckInvariants(); err != nil {
		return fmt.Errorf("invariant violation: %w", err)
	}
	fmt.Fprintf(w, "scenario %s (seed %d): %d requests over %d windows\n",
		o.sc.Name, o.seed, len(res.Trace.Requests), o.sc.Windows)
	fmt.Fprint(w, res.Report.Format())
	fmt.Fprintln(w, "invariants: ok")
	return emit(o, res, false)
}

func verify(o *cmdOpts, w io.Writer) error {
	res, err := scenario.Verify(o.sc, o.seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "verify %s (seed %d): %d requests, 2 replays bit-identical, invariants ok\n",
		o.sc.Name, o.seed, len(res.Trace.Requests))
	fmt.Fprintf(w, "  completed %d, shed %d, expired %d, failed %d, invalid %d; faults %d, retries %d, fallbacks %d\n",
		res.Report.Completed, res.Report.Shed, res.Report.Expired, res.Report.Failed, res.Report.Invalid,
		res.Report.FaultsInjected, res.Report.Retries, res.Report.Fallbacks)
	return emit(o, res, true)
}

func trace(o *cmdOpts, w io.Writer) error {
	tr, err := o.sc.Generate(o.seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "trace %s (seed %d): %d requests over %d windows of %v\n",
		o.sc.Name, o.seed, len(tr.Requests), o.sc.Windows, tr.Window)
	if o.jsonOut == "" {
		return nil
	}
	data, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return err
	}
	return writeOut(o.jsonOut, append(data, '\n'))
}

func sched(o *cmdOpts, w io.Writer) error {
	rep, err := scenario.VerifyScheduler(o.sc, o.seed)
	if err != nil {
		return err
	}
	var faults, retries int64
	for _, ws := range rep.Windows {
		faults += ws.FaultsInjected
		retries += ws.Retries
	}
	fmt.Fprintf(w, "sched %s (seed %d): %d requests executed over %d windows (%d skipped), 2 replays bit-identical\n",
		o.sc.Name, o.seed, len(rep.Outputs), len(rep.Windows), rep.Skipped)
	fmt.Fprintf(w, "  faults %d, retries %d\n", faults, retries)
	if o.jsonOut == "" {
		return nil
	}
	return writeOut(o.jsonOut, append(rep.StatsJSON, '\n'))
}
