package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"comp/internal/vm"
)

// TestExecFlagTable pins the -exec contract end-to-end through run(): the
// three engine names are accepted, anything else exits 2 with a usage
// error whose first line names every valid mode.
func TestExecFlagTable(t *testing.T) {
	defer vm.SetExecMode(vm.ExecVM)
	for _, mode := range []string{"vm", "interp", "columnar"} {
		code, _, stderr := runCLI("show", "-scenario", "steady", "-exec", mode)
		if code != 0 {
			t.Errorf("-exec %s: exit %d, stderr %s", mode, code, stderr)
		}
	}
	for _, mode := range []string{"", "VM", "Columnar", "jit", "vm,interp"} {
		code, _, stderr := runCLI("show", "-scenario", "steady", "-exec", mode)
		if code != 2 {
			t.Errorf("-exec %q: exit %d, want 2", mode, code)
		}
		first, _, _ := strings.Cut(stderr, "\n")
		for _, want := range []string{"compscen:", "unknown exec mode", "interp", "vm", "columnar"} {
			if !strings.Contains(first, want) {
				t.Errorf("-exec %q: first stderr line lacks %q: %s", mode, want, first)
			}
		}
		if !strings.Contains(stderr, "usage: compscen") {
			t.Errorf("-exec %q: stderr lacks usage text", mode)
		}
	}
}

// runCLI invokes the command the way main does and captures its streams.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUsageAndBadArgs(t *testing.T) {
	cases := [][]string{
		{},                                       // no command
		{"conquer"},                              // unknown command
		{"run"},                                  // no scenario selected
		{"run", "-scenario", "steady", "extra"},  // stray positional
		{"run", "-scenario", "steady", "-bogus"}, // unknown flag
		{"verify", "-scenario", "x", "-file", "y"}, // mutually exclusive
		{"list", "-json"},                          // list takes no flags
	}
	for _, args := range cases {
		code, _, stderr := runCLI(args...)
		if code != 2 {
			t.Errorf("compscen %v: exit %d, want 2", args, code)
		}
		if !strings.Contains(stderr, "usage: compscen") {
			t.Errorf("compscen %v: stderr lacks usage:\n%s", args, stderr)
		}
	}
}

func TestUnknownScenarioFails(t *testing.T) {
	code, _, stderr := runCLI("run", "-scenario", "no-such")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown scenario") {
		t.Fatalf("stderr: %s", stderr)
	}
}

func TestList(t *testing.T) {
	code, stdout, _ := runCLI("list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, name := range []string{"steady", "overload", "burst", "diurnal", "deadline-heavy", "fault-storm", "hot-unplug", "mixed-chaos"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("list output lacks %s:\n%s", name, stdout)
		}
	}
}

func TestShowRoundTripsThroughFile(t *testing.T) {
	code, stdout, _ := runCLI("show", "-scenario", "overload")
	if code != 0 {
		t.Fatalf("show exit %d", code)
	}
	path := filepath.Join(t.TempDir(), "overload.json")
	if err := os.WriteFile(path, []byte(stdout), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out2, stderr := runCLI("run", "-file", path)
	if code != 0 {
		t.Fatalf("run -file exit %d: %s", code, stderr)
	}
	if !strings.Contains(out2, "invariants: ok") {
		t.Fatalf("run output lacks invariant check:\n%s", out2)
	}
}

func TestRunEmitsReportAndJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "result.json")
	code, stdout, stderr := runCLI("run", "-scenario", "overload", "-seed", "3", "-json", path)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	for _, want := range []string{"scenario overload (seed 3)", "serve:", "invariants: ok"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout lacks %q:\n%s", want, stdout)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("result JSON: %v", err)
	}
	if res.Scenario.Name != "overload" || res.Seed != 3 || res.Requests == 0 || len(res.Outcomes) != res.Requests {
		t.Fatalf("result shape: %+v", res)
	}
}

func TestVerifyCommand(t *testing.T) {
	code, stdout, stderr := runCLI("verify", "-scenario", "fault-storm")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "2 replays bit-identical, invariants ok") {
		t.Fatalf("stdout: %s", stdout)
	}
	if !strings.Contains(stdout, "faults") {
		t.Fatalf("verify summary lacks fault counters: %s", stdout)
	}
}

func TestTraceCommand(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	code, stdout, stderr := runCLI("trace", "-scenario", "burst", "-seed", "2", "-json", path)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "trace burst (seed 2)") {
		t.Fatalf("stdout: %s", stdout)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"requests"`) {
		t.Fatalf("trace JSON lacks requests: %.200s", raw)
	}
}

func TestSchedCommand(t *testing.T) {
	code, stdout, stderr := runCLI("sched", "-scenario", "steady")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "2 replays bit-identical") {
		t.Fatalf("stdout: %s", stdout)
	}
}

func TestBadScenarioFileFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"name":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI("run", "-file", path)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "windows") {
		t.Fatalf("stderr: %s", stderr)
	}
}
