// Command compserve drives the offload serving layer (internal/serve) with
// a synthetic client fleet and prints the server metrics report: queue
// depth, shed count, plan-cache hit ratio and latency histograms.
//
// Usage:
//
//	compserve                          # 64 clients × 2 requests over nn+dedup+srad
//	compserve -clients 16 -requests 4  # different fleet shape
//	compserve -workloads nn,srad       # restrict the workload mix
//	compserve -queue 8                 # undersized queue: observe ErrOverloaded shedding
//	compserve -deadline 100ms          # per-request deadlines
//	compserve -verify                  # run the trace twice, assert bit-identical outputs
//	compserve -json report.json        # also dump the metrics report as JSON
//	compserve -fleet                   # shard the trace over a 2×2 multi-device fleet
//	compserve -fleet -hosts 4 -loss    # bigger fleet, with a mid-trace device loss + fault storm
//	compserve -fleet -verify           # stepped double replay: bit-identical outputs AND report
//
// Every value a request computes comes from the deterministic interpreter;
// the simulated platform only assigns timing. compserve -verify exploits
// that: it replays the identical trace against a second fresh server (new
// plan cache, different wall-clock interleaving, different batch
// boundaries) and fails unless every request's output arrays match
// bit-for-bit. Under -fleet the verification is stronger: the replay runs
// on a stepped fleet with a virtual clock, so the full fleet report —
// placements, rejection set, makespan — must match bit-for-bit too.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"comp/internal/fleet"
	"comp/internal/serve"
	"comp/internal/sim/fault"
	"comp/internal/sim/metrics"
	"comp/internal/vm"
	"comp/internal/workloads"
)

// setExecMode installs the requested MiniC engine for the whole process,
// or writes a one-line usage error naming the valid modes to stderr and
// returns the usage exit code.
func setExecMode(mode string, stderr io.Writer) int {
	if err := vm.SetExecMode(mode); err != nil {
		fmt.Fprintln(stderr, "compserve:", err)
		return 2
	}
	return 0
}

func main() {
	clients := flag.Int("clients", 64, "concurrent synthetic clients")
	requests := flag.Int("requests", 2, "requests each client submits")
	workloadsFlag := flag.String("workloads", "nn,dedup,srad", "comma-separated workload mix clients draw from round-robin")
	streams := flag.Int("streams", 4, "device streams the server schedules over")
	queue := flag.Int("queue", 0, "admission queue depth (0 = clients × requests, nothing sheds)")
	batch := flag.Int("batch", 0, "max requests per scheduler batch (0 = queue depth)")
	deadline := flag.Duration("deadline", 0, "per-request deadline (0 = none)")
	verify := flag.Bool("verify", false, "replay the trace on a second fresh server and require bit-identical outputs")
	jsonOut := flag.String("json", "", "also write the metrics report as JSON to this file (\"-\" = stdout)")
	execMode := flag.String("exec", vm.ExecVM, "MiniC execution engine: vm, interp, or columnar")
	fleetMode := flag.Bool("fleet", false, "shard the trace over a multi-device fleet (consistent-hash routing + work stealing)")
	hosts := flag.Int("hosts", 2, "simulated hosts for -fleet")
	devices := flag.Int("devices", 2, "devices per host for -fleet")
	steal := flag.Int("steal", 0, "queue depth at which the fleet router steals to a same-signature device (0 = half the queue, negative = off)")
	loss := flag.Bool("loss", false, "fail one device mid-trace under a fault storm, then restore it")
	flag.Parse()

	if code := setExecMode(*execMode, os.Stderr); code != 0 {
		os.Exit(code)
	}

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "compserve: unexpected argument %q\n", flag.Arg(0))
		usage()
		os.Exit(2)
	}
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validateFlagDeps(*fleetMode, set); err != nil {
		fmt.Fprintln(os.Stderr, "compserve:", err)
		usage()
		os.Exit(2)
	}
	mix, err := parseMix(*workloadsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compserve:", err)
		usage()
		os.Exit(2)
	}
	if err := validateShape(*clients, *requests, *streams, *queue, *batch, *deadline); err != nil {
		fmt.Fprintln(os.Stderr, "compserve:", err)
		usage()
		os.Exit(2)
	}
	if *fleetMode {
		if err := validateFleetShape(*hosts, *devices, *loss); err != nil {
			fmt.Fprintln(os.Stderr, "compserve:", err)
			usage()
			os.Exit(2)
		}
		if err := runFleetMode(mix, *hosts, *devices, *streams, *queue, *batch, *steal,
			*clients, *requests, *deadline, *loss, *verify, *jsonOut); err != nil {
			fail(err)
		}
		return
	}
	depth := *queue
	if depth == 0 {
		depth = *clients * *requests
	}

	rep, outs, err := runFleet(mix, *streams, depth, *batch, *clients, *requests, *deadline)
	if err != nil {
		fail(err)
	}
	fmt.Print(rep.Format())

	if *verify {
		rep2, outs2, err := runFleet(mix, *streams, depth, *batch, *clients, *requests, *deadline)
		if err != nil {
			fail(fmt.Errorf("verify replay: %w", err))
		}
		mismatches := 0
		compared := 0
		for id, a := range outs {
			b, ok := outs2[id]
			if !ok {
				continue // shed/expired in one run but not the other: a timing difference, not a value one
			}
			compared++
			if !sameOutputs(a, b) {
				mismatches++
				fmt.Fprintf(os.Stderr, "compserve: VERIFY FAIL: request %s outputs differ between runs\n", id)
			}
		}
		if mismatches > 0 {
			fail(fmt.Errorf("verify: %d of %d replayed requests differ", mismatches, compared))
		}
		fmt.Printf("verify: %d requests replayed bit-identically (run2: %d completed, %d shed, %d expired)\n",
			compared, rep2.Completed, rep2.Shed, rep2.Expired)
	}

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, rep); err != nil {
			fail(err)
		}
	}
}

// fleetOnlyFlags are meaningless without -fleet: naming any of them in a
// single-server invocation is a usage error, caught before anything runs.
var fleetOnlyFlags = []string{"hosts", "devices", "steal", "loss"}

// validateFlagDeps rejects contradictory flag combinations up front, in the
// same one-line style as the -exec validation: the error names the flag and
// what it requires.
func validateFlagDeps(fleetMode bool, set map[string]bool) error {
	if !fleetMode {
		for _, name := range fleetOnlyFlags {
			if set[name] {
				return fmt.Errorf("-%s requires -fleet", name)
			}
		}
	}
	return nil
}

// validateFleetShape rejects meaningless fleet shapes.
func validateFleetShape(hosts, devices int, loss bool) error {
	switch {
	case hosts < 1:
		return fmt.Errorf("-hosts %d must be positive", hosts)
	case devices < 1:
		return fmt.Errorf("-devices %d must be positive", devices)
	case loss && hosts*devices < 2:
		return fmt.Errorf("-loss needs at least 2 devices, got %d×%d", hosts, devices)
	}
	return nil
}

// fleetVictim is the device -loss fails: the second device of host 0.
const fleetVictim = "h0/d1"

// fleetTrace turns the client fleet shape into a deterministic event trace:
// clients×perClient submissions round-robin over the mix, a batch step
// every eight submissions, and optionally a mid-trace storm + loss +
// restore of one device.
func fleetTrace(mix []string, clients, perClient int, deadline time.Duration, loss bool) []fleet.Event {
	total := clients * perClient
	var ev []fleet.Event
	for i := 0; i < total; i++ {
		ev = append(ev, fleet.Submit(serve.Job{Workload: mix[i%len(mix)], Deadline: deadline}))
		if loss && i == total/3 {
			ev = append(ev,
				fleet.Storm(fleetVictim, fault.Uniform(11, 0.3)),
				fleet.Fail(fleetVictim))
		}
		if loss && i == 2*total/3 {
			ev = append(ev,
				fleet.Restore(fleetVictim),
				fleet.Storm(fleetVictim, fault.Config{}))
		}
		if i%8 == 7 {
			ev = append(ev, fleet.Step())
		}
	}
	return ev
}

// runFleetMode replays the client trace over a sharded fleet and prints the
// fleet rollup. With verify the trace replays twice and the run fails
// unless both replays are bit-identical: outputs, rejection set,
// placements, and the full report.
func runFleetMode(mix []string, hosts, devices, streams, queue, batch, steal, clients, perClient int,
	deadline time.Duration, loss, verify bool, jsonOut string) error {
	devs := fleet.DefaultDevices(hosts, devices, queue)
	for i := range devs {
		devs[i].Streams = streams
		devs[i].MaxBatch = batch
	}
	cfg := fleet.Config{Devices: devs, StealThreshold: steal}
	events := fleetTrace(mix, clients, perClient, deadline, loss)

	var res *fleet.ReplayResult
	var err error
	if verify {
		res, err = fleet.Verify(cfg, events)
	} else {
		res, err = fleet.Replay(cfg, events)
	}
	if err != nil {
		return err
	}
	fmt.Print(res.Report.Format())
	if verify {
		fmt.Printf("verify: %d submissions replayed bit-identically (%d rejections, report %d bytes)\n",
			len(res.Outcomes), len(res.Rejections()), len(res.ReportJSON))
	}
	if jsonOut != "" {
		return writeJSON(jsonOut, res.Report)
	}
	return nil
}

// runFleet submits the full client trace against a fresh server and returns
// the metrics report plus the per-request outputs, keyed "client/job".
func runFleet(mix []string, streams, queue, batch, clients, perClient int, deadline time.Duration) (*metrics.ServerReport, map[string]map[string][]float64, error) {
	s, err := serve.New(serve.Config{Streams: streams, QueueDepth: queue, MaxBatch: batch})
	if err != nil {
		return nil, nil, err
	}
	var (
		mu   sync.Mutex
		outs = map[string]map[string][]float64{}
		errs []error
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				job := serve.Job{Workload: mix[(c+j)%len(mix)], Deadline: deadline}
				resp, err := s.Do(job)
				switch {
				case err == nil:
					mu.Lock()
					outs[fmt.Sprintf("%d/%d", c, j)] = resp.Outputs
					mu.Unlock()
				case err == serve.ErrOverloaded, err == serve.ErrDeadlineExceeded:
					// Typed rejections are expected behavior under pressure.
				default:
					mu.Lock()
					errs = append(errs, fmt.Errorf("client %d: %w", c, err))
					mu.Unlock()
					return
				}
			}
		}(c)
	}
	wg.Wait()
	s.Close()
	if len(errs) > 0 {
		return nil, nil, errs[0]
	}
	rep := s.Report()
	return &rep, outs, nil
}

// sameOutputs compares two output-array maps bit-for-bit.
func sameOutputs(a, b map[string][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for name, av := range a {
		bv, ok := b[name]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

// jsonReport is any metrics document that can serialize itself; both the
// single-server and the fleet reports satisfy it.
type jsonReport interface {
	WriteJSON(w io.Writer) error
}

func writeJSON(path string, rep jsonReport) error {
	if path == "-" {
		return rep.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// usage prints the flag summary with runnable examples, mirroring the
// package comment.
func usage() {
	fmt.Fprintln(os.Stderr, `usage: compserve [flags]
examples:
  compserve                          # 64 clients x 2 requests over nn+dedup+srad
  compserve -clients 16 -requests 4  # different fleet shape
  compserve -queue 8 -verify         # undersized queue, bit-identical replay check
  compserve -fleet -hosts 2 -loss    # sharded 2x2 fleet with a mid-trace device loss
flags:`)
	flag.PrintDefaults()
}

// parseMix splits and validates the workload list: names must be known,
// serveable registry benchmarks.
func parseMix(spec string) ([]string, error) {
	mix := strings.Split(spec, ",")
	for i := range mix {
		mix[i] = strings.TrimSpace(mix[i])
		if mix[i] == "" {
			return nil, fmt.Errorf("empty workload name in -workloads %q", spec)
		}
		b, err := workloads.Get(mix[i])
		if err != nil {
			return nil, err
		}
		if b.SharedMem {
			return nil, fmt.Errorf("%s is a shared-memory benchmark and cannot be served", mix[i])
		}
	}
	return mix, nil
}

// validateShape rejects meaningless fleet shapes before any server spins
// up.
func validateShape(clients, requests, streams, queue, batch int, deadline time.Duration) error {
	switch {
	case clients < 1:
		return fmt.Errorf("-clients %d must be positive", clients)
	case requests < 1:
		return fmt.Errorf("-requests %d must be positive", requests)
	case streams < 1:
		return fmt.Errorf("-streams %d must be positive", streams)
	case queue < 0:
		return fmt.Errorf("-queue %d must not be negative", queue)
	case batch < 0:
		return fmt.Errorf("-batch %d must not be negative", batch)
	case queue > 0 && batch > queue:
		return fmt.Errorf("-batch %d exceeds -queue %d", batch, queue)
	case deadline < 0:
		return fmt.Errorf("-deadline %v must not be negative", deadline)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "compserve:", err)
	os.Exit(1)
}
