package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"comp/internal/vm"
)

// TestExecFlagTable pins the -exec contract: the three engine names are
// accepted silently, anything else is rejected with exit code 2 and a
// one-line usage error that names every valid mode.
func TestExecFlagTable(t *testing.T) {
	defer vm.SetExecMode(vm.ExecVM)
	cases := []struct {
		mode string
		ok   bool
	}{
		{"vm", true},
		{"interp", true},
		{"columnar", true},
		{"", false},
		{"VM", false},
		{"Columnar", false},
		{"jit", false},
	}
	for _, tc := range cases {
		var errb bytes.Buffer
		code := setExecMode(tc.mode, &errb)
		if tc.ok {
			if code != 0 || errb.Len() != 0 {
				t.Errorf("-exec %q: exit %d, stderr %q; want silent success", tc.mode, code, errb.String())
			}
			continue
		}
		if code != 2 {
			t.Errorf("-exec %q: exit %d, want 2", tc.mode, code)
		}
		out := errb.String()
		if strings.Count(out, "\n") != 1 {
			t.Errorf("-exec %q: usage error is not one line:\n%s", tc.mode, out)
		}
		for _, want := range []string{"compserve:", "unknown exec mode", "interp", "vm", "columnar"} {
			if !strings.Contains(out, want) {
				t.Errorf("-exec %q: usage error lacks %q: %s", tc.mode, want, out)
			}
		}
	}
}

// TestValidateFlagDepsTable pins the mutually-exclusive flag contract:
// every fleet-only flag is rejected without -fleet, with a one-line error
// naming both the flag and its dependency; with -fleet all of them pass.
func TestValidateFlagDepsTable(t *testing.T) {
	for _, name := range fleetOnlyFlags {
		err := validateFlagDeps(false, map[string]bool{name: true})
		if err == nil {
			t.Errorf("-%s without -fleet accepted", name)
			continue
		}
		msg := err.Error()
		if strings.Count(msg, "\n") != 0 {
			t.Errorf("-%s: usage error is not one line: %q", name, msg)
		}
		for _, want := range []string{"-" + name, "requires -fleet"} {
			if !strings.Contains(msg, want) {
				t.Errorf("-%s: usage error lacks %q: %q", name, want, msg)
			}
		}
		if err := validateFlagDeps(true, map[string]bool{name: true}); err != nil {
			t.Errorf("-fleet -%s rejected: %v", name, err)
		}
	}
	if err := validateFlagDeps(false, map[string]bool{"clients": true, "verify": true}); err != nil {
		t.Errorf("single-server flags rejected without -fleet: %v", err)
	}
}

// TestValidateFleetShape pins the fleet-shape rejections behind the usage
// exit.
func TestValidateFleetShape(t *testing.T) {
	if err := validateFleetShape(2, 2, true); err != nil {
		t.Fatalf("default fleet shape rejected: %v", err)
	}
	bad := []struct {
		name           string
		hosts, devices int
		loss           bool
	}{
		{"zero hosts", 0, 2, false},
		{"zero devices", 2, 0, false},
		{"loss on a single device", 1, 1, true},
	}
	for _, c := range bad {
		if err := validateFleetShape(c.hosts, c.devices, c.loss); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	if err := validateFleetShape(1, 1, false); err != nil {
		t.Errorf("single-device fleet without -loss rejected: %v", err)
	}
}

// TestRunFleetModeVerifies drives the sharded mode end to end at a small
// scale: loss + verify must succeed, meaning the trace double-replayed
// bit-identically through a device-loss fault storm.
func TestRunFleetModeVerifies(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet replay serves every request through the simulator twice")
	}
	if err := runFleetMode([]string{"nn"}, 1, 2, 2, 8, 0, 0, 4, 2, 0, true, true, ""); err != nil {
		t.Fatal(err)
	}
}

// TestRunFleetServesAndAccounts drives the fleet helper directly with a
// small trace: every request must be answered, the report must account
// for all of them, and the collected outputs must be non-empty and
// self-consistent under sameOutputs.
func TestRunFleetServesAndAccounts(t *testing.T) {
	rep, outs, err := runFleet([]string{"nn"}, 2, 8, 0, 4, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 8 || rep.Completed+rep.Shed+rep.Expired != 8 || rep.Failed != 0 {
		t.Fatalf("accounting: %+v", rep)
	}
	if int64(len(outs)) != rep.Completed {
		t.Fatalf("collected %d output sets for %d completions", len(outs), rep.Completed)
	}
	for id, o := range outs {
		if len(o) == 0 {
			t.Fatalf("request %s completed with no output arrays", id)
		}
		if !sameOutputs(o, o) {
			t.Fatalf("request %s: sameOutputs not reflexive", id)
		}
	}
	// All clients ran the same workload with the same plan: outputs agree
	// pairwise, and perturbing one element must be detected.
	var first map[string][]float64
	for _, o := range outs {
		if first == nil {
			first = o
			continue
		}
		if !sameOutputs(first, o) {
			t.Fatal("same-plan requests produced different outputs")
		}
	}
	for name, data := range first {
		if len(data) == 0 {
			continue
		}
		mutated := map[string][]float64{}
		for n, d := range first {
			mutated[n] = append([]float64(nil), d...)
		}
		mutated[name][0] += 1.0
		if sameOutputs(first, mutated) {
			t.Fatalf("sameOutputs missed a perturbed element in %s", name)
		}
		break
	}
	if sameOutputs(first, map[string][]float64{}) {
		t.Fatal("sameOutputs ignored a missing array set")
	}
}

func TestWriteJSONReport(t *testing.T) {
	rep, _, err := runFleet([]string{"nn"}, 2, 4, 0, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := writeJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"submitted"`, `"planHitRatio"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("JSON report missing %s", key)
		}
	}
	if err := writeJSON(filepath.Join(t.TempDir(), "no", "such", "dir.json"), rep); err == nil {
		t.Error("writeJSON to an unwritable path reported success")
	}
	if err := writeJSON("-", rep); err != nil {
		t.Errorf("writeJSON to stdout: %v", err)
	}
}

func TestSameOutputsMismatchedNames(t *testing.T) {
	a := map[string][]float64{"x": {1, 2}}
	b := map[string][]float64{"y": {1, 2}}
	if sameOutputs(a, b) {
		t.Error("sameOutputs matched maps with different array names")
	}
	if !sameOutputs(map[string][]float64{}, map[string][]float64{}) {
		t.Error("sameOutputs rejected two empty sets")
	}
	if sameOutputs(a, map[string][]float64{"x": {1, 3}}) {
		t.Error("sameOutputs missed a differing element")
	}
}

// TestParseMixValidatesNames pins the pre-flight workload validation: bad
// names and shared-memory benchmarks are rejected before a server starts.
func TestParseMixValidatesNames(t *testing.T) {
	mix, err := parseMix("nn, dedup,srad")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 3 || mix[1] != "dedup" {
		t.Fatalf("parseMix trimmed badly: %v", mix)
	}
	for _, spec := range []string{"", "nn,", "nope", "ferret", "nn,,srad"} {
		if _, err := parseMix(spec); err == nil {
			t.Errorf("parseMix(%q) accepted", spec)
		}
	}
}

// TestValidateShape pins the bad-arg-combo rejections behind the usage
// exit.
func TestValidateShape(t *testing.T) {
	if err := validateShape(64, 2, 4, 0, 0, 0); err != nil {
		t.Fatalf("default shape rejected: %v", err)
	}
	bad := []struct {
		name                                     string
		clients, requests, streams, queue, batch int
		deadline                                 time.Duration
	}{
		{"zero clients", 0, 2, 4, 0, 0, 0},
		{"zero requests", 4, 0, 4, 0, 0, 0},
		{"zero streams", 4, 2, 0, 0, 0, 0},
		{"negative queue", 4, 2, 4, -1, 0, 0},
		{"batch above queue", 4, 2, 4, 2, 8, 0},
		{"negative deadline", 4, 2, 4, 0, 0, -time.Second},
	}
	for _, c := range bad {
		if err := validateShape(c.clients, c.requests, c.streams, c.queue, c.batch, c.deadline); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}
