package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"comp/internal/interp"
	rt "comp/internal/runtime"
)

// progGen builds random offload-annotated MiniC programs whose loops are
// sometimes stream-legal, sometimes gathered, sometimes strided, sometimes
// reduced — the whole space the optimizer dispatches over. Every generated
// program is run unoptimized and fully optimized; outputs must match
// bitwise. This is the compiler's main randomized correctness net.
type progGen struct {
	r   *rand.Rand
	n   int
	buf strings.Builder
}

// expr emits a random arithmetic expression over the given input terms.
func (g *progGen) expr(depth int, terms []string) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return terms[g.r.Intn(len(terms))]
		case 1:
			return fmt.Sprintf("%d.%d", g.r.Intn(9)+1, g.r.Intn(10))
		default:
			return terms[g.r.Intn(len(terms))]
		}
	}
	a := g.expr(depth-1, terms)
	b := g.expr(depth-1, terms)
	switch g.r.Intn(7) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * 0.5 + %s * 0.25)", a, b)
	case 3:
		return fmt.Sprintf("sqrt(fabs(%s) + 1.0)", a)
	case 4:
		return fmt.Sprintf("exp(-fabs(%s) * 0.001)", a)
	case 5:
		return fmt.Sprintf("(%s / (fabs(%s) + 2.0))", a, b)
	default:
		return fmt.Sprintf("(%s > %s ? %s : %s)", a, b, g.expr(depth-1, terms), g.expr(depth-1, terms))
	}
}

// generate returns a complete program plus the list of output arrays.
func (g *progGen) generate() (string, []string) {
	nIn := g.r.Intn(3) + 1  // 1..3 inputs
	nOut := g.r.Intn(2) + 1 // 1..2 outputs
	gather := g.r.Intn(3) == 0
	strided := !gather && g.r.Intn(3) == 0
	reduce := g.r.Intn(3) == 0
	guarded := g.r.Intn(3) == 0

	w := &g.buf
	var ins, outs []string
	for i := 0; i < nIn; i++ {
		name := fmt.Sprintf("in%d", i)
		size := g.n
		if strided && i == 0 {
			size = 4 * g.n
		}
		fmt.Fprintf(w, "float %s[%d];\n", name, size)
		ins = append(ins, name)
	}
	if gather {
		fmt.Fprintf(w, "int idx0[%d];\n", g.n)
	}
	for i := 0; i < nOut; i++ {
		name := fmt.Sprintf("out%d", i)
		fmt.Fprintf(w, "float %s[%d];\n", name, g.n)
		outs = append(outs, name)
	}
	if reduce {
		fmt.Fprintf(w, "float acc;\n")
	}
	fmt.Fprintf(w, "int n;\nint main(void) {\n    int i;\n    n = %d;\n", g.n)

	// Deterministic initialization on the host.
	for i, name := range ins {
		size := g.n
		if strided && i == 0 {
			size = 4 * g.n
		}
		fmt.Fprintf(w, "    for (i = 0; i < %d; i++) {\n        %s[i] = (i * %d) %% %d + 0.5;\n    }\n",
			size, name, g.r.Intn(13)+1, g.r.Intn(90)+7)
	}
	if gather {
		fmt.Fprintf(w, "    for (i = 0; i < n; i++) {\n        idx0[i] = (i * %d) %% n;\n    }\n", g.r.Intn(97)+3)
	}

	// Offload clauses.
	var inClause []string
	for i, name := range ins {
		if strided && i == 0 {
			inClause = append(inClause, fmt.Sprintf("%s : length(4 * n)", name))
		} else {
			inClause = append(inClause, fmt.Sprintf("%s : length(n)", name))
		}
	}
	if gather {
		inClause = append(inClause, "idx0 : length(n)")
	}
	pragma := "    #pragma offload target(mic:0)"
	for _, c := range inClause {
		pragma += fmt.Sprintf(" in(%s)", c)
	}
	pragma += fmt.Sprintf(" out(%s : length(n))", strings.Join(outs, ", "))
	if reduce {
		pragma += " inout(acc)"
	}
	fmt.Fprintln(w, pragma)
	if reduce {
		fmt.Fprintln(w, "    #pragma omp parallel for reduction(+:acc)")
	} else {
		fmt.Fprintln(w, "    #pragma omp parallel for")
	}
	fmt.Fprintln(w, "    for (i = 0; i < n; i++) {")

	// Loop body: terms the expressions can draw from.
	terms := []string{}
	for i, name := range ins {
		switch {
		case strided && i == 0:
			terms = append(terms, fmt.Sprintf("%s[4 * i]", name))
		case gather && i == 0:
			terms = append(terms, fmt.Sprintf("%s[idx0[i]]", name))
		default:
			terms = append(terms, fmt.Sprintf("%s[i]", name))
		}
	}
	for oi, name := range outs {
		e := g.expr(3, terms)
		if guarded && oi == 0 {
			fmt.Fprintf(w, "        if (i %% %d == 0) {\n            %s[i] = %s;\n        } else {\n            %s[i] = %s;\n        }\n",
				g.r.Intn(5)+2, name, e, name, g.expr(2, terms))
		} else {
			fmt.Fprintf(w, "        %s[i] = %s;\n", name, e)
		}
	}
	if reduce {
		fmt.Fprintf(w, "        acc += %s[i] * 0.001;\n", outs[0])
	}
	fmt.Fprintln(w, "    }")
	fmt.Fprintln(w, "    return 0;\n}")
	return w.String(), outs
}

func runFuzz(t *testing.T, src string) rt.Result {
	t.Helper()
	p, err := interp.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	res, err := rt.Run(p, rt.DefaultConfig())
	if err != nil {
		t.Fatalf("run: %v\n%s", err, src)
	}
	if len(res.Stats.RaceWarnings) != 0 {
		t.Fatalf("races: %v\n%s", res.Stats.RaceWarnings, src)
	}
	return res
}

func TestFuzzOptimizeEquivalence(t *testing.T) {
	seeds := 48
	if testing.Short() {
		seeds = 12
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			g := &progGen{r: rand.New(rand.NewSource(int64(seed) + 1000)), n: 1536}
			src, outs := g.generate()

			base := runFuzz(t, src)

			opt := DefaultOptions()
			opt.Blocks = []int{0, 2, 5, 7, 16}[seed%5]
			res, err := Optimize(src, opt)
			if err != nil {
				t.Fatalf("optimize: %v\n%s", err, src)
			}
			optimized := runFuzz(t, res.Source())

			for _, name := range outs {
				a, err := base.Program.ArrayData(name)
				if err != nil {
					t.Fatal(err)
				}
				b, err := optimized.Program.ArrayData(name)
				if err != nil {
					t.Fatalf("optimized program lost output %s: %v\nreport: %+v\n%s",
						name, err, res.Report.Applied, res.Source())
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("%s[%d]: %v != %v\napplied: %+v\noriginal:\n%s\ntransformed:\n%s",
							name, i, a[i], b[i], res.Report.Applied, src, res.Source())
					}
				}
			}
			// Reduction scalar, if present.
			if v1, err := base.Program.Scalar("acc"); err == nil {
				v2, err := optimized.Program.Scalar("acc")
				if err != nil {
					t.Fatal(err)
				}
				if v1 != v2 {
					t.Fatalf("acc: %v != %v\n%s", v1, v2, res.Source())
				}
			}
		})
	}
}
