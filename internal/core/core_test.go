package core

import (
	"strings"
	"testing"

	"comp/internal/interp"
	"comp/internal/pass"
	rt "comp/internal/runtime"
	"comp/internal/sim/engine"
	"comp/internal/sim/machine"
	"comp/internal/transform"
)

const streamable = `
float in1[131072];
float out1[131072];
int n;
int main(void) {
    int i;
    n = 131072;
    for (i = 0; i < n; i++) {
        in1[i] = i % 100;
    }
    #pragma offload target(mic:0) in(in1 : length(n)) out(out1 : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        out1[i] = sqrt(in1[i]) * 2.0 + exp(in1[i] / 200.0);
    }
    return 0;
}
`

const gatherish = `
float a[65536];
int idx[65536];
float c[65536];
int n;
int main(void) {
    int i;
    n = 65536;
    for (i = 0; i < n; i++) {
        a[i] = i * 0.25;
        idx[i] = (i * 31) % n;
    }
    #pragma offload target(mic:0) in(a, idx : length(n)) out(c : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        c[i] = a[idx[i]] + 1.0;
    }
    return 0;
}
`

func runSource(t *testing.T, src string) rt.Result {
	t.Helper()
	p, err := interp.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	res, err := rt.Run(p, rt.DefaultConfig())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestOptimizeAppliesStreaming(t *testing.T) {
	res, err := Optimize(streamable, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Remarks.Has("stream") {
		t.Fatalf("streaming not applied; report: %+v", res.Report)
	}
	src := res.Source()
	if !strings.Contains(src, "signal(") || !strings.Contains(src, "persist(1)") {
		t.Fatalf("transformed source missing streaming artifacts:\n%s", src)
	}
	// End to end: optimized program equivalent and faster.
	base := runSource(t, streamable)
	opt := runSource(t, src)
	b1, _ := base.Program.ArrayData("out1")
	b2, _ := opt.Program.ArrayData("out1")
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("out1[%d] differs: %v vs %v", i, b1[i], b2[i])
		}
	}
	if opt.Stats.Time >= base.Stats.Time {
		t.Fatalf("optimized %v not faster than base %v", opt.Stats.Time, base.Stats.Time)
	}
}

func TestOptimizeRegularizesThenStreams(t *testing.T) {
	res, err := Optimize(gatherish, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Remarks.Has("reorder") {
		t.Fatalf("reorder not applied; report: %+v", res.Report)
	}
	if !res.Report.Remarks.Has("stream") {
		t.Fatalf("stream not applied after regularization; report: %+v", res.Report)
	}
	base := runSource(t, gatherish)
	opt := runSource(t, res.Source())
	c1, _ := base.Program.ArrayData("c")
	c2, _ := opt.Program.ArrayData("c")
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("c[%d] differs: %v vs %v", i, c1[i], c2[i])
		}
	}
}

func TestOptimizeMergesMultipleOffloads(t *testing.T) {
	src := `
float a[16384];
float b[16384];
int n;
int steps;
int main(void) {
    int s;
    int i;
    n = 16384;
    steps = 8;
    for (s = 0; s < steps; s++) {
        #pragma offload target(mic:0) inout(a : length(n))
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            a[i] = a[i] + 1.0;
        }
        #pragma offload target(mic:0) in(a : length(n)) inout(b : length(n))
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            b[i] = b[i] + a[i];
        }
    }
    return 0;
}
`
	res, err := Optimize(src, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Remarks.Has("merge") {
		t.Fatalf("merge not applied; report: %+v", res.Report)
	}
	base := runSource(t, src)
	opt := runSource(t, res.Source())
	if opt.Stats.KernelLaunches >= base.Stats.KernelLaunches {
		t.Fatalf("launches not reduced: %d vs %d", opt.Stats.KernelLaunches, base.Stats.KernelLaunches)
	}
	a1, _ := base.Program.ArrayData("a")
	a2, _ := opt.Program.ArrayData("a")
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("a[%d] differs", i)
		}
	}
}

func TestOptimizeDisabledDoesNothing(t *testing.T) {
	res, err := Optimize(streamable, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Applied) != 0 {
		t.Fatalf("disabled options applied %+v", res.Report.Applied)
	}
}

func TestOptimizeHostOnlyProgramUntouched(t *testing.T) {
	src := `
float a[100];
int main(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < 100; i++) {
        a[i] = i;
    }
    return 0;
}
`
	res, err := Optimize(src, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Applied) != 0 {
		t.Fatalf("host-only program was transformed: %+v", res.Report.Applied)
	}
}

func TestProfileDrivenBlockCount(t *testing.T) {
	base := runSource(t, streamable)
	k := machine.XeonPhi().LaunchOverhead
	prof := ProfileFromStats(base.Stats, k)
	if prof.TransferTime <= 0 || prof.ComputeTime < 0 {
		t.Fatalf("profile = %+v", prof)
	}
	n := prof.Blocks()
	if n < 2 || n > 64 {
		t.Fatalf("model block count %d outside [2,64]", n)
	}
	res, err := Optimize(streamable, Options{
		Streaming: true, ReduceMemory: true, Profile: prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range res.Report.Applied {
		if a.Opt == "stream" && strings.Contains(a.Detail, "blocks") {
			found = true
		}
	}
	if !found {
		t.Fatalf("profile-driven streaming not reported: %+v", res.Report)
	}
}

func TestProfileFromStatsClampsNegativeCompute(t *testing.T) {
	st := rt.Stats{DeviceBusy: 10, KernelLaunches: 100, TransferBusy: 1000}
	p := ProfileFromStats(st, engine.Duration(5))
	if p.ComputeTime != 0 {
		t.Fatalf("compute = %v, want clamped 0", p.ComputeTime)
	}
}

func TestReportFromRemarks(t *testing.T) {
	rs := pass.Remarks{
		{Pass: "streaming", Op: "stream", Pos: "3:4", Verdict: pass.VerdictApplied, Reason: "x"},
		{Pass: "streaming", Op: "stream", Pos: "7:4", Verdict: pass.VerdictSkippedIllegal, Reason: "no"},
	}
	r := ReportFromRemarks(rs)
	if len(r.Applied) != 1 || r.Applied[0].Opt != "stream" || r.Applied[0].At != "3:4" {
		t.Fatalf("Applied view = %+v", r.Applied)
	}
	if len(r.Notes) != 1 || !strings.Contains(r.Notes[0], "skipped-illegal") {
		t.Fatalf("Notes view = %+v", r.Notes)
	}
	if !strings.Contains(r.Applied[0].String(), "stream at 3:4: x") {
		t.Fatalf("Applied.String = %q", r.Applied[0].String())
	}
}

func TestAppliedString(t *testing.T) {
	a := Applied{Opt: "stream", Detail: "16 blocks"}
	if !strings.Contains(a.String(), "stream") {
		t.Fatal("Applied.String missing opt name")
	}
}

func TestOptimizeBadSource(t *testing.T) {
	if _, err := Optimize("int f(", DefaultOptions()); err == nil {
		t.Fatal("parse error not reported")
	}
	if _, err := Optimize("int main(void) { return ghost; }", DefaultOptions()); err == nil {
		t.Fatal("check error not reported")
	}
}

func TestDefaultBlocksUsedWithoutProfile(t *testing.T) {
	res, err := Optimize(streamable, Options{Streaming: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range res.Report.Applied {
		if a.Opt == "stream" && strings.Contains(a.Detail, "20 blocks") {
			found = true
		}
	}
	if !found {
		t.Fatalf("default block count not used: %+v (want %d)", res.Report.Applied, transform.DefaultBlocks)
	}
}
