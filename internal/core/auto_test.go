package core

import (
	"strings"
	"testing"

	"comp/internal/minic"
	"comp/internal/pass"
	"comp/internal/transform"
)

const plainOpenMP = `
float a[4096];
float b[4096];
float c[4096];
float total;
int n;
int main(void) {
    int i;
    n = 4096;
    for (i = 0; i < n; i++) {
        a[i] = i;
        b[i] = 2 * i;
    }
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        c[i] = a[i] + b[i];
    }
    total = 0.0;
    #pragma omp parallel for reduction(+:total)
    for (i = 0; i < n; i++) {
        total += c[i];
    }
    return 0;
}
`

func TestAutoOffloadInsertsClauses(t *testing.T) {
	f, err := minic.Parse(plainOpenMP)
	if err != nil {
		t.Fatal(err)
	}
	n, _, err := AutoOffload(f)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("annotated %d loops, want 2", n)
	}
	loops := transform.FindOffloadLoops(f)
	if len(loops) != 2 {
		t.Fatalf("offloaded loops = %d, want 2", len(loops))
	}
	// First loop: a, b in; c out.
	p1 := transform.OffloadPragma(loops[0])
	if len(p1.In) != 2 || len(p1.Out) != 1 || p1.Out[0].Name != "c" {
		t.Fatalf("first pragma = %s", p1)
	}
	// Second loop: c in; total (reduction scalar) inout.
	p2 := transform.OffloadPragma(loops[1])
	if len(p2.In) != 1 || p2.In[0].Name != "c" {
		t.Fatalf("second pragma in = %s", p2)
	}
	foundTotal := false
	for _, it := range p2.InOut {
		if it.Name == "total" && it.Length == nil {
			foundTotal = true
		}
	}
	if !foundTotal {
		t.Fatalf("reduction scalar not in inout: %s", p2)
	}
	// The annotated program must still check and print.
	out := minic.Print(f)
	if !strings.Contains(out, "#pragma offload target(mic:0)") {
		t.Fatalf("printed source missing pragma:\n%s", out)
	}
}

func TestAutoOffloadSemanticsPreserved(t *testing.T) {
	// CPU run of the plain program vs simulated run of the auto-offloaded
	// program: identical results.
	base := runSource(t, plainOpenMP)

	f, _ := minic.Parse(plainOpenMP)
	if _, _, err := AutoOffload(f); err != nil {
		t.Fatal(err)
	}
	offloaded := runSource(t, minic.Print(f))
	if offloaded.Stats.KernelLaunches != 2 {
		t.Fatalf("offloaded launches = %d, want 2", offloaded.Stats.KernelLaunches)
	}
	c1, _ := base.Program.ArrayData("c")
	c2, _ := offloaded.Program.ArrayData("c")
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("c[%d] differs: %v vs %v", i, c1[i], c2[i])
		}
	}
	t1, _ := base.Program.Scalar("total")
	t2, _ := offloaded.Program.Scalar("total")
	if t1 != t2 {
		t.Fatalf("reduction differs: %v vs %v", t1, t2)
	}
}

func TestAutoOffloadSkipsUnknownExtent(t *testing.T) {
	src := `
float *p;
int n;
int main(void) {
    int i;
    n = 64;
    p = (float *) malloc(n * sizeof(float));
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        p[i] = i;
    }
    return 0;
}
`
	f, _ := minic.Parse(src)
	n, remarks, err := AutoOffload(f)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("annotated %d loops, want 0 (unknown extent)", n)
	}
	skipped := remarks.Skipped()
	if len(skipped) == 0 || !strings.Contains(skipped[0].Reason, "extent") {
		t.Fatalf("missing skip remark: %v", remarks)
	}
	if skipped[0].Verdict != pass.VerdictSkippedIllegal {
		t.Fatalf("skip verdict = %s, want %s", skipped[0].Verdict, pass.VerdictSkippedIllegal)
	}
}

func TestAutoOffloadIdempotentOnAnnotated(t *testing.T) {
	f, _ := minic.Parse(streamable)
	if err := minic.Check(f).Err(); err != nil {
		t.Fatal(err)
	}
	n, _, err := AutoOffload(f)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("re-annotated %d already-offloaded loops", n)
	}
}

func TestOffloadAndOptimizePipeline(t *testing.T) {
	res, err := OffloadAndOptimize(plainOpenMP, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Remarks.Has("auto-offload") {
		t.Fatalf("auto-offload not reported: %+v", res.Report.Remarks)
	}
	if !res.Report.Remarks.Has("stream") {
		t.Fatalf("streaming not applied after auto-offload: %+v", res.Report.Remarks)
	}
	// End-to-end equivalence.
	base := runSource(t, plainOpenMP)
	opt := runSource(t, res.Source())
	c1, _ := base.Program.ArrayData("c")
	c2, _ := opt.Program.ArrayData("c")
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("c[%d] differs after full pipeline", i)
		}
	}
}
