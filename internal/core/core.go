// Package core is the COMP compiler driver: it runs the analyses over a
// MiniC translation unit, decides which of the paper's optimizations apply
// to each offload region, applies them in the profitable order
// (merging → regularization → streaming), and reports what it did.
//
// This corresponds to the source-to-source tool the paper builds on the
// Apricot framework: input is offload-annotated source, output is
// transformed source (printable via minic.Print) plus a per-loop report.
package core

import (
	"fmt"

	"comp/internal/analysis"
	"comp/internal/minic"
	"comp/internal/runtime"
	"comp/internal/sim/engine"
	"comp/internal/transform"
)

// Options selects optimizations. The zero value disables everything;
// DefaultOptions enables the full pipeline.
type Options struct {
	// Streaming enables §III data streaming on legal offloaded loops.
	Streaming bool
	// ReduceMemory applies the §III-B double-buffer variant when streaming.
	ReduceMemory bool
	// Persistent enables §III-C MIC-thread reuse for streamed kernels.
	Persistent bool
	// Merge enables §III-C offload merging on host loops with multiple
	// inner offloads.
	Merge bool
	// Regularize enables the §IV transformations (loop splitting, array
	// reordering, AoS→SoA).
	Regularize bool
	// Blocks fixes the streaming block count; 0 uses transform.DefaultBlocks
	// or, if Profile is set, the §III-B analytic model. BlocksAuto requests
	// measured tuning.
	Blocks int
	// Profile optionally carries measurements from an unoptimized run for
	// the block-count model.
	Profile *Profile
}

// BlocksAuto marks Options.Blocks as "choose by measurement". Drivers that
// can re-run the program (bench, the CLIs' -blocks auto) resolve it through
// transform.AutoTuner before the final compile; OptimizeFile itself treats
// it like 0 — the analytic model or DefaultBlocks — which is exactly the
// tuner's seed.
const BlocksAuto = -1

// DefaultOptions enables every optimization.
func DefaultOptions() Options {
	return Options{
		Streaming:    true,
		ReduceMemory: true,
		Persistent:   true,
		Merge:        true,
		Regularize:   true,
	}
}

// Profile carries the measurements the §III-B block-count model needs,
// typically from one unoptimized simulated run.
type Profile struct {
	TransferTime engine.Duration // D
	ComputeTime  engine.Duration // C (kernel time, launch overhead excluded)
	LaunchCost   engine.Duration // K
}

// ProfileFromStats derives the model inputs from an unoptimized run.
func ProfileFromStats(st runtime.Stats, launchCost engine.Duration) *Profile {
	c := st.DeviceBusy - engine.Duration(st.KernelLaunches)*launchCost
	if c < 0 {
		c = 0
	}
	return &Profile{TransferTime: st.TransferBusy, ComputeTime: c, LaunchCost: launchCost}
}

// Blocks evaluates the analytic model on the profile.
func (p *Profile) Blocks() int {
	return transform.OptimalBlocks(p.TransferTime, p.ComputeTime, p.LaunchCost)
}

// Applied records one optimization application.
type Applied struct {
	Opt    string
	At     minic.Pos
	Detail string
}

func (a Applied) String() string {
	return fmt.Sprintf("%s at %s: %s", a.Opt, a.At, a.Detail)
}

// Report summarizes a compilation.
type Report struct {
	Applied []Applied
	Notes   []string
}

func (r *Report) apply(opt string, at minic.Pos, format string, args ...interface{}) {
	r.Applied = append(r.Applied, Applied{Opt: opt, At: at, Detail: fmt.Sprintf(format, args...)})
}

func (r *Report) note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Has reports whether an optimization with the given name was applied.
func (r *Report) Has(opt string) bool {
	for _, a := range r.Applied {
		if a.Opt == opt {
			return true
		}
	}
	return false
}

// Result is the output of Optimize.
type Result struct {
	File   *minic.File
	Report Report
}

// Source prints the transformed translation unit.
func (r *Result) Source() string { return minic.Print(r.File) }

// Optimize parses, checks, and optimizes a MiniC source text.
func Optimize(src string, opt Options) (*Result, error) {
	f, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := minic.Check(f).Err(); err != nil {
		return nil, err
	}
	return OptimizeFile(f, opt)
}

// OptimizeFile optimizes a parsed and checked file in place.
func OptimizeFile(f *minic.File, opt Options) (*Result, error) {
	res := &Result{File: f}
	rep := &res.Report

	// Phase 1 — offload merging (§III-C). Hoisting first exposes the big
	// picture: loops that stay separate offloads go on to streaming.
	if opt.Merge {
		for _, outer := range transform.MergeCandidates(f, 2) {
			inner := len(innerOffloads(outer))
			if err := transform.MergeOffloads(f, outer); err != nil {
				rep.note("merge declined at %s: %v", outer.Pos(), err)
				continue
			}
			rep.apply("merge", outer.Pos(), "hoisted %d inner offloads into one region", inner)
		}
	}

	// Phase 2 — regularization (§IV), then Phase 3 — streaming (§III) on
	// whatever is (or became) legal.
	for _, loop := range transform.FindOffloadLoops(f) {
		if transform.OmpPragma(loop) == nil {
			// Merged regions: serial outer loop on the device; neither
			// regularization nor streaming applies to the region itself.
			continue
		}
		info, err := analysis.Analyze(loop, f)
		if err != nil {
			rep.note("analysis failed at %s: %v", loop.Pos(), err)
			continue
		}
		var pendingGathers []transform.GatherInfo
		if opt.Regularize && len(info.IrregularAccesses()) > 0 {
			// Gathers with a regular remainder prefer splitting (free at
			// runtime, §IV); strided and leftover patterns prefer array
			// reordering, which also unlocks streaming. Splitting is only
			// attempted when a gather is present so that pure strided
			// loops (nn) take the reordering path.
			hasGather := false
			for _, ir := range analysis.ClassifyIrregular(info) {
				if ir.Pattern == analysis.PatternGather {
					hasGather = true
				}
			}
			if hasGather {
				if split, err := transform.SplitLoop(f, loop); err != nil {
					rep.note("split declined at %s: %v", loop.Pos(), err)
				} else if split {
					rep.apply("split", loop.Pos(), "peeled irregular prefix; regular remainder vectorizes")
					continue // the loop was replaced by the wrapped pair
				}
			}
			if n, err := transform.AoSToSoA(f, loop); err != nil {
				rep.note("soa declined at %s: %v", loop.Pos(), err)
			} else if n > 0 {
				rep.apply("soa", loop.Pos(), "converted %d struct arrays to SoA", n)
			}
			if opt.Streaming {
				// Defer read-only gathers into the streaming pipeline (§IV
				// "pipelining regularization"): the gather of block i+1
				// overlaps the computation of block i.
				n, gathers, err := transform.ReorderArraysPipelined(f, loop)
				switch {
				case err != nil:
					rep.note("pipelined reorder declined at %s: %v", loop.Pos(), err)
				case n > 0:
					pendingGathers = gathers
					rep.apply("reorder", loop.Pos(), "regularized %d accesses (gathers pipelined into streaming)", n)
				}
			}
			if n, err := transform.ReorderArrays(f, loop); err != nil {
				rep.note("reorder declined at %s: %v", loop.Pos(), err)
			} else if n > 0 {
				rep.apply("reorder", loop.Pos(), "regularized %d irregular accesses", n)
			}
		}
		if !opt.Streaming {
			continue
		}
		blocks := opt.Blocks
		if blocks == BlocksAuto {
			blocks = 0
		}
		if blocks == 0 && opt.Profile != nil {
			blocks = opt.Profile.Blocks()
		}
		err = transform.Stream(f, loop, transform.StreamOptions{
			Blocks:       blocks,
			ReduceMemory: opt.ReduceMemory,
			Persistent:   opt.Persistent,
			Gathers:      pendingGathers,
		})
		if err != nil {
			rep.note("streaming declined at %s: %v", loop.Pos(), err)
			if len(pendingGathers) > 0 {
				// The permutation arrays still need filling; fall back to
				// the upfront whole-array gather.
				postInfo, aerr := analysis.Analyze(loop, f)
				if aerr != nil {
					return nil, fmt.Errorf("core: pipelined gathers stranded at %s: %v", loop.Pos(), aerr)
				}
				if gerr := transform.UpfrontGathers(f, loop, pendingGathers, postInfo.Upper); gerr != nil {
					return nil, fmt.Errorf("core: %v", gerr)
				}
				rep.note("pipelined gathers at %s fell back to upfront gathering", loop.Pos())
			}
			continue
		}
		if len(pendingGathers) > 0 {
			rep.apply("pipeline-gather", loop.Pos(), "%d gathers overlapped with transfer and compute", len(pendingGathers))
		}
		n := blocks
		if n == 0 {
			n = transform.DefaultBlocks
		}
		rep.apply("stream", loop.Pos(), "pipelined into %d blocks (reduceMemory=%v persistent=%v)",
			n, opt.ReduceMemory, opt.Persistent)
	}

	// The transformed AST must still check.
	if err := minic.Check(f).Err(); err != nil {
		return nil, fmt.Errorf("core: transformed program fails checking: %w", err)
	}
	return res, nil
}

func innerOffloads(outer *minic.ForStmt) []*minic.ForStmt {
	var out []*minic.ForStmt
	minic.Inspect(outer.Body, func(n minic.Node) bool {
		if fs, ok := n.(*minic.ForStmt); ok && transform.OffloadPragma(fs) != nil {
			out = append(out, fs)
		}
		return true
	})
	return out
}
