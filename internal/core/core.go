// Package core is the COMP compiler driver: a thin compatibility layer
// over the pass manager (internal/pass). Options translates the paper's
// boolean knobs into a pipeline spec (merging → regularization →
// streaming, the profitable order); the manager runs the passes and
// records every decision as a structured remark, which Report re-renders
// for human output.
//
// This corresponds to the source-to-source tool the paper builds on the
// Apricot framework: input is offload-annotated source, output is
// transformed source (printable via minic.Print) plus the remark trail.
package core

import (
	"fmt"
	"strings"

	"comp/internal/minic"
	"comp/internal/pass"
	"comp/internal/runtime"
	"comp/internal/sim/engine"
	"comp/internal/transform"
)

// Options selects optimizations. The zero value disables everything;
// DefaultOptions enables the full pipeline.
type Options struct {
	// Streaming enables §III data streaming on legal offloaded loops.
	Streaming bool
	// ReduceMemory applies the §III-B double-buffer variant when streaming.
	ReduceMemory bool
	// Persistent enables §III-C MIC-thread reuse for streamed kernels.
	Persistent bool
	// Merge enables §III-C offload merging on host loops with multiple
	// inner offloads.
	Merge bool
	// Regularize enables the §IV transformations (loop splitting, array
	// reordering, AoS→SoA).
	Regularize bool
	// Blocks fixes the streaming block count; 0 uses transform.DefaultBlocks
	// or, if Profile is set, the §III-B analytic model. BlocksAuto requests
	// measured tuning.
	Blocks int
	// Profile optionally carries measurements from an unoptimized run for
	// the block-count model.
	Profile *Profile
}

// BlocksAuto marks Options.Blocks as "choose by measurement". Drivers that
// can re-run the program (bench, the CLIs' -blocks auto) resolve it through
// transform.AutoTuner before the final compile; OptimizeFile itself treats
// it like 0 — the analytic model or DefaultBlocks — which is exactly the
// tuner's seed.
const BlocksAuto = -1

// DefaultOptions enables every optimization.
func DefaultOptions() Options {
	return Options{
		Streaming:    true,
		ReduceMemory: true,
		Persistent:   true,
		Merge:        true,
		Regularize:   true,
	}
}

// Spec returns the pipeline spec equivalent to the boolean knobs, in the
// paper's profitable order. Compiling with Options and with the returned
// spec (plus PassConfig) yields byte-identical output by construction:
// both paths build the same manager.
func (o Options) Spec() string { return strings.Join(o.passNames(), ",") }

func (o Options) passNames() []string {
	var names []string
	if o.Merge {
		names = append(names, "merge")
	}
	if o.Regularize {
		names = append(names, "regularize")
	}
	if o.Streaming {
		names = append(names, "streaming")
	}
	return names
}

// PassConfig resolves the streaming knobs — including the Profile-driven
// block-count model — into the pass manager's config.
func (o Options) PassConfig() pass.Config {
	blocks := o.Blocks
	if blocks == BlocksAuto {
		blocks = 0
	}
	if blocks == 0 && o.Profile != nil {
		blocks = o.Profile.Blocks()
	}
	return pass.Config{Blocks: blocks, ReduceMemory: o.ReduceMemory, Persistent: o.Persistent}
}

// Profile carries the measurements the §III-B block-count model needs,
// typically from one unoptimized simulated run.
type Profile struct {
	TransferTime engine.Duration // D
	ComputeTime  engine.Duration // C (kernel time, launch overhead excluded)
	LaunchCost   engine.Duration // K
}

// ProfileFromStats derives the model inputs from an unoptimized run.
func ProfileFromStats(st runtime.Stats, launchCost engine.Duration) *Profile {
	c := st.DeviceBusy - engine.Duration(st.KernelLaunches)*launchCost
	if c < 0 {
		c = 0
	}
	return &Profile{TransferTime: st.TransferBusy, ComputeTime: c, LaunchCost: launchCost}
}

// Blocks evaluates the analytic model on the profile.
func (p *Profile) Blocks() int {
	return transform.OptimalBlocks(p.TransferTime, p.ComputeTime, p.LaunchCost)
}

// Applied is the rendered view of one applied remark.
type Applied struct {
	Opt    string
	At     string
	Detail string
}

func (a Applied) String() string {
	return fmt.Sprintf("%s at %s: %s", a.Opt, a.At, a.Detail)
}

// Report summarizes a compilation. Remarks is the authoritative record —
// every pass decision with verdict and reason; Applied and Notes are
// rendered views kept for human-facing output.
type Report struct {
	Remarks pass.Remarks
	Applied []Applied
	Notes   []string
}

// ReportFromRemarks renders a remark trail into the view form.
func ReportFromRemarks(rs pass.Remarks) Report {
	rep := Report{Remarks: rs}
	for _, r := range rs {
		if r.Verdict.Applied() {
			op := r.Op
			if op == "" {
				op = r.Pass
			}
			rep.Applied = append(rep.Applied, Applied{Opt: op, At: r.Pos, Detail: r.Reason})
		} else {
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s %s at %s: %s", r.Pass, r.Verdict, r.Pos, r.Reason))
		}
	}
	return rep
}

// Result is the output of Optimize.
type Result struct {
	File   *minic.File
	Report Report
}

// Source prints the transformed translation unit.
func (r *Result) Source() string { return minic.Print(r.File) }

// Optimize parses, checks, and optimizes a MiniC source text.
func Optimize(src string, opt Options) (*Result, error) {
	f, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := minic.Check(f).Err(); err != nil {
		return nil, err
	}
	return OptimizeFile(f, opt)
}

// OptimizeFile optimizes a parsed and checked file in place by running
// the pipeline Options selects through the pass manager.
func OptimizeFile(f *minic.File, opt Options) (*Result, error) {
	m, err := pass.New(opt.passNames(), opt.PassConfig())
	if err != nil {
		return nil, err
	}
	remarks, err := m.Run(f)
	if err != nil {
		return nil, err
	}
	return &Result{File: f, Report: ReportFromRemarks(remarks)}, nil
}

// TunedSpec prefixes a decision's pipeline spec with the tune stage so the
// decision lands in the remark trail ("tune" alone when the tuner decided
// no pass is profitable).
func TunedSpec(d *pass.TuneDecision) string {
	if d == nil || d.Spec == "" {
		return "tune"
	}
	return "tune," + d.Spec
}

// OptimizeTuned compiles src under a tuner's decision: the decision's
// pipeline spec runs behind a leading tune stage that records the decision
// — predicted vs measured cost included — as a structured remark.
func OptimizeTuned(src string, d *pass.TuneDecision) (*Result, error) {
	return OptimizeSpec(src, TunedSpec(d), tunedConfig(d))
}

// OptimizeFileTuned is OptimizeTuned over a parsed and checked file.
func OptimizeFileTuned(f *minic.File, d *pass.TuneDecision) (*Result, error) {
	return OptimizeFileSpec(f, TunedSpec(d), tunedConfig(d))
}

func tunedConfig(d *pass.TuneDecision) pass.Config {
	cfg := pass.DefaultConfig()
	cfg.Tuned = d
	if d != nil {
		cfg.Blocks = d.Blocks
	}
	return cfg
}

// OptimizeSpec parses, checks, and optimizes a MiniC source text under an
// explicit pipeline spec (see pass.ParseSpec) instead of boolean Options.
func OptimizeSpec(src, spec string, cfg pass.Config) (*Result, error) {
	f, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := minic.Check(f).Err(); err != nil {
		return nil, err
	}
	return OptimizeFileSpec(f, spec, cfg)
}

// OptimizeFileSpec runs an explicit pipeline spec over a parsed and
// checked file in place.
func OptimizeFileSpec(f *minic.File, spec string, cfg pass.Config) (*Result, error) {
	m, err := pass.Parse(spec, cfg)
	if err != nil {
		return nil, err
	}
	remarks, err := m.Run(f)
	if err != nil {
		return nil, err
	}
	return &Result{File: f, Report: ReportFromRemarks(remarks)}, nil
}
