package core

import (
	"fmt"

	"comp/internal/interp"
	"comp/internal/minic"
	"comp/internal/pass"
	"comp/internal/runtime"
	"comp/internal/sim/engine"
	"comp/internal/tune"
)

// TuneSource runs the unified cost-model pipeline search (internal/tune)
// for one MiniC program on one simulated platform: extract the workload's
// features, measure one baseline run of the program as written, then let
// the tuner rank candidate (spec, blocks, streams) configurations by
// predicted cost and probe only the top few by simulated execution.
//
// This is the one measurement recipe every entry point shares — compc and
// compsim's -tune flags, the serving layer's tuned plans, and the bench
// harness's tuner-vs-oracle table all call it, so their decisions are
// comparable. key identifies the workload in the tuner's learned model
// (use a stable name, not the source text); setup injects input data
// before each measured run and may be nil.
func TuneSource(t *tune.Tuner, key, src string, cfg runtime.Config, setup func(*interp.Program) error) (tune.Decision, error) {
	f, err := minic.Parse(src)
	if err != nil {
		return tune.Decision{}, fmt.Errorf("tune %s: %w", key, err)
	}
	if err := minic.Check(f).Err(); err != nil {
		return tune.Decision{}, fmt.Errorf("tune %s: %w", key, err)
	}
	feats, err := tune.Extract(f)
	if err != nil {
		return tune.Decision{}, fmt.Errorf("tune %s: features: %w", key, err)
	}
	base, err := tuneProbe(src, cfg, setup)
	if err != nil {
		return tune.Decision{}, fmt.Errorf("tune %s: baseline: %w", key, err)
	}
	d, err := t.Tune(tune.Request{
		Key:      key,
		Workload: feats,
		Baseline: tune.BaselineFromStats(base.Stats, cfg.MIC.LaunchOverhead),
		Platform: cfg,
		Measure: func(c tune.Config) (engine.Duration, error) {
			res, err := TunedRun(src, c, cfg, setup)
			if err != nil {
				return 0, err
			}
			return res.Stats.Time, nil
		},
	})
	if err != nil {
		return tune.Decision{}, fmt.Errorf("tune %s: %w", key, err)
	}
	return d, nil
}

// TunedRun measures one candidate configuration: compile the program under
// the candidate's pipeline spec and block count (the empty spec runs the
// source as written) and execute it on the simulated platform. This is the
// probe the tuner's search spends its budget on, exported so the bench
// harness can replay the exact same measurement exhaustively as the
// oracle sweep.
func TunedRun(src string, c tune.Config, cfg runtime.Config, setup func(*interp.Program) error) (runtime.Result, error) {
	if c.Spec != "" {
		res, err := OptimizeSpec(src, c.Spec, pass.Config{
			Blocks: c.Blocks, ReduceMemory: true, Persistent: true,
		})
		if err != nil {
			return runtime.Result{}, err
		}
		src = res.Source()
	}
	return tuneProbe(src, cfg, setup)
}

// tuneProbe executes one measured run.
func tuneProbe(src string, cfg runtime.Config, setup func(*interp.Program) error) (runtime.Result, error) {
	p, err := interp.Compile(src)
	if err != nil {
		return runtime.Result{}, err
	}
	return runtime.RunWithSetup(p, cfg, setup)
}
