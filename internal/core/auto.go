package core

import (
	"fmt"

	"comp/internal/analysis"
	"comp/internal/minic"
	"comp/internal/transform"
)

// AutoOffload reimplements the Apricot capability the paper builds on
// (§VI: "Apricot automatically inserts LEO offload and data transfer
// clauses in OpenMP applications for MIC"): every `omp parallel for` loop
// that does not already carry an offload pragma gets one, with in/out/
// inout clauses inferred by liveness analysis and lengths taken from the
// array declarations.
//
// Loops whose transfer lengths cannot be determined statically (pointer
// arrays with no declared extent) are left on the host, with a note.
// Returns the number of loops annotated.
func AutoOffload(f *minic.File, rep *Report) (int, error) {
	if err := minic.Check(f).Err(); err != nil {
		return 0, err
	}
	count := 0
	var loops []*minic.ForStmt
	minic.Inspect(f, func(n minic.Node) bool {
		fs, ok := n.(*minic.ForStmt)
		if !ok {
			return true
		}
		if transform.OmpPragma(fs) != nil && transform.OffloadPragma(fs) == nil {
			loops = append(loops, fs)
			// Do not descend: nested parallel loops offload with their
			// parent region.
			return false
		}
		return true
	})
	for _, fs := range loops {
		info, err := analysis.Analyze(fs, f)
		if err != nil {
			if rep != nil {
				rep.note("auto-offload skipped loop at %s: %v", fs.Pos(), err)
			}
			continue
		}
		clauses := analysis.InferClauses(info)
		p, err := buildOffloadPragma(f, info, clauses)
		if err != nil {
			if rep != nil {
				rep.note("auto-offload skipped loop at %s: %v", fs.Pos(), err)
			}
			continue
		}
		fs.Pragmas = append([]*minic.Pragma{p}, fs.Pragmas...)
		if rep != nil {
			rep.apply("auto-offload", fs.Pos(), "inserted offload with %d in, %d out, %d inout items",
				len(p.In), len(p.Out), len(p.InOut))
		}
		count++
	}
	if count > 0 {
		if err := minic.Check(f).Err(); err != nil {
			return count, fmt.Errorf("core: auto-offloaded program fails checking: %w", err)
		}
	}
	return count, nil
}

// buildOffloadPragma materializes inferred clauses into a pragma, sizing
// each array by its declaration.
func buildOffloadPragma(f *minic.File, info *analysis.LoopInfo, c analysis.Clauses) (*minic.Pragma, error) {
	p := &minic.Pragma{Kind: minic.PragmaOffload, Target: "mic:0"}
	add := func(names []string, dst *[]minic.TransferItem) error {
		for _, name := range names {
			ln := arrayExtent(f, name)
			if ln == nil {
				return fmt.Errorf("array %s has no statically known extent", name)
			}
			*dst = append(*dst, minic.TransferItem{Name: name, Length: ln})
		}
		return nil
	}
	if err := add(c.In, &p.In); err != nil {
		return nil, err
	}
	if err := add(c.Out, &p.Out); err != nil {
		return nil, err
	}
	if err := add(c.InOut, &p.InOut); err != nil {
		return nil, err
	}
	// Reduction scalars must round-trip by value.
	for _, red := range info.Reductions {
		p.InOut = append(p.InOut, minic.TransferItem{Name: red})
	}
	return p, nil
}

// arrayExtent returns a fresh expression for a global array's declared
// element count, or nil when unknown.
func arrayExtent(f *minic.File, name string) minic.Expr {
	for _, d := range f.Decls {
		vd, ok := d.(*minic.VarDecl)
		if !ok || vd.Name != name {
			continue
		}
		if arr, ok := vd.Type.(*minic.Array); ok && arr.Len != nil {
			return minic.CloneExpr(arr.Len)
		}
	}
	return nil
}

// OffloadAndOptimize is the full Apricot-plus-COMP pipeline: insert
// offload clauses into a plain OpenMP program, then run the optimization
// passes over the result.
func OffloadAndOptimize(src string, opt Options) (*Result, error) {
	file, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	res := &Result{File: file}
	if _, err := AutoOffload(file, &res.Report); err != nil {
		return nil, err
	}
	optimized, err := OptimizeFile(file, opt)
	if err != nil {
		return nil, err
	}
	optimized.Report.Applied = append(res.Report.Applied, optimized.Report.Applied...)
	optimized.Report.Notes = append(res.Report.Notes, optimized.Report.Notes...)
	return optimized, nil
}
