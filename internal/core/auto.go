package core

import (
	"comp/internal/minic"
	"comp/internal/pass"
)

// AutoOffload annotates every `omp parallel for` loop that does not
// already carry an offload pragma (the Apricot capability the paper
// builds on, implemented as the "auto-offload" pass). It returns the
// number of loops annotated plus the remark trail; loops whose transfer
// lengths cannot be determined statically stay on the host with a
// skipped remark.
func AutoOffload(f *minic.File) (int, pass.Remarks, error) {
	if err := minic.Check(f).Err(); err != nil {
		return 0, nil, err
	}
	m, err := pass.New([]string{"auto-offload"}, pass.Config{})
	if err != nil {
		return 0, nil, err
	}
	remarks, err := m.Run(f)
	return len(remarks.Applied()), remarks, err
}

// OffloadAndOptimize is the full Apricot-plus-COMP pipeline: insert
// offload clauses into a plain OpenMP program, then run the optimization
// passes Options selects over the result — one manager run, one remark
// trail.
func OffloadAndOptimize(src string, opt Options) (*Result, error) {
	f, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := minic.Check(f).Err(); err != nil {
		return nil, err
	}
	names := append([]string{"auto-offload"}, opt.passNames()...)
	m, err := pass.New(names, opt.PassConfig())
	if err != nil {
		return nil, err
	}
	remarks, err := m.Run(f)
	if err != nil {
		return nil, err
	}
	return &Result{File: f, Report: ReportFromRemarks(remarks)}, nil
}
