package bench

import "testing"

// TestColumnarRegressionGuard regenerates the scalar-VM-vs-columnar report
// and fails if any vectorizable row's speedup ratio fell more than 10%
// below the committed BENCH_columnar.json. Scalar-only rows (no fused
// vector ops) sit near 1.0 by construction and are exempt from the
// per-row check.
func TestColumnarRegressionGuard(t *testing.T) {
	var committed ColumnarReport
	g := startGuard(t, "BENCH_columnar.json", "compbench -columnar", &committed)
	g.requireRows(len(committed.Rows))

	fresh, err := NewRunner().ColumnarBench(committed.Iters)
	if err != nil {
		t.Fatal(err)
	}
	freshRows := map[string]ColumnarRow{}
	for _, row := range fresh.Rows {
		freshRows[row.Name] = row
	}

	for _, want := range committed.Rows {
		if want.Note != "" || want.VecLoops == 0 {
			continue
		}
		got, ok := freshRows[want.Name]
		if !ok {
			g.failf("%s: missing from fresh report", want.Name)
			continue
		}
		if got.VecLoops < want.VecLoops {
			g.failf("%s: %d fused vector loops vs committed %d (qualifier regressed)",
				want.Name, got.VecLoops, want.VecLoops)
			continue
		}
		g.speedup(want.Name, got.Speedup, want.Speedup)
	}
	g.speedup("geomean", fresh.GeomeanSpeedup, committed.GeomeanSpeedup)
	g.finish()
}
