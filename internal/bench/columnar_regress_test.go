package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// TestColumnarRegressionGuard regenerates the scalar-VM-vs-columnar report
// and fails if any vectorizable row's speedup ratio fell more than 10%
// below the committed BENCH_columnar.json. Ratios, not nanoseconds, so it
// transfers across machines; scalar-only rows (no fused vector ops) sit
// near 1.0 by construction and are exempt from the per-row check. Like the
// other bench guards it only runs when CI (or a developer) opts in with
// COMP_BENCH_REGRESS=1.
func TestColumnarRegressionGuard(t *testing.T) {
	if os.Getenv("COMP_BENCH_REGRESS") == "" {
		t.Skip("set COMP_BENCH_REGRESS=1 to run the bench regression guard")
	}
	raw, err := os.ReadFile("../../BENCH_columnar.json")
	if err != nil {
		t.Fatalf("read committed report: %v", err)
	}
	var committed ColumnarReport
	if err := json.Unmarshal(raw, &committed); err != nil {
		t.Fatalf("parse committed report: %v", err)
	}
	if len(committed.Rows) == 0 {
		t.Fatal("committed report is empty; regenerate with compbench -columnar")
	}

	fresh, err := NewRunner().ColumnarBench(committed.Iters)
	if err != nil {
		t.Fatal(err)
	}
	freshRows := map[string]ColumnarRow{}
	for _, row := range fresh.Rows {
		freshRows[row.Name] = row
	}

	const tolerance = 0.90 // fresh speedup must stay within 10% of committed
	var failures []string
	for _, want := range committed.Rows {
		if want.Note != "" || want.VecLoops == 0 {
			continue
		}
		got, ok := freshRows[want.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from fresh report", want.Name))
			continue
		}
		if got.VecLoops < want.VecLoops {
			failures = append(failures, fmt.Sprintf("%s: %d fused vector loops vs committed %d (qualifier regressed)",
				want.Name, got.VecLoops, want.VecLoops))
			continue
		}
		if got.Speedup < want.Speedup*tolerance {
			failures = append(failures, fmt.Sprintf("%s: columnar speedup %.2fx vs committed %.2fx (-%.1f%%, limit -10%%)",
				want.Name, got.Speedup, want.Speedup, 100*(1-got.Speedup/want.Speedup)))
		} else if got.Speedup < want.Speedup {
			t.Logf("%s: columnar speedup drifted %.2fx -> %.2fx (within tolerance)",
				want.Name, want.Speedup, got.Speedup)
		}
	}
	if fresh.GeomeanSpeedup < committed.GeomeanSpeedup*tolerance {
		failures = append(failures, fmt.Sprintf("geomean: %.2fx vs committed %.2fx",
			fresh.GeomeanSpeedup, committed.GeomeanSpeedup))
	}
	for _, f := range failures {
		t.Error(f)
	}
	if len(failures) > 0 {
		t.Fatalf("%d row(s) regressed; if intentional, regenerate BENCH_columnar.json with compbench -columnar", len(failures))
	}
}
