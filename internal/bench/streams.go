package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"comp/internal/runtime"
	"comp/internal/workloads"
)

// The streams report is the repo's perf-trajectory artifact: for every
// workload it measures (a) how much the device-sharing scheduler gains over
// serialized single-stream execution of the same concurrent request batch,
// and (b) how close the online block-count autotuner lands to the
// exhaustive-sweep oracle and how many probe runs it spent. compbench
// -streams writes it as BENCH_streams.json.

// StreamsRow is one workload's line.
type StreamsRow struct {
	Name string `json:"name"`
	// Note marks workloads the scheduler cannot run ("n/a shared-memory").
	Note string `json:"note,omitempty"`

	// SerializedNs is the makespan of the request batch on one stream;
	// ConcurrentNs on the configured stream count. Speedup is their ratio.
	SerializedNs int64   `json:"serialized_ns,omitempty"`
	ConcurrentNs int64   `json:"concurrent_ns,omitempty"`
	Speedup      float64 `json:"speedup,omitempty"`
	// CrossStreamOverlapNs is time ≥2 streams computed simultaneously in
	// the concurrent run.
	CrossStreamOverlapNs int64 `json:"cross_stream_overlap_ns,omitempty"`

	// Autotuner vs exhaustive sweep on the streaming block count.
	TunedBlocks  int   `json:"tuned_blocks,omitempty"`
	TunedNs      int64 `json:"tuned_ns,omitempty"`
	TunerProbes  int   `json:"tuner_probes,omitempty"`
	OracleBlocks int   `json:"oracle_blocks,omitempty"`
	OracleNs     int64 `json:"oracle_ns,omitempty"`
	// TunerGap is TunedNs/OracleNs − 1 (0 = tuner matched the oracle).
	TunerGap float64 `json:"tuner_gap"`
}

// StreamsReport aggregates the per-workload rows.
type StreamsReport struct {
	Streams  int          `json:"streams"`
	Requests int          `json:"requests"`
	Rows     []StreamsRow `json:"workloads"`
	// SpeedupWins counts workloads whose scheduler speedup is ≥ 1.3.
	SpeedupWins int `json:"speedup_wins_1_3x"`
	// MaxTunerGap is the worst TunerGap across measured workloads.
	MaxTunerGap float64 `json:"max_tuner_gap"`
	// MaxTunerProbes is the largest probe count any workload spent.
	MaxTunerProbes int `json:"max_tuner_probes"`
}

// StreamsBenchmark measures one workload: the scheduler speedup of
// `requests` concurrent requests on `streams` streams over the same batch
// serialized on one stream, plus the autotuner-vs-sweep comparison. The
// per-request program is the workload's tuned streaming variant.
func (r *Runner) StreamsBenchmark(b *workloads.Benchmark, streams, requests int) (StreamsRow, error) {
	row := StreamsRow{Name: b.Name}
	if b.SharedMem {
		row.Note = "n/a shared-memory"
		return row, nil
	}
	tuned, err := r.TuneStreaming(b)
	if err != nil {
		return row, err
	}
	oracle, oracleN, err := r.SweepStreaming(b)
	if err != nil {
		return row, err
	}
	row.TunedBlocks = tuned.Blocks
	row.TunedNs = int64(tuned.Time)
	row.TunerProbes = tuned.Probes
	row.OracleBlocks = oracleN
	row.OracleNs = int64(oracle.Stats.Time)
	if oracle.Stats.Time > 0 {
		row.TunerGap = float64(tuned.Time)/float64(oracle.Stats.Time) - 1
	}

	opt := streamingOptions(b, tuned.Blocks)
	ro := workloads.RunOptions{Variant: workloads.MICOptimized, Opt: opt}
	for _, nStreams := range []int{1, streams} {
		sched, err := runtime.NewScheduler(runtime.DefaultConfig(), nStreams)
		if err != nil {
			return row, err
		}
		for i := 0; i < requests; i++ {
			p, _, err := b.Prepare(ro)
			if err != nil {
				return row, err
			}
			sched.Submit(runtime.Request{
				Label:   fmt.Sprintf("%s-%02d", b.Name, i),
				Program: p,
				Setup:   b.Setup,
			})
		}
		res, err := sched.Run()
		if err != nil {
			return row, err
		}
		if nStreams == 1 {
			row.SerializedNs = int64(res.Stats.Time)
		} else {
			row.ConcurrentNs = int64(res.Stats.Time)
			row.CrossStreamOverlapNs = int64(res.Stats.CrossStreamOverlap)
		}
	}
	if row.ConcurrentNs > 0 {
		row.Speedup = float64(row.SerializedNs) / float64(row.ConcurrentNs)
	}
	return row, nil
}

// Streams measures every workload and assembles the report.
func (r *Runner) Streams(streams, requests int) (*StreamsReport, error) {
	rep := &StreamsReport{Streams: streams, Requests: requests}
	for _, b := range workloads.All() {
		row, err := r.StreamsBenchmark(b, streams, requests)
		if err != nil {
			return nil, fmt.Errorf("streams %s: %w", b.Name, err)
		}
		rep.Rows = append(rep.Rows, row)
		if row.Note != "" {
			continue
		}
		if row.Speedup >= 1.3 {
			rep.SpeedupWins++
		}
		if row.TunerGap > rep.MaxTunerGap {
			rep.MaxTunerGap = row.TunerGap
		}
		if row.TunerProbes > rep.MaxTunerProbes {
			rep.MaxTunerProbes = row.TunerProbes
		}
	}
	return rep, nil
}

// WriteJSON emits the report as indented JSON (BENCH_streams.json).
func (rep *StreamsReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Format renders the report as an aligned text table.
func (rep *StreamsReport) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "stream scheduler — %d requests, %d streams vs serialized\n", rep.Requests, rep.Streams)
	fmt.Fprintf(&sb, "%-14s %12s %12s %8s %8s %8s %8s %7s\n",
		"benchmark", "serial(ns)", "concur(ns)", "speedup", "tunedN", "oracleN", "gap%", "probes")
	for _, row := range rep.Rows {
		if row.Note != "" {
			fmt.Fprintf(&sb, "%-14s %12s\n", row.Name, row.Note)
			continue
		}
		fmt.Fprintf(&sb, "%-14s %12d %12d %8.2f %8d %8d %8.1f %7d\n",
			row.Name, row.SerializedNs, row.ConcurrentNs, row.Speedup,
			row.TunedBlocks, row.OracleBlocks, row.TunerGap*100, row.TunerProbes)
	}
	fmt.Fprintf(&sb, "  note: %d/%d workloads at ≥1.3x; worst tuner gap %.1f%%; max probes %d\n",
		rep.SpeedupWins, len(rep.Rows), rep.MaxTunerGap*100, rep.MaxTunerProbes)
	return sb.String()
}
