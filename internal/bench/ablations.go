package bench

import (
	"fmt"

	"comp/internal/core"
	"comp/internal/myo"
	"comp/internal/sim/engine"
	"comp/internal/sim/machine"
	"comp/internal/sim/pcie"
	"comp/internal/transform"
	"comp/internal/workloads"
)

// thin aliases keeping the ablation code readable.
var (
	pcieNew = func(sim *engine.Sim) *pcie.Bus { return pcie.New(sim, pcie.Default()) }
	pcieH2D = pcie.HostToDevice
)

// BlockSizeSweep measures blackscholes streamed at each block count and
// compares with the §III-B analytic model's prediction, reproducing the
// paper's finding that the best N for most benchmarks lies between 10 and
// 40 (scaled here; see machine params).
func (r *Runner) BlockSizeSweep() (*Figure, error) {
	f := &Figure{
		ID:      "blocksweep",
		Title:   "streamed time vs block count N (blackscholes) and the SIII-B model",
		Columns: []string{"time-us", "model-us"},
	}
	b, err := workloads.Get("blackscholes")
	if err != nil {
		return nil, err
	}
	naive, err := r.run(b, workloads.MICNaive, core.Options{})
	if err != nil {
		return nil, err
	}
	k := machine.XeonPhi().LaunchOverhead
	prof := core.ProfileFromStats(naive.Stats, k)
	for _, n := range SweepBlocks {
		res, err := r.run(b, workloads.MICOptimized, streamingOptions(b, n))
		if err != nil {
			return nil, err
		}
		model := transform.ModelTime(prof.TransferTime, prof.ComputeTime, k, n)
		f.AddRow(fmt.Sprintf("N=%d", n), map[string]Cell{
			"time-us":  {Value: res.Stats.Time.Seconds() * 1e6},
			"model-us": {Value: model.Seconds() * 1e6},
		})
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("model optimum N* = %d (D=%v C=%v K=%v)", prof.Blocks(), prof.TransferTime, prof.ComputeTime, k),
		"the model excludes per-DMA setup and host time, so measured times sit above it")
	return f, nil
}

// PersistentKernelAblation measures streaming with and without MIC-thread
// reuse (§III-C) on the streaming benchmarks.
func (r *Runner) PersistentKernelAblation() (*Figure, error) {
	f := &Figure{
		ID:      "ablate-persist",
		Title:   "persistent kernels (thread reuse) vs relaunch per block",
		Columns: []string{"relaunch-us", "persist-us", "gain"},
	}
	for _, name := range streamingBenchmarks {
		b, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		_, n, err := r.bestStreaming(b)
		if err != nil {
			return nil, err
		}
		opts := streamingOptions(b, n)
		opts.Persistent = false
		relaunch, err := r.run(b, workloads.MICOptimized, opts)
		if err != nil {
			return nil, err
		}
		opts.Persistent = true
		persist, err := r.run(b, workloads.MICOptimized, opts)
		if err != nil {
			return nil, err
		}
		f.AddRow(name, map[string]Cell{
			"relaunch-us": {Value: relaunch.Stats.Time.Seconds() * 1e6},
			"persist-us":  {Value: persist.Stats.Time.Seconds() * 1e6},
			"gain":        {Value: speedup(relaunch, persist)},
		})
	}
	return f, nil
}

// MemoryReductionAblation compares the Figure 5(b) whole-array streaming
// against the Figure 5(c) double-buffer variant: same pipelining, very
// different device footprints.
func (r *Runner) MemoryReductionAblation() (*Figure, error) {
	f := &Figure{
		ID:      "ablate-membuf",
		Title:   "whole-array streaming (5b) vs double buffering (5c)",
		Columns: []string{"time-5b-us", "time-5c-us", "mem-5b-kb", "mem-5c-kb"},
	}
	for _, name := range streamingBenchmarks {
		b, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		_, n, err := r.bestStreaming(b)
		if err != nil {
			return nil, err
		}
		opts := streamingOptions(b, n)
		opts.ReduceMemory = false
		whole, err := r.run(b, workloads.MICOptimized, opts)
		if err != nil {
			return nil, err
		}
		opts.ReduceMemory = true
		double, err := r.run(b, workloads.MICOptimized, opts)
		if err != nil {
			return nil, err
		}
		f.AddRow(name, map[string]Cell{
			"time-5b-us": {Value: whole.Stats.Time.Seconds() * 1e6},
			"time-5c-us": {Value: double.Stats.Time.Seconds() * 1e6},
			"mem-5b-kb":  {Value: float64(whole.Stats.PeakDeviceBytes) / 1024},
			"mem-5c-kb":  {Value: float64(double.Stats.PeakDeviceBytes) / 1024},
		})
	}
	return f, nil
}

// TranslationAblation isolates §V-B's pointer-translation cost: the time
// the device spends translating 10 million shared-pointer dereferences
// with the bid-augmented scheme (constant time) versus the linear
// base-address search, as the structure grows across more segments. The
// paper rejects the search because its worst case is linear in the number
// of buffers; the gap here is exactly that factor.
func (r *Runner) TranslationAblation() (*Figure, error) {
	f := &Figure{
		ID:      "ablate-xlate",
		Title:   "device time to translate 10M dereferences: bid field vs linear search",
		Columns: []string{"bid-us", "linear-us", "slowdown"},
	}
	mic := machine.XeonPhi()
	const derefs = 10e6
	for _, segments := range []int{4, 16, 64, 256} {
		bidFlops := derefs * translationCost
		linFlops := derefs * float64(segments) / 2 * searchCostPerSegment
		bid := mic.WorkTime(bidFlops, 0, 0, false, machine.DefaultMICThreads)
		lin := mic.WorkTime(linFlops, 0, 0, false, machine.DefaultMICThreads)
		f.AddRow(fmt.Sprintf("%d-segments", segments), map[string]Cell{
			"bid-us":    {Value: bid.Seconds() * 1e6},
			"linear-us": {Value: lin.Seconds() * 1e6},
			"slowdown":  {Value: float64(lin) / float64(bid)},
		})
	}
	f.Notes = append(f.Notes, "freqmine's structure spans 46 segments; ferret's 21 — both sit in the 10-40x slowdown band")
	return f, nil
}

// Costs per dereference, matching internal/workloads/sharedmem.go.
const (
	translationCost      = 3
	searchCostPerSegment = 2
)

// StreamingProfitability reports, for every MiniC benchmark, the §III-B
// model's view of whether streaming pays: the measured unoptimized D, C,
// the model optimum, and the predicted gain. Benchmarks the paper lists
// as not benefiting should predict gains near 1.
func (r *Runner) StreamingProfitability() (*Figure, error) {
	f := &Figure{
		ID:      "profitability",
		Title:   "SIII-B model: predicted streaming gain per benchmark",
		Columns: []string{"d-us", "c-us", "n-star", "pred-gain"},
	}
	k := machine.XeonPhi().LaunchOverhead
	for _, b := range minicBenchmarks() {
		naive, err := r.run(b, workloads.MICNaive, core.Options{})
		if err != nil {
			return nil, err
		}
		prof := core.ProfileFromStats(naive.Stats, k)
		n := prof.Blocks()
		t1 := transform.ModelTime(prof.TransferTime, prof.ComputeTime, k, 1)
		tn := transform.ModelTime(prof.TransferTime, prof.ComputeTime, k, n)
		gain := 0.0
		if tn > 0 {
			gain = float64(t1) / float64(tn)
		}
		f.AddRow(b.Name, map[string]Cell{
			"d-us":      {Value: prof.TransferTime.Seconds() * 1e6},
			"c-us":      {Value: prof.ComputeTime.Seconds() * 1e6},
			"n-star":    {Value: float64(n)},
			"pred-gain": {Value: gain},
		})
	}
	return f, nil
}

// MYOPageSweep varies MYO's coherence granularity on the ferret structure
// (at the reduced input where MYO runs): larger pages amortize the fault
// cost but the mechanism stays far behind one bulk copy — the paper's
// observation that "page granularity is too small for a large data
// structure" while coarser granularity alone does not fix MYO.
func (r *Runner) MYOPageSweep() (*Figure, error) {
	f := &Figure{
		ID:      "ablate-myopage",
		Title:   "MYO transfer time vs page size (ferret structure, reduced input)",
		Columns: []string{"time-ms", "faults", "vs-bulk"},
	}
	ferret, err := workloads.Get("ferret")
	if err != nil {
		return nil, err
	}
	w := ferret.Shared
	scale := w.MYOScale
	totalBytes := int64(float64(w.TotalBytes) * scale)
	bulk := bulkTransferTime(totalBytes)
	for _, page := range []int64{1 << 10, 4 << 10, 16 << 10, 64 << 10} {
		cfg := myo.DefaultConfig()
		cfg.PageBytes = page
		res, err := workloads.RunSharedMYOConfig(ferret, scale, cfg)
		if err != nil {
			return nil, err
		}
		f.AddRow(fmt.Sprintf("%dKiB", page/1024), map[string]Cell{
			"time-ms": {Value: res.Time.Seconds() * 1e3},
			"faults":  {Value: float64(res.Faults)},
			"vs-bulk": {Value: float64(res.Time) / float64(bulk)},
		})
	}
	return f, nil
}

// SegmentSweep varies the §V-A segment size: small segments waste little
// reserved memory but need more DMAs and more bids; large ones reserve
// more than small structures use. The default 4 MiB sits at the knee.
func (r *Runner) SegmentSweep() (*Figure, error) {
	f := &Figure{
		ID:      "ablate-segment",
		Title:   "shared-heap segment size: reserved memory vs DMA count (ferret)",
		Columns: []string{"segments", "reserved-mb", "used-mb", "time-ms"},
	}
	ferret, err := workloads.Get("ferret")
	if err != nil {
		return nil, err
	}
	for _, seg := range []int64{256 << 10, 1 << 20, 4 << 20, 16 << 20} {
		res, err := workloads.RunSharedSegment(ferret, 1.0, seg)
		if err != nil {
			f.AddRow(fmt.Sprintf("%dKiB", seg/1024), map[string]Cell{
				"segments": {Note: "FAIL"},
			})
			continue
		}
		f.AddRow(fmt.Sprintf("%dKiB", seg/1024), map[string]Cell{
			"segments":    {Value: float64(res.Segments)},
			"reserved-mb": {Value: float64(res.Reserved) / (1 << 20)},
			"used-mb":     {Value: float64(res.Bytes) / (1 << 20)},
			"time-ms":     {Value: res.Time.Seconds() * 1e3},
		})
	}
	f.Notes = append(f.Notes, "256 KiB segments overflow the 1-byte bid space for ferret's 83 MB structure")
	return f, nil
}

// bulkTransferTime is the single-DMA reference for the page sweep.
func bulkTransferTime(bytes int64) engine.Duration {
	sim := engine.New()
	bus := pcieNew(sim)
	ev := bus.Transfer(pcieH2D, "bulk", bytes)
	sim.Run()
	return engine.Duration(ev.Time())
}

// Ablations runs every design ablation.
func (r *Runner) Ablations() ([]*Figure, error) {
	var out []*Figure
	for _, gen := range []func() (*Figure, error){
		r.BlockSizeSweep,
		r.PersistentKernelAblation,
		r.MemoryReductionAblation,
		r.TranslationAblation,
		r.StreamingProfitability,
		r.MYOPageSweep,
		r.SegmentSweep,
		r.ResilienceAblation,
	} {
		fig, err := gen()
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}
