package bench

import (
	"strings"
	"testing"

	"comp/internal/tune"
)

// TestTuneBenchSingle runs the full three-phase tuning comparison for one
// workload as a tier-1 smoke of the whole recipe: the cold search must
// match the exhaustive oracle within budget, the warm repeat must be
// probe-free, and the held-out machine must converge in at most two.
// The gated TestTuneRegressionGuard extends the same checks to the suite.
func TestTuneBenchSingle(t *testing.T) {
	rep, model, err := NewRunner().TuneBench("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rep.Rows))
	}
	row := rep.Rows[0]
	if row.Note != "" {
		t.Fatalf("kmeans unexpectedly skipped: %s", row.Note)
	}
	if row.Probes == 0 || row.Probes > tune.DefaultMaxProbes {
		t.Errorf("cold search spent %d probes, want 1..%d", row.Probes, tune.DefaultMaxProbes)
	}
	if row.Gap != 0 {
		t.Errorf("tuned %dns vs oracle %dns (gap %.1f%%), want exact match",
			row.TunedNs, row.OracleNs, row.Gap*100)
	}
	if row.WarmProbes != 0 {
		t.Errorf("warm repeat spent %d probes, want 0", row.WarmProbes)
	}
	if row.WarmSource != "model" {
		t.Errorf("warm source %q, want \"model\"", row.WarmSource)
	}
	if row.HeldOutProbes > 2 {
		t.Errorf("held-out machine spent %d probes, want ≤2", row.HeldOutProbes)
	}
	if row.HeldOutGap != 0 {
		t.Errorf("held-out %dns vs oracle %dns (gap %.1f%%), want exact match",
			row.HeldOutNs, row.HeldOutOracleNs, row.HeldOutGap*100)
	}
	// The cold decision trains the model; both platforms should be present.
	if model.Len() < 2 {
		t.Errorf("model holds %d samples, want ≥2 (training + held-out)", model.Len())
	}
	if !strings.Contains(rep.Format(), "kmeans") {
		t.Error("Format() does not mention the workload")
	}
}
