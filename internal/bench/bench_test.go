package bench

import (
	"strings"
	"testing"

	"comp/internal/core"
	"comp/internal/workloads"
)

// TestHeadlineClaims regenerates the full evaluation once and checks the
// paper's headline results hold in shape. This is the repository's main
// integration test; it takes ~30s, so -short skips it.
func TestHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation harness skipped in -short mode")
	}
	r := NewRunner()

	fig1, err := r.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	below := 0
	for _, row := range fig1.Rows {
		c := row.Cells["speedup"]
		if c.Note != "" || c.Value < 1 {
			below++
		}
	}
	if below != 8 {
		t.Errorf("fig1: %d of 12 benchmarks below CPU, paper reports 8\n%s", below, fig1.Format())
	}

	fig4, err := r.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := fig4.Cell("blackscholes", "ratio"); c.Value < 2 || c.Value > 4.5 {
		t.Errorf("fig4: blackscholes transfer/compute = %.2f, paper shows ~3", c.Value)
	}

	fig10, err := r.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	winNaive, winOpt := 0, 0
	for _, row := range fig10.Rows {
		if c := row.Cells["mic-naive"]; c.Note == "" && c.Value > 1 {
			winNaive++
		}
		if c := row.Cells["mic-opt"]; c.Note == "" && c.Value > 1 {
			winOpt++
		}
	}
	if winNaive != 4 {
		t.Errorf("fig10: %d naive winners, paper reports 4\n%s", winNaive, fig10.Format())
	}
	if winOpt != 9 {
		t.Errorf("fig10: %d optimized winners, paper reports 9\n%s", winOpt, fig10.Format())
	}

	fig11, err := r.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	var maxGain float64
	for _, row := range fig11.Rows {
		c := row.Cells["speedup"]
		if c.Note != "" {
			continue
		}
		if c.Value > maxGain {
			maxGain = c.Value
		}
		if c.Value < 0.99 {
			t.Errorf("fig11: %s regressed to %.2f; the compiler must never hurt", row.Name, c.Value)
		}
	}
	if maxGain < 15 {
		t.Errorf("fig11: max gain %.1f, paper reports up to 52x", maxGain)
	}
	for _, name := range []string{"dedup", "bfs", "hotspot"} {
		if c, _ := fig11.Cell(name, "speedup"); c.Value > 1.05 {
			t.Errorf("fig11: %s gained %.2f; the paper reports no benefit", name, c.Value)
		}
	}

	fig12, err := r.Figure12()
	if err != nil {
		t.Fatal(err)
	}
	if avg := fig12.Mean("speedup"); avg < 1.1 || avg > 1.7 {
		t.Errorf("fig12: streaming average %.2f, paper reports 1.45", avg)
	}
	for _, row := range fig12.Rows {
		if row.Name == "average" {
			continue
		}
		if c := row.Cells["speedup"]; c.Value < 1.05 {
			t.Errorf("fig12: %s streaming gain %.2f, want > 1.05", row.Name, c.Value)
		}
	}

	fig13, err := r.Figure13()
	if err != nil {
		t.Fatal(err)
	}
	if avg := fig13.Mean("fraction"); avg > 0.45 {
		t.Errorf("fig13: average memory fraction %.2f, paper reports >80%% reduction", avg)
	}

	fig14, err := r.Figure14()
	if err != nil {
		t.Fatal(err)
	}
	if avg := fig14.Mean("speedup"); avg < 10 {
		t.Errorf("fig14: merging average %.1f, paper reports 27.13", avg)
	}

	fig15, err := r.Figure15()
	if err != nil {
		t.Fatal(err)
	}
	if avg := fig15.Mean("speedup"); avg < 1.1 || avg > 2.0 {
		t.Errorf("fig15: regularization average %.2f, paper reports 1.25", avg)
	}

	t3, err := r.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := t3.Cell("ferret", "speedup"); c.Value < 6 || c.Value > 10 {
		t.Errorf("table3: ferret %.2f, paper reports 7.81", c.Value)
	}
	if c, _ := t3.Cell("freqmine", "speedup"); c.Value < 1.08 || c.Value > 1.3 {
		t.Errorf("table3: freqmine %.2f, paper reports 1.16", c.Value)
	}
	joined := strings.Join(t3.Notes, " ")
	if !strings.Contains(joined, "cannot run under MYO") {
		t.Errorf("table3: missing the ferret cannot-run note: %v", t3.Notes)
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations skipped in -short mode")
	}
	r := NewRunner()
	figs, err := r.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 8 {
		t.Fatalf("ablations = %d figures, want 8", len(figs))
	}
	// The resilience sweep aborts without recovery at every non-zero rate
	// and stays bounded with it.
	for _, row := range figs[7].Rows {
		if row.Name == "rate=0.00" {
			continue
		}
		if c := row.Cells["no-recovery-us"]; c.Note != "ABORT" {
			t.Errorf("resilience %s: run without recovery did not abort", row.Name)
		}
		if c := row.Cells["slowdown"]; c.Note == "" && c.Value > 50 {
			t.Errorf("resilience %s: recovered slowdown %.1fx unbounded", row.Name, c.Value)
		}
		if c := row.Cells["faults"]; c.Value < 1 {
			t.Errorf("resilience %s: injected no faults", row.Name)
		}
	}
	// MYO stays well behind a bulk copy at every page size.
	for _, row := range figs[5].Rows {
		if c := row.Cells["vs-bulk"]; c.Note == "" && c.Value < 5 {
			t.Errorf("MYO at %s only %.1fx slower than bulk; expected a large gap", row.Name, c.Value)
		}
	}
	// The segment sweep records the bid-space failure at 256 KiB.
	if c, ok := figs[6].Cell("256KiB", "segments"); !ok || c.Note != "FAIL" {
		t.Errorf("segment sweep missing the 256KiB bid-space failure")
	}
	// Persistent kernels never hurt.
	for _, row := range figs[1].Rows {
		if c := row.Cells["gain"]; c.Value < 0.99 {
			t.Errorf("persistent kernels slowed %s to %.2f", row.Name, c.Value)
		}
	}
	// Double buffering uses (much) less device memory than whole arrays.
	for _, row := range figs[2].Rows {
		if row.Cells["mem-5c-kb"].Value >= row.Cells["mem-5b-kb"].Value {
			t.Errorf("%s: 5c memory %.0f not below 5b %.0f", row.Name,
				row.Cells["mem-5c-kb"].Value, row.Cells["mem-5b-kb"].Value)
		}
	}
	// Linear translation cost grows with segment count; bid stays flat.
	var prev float64
	for _, row := range figs[3].Rows {
		s := row.Cells["slowdown"].Value
		if s <= prev {
			t.Errorf("translation slowdown not increasing with segments: %s = %.2f after %.2f", row.Name, s, prev)
		}
		prev = s
	}
}

func TestFigureFormatting(t *testing.T) {
	f := &Figure{
		ID:      "x",
		Title:   "test figure",
		Columns: []string{"a", "b"},
	}
	f.AddRow("one", map[string]Cell{"a": {Value: 1.5}, "b": {Note: "DNF"}})
	f.AddRow("two", map[string]Cell{"a": {Value: 2.5}})
	f.Notes = append(f.Notes, "hello")
	out := f.Format()
	for _, want := range []string{"test figure", "1.50", "DNF", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted figure missing %q:\n%s", want, out)
		}
	}
	if got := f.Mean("a"); got != 2.0 {
		t.Errorf("Mean = %v, want 2.0", got)
	}
	if _, ok := f.Cell("one", "b"); !ok {
		t.Error("Cell lookup failed")
	}
	if _, ok := f.Cell("three", "a"); ok {
		t.Error("Cell lookup found missing row")
	}
}

func TestRunnerCaches(t *testing.T) {
	if testing.Short() {
		t.Skip("cache test uses a real run")
	}
	r := NewRunner()
	if _, err := r.Figure4(); err != nil {
		t.Fatal(err)
	}
	n := len(r.SortedCacheKeys())
	if n == 0 {
		t.Fatal("no cached results after Figure4")
	}
	if _, err := r.Figure4(); err != nil {
		t.Fatal(err)
	}
	if len(r.SortedCacheKeys()) != n {
		t.Fatal("second Figure4 added cache entries; memoization broken")
	}
}

// TestPassFigureAssertsFiring pins the pass decisions the bench layer
// depends on, via remarks rather than source inspection: srad's split
// fires, nn regularizes and streams, and the figure's counters agree with
// the trail.
func TestPassFigureAssertsFiring(t *testing.T) {
	r := NewRunner()
	fig, err := r.PassFigure("")
	if err != nil {
		t.Fatal(err)
	}
	cell := func(row, col string) float64 {
		c, ok := fig.Cell(row, col)
		if !ok {
			t.Fatalf("figure missing cell %s/%s", row, col)
		}
		return c.Value
	}
	if cell("srad", "regularize applied") == 0 {
		t.Error("srad: regularize (split) did not fire")
	}
	if cell("srad", "streaming skipped") == 0 {
		t.Error("srad: expected streaming to decline the split wrapper with a reason")
	}
	if cell("nn", "regularize applied") == 0 || cell("nn", "streaming applied") == 0 {
		t.Error("nn: expected both regularize and streaming to fire")
	}
	if cell("blackscholes", "streaming applied") == 0 {
		t.Error("blackscholes: streaming did not fire")
	}
	found := false
	for _, note := range fig.Notes {
		if strings.Contains(note, "srad") && strings.Contains(note, "split") && strings.Contains(note, "applied") {
			found = true
		}
	}
	if !found {
		t.Error("figure notes do not carry srad's split remark")
	}
	if _, err := r.PassFigure("streaming,bogus"); err == nil {
		t.Error("bad spec accepted")
	}
}

// TestRunWithPassesMatchesOptions: a measured run compiled via the spec
// path produces the same outputs as the Options path (same pipeline, built
// two ways), and bad specs are rejected before any simulation.
func TestRunWithPassesMatchesOptions(t *testing.T) {
	r := NewRunner()
	b, err := workloads.Get("blackscholes")
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.RunWithPasses(b, core.DefaultOptions().Spec())
	if err != nil {
		t.Fatal(err)
	}
	if c.Value <= 0 {
		t.Fatalf("speedup cell = %v", c.Value)
	}
	if _, err := r.RunWithPasses(b, ""); err == nil {
		t.Error("empty spec accepted")
	}
}
