package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"comp/internal/fleet"
	"comp/internal/serve"
	"comp/internal/sim/fault"
)

// The fleet report measures the sharded serving layer the way the serve
// report measures one server, but deterministically: every scenario is a
// fixed trace replayed through fleet.Replay on a stepped fleet with a
// virtual clock, so the makespans are simulated time and bit-stable across
// runs — which is what lets TestFleetRegressionGuard compare them against
// a committed BENCH_fleet.json with a hard tolerance. Three scenarios
// bracket the envelope: "steady" provisions every queue for the offered
// load, "overload" undersizes the queues so the router must steal and the
// devices must shed, and "device-loss" fails a device mid-trace under a
// fault storm and restores it, forcing a drain and rebalance.

// FleetRow is one scenario's line.
type FleetRow struct {
	Scenario   string `json:"scenario"`
	Requests   int    `json:"requests"`
	QueueDepth int    `json:"queue_depth"`

	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	Expired   int64 `json:"expired,omitempty"`
	NoDevice  int64 `json:"no_device,omitempty"`
	Stolen    int64 `json:"stolen,omitempty"`
	Rerouted  int64 `json:"rerouted,omitempty"`

	PlanHitRatio float64 `json:"plan_hit_ratio"`

	// MakespanNs is the fleet makespan (max per-device simulated busy time);
	// TotalSimNs the fleet-wide sum. Both are deterministic.
	MakespanNs int64 `json:"makespan_ns"`
	TotalSimNs int64 `json:"total_sim_ns"`
}

// FleetBenchReport aggregates the scenario rows.
type FleetBenchReport struct {
	Hosts     int        `json:"hosts"`
	PerHost   int        `json:"per_host"`
	Requests  int        `json:"requests"`
	Workloads []string   `json:"workloads"`
	Rows      []FleetRow `json:"scenarios"`
}

// fleetVictim is the device the device-loss scenario fails: the second
// device of the first host, so the fleet keeps a survivor of each
// plan-affinity class.
const fleetVictim = "h0/d1"

// fleetTrace builds one scenario's event trace: requests submissions over
// the serve workload mix, a batch step every eight submissions, and — when
// loss is set — a fault storm plus device loss a third of the way in,
// restored at two thirds.
func fleetTrace(requests int, steps, loss bool) []fleet.Event {
	var ev []fleet.Event
	for i := 0; i < requests; i++ {
		ev = append(ev, fleet.Submit(serve.Job{Workload: ServeWorkloads[i%len(ServeWorkloads)]}))
		if loss && i == requests/3 {
			ev = append(ev,
				fleet.Storm(fleetVictim, fault.Uniform(11, 0.3)),
				fleet.Fail(fleetVictim))
		}
		if loss && i == 2*requests/3 {
			ev = append(ev,
				fleet.Restore(fleetVictim),
				fleet.Storm(fleetVictim, fault.Config{}))
		}
		if steps && i%8 == 7 {
			ev = append(ev, fleet.Step())
		}
	}
	return ev
}

// FleetLoad replays the three bracket scenarios against a hosts × perHost
// heterogeneous fleet and returns the report. Every figure is exact and
// deterministic: a changed number always means a changed schedule or
// placement, never noise.
func (r *Runner) FleetLoad(hosts, perHost, requests int) (*FleetBenchReport, error) {
	if hosts < 1 || perHost < 1 || requests < 1 {
		return nil, fmt.Errorf("bench: fleet shape %dx%d with %d requests is not positive", hosts, perHost, requests)
	}
	if hosts*perHost < 2 {
		return nil, fmt.Errorf("bench: the device-loss scenario needs at least 2 devices, got %d", hosts*perHost)
	}
	rep := &FleetBenchReport{Hosts: hosts, PerHost: perHost, Requests: requests, Workloads: ServeWorkloads}
	scenarios := []struct {
		name  string
		queue int
		steps bool
		loss  bool
	}{
		// Steady: every queue holds the full offered load; nothing sheds.
		{"steady", requests, true, false},
		// Overload: tiny queues, no intermediate steps — the owners fill,
		// the router steals to same-signature peers, then the fleet sheds.
		{"overload", 2, false, false},
		// Device-loss: steady shape plus a mid-trace storm, loss, and
		// restore of one device.
		{"device-loss", requests, true, true},
	}
	for _, sc := range scenarios {
		cfg := fleet.Config{Devices: fleet.DefaultDevices(hosts, perHost, sc.queue)}
		res, err := fleet.Replay(cfg, fleetTrace(requests, sc.steps, sc.loss))
		if err != nil {
			return nil, fmt.Errorf("fleet %s: %w", sc.name, err)
		}
		m := res.Report
		row := FleetRow{
			Scenario:     sc.name,
			Requests:     requests,
			QueueDepth:   sc.queue,
			Completed:    m.Aggregate.Completed,
			Shed:         m.Aggregate.Shed,
			Expired:      m.Aggregate.Expired,
			NoDevice:     m.NoDevice,
			Stolen:       m.Stolen,
			Rerouted:     m.Rerouted,
			PlanHitRatio: m.Aggregate.PlanHitRatio,
			MakespanNs:   m.MakespanNs,
			TotalSimNs:   m.TotalSimNs,
		}
		answered := row.Completed + row.Shed + row.Expired + m.Aggregate.Failed + row.NoDevice
		if answered != int64(requests) {
			return nil, fmt.Errorf("fleet %s: accounting: %d answered of %d offered", sc.name, answered, requests)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// WriteJSON emits the report as indented JSON.
func (rep *FleetBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Format renders the report as an aligned text table.
func (rep *FleetBenchReport) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fleet serving — %d×%d devices, workloads %s, deterministic replay\n",
		rep.Hosts, rep.PerHost, strings.Join(rep.Workloads, "+"))
	fmt.Fprintf(&sb, "%-12s %8s %6s %10s %6s %7s %7s %9s %7s %12s\n",
		"scenario", "offered", "queue", "completed", "shed", "expired", "stolen", "rerouted", "hit%", "makespan(ms)")
	for _, row := range rep.Rows {
		fmt.Fprintf(&sb, "%-12s %8d %6d %10d %6d %7d %7d %9d %6.1f%% %12.2f\n",
			row.Scenario, row.Requests, row.QueueDepth, row.Completed, row.Shed+row.NoDevice,
			row.Expired, row.Stolen, row.Rerouted, 100*row.PlanHitRatio,
			float64(row.MakespanNs)/float64(time.Millisecond))
	}
	sb.WriteString("  note: makespans are simulated time from a stepped replay — rerun-stable to the nanosecond\n")
	return sb.String()
}
