package bench

import (
	"fmt"
	"strings"
	"testing"

	"comp/internal/runtime"
	"comp/internal/sim/engine"
	"comp/internal/transform"
	"comp/internal/workloads"
)

// Acceptance: the online autotuner must converge within the probe budget
// and land within 10% of the exhaustive-sweep oracle on every workload.
func TestAutotunerMatchesOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("full autotuner validation skipped in -short mode")
	}
	for _, b := range workloads.All() {
		if b.SharedMem {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			// One runner per parallel subtest (the run cache is not locked);
			// tuner probes and sweep rungs still share it, so the oracle
			// comparison costs no duplicate runs.
			t.Parallel()
			r := NewRunner()
			tuned, err := r.TuneStreaming(b)
			if err != nil {
				t.Fatalf("tune: %v", err)
			}
			oracle, oracleN, err := r.SweepStreaming(b)
			if err != nil {
				t.Fatalf("sweep: %v", err)
			}
			if tuned.Probes > transform.DefaultMaxProbes {
				t.Errorf("tuner spent %d probes, budget %d", tuned.Probes, transform.DefaultMaxProbes)
			}
			gap := float64(tuned.Time)/float64(oracle.Stats.Time) - 1
			if gap > 0.10 {
				t.Errorf("tuned blocks=%d time=%v is %.1f%% over oracle blocks=%d time=%v",
					tuned.Blocks, tuned.Time, gap*100, oracleN, oracle.Stats.Time)
			}
			t.Logf("%-14s tuned=%2d (%d probes) oracle=%2d gap=%+.1f%%",
				b.Name, tuned.Blocks, tuned.Probes, oracleN, gap*100)
		})
	}
}

// CI bench-smoke: two fast workloads, failing if the tuner lands >15% off
// the exhaustive-sweep oracle. Runs in -short mode so the smoke job stays
// quick.
func TestBenchSmokeAutotuner(t *testing.T) {
	r := NewRunner()
	for _, name := range []string{"blackscholes", "dedup"} {
		b, err := workloads.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		tuned, err := r.TuneStreaming(b)
		if err != nil {
			t.Fatalf("%s: tune: %v", name, err)
		}
		oracle, oracleN, err := r.SweepStreaming(b)
		if err != nil {
			t.Fatalf("%s: sweep: %v", name, err)
		}
		if tuned.Probes > transform.DefaultMaxProbes {
			t.Errorf("%s: tuner spent %d probes, budget %d", name, tuned.Probes, transform.DefaultMaxProbes)
		}
		gap := float64(tuned.Time)/float64(oracle.Stats.Time) - 1
		if gap > 0.15 {
			t.Errorf("%s: tuned blocks=%d is %.1f%% over oracle blocks=%d", name, tuned.Blocks, gap*100, oracleN)
		}
	}
}

// A second Tune for the same workload must come from the cache.
func TestTuneStreamingCaches(t *testing.T) {
	if testing.Short() {
		t.Skip("uses real runs")
	}
	r := NewRunner()
	b, err := workloads.Get("blackscholes")
	if err != nil {
		t.Fatal(err)
	}
	first, err := r.TuneStreaming(b)
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.TuneStreaming(b)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second TuneStreaming was not served from cache")
	}
	if second.Blocks != first.Blocks {
		t.Errorf("cached blocks %d != first %d", second.Blocks, first.Blocks)
	}
}

// Scheduler speedup on workloads known to profit from device sharing: the
// concurrent batch must beat the serialized one by ≥1.3×. Uses the tuner
// directly (not StreamsBenchmark) so the sweep oracle — already exercised
// by TestAutotunerMatchesOracle — is not re-run; the full-suite figures
// live in BENCH_streams.json (compbench -streams).
func TestSchedulerBeatsSerialized(t *testing.T) {
	if testing.Short() {
		t.Skip("scheduler comparison skipped in -short mode")
	}
	for _, name := range []string{"dedup", "kmeans", "nn", "hotspot"} {
		b, err := workloads.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			r := NewRunner()
			tuned, err := r.TuneStreaming(b)
			if err != nil {
				t.Fatalf("tune: %v", err)
			}
			ro := workloads.RunOptions{Variant: workloads.MICOptimized, Opt: streamingOptions(b, tuned.Blocks)}
			times := map[int]engine.Duration{}
			var crossOverlap engine.Duration
			for _, nStreams := range []int{1, 4} {
				sched, err := runtime.NewScheduler(runtime.DefaultConfig(), nStreams)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 4; i++ {
					p, _, err := b.Prepare(ro)
					if err != nil {
						t.Fatal(err)
					}
					sched.Submit(runtime.Request{
						Label:   fmt.Sprintf("%s-%02d", b.Name, i),
						Program: p,
						Setup:   b.Setup,
					})
				}
				res, err := sched.Run()
				if err != nil {
					t.Fatalf("%d streams: %v", nStreams, err)
				}
				times[nStreams] = res.Stats.Time
				if nStreams > 1 {
					crossOverlap = res.Stats.CrossStreamOverlap
				}
			}
			speedup := float64(times[1]) / float64(times[4])
			if speedup < 1.3 {
				t.Errorf("scheduler speedup %.2f < 1.3 (serial %v, concurrent %v)",
					speedup, times[1], times[4])
			}
			if crossOverlap <= 0 {
				t.Error("no cross-stream overlap measured")
			}
			t.Logf("%-10s speedup=%.2f cross-overlap=%v", name, speedup, crossOverlap)
		})
	}
}

func TestStreamsRowSharedMemory(t *testing.T) {
	r := NewRunner()
	b, err := workloads.Get("ferret")
	if err != nil {
		t.Fatal(err)
	}
	row, err := r.StreamsBenchmark(b, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(row.Note, "n/a") {
		t.Errorf("shared-memory workload row = %+v, want n/a note", row)
	}
}
