package bench

import (
	"fmt"

	"comp/internal/core"
	"comp/internal/pass"
	"comp/internal/sim/metrics"
	"comp/internal/workloads"
)

// PassFigure compiles every MiniC benchmark under an explicit pipeline spec
// (compile-only — no simulation) and tabulates per-pass applied/skipped
// counts from the remark trails. The notes carry each benchmark's full
// trail, so the figure is the auditable record of what the pipeline did and
// why it declined where it declined. An empty spec means pass.DefaultSpec.
func (r *Runner) PassFigure(spec string) (*Figure, error) {
	if spec == "" {
		spec = pass.DefaultSpec
	}
	names, err := pass.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:    "passes",
		Title: fmt.Sprintf("pass pipeline %q: applied/skipped per benchmark", spec),
	}
	for _, name := range names {
		f.Columns = append(f.Columns, name+" applied", name+" skipped")
	}
	for _, b := range minicBenchmarks() {
		res, err := core.OptimizeSpec(b.Source, spec, core.DefaultOptions().PassConfig())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		counts := metrics.PassCounts(res.Report.Remarks)
		cells := map[string]Cell{}
		for _, name := range names {
			c := counts[name]
			cells[name+" applied"] = Cell{Value: float64(c.Applied)}
			cells[name+" skipped"] = Cell{Value: float64(c.Skipped)}
		}
		f.AddRow(b.Name, cells)
		for _, rm := range res.Report.Remarks {
			f.Notes = append(f.Notes, fmt.Sprintf("%s: %s", b.Name, rm))
		}
	}
	return f, nil
}

// RunWithPasses executes one benchmark compiled under an explicit pipeline
// spec (cached separately from Options-compiled runs). It is how -passes
// reaches measured runs: the spec replaces Options' pass selection while
// the default config still supplies the streaming knobs.
func (r *Runner) RunWithPasses(b *workloads.Benchmark, spec string) (Cell, error) {
	if _, err := pass.ParseSpec(spec); err != nil {
		return Cell{}, err
	}
	key := fmt.Sprintf("%s|passes|%s", b.Name, spec)
	res, ok := r.results[key]
	if !ok {
		var err error
		res, err = b.Run(workloads.RunOptions{
			Variant: workloads.MICOptimized,
			Opt:     core.DefaultOptions(),
			Passes:  spec,
		})
		if err != nil {
			return Cell{}, fmt.Errorf("%s: %w", b.Name, err)
		}
		r.results[key] = res
		r.dumpTrace(key, res)
	}
	naive, err := r.run(b, workloads.MICNaive, core.Options{})
	if err != nil {
		return Cell{}, err
	}
	return Cell{Value: speedup(naive, res)}, nil
}
