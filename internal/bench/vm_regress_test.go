package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// TestVMRegressionGuard regenerates the interp-vs-VM report and fails if
// any workload's VM speedup ratio fell more than 10% below the committed
// BENCH_vm.json. The comparison is on ratios, not absolute nanoseconds, so
// it transfers across machines: both engines run on the same host, and a
// drop in the ratio means the VM specifically got slower relative to the
// tree-walker. Wall-clock measurement takes a couple of minutes, so the
// guard only runs when CI (or a developer) opts in with
// COMP_BENCH_REGRESS=1.
func TestVMRegressionGuard(t *testing.T) {
	if os.Getenv("COMP_BENCH_REGRESS") == "" {
		t.Skip("set COMP_BENCH_REGRESS=1 to run the bench regression guard")
	}
	raw, err := os.ReadFile("../../BENCH_vm.json")
	if err != nil {
		t.Fatalf("read committed report: %v", err)
	}
	var committed VMReport
	if err := json.Unmarshal(raw, &committed); err != nil {
		t.Fatalf("parse committed report: %v", err)
	}
	if len(committed.Rows) == 0 {
		t.Fatal("committed report is empty; regenerate with compbench -vmbench")
	}

	fresh, err := NewRunner().VMBench(committed.Iters)
	if err != nil {
		t.Fatal(err)
	}
	freshRows := map[string]VMRow{}
	for _, row := range fresh.Rows {
		freshRows[row.Name] = row
	}

	const tolerance = 0.90 // fresh speedup must stay within 10% of committed
	var failures []string
	for _, want := range committed.Rows {
		if want.Note != "" {
			continue
		}
		got, ok := freshRows[want.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from fresh report", want.Name))
			continue
		}
		if got.Speedup < want.Speedup*tolerance {
			failures = append(failures, fmt.Sprintf("%s: VM speedup %.2fx vs committed %.2fx (-%.1f%%, limit -10%%)",
				want.Name, got.Speedup, want.Speedup, 100*(1-got.Speedup/want.Speedup)))
		} else if got.Speedup < want.Speedup {
			t.Logf("%s: VM speedup drifted %.2fx -> %.2fx (within tolerance)",
				want.Name, want.Speedup, got.Speedup)
		}
	}
	if fresh.GeomeanSpeedup < committed.GeomeanSpeedup*tolerance {
		failures = append(failures, fmt.Sprintf("geomean: %.2fx vs committed %.2fx",
			fresh.GeomeanSpeedup, committed.GeomeanSpeedup))
	}
	for _, f := range failures {
		t.Error(f)
	}
	if len(failures) > 0 {
		t.Fatalf("%d workload(s) regressed; if intentional, regenerate BENCH_vm.json with compbench -vmbench", len(failures))
	}
}
