package bench

import "testing"

// TestVMRegressionGuard regenerates the interp-vs-VM report and fails if
// any workload's VM speedup ratio fell more than 10% below the committed
// BENCH_vm.json. Ratios, not absolute nanoseconds: both engines run on the
// same host, so a drop means the VM specifically got slower relative to
// the tree-walker.
func TestVMRegressionGuard(t *testing.T) {
	var committed VMReport
	g := startGuard(t, "BENCH_vm.json", "compbench -vmbench", &committed)
	g.requireRows(len(committed.Rows))

	fresh, err := NewRunner().VMBench(committed.Iters)
	if err != nil {
		t.Fatal(err)
	}
	freshRows := map[string]VMRow{}
	for _, row := range fresh.Rows {
		freshRows[row.Name] = row
	}

	for _, want := range committed.Rows {
		if want.Note != "" {
			continue
		}
		got, ok := freshRows[want.Name]
		if !ok {
			g.failf("%s: missing from fresh report", want.Name)
			continue
		}
		g.speedup(want.Name, got.Speedup, want.Speedup)
	}
	g.speedup("geomean", fresh.GeomeanSpeedup, committed.GeomeanSpeedup)
	g.finish()
}
