package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"comp/internal/serve"
)

// The serve report measures the serving layer the way the streams report
// measures the scheduler: a synthetic client fleet drives serve.Server
// through a repeated-workload trace and the report records what a service
// owner watches — completion/shed accounting, plan-cache effectiveness,
// batching, and wall latency. Two scenarios bracket the envelope: "steady"
// provisions the queue for the offered load, "overload" offers 2× the
// queue capacity at once and must shed, not stall.

// ServeWorkloads is the registry mix the serve scenarios draw from:
// tuned-streaming, hand-pipelined, and regularization-dependent workloads,
// all cheap enough to serve hundreds of times.
var ServeWorkloads = []string{"nn", "dedup", "srad"}

// ServeRow is one scenario's line.
type ServeRow struct {
	Scenario   string `json:"scenario"`
	Clients    int    `json:"clients"`
	PerClient  int    `json:"per_client"`
	QueueDepth int    `json:"queue_depth"`

	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	Expired   int64 `json:"expired,omitempty"`
	Batches   int64 `json:"batches"`
	MaxBatch  int   `json:"max_batch"`

	PlanHitRatio float64 `json:"plan_hit_ratio"`
	TuneProbes   int64   `json:"tune_probes"`

	MeanLatencyMs float64 `json:"mean_latency_ms"`
	MaxLatencyMs  float64 `json:"max_latency_ms"`
}

// ServeReport aggregates the scenario rows.
type ServeReport struct {
	Streams   int        `json:"streams"`
	Workloads []string   `json:"workloads"`
	Rows      []ServeRow `json:"scenarios"`
}

// ServeLoad drives the serving layer through the two bracket scenarios and
// returns the report. Counters are exact; latencies are wall-clock and
// vary run to run.
func (r *Runner) ServeLoad(streams, clients, perClient int) (*ServeReport, error) {
	rep := &ServeReport{Streams: streams, Workloads: ServeWorkloads}
	scenarios := []struct {
		name  string
		queue int
	}{
		{"steady", clients * perClient},
		{"overload", clients * perClient / 4},
	}
	// One shared planner: the steady scenario warms the cache, overload
	// reuses it — the serving pattern the layer exists for.
	planner := serve.NewPlanner()
	for _, sc := range scenarios {
		row, err := serveScenario(sc.name, planner, streams, clients, perClient, sc.queue)
		if err != nil {
			return nil, fmt.Errorf("serve %s: %w", sc.name, err)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// serveScenario runs one client fleet against a fresh server.
func serveScenario(name string, planner *serve.Planner, streams, clients, perClient, queue int) (ServeRow, error) {
	s, err := serve.New(serve.Config{Streams: streams, QueueDepth: queue, Planner: planner})
	if err != nil {
		return ServeRow{}, err
	}
	var wg sync.WaitGroup
	errC := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				job := serve.Job{Workload: ServeWorkloads[(c+j)%len(ServeWorkloads)]}
				if _, err := s.Do(job); err != nil && err != serve.ErrOverloaded {
					errC <- fmt.Errorf("client %d: %w", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	s.Close()
	select {
	case err := <-errC:
		return ServeRow{}, err
	default:
	}
	m := s.Report()
	row := ServeRow{
		Scenario:     name,
		Clients:      clients,
		PerClient:    perClient,
		QueueDepth:   queue,
		Completed:    m.Completed,
		Shed:         m.Shed,
		Expired:      m.Expired,
		Batches:      m.Batches,
		MaxBatch:     m.MaxBatch,
		PlanHitRatio: m.PlanHitRatio,
		TuneProbes:   m.TuneProbes,
	}
	row.MeanLatencyMs = float64(m.Latency.MeanNs) / float64(time.Millisecond)
	row.MaxLatencyMs = float64(m.Latency.MaxNs) / float64(time.Millisecond)
	if m.Submitted != m.Completed+m.Shed+m.Expired+m.Failed {
		return ServeRow{}, fmt.Errorf("accounting: %+v", m)
	}
	return row, nil
}

// WriteJSON emits the report as indented JSON.
func (rep *ServeReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Format renders the report as an aligned text table.
func (rep *ServeReport) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "offload service — workloads %s, %d streams\n",
		strings.Join(rep.Workloads, "+"), rep.Streams)
	fmt.Fprintf(&sb, "%-10s %8s %6s %10s %6s %8s %8s %7s %6s %10s\n",
		"scenario", "offered", "queue", "completed", "shed", "batches", "maxbatch", "hit%", "probes", "mean(ms)")
	for _, row := range rep.Rows {
		fmt.Fprintf(&sb, "%-10s %8d %6d %10d %6d %8d %8d %6.1f%% %6d %10.1f\n",
			row.Scenario, row.Clients*row.PerClient, row.QueueDepth, row.Completed, row.Shed,
			row.Batches, row.MaxBatch, 100*row.PlanHitRatio, row.TuneProbes, row.MeanLatencyMs)
	}
	sb.WriteString("  note: overload sheds with ErrOverloaded; completed+shed always equals offered\n")
	return sb.String()
}
