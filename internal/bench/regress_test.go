package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// TestStreamsRegressionGuard regenerates the multi-stream report at the
// committed configuration and fails if any workload's concurrent makespan
// regressed more than 10% against BENCH_streams.json. The makespans are
// simulated time, so the comparison is deterministic — a failure always
// means a code change altered the schedule, never measurement noise. The
// full regeneration re-tunes every workload and takes minutes, so the
// guard only runs when CI (or a developer) opts in with
// COMP_BENCH_REGRESS=1.
func TestStreamsRegressionGuard(t *testing.T) {
	if os.Getenv("COMP_BENCH_REGRESS") == "" {
		t.Skip("set COMP_BENCH_REGRESS=1 to run the bench regression guard")
	}
	raw, err := os.ReadFile("../../BENCH_streams.json")
	if err != nil {
		t.Fatalf("read committed report: %v", err)
	}
	var committed StreamsReport
	if err := json.Unmarshal(raw, &committed); err != nil {
		t.Fatalf("parse committed report: %v", err)
	}
	if committed.Streams == 0 || len(committed.Rows) == 0 {
		t.Fatal("committed report is empty; regenerate with compbench -streams 4")
	}

	fresh, err := NewRunner().Streams(committed.Streams, committed.Requests)
	if err != nil {
		t.Fatal(err)
	}
	freshRows := map[string]StreamsRow{}
	for _, row := range fresh.Rows {
		freshRows[row.Name] = row
	}

	const tolerance = 1.10
	var failures []string
	for _, want := range committed.Rows {
		if want.ConcurrentNs == 0 {
			continue // shared-memory rows carry no scheduler makespan
		}
		got, ok := freshRows[want.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from fresh report", want.Name))
			continue
		}
		if got.ConcurrentNs == 0 {
			failures = append(failures, fmt.Sprintf("%s: fresh run produced no makespan (note %q)", want.Name, got.Note))
			continue
		}
		limit := int64(float64(want.ConcurrentNs) * tolerance)
		if got.ConcurrentNs > limit {
			failures = append(failures, fmt.Sprintf("%s: concurrent makespan %dns vs committed %dns (+%.1f%%, limit +10%%)",
				want.Name, got.ConcurrentNs, want.ConcurrentNs,
				100*(float64(got.ConcurrentNs)/float64(want.ConcurrentNs)-1)))
		} else if got.ConcurrentNs != want.ConcurrentNs {
			// Drift inside tolerance is legal but worth seeing in the log:
			// simulated time only moves when the schedule changes.
			t.Logf("%s: concurrent makespan drifted %dns -> %dns (%+.1f%%)",
				want.Name, want.ConcurrentNs, got.ConcurrentNs,
				100*(float64(got.ConcurrentNs)/float64(want.ConcurrentNs)-1))
		}
	}
	for _, f := range failures {
		t.Error(f)
	}
	if len(failures) > 0 {
		t.Fatalf("%d workload(s) regressed; if intentional, regenerate BENCH_streams.json with compbench -streams %d -requests %d",
			len(failures), committed.Streams, committed.Requests)
	}
}
