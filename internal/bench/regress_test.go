package bench

import "testing"

// TestStreamsRegressionGuard regenerates the multi-stream report at the
// committed configuration and fails if any workload's concurrent makespan
// regressed more than 10% against BENCH_streams.json.
func TestStreamsRegressionGuard(t *testing.T) {
	var committed StreamsReport
	g := startGuard(t, "BENCH_streams.json", "compbench -streams 4", &committed)
	g.requireRows(len(committed.Rows))
	if committed.Streams == 0 {
		t.Fatal("committed report has no stream count; regenerate with compbench -streams 4")
	}

	fresh, err := NewRunner().Streams(committed.Streams, committed.Requests)
	if err != nil {
		t.Fatal(err)
	}
	freshRows := map[string]StreamsRow{}
	for _, row := range fresh.Rows {
		freshRows[row.Name] = row
	}

	for _, want := range committed.Rows {
		if want.ConcurrentNs == 0 {
			continue // shared-memory rows carry no scheduler makespan
		}
		got, ok := freshRows[want.Name]
		if !ok {
			g.failf("%s: missing from fresh report", want.Name)
			continue
		}
		if got.ConcurrentNs == 0 {
			g.failf("%s: fresh run produced no makespan (note %q)", want.Name, got.Note)
			continue
		}
		g.makespan(want.Name, got.ConcurrentNs, want.ConcurrentNs)
	}
	g.finish()
}
