package bench

import (
	"fmt"

	"comp/internal/runtime"
	"comp/internal/sim/fault"
	"comp/internal/workloads"
)

// resilienceSeed pins the fault schedule so the ablation is a
// reproducible figure, not a random draw.
const resilienceSeed = 11

// ResilienceAblation sweeps the injected fault rate on blackscholes and
// compares the recovered makespan against a run with recovery disabled:
// the cost of resilience is a bounded slowdown, while the alternative is
// an aborted run at any non-zero rate.
func (r *Runner) ResilienceAblation() (*Figure, error) {
	f := &Figure{
		ID:      "ablate-resilience",
		Title:   "makespan vs injected fault rate (blackscholes), with and without recovery",
		Columns: []string{"recovered-us", "slowdown", "faults", "retries", "watchdog", "no-recovery-us"},
	}
	b, err := workloads.Get("blackscholes")
	if err != nil {
		return nil, err
	}
	var cleanUS float64
	for _, rate := range []float64{0, 0.05, 0.15, 0.3} {
		cfg := runtime.DefaultConfig()
		cfg.Faults = fault.Uniform(resilienceSeed, rate)
		res, err := b.Run(workloads.RunOptions{Variant: workloads.MICNaive, Config: &cfg})
		if err != nil {
			return nil, fmt.Errorf("resilience rate %g: %w", rate, err)
		}
		st := res.Stats
		us := st.Time.Seconds() * 1e6
		if rate == 0 {
			cleanUS = us
		}

		bare := cfg
		bare.Recovery.Disabled = true
		noRec := Cell{Note: "ABORT"}
		if raw, err := b.Run(workloads.RunOptions{Variant: workloads.MICNaive, Config: &bare}); err == nil {
			noRec = Cell{Value: raw.Stats.Time.Seconds() * 1e6}
		}

		slow := Cell{Note: "-"}
		if cleanUS > 0 {
			slow = Cell{Value: us / cleanUS}
		}
		f.AddRow(fmt.Sprintf("rate=%.2f", rate), map[string]Cell{
			"recovered-us":   {Value: us},
			"slowdown":       slow,
			"faults":         {Value: float64(st.FaultsInjected)},
			"retries":        {Value: float64(st.Retries)},
			"watchdog":       {Value: float64(st.WatchdogFires)},
			"no-recovery-us": noRec,
		})
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("uniform fault schedule, seed %d; all runs produce outputs identical to rate=0", resilienceSeed),
		"without recovery the first injected fault aborts the run (ABORT)")
	return f, nil
}
