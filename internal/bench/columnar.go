package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"comp/internal/interp"
	"comp/internal/minic"
	"comp/internal/sim/machine"
	"comp/internal/transform"
	"comp/internal/vm"
	"comp/internal/workloads"
)

// The columnar report is the batch tier's perf artifact: scalar-VM vs
// columnar-VM wall-clock per program, over every MiniC workload plus a
// set of synthetic element-wise kernels (including an AoS/SoA pair, the
// SoA side derived by actually running transform.AoSToSoA). The geomean
// is taken over the vectorizable rows — programs that lowered at least
// one loop to a fused vector op; everything else executes identical
// scalar bytecode in both modes and is reported ratio-only as context.
// The measured geomean also feeds machine.CalibrateVectorEff, closing
// the loop between the simulator's SIMD factor and host-measured ratios.

// ColumnarRow is one program's line.
type ColumnarRow struct {
	Name string `json:"name"`
	// Note marks programs the engines cannot run ("n/a shared-memory").
	Note string `json:"note,omitempty"`
	// VecLoops counts the fused vector ops the compiler emitted; 0 means
	// the program is scalar-only and both modes run the same bytecode.
	VecLoops int `json:"vec_loops"`
	// Synthetic marks the element-wise kernel rows (vs real workloads).
	Synthetic bool `json:"synthetic,omitempty"`
	// Best-of-N wall-clock of one full run per mode.
	VMNs       int64 `json:"vm_ns,omitempty"`
	ColumnarNs int64 `json:"columnar_ns,omitempty"`
	// Speedup is VMNs/ColumnarNs (>1 means the batch tier is faster).
	Speedup float64 `json:"speedup,omitempty"`
}

// ColumnarReport aggregates the rows plus the derived calibration.
type ColumnarReport struct {
	Iters int           `json:"iters"`
	Rows  []ColumnarRow `json:"programs"`
	// GeomeanSpeedup is the geometric-mean vm/columnar ratio over the
	// vectorizable rows (VecLoops > 0), synthetic kernels included.
	GeomeanSpeedup float64 `json:"geomean_speedup"`
	// WorkloadGeomean restricts the geomean to the vectorizable *workload*
	// rows. Synthetic microkernels spend nearly all their time inside the
	// batch loop, so their ratio also counts the interpreter dispatch they
	// shed — an overestimate of pure SIMD gain. Real workloads mix scalar
	// and vector phases the way the paper's benchmarks do, which is the
	// regime Config.VectorEff models; the calibration uses this number.
	WorkloadGeomean float64 `json:"workload_geomean"`
	// Calibration derived from the measured workload geomean on the host
	// model: VectorEff = geomean / VectorLanes, clamped to (0,1].
	HostLanes int     `json:"host_lanes"`
	VectorEff float64 `json:"vector_eff"`
}

// columnarKernels are the synthetic element-wise programs. Each wraps its
// vector loops in a scalar repeat loop (which itself stays scalar — loop
// bodies containing loops never qualify) so the batched work dominates
// the measurement without inflating memory.
var columnarKernels = []struct {
	name string
	src  string
}{
	{"saxpy", elementwise(`z[i] = 2.5 * x[i] + y[i];`)},
	{"triad-chain", elementwise(`z[i] = x[i] + s * y[i]; y[i] = z[i] * 0.5 + x[i];`)},
	{"poly", elementwise(`float t = x[i] * 0.001; z[i] = ((1.25 * t + 0.5) * t + 2.0) * t + 1.0;`)},
	{"clamp-select", elementwise(`z[i] = fmax(fmin(x[i], 100.0), -100.0) * ((y[i] > 16000.0) ? 0.5 : 1.0);`)},
	{"int-arith", `
int ia[32768]; int ib[32768];
int main(void) {
    int it; int i;
    for (i = 0; i < 32768; i++) { ia[i] = i; ib[i] = i * 7; }
    for (it = 0; it < 8; it++) {
        for (i = 0; i < 32768; i++) { ia[i] = (ib[i] * 3 + ia[i]) % 1021; }
    }
    printf("%d\n", ia[1000]);
    return 0;
}`},
	{"nbody-aos", nbodyAoS},
}

// elementwise builds a standard harness around one vector-loop body.
func elementwise(body string) string {
	return `
float x[32768]; float y[32768]; float z[32768];
float s;
int main(void) {
    int it; int i;
    s = 1.5;
    for (i = 0; i < 32768; i++) { x[i] = i * 0.25; y[i] = 32768 - i; z[i] = 0.0; }
    for (it = 0; it < 8; it++) {
        for (i = 0; i < 32768; i++) { ` + body + ` }
    }
    printf("%g %g\n", z[100], z[32700]);
    return 0;
}`
}

// nbodyAoS reads three interleaved struct fields per element — the layout
// the columnar qualifier rejects (member access is irregular), so it runs
// scalar in both modes. Its SoA counterpart, produced by the real §IV
// pass, lowers to fused vector ops; the pair is the host-measured version
// of the paper's AoS-vs-SoA argument.
const nbodyAoS = `
struct body {
    float px;
    float py;
    float m;
};
struct body bodies[16384];
float ke[16384];
int main(void) {
    int it; int i;
    for (i = 0; i < 16384; i++) {
        bodies[i].px = i * 0.5;
        bodies[i].py = 2.0 - i * 0.25;
        bodies[i].m = 1.0 + i % 9;
    }
    for (it = 0; it < 16; it++) {
        #pragma offload target(mic:0) in(bodies : length(16384)) out(ke : length(16384))
        #pragma omp parallel for
        for (i = 0; i < 16384; i++) {
            ke[i] = 0.5 * bodies[i].m * (bodies[i].px * bodies[i].px + bodies[i].py * bodies[i].py);
        }
    }
    printf("%g\n", ke[12345]);
    return 0;
}`

// soaVariant runs transform.AoSToSoA over every offload loop in src and
// returns the printed result, or an error if the pass does not fire.
func soaVariant(src string) (string, error) {
	f, err := minic.Parse(src)
	if err != nil {
		return "", err
	}
	applied := 0
	for _, loop := range transform.FindOffloadLoops(f) {
		n, err := transform.AoSToSoA(f, loop)
		if err != nil {
			return "", err
		}
		applied += n
	}
	if applied == 0 {
		return "", fmt.Errorf("AoSToSoA did not fire")
	}
	return minic.Print(f), nil
}

// columnarSource measures one source under the scalar VM and the columnar
// VM, recording how many loops lowered to vector ops.
func columnarSource(name, src string, setup func(*interp.Program) error, iters int) (ColumnarRow, error) {
	row := ColumnarRow{Name: name}
	for _, mode := range []string{vm.ExecVM, vm.ExecColumnar} {
		p, err := interp.Compile(src)
		if err != nil {
			return row, fmt.Errorf("compile: %w", err)
		}
		e, err := vm.NewEngine(p)
		if err != nil {
			return row, fmt.Errorf("vm compile: %w", err)
		}
		row.VecLoops = e.Module().VecLoopCount()
		if err := vm.Apply(p, mode); err != nil {
			return row, err
		}
		ns, err := timeRun(p, setup, iters)
		if err != nil {
			return row, fmt.Errorf("%s run: %w", mode, err)
		}
		if mode == vm.ExecVM {
			row.VMNs = ns
		} else {
			row.ColumnarNs = ns
		}
	}
	row.Speedup = float64(row.VMNs) / float64(row.ColumnarNs)
	return row, nil
}

// ColumnarBench measures every workload and synthetic kernel. iters <= 0
// defaults to 3.
func (r *Runner) ColumnarBench(iters int) (*ColumnarReport, error) {
	if iters <= 0 {
		iters = 3
	}
	rep := &ColumnarReport{Iters: iters}
	add := func(row ColumnarRow, err error) error {
		if err != nil {
			return err
		}
		rep.Rows = append(rep.Rows, row)
		return nil
	}
	for _, b := range workloads.All() {
		if b.SharedMem {
			rep.Rows = append(rep.Rows, ColumnarRow{Name: b.Name, Note: "n/a shared-memory"})
			continue
		}
		if err := add(columnarSource(b.Name, b.Source, b.Setup, iters)); err != nil {
			return nil, fmt.Errorf("columnar %s: %w", b.Name, err)
		}
	}
	kernel := func(name, src string) error {
		row, err := columnarSource(name, src, nil, iters)
		row.Synthetic = true
		return add(row, err)
	}
	for _, k := range columnarKernels {
		if err := kernel(k.name, k.src); err != nil {
			return nil, fmt.Errorf("columnar %s: %w", k.name, err)
		}
	}
	soa, err := soaVariant(nbodyAoS)
	if err != nil {
		return nil, fmt.Errorf("columnar nbody-soa: %w", err)
	}
	if err := kernel("nbody-soa", soa); err != nil {
		return nil, fmt.Errorf("columnar nbody-soa: %w", err)
	}

	logSum, n := 0.0, 0
	wlSum, wn := 0.0, 0
	for _, row := range rep.Rows {
		if row.Note != "" || row.VecLoops == 0 {
			continue
		}
		logSum += math.Log(row.Speedup)
		n++
		if !row.Synthetic {
			wlSum += math.Log(row.Speedup)
			wn++
		}
	}
	if n > 0 {
		rep.GeomeanSpeedup = math.Exp(logSum / float64(n))
	}
	if wn > 0 {
		rep.WorkloadGeomean = math.Exp(wlSum / float64(wn))
	}
	host := machine.XeonE5()
	rep.HostLanes = host.VectorLanes
	rep.VectorEff = machine.CalibrateVectorEff(rep.WorkloadGeomean, host.VectorLanes)
	return rep, nil
}

// WriteJSON emits the report as indented JSON (BENCH_columnar.json).
func (rep *ColumnarReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Format renders the report as an aligned text table.
func (rep *ColumnarReport) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "columnar VM vs scalar VM — best of %d full runs each\n", rep.Iters)
	fmt.Fprintf(&sb, "%-14s %8s %12s %12s %8s\n", "program", "vecloops", "vm(ns)", "columnar(ns)", "speedup")
	for _, row := range rep.Rows {
		if row.Note != "" {
			fmt.Fprintf(&sb, "%-14s %8s\n", row.Name, row.Note)
			continue
		}
		fmt.Fprintf(&sb, "%-14s %8d %12d %12d %7.2fx\n", row.Name, row.VecLoops, row.VMNs, row.ColumnarNs, row.Speedup)
	}
	fmt.Fprintf(&sb, "  geomean speedup (vectorizable rows) %.2fx\n", rep.GeomeanSpeedup)
	fmt.Fprintf(&sb, "  geomean speedup (vectorizable workloads) %.2fx\n", rep.WorkloadGeomean)
	fmt.Fprintf(&sb, "  calibrated VectorEff %.3f (%d host lanes)\n", rep.VectorEff, rep.HostLanes)
	return sb.String()
}
