package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestServeLoadReport runs a reduced fleet through both serving scenarios
// and checks the report invariants that hold at any scale: exact
// accounting, a warm shared plan cache (overload re-tunes nothing), and
// the guaranteed floor on overload completions (the first QueueDepth
// admissions always land before any shed).
func TestServeLoadReport(t *testing.T) {
	rep, err := NewRunner().ServeLoad(2, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 || rep.Rows[0].Scenario != "steady" || rep.Rows[1].Scenario != "overload" {
		t.Fatalf("scenario rows: %+v", rep.Rows)
	}
	steady, overload := rep.Rows[0], rep.Rows[1]
	offered := int64(6 * 2)
	if steady.Completed != offered || steady.Shed != 0 {
		t.Fatalf("steady scenario shed with a full-size queue: %+v", steady)
	}
	if overload.Completed+overload.Shed+overload.Expired != offered {
		t.Fatalf("overload accounting: %+v", overload)
	}
	if overload.Completed < int64(overload.QueueDepth) {
		t.Fatalf("overload completed %d < queue depth %d; initial admissions lost", overload.Completed, overload.QueueDepth)
	}
	// The planner is shared across scenarios: overload serves entirely from
	// the cache the steady run warmed.
	if overload.TuneProbes != steady.TuneProbes {
		t.Fatalf("overload re-tuned: probes %d vs %d after steady", overload.TuneProbes, steady.TuneProbes)
	}
	if overload.PlanHitRatio <= steady.PlanHitRatio {
		t.Fatalf("cumulative hit ratio did not improve: %.2f then %.2f", steady.PlanHitRatio, overload.PlanHitRatio)
	}

	out := rep.Format()
	for _, want := range []string{"steady", "overload", "nn+dedup+srad"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted report missing %q:\n%s", want, out)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"plan_hit_ratio"`) {
		t.Errorf("JSON report missing plan_hit_ratio:\n%s", buf.String())
	}
}
