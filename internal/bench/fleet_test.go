package bench

import (
	"bytes"
	"strings"
	"testing"
)

// A small fleet table must produce all three scenarios with exact
// accounting, and — because the rows come from stepped virtual-clock
// replays — a second run must reproduce every figure bit-for-bit.
func TestFleetLoadDeterministicRows(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet bench replays every request through the simulator")
	}
	r := NewRunner()
	rep, err := r.FleetLoad(1, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("want 3 scenarios, got %d", len(rep.Rows))
	}
	byName := map[string]FleetRow{}
	for _, row := range rep.Rows {
		byName[row.Scenario] = row
		if row.MakespanNs <= 0 || row.TotalSimNs < row.MakespanNs {
			t.Errorf("%s: makespan %d / total %d not plausible", row.Scenario, row.MakespanNs, row.TotalSimNs)
		}
	}
	if byName["steady"].Shed+byName["steady"].NoDevice != 0 {
		t.Errorf("steady scenario shed: %+v", byName["steady"])
	}
	if byName["overload"].Shed == 0 {
		t.Errorf("overload scenario never shed: %+v", byName["overload"])
	}
	if byName["device-loss"].Rerouted == 0 {
		t.Errorf("device-loss scenario never rerouted: %+v", byName["device-loss"])
	}

	again, err := r.FleetLoad(1, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Rows {
		if rep.Rows[i] != again.Rows[i] {
			t.Errorf("scenario %s not rerun-stable:\n  %+v\n  %+v",
				rep.Rows[i].Scenario, rep.Rows[i], again.Rows[i])
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"scenario"`, `"makespan_ns"`, `"device-loss"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("JSON report missing %s", key)
		}
	}
	text := rep.Format()
	for _, want := range []string{"steady", "overload", "device-loss", "makespan"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted table missing %q", want)
		}
	}

	if _, err := r.FleetLoad(0, 2, 4); err == nil {
		t.Error("zero hosts accepted")
	}
	if _, err := r.FleetLoad(1, 1, 4); err == nil {
		t.Error("single-device fleet accepted for the device-loss scenario")
	}
}
