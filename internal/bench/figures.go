package bench

import (
	"fmt"

	"comp/internal/core"
	"comp/internal/workloads"
)

// Figure1 regenerates "Speedups of OpenMP codes on a Xeon Phi coprocessor
// compared with a multicore CPU": the naive offload versus the 4-thread
// CPU baseline. Values below 1 mean the Phi loses.
func (r *Runner) Figure1() (*Figure, error) {
	f := &Figure{
		ID:      "fig1",
		Title:   "naive MIC offload speedup over CPU (paper: 8 of 12 below 1)",
		Columns: []string{"speedup"},
	}
	below := 0
	for _, b := range workloads.All() {
		if b.SharedMem {
			naive, _, err := r.sharedSpeedups(b)
			if err != nil {
				return nil, err
			}
			f.AddRow(b.Name, map[string]Cell{"speedup": naive})
			if naive.Note != "" || naive.Value < 1 {
				below++
			}
			continue
		}
		cpu, err := r.run(b, workloads.CPU, core.Options{})
		if err != nil {
			return nil, err
		}
		naive, err := r.run(b, workloads.MICNaive, core.Options{})
		if err != nil {
			return nil, err
		}
		s := speedup(cpu, naive)
		f.AddRow(b.Name, map[string]Cell{"speedup": {Value: s}})
		if s < 1 {
			below++
		}
	}
	f.Notes = append(f.Notes, fmt.Sprintf("%d of 12 benchmarks below 1 (paper: 8)", below))
	return f, nil
}

// Figure4 regenerates the transfer:compute ratio plot for blackscholes,
// kmeans and nn: DMA busy time over device compute busy time in the naive
// offload.
func (r *Runner) Figure4() (*Figure, error) {
	f := &Figure{
		ID:      "fig4",
		Title:   "data transfer time normalized to device computation (naive offload)",
		Columns: []string{"transfer", "compute", "ratio"},
	}
	for _, name := range []string{"blackscholes", "kmeans", "nn"} {
		b, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		res, err := r.run(b, workloads.MICNaive, core.Options{})
		if err != nil {
			return nil, err
		}
		tr := res.Stats.TransferBusy.Seconds()
		cp := res.Stats.DeviceBusy.Seconds()
		ratio := 0.0
		if cp > 0 {
			ratio = tr / cp
		}
		f.AddRow(name, map[string]Cell{
			"transfer": {Value: tr * 1e6},
			"compute":  {Value: cp * 1e6},
			"ratio":    {Value: ratio},
		})
	}
	f.Notes = append(f.Notes, "transfer/compute in microseconds of busy time; paper shows ratios up to ~3")
	return f, nil
}

// Figure10 regenerates the application speedups over the CPU baseline:
// CPU (1.0), MIC without optimizations, MIC with the full optimization
// set.
func (r *Runner) Figure10() (*Figure, error) {
	f := &Figure{
		ID:      "fig10",
		Title:   "speedup over CPU: naive MIC vs optimized MIC",
		Columns: []string{"cpu", "mic-naive", "mic-opt"},
	}
	winnersNaive, winnersOpt := 0, 0
	for _, b := range workloads.All() {
		cells := map[string]Cell{"cpu": {Value: 1.0}}
		if b.SharedMem {
			naive, opt, err := r.sharedSpeedups(b)
			if err != nil {
				return nil, err
			}
			cells["mic-naive"] = naive
			cells["mic-opt"] = opt
			if naive.Note == "" && naive.Value > 1 {
				winnersNaive++
			}
			if opt.Value > 1 {
				winnersOpt++
			}
			f.AddRow(b.Name, cells)
			continue
		}
		cpu, err := r.run(b, workloads.CPU, core.Options{})
		if err != nil {
			return nil, err
		}
		naive, err := r.run(b, workloads.MICNaive, core.Options{})
		if err != nil {
			return nil, err
		}
		opt, err := r.combined(b)
		if err != nil {
			return nil, err
		}
		sN, sO := speedup(cpu, naive), speedup(cpu, opt)
		cells["mic-naive"] = Cell{Value: sN}
		cells["mic-opt"] = Cell{Value: sO}
		if sN > 1 {
			winnersNaive++
		}
		if sO > 1 {
			winnersOpt++
		}
		f.AddRow(b.Name, cells)
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("%d benchmarks beat the CPU without optimizations (paper: 4)", winnersNaive),
		fmt.Sprintf("%d benchmarks beat the CPU with optimizations (paper: 9)", winnersOpt))
	return f, nil
}

// Figure11 regenerates the relative speedups of the optimized MIC
// versions over the unoptimized MIC versions (paper: 1.16x-52.21x for the
// 9 benchmarks that improve).
func (r *Runner) Figure11() (*Figure, error) {
	f := &Figure{
		ID:      "fig11",
		Title:   "optimized MIC speedup over unoptimized MIC",
		Columns: []string{"speedup"},
	}
	for _, b := range workloads.All() {
		if b.SharedMem {
			cell := Cell{}
			myoRes, err := r.runShared(b, workloads.MechMYO, b.Shared.MYOScale)
			if err != nil {
				cell = Cell{Note: "DNF"}
			} else {
				compRes, cerr := r.runShared(b, workloads.MechCOMP, b.Shared.MYOScale)
				if cerr != nil {
					return nil, cerr
				}
				cell = Cell{Value: float64(myoRes.Time) / float64(compRes.Time)}
			}
			f.AddRow(b.Name, map[string]Cell{"speedup": cell})
			continue
		}
		naive, err := r.run(b, workloads.MICNaive, core.Options{})
		if err != nil {
			return nil, err
		}
		opt, err := r.combined(b)
		if err != nil {
			return nil, err
		}
		f.AddRow(b.Name, map[string]Cell{"speedup": {Value: speedup(naive, opt)}})
	}
	return f, nil
}

// streamingBenchmarks are Figure 12's subjects.
var streamingBenchmarks = []string{"blackscholes", "streamcluster", "kmeans", "cg", "nn"}

// Figure12 regenerates the data-streaming speedups: each benchmark's
// streamed version (best block count from the sweep) over its
// streaming-free baseline.
func (r *Runner) Figure12() (*Figure, error) {
	f := &Figure{
		ID:      "fig12",
		Title:   "performance gains by data streaming (paper avg: 1.45x)",
		Columns: []string{"speedup", "blocks"},
	}
	for _, name := range streamingBenchmarks {
		b, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		base, err := r.streamingBaseline(b)
		if err != nil {
			return nil, err
		}
		best, n, err := r.bestStreaming(b)
		if err != nil {
			return nil, err
		}
		f.AddRow(name, map[string]Cell{
			"speedup": {Value: speedup(base, best)},
			"blocks":  {Value: float64(n)},
		})
	}
	f.AddRow("average", map[string]Cell{"speedup": {Value: f.Mean("speedup")}})
	return f, nil
}

// Figure13 regenerates the device-memory usage of the streamed versions,
// normalized to the unoptimized versions (paper: reduced by more than
// 80%).
func (r *Runner) Figure13() (*Figure, error) {
	f := &Figure{
		ID:      "fig13",
		Title:   "device memory usage with data streaming (fraction of naive)",
		Columns: []string{"fraction"},
	}
	for _, name := range streamingBenchmarks {
		b, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		base, err := r.streamingBaseline(b)
		if err != nil {
			return nil, err
		}
		best, _, err := r.bestStreaming(b)
		if err != nil {
			return nil, err
		}
		frac := 0.0
		if base.Stats.PeakDeviceBytes > 0 {
			frac = float64(best.Stats.PeakDeviceBytes) / float64(base.Stats.PeakDeviceBytes)
		}
		f.AddRow(name, map[string]Cell{"fraction": {Value: frac}})
	}
	f.AddRow("average", map[string]Cell{"fraction": {Value: f.Mean("fraction")}})
	return f, nil
}

// Figure14 regenerates the offload-merging speedups (paper avg: 27.13x).
func (r *Runner) Figure14() (*Figure, error) {
	f := &Figure{
		ID:      "fig14",
		Title:   "performance gains by offload merging (paper avg: 27.13x)",
		Columns: []string{"speedup"},
	}
	for _, name := range []string{"streamcluster", "cg", "cfd"} {
		b, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		naive, err := r.run(b, workloads.MICNaive, core.Options{})
		if err != nil {
			return nil, err
		}
		merged, err := r.run(b, workloads.MICOptimized, core.Options{Merge: true})
		if err != nil {
			return nil, err
		}
		f.AddRow(name, map[string]Cell{"speedup": {Value: speedup(naive, merged)}})
	}
	f.AddRow("average", map[string]Cell{"speedup": {Value: f.Mean("speedup")}})
	return f, nil
}

// Figure15 regenerates the regularization speedups (paper avg: 1.25x).
func (r *Runner) Figure15() (*Figure, error) {
	f := &Figure{
		ID:      "fig15",
		Title:   "performance gains by regularization (paper avg: 1.25x)",
		Columns: []string{"speedup"},
	}
	for _, name := range []string{"nn", "srad"} {
		b, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		naive, err := r.run(b, workloads.MICNaive, core.Options{})
		if err != nil {
			return nil, err
		}
		reg, err := r.run(b, workloads.MICOptimized, core.Options{Regularize: true})
		if err != nil {
			return nil, err
		}
		f.AddRow(name, map[string]Cell{"speedup": {Value: speedup(naive, reg)}})
	}
	f.AddRow("average", map[string]Cell{"speedup": {Value: f.Mean("speedup")}})
	return f, nil
}

// Table2 regenerates the benchmark-information table: suite, input, and
// the measured speedup of each applicable optimization in isolation.
func (r *Runner) Table2() (*Figure, error) {
	f := &Figure{
		ID:      "table2",
		Title:   "benchmark information and per-optimization speedups",
		Columns: []string{"streaming", "merging", "regular.", "sharedmem"},
	}
	fig12, err := r.Figure12()
	if err != nil {
		return nil, err
	}
	fig14, err := r.Figure14()
	if err != nil {
		return nil, err
	}
	fig15, err := r.Figure15()
	if err != nil {
		return nil, err
	}
	t3, err := r.Table3()
	if err != nil {
		return nil, err
	}
	for _, b := range workloads.All() {
		cells := map[string]Cell{}
		if b.Has("streaming") {
			if c, ok := fig12.Cell(b.Name, "speedup"); ok {
				cells["streaming"] = c
			}
		}
		if b.Has("merging") {
			if c, ok := fig14.Cell(b.Name, "speedup"); ok {
				cells["merging"] = c
			}
		}
		if b.Has("regularization") {
			if c, ok := fig15.Cell(b.Name, "speedup"); ok {
				cells["regular."] = c
			}
		}
		if b.Has("sharedmem") {
			if c, ok := t3.Cell(b.Name, "speedup"); ok {
				cells["sharedmem"] = c
			}
		}
		f.AddRow(b.Name, cells)
	}
	return f, nil
}

// Table3 regenerates the shared-memory results: static and dynamic
// allocation counts and the speedup of the COMP mechanism over MYO
// (ferret measured at the reduced input where MYO can run at all).
func (r *Runner) Table3() (*Figure, error) {
	f := &Figure{
		ID:      "table3",
		Title:   "shared memory mechanism vs Intel MYO",
		Columns: []string{"static", "dynamic", "speedup"},
	}
	for _, name := range []string{"ferret", "freqmine"} {
		b, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		w := b.Shared
		cells := map[string]Cell{
			"static":  {Value: float64(w.StaticSites)},
			"dynamic": {Value: float64(w.Allocations)},
		}
		if _, err := r.runShared(b, workloads.MechMYO, 1.0); err != nil {
			f.Notes = append(f.Notes, fmt.Sprintf("%s cannot run under MYO at full input: %v", name, err))
		}
		myoRes, err := r.runShared(b, workloads.MechMYO, w.MYOScale)
		if err != nil {
			return nil, err
		}
		compRes, err := r.runShared(b, workloads.MechCOMP, w.MYOScale)
		if err != nil {
			return nil, err
		}
		cells["speedup"] = Cell{Value: float64(myoRes.Time) / float64(compRes.Time)}
		f.AddRow(name, cells)
	}
	return f, nil
}

// All regenerates every figure and table in paper order.
func (r *Runner) All() ([]*Figure, error) {
	var out []*Figure
	for _, gen := range []func() (*Figure, error){
		r.Figure1, r.Figure4, r.Figure10, r.Figure11,
		r.Figure12, r.Figure13, r.Figure14, r.Figure15,
		r.Table2, r.Table3,
	} {
		fig, err := gen()
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}
