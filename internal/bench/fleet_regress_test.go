package bench

import "testing"

// TestFleetRegressionGuard regenerates the fleet scenario table at the
// committed configuration and fails if any scenario's makespan regressed
// more than 10% against BENCH_fleet.json. The makespans come from a
// stepped, virtual-clock replay, so they are bit-stable: a failure always
// means a code change moved a placement or a batch boundary, never noise.
func TestFleetRegressionGuard(t *testing.T) {
	var committed FleetBenchReport
	g := startGuard(t, "BENCH_fleet.json", "compbench -fleet", &committed)
	g.requireRows(len(committed.Rows))
	if committed.Hosts == 0 {
		t.Fatal("committed report has no host count; regenerate with compbench -fleet")
	}

	fresh, err := NewRunner().FleetLoad(committed.Hosts, committed.PerHost, committed.Requests)
	if err != nil {
		t.Fatal(err)
	}
	freshRows := map[string]FleetRow{}
	for _, row := range fresh.Rows {
		freshRows[row.Scenario] = row
	}

	for _, want := range committed.Rows {
		got, ok := freshRows[want.Scenario]
		if !ok {
			g.failf("%s: missing from fresh report", want.Scenario)
			continue
		}
		if got.MakespanNs == 0 {
			g.failf("%s: fresh replay produced no makespan", want.Scenario)
			continue
		}
		g.makespan(want.Scenario, got.MakespanNs, want.MakespanNs)
		if got.Completed != want.Completed {
			t.Logf("%s: completed drifted %d -> %d", want.Scenario, want.Completed, got.Completed)
		}
	}
	g.finish()
}
