package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// TestFleetRegressionGuard regenerates the fleet scenario table at the
// committed configuration and fails if any scenario's makespan regressed
// more than 10% against BENCH_fleet.json. The makespans come from a
// stepped, virtual-clock replay, so they are bit-stable: a failure always
// means a code change moved a placement or a batch boundary, never noise.
// Opt in with COMP_BENCH_REGRESS=1 (the regeneration serves every request
// through the full simulator and takes a while).
func TestFleetRegressionGuard(t *testing.T) {
	if os.Getenv("COMP_BENCH_REGRESS") == "" {
		t.Skip("set COMP_BENCH_REGRESS=1 to run the bench regression guard")
	}
	raw, err := os.ReadFile("../../BENCH_fleet.json")
	if err != nil {
		t.Fatalf("read committed report: %v", err)
	}
	var committed FleetBenchReport
	if err := json.Unmarshal(raw, &committed); err != nil {
		t.Fatalf("parse committed report: %v", err)
	}
	if committed.Hosts == 0 || len(committed.Rows) == 0 {
		t.Fatal("committed report is empty; regenerate with compbench -fleet")
	}

	fresh, err := NewRunner().FleetLoad(committed.Hosts, committed.PerHost, committed.Requests)
	if err != nil {
		t.Fatal(err)
	}
	freshRows := map[string]FleetRow{}
	for _, row := range fresh.Rows {
		freshRows[row.Scenario] = row
	}

	const tolerance = 1.10
	var failures []string
	for _, want := range committed.Rows {
		got, ok := freshRows[want.Scenario]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from fresh report", want.Scenario))
			continue
		}
		if got.MakespanNs == 0 {
			failures = append(failures, fmt.Sprintf("%s: fresh replay produced no makespan", want.Scenario))
			continue
		}
		limit := int64(float64(want.MakespanNs) * tolerance)
		if got.MakespanNs > limit {
			failures = append(failures, fmt.Sprintf("%s: makespan %dns vs committed %dns (+%.1f%%, limit +10%%)",
				want.Scenario, got.MakespanNs, want.MakespanNs,
				100*(float64(got.MakespanNs)/float64(want.MakespanNs)-1)))
		} else if got.MakespanNs != want.MakespanNs {
			// Drift inside tolerance is legal but worth a line: simulated
			// time only moves when placement or batching changed.
			t.Logf("%s: makespan drifted %dns -> %dns (%+.1f%%)",
				want.Scenario, want.MakespanNs, got.MakespanNs,
				100*(float64(got.MakespanNs)/float64(want.MakespanNs)-1))
		}
		if got.Completed != want.Completed {
			t.Logf("%s: completed drifted %d -> %d", want.Scenario, want.Completed, got.Completed)
		}
	}
	for _, f := range failures {
		t.Error(f)
	}
	if len(failures) > 0 {
		t.Fatalf("%d scenario(s) regressed; if intentional, regenerate BENCH_fleet.json with compbench -fleet",
			len(failures))
	}
}
