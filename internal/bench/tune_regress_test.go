package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"comp/internal/tune"
)

// TestTuneRegressionGuard regenerates the tuner-vs-oracle report and fails
// when the tuner regressed against BENCH_tune.json: a tuned makespan more
// than 10% above the committed one, a tuned-vs-oracle gap above 10%, or a
// probe-budget overrun (cold past the budget, warm or held-out past 2).
// The regenerated model must also match the committed TUNE_model.json
// byte-for-byte — the simulator is deterministic, so any diff means a code
// change moved a measurement or a search decision.
func TestTuneRegressionGuard(t *testing.T) {
	var committed TuneReport
	g := startGuard(t, "BENCH_tune.json", "compbench -tune", &committed)
	g.requireRows(len(committed.Rows))

	fresh, model, err := NewRunner().TuneBench()
	if err != nil {
		t.Fatal(err)
	}
	freshRows := map[string]TuneRow{}
	for _, row := range fresh.Rows {
		freshRows[row.Name] = row
	}

	for _, want := range committed.Rows {
		if want.Note != "" {
			continue
		}
		got, ok := freshRows[want.Name]
		if !ok {
			g.failf("%s: missing from fresh report", want.Name)
			continue
		}
		if got.Probes > committed.MaxProbes {
			g.failf("%s: cold search spent %d probes, budget %d", want.Name, got.Probes, committed.MaxProbes)
		}
		if got.WarmProbes > 2 {
			g.failf("%s: warm repeat spent %d probes, want ≤2", want.Name, got.WarmProbes)
		}
		if got.HeldOutProbes > 2 {
			g.failf("%s: held-out machine spent %d probes, want ≤2", want.Name, got.HeldOutProbes)
		}
		if got.Gap > guardTolerance {
			g.failf("%s: tuned makespan %.1f%% above the oracle (limit 10%%)", want.Name, got.Gap*100)
		}
		if got.HeldOutGap > guardTolerance {
			g.failf("%s: held-out makespan %.1f%% above the oracle (limit 10%%)", want.Name, got.HeldOutGap*100)
		}
		g.makespan(want.Name, got.TunedNs, want.TunedNs)
	}

	// Model golden drift: retraining from scratch must reproduce the
	// committed model exactly.
	path := filepath.Join(t.TempDir(), "model.json")
	if err := model.Save(path); err != nil {
		t.Fatal(err)
	}
	freshModel, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	committedModel, err := os.ReadFile("../../TUNE_model.json")
	if err != nil {
		t.Fatalf("read committed model: %v", err)
	}
	if !bytes.Equal(freshModel, committedModel) {
		g.failf("TUNE_model.json: retrained model differs from committed; if intentional, regenerate with compbench -tune")
	}
	g.finish()
}

// TestTuneModelGolden checks — without the env gate, so it runs in tier-1 —
// that the committed TUNE_model.json loads, carries trained samples, and is
// in the canonical form Save produces (load → save must round-trip
// byte-identically, so every regeneration yields a minimal diff).
func TestTuneModelGolden(t *testing.T) {
	const golden = "../../TUNE_model.json"
	m, err := tune.LoadModel(golden)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() == 0 {
		t.Fatal("committed model has no samples; regenerate with compbench -tune")
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	saved, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	committed, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saved, committed) {
		t.Error("TUNE_model.json is not in canonical form; regenerate with compbench -tune")
	}
}
