package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"comp/internal/interp"
	"comp/internal/vm"
	"comp/internal/workloads"
)

// The VM report is the bytecode engine's perf artifact: for every MiniC
// workload it measures the wall-clock of a full run (Reset + Setup + Run
// against a null backend, so only engine execution is on the clock) under
// the tree-walker and under the VM. compbench -vmbench writes it as
// BENCH_vm.json; the CI guard holds the per-workload speedup ratio, which
// is machine-relative, to within tolerance of the committed file.

// VMRow is one workload's line.
type VMRow struct {
	Name string `json:"name"`
	// Note marks workloads the engines cannot run ("n/a shared-memory").
	Note string `json:"note,omitempty"`
	// Best-of-N wall-clock of one full run per engine.
	InterpNs int64 `json:"interp_ns,omitempty"`
	VMNs     int64 `json:"vm_ns,omitempty"`
	// Speedup is InterpNs/VMNs (>1 means the VM is faster).
	Speedup float64 `json:"speedup,omitempty"`
}

// VMReport aggregates the per-workload rows.
type VMReport struct {
	Iters int     `json:"iters"`
	Rows  []VMRow `json:"workloads"`
	// GeomeanSpeedup is the geometric-mean interp/vm ratio over measured
	// rows.
	GeomeanSpeedup float64 `json:"geomean_speedup"`
}

// timeRun measures the best-of-iters wall-clock of a full execution of the
// prepared program.
func timeRun(p *interp.Program, setup func(*interp.Program) error, iters int) (int64, error) {
	best := int64(math.MaxInt64)
	for i := 0; i < iters; i++ {
		start := time.Now()
		if err := p.Reset(); err != nil {
			return 0, err
		}
		if setup != nil {
			if err := setup(p); err != nil {
				return 0, err
			}
		}
		if err := p.Run(interp.NullBackend{}); err != nil {
			return 0, err
		}
		if d := time.Since(start).Nanoseconds(); d < best {
			best = d
		}
	}
	return best, nil
}

// VMBenchmark measures one workload under both engines.
func (r *Runner) VMBenchmark(b *workloads.Benchmark, iters int) (VMRow, error) {
	if b.SharedMem {
		return VMRow{Name: b.Name, Note: "n/a shared-memory"}, nil
	}
	row := VMRow{Name: b.Name}
	for _, eng := range []string{vm.ExecInterp, vm.ExecVM} {
		p, _, err := b.Prepare(workloads.RunOptions{Variant: workloads.MICNaive, Exec: eng})
		if err != nil {
			return row, err
		}
		ns, err := timeRun(p, b.Setup, iters)
		if err != nil {
			return row, fmt.Errorf("%s run: %w", eng, err)
		}
		if eng == vm.ExecInterp {
			row.InterpNs = ns
		} else {
			row.VMNs = ns
		}
	}
	row.Speedup = float64(row.InterpNs) / float64(row.VMNs)
	return row, nil
}

// VMBench measures every workload. iters <= 0 defaults to 3.
func (r *Runner) VMBench(iters int) (*VMReport, error) {
	if iters <= 0 {
		iters = 3
	}
	rep := &VMReport{Iters: iters}
	logSum, n := 0.0, 0
	for _, b := range workloads.All() {
		row, err := r.VMBenchmark(b, iters)
		if err != nil {
			return nil, fmt.Errorf("vmbench %s: %w", b.Name, err)
		}
		rep.Rows = append(rep.Rows, row)
		if row.Note == "" {
			logSum += math.Log(row.Speedup)
			n++
		}
	}
	if n > 0 {
		rep.GeomeanSpeedup = math.Exp(logSum / float64(n))
	}
	return rep, nil
}

// WriteJSON emits the report as indented JSON (BENCH_vm.json).
func (rep *VMReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Format renders the report as an aligned text table.
func (rep *VMReport) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "bytecode VM vs tree-walker — best of %d full runs each\n", rep.Iters)
	fmt.Fprintf(&sb, "%-14s %12s %12s %8s\n", "benchmark", "interp(ns)", "vm(ns)", "speedup")
	for _, row := range rep.Rows {
		if row.Note != "" {
			fmt.Fprintf(&sb, "%-14s %12s\n", row.Name, row.Note)
			continue
		}
		fmt.Fprintf(&sb, "%-14s %12d %12d %7.2fx\n", row.Name, row.InterpNs, row.VMNs, row.Speedup)
	}
	fmt.Fprintf(&sb, "  geomean speedup %.2fx\n", rep.GeomeanSpeedup)
	return sb.String()
}
