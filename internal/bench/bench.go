// Package bench regenerates every table and figure in the paper's
// evaluation (§VI): Figure 1 (naive offload vs CPU), Figure 4
// (transfer:compute ratios), Figures 10/11 (overall and relative
// speedups), Figure 12 (data streaming), Figure 13 (memory usage),
// Figure 14 (offload merging), Figure 15 (regularization), Table II
// (per-benchmark applicability and speedups) and Table III (shared
// memory). It also provides the §III-B block-size sweep and the design
// ablations called out in DESIGN.md.
//
// Methodology mirrors the paper: each optimization is measured in
// isolation against the unoptimized MIC version (Figures 12–15); the
// combined optimizations are measured for Figures 10/11; streaming block
// counts are swept (the paper tries N in {10, 20, 40, 50}) and the best
// is reported.
package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"comp/internal/core"
	"comp/internal/runtime"
	"comp/internal/sim/engine"
	"comp/internal/sim/metrics"
	"comp/internal/transform"
	"comp/internal/workloads"
)

// Cell is one measured value.
type Cell struct {
	Value float64
	// Note marks qualitative results ("DNF", "n/a").
	Note string
}

// Row is one benchmark's line in a figure.
type Row struct {
	Name  string
	Cells map[string]Cell
}

// Figure is one regenerated table/figure.
type Figure struct {
	ID      string
	Title   string
	Columns []string
	Rows    []Row
	Notes   []string
}

// AddRow appends a row.
func (f *Figure) AddRow(name string, cells map[string]Cell) {
	f.Rows = append(f.Rows, Row{Name: name, Cells: cells})
}

// Mean returns the average of a column over rows that have it.
func (f *Figure) Mean(col string) float64 {
	var sum float64
	var n int
	for _, r := range f.Rows {
		if c, ok := r.Cells[col]; ok && c.Note == "" {
			sum += c.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Cell returns a named cell.
func (f *Figure) Cell(row, col string) (Cell, bool) {
	for _, r := range f.Rows {
		if r.Name == row {
			c, ok := r.Cells[col]
			return c, ok
		}
	}
	return Cell{}, false
}

// Format renders the figure as an aligned text table.
func (f *Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	width := 14
	fmt.Fprintf(&b, "%-*s", width, "benchmark")
	for _, c := range f.Columns {
		fmt.Fprintf(&b, " %12s", c)
	}
	b.WriteByte('\n')
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-*s", width, r.Name)
		for _, col := range f.Columns {
			c, ok := r.Cells[col]
			switch {
			case !ok:
				fmt.Fprintf(&b, " %12s", "-")
			case c.Note != "":
				fmt.Fprintf(&b, " %12s", c.Note)
			default:
				fmt.Fprintf(&b, " %12.2f", c.Value)
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// SweepBlocks is the block-count sweep used for streaming measurements;
// the paper tries {10, 20, 40, 50}, we add smaller counts because the
// scaled workloads have smaller D/K ratios.
var SweepBlocks = []int{2, 4, 8, 10, 20, 40, 50}

// Runner executes and caches benchmark runs.
type Runner struct {
	results  map[string]runtime.Result
	shared   map[string]workloads.SharedResult
	traceDir string
	// UseSweep restores the exhaustive block-count sweep in bestStreaming;
	// by default the measured autotuner picks the count. The sweep is kept
	// as the oracle the autotuner is validated against.
	UseSweep bool
	tuner    transform.AutoTuner
}

// NewRunner creates an empty cache.
func NewRunner() *Runner {
	return &Runner{
		results: map[string]runtime.Result{},
		shared:  map[string]workloads.SharedResult{},
		// The tuner walks the same ladder the sweep measures, so the oracle
		// comparison is apples-to-apples.
		tuner: transform.AutoTuner{Ladder: SweepBlocks},
	}
}

// SetTraceDir makes every subsequent (uncached) run dump its execution
// timeline as <key>.trace.json (Chrome trace_event format, loadable in
// Perfetto) plus a <key>.report.json derived-metrics summary into dir, so
// each ablation's timeline can be inspected, not just its aggregates.
func (r *Runner) SetTraceDir(dir string) { r.traceDir = dir }

// dumpTrace writes the timeline and metrics report for one run; failures
// are reported but do not abort the measurement.
func (r *Runner) dumpTrace(key string, res runtime.Result) {
	if r.traceDir == "" || res.Trace == nil {
		return
	}
	if err := os.MkdirAll(r.traceDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "bench: trace dir: %v\n", err)
		return
	}
	base := filepath.Join(r.traceDir, sanitizeKey(key))
	tf, err := os.Create(base + ".trace.json")
	if err == nil {
		err = res.Trace.ChromeJSON(tf)
		if cerr := tf.Close(); err == nil {
			err = cerr
		}
	}
	if err == nil {
		var rf *os.File
		if rf, err = os.Create(base + ".report.json"); err == nil {
			err = metrics.FromTrace(res.Trace, res.Stats.Time).WriteJSON(rf)
			if cerr := rf.Close(); err == nil {
				err = cerr
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: trace dump %s: %v\n", key, err)
	}
}

// sanitizeKey maps a cache key to a safe file name.
func sanitizeKey(key string) string {
	return strings.Map(func(c rune) rune {
		switch c {
		case '|', '/', '\\', ':', ' ':
			return '_'
		}
		return c
	}, key)
}

func optKey(o core.Options) string {
	return fmt.Sprintf("s%v.m%v.r%v.rm%v.p%v.b%d", o.Streaming, o.Merge, o.Regularize, o.ReduceMemory, o.Persistent, o.Blocks)
}

// run executes (and caches) one benchmark variant.
func (r *Runner) run(b *workloads.Benchmark, variant workloads.Variant, opt core.Options) (runtime.Result, error) {
	key := fmt.Sprintf("%s|%d|%s", b.Name, variant, optKey(opt))
	if res, ok := r.results[key]; ok {
		return res, nil
	}
	res, err := b.Run(workloads.RunOptions{Variant: variant, Opt: opt})
	if err != nil {
		return runtime.Result{}, fmt.Errorf("%s: %w", b.Name, err)
	}
	r.results[key] = res
	r.dumpTrace(key, res)
	return res, nil
}

// runShared executes (and caches) one shared-memory run.
func (r *Runner) runShared(b *workloads.Benchmark, mech workloads.Mechanism, scale float64) (workloads.SharedResult, error) {
	key := fmt.Sprintf("%s|%v|%v", b.Name, mech, scale)
	if res, ok := r.shared[key]; ok {
		return res, nil
	}
	res, err := workloads.RunShared(b, mech, scale)
	if err != nil {
		return workloads.SharedResult{}, err
	}
	r.shared[key] = res
	return res, nil
}

// streamingOptions returns the option set measuring streaming alone for a
// benchmark: regularization is kept for nn (streaming only becomes legal
// after reordering, §IV), matching the paper's evaluation.
func streamingOptions(b *workloads.Benchmark, blocks int) core.Options {
	o := core.Options{Streaming: true, ReduceMemory: true, Persistent: true, Blocks: blocks}
	if b.Has("regularization") {
		o.Regularize = true
	}
	return o
}

// streamingBaseline returns what streaming is measured against: the naive
// version, except for nn where the baseline already includes
// regularization (so the quotient isolates streaming).
func (r *Runner) streamingBaseline(b *workloads.Benchmark) (runtime.Result, error) {
	if b.Has("regularization") {
		return r.run(b, workloads.MICOptimized, core.Options{Regularize: true})
	}
	return r.run(b, workloads.MICNaive, core.Options{})
}

// bestStreaming returns the fastest streamed run and its block count —
// found by the measured autotuner (TuneStreaming), or by the exhaustive
// sweep oracle when UseSweep is set.
func (r *Runner) bestStreaming(b *workloads.Benchmark) (runtime.Result, int, error) {
	if r.UseSweep {
		return r.SweepStreaming(b)
	}
	tr, err := r.TuneStreaming(b)
	if err != nil {
		return runtime.Result{}, 0, err
	}
	res, err := r.run(b, workloads.MICOptimized, streamingOptions(b, tr.Blocks))
	if err != nil {
		return runtime.Result{}, 0, err
	}
	return res, tr.Blocks, nil
}

// SweepStreaming tries every block count in SweepBlocks and returns the
// fastest streamed run and its count. It is the oracle the autotuner's
// choices are measured against.
func (r *Runner) SweepStreaming(b *workloads.Benchmark) (runtime.Result, int, error) {
	var best runtime.Result
	bestN := 0
	for _, n := range SweepBlocks {
		res, err := r.run(b, workloads.MICOptimized, streamingOptions(b, n))
		if err != nil {
			return runtime.Result{}, 0, err
		}
		if bestN == 0 || res.Stats.Time < best.Stats.Time {
			best, bestN = res, n
		}
	}
	return best, bestN, nil
}

// TuneStreaming runs the online autotuner for a benchmark's streaming
// block count. The search seeds from the §III-B analytic model evaluated
// on the benchmark's streaming baseline, probes candidate counts by
// simulated execution (memoized through the Runner's cache), and converges
// within transform.DefaultMaxProbes runs. Results are cached per
// (benchmark, machine) key, so repeated calls tune once.
func (r *Runner) TuneStreaming(b *workloads.Benchmark) (transform.TuneResult, error) {
	base, err := r.streamingBaseline(b)
	if err != nil {
		return transform.TuneResult{}, err
	}
	cfg := runtime.DefaultConfig()
	seed := core.ProfileFromStats(base.Stats, cfg.MIC.LaunchOverhead).Blocks()
	key := fmt.Sprintf("%s|%s|%s", b.Name, cfg.MIC.Name, cfg.CPU.Name)
	return r.tuner.Tune(key, seed, func(blocks int) (engine.Duration, error) {
		res, err := r.run(b, workloads.MICOptimized, streamingOptions(b, blocks))
		if err != nil {
			return 0, err
		}
		return res.Stats.Time, nil
	})
}

// combinedOptions is the full optimization set used for Figures 10/11,
// with the benchmark's best streaming block count.
func (r *Runner) combined(b *workloads.Benchmark) (runtime.Result, error) {
	if !b.Has("streaming") {
		return r.run(b, workloads.MICOptimized, core.DefaultOptions())
	}
	_, n, err := r.bestStreaming(b)
	if err != nil {
		return runtime.Result{}, err
	}
	opt := core.DefaultOptions()
	opt.Blocks = n
	return r.run(b, workloads.MICOptimized, opt)
}

// speedup computes a/b as a ratio of times (how much faster b is than a).
func speedup(a, b runtime.Result) float64 {
	if b.Stats.Time == 0 {
		return 0
	}
	return float64(a.Stats.Time) / float64(b.Stats.Time)
}

// minicBenchmarks returns the ten interpreter-driven benchmarks.
func minicBenchmarks() []*workloads.Benchmark {
	var out []*workloads.Benchmark
	for _, b := range workloads.All() {
		if !b.SharedMem {
			out = append(out, b)
		}
	}
	return out
}

// sharedFig1 computes the Figure 1/10 entries for a shared-memory
// benchmark: CPU vs MYO (the naive MIC path) and CPU vs COMP.
func (r *Runner) sharedSpeedups(b *workloads.Benchmark) (naive, opt Cell, err error) {
	cpu, err := r.runShared(b, workloads.MechCPU, 1.0)
	if err != nil {
		return Cell{}, Cell{}, err
	}
	if m, merr := r.runShared(b, workloads.MechMYO, 1.0); merr != nil {
		naive = Cell{Note: "DNF"}
	} else {
		naive = Cell{Value: float64(cpu.Time) / float64(m.Time)}
	}
	c, err := r.runShared(b, workloads.MechCOMP, 1.0)
	if err != nil {
		return Cell{}, Cell{}, err
	}
	opt = Cell{Value: float64(cpu.Time) / float64(c.Time)}
	return naive, opt, nil
}

// SortedCacheKeys aids debugging of the memoization layer.
func (r *Runner) SortedCacheKeys() []string {
	keys := make([]string, 0, len(r.results))
	for k := range r.results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
