package bench

import (
	"fmt"

	"comp/internal/scenario"
)

// Scenarios runs every built-in scenario through the verified replayer
// (two replays, bit-identical evidence, full invariant check) and tabulates
// the admission-control and fault-recovery outcome per scenario: how much
// load each stress shape admitted, shed, expired and recovered. The seed is
// part of the row identity — rerunning the table with the same seed must
// reproduce it exactly, which is what makes it a regression surface rather
// than a demo.
func (r *Runner) Scenarios(seed int64) (*Figure, error) {
	f := &Figure{
		ID:    "scenarios",
		Title: fmt.Sprintf("built-in scenario replay under the serving invariants (seed %d, 2x verified)", seed),
		Columns: []string{
			"requests", "admitted", "completed", "rejected",
			"ddl-miss", "invalid", "faults", "retries", "fallbacks",
		},
	}
	var total, completed int64
	for _, sc := range scenario.Builtins() {
		res, err := scenario.Verify(sc, seed)
		if err != nil {
			return nil, fmt.Errorf("bench: scenario %s: %w", sc.Name, err)
		}
		rep := res.Report
		f.AddRow(sc.Name, map[string]Cell{
			"requests":  {Value: float64(rep.Submitted)},
			"admitted":  {Value: float64(rep.Admitted)},
			"completed": {Value: float64(rep.Completed)},
			"rejected":  {Value: float64(rep.Shed)},
			"ddl-miss":  {Value: float64(rep.Expired)},
			"invalid":   {Value: float64(rep.Invalid)},
			"faults":    {Value: float64(rep.FaultsInjected)},
			"retries":   {Value: float64(rep.Retries)},
			"fallbacks": {Value: float64(rep.Fallbacks)},
		})
		total += rep.Submitted
		completed += rep.Completed
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("%d requests replayed, %d completed; every row passed invariants and bit-identical double replay", total, completed))
	return f, nil
}
