package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"comp/internal/core"
	"comp/internal/minic"
	"comp/internal/runtime"
	"comp/internal/sim/machine"
	"comp/internal/transform"
	"comp/internal/tune"
	"comp/internal/workloads"
)

// The tune report validates the unified cost-model tuner (internal/tune)
// against an exhaustive oracle on every workload, on two machines:
//
//   - cold: an empty model tunes on the default platform; the chosen
//     configuration must match or beat the oracle sweep's best makespan
//     within the probe budget.
//   - warm: a fresh tuner sharing the now-trained model repeats the same
//     workload on the same platform; it must converge in 0 probes.
//   - held-out: the same model tunes the workload on a machine it has
//     never measured (the smaller xeon-phi-3120 card); it must converge
//     in ≤2 probes and still match the oracle sweep run on that machine.
//
// compbench -tune writes it as BENCH_tune.json and the trained model as
// TUNE_model.json; both are regression-guarded goldens.

// TuneRow is one workload's line.
type TuneRow struct {
	Name string `json:"name"`
	// Note marks workloads the MiniC pipeline cannot tune ("n/a shared-memory").
	Note string `json:"note,omitempty"`

	// Cold search on the default platform vs the exhaustive oracle.
	Spec         string `json:"spec"`
	Blocks       int    `json:"blocks,omitempty"`
	Probes       int    `json:"probes,omitempty"`
	PredictedNs  int64  `json:"predicted_ns,omitempty"`
	TunedNs      int64  `json:"tuned_ns,omitempty"`
	OracleSpec   string `json:"oracle_spec"`
	OracleBlocks int    `json:"oracle_blocks,omitempty"`
	OracleNs     int64  `json:"oracle_ns,omitempty"`
	// Gap is TunedNs/OracleNs − 1 (0 = tuner matched the oracle).
	Gap float64 `json:"gap"`

	// Warm repeat on the same platform with the trained model.
	WarmProbes int    `json:"warm_probes"`
	WarmSource string `json:"warm_source"`

	// Held-out machine (xeon-phi-3120) with the trained model.
	HeldOutProbes   int     `json:"held_out_probes"`
	HeldOutNs       int64   `json:"held_out_ns,omitempty"`
	HeldOutOracleNs int64   `json:"held_out_oracle_ns,omitempty"`
	HeldOutGap      float64 `json:"held_out_gap"`
}

// TuneReport aggregates the per-workload rows.
type TuneReport struct {
	MaxProbes int       `json:"max_probes"`
	HeldOut   string    `json:"held_out_machine"`
	Rows      []TuneRow `json:"workloads"`
	// MaxGap / MaxHeldOutGap are the worst tuned-vs-oracle gaps observed.
	MaxGap        float64 `json:"max_gap"`
	MaxHeldOutGap float64 `json:"max_held_out_gap"`
	// MaxColdProbes / MaxWarmProbes / MaxHeldOutProbes are the largest
	// probe counts any workload spent in each phase.
	MaxColdProbes    int `json:"max_cold_probes"`
	MaxWarmProbes    int `json:"max_warm_probes"`
	MaxHeldOutProbes int `json:"max_held_out_probes"`
}

// tunePlatform is the measurement configuration for one workload.
func tunePlatform(b *workloads.Benchmark, mic machine.Config) runtime.Config {
	cfg := runtime.DefaultConfig()
	cfg.MIC = mic
	cfg.DisableTrace = true
	if b.CPUThreads > 0 {
		cfg.CPUThreads = b.CPUThreads
	}
	return cfg
}

// sweepOracle measures every candidate configuration exhaustively — each
// spec the tuner would consider, and for streaming specs every block count
// on the ladder — and returns the fastest. This is the ground truth the
// tuner's bounded search is scored against.
func sweepOracle(b *workloads.Benchmark, cfg runtime.Config) (tune.Config, int64, error) {
	f, err := minicFile(b.Source)
	if err != nil {
		return tune.Config{}, 0, err
	}
	feats, err := tune.Extract(f)
	if err != nil {
		return tune.Config{}, 0, err
	}
	var best tune.Config
	var bestNs int64
	for _, spec := range tune.DefaultSpecs(feats) {
		ladder := []int{0}
		if strings.Contains(spec, "streaming") {
			ladder = transform.DefaultLadder()
		}
		for _, n := range ladder {
			c := tune.Config{Spec: spec, Blocks: n}
			res, err := core.TunedRun(b.Source, c, cfg, b.Setup)
			if err != nil {
				return tune.Config{}, 0, err
			}
			if ns := int64(res.Stats.Time); bestNs == 0 || ns < bestNs {
				best, bestNs = c, ns
			}
		}
	}
	return best, bestNs, nil
}

// TuneBenchmark runs the three tuning phases for one workload against a
// shared model: cold on the default platform, warm repeat, and the
// held-out machine. The model accumulates the cold decision (that is the
// training step the warm phases exploit).
func TuneBenchmark(b *workloads.Benchmark, model *tune.Model) (TuneRow, error) {
	row := TuneRow{Name: b.Name}
	if b.SharedMem {
		row.Note = "n/a shared-memory"
		return row, nil
	}
	cfg := tunePlatform(b, machine.XeonPhi())
	heldCfg := tunePlatform(b, machine.XeonPhi3120())

	cold, err := core.TuneSource(&tune.Tuner{Model: model}, b.Name, b.Source, cfg, b.Setup)
	if err != nil {
		return row, err
	}
	row.Spec = cold.Spec
	row.Blocks = cold.Blocks
	row.Probes = cold.Probes
	row.PredictedNs = cold.PredictedNs
	row.TunedNs = cold.MeasuredNs

	oracle, oracleNs, err := sweepOracle(b, cfg)
	if err != nil {
		return row, err
	}
	row.OracleSpec = oracle.Spec
	row.OracleBlocks = oracle.Blocks
	row.OracleNs = oracleNs
	if oracleNs > 0 {
		row.Gap = float64(row.TunedNs)/float64(oracleNs) - 1
	}

	// Warm repeat: a fresh tuner (no decision cache) sharing the model.
	warm, err := core.TuneSource(&tune.Tuner{Model: model}, b.Name, b.Source, cfg, b.Setup)
	if err != nil {
		return row, err
	}
	row.WarmProbes = warm.Probes
	row.WarmSource = warm.Source

	// Held-out machine: the model has never seen a xeon-phi-3120 sample
	// for this workload, so the decision must transfer.
	held, err := core.TuneSource(&tune.Tuner{Model: model}, b.Name, b.Source, heldCfg, b.Setup)
	if err != nil {
		return row, err
	}
	row.HeldOutProbes = held.Probes
	row.HeldOutNs = held.MeasuredNs
	if row.HeldOutNs == 0 {
		// A pure model hit reports the sample's measured time from the
		// training machine; re-measure the chosen config on the held-out
		// machine so the oracle comparison stays apples-to-apples.
		res, err := core.TunedRun(b.Source, held.Config, heldCfg, b.Setup)
		if err != nil {
			return row, err
		}
		row.HeldOutNs = int64(res.Stats.Time)
	}
	heldOracleNs := int64(0)
	if _, heldOracleNs, err = sweepOracle(b, heldCfg); err != nil {
		return row, err
	}
	row.HeldOutOracleNs = heldOracleNs
	if heldOracleNs > 0 {
		row.HeldOutGap = float64(row.HeldOutNs)/float64(heldOracleNs) - 1
	}
	return row, nil
}

// TuneBench runs the tuner-vs-oracle comparison over the whole suite (or
// the named subset) and returns the report plus the trained model. One
// model is shared across all rows, in suite order, so the report also
// exercises cross-workload nearest-neighbour lookups.
func (r *Runner) TuneBench(only ...string) (*TuneReport, *tune.Model, error) {
	rep := &TuneReport{
		MaxProbes: tune.DefaultMaxProbes,
		HeldOut:   machine.XeonPhi3120().Name,
	}
	model := tune.NewModel()
	for _, b := range workloads.All() {
		if len(only) > 0 && !contains(only, b.Name) {
			continue
		}
		row, err := TuneBenchmark(b, model)
		if err != nil {
			return nil, nil, fmt.Errorf("tune %s: %w", b.Name, err)
		}
		rep.Rows = append(rep.Rows, row)
		if row.Note != "" {
			continue
		}
		if row.Gap > rep.MaxGap {
			rep.MaxGap = row.Gap
		}
		if row.HeldOutGap > rep.MaxHeldOutGap {
			rep.MaxHeldOutGap = row.HeldOutGap
		}
		if row.Probes > rep.MaxColdProbes {
			rep.MaxColdProbes = row.Probes
		}
		if row.WarmProbes > rep.MaxWarmProbes {
			rep.MaxWarmProbes = row.WarmProbes
		}
		if row.HeldOutProbes > rep.MaxHeldOutProbes {
			rep.MaxHeldOutProbes = row.HeldOutProbes
		}
	}
	return rep, model, nil
}

func contains(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// WriteJSON emits the report as indented JSON (BENCH_tune.json).
func (rep *TuneReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Format renders the report as an aligned text table.
func (rep *TuneReport) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cost-model tuner vs exhaustive oracle — budget %d probes, held-out %s\n",
		rep.MaxProbes, rep.HeldOut)
	fmt.Fprintf(&sb, "%-14s %-28s %7s %7s %6s %7s %5s %5s %8s\n",
		"benchmark", "spec", "blocks", "oracleN", "gap%", "probes", "warm", "held", "heldgap%")
	for _, row := range rep.Rows {
		if row.Note != "" {
			fmt.Fprintf(&sb, "%-14s %-28s\n", row.Name, row.Note)
			continue
		}
		spec := row.Spec
		if spec == "" {
			spec = "(none)"
		}
		fmt.Fprintf(&sb, "%-14s %-28s %7d %7d %6.1f %7d %5d %5d %8.1f\n",
			row.Name, spec, row.Blocks, row.OracleBlocks, row.Gap*100,
			row.Probes, row.WarmProbes, row.HeldOutProbes, row.HeldOutGap*100)
	}
	fmt.Fprintf(&sb, "  note: worst gap %.1f%% (held-out %.1f%%); probes cold≤%d warm≤%d held-out≤%d\n",
		rep.MaxGap*100, rep.MaxHeldOutGap*100,
		rep.MaxColdProbes, rep.MaxWarmProbes, rep.MaxHeldOutProbes)
	return sb.String()
}

// minicFile parses and checks one workload source.
func minicFile(src string) (*minic.File, error) {
	f, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := minic.Check(f).Err(); err != nil {
		return nil, err
	}
	return f, nil
}
