package bench

import (
	"strings"
	"testing"
)

// TestScenarioTable runs the compbench -scenarios table once: every
// built-in row must be present with balanced accounting, and the stress
// scenarios must show their signature columns (overload sheds, the
// deadline scenario misses deadlines, the fault scenarios recover).
func TestScenarioTable(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario table replays every built-in twice; skipped in -short")
	}
	r := NewRunner()
	fig, err := r.Scenarios(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 8 {
		t.Fatalf("scenario table has %d rows, want 8", len(fig.Rows))
	}
	for _, row := range fig.Rows {
		req := row.Cells["requests"].Value
		sum := row.Cells["completed"].Value + row.Cells["rejected"].Value +
			row.Cells["ddl-miss"].Value + row.Cells["invalid"].Value
		if req == 0 {
			t.Errorf("%s: empty trace", row.Name)
		}
		if sum > req {
			t.Errorf("%s: outcome columns sum to %v for %v requests", row.Name, sum, req)
		}
	}
	for row, col := range map[string]string{
		"overload":       "rejected",
		"deadline-heavy": "ddl-miss",
		"fault-storm":    "faults",
		"hot-unplug":     "fallbacks",
	} {
		c, ok := fig.Cell(row, col)
		if !ok || c.Value == 0 {
			t.Errorf("%s: expected nonzero %s, got %+v", row, col, c)
		}
	}
	out := fig.Format()
	if !strings.Contains(out, "mixed-chaos") || !strings.Contains(out, "fallbacks") {
		t.Fatalf("formatted table incomplete:\n%s", out)
	}
}
