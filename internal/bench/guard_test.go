package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// The bench regression guards share one harness: each guard regenerates a
// committed BENCH_*.json golden and fails when a row regressed beyond
// tolerance. Regeneration serves every request through the full simulator
// and takes minutes, so every guard is opt-in via COMP_BENCH_REGRESS=1
// (CI's bench-regress job sets it; `go test ./internal/bench` skips).

// guardTolerance is the shared regression budget: makespans may grow, and
// speedup ratios may shrink, by at most 10% against the committed golden.
const guardTolerance = 0.10

// guard carries the per-test state of one regression guard.
type guard struct {
	t *testing.T
	// regen is the compbench invocation that refreshes the golden, quoted
	// in every failure so an intentional change is one command away.
	regen    string
	failures []string
}

// startGuard is the shared scaffolding: skip unless COMP_BENCH_REGRESS=1,
// read the committed golden from the repo root, and parse it into
// committed (a pointer to the report type).
func startGuard(t *testing.T, file, regen string, committed any) *guard {
	t.Helper()
	if os.Getenv("COMP_BENCH_REGRESS") == "" {
		t.Skip("set COMP_BENCH_REGRESS=1 to run the bench regression guard")
	}
	raw, err := os.ReadFile("../../" + file)
	if err != nil {
		t.Fatalf("read committed report: %v", err)
	}
	if err := json.Unmarshal(raw, committed); err != nil {
		t.Fatalf("parse committed report: %v", err)
	}
	return &guard{t: t, regen: regen}
}

// requireRows fails immediately when the committed golden carries no rows
// (an empty golden would make every comparison vacuously pass).
func (g *guard) requireRows(n int) {
	g.t.Helper()
	if n == 0 {
		g.t.Fatalf("committed report is empty; regenerate with %s", g.regen)
	}
}

// failf records one row's regression; the guard aggregates them so a run
// reports every regressed row, not just the first.
func (g *guard) failf(format string, args ...any) {
	g.failures = append(g.failures, fmt.Sprintf(format, args...))
}

// makespan enforces the +10% ceiling on a simulated-time makespan. Drift
// inside tolerance is logged: simulated time only moves when the schedule
// changed, never from measurement noise.
func (g *guard) makespan(name string, got, want int64) {
	g.t.Helper()
	if want <= 0 {
		return
	}
	rel := 100 * (float64(got)/float64(want) - 1)
	if got > int64(float64(want)*(1+guardTolerance)) {
		g.failf("%s: makespan %dns vs committed %dns (+%.1f%%, limit +10%%)", name, got, want, rel)
	} else if got != want {
		g.t.Logf("%s: makespan drifted %dns -> %dns (%+.1f%%)", name, want, got, rel)
	}
}

// speedup enforces the -10% floor on a speedup ratio (ratios transfer
// across machines: both sides of the quotient ran on the same host).
func (g *guard) speedup(name string, got, want float64) {
	g.t.Helper()
	if got < want*(1-guardTolerance) {
		g.failf("%s: speedup %.2fx vs committed %.2fx (-%.1f%%, limit -10%%)",
			name, got, want, 100*(1-got/want))
	} else if got < want {
		g.t.Logf("%s: speedup drifted %.2fx -> %.2fx (within tolerance)", name, want, got)
	}
}

// finish reports the aggregated failures with the regeneration hint.
func (g *guard) finish() {
	g.t.Helper()
	for _, f := range g.failures {
		g.t.Error(f)
	}
	if len(g.failures) > 0 {
		g.t.Fatalf("%d row(s) regressed; if intentional, regenerate with %s", len(g.failures), g.regen)
	}
}
