package tune

import (
	"testing"

	"comp/internal/minic"
	"comp/internal/pass"
)

const regularSrc = `
int A[4096];
int B[4096];
int main() {
    int n = 4096;
    #pragma offload target(mic:0) in(A : length(n)) out(B : length(n))
    #pragma omp parallel for
    for (int i = 0; i < n; i++) {
        B[i] = A[i] + 1;
    }
    return 0;
}
`

const irregularSrc = `
int A[4096];
int B[4096];
int idx[4096];
int main() {
    int n = 4096;
    #pragma offload target(mic:0) in(A : length(n)) in(idx : length(n)) out(B : length(n))
    #pragma omp parallel for
    for (int i = 0; i < n; i++) {
        B[i] = A[idx[i]] + 1;
    }
    return 0;
}
`

func parseSrc(t *testing.T, src string) *minic.File {
	t.Helper()
	f, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(f).Err(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestExtractRegularLoop(t *testing.T) {
	w, err := Extract(parseSrc(t, regularSrc))
	if err != nil {
		t.Fatal(err)
	}
	if w.Loops != 1 {
		t.Fatalf("Loops = %v, want 1", w.Loops)
	}
	if w.Iters != 4096 {
		t.Errorf("Iters = %v, want 4096", w.Iters)
	}
	if w.StreamLegal != 1 || w.Vectorizable != 1 {
		t.Errorf("StreamLegal = %v, Vectorizable = %v, want 1, 1", w.StreamLegal, w.Vectorizable)
	}
	if w.Irregular != 0 || w.RegUnlocks != 0 {
		t.Errorf("Irregular = %v, RegUnlocks = %v, want 0, 0", w.Irregular, w.RegUnlocks)
	}
}

func TestExtractIrregularLoop(t *testing.T) {
	w, err := Extract(parseSrc(t, irregularSrc))
	if err != nil {
		t.Fatal(err)
	}
	if w.Irregular <= 0 {
		t.Errorf("Irregular = %v, want > 0", w.Irregular)
	}
	if w.StreamLegal != 0 {
		t.Errorf("StreamLegal = %v, want 0 (gather blocks streaming)", w.StreamLegal)
	}
	if w.RegUnlocks != 1 {
		t.Errorf("RegUnlocks = %v, want 1 (regularization would unlock it)", w.RegUnlocks)
	}
	if w.Vectorizable != 0 {
		t.Errorf("Vectorizable = %v, want 0", w.Vectorizable)
	}
}

// The trail-derived features of a real compilation must agree with the
// static extraction on the aggregate facts both can see.
func TestFeaturesFromRealTrail(t *testing.T) {
	m, err := pass.Parse(pass.DefaultSpec, pass.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	remarks, err := m.Run(parseSrc(t, regularSrc))
	if err != nil {
		t.Fatal(err)
	}
	w := FeaturesFromRemarks(remarks)
	if w.Loops != 1 {
		t.Fatalf("trail Loops = %v, want 1:\n%s", w.Loops, remarks.Render())
	}
	if w.StreamLegal != 1 {
		t.Errorf("trail StreamLegal = %v, want 1", w.StreamLegal)
	}
	c := ConfigFromRemarks(remarks)
	if c.Spec != "streaming" {
		t.Errorf("trail spec = %q, want \"streaming\" (only streaming applied)", c.Spec)
	}
	if c.Blocks <= 0 {
		t.Errorf("trail blocks = %d, want > 0", c.Blocks)
	}
}

// A tune remark in the trail is authoritative: it carries the decision
// verbatim and overrides reconstruction from individual pass remarks.
func TestConfigFromRemarksTuneWins(t *testing.T) {
	d := pass.TuneDecision{Spec: "merge,streaming", Blocks: 40, Streams: 2, Source: "search"}
	rs := pass.Remarks{
		{Pass: "streaming", Op: "stream", Verdict: pass.VerdictApplied, Args: map[string]any{"blocks": 10}},
		d.Remark(),
	}
	c := ConfigFromRemarks(rs)
	want := Config{Spec: "merge,streaming", Blocks: 40, Streams: 2}
	if c != want {
		t.Fatalf("ConfigFromRemarks = %+v, want %+v", c, want)
	}
}

func TestDistanceIdentityAndSymmetry(t *testing.T) {
	w := Features{Loops: 2, Iters: 1000, Irregular: 0.3}
	p := Platform{DevCores: 61, DevClockGHz: 1.1, PCIeGBs: 6}
	if d := Distance(w, p, w, p); d != 0 {
		t.Fatalf("self-distance = %v, want 0", d)
	}
	w2 := Features{Loops: 4, Iters: 2000}
	p2 := Platform{DevCores: 57, DevClockGHz: 1.0, PCIeGBs: 6}
	if Distance(w, p, w2, p2) != Distance(w2, p2, w, p) {
		t.Fatal("distance is not symmetric")
	}
	if Distance(w, p, w2, p2) <= 0 {
		t.Fatal("distinct points at distance 0")
	}
}
