package tune

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleFor(key, dev string, blocks int) Sample {
	return Sample{
		Key:      key,
		Workload: Features{Loops: 1, Iters: float64(blocks) * 100},
		Platform: Platform{DevName: dev, DevCores: 61, PCIeGBs: 6},
		Config:   Config{Spec: "streaming", Blocks: blocks},

		MeasuredNs: int64(blocks) * 1000,
	}
}

func TestModelObserveReplacesAndSorts(t *testing.T) {
	m := NewModel()
	m.Observe(sampleFor("b", "phi", 10))
	m.Observe(sampleFor("a", "phi", 20))
	m.Observe(sampleFor("a", "other", 40))
	m.Observe(sampleFor("b", "phi", 50)) // replaces the first
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	if m.Samples[0].Key != "a" || m.Samples[0].Platform.DevName != "other" {
		t.Fatalf("samples not sorted: %+v", m.Samples)
	}
	if m.Samples[2].Config.Blocks != 50 {
		t.Fatalf("replacement lost: %+v", m.Samples[2])
	}
}

func TestModelSaveLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")

	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatalf("missing file should load empty: %v", err)
	}
	if loaded.Len() != 0 || loaded.Version != ModelVersion {
		t.Fatalf("empty load: %+v", loaded)
	}

	m := NewModel()
	m.Observe(sampleFor("w1", "phi", 20))
	m.Observe(sampleFor("w2", "phi", 40))
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	again, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if again.Len() != 2 || again.Samples[0].Key != "w1" || again.Samples[1].Config.Blocks != 40 {
		t.Fatalf("roundtrip mismatch: %+v", again.Samples)
	}

	// Saving the same content twice is byte-identical (golden stability).
	a, _ := os.ReadFile(path)
	if err := again.Save(path); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	if string(a) != string(b) {
		t.Fatal("re-saving an unchanged model changed its bytes")
	}
	if !strings.HasSuffix(string(b), "\n") {
		t.Fatal("model file missing trailing newline")
	}
}

func TestModelVersionMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, []byte(`{"version": 999, "samples": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch not rejected: %v", err)
	}
}

func TestModelNearestDeterministicTieBreak(t *testing.T) {
	m := NewModel()
	a := sampleFor("aaa", "phi", 10)
	b := sampleFor("zzz", "phi", 10)
	b.Workload = a.Workload // identical point, different key
	m.Observe(b)
	m.Observe(a)
	got, dist, ok := m.Nearest(a.Workload, a.Platform)
	if !ok || dist != 0 {
		t.Fatalf("Nearest: ok=%v dist=%v", ok, dist)
	}
	if got.Key != "aaa" {
		t.Fatalf("tie broke to %q, want lexicographically smaller \"aaa\"", got.Key)
	}
}
