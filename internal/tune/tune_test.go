package tune

import (
	"strings"
	"testing"

	"comp/internal/pass"
	"comp/internal/runtime"
	"comp/internal/sim/engine"
	"comp/internal/sim/machine"
	"comp/internal/transform"
)

// syntheticOracle is a stand-in simulator: ground truth follows the same
// analytic shape as the cost model but from a perturbed baseline, so the
// model ranks well without being exactly right — the situation the probe
// budget exists for.
func syntheticOracle(b Baseline, w Features, cfg runtime.Config) func(Config) (engine.Duration, error) {
	perturbed := b
	perturbed.Transfer = b.Transfer * 11 / 10
	perturbed.Compute = b.Compute * 9 / 10
	truth := &CostModel{Workload: w, Baseline: perturbed, Target: cfg}
	return func(c Config) (engine.Duration, error) {
		return truth.Predict(c), nil
	}
}

func testRequest(key string) Request {
	w := Features{
		Loops: 1, Iters: 4096, AccessBytes: 12,
		Vectorizable: 1, StreamLegal: 1,
	}
	b := Baseline{Transfer: 4e6, Compute: 2e6, Launch: 1000, Launches: 4, Time: 6e6}
	cfg := runtime.DefaultConfig()
	return Request{
		Key: key, Workload: w, Baseline: b, Platform: cfg,
		Measure: syntheticOracle(b, w, cfg),
	}
}

// sweepOracle measures every (spec, blocks) candidate exhaustively — the
// oracle the bounded search must match.
func sweepOracle(req Request) (Config, engine.Duration) {
	var best Config
	bestT := engine.Duration(1 << 62)
	for _, spec := range DefaultSpecs(req.Workload) {
		blockChoices := []int{0}
		if specStreams(spec) {
			blockChoices = transform.DefaultLadder()
		}
		for _, n := range blockChoices {
			c := Config{Spec: spec, Blocks: n}
			d, _ := req.Measure(c)
			if d < bestT {
				best, bestT = c, d
			}
		}
	}
	return best, bestT
}

func TestColdSearchMatchesOracleWithinBudget(t *testing.T) {
	req := testRequest("cold")
	tuner := &Tuner{}
	d, err := tuner.Tune(req)
	if err != nil {
		t.Fatal(err)
	}
	if d.Probes == 0 || d.Probes > DefaultMaxProbes {
		t.Fatalf("probes = %d, want 1..%d", d.Probes, DefaultMaxProbes)
	}
	if d.Source != "search" {
		t.Fatalf("source = %q, want search", d.Source)
	}
	_, oracleT := sweepOracle(req)
	if engine.Duration(d.MeasuredNs) > oracleT {
		t.Fatalf("tuned %d ns worse than oracle %d ns", d.MeasuredNs, oracleT)
	}
	if d.PredictedNs <= 0 || d.MeasuredNs <= 0 {
		t.Fatalf("decision missing costs: %+v", d.TuneDecision)
	}
}

func TestTunerCachesDecisions(t *testing.T) {
	req := testRequest("cached")
	tuner := &Tuner{}
	first, err := tuner.Tune(req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := tuner.Tune(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Probes != 0 || second.Source != "cache" {
		t.Fatalf("second decision not cached: %+v", second.TuneDecision)
	}
	if second.Config != first.Config {
		t.Fatalf("cache changed the configuration: %+v vs %+v", second.Config, first.Config)
	}
}

func TestWarmExactRepeatNeedsZeroProbes(t *testing.T) {
	model := NewModel()
	cold := &Tuner{Model: model}
	req := testRequest("warm")
	first, err := cold.Tune(req)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh tuner sharing only the persisted model — the cross-process
	// repeat case.
	warm := &Tuner{Model: model}
	second, err := warm.Tune(req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Probes != 0 {
		t.Fatalf("warm repeat spent %d probes, want 0", second.Probes)
	}
	if second.Source != "model" {
		t.Fatalf("source = %q, want model", second.Source)
	}
	if second.Config != first.Config {
		t.Fatalf("warm repeat changed config: %+v vs %+v", second.Config, first.Config)
	}
}

// The held-out machine case: the model has only seen the stock Phi; tuning
// the same workload for a smaller sibling card must stay within two probes
// and still match that machine's own oracle sweep.
func TestWarmHeldOutMachineConvergesInTwoProbes(t *testing.T) {
	model := NewModel()
	cold := &Tuner{Model: model}
	req := testRequest("heldout")
	if _, err := cold.Tune(req); err != nil {
		t.Fatal(err)
	}

	held := req
	held.Platform.MIC = machine.XeonPhi()
	held.Platform.MIC.Name = "xeon-phi-smaller"
	held.Platform.MIC.Cores = 57
	held.Platform.MIC.ClockGHz = 1.0
	held.Baseline.Transfer = req.Baseline.Transfer * 10 / 9
	held.Measure = syntheticOracle(held.Baseline, held.Workload, held.Platform)

	warm := &Tuner{Model: model}
	d, err := warm.Tune(held)
	if err != nil {
		t.Fatal(err)
	}
	if d.Probes > 2 {
		t.Fatalf("held-out machine spent %d probes, want <= 2", d.Probes)
	}
	if d.Source != "model" {
		t.Fatalf("source = %q, want model", d.Source)
	}
	_, oracleT := sweepOracle(held)
	if engine.Duration(d.MeasuredNs) > oracleT*11/10 {
		t.Fatalf("held-out tuned %d ns, oracle %d ns: regression > 10%%", d.MeasuredNs, oracleT)
	}
}

func TestTuneRecordsHistoryAndObservesModel(t *testing.T) {
	model := NewModel()
	tuner := &Tuner{Model: model}
	req := testRequest("history")
	d, err := tuner.Tune(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.History) != d.Probes {
		t.Fatalf("history %d entries, probes %d", len(d.History), d.Probes)
	}
	if model.Len() != 1 {
		t.Fatalf("model samples = %d, want 1", model.Len())
	}
	s := model.Samples[0]
	if s.Key != "history" || s.Config != d.Config || s.MeasuredNs != d.MeasuredNs {
		t.Fatalf("observed sample mismatch: %+v vs decision %+v", s, d.TuneDecision)
	}
}

func TestTuneStreamCandidates(t *testing.T) {
	req := testRequest("streams")
	req.Streams = []int{1, 2, 4}
	req.Requests = 4
	tuner := &Tuner{}
	d, err := tuner.Tune(req)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range req.Streams {
		if d.Config.Streams == n {
			found = true
		}
	}
	if !found {
		t.Fatalf("chosen streams %d not among candidates %v", d.Config.Streams, req.Streams)
	}
}

func TestTuneRequiresMeasure(t *testing.T) {
	tuner := &Tuner{}
	if _, err := tuner.Tune(Request{Key: "nil"}); err == nil || !strings.Contains(err.Error(), "Measure") {
		t.Fatalf("nil Measure accepted: %v", err)
	}
}

func TestDefaultSpecsCoverFeatureSpace(t *testing.T) {
	all := Features{
		Loops: 3, Irregular: 0.5, StreamLegal: 0.4, RegUnlocks: 0.3,
		MergeCands: 1, MergeInner: 2,
	}
	specs := DefaultSpecs(all)
	want := map[string]bool{"": false, pass.DefaultSpec: false, "merge,streaming,regularize": false}
	for _, s := range specs {
		if _, ok := want[s]; ok {
			want[s] = true
		}
	}
	for s, seen := range want {
		if !seen {
			t.Errorf("DefaultSpecs missing %q: %v", s, specs)
		}
	}
	none := DefaultSpecs(Features{})
	if len(none) != 1 || none[0] != "" {
		t.Errorf("featureless DefaultSpecs = %v, want just the baseline", none)
	}
}
