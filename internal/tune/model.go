package tune

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Sample is one remembered tuning outcome: where the workload sat in
// feature space, which machine it ran on, which configuration won, and
// the makespan the winning probe measured.
type Sample struct {
	Key        string   `json:"key"`
	Workload   Features `json:"workload"`
	Platform   Platform `json:"platform"`
	Config     Config   `json:"config"`
	MeasuredNs int64    `json:"measured_ns"`
}

// ModelVersion guards the on-disk format; a loaded model with a different
// version is rejected rather than silently misread.
const ModelVersion = 1

// Model is the learned predictor: a nearest-neighbour memory over past
// tuning decisions, persisted as JSON. It is deliberately simple — the
// feature space is small and the samples are exact measurements, so
// locality beats fitting — but the interface (Observe/Nearest) is what a
// regression would implement too.
type Model struct {
	mu      sync.Mutex
	Version int      `json:"version"`
	Samples []Sample `json:"samples"`
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{Version: ModelVersion} }

// Observe records a tuning outcome. A sample with the same key and device
// name is replaced (latest measurement wins); otherwise the sample is
// inserted keeping the list sorted by (key, device), so the serialized
// model is independent of observation order.
func (m *Model) Observe(s Sample) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.Samples {
		if m.Samples[i].Key == s.Key && m.Samples[i].Platform.DevName == s.Platform.DevName {
			m.Samples[i] = s
			return
		}
	}
	m.Samples = append(m.Samples, s)
	sort.Slice(m.Samples, func(i, j int) bool {
		if m.Samples[i].Key != m.Samples[j].Key {
			return m.Samples[i].Key < m.Samples[j].Key
		}
		return m.Samples[i].Platform.DevName < m.Samples[j].Platform.DevName
	})
}

// Len returns the sample count.
func (m *Model) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.Samples)
}

// Nearest returns the sample closest to the query point and its distance.
// Ties break toward the lexicographically smaller key so the answer is
// deterministic. ok is false for an empty model.
func (m *Model) Nearest(w Features, p Platform) (best Sample, dist float64, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.Samples {
		d := Distance(w, p, s.Workload, s.Platform)
		if !ok || d < dist || (d == dist && s.Key < best.Key) {
			best, dist, ok = s, d, true
		}
	}
	return best, dist, ok
}

// MarshalJSON serializes version and samples (the mutex is not part of
// the format).
func (m *Model) MarshalJSON() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return json.Marshal(struct {
		Version int      `json:"version"`
		Samples []Sample `json:"samples"`
	}{m.Version, m.Samples})
}

// UnmarshalJSON loads version and samples.
func (m *Model) UnmarshalJSON(data []byte) error {
	var raw struct {
		Version int      `json:"version"`
		Samples []Sample `json:"samples"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Version = raw.Version
	m.Samples = raw.Samples
	return nil
}

// LoadModel reads a model file. A missing file yields a fresh empty model
// (the common first-run case); a present but malformed or
// version-mismatched file is an error.
func LoadModel(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewModel(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("tune: load model: %w", err)
	}
	m := &Model{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("tune: model %s: %w", path, err)
	}
	if m.Version != ModelVersion {
		return nil, fmt.Errorf("tune: model %s: version %d, want %d", path, m.Version, ModelVersion)
	}
	return m, nil
}

// Save writes the model as stable, human-diffable JSON (sorted samples,
// indented, trailing newline) via a temp-file rename so a crashed save
// never leaves a truncated model behind.
func (m *Model) Save(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("tune: save model: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tune-model-*")
	if err != nil {
		return fmt.Errorf("tune: save model: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("tune: save model: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("tune: save model: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("tune: save model: %w", err)
	}
	return nil
}
