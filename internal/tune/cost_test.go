package tune

import (
	"math/rand"
	"testing"
	"testing/quick"

	"comp/internal/pass"
	"comp/internal/runtime"
	"comp/internal/sim/engine"
)

func testModel(b Baseline, w Features) *CostModel {
	return &CostModel{Workload: w, Baseline: b, Target: runtime.DefaultConfig()}
}

func randBaseline(r *rand.Rand) Baseline {
	d := engine.Duration(1000 + r.Int63n(10_000_000))
	c := engine.Duration(1000 + r.Int63n(10_000_000))
	k := engine.Duration(10 + r.Int63n(10_000))
	return Baseline{Transfer: d, Compute: c, Launch: k, Launches: 1 + r.Int63n(50), Time: d + c}
}

func randFeatures(r *rand.Rand) Features {
	w := Features{
		Loops:        float64(1 + r.Intn(6)),
		Iters:        float64(r.Intn(1 << 20)),
		AccessBytes:  float64(r.Intn(64)),
		Irregular:    r.Float64(),
		Vectorizable: r.Float64(),
		StreamLegal:  r.Float64(),
		Reuse:        r.Float64(),
	}
	w.RegUnlocks = (1 - w.StreamLegal) * r.Float64()
	if r.Intn(2) == 0 {
		w.MergeCands = 1
		w.MergeInner = float64(2 + r.Intn(3))
	}
	return w
}

// Satellite property 1: past the transfer-bound knee, the predicted cost
// is monotone non-decreasing in the block count — more blocks only add
// launch overhead once transfers can no longer hide behind compute.
func TestPredictMonotonePastKnee(t *testing.T) {
	specs := []string{
		"streaming",
		"regularize,streaming",
		pass.DefaultSpec,
		"merge,streaming,regularize",
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := testModel(randBaseline(r), randFeatures(r))
		c := Config{Spec: specs[r.Intn(len(specs))]}
		knee := m.Knee(c)
		prev := engine.Duration(0)
		for i := 0; i <= 64; i++ {
			c.Blocks = knee + i
			got := m.Predict(c)
			// ±2ns slack absorbs the float→Duration truncation inside
			// the model evaluation.
			if i > 0 && got+2 < prev {
				t.Logf("seed %d: spec %q knee %d: Predict(%d)=%d < Predict(%d)=%d",
					seed, c.Spec, knee, c.Blocks, got, c.Blocks-1, prev)
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Satellite property 2: feature vectors and configurations recovered from
// a remark trail are invariant under any permutation of the trail, so the
// predicted cost conditioned on them is too.
func TestTrailPermutationInvariant(t *testing.T) {
	passes := []string{"merge", "regularize", "streaming", "tune", "pipeline"}
	ops := []string{"merge", "reorder", "split", "soa", "stream", "select", "upfront-gather"}
	verdicts := []pass.Verdict{pass.VerdictApplied, pass.VerdictSkippedIllegal, pass.VerdictSkippedUnprofitable}

	randTrail := func(r *rand.Rand) pass.Remarks {
		n := 1 + r.Intn(20)
		rs := make(pass.Remarks, 0, n)
		for i := 0; i < n; i++ {
			rs = append(rs, pass.Remark{
				Pass:    passes[r.Intn(len(passes))],
				Op:      ops[r.Intn(len(ops))],
				Pos:     []string{"3:5", "7:5", "12:5", "20:9"}[r.Intn(4)],
				Verdict: verdicts[r.Intn(len(verdicts))],
				Args: map[string]any{
					"inner":  2 + r.Intn(3),
					"blocks": []int{2, 10, 20, 40}[r.Intn(4)],
				},
			})
		}
		return rs
	}

	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		trail := randTrail(r)
		shuffled := append(pass.Remarks(nil), trail...)
		r.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})

		fa, fb := FeaturesFromRemarks(trail), FeaturesFromRemarks(shuffled)
		if fa != fb {
			t.Logf("seed %d: features differ under permutation:\n%+v\n%+v", seed, fa, fb)
			return false
		}
		ca, cb := ConfigFromRemarks(trail), ConfigFromRemarks(shuffled)
		if ca != cb {
			t.Logf("seed %d: configs differ under permutation: %+v vs %+v", seed, ca, cb)
			return false
		}
		ma := testModel(randBaseline(rand.New(rand.NewSource(seed))), fa)
		mb := testModel(randBaseline(rand.New(rand.NewSource(seed))), fb)
		if ma.Predict(ca) != mb.Predict(cb) {
			t.Logf("seed %d: predicted cost differs under permutation", seed)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBestBlocksMatchesExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		m := testModel(randBaseline(r), randFeatures(r))
		c := Config{Spec: pass.DefaultSpec}
		ladder := []int{2, 4, 8, 10, 20, 40, 50}
		got := m.BestBlocks(c, ladder)
		best, bestT := 0, engine.Duration(1<<62)
		for _, n := range ladder {
			c.Blocks = n
			if d := m.PredictBatch(c); d < bestT {
				best, bestT = n, d
			}
		}
		if got != best {
			t.Fatalf("BestBlocks = %d, exhaustive best = %d", got, best)
		}
	}
}

func TestPredictNonStreamingIgnoresBlocks(t *testing.T) {
	m := testModel(Baseline{Transfer: 1e6, Compute: 2e6, Launch: 1000, Launches: 10},
		Features{Loops: 2, Irregular: 0.5, Vectorizable: 0.5})
	a := m.Predict(Config{Spec: "merge,regularize", Blocks: 2})
	b := m.Predict(Config{Spec: "merge,regularize", Blocks: 50})
	if a != b {
		t.Fatalf("non-streaming predict depends on blocks: %d vs %d", a, b)
	}
	if knee := m.Knee(Config{Spec: "merge,regularize"}); knee != 1 {
		t.Fatalf("non-streaming knee = %d, want 1", knee)
	}
}

// Regularize-before-streaming must never price worse than
// streaming-before-regularize on a workload whose loops only become
// streamable after regularization — the §IV ordering argument.
func TestOrderingMatters(t *testing.T) {
	m := testModel(
		Baseline{Transfer: 5e6, Compute: 5e6, Launch: 1000, Launches: 10, Time: 10e6},
		Features{Loops: 2, Irregular: 0.6, Vectorizable: 0.4, StreamLegal: 0, RegUnlocks: 1},
	)
	canon := m.Predict(Config{Spec: "regularize,streaming", Blocks: 20})
	swapped := m.Predict(Config{Spec: "streaming,regularize", Blocks: 20})
	if canon > swapped {
		t.Fatalf("regularize,streaming (%d) priced worse than streaming,regularize (%d)", canon, swapped)
	}
}

// Cross-machine scaling: the same baseline priced for a machine with half
// the PCIe bandwidth must predict a larger unoptimized makespan.
func TestCrossMachineScaling(t *testing.T) {
	base := runtime.DefaultConfig()
	slow := base
	slow.MIC.Name = "slow-phi"
	slow.PCIe.BandwidthGBs = base.PCIe.BandwidthGBs / 2
	m := &CostModel{
		Workload: Features{Loops: 1, Vectorizable: 1, StreamLegal: 1},
		Baseline: Baseline{Transfer: 4e6, Compute: 1e6, Launch: 1000, Launches: 4, Time: 5e6},
		Target:   slow,
		Base:     base,
	}
	same := &CostModel{Workload: m.Workload, Baseline: m.Baseline, Target: base, Base: base}
	if m.Predict(Config{}) <= same.Predict(Config{}) {
		t.Fatalf("halved PCIe bandwidth did not raise the predicted makespan: %d vs %d",
			m.Predict(Config{}), same.Predict(Config{}))
	}
}
