package tune

import (
	"math"
	"strings"

	"comp/internal/runtime"
	"comp/internal/sim/engine"
	"comp/internal/transform"
)

// Config is one candidate configuration the tuner can select: a pass
// pipeline spec (empty = compile unoptimized), the streaming block count
// (meaningful only when the spec streams), and the device-stream count for
// batched serving (0 = leave the caller's stream count alone).
type Config struct {
	Spec    string `json:"spec"`
	Blocks  int    `json:"blocks"`
	Streams int    `json:"streams,omitempty"`
}

func (c Config) streams() bool { return specStreams(c.Spec) }

func specStreams(spec string) bool {
	for _, name := range strings.Split(spec, ",") {
		if strings.TrimSpace(name) == "streaming" {
			return true
		}
	}
	return false
}

// Baseline carries the measurements of one unoptimized run — the same
// D/C/K decomposition the §III-B block model uses, plus the launch count
// so merging can be priced.
type Baseline struct {
	Transfer engine.Duration `json:"transfer"` // D: total DMA busy time
	Compute  engine.Duration `json:"compute"`  // C: kernel time net of launches
	Launch   engine.Duration `json:"launch"`   // K: per-launch overhead
	Launches int64           `json:"launches"`
	Time     engine.Duration `json:"time"` // unoptimized makespan
}

// BaselineFromStats derives the baseline from an unoptimized run's stats,
// mirroring core.ProfileFromStats with the launch count kept.
func BaselineFromStats(st runtime.Stats, launch engine.Duration) Baseline {
	c := st.DeviceBusy - engine.Duration(st.KernelLaunches)*launch
	if c < 0 {
		c = 0
	}
	return Baseline{
		Transfer: st.TransferBusy,
		Compute:  c,
		Launch:   launch,
		Launches: st.KernelLaunches,
		Time:     st.Time,
	}
}

// CostModel prices candidate configurations without running them. It
// starts from a measured baseline (D, C, K of one unoptimized run),
// rescales it when the target machine differs from the one the baseline
// was measured on, then walks the candidate spec in pipeline order
// applying each pass's analytic effect: merge collapses launches,
// regularization lifts the bandwidth derating and unlocks vectorization at
// the price of host-side gathers, streaming replaces the serial
// transfer+compute sum with the §III-B overlap model T(N).
//
// The model's job is ranking, not absolute accuracy — the simulator probes
// the top candidates and the measured times decide. Its absolute error is
// still surfaced: every decision remark records predicted vs measured.
type CostModel struct {
	Workload Features
	Baseline Baseline
	// Target is the machine being tuned for; Base the machine the
	// baseline was measured on (zero Name = same as target).
	Target runtime.Config
	Base   runtime.Config
	// Requests is the batch size stream pricing assumes (0 = 1: a single
	// compilation, stream count has no effect).
	Requests int
}

// scaled returns the baseline D, C, K in nanoseconds rescaled from the
// measurement machine to the target: transfers by PCIe bandwidth, compute
// by the roofline-dominant throughput ratio, launches by the machines'
// launch overheads.
func (m *CostModel) scaled() (d, c, k float64) {
	d = float64(m.Baseline.Transfer)
	c = float64(m.Baseline.Compute)
	k = float64(m.Baseline.Launch)
	if m.Base.MIC.Name == "" || m.Base.MIC.Name == m.Target.MIC.Name {
		return d, c, k
	}
	if bw, tw := m.Base.PCIe.BandwidthGBs, m.Target.PCIe.BandwidthGBs; bw > 0 && tw > 0 {
		d *= bw / tw
	}
	// Compute scales by whichever roofline leg dominates: the blended
	// scalar/vector throughput or the irregularity-derated bandwidth.
	bt := m.devThroughput(m.Base)
	tt := m.devThroughput(m.Target)
	bb := m.Base.MIC.EffectiveBandwidth(m.Workload.Irregular)
	tb := m.Target.MIC.EffectiveBandwidth(m.Workload.Irregular)
	ratio := 1.0
	if bt > 0 && tt > 0 {
		ratio = bt / tt
	}
	if bb > 0 && tb > 0 {
		if r := bb / tb; r > ratio {
			ratio = r
		}
	}
	c *= ratio
	if bl, tl := m.Base.MIC.LaunchOverhead, m.Target.MIC.LaunchOverhead; bl > 0 && tl > 0 {
		k *= float64(tl) / float64(bl)
	}
	return d, c, k
}

// devThroughput is the device compute throughput blended by the
// workload's vectorizable fraction.
func (m *CostModel) devThroughput(cfg runtime.Config) float64 {
	threads := cfg.MICThreads
	if threads <= 0 {
		threads = cfg.MIC.MaxThreads()
	}
	base := cfg.MIC.ScalarThroughput(threads)
	vf := m.Workload.Vectorizable
	vec := float64(cfg.MIC.VectorLanes) * cfg.MIC.VectorEff
	return base * (vf*vec + (1-vf)*cfg.MIC.ScalarEff)
}

// Predict returns the modeled makespan of one compilation under c.
func (m *CostModel) Predict(c Config) engine.Duration {
	t, _ := m.predict(c)
	return t
}

// PredictBatch returns the modeled makespan of serving the model's
// Requests under c with c.Streams concurrent device streams. With one
// request (or no stream choice) it reduces to Predict.
func (m *CostModel) PredictBatch(c Config) engine.Duration {
	single, d := m.predict(c)
	r := m.Requests
	if r <= 1 {
		return single
	}
	s := c.Streams
	if s <= 0 {
		s = 1
	}
	// Transfers serialize on the shared PCIe link; compute spreads across
	// stream slices of the device. The batch finishes no sooner than
	// either resource allows, with one leading transfer before the first
	// compute can start.
	transfer := float64(r) * d
	compute := float64(r) * (float64(single) - d) / float64(s)
	t := transfer
	if compute > t {
		t = compute
	}
	return engine.Duration(t + d)
}

// components walks the spec in pipeline order, tracking what has been
// applied, and returns the streamed transfer/compute shares (ds, cs), the
// launch overhead k, the cost that does not depend on the block count
// (rest), the full transfer time d, and whether the spec streams anything.
func (m *CostModel) components(c Config) (ds, cs, k, rest, d float64, streamed bool) {
	var comp float64
	d, comp, k = m.scaled()
	launches := float64(m.Baseline.Launches)
	w := m.Workload

	streamFrac := 0.0
	gather := 0.0
	regularized := false
	for _, name := range strings.Split(c.Spec, ",") {
		switch strings.TrimSpace(name) {
		case "merge":
			if w.MergeInner >= 2 && w.Loops > 0 {
				// The launches inside merge candidates collapse to one
				// per candidate; the static loop-nest ratio apportions
				// the dynamic launch count.
				mf := w.MergeInner / w.Loops
				if mf > 1 {
					mf = 1
				}
				launches = launches*(1-mf) + w.MergeCands
			}
		case "regularize":
			if w.Irregular > 0 {
				// Irregular traffic stops dragging whole cache lines:
				// the derated share of compute speeds up by the
				// effective-bandwidth ratio, and the loops irregularity
				// kept off the vector units get the SIMD blend back.
				eff := m.Target.MIC.EffectiveBandwidth(w.Irregular) / m.Target.MIC.EffectiveBandwidth(0)
				vec := float64(m.Target.MIC.VectorLanes) * m.Target.MIC.VectorEff
				gain := vec / m.Target.MIC.ScalarEff
				if gain < 1 {
					gain = 1
				}
				comp = comp*(1-w.Irregular) + comp*w.Irregular*eff/gain
				// The permutation must be built host-side: the irregular
				// bytes cross host memory once more. Charged upfront
				// here; a later streaming pass overlaps it (pipelined
				// gathers) and removes the charge.
				gather = float64(d) * w.Irregular
				regularized = true
			}
		case "streaming":
			streamFrac = w.StreamLegal
			if regularized {
				streamFrac += w.RegUnlocks
			}
			if streamFrac > 1 {
				streamFrac = 1
			}
			if streamFrac > 0 {
				streamed = true
				gather = 0 // pipelined gathers ride the stream blocks
			}
		}
	}

	if !streamed {
		return 0, 0, k, d + comp + k*launches + gather, d, false
	}
	ds = d * streamFrac
	cs = comp * streamFrac
	rest = d*(1-streamFrac) + comp*(1-streamFrac) + k*launches*(1-streamFrac)
	return ds, cs, k, rest, d, true
}

// predict returns the modeled makespan of one compilation under c plus
// the transfer time (the batch model needs that component separately).
func (m *CostModel) predict(c Config) (engine.Duration, float64) {
	ds, cs, k, rest, d, streamed := m.components(c)
	if !streamed {
		return engine.Duration(rest), d
	}
	n := c.Blocks
	if n <= 0 {
		n = transform.DefaultBlocks
	}
	t := float64(transform.ModelTime(engine.Duration(ds), engine.Duration(cs), engine.Duration(k), n))
	return engine.Duration(t + rest), d
}

// BestBlocks returns the block count minimizing the predicted cost of c
// over the ladder (c.Blocks is ignored). For non-streaming specs the
// choice is irrelevant and the first rung is returned.
func (m *CostModel) BestBlocks(c Config, ladder []int) int {
	if len(ladder) == 0 {
		ladder = transform.DefaultLadder()
	}
	best, bestT := ladder[0], engine.Duration(math.MaxInt64)
	for _, n := range ladder {
		c.Blocks = n
		if t := m.PredictBatch(c); t < bestT {
			best, bestT = n, t
		}
	}
	return best
}

// Knee returns the block count past which the predicted cost of c is
// non-decreasing in blocks: the larger of the transfer-bound knee
// (Ds−Cs)/K — where per-block compute stops hiding under transfer — and
// the compute-bound optimum sqrt(Ds/K). Past both, every extra block only
// adds launch overhead. Non-streaming specs have no knee (returns 1:
// predicted cost is constant in blocks).
func (m *CostModel) Knee(c Config) int {
	ds, cs, k, _, _, streamed := m.components(c)
	if !streamed || k <= 0 {
		return 1
	}
	knee := (ds - cs) / k
	if s := math.Sqrt(ds / k); s > knee {
		knee = s
	}
	if knee < 1 {
		return 1
	}
	return int(math.Ceil(knee))
}
