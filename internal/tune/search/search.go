// Package search holds the measurement-driven search primitives shared by
// the block-count autotuner (transform.AutoTuner) and the cost-model
// pipeline tuner (internal/tune): a budgeted probe ledger and a ladder
// hill-climb. It deliberately imports nothing but the simulator's time
// type so both the transform layer and the tuning layer can use it
// without an import cycle.
package search

import (
	"fmt"
	"sort"

	"comp/internal/sim/engine"
)

// Probe is one measurement: the measured execution time at a ladder value.
type Probe struct {
	Value int
	Time  engine.Duration
}

// Result is the outcome of one Climb.
type Result struct {
	// Value is the chosen ladder value; Time its measured execution time.
	Value int
	Time  engine.Duration
	// Probes is how many measured runs the search spent.
	Probes int
	// History lists the probes in measurement order.
	History []Probe
}

// ErrBudget is the out-of-probes signal: the climb returns the best
// measurement so far when it surfaces internally, and probe ledgers hand
// it to callers that keep searching past their budget.
var ErrBudget = fmt.Errorf("search: probe budget exhausted")

// Ledger meters measurements against a probe budget while memoizing
// repeats: probing the same value twice costs one probe. It also tracks
// the best measurement seen.
type Ledger struct {
	budget  int
	measure func(int) (engine.Duration, error)

	seen map[int]engine.Duration
	res  Result
}

// NewLedger wraps a measure function with a probe budget.
func NewLedger(budget int, measure func(int) (engine.Duration, error)) *Ledger {
	return &Ledger{budget: budget, measure: measure, seen: map[int]engine.Duration{}}
}

// Probe measures one value, charging the budget only for unseen values.
// Past the budget it returns ErrBudget.
func (l *Ledger) Probe(value int) (engine.Duration, error) {
	if d, ok := l.seen[value]; ok {
		return d, nil
	}
	if l.res.Probes >= l.budget {
		return 0, ErrBudget
	}
	d, err := l.measure(value)
	if err != nil {
		return 0, err
	}
	l.res.Probes++
	l.seen[value] = d
	l.res.History = append(l.res.History, Probe{Value: value, Time: d})
	if l.res.Value == 0 || d < l.res.Time {
		l.res.Value, l.res.Time = value, d
	}
	return d, nil
}

// Best returns the search result so far.
func (l *Ledger) Best() Result { return l.res }

// Climb hill-climbs a sorted ladder of candidate values by measurement:
// it seeds at the rung nearest seed, peeks at both neighbours to pick the
// downhill direction, then keeps walking while the measured time improves,
// stopping at a local minimum or when the probe budget is spent. The
// ladder must be ascending and non-empty.
func Climb(ladder []int, seed, budget int, measure func(int) (engine.Duration, error)) (Result, error) {
	if len(ladder) == 0 {
		return Result{}, fmt.Errorf("search: empty ladder")
	}
	if !sort.IntsAreSorted(ladder) {
		return Result{}, fmt.Errorf("search: ladder %v is not ascending", ladder)
	}
	l := NewLedger(budget, measure)
	if err := ClimbLedger(l, ladder, seed); err != nil {
		return Result{}, err
	}
	return l.Best(), nil
}

// ClimbLedger runs the hill-climb against an existing ledger, so a caller
// can spend one budget across seeding probes and the climb. Budget
// exhaustion is not an error: the ledger keeps the best measurement.
func ClimbLedger(l *Ledger, ladder []int, seed int) error {
	// Start at the rung nearest the seed.
	at := NearestRung(ladder, seed)
	cur, err := l.Probe(ladder[at])
	if err == ErrBudget {
		return nil
	}
	if err != nil {
		return err
	}
	// Pick the downhill direction by peeking at both neighbours, then keep
	// walking while the measured time improves.
	dir := 0
	bestN := cur
	for _, d := range []int{-1, +1} {
		j := at + d
		if j < 0 || j >= len(ladder) {
			continue
		}
		n, err := l.Probe(ladder[j])
		if err == ErrBudget {
			return nil
		}
		if err != nil {
			return err
		}
		if n < bestN {
			bestN, dir = n, d
		}
	}
	for dir != 0 {
		at += dir
		j := at + dir
		if j < 0 || j >= len(ladder) {
			break
		}
		n, err := l.Probe(ladder[j])
		if err == ErrBudget {
			return nil
		}
		if err != nil {
			return err
		}
		if n >= bestN {
			break
		}
		bestN = n
	}
	return nil
}

// NearestRung returns the index of the ladder value closest to seed, the
// lower rung on ties.
func NearestRung(ladder []int, seed int) int {
	best, bestDist := 0, -1
	for i, v := range ladder {
		d := v - seed
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}
