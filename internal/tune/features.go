// Package tune is the cost-model-driven configuration search that unifies
// the pass pipeline and the block-count autotuner. It prices candidate
// configurations — pipeline spec × streaming block count × device-stream
// count — with an analytic cost model fed by the pass manager's memoized
// analysis cache, spends a bounded simulator-probe budget only on the
// top-ranked candidates, and seeds the search from a learned
// nearest-neighbour predictor trained on past remark trails so repeat and
// near-miss workloads converge in 0–2 probes.
package tune

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"comp/internal/analysis"
	"comp/internal/minic"
	"comp/internal/pass"
	"comp/internal/runtime"
	"comp/internal/transform"
)

// Features is the workload feature vector: the static facts about a
// program the cost model and the learned predictor condition on. All
// fields are aggregates (counts, fractions, sums), so a vector derived
// from a remark trail is invariant under remark reordering.
type Features struct {
	// Loops counts offloaded loops; Iters their total trip count when the
	// bounds are compile-time constants (0 otherwise).
	Loops float64 `json:"loops"`
	Iters float64 `json:"iters"`
	// AccessBytes is the per-iteration traffic summed over offloaded
	// loops' subscripted accesses.
	AccessBytes float64 `json:"access_bytes"`
	// Irregular is the traffic-weighted irregular-access fraction;
	// Vectorizable the fraction of offloaded loops the vectorizer accepts.
	Irregular    float64 `json:"irregular"`
	Vectorizable float64 `json:"vectorizable"`
	// StreamLegal is the fraction of offloaded loops legal to stream as
	// written; RegUnlocks the fraction that would become legal if
	// regularization removed their irregular subscripts first.
	StreamLegal float64 `json:"stream_legal"`
	RegUnlocks  float64 `json:"reg_unlocks"`
	// MergeCands counts host loops with enough inner offloads to merge;
	// MergeInner the offloaded loops living inside those candidates.
	MergeCands float64 `json:"merge_cands"`
	MergeInner float64 `json:"merge_inner"`
	// Reuse is the fraction of read arrays consumed by more than one
	// offloaded loop — cross-loop data reuse merging can exploit.
	Reuse float64 `json:"reuse"`
}

// Extract computes the feature vector for a checked file. It goes through
// pass.NewContext so the per-loop analyses are the memoized ones every
// pipeline pass shares — pricing a candidate pipeline never re-analyzes
// what the passes already looked at.
func Extract(f *minic.File) (Features, error) {
	ctx := pass.NewContext(f)
	var w Features
	readers := map[string]int{}
	consts := constScalars(f)
	loops := transform.FindOffloadLoops(f)
	var totalBytes, irrBytes float64
	for _, loop := range loops {
		info, err := ctx.Analysis(loop)
		if err != nil {
			return Features{}, err
		}
		w.Loops++
		if n, ok := iterCount(info, consts); ok {
			w.Iters += float64(n)
		}
		var perIter float64
		for _, a := range info.Accesses {
			perIter += float64(a.ElemSize())
		}
		w.AccessBytes += perIter
		totalBytes += perIter
		irrBytes += perIter * info.IrregularFraction()
		if info.Vectorizable() {
			w.Vectorizable++
		}
		if info.StreamLegal() {
			w.StreamLegal++
		} else if info.Parallel && info.IrregularFraction() > 0 {
			// The §IV story: the only thing standing between this loop
			// and streaming is its irregular subscripts.
			w.RegUnlocks++
		}
		for name := range info.ArraysRead {
			readers[name]++
		}
	}
	if w.Loops > 0 {
		w.Vectorizable /= w.Loops
		w.StreamLegal /= w.Loops
		w.RegUnlocks /= w.Loops
	}
	if totalBytes > 0 {
		w.Irregular = irrBytes / totalBytes
	}
	var shared, total float64
	for _, n := range readers {
		total++
		if n > 1 {
			shared++
		}
	}
	if total > 0 {
		w.Reuse = shared / total
	}
	for _, outer := range transform.MergeCandidates(f, 2) {
		w.MergeCands++
		w.MergeInner += float64(countInnerOffloads(outer))
	}
	return w, nil
}

func iterCount(info *analysis.LoopInfo, consts map[string]int64) (int64, bool) {
	lo, lok := resolveConst(info.Lower, consts)
	hi, hok := resolveConst(info.Upper, consts)
	if !lok || !hok || info.Step <= 0 || hi <= lo {
		return 0, false
	}
	return (hi - lo + info.Step - 1) / info.Step, true
}

// resolveConst evaluates e, falling back to the single-assignment constant
// scalars of the file (the ubiquitous `int n = 4096; ... i < n` bound).
func resolveConst(e minic.Expr, consts map[string]int64) (int64, bool) {
	if v, ok := analysis.ConstInt(e); ok {
		return v, true
	}
	if id, ok := e.(*minic.Ident); ok {
		v, ok := consts[id.Name]
		return v, ok
	}
	return 0, false
}

// constScalars collects scalar variables declared exactly once with a
// constant initializer and never reassigned anywhere in the file.
func constScalars(f *minic.File) map[string]int64 {
	vals := map[string]int64{}
	declared := map[string]int{}
	reassigned := map[string]bool{}
	record := func(d *minic.VarDecl) {
		declared[d.Name]++
		if d.Init != nil {
			if v, ok := analysis.ConstInt(d.Init); ok {
				vals[d.Name] = v
			}
		}
	}
	minic.Inspect(f, func(n minic.Node) bool {
		switch x := n.(type) {
		case *minic.DeclStmt:
			record(x.Decl)
		case *minic.AssignStmt:
			if id, ok := x.LHS.(*minic.Ident); ok {
				reassigned[id.Name] = true
			}
		case *minic.IncDecStmt:
			if id, ok := x.X.(*minic.Ident); ok {
				reassigned[id.Name] = true
			}
		}
		return true
	})
	for _, d := range f.Decls {
		if vd, ok := d.(*minic.VarDecl); ok {
			record(vd)
		}
	}
	for name := range vals {
		if declared[name] != 1 || reassigned[name] {
			delete(vals, name)
		}
	}
	return vals
}

func countInnerOffloads(outer *minic.ForStmt) int {
	n := 0
	minic.Inspect(outer.Body, func(node minic.Node) bool {
		fs, ok := node.(*minic.ForStmt)
		if !ok {
			return true
		}
		if transform.OffloadPragma(fs) != nil {
			n++
			return false
		}
		return true
	})
	return n
}

// FeaturesFromRemarks reconstructs a feature vector from a structured
// remark trail — the training path: a past compilation's remark log is
// enough to place it in feature space without re-parsing the source. The
// reconstruction is lossy (remarks record decisions, not raw analysis) but
// deterministic, and because only counts and sums are accumulated the
// result is invariant under any permutation of the trail.
func FeaturesFromRemarks(rs pass.Remarks) Features {
	var w Features
	loopPos := map[string]bool{}
	var streamed, reorders, merges float64
	for _, r := range rs {
		if r.Pos != "" && (r.Pass == "streaming" || r.Pass == "regularize" || r.Pass == "merge") {
			loopPos[r.Pos] = true
		}
		switch r.Pass {
		case "streaming":
			if r.Verdict.Applied() && r.Op == "stream" {
				streamed++
			}
		case "regularize":
			if r.Verdict.Applied() {
				reorders++
			}
		case "merge":
			if r.Verdict.Applied() {
				merges++
				w.MergeInner += argFloat(r.Args, "inner")
			}
		}
	}
	w.Loops = float64(len(loopPos))
	w.MergeCands = merges
	if w.Loops > 0 {
		w.StreamLegal = clamp01(streamed / w.Loops)
		w.RegUnlocks = clamp01(reorders / w.Loops)
		w.Vectorizable = clamp01(1 - reorders/w.Loops)
	}
	if reorders > 0 {
		// Reordering fired, so irregular traffic existed; the trail does
		// not record how much, so a fixed mid-scale stand-in keeps the
		// vector comparable across trails.
		w.Irregular = 0.5
	}
	return w
}

// ConfigFromRemarks recovers the configuration a remark trail documents:
// the applied passes (in the canonical profitable order — the trail's
// order is not trusted), the streaming block count, and, when a tune
// remark is present, the tuner's own recorded decision, which wins
// outright. Like FeaturesFromRemarks it is permutation-invariant.
func ConfigFromRemarks(rs pass.Remarks) Config {
	applied := map[string]bool{}
	var c Config
	var tuned []Config
	for _, r := range rs {
		if !r.Verdict.Applied() {
			continue
		}
		if r.Pass == "tune" {
			tuned = append(tuned, Config{
				Spec:    argString(r.Args, "spec"),
				Blocks:  int(argFloat(r.Args, "blocks")),
				Streams: int(argFloat(r.Args, "streams")),
			})
			continue
		}
		switch r.Pass {
		case "merge", "regularize", "streaming":
			applied[r.Pass] = true
		}
		if r.Pass == "streaming" && r.Op == "stream" {
			if b := int(argFloat(r.Args, "blocks")); b > c.Blocks {
				c.Blocks = b
			}
		}
	}
	if len(tuned) > 0 {
		// A genuine trail holds one tune remark; if a mangled log holds
		// several, the deterministic maximum keeps the reconstruction
		// order-invariant.
		sortConfigs(tuned)
		return tuned[len(tuned)-1]
	}
	var names []string
	for _, name := range []string{"merge", "regularize", "streaming"} {
		if applied[name] {
			names = append(names, name)
		}
	}
	c.Spec = strings.Join(names, ",")
	return c
}

func argFloat(args map[string]any, key string) float64 {
	switch v := args[key].(type) {
	case int:
		return float64(v)
	case int64:
		return float64(v)
	case float64:
		return v
	case string:
		f, _ := strconv.ParseFloat(v, 64)
		return f
	}
	return 0
}

func argString(args map[string]any, key string) string {
	s, _ := args[key].(string)
	return s
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Platform is the machine-side feature vector: what the predictor needs to
// transfer experience across machine configurations (the held-out-machine
// case), and what the cost model scales baselines by.
type Platform struct {
	DevName      string  `json:"dev_name"`
	DevCores     float64 `json:"dev_cores"`
	DevClockGHz  float64 `json:"dev_clock_ghz"`
	DevLanes     float64 `json:"dev_lanes"`
	DevVecEff    float64 `json:"dev_vec_eff"`
	DevScalarEff float64 `json:"dev_scalar_eff"`
	DevMemGBs    float64 `json:"dev_mem_gbs"`
	HostCores    float64 `json:"host_cores"`
	HostClockGHz float64 `json:"host_clock_ghz"`
	PCIeGBs      float64 `json:"pcie_gbs"`
	LaunchNs     float64 `json:"launch_ns"`
}

// PlatformOf derives the platform features from a runtime configuration.
func PlatformOf(cfg runtime.Config) Platform {
	return Platform{
		DevName:      cfg.MIC.Name,
		DevCores:     float64(cfg.MIC.Cores),
		DevClockGHz:  cfg.MIC.ClockGHz,
		DevLanes:     float64(cfg.MIC.VectorLanes),
		DevVecEff:    cfg.MIC.VectorEff,
		DevScalarEff: cfg.MIC.ScalarEff,
		DevMemGBs:    cfg.MIC.MemBandwidthGBs,
		HostCores:    float64(cfg.CPU.Cores),
		HostClockGHz: cfg.CPU.ClockGHz,
		PCIeGBs:      cfg.PCIe.BandwidthGBs,
		LaunchNs:     float64(cfg.MIC.LaunchOverhead),
	}
}

// vector flattens the numeric feature dimensions (names excluded) for
// distance computation. Order is fixed and shared by every sample.
func (w Features) vector() []float64 {
	return []float64{
		w.Loops, w.Iters, w.AccessBytes, w.Irregular, w.Vectorizable,
		w.StreamLegal, w.RegUnlocks, w.MergeCands, w.MergeInner, w.Reuse,
	}
}

func (p Platform) vector() []float64 {
	return []float64{
		p.DevCores, p.DevClockGHz, p.DevLanes, p.DevVecEff, p.DevScalarEff,
		p.DevMemGBs, p.HostCores, p.HostClockGHz, p.PCIeGBs, p.LaunchNs,
	}
}

// Distance is the scale-free distance between two feature points: each
// dimension contributes |a−b|/(|a|+|b|+1) ∈ [0,1), aggregated as the
// root-mean-square. It needs no dataset-wide normalization, so adding
// samples to a model never changes the distance between two fixed points
// (the golden model file stays stable).
func Distance(aw Features, ap Platform, bw Features, bp Platform) float64 {
	av := append(aw.vector(), ap.vector()...)
	bv := append(bw.vector(), bp.vector()...)
	var sum float64
	for i := range av {
		d := math.Abs(av[i] - bv[i])
		den := math.Abs(av[i]) + math.Abs(bv[i]) + 1
		sum += (d / den) * (d / den)
	}
	return math.Sqrt(sum / float64(len(av)))
}

// sortConfigs orders configurations deterministically (spec, streams,
// blocks) for stable candidate enumeration.
func sortConfigs(cs []Config) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Spec != cs[j].Spec {
			return cs[i].Spec < cs[j].Spec
		}
		if cs[i].Streams != cs[j].Streams {
			return cs[i].Streams < cs[j].Streams
		}
		return cs[i].Blocks < cs[j].Blocks
	})
}
