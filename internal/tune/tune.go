package tune

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"comp/internal/pass"
	"comp/internal/runtime"
	"comp/internal/sim/engine"
	"comp/internal/transform"
)

// DefaultMaxProbes is the simulator-probe budget per tuning decision,
// matching the block autotuner's historical budget.
const DefaultMaxProbes = transform.DefaultMaxProbes

// DefaultWarmRadius is the feature-space distance under which a model
// sample is trusted to seed the search directly (the warm path).
const DefaultWarmRadius = 0.25

// coldSpecProbes is how many distinct pipeline specs the cold search
// measures before refining the winner's block count; the rest of the
// budget goes to the climb.
const coldSpecProbes = 3

// Request describes one tuning problem: the workload's features and
// baseline profile, the machine to tune for, the candidate space, the
// probe budget, and the measurement oracle.
type Request struct {
	// Key identifies the workload for caching and model samples.
	Key string
	// Workload and Baseline feed the cost model; Platform is the machine
	// configuration being tuned for.
	Workload Features
	Baseline Baseline
	Platform runtime.Config
	// Specs are the candidate pipeline specs ("" = compile unoptimized);
	// nil derives them from the workload features via DefaultSpecs.
	Specs []string
	// Ladder is the streaming block ladder (nil = transform.DefaultLadder).
	Ladder []int
	// Streams are the candidate device-stream counts for batched serving
	// (nil = {0}: stream count is not the tuner's to choose).
	Streams []int
	// Requests is the batch size stream pricing assumes (0 = 1).
	Requests int
	// MaxProbes bounds simulator probes (0 = the tuner's default).
	MaxProbes int
	// Measure runs one candidate configuration and returns its makespan.
	Measure func(Config) (engine.Duration, error)
}

// Probe records one simulator measurement the search spent.
type Probe struct {
	Config Config          `json:"config"`
	Time   engine.Duration `json:"time"`
}

// Decision is the tuner's answer. The embedded pass.TuneDecision is what
// the tune pipeline stage emits as a structured remark.
type Decision struct {
	pass.TuneDecision
	// Config is the winning configuration in the tuner's own terms.
	Config Config
	// Cached reports a per-tuner cache hit (no new probes at all).
	Cached bool
	// History lists the probes spent, in order.
	History []Probe
}

// Tuner is the unified configuration search. It is safe for concurrent
// use; decisions are cached per (key, platform).
type Tuner struct {
	// Model is the learned predictor seeding the search; nil tunes cold.
	Model *Model
	// MaxProbes and WarmRadius override the defaults when positive.
	MaxProbes  int
	WarmRadius float64

	mu    sync.Mutex
	cache map[string]Decision
}

// DefaultSpecs derives the candidate pipeline specs from the workload
// features: the canonical-order subsets of the passes that could plausibly
// help, the unoptimized baseline, and — when both regularization and
// streaming are in play — the one non-canonical ordering worth testing
// (streaming before regularization, which streams only the loops legal as
// written and leaves the gathers upfront).
func DefaultSpecs(w Features) []string {
	var passes []string
	if w.MergeInner >= 2 {
		passes = append(passes, "merge")
	}
	if w.Irregular > 0 {
		passes = append(passes, "regularize")
	}
	if w.StreamLegal > 0 || w.RegUnlocks > 0 {
		passes = append(passes, "streaming")
	}
	specs := []string{""}
	for mask := 1; mask < 1<<len(passes); mask++ {
		var names []string
		for i, p := range passes {
			if mask&(1<<i) != 0 {
				names = append(names, p)
			}
		}
		specs = append(specs, strings.Join(names, ","))
	}
	if w.Irregular > 0 && (w.StreamLegal > 0 || w.RegUnlocks > 0) {
		var names []string
		if w.MergeInner >= 2 {
			names = append(names, "merge")
		}
		specs = append(specs, strings.Join(append(names, "streaming", "regularize"), ","))
	}
	return specs
}

func (t *Tuner) maxProbes(req Request) int {
	switch {
	case req.MaxProbes > 0:
		return req.MaxProbes
	case t.MaxProbes > 0:
		return t.MaxProbes
	}
	return DefaultMaxProbes
}

func (t *Tuner) warmRadius() float64 {
	if t.WarmRadius > 0 {
		return t.WarmRadius
	}
	return DefaultWarmRadius
}

func cacheKey(req Request) string {
	return fmt.Sprintf("%s|%s|%s|r%d", req.Key, req.Platform.MIC.Name, req.Platform.CPU.Name, req.Requests)
}

// search carries the shared state of one Tune call.
type search struct {
	model   *CostModel
	ladder  []int
	streams []int
	budget  int
	measure func(Config) (engine.Duration, error)

	probed  map[Config]engine.Duration
	history []Probe

	best     Config
	bestTime engine.Duration
	haveBest bool
}

// normalize canonicalizes a candidate so the probe memo never pays twice
// for configurations the runtime cannot tell apart: blocks are meaningless
// without streaming, stream counts outside the candidate set collapse to
// the caller's fixed count.
func (s *search) normalize(c Config) Config {
	if !specStreams(c.Spec) {
		c.Blocks = 0
	} else if c.Blocks <= 0 {
		c.Blocks = s.model.BestBlocks(c, s.ladder)
	}
	ok := false
	for _, n := range s.streams {
		if c.Streams == n {
			ok = true
			break
		}
	}
	if !ok {
		c.Streams = s.streams[0]
	}
	return c
}

// probe measures c (memoized), charging the budget only for new
// configurations. done reports the budget was already exhausted.
func (s *search) probe(c Config) (dur engine.Duration, done bool, err error) {
	c = s.normalize(c)
	if d, ok := s.probed[c]; ok {
		return d, false, nil
	}
	if len(s.history) >= s.budget {
		return 0, true, nil
	}
	d, err := s.measure(c)
	if err != nil {
		return 0, false, fmt.Errorf("tune: probing %+v: %w", c, err)
	}
	s.probed[c] = d
	s.history = append(s.history, Probe{Config: c, Time: d})
	if !s.haveBest || d < s.bestTime {
		s.best, s.bestTime, s.haveBest = c, d, true
	}
	return d, false, nil
}

// climbBlocks refines the winning streaming configuration's block count by
// walking the ladder from its current rung while the measured time
// improves — the same hill-climb the block autotuner runs, but charged to
// the shared probe budget.
func (s *search) climbBlocks() error {
	if !s.haveBest || !specStreams(s.best.Spec) {
		return nil
	}
	pos := 0
	for i, n := range s.ladder {
		if n == s.best.Blocks {
			pos = i
			break
		}
		if n < s.best.Blocks {
			pos = i
		}
	}
	for _, dir := range []int{1, -1} {
		for p := pos + dir; p >= 0 && p < len(s.ladder); p += dir {
			c := s.best
			c.Blocks = s.ladder[p]
			before := s.bestTime
			d, done, err := s.probe(c)
			if err != nil {
				return err
			}
			if done || d >= before {
				break
			}
		}
		// Re-center on the best rung found so the downhill walk starts
		// from the winner, not the original seed.
		for i, n := range s.ladder {
			if n == s.best.Blocks {
				pos = i
			}
		}
	}
	return nil
}

// Tune runs the cost-model-driven search and returns the winning
// configuration with its predicted and measured cost.
func (t *Tuner) Tune(req Request) (Decision, error) {
	if req.Measure == nil {
		return Decision{}, fmt.Errorf("tune: request needs a Measure function")
	}
	key := cacheKey(req)
	t.mu.Lock()
	if d, ok := t.cache[key]; ok {
		t.mu.Unlock()
		d.Cached = true
		d.Probes = 0
		d.Source = "cache"
		d.History = nil
		return d, nil
	}
	t.mu.Unlock()

	ladder := req.Ladder
	if len(ladder) == 0 {
		ladder = transform.DefaultLadder()
	}
	streams := req.Streams
	if len(streams) == 0 {
		streams = []int{0}
	}
	specs := req.Specs
	if specs == nil {
		specs = DefaultSpecs(req.Workload)
	}
	m := &CostModel{
		Workload: req.Workload,
		Baseline: req.Baseline,
		Target:   req.Platform,
		Requests: req.Requests,
	}
	s := &search{
		model:   m,
		ladder:  ladder,
		streams: streams,
		budget:  t.maxProbes(req),
		measure: req.Measure,
		probed:  map[Config]engine.Duration{},
	}

	source := "search"
	warm, err := t.warmStart(req, m, s)
	if err != nil {
		return Decision{}, err
	}
	switch warm {
	case warmExact:
		// Exact repeat from the persisted model: trust the remembered
		// measurement outright, zero probes.
		source = "model"
	case warmHit:
		source = "model"
	default:
		if err := t.coldSearch(specs, m, s); err != nil {
			return Decision{}, err
		}
	}

	d := Decision{
		TuneDecision: pass.TuneDecision{
			Spec:        s.best.Spec,
			Blocks:      s.best.Blocks,
			Streams:     s.best.Streams,
			PredictedNs: int64(m.PredictBatch(s.best)),
			MeasuredNs:  int64(s.bestTime),
			Probes:      len(s.history),
			Source:      source,
		},
		Config:  s.best,
		History: s.history,
	}
	if t.Model != nil && warm != warmExact {
		t.Model.Observe(Sample{
			Key:        req.Key,
			Workload:   req.Workload,
			Platform:   PlatformOf(req.Platform),
			Config:     s.best,
			MeasuredNs: int64(s.bestTime),
		})
	}
	t.mu.Lock()
	if t.cache == nil {
		t.cache = map[string]Decision{}
	}
	t.cache[key] = d
	t.mu.Unlock()
	return d, nil
}

type warmOutcome int

const (
	warmMiss warmOutcome = iota
	warmHit
	warmExact
)

// warmStart consults the learned predictor. An exact feature match reuses
// the remembered configuration and measurement with zero probes. A
// near-miss for the *same workload* (a machine configuration the model
// never saw) probes at most two candidates: the remembered configuration
// re-priced for the target machine (the cost model picks its block count
// fresh, which is what transfers experience across machines), and the
// remembered configuration verbatim. A near-miss for a *different*
// workload only seeds the search — one probe of the neighbour's repriced
// configuration — and then falls through to the cold search: similar
// features do not guarantee the same winning pipeline (a regularization
// workload can sit within the radius of a pure streaming one), so the
// neighbour's answer is a head start, never a verdict.
func (t *Tuner) warmStart(req Request, m *CostModel, s *search) (warmOutcome, error) {
	if t.Model == nil {
		return warmMiss, nil
	}
	sample, dist, ok := t.Model.Nearest(req.Workload, PlatformOf(req.Platform))
	if !ok || dist > t.warmRadius() {
		return warmMiss, nil
	}
	if dist == 0 && sample.MeasuredNs > 0 {
		s.best = s.normalize(sample.Config)
		s.bestTime = engine.Duration(sample.MeasuredNs)
		s.haveBest = true
		return warmExact, nil
	}
	repriced := sample.Config
	if specStreams(repriced.Spec) {
		repriced.Blocks = m.BestBlocks(repriced, s.ladder)
	}
	if _, _, err := s.probe(repriced); err != nil {
		return warmMiss, err
	}
	if sample.Key != req.Key {
		return warmMiss, nil
	}
	if _, _, err := s.probe(sample.Config); err != nil {
		return warmMiss, err
	}
	if !s.haveBest {
		return warmMiss, nil
	}
	return warmHit, nil
}

// coldSearch is the full cost-ranked search: price every candidate, probe
// the top-ranked distinct specs (always including the canonical default
// when it is a candidate — the paper's profitable order earns its slot),
// then spend the remaining budget hill-climbing the winner's block count.
func (t *Tuner) coldSearch(specs []string, m *CostModel, s *search) error {
	var cands []Config
	seen := map[string]bool{}
	for _, spec := range specs {
		if seen[spec] {
			continue
		}
		seen[spec] = true
		for _, streams := range s.streams {
			c := Config{Spec: spec, Streams: streams}
			cands = append(cands, s.normalize(c))
		}
	}
	sortConfigs(cands)
	// Stable rank by predicted cost (ties keep the deterministic
	// spec/streams/blocks order from sortConfigs).
	pred := make(map[Config]engine.Duration, len(cands))
	for _, c := range cands {
		pred[c] = m.PredictBatch(c)
	}
	ordered := append([]Config(nil), cands...)
	sort.SliceStable(ordered, func(i, j int) bool { return pred[ordered[i]] < pred[ordered[j]] })

	// Probe the first candidate of each distinct spec in rank order.
	probedSpecs := map[string]bool{}
	plan := make([]Config, 0, coldSpecProbes)
	for _, c := range ordered {
		if len(plan) == coldSpecProbes {
			break
		}
		if probedSpecs[c.Spec] {
			continue
		}
		probedSpecs[c.Spec] = true
		plan = append(plan, c)
	}
	if !probedSpecs[pass.DefaultSpec] && seen[pass.DefaultSpec] && len(plan) > 0 {
		// The default order is the paper's known-good pipeline; never let
		// the model's ranking talk the search out of measuring it.
		for _, c := range ordered {
			if c.Spec == pass.DefaultSpec {
				plan[len(plan)-1] = c
				break
			}
		}
	}
	for _, c := range plan {
		if _, done, err := s.probe(c); err != nil {
			return err
		} else if done {
			break
		}
	}
	if !s.haveBest {
		return fmt.Errorf("tune: probe budget %d too small to measure any candidate", s.budget)
	}
	return s.climbBlocks()
}
