package minic

import "testing"

func TestTernaryParsePrintRoundTrip(t *testing.T) {
	src := `
float a[4];
int main(void) {
    int i;
    for (i = 0; i < 4; i++) {
        a[i] = i > 2 ? 1.0 + i : (i == 0 ? -1.0 : 0.5);
    }
    return 0;
}
`
	f1 := MustParse(src)
	if err := Check(f1).Err(); err != nil {
		t.Fatal(err)
	}
	p1 := Print(f1)
	f2 := MustParse(p1)
	if p2 := Print(f2); p1 != p2 {
		t.Fatalf("ternary print not a fixed point:\n%s\nvs\n%s", p1, p2)
	}
	// Clone must cover CondExpr.
	if Print(CloneFile(f1)) != p1 {
		t.Fatal("clone of ternary differs")
	}
}

func TestTernaryTypePromotion(t *testing.T) {
	f := MustParse("double f(int i) { return i > 0 ? 1 : 2.5; }")
	if err := Check(f).Err(); err != nil {
		t.Fatal(err)
	}
	var ce *CondExpr
	Inspect(f, func(n Node) bool {
		if x, ok := n.(*CondExpr); ok {
			ce = x
		}
		return true
	})
	if ce == nil || !ce.Type().Equal(DoubleType) {
		t.Fatalf("ternary type = %v, want double", ce.Type())
	}
}

func TestTernaryIncompatibleBranches(t *testing.T) {
	f := MustParse("float *p; float g(int i) { return i > 0 ? p : 1.0; }")
	if Check(f).Err() == nil {
		t.Fatal("pointer/float ternary passed checking")
	}
}
