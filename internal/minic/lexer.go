package minic

import (
	"strings"
)

// Lexer converts MiniC source text into tokens. `#pragma` lines are
// returned as single TokPragma tokens carrying the raw line; the parser
// hands them to the pragma sub-parser.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case isSpace(c):
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// multi-character punctuation, longest first.
var punct3 = []string{"<<=", ">>="}
var punct2 = []string{
	"==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
	"++", "--", "->", "<<", ">>",
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := l.peek()

	// Pragma or other preprocessor line.
	if c == '#' && l.col == colAtLineStart(l) {
		lineStart := l.off
		for l.off < len(l.src) && l.peek() != '\n' {
			l.advance()
		}
		text := strings.TrimSpace(l.src[lineStart:l.off])
		if strings.HasPrefix(text, "#pragma") {
			return Token{Kind: TokPragma, Text: text, Pos: start}, nil
		}
		// Other directives (#include, #define) are accepted and skipped.
		return l.Next()
	}
	if c == '#' {
		return Token{}, errf(start, "'#' not at start of line")
	}

	if isIdentStart(c) {
		s := l.off
		for l.off < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		text := l.src[s:l.off]
		kind := TokIdent
		if IsKeyword(text) {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Pos: start}, nil
	}

	if isDigit(c) || (c == '.' && isDigit(l.peek2())) {
		return l.lexNumber(start)
	}

	if c == '"' {
		return l.lexString(start)
	}

	// Punctuation.
	rest := l.src[l.off:]
	for _, p := range punct3 {
		if strings.HasPrefix(rest, p) {
			for range p {
				l.advance()
			}
			return Token{Kind: TokPunct, Text: p, Pos: start}, nil
		}
	}
	for _, p := range punct2 {
		if strings.HasPrefix(rest, p) {
			l.advance()
			l.advance()
			return Token{Kind: TokPunct, Text: p, Pos: start}, nil
		}
	}
	if strings.ContainsRune("+-*/%<>=!&|^~?:;,.(){}[]", rune(c)) {
		l.advance()
		return Token{Kind: TokPunct, Text: string(c), Pos: start}, nil
	}
	return Token{}, errf(start, "unexpected character %q", string(c))
}

// colAtLineStart returns the column of the first non-space character on the
// current line, so that '#' is only treated as a directive when it leads
// the line (possibly indented).
func colAtLineStart(l *Lexer) int {
	// Walk back from l.off to the line start and find the first non-space.
	i := l.off - 1
	for i >= 0 && l.src[i] != '\n' {
		i--
	}
	j := i + 1
	col := 1
	for j < len(l.src) && (l.src[j] == ' ' || l.src[j] == '\t') {
		j++
		col++
	}
	return col
}

func (l *Lexer) lexNumber(start Pos) (Token, error) {
	s := l.off
	isFloat := false
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.off < len(l.src) && l.peek() == '.' {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.off < len(l.src) && (l.peek() == 'e' || l.peek() == 'E') {
		isFloat = true
		l.advance()
		if l.off < len(l.src) && (l.peek() == '+' || l.peek() == '-') {
			l.advance()
		}
		if l.off >= len(l.src) || !isDigit(l.peek()) {
			return Token{}, errf(start, "malformed exponent")
		}
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	// Suffixes f/F/l/L/u/U are accepted and dropped.
	for l.off < len(l.src) && strings.ContainsRune("fFlLuU", rune(l.peek())) {
		if l.peek() == 'f' || l.peek() == 'F' {
			isFloat = true
		}
		l.advance()
	}
	text := strings.TrimRight(l.src[s:l.off], "fFlLuU")
	kind := TokIntLit
	if isFloat {
		kind = TokFloatLit
	}
	return Token{Kind: kind, Text: text, Pos: start}, nil
}

func (l *Lexer) lexString(start Pos) (Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for l.off < len(l.src) {
		c := l.advance()
		switch c {
		case '"':
			return Token{Kind: TokStringLit, Text: b.String(), Pos: start}, nil
		case '\\':
			if l.off >= len(l.src) {
				return Token{}, errf(start, "unterminated string")
			}
			e := l.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '"':
				b.WriteByte(e)
			default:
				return Token{}, errf(start, "unsupported escape \\%c", e)
			}
		case '\n':
			return Token{}, errf(start, "newline in string literal")
		default:
			b.WriteByte(c)
		}
	}
	return Token{}, errf(start, "unterminated string")
}
