package minic

import (
	"fmt"
	"strings"
)

// PragmaKind enumerates the pragma dialect understood by the compiler.
type PragmaKind int

// Pragma kinds.
const (
	// PragmaOmpParallelFor marks `#pragma omp parallel for`.
	PragmaOmpParallelFor PragmaKind = iota
	// PragmaOffload marks `#pragma offload target(mic[:n]) ...` attached to
	// the following loop or block.
	PragmaOffload
	// PragmaOffloadTransfer marks the asynchronous
	// `#pragma offload_transfer target(...) in(...) signal(tag)`.
	PragmaOffloadTransfer
	// PragmaOffloadWait marks `#pragma offload_wait target(...) wait(tag)`.
	PragmaOffloadWait
)

func (k PragmaKind) String() string {
	switch k {
	case PragmaOmpParallelFor:
		return "omp parallel for"
	case PragmaOffload:
		return "offload"
	case PragmaOffloadTransfer:
		return "offload_transfer"
	case PragmaOffloadWait:
		return "offload_wait"
	}
	return "unknown"
}

// TransferItem names one variable in an in/out/inout/nocopy clause.
// The general form handled is
//
//	name[start : length] : length(n) into(buf) alloc_if(e) free_if(e)
//
// where every modifier is optional. Start defaults to 0. Length nil means
// the item is a scalar. Into names the device-side buffer the section lands
// in (defaults to the same name). AllocIf/FreeIf carry LEO's buffer
// lifetime control; nil means the LEO default (allocate and free around
// each offload), which the data-streaming transform overrides to hoist
// allocation out of the pipelined loop.
type TransferItem struct {
	Name      string
	Start     Expr // section start in elements; nil means 0
	Length    Expr // element count; nil for scalars
	Into      string
	IntoStart Expr // section start within Into; nil means 0
	AllocIf   Expr // nil = default
	FreeIf    Expr // nil = default
}

// Dest returns the device-side buffer name the item maps to.
func (it TransferItem) Dest() string {
	if it.Into != "" {
		return it.Into
	}
	return it.Name
}

// Pragma is a parsed pragma line.
type Pragma struct {
	Pos        Pos
	Kind       PragmaKind
	Target     string // "mic" or "mic:0"
	In         []TransferItem
	Out        []TransferItem
	InOut      []TransferItem
	NoCopy     []TransferItem // allocation control without data movement
	Signal     string         // signal tag variable, "" if absent
	Wait       string         // wait tag variable, "" if absent
	Reductions []string       // omp reduction(+:var) variable names
	// Persist marks a COMP runtime extension (§III-C "reusing MIC
	// threads"): the kernel stays resident across repeated executions of
	// this offload, paying launch overhead only once and taking new blocks
	// on COI-style signals.
	Persist bool
}

// AllItems returns in, inout, out, nocopy items concatenated (in that order).
func (p *Pragma) AllItems() []TransferItem {
	out := make([]TransferItem, 0, len(p.In)+len(p.InOut)+len(p.Out)+len(p.NoCopy))
	out = append(out, p.In...)
	out = append(out, p.InOut...)
	out = append(out, p.Out...)
	out = append(out, p.NoCopy...)
	return out
}

// ParsePragma parses the raw text of a `#pragma ...` line.
func ParsePragma(raw string, pos Pos) (*Pragma, error) {
	body := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(raw), "#pragma"))
	switch {
	case body == "omp parallel for" || strings.HasPrefix(body, "omp parallel for "):
		return parseOmpClauses(strings.TrimPrefix(body, "omp parallel for"), pos)
	case strings.HasPrefix(body, "offload_transfer"):
		return parseOffloadClauses(strings.TrimPrefix(body, "offload_transfer"), pos, PragmaOffloadTransfer)
	case strings.HasPrefix(body, "offload_wait"):
		return parseOffloadClauses(strings.TrimPrefix(body, "offload_wait"), pos, PragmaOffloadWait)
	case strings.HasPrefix(body, "offload"):
		return parseOffloadClauses(strings.TrimPrefix(body, "offload"), pos, PragmaOffload)
	}
	return nil, errf(pos, "unknown pragma %q", raw)
}

// parseOffloadClauses parses `target(mic:0) in(a, b : length(n)) ...`.
func parseOffloadClauses(s string, pos Pos, kind PragmaKind) (*Pragma, error) {
	p := &Pragma{Pos: pos, Kind: kind}
	toks, err := Lex(s)
	if err != nil {
		return nil, errf(pos, "pragma: %v", err)
	}
	i := 0
	peek := func() Token { return toks[i] }
	next := func() Token { t := toks[i]; i++; return t }
	expect := func(text string) error {
		t := next()
		if t.Kind != TokPunct || t.Text != text {
			return errf(pos, "pragma: expected %q, got %s", text, t)
		}
		return nil
	}
	for peek().Kind != TokEOF {
		t := next()
		if t.Kind != TokIdent && t.Kind != TokKeyword {
			return nil, errf(pos, "pragma: expected clause name, got %s", t)
		}
		clause := t.Text
		if err := expect("("); err != nil {
			return nil, err
		}
		// Capture the balanced-paren argument token range.
		depth := 1
		start := i
		for depth > 0 {
			tt := next()
			if tt.Kind == TokEOF {
				return nil, errf(pos, "pragma: unbalanced parentheses in %s clause", clause)
			}
			if tt.Kind == TokPunct && tt.Text == "(" {
				depth++
			}
			if tt.Kind == TokPunct && tt.Text == ")" {
				depth--
			}
		}
		args := toks[start : i-1]
		switch clause {
		case "target":
			p.Target = renderTokens(args)
		case "in", "out", "inout", "nocopy":
			items, err := parseTransferItems(args, pos)
			if err != nil {
				return nil, err
			}
			switch clause {
			case "in":
				p.In = append(p.In, items...)
			case "out":
				p.Out = append(p.Out, items...)
			case "inout":
				p.InOut = append(p.InOut, items...)
			default:
				p.NoCopy = append(p.NoCopy, items...)
			}
		case "signal", "wait":
			name := renderTokens(args)
			name = strings.TrimPrefix(name, "&")
			if clause == "signal" {
				p.Signal = name
			} else {
				p.Wait = name
			}
		case "persist":
			p.Persist = renderTokens(args) != "0"
		default:
			return nil, errf(pos, "pragma: unsupported clause %q", clause)
		}
	}
	return p, nil
}

// parseTransferItems parses the argument of an in/out/inout/nocopy clause.
// Accepted per item:
//
//	name
//	name[start : len]
//	name : length(n) [into(buf)] [alloc_if(e)] [free_if(e)]
//
// plus the LEO list form `a, b : length(expr)` where one trailing modifier
// run applies to every name listed since the previous modifier run.
func parseTransferItems(toks []Token, pos Pos) ([]TransferItem, error) {
	segments, err := splitTopLevel(toks, ",", pos)
	if err != nil {
		return nil, err
	}
	var items []TransferItem
	pendingFrom := 0 // names in the current run lacking a modifier
	for _, seg := range segments {
		parts, err := splitTopLevel(seg, ":", pos)
		if err != nil {
			return nil, err
		}
		if len(parts) > 2 {
			return nil, errf(pos, "pragma: multiple ':' in transfer item")
		}
		item, err := parseItemName(parts[0], pos)
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if len(parts) == 2 {
			mods, err := parseItemModifiers(parts[1], pos)
			if err != nil {
				return nil, err
			}
			// A trailing modifier run covers every name listed since the
			// previous run (LEO semantics).
			for i := pendingFrom; i < len(items); i++ {
				applyModifiers(&items[i], mods)
			}
			pendingFrom = len(items)
		}
	}
	if len(items) == 0 {
		return nil, errf(pos, "pragma: empty transfer clause")
	}
	return items, nil
}

// parseItemName parses `name` or `name[start : len]`.
func parseItemName(toks []Token, pos Pos) (TransferItem, error) {
	if len(toks) == 0 || toks[0].Kind != TokIdent {
		return TransferItem{}, errf(pos, "pragma: expected variable name, got %s", renderTokens(toks))
	}
	item := TransferItem{Name: toks[0].Text}
	rest := toks[1:]
	if len(rest) == 0 {
		return item, nil
	}
	if rest[0].Text != "[" || rest[len(rest)-1].Text != "]" {
		return TransferItem{}, errf(pos, "pragma: malformed section on %s", item.Name)
	}
	inner := rest[1 : len(rest)-1]
	halves, err := splitTopLevel(inner, ":", pos)
	if err != nil {
		return TransferItem{}, err
	}
	if len(halves) != 2 {
		return TransferItem{}, errf(pos, "pragma: section must be [start : length] on %s", item.Name)
	}
	if item.Start, err = parseExprTokens(halves[0], pos); err != nil {
		return TransferItem{}, err
	}
	if item.Length, err = parseExprTokens(halves[1], pos); err != nil {
		return TransferItem{}, err
	}
	return item, nil
}

type itemModifiers struct {
	length    Expr
	into      string
	intoStart Expr
	allocIf   Expr
	freeIf    Expr
}

func applyModifiers(it *TransferItem, m itemModifiers) {
	if m.length != nil && it.Length == nil {
		it.Length = m.length
	}
	if m.into != "" {
		it.Into = m.into
		it.IntoStart = m.intoStart
	}
	if m.allocIf != nil {
		it.AllocIf = m.allocIf
	}
	if m.freeIf != nil {
		it.FreeIf = m.freeIf
	}
}

// parseItemModifiers parses `length(n) into(buf) alloc_if(e) free_if(e)`.
func parseItemModifiers(toks []Token, pos Pos) (itemModifiers, error) {
	var m itemModifiers
	i := 0
	for i < len(toks) {
		name := toks[i]
		if name.Kind != TokIdent {
			return m, errf(pos, "pragma: expected modifier, got %s", name)
		}
		i++
		if i >= len(toks) || toks[i].Text != "(" {
			return m, errf(pos, "pragma: expected '(' after %s", name.Text)
		}
		depth := 0
		start := i + 1
		for ; i < len(toks); i++ {
			if toks[i].Text == "(" {
				depth++
			} else if toks[i].Text == ")" {
				depth--
				if depth == 0 {
					break
				}
			}
		}
		if depth != 0 {
			return m, errf(pos, "pragma: unbalanced parentheses in %s", name.Text)
		}
		args := toks[start:i]
		i++ // past ')'
		switch name.Text {
		case "length":
			e, err := parseExprTokens(args, pos)
			if err != nil {
				return m, err
			}
			m.length = e
		case "into":
			item, err := parseItemName(args, pos)
			if err != nil || (item.Start == nil && len(args) != 1) {
				return m, errf(pos, "pragma: into() takes a buffer name or section")
			}
			m.into = item.Name
			m.intoStart = item.Start
		case "alloc_if":
			e, err := parseExprTokens(args, pos)
			if err != nil {
				return m, err
			}
			m.allocIf = e
		case "free_if":
			e, err := parseExprTokens(args, pos)
			if err != nil {
				return m, err
			}
			m.freeIf = e
		default:
			return m, errf(pos, "pragma: unknown modifier %q", name.Text)
		}
	}
	return m, nil
}

// parseOmpClauses parses the tail of `omp parallel for`, currently only
// reduction(op:var,...) clauses.
func parseOmpClauses(s string, pos Pos) (*Pragma, error) {
	p := &Pragma{Pos: pos, Kind: PragmaOmpParallelFor}
	s = strings.TrimSpace(s)
	for s != "" {
		if !strings.HasPrefix(s, "reduction") {
			return nil, errf(pos, "pragma: unsupported omp clause %q", s)
		}
		open := strings.Index(s, "(")
		close := strings.Index(s, ")")
		if open < 0 || close < open {
			return nil, errf(pos, "pragma: malformed reduction clause")
		}
		body := s[open+1 : close]
		colon := strings.Index(body, ":")
		if colon < 0 {
			return nil, errf(pos, "pragma: reduction needs op:var")
		}
		for _, v := range strings.Split(body[colon+1:], ",") {
			v = strings.TrimSpace(v)
			if v != "" {
				p.Reductions = append(p.Reductions, v)
			}
		}
		s = strings.TrimSpace(s[close+1:])
	}
	return p, nil
}

// splitTopLevel splits toks on the given punctuation at zero paren and
// bracket depth (so `a[off : n]` keeps its section colon).
func splitTopLevel(toks []Token, sep string, pos Pos) ([][]Token, error) {
	var out [][]Token
	depth := 0
	start := 0
	for i, t := range toks {
		if t.Kind != TokPunct {
			continue
		}
		switch t.Text {
		case "(", "[":
			depth++
		case ")", "]":
			depth--
			if depth < 0 {
				return nil, errf(pos, "pragma: unbalanced %q", t.Text)
			}
		case sep:
			if depth == 0 {
				out = append(out, toks[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, toks[start:])
	return out, nil
}

// parseExprTokens parses a standalone expression from a token slice.
func parseExprTokens(toks []Token, pos Pos) (Expr, error) {
	all := make([]Token, len(toks), len(toks)+1)
	copy(all, toks)
	all = append(all, Token{Kind: TokEOF, Pos: pos})
	pp := &Parser{toks: all}
	e, err := pp.parseExpr()
	if err != nil {
		return nil, err
	}
	if pp.peek().Kind != TokEOF {
		return nil, errf(pos, "pragma: trailing tokens after expression")
	}
	return e, nil
}

func renderTokens(toks []Token) string {
	var b strings.Builder
	for _, t := range toks {
		b.WriteString(t.Text)
	}
	return b.String()
}

// String renders the pragma back to source form.
func (p *Pragma) String() string {
	var b strings.Builder
	b.WriteString("#pragma ")
	switch p.Kind {
	case PragmaOmpParallelFor:
		b.WriteString("omp parallel for")
		for i, r := range p.Reductions {
			if i == 0 {
				fmt.Fprintf(&b, " reduction(+:%s", r)
			} else {
				fmt.Fprintf(&b, ",%s", r)
			}
		}
		if len(p.Reductions) > 0 {
			b.WriteString(")")
		}
		return b.String()
	case PragmaOffload:
		b.WriteString("offload")
	case PragmaOffloadTransfer:
		b.WriteString("offload_transfer")
	case PragmaOffloadWait:
		b.WriteString("offload_wait")
	}
	if p.Target != "" {
		fmt.Fprintf(&b, " target(%s)", p.Target)
	}
	writeItems := func(name string, items []TransferItem) {
		if len(items) == 0 {
			return
		}
		fmt.Fprintf(&b, " %s(", name)
		for i, it := range items {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(it.Name)
			if it.Start != nil {
				fmt.Fprintf(&b, "[%s : %s]", ExprString(it.Start), ExprString(it.Length))
			}
			var mods []string
			if it.Length != nil && it.Start == nil {
				mods = append(mods, fmt.Sprintf("length(%s)", ExprString(it.Length)))
			}
			if it.Into != "" {
				if it.IntoStart != nil {
					mods = append(mods, fmt.Sprintf("into(%s[%s : %s])", it.Into, ExprString(it.IntoStart), ExprString(it.Length)))
				} else {
					mods = append(mods, fmt.Sprintf("into(%s)", it.Into))
				}
			}
			if it.AllocIf != nil {
				mods = append(mods, fmt.Sprintf("alloc_if(%s)", ExprString(it.AllocIf)))
			}
			if it.FreeIf != nil {
				mods = append(mods, fmt.Sprintf("free_if(%s)", ExprString(it.FreeIf)))
			}
			if len(mods) > 0 {
				b.WriteString(" : ")
				b.WriteString(strings.Join(mods, " "))
			}
		}
		b.WriteString(")")
	}
	writeItems("in", p.In)
	writeItems("inout", p.InOut)
	writeItems("out", p.Out)
	writeItems("nocopy", p.NoCopy)
	if p.Persist {
		b.WriteString(" persist(1)")
	}
	if p.Signal != "" {
		fmt.Fprintf(&b, " signal(&%s)", p.Signal)
	}
	if p.Wait != "" {
		fmt.Fprintf(&b, " wait(&%s)", p.Wait)
	}
	return b.String()
}
