// Package minic implements the front end for a small C-like language with
// OpenMP and LEO offload pragmas.
//
// MiniC stands in for the C + pycparser + Apricot front end the paper
// builds on: enough of C to express the evaluation benchmarks' offloaded
// loops — scalar and array declarations, structs, pointers, functions,
// for/if/while, and the pragma dialect (`#pragma omp parallel for`,
// `#pragma offload target(mic) in/out/inout(...)`, asynchronous
// offload_transfer with signal/wait) plus the `_Cilk_shared` qualifier used
// by the shared-memory benchmarks. The compiler's transformations operate
// on this package's AST and print transformed source, exactly as a
// source-to-source compiler does.
package minic

import "fmt"

// TokenKind enumerates lexical token classes.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokIntLit
	TokFloatLit
	TokStringLit
	TokPragma // whole `#pragma ...` line, raw text in Token.Text
	TokPunct  // operators and punctuation; Token.Text holds the spelling
	TokKeyword
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokIntLit:
		return "integer literal"
	case TokFloatLit:
		return "float literal"
	case TokStringLit:
		return "string literal"
	case TokPragma:
		return "pragma"
	case TokPunct:
		return "punctuation"
	case TokKeyword:
		return "keyword"
	}
	return "unknown"
}

// Pos is a source position.
type Pos struct {
	Line int // 1-based
	Col  int // 1-based
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position was set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "EOF"
	}
	return fmt.Sprintf("%s %q", t.Kind, t.Text)
}

var keywords = map[string]bool{
	"int": true, "float": true, "double": true, "long": true, "void": true,
	"char": true, "struct": true, "for": true, "while": true, "if": true,
	"else": true, "return": true, "break": true, "continue": true,
	"sizeof": true, "_Cilk_shared": true, "static": true, "const": true,
}

// IsKeyword reports whether s is a reserved word.
func IsKeyword(s string) bool { return keywords[s] }

// Error is a front-end diagnostic with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
	}
	return e.Msg
}

func errf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
