package minic

import (
	"testing"
)

const cloneSrc = `
struct pt {
    float x;
    float y;
};
struct pt pts[16];
float a[64];
float b[64];
int tag;
int n = 64;

float helper(float v, float *arr) {
    if (v > 0.0) {
        return sqrt(v) + arr[0];
    }
    return -v;
}

int main(void) {
    int i;
    #pragma offload_transfer target(mic:0) in(a[0 : 32] : into(b) alloc_if(1) free_if(0)) signal(&tag)
    #pragma offload target(mic:0) in(a : length(n)) out(b : length(n)) wait(&tag) persist(1)
    #pragma omp parallel for reduction(+:n)
    for (i = 0; i < n; i++) {
        b[i] = helper(a[i], a) * 2.0 + pts[i % 16].x;
        while (b[i] > 100.0) {
            b[i] = b[i] / 2.0;
        }
        if (b[i] < 0.0) {
            b[i] = 0.0;
        } else if (b[i] > 50.0) {
            continue;
        } else {
            break;
        }
    }
    return 0;
}
`

func TestCloneFilePrintsIdentically(t *testing.T) {
	f := MustParse(cloneSrc)
	clone := CloneFile(f)
	if got, want := Print(clone), Print(f); got != want {
		t.Fatalf("clone prints differently:\n--- original ---\n%s\n--- clone ---\n%s", want, got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := MustParse(cloneSrc)
	before := Print(f)
	clone := CloneFile(f)
	// Mutate the clone aggressively: rename every identifier.
	for _, fd := range clone.Funcs() {
		if fd.Body == nil {
			continue
		}
		Substitute(fd.Body, func(e Expr) Expr {
			if id, ok := e.(*Ident); ok {
				return NewIdent(id.Pos(), id.Name+"_x")
			}
			return nil
		})
	}
	if Print(f) != before {
		t.Fatal("mutating the clone changed the original")
	}
	if Print(clone) == before {
		t.Fatal("mutation had no effect on the clone")
	}
}

func TestClonePragmaIndependent(t *testing.T) {
	f := MustParse(cloneSrc)
	var loop *ForStmt
	Inspect(f, func(n Node) bool {
		if fs, ok := n.(*ForStmt); ok {
			loop = fs
		}
		return true
	})
	orig := loop.Pragmas[0]
	c := ClonePragma(orig)
	if c.String() != orig.String() {
		t.Fatalf("pragma clone differs: %s vs %s", c.String(), orig.String())
	}
	c.In[0].Name = "other"
	c.Persist = !c.Persist
	if orig.In[0].Name == "other" {
		t.Fatal("pragma clone shares item storage")
	}
}

func TestSubstituteDoesNotRevisitReplacement(t *testing.T) {
	// Replacing a[i] with perm[i] must not then rewrite perm's index if the
	// replacement also matches the predicate (children of replacements are
	// skipped by contract).
	f := MustParse(`
float a[8];
float perm[8];
void f(int i) {
    a[i] = a[i] + 1.0;
}
`)
	body := f.Func("f").Body
	count := 0
	Substitute(body, func(e Expr) Expr {
		if ie, ok := e.(*IndexExpr); ok {
			if id, ok := ie.X.(*Ident); ok && id.Name == "a" {
				count++
				return &IndexExpr{X: NewIdent(Pos{}, "a"), Index: ie.Index}
			}
		}
		return nil
	})
	// LHS + one RHS occurrence; the replacements themselves (also a[...])
	// must not recurse infinitely or double-count.
	if count != 2 {
		t.Fatalf("substitution visited %d sites, want 2", count)
	}
}

func TestSubstituteCoversAllStatementKinds(t *testing.T) {
	f := MustParse(cloneSrc)
	renamed := 0
	for _, fd := range f.Funcs() {
		Substitute(fd.Body, func(e Expr) Expr {
			if id, ok := e.(*Ident); ok && id.Name == "b" {
				renamed++
				return NewIdent(id.Pos(), "bb")
			}
			return nil
		})
	}
	if renamed == 0 {
		t.Fatal("no identifiers substituted")
	}
	out := Print(f)
	// Every expression occurrence of plain `b` must be gone.
	reparsed := MustParse(out)
	Inspect(reparsed, func(n Node) bool {
		if id, ok := n.(*Ident); ok && id.Name == "b" {
			t.Fatalf("residual identifier b in:\n%s", out)
		}
		return true
	})
}

func TestCloneStmtNilSafety(t *testing.T) {
	if CloneStmt(nil) != nil {
		t.Fatal("CloneStmt(nil) != nil")
	}
	if CloneExpr(nil) != nil {
		t.Fatal("CloneExpr(nil) != nil")
	}
	if CloneBlock(nil) != nil {
		t.Fatal("CloneBlock(nil) != nil")
	}
}

func TestFuncTypeStringAndEqual(t *testing.T) {
	f1 := &FuncType{Params: []Type{FloatType, IntType}, Ret: DoubleType}
	f2 := &FuncType{Params: []Type{FloatType, IntType}, Ret: DoubleType}
	f3 := &FuncType{Params: []Type{FloatType}, Ret: DoubleType}
	if !f1.Equal(f2) || f1.Equal(f3) || f1.Equal(IntType) {
		t.Fatal("FuncType equality broken")
	}
	if f1.String() != "double (*)(float, int)" {
		t.Fatalf("FuncType string = %q", f1.String())
	}
	if f1.Size() != 8 {
		t.Fatalf("FuncType size = %d", f1.Size())
	}
}

func TestArrayUnsizedString(t *testing.T) {
	a := &Array{Elem: FloatType}
	if a.Size() != 8 {
		t.Fatalf("unsized array Size = %d, want pointer size", a.Size())
	}
	if a.String() != "float []" {
		t.Fatalf("unsized array String = %q", a.String())
	}
}
