package minic

import (
	"strings"
	"testing"
)

func mustPragma(t *testing.T, raw string) *Pragma {
	t.Helper()
	p, err := ParsePragma(raw, Pos{Line: 1, Col: 1})
	if err != nil {
		t.Fatalf("%s: %v", raw, err)
	}
	return p
}

func TestPragmaSections(t *testing.T) {
	p := mustPragma(t, "#pragma offload_transfer target(mic:0) in(sptprice[off + bs : bs] : into(sptprice2) alloc_if(0) free_if(0)) signal(&sig1)")
	if len(p.In) != 1 {
		t.Fatalf("in items = %d, want 1", len(p.In))
	}
	it := p.In[0]
	if it.Name != "sptprice" || it.Into != "sptprice2" || it.Dest() != "sptprice2" {
		t.Fatalf("item = %+v", it)
	}
	if ExprString(it.Start) != "off + bs" || ExprString(it.Length) != "bs" {
		t.Fatalf("section = [%s : %s]", ExprString(it.Start), ExprString(it.Length))
	}
	if ExprString(it.AllocIf) != "0" || ExprString(it.FreeIf) != "0" {
		t.Fatalf("alloc_if/free_if = %v/%v", it.AllocIf, it.FreeIf)
	}
	if p.Signal != "sig1" {
		t.Fatalf("signal = %q", p.Signal)
	}
}

func TestPragmaNoCopy(t *testing.T) {
	p := mustPragma(t, "#pragma offload_transfer target(mic:0) nocopy(buf : length(2 * bs) alloc_if(1) free_if(0))")
	if len(p.NoCopy) != 1 {
		t.Fatalf("nocopy items = %d", len(p.NoCopy))
	}
	it := p.NoCopy[0]
	if it.Name != "buf" || ExprString(it.Length) != "2 * bs" {
		t.Fatalf("item = %+v", it)
	}
}

func TestPragmaDestDefaultsToName(t *testing.T) {
	p := mustPragma(t, "#pragma offload target(mic:0) in(a : length(n))")
	if p.In[0].Dest() != "a" {
		t.Fatalf("Dest = %q, want a", p.In[0].Dest())
	}
}

func TestPragmaReduction(t *testing.T) {
	p := mustPragma(t, "#pragma omp parallel for reduction(+:sum, count)")
	if len(p.Reductions) != 2 || p.Reductions[0] != "sum" || p.Reductions[1] != "count" {
		t.Fatalf("reductions = %v", p.Reductions)
	}
}

func TestPragmaListFormSharedModifier(t *testing.T) {
	p := mustPragma(t, "#pragma offload target(mic:0) in(a, b, c : length(n) alloc_if(0))")
	if len(p.In) != 3 {
		t.Fatalf("in items = %d, want 3", len(p.In))
	}
	for _, it := range p.In {
		if it.Length == nil || ExprString(it.Length) != "n" {
			t.Fatalf("item %s missing shared length", it.Name)
		}
		if it.AllocIf == nil {
			t.Fatalf("item %s missing shared alloc_if", it.Name)
		}
	}
}

func TestPragmaMixedModifierRuns(t *testing.T) {
	p := mustPragma(t, "#pragma offload target(mic:0) in(a : length(n), b, c : length(m))")
	if ExprString(p.In[0].Length) != "n" {
		t.Fatalf("a length = %s", ExprString(p.In[0].Length))
	}
	if ExprString(p.In[1].Length) != "m" || ExprString(p.In[2].Length) != "m" {
		t.Fatalf("b/c lengths = %v/%v", p.In[1].Length, p.In[2].Length)
	}
}

func TestPragmaRoundTripRich(t *testing.T) {
	raws := []string{
		"#pragma offload_transfer target(mic:0) in(x[0 : bs] : into(x1) alloc_if(0) free_if(0)) signal(&s0)",
		"#pragma offload target(mic:0) nocopy(x1 : length(bs) alloc_if(1) free_if(0)) wait(&s0)",
		"#pragma omp parallel for reduction(+:sum)",
		"#pragma offload_wait target(mic:0) wait(&s1)",
	}
	for _, raw := range raws {
		p1 := mustPragma(t, raw)
		s1 := p1.String()
		p2 := mustPragma(t, s1)
		s2 := p2.String()
		if s1 != s2 {
			t.Errorf("round trip changed pragma:\n in: %s\nout: %s", s1, s2)
		}
	}
}

func TestPragmaKindStrings(t *testing.T) {
	for k := PragmaOmpParallelFor; k <= PragmaOffloadWait; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no string", k)
		}
	}
}

func TestPragmaUnknownModifier(t *testing.T) {
	if _, err := ParsePragma("#pragma offload in(x : weird(1))", Pos{}); err == nil {
		t.Fatal("unknown modifier accepted")
	}
	if _, err := ParsePragma("#pragma omp parallel for schedule(static)", Pos{}); err == nil {
		t.Fatal("unsupported omp clause accepted")
	}
}

func TestPragmaAllItemsOrder(t *testing.T) {
	p := mustPragma(t, "#pragma offload target(mic:0) in(a : length(1)) inout(b : length(1)) out(c : length(1)) nocopy(d : length(1))")
	items := p.AllItems()
	got := make([]string, len(items))
	for i, it := range items {
		got[i] = it.Name
	}
	want := "a b c d"
	if strings.Join(got, " ") != want {
		t.Fatalf("AllItems order = %v, want %s", got, want)
	}
}
