package minic

import (
	"strconv"
)

// Parser is a recursive-descent parser for MiniC.
type Parser struct {
	toks    []Token
	i       int
	structs map[string]*StructType
}

// Parse lexes and parses a translation unit.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, structs: map[string]*StructType{}}
	return p.parseFile()
}

// MustParse is Parse that panics on error; for tests and embedded sources.
func MustParse(src string) *File {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

func (p *Parser) peek() Token { return p.toks[p.i] }
func (p *Parser) peekN(n int) Token {
	if p.i+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.i+n]
}
func (p *Parser) next() Token { t := p.toks[p.i]; p.i++; return t }

func (p *Parser) at(text string) bool {
	t := p.peek()
	return (t.Kind == TokPunct || t.Kind == TokKeyword) && t.Text == text
}

func (p *Parser) accept(text string) bool {
	if p.at(text) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(text string) (Token, error) {
	if p.at(text) {
		return p.next(), nil
	}
	return Token{}, errf(p.peek().Pos, "expected %q, got %s", text, p.peek())
}

func (p *Parser) expectIdent() (Token, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return Token{}, errf(t.Pos, "expected identifier, got %s", t)
	}
	return p.next(), nil
}

// ---- Declarations ----

func (p *Parser) parseFile() (*File, error) {
	f := &File{}
	for p.peek().Kind != TokEOF {
		d, err := p.parseTopDecl()
		if err != nil {
			return nil, err
		}
		if d != nil {
			f.Decls = append(f.Decls, d)
		}
	}
	return f, nil
}

func (p *Parser) parseTopDecl() (Decl, error) {
	// struct definition?
	if p.at("struct") && p.peekN(2).Text == "{" {
		return p.parseStructDecl()
	}
	shared := p.accept("_Cilk_shared")
	for p.accept("static") || p.accept("const") {
	}
	if !shared {
		shared = p.accept("_Cilk_shared")
	}
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.at("(") {
		return p.parseFuncRest(typ, name, shared)
	}
	vd, err := p.parseVarRest(typ, name, shared)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return vd, nil
}

func (p *Parser) parseStructDecl() (Decl, error) {
	pos := p.peek().Pos
	p.next() // struct
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	st := &StructType{Name: name.Text}
	p.structs[name.Text] = st
	for !p.at("}") {
		ft, err := p.parseType()
		if err != nil {
			return nil, err
		}
		for {
			fn, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			fieldType := ft
			if p.accept("[") {
				ln, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect("]"); err != nil {
					return nil, err
				}
				fieldType = &Array{Elem: ft, Len: ln}
			}
			st.Fields = append(st.Fields, StructField{Name: fn.Text, Type: fieldType})
			if !p.accept(",") {
				break
			}
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	p.next() // }
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return &StructDecl{declBase: declBase{pos: pos}, Type: st}, nil
}

// parseType parses a base type plus pointer stars: `double *`, `struct vec *`.
func (p *Parser) parseType() (Type, error) {
	t := p.peek()
	var base Type
	switch {
	case t.Kind == TokKeyword && t.Text == "int":
		p.next()
		base = IntType
	case t.Kind == TokKeyword && t.Text == "long":
		p.next()
		base = LongType
	case t.Kind == TokKeyword && t.Text == "float":
		p.next()
		base = FloatType
	case t.Kind == TokKeyword && t.Text == "double":
		p.next()
		base = DoubleType
	case t.Kind == TokKeyword && t.Text == "char":
		p.next()
		base = CharType
	case t.Kind == TokKeyword && t.Text == "void":
		p.next()
		base = VoidType
	case t.Kind == TokKeyword && t.Text == "struct":
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st, ok := p.structs[name.Text]
		if !ok {
			return nil, errf(name.Pos, "undefined struct %q", name.Text)
		}
		base = st
	default:
		return nil, errf(t.Pos, "expected type, got %s", t)
	}
	for p.accept("*") {
		base = &Pointer{Elem: base}
	}
	return base, nil
}

func (p *Parser) parseFuncRest(ret Type, name Token, shared bool) (Decl, error) {
	fd := &FuncDecl{declBase: declBase{pos: name.Pos}, Name: name.Text, Ret: ret, Shared: shared}
	p.next() // (
	if !p.at(")") {
		for {
			if p.accept("void") && p.at(")") {
				break
			}
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			pn, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if p.accept("[") {
				if !p.at("]") {
					if _, err := p.parseExpr(); err != nil {
						return nil, err
					}
				}
				if _, err := p.expect("]"); err != nil {
					return nil, err
				}
				pt = &Pointer{Elem: pt}
			}
			fd.Params = append(fd.Params, Param{Pos: pn.Pos, Name: pn.Text, Type: pt})
			if !p.accept(",") {
				break
			}
		}
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	if p.accept(";") {
		return fd, nil // prototype
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *Parser) parseVarRest(typ Type, name Token, shared bool) (*VarDecl, error) {
	vd := &VarDecl{declBase: declBase{pos: name.Pos}, Name: name.Text, Type: typ, Shared: shared}
	for p.accept("[") {
		var ln Expr
		if !p.at("]") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ln = e
		}
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		vd.Type = &Array{Elem: vd.Type, Len: ln}
	}
	if p.accept("=") {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		vd.Init = init
	}
	return vd, nil
}

// ---- Statements ----

func (p *Parser) parseBlock() (*Block, error) {
	lb, err := p.expect("{")
	if err != nil {
		return nil, err
	}
	b := &Block{stmtBase: stmtBase{pos: lb.Pos}}
	for !p.at("}") {
		if p.peek().Kind == TokEOF {
			return nil, errf(lb.Pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.peek()
	switch {
	case t.Kind == TokPragma:
		return p.parsePragmaStmt()
	case t.Kind == TokKeyword:
		switch t.Text {
		case "for":
			return p.parseFor(nil)
		case "while":
			return p.parseWhile()
		case "if":
			return p.parseIf()
		case "return":
			p.next()
			rs := &ReturnStmt{stmtBase: stmtBase{pos: t.Pos}}
			if !p.at(";") {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				rs.X = e
			}
			_, err := p.expect(";")
			return rs, err
		case "break":
			p.next()
			_, err := p.expect(";")
			return &BreakStmt{stmtBase{pos: t.Pos}}, err
		case "continue":
			p.next()
			_, err := p.expect(";")
			return &ContinueStmt{stmtBase{pos: t.Pos}}, err
		case "int", "long", "float", "double", "char", "struct", "const", "static", "_Cilk_shared":
			return p.parseDeclStmt()
		}
	case t.Kind == TokPunct && t.Text == "{":
		return p.parseBlock()
	}
	return p.parseSimpleStmt(true)
}

// parsePragmaStmt handles a pragma in statement position: omp/offload
// pragmas stack up and must precede a for loop; transfer/wait pragmas are
// standalone statements.
func (p *Parser) parsePragmaStmt() (Stmt, error) {
	var pragmas []*Pragma
	for p.peek().Kind == TokPragma {
		t := p.next()
		pr, err := ParsePragma(t.Text, t.Pos)
		if err != nil {
			return nil, err
		}
		if pr.Kind == PragmaOffloadTransfer || pr.Kind == PragmaOffloadWait {
			if len(pragmas) > 0 {
				return nil, errf(t.Pos, "offload_transfer/offload_wait cannot follow loop pragmas")
			}
			return &PragmaStmt{stmtBase: stmtBase{pos: t.Pos}, P: pr}, nil
		}
		pragmas = append(pragmas, pr)
	}
	if !p.at("for") {
		return nil, errf(p.peek().Pos, "expected for loop after %s pragma", pragmas[len(pragmas)-1].Kind)
	}
	return p.parseFor(pragmas)
}

func (p *Parser) parseFor(pragmas []*Pragma) (Stmt, error) {
	t, err := p.expect("for")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	fs := &ForStmt{stmtBase: stmtBase{pos: t.Pos}, Pragmas: pragmas}
	if !p.at(";") {
		if kw := p.peek(); kw.Kind == TokKeyword && isTypeKeyword(kw.Text) {
			ds, err := p.parseDeclNoSemi()
			if err != nil {
				return nil, err
			}
			fs.Init = ds
		} else {
			s, err := p.parseSimpleStmt(false)
			if err != nil {
				return nil, err
			}
			fs.Init = s
		}
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.at(";") {
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Cond = c
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.at(")") {
		s, err := p.parseSimpleStmt(false)
		if err != nil {
			return nil, err
		}
		fs.Post = s
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseLoopBody()
	if err != nil {
		return nil, err
	}
	fs.Body = body
	return fs, nil
}

// parseLoopBody accepts either a block or a single statement (wrapped).
func (p *Parser) parseLoopBody() (*Block, error) {
	if p.at("{") {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &Block{stmtBase: stmtBase{pos: s.Pos()}, Stmts: []Stmt{s}}, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	t := p.next()
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseLoopBody()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{stmtBase: stmtBase{pos: t.Pos}, Cond: cond, Body: body}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	t := p.next()
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.parseLoopBody()
	if err != nil {
		return nil, err
	}
	is := &IfStmt{stmtBase: stmtBase{pos: t.Pos}, Cond: cond, Then: then}
	if p.accept("else") {
		if p.at("if") {
			e, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			is.Else = e
		} else {
			e, err := p.parseLoopBody()
			if err != nil {
				return nil, err
			}
			is.Else = e
		}
	}
	return is, nil
}

func isTypeKeyword(s string) bool {
	switch s {
	case "int", "long", "float", "double", "char", "struct", "const", "static", "_Cilk_shared":
		return true
	}
	return false
}

func (p *Parser) parseDeclStmt() (Stmt, error) {
	ds, err := p.parseDeclNoSemi()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return ds, nil
}

func (p *Parser) parseDeclNoSemi() (Stmt, error) {
	shared := p.accept("_Cilk_shared")
	for p.accept("static") || p.accept("const") {
	}
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	vd, err := p.parseVarRest(typ, name, shared)
	if err != nil {
		return nil, err
	}
	return &DeclStmt{stmtBase: stmtBase{pos: name.Pos}, Decl: vd}, nil
}

// parseSimpleStmt parses an assignment, inc/dec, or expression statement.
// When consumeSemi is true the trailing ';' is required and consumed.
func (p *Parser) parseSimpleStmt(consumeSemi bool) (Stmt, error) {
	pos := p.peek().Pos
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	var st Stmt
	t := p.peek()
	switch {
	case t.Kind == TokPunct && (t.Text == "=" || t.Text == "+=" || t.Text == "-=" || t.Text == "*=" || t.Text == "/=" || t.Text == "%="):
		p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st = &AssignStmt{stmtBase: stmtBase{pos: pos}, Op: t.Text, LHS: lhs, RHS: rhs}
	case t.Kind == TokPunct && (t.Text == "++" || t.Text == "--"):
		p.next()
		st = &IncDecStmt{stmtBase: stmtBase{pos: pos}, Op: t.Text, X: lhs}
	default:
		st = &ExprStmt{stmtBase: stmtBase{pos: pos}, X: lhs}
	}
	if consumeSemi {
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// ---- Expressions ----

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3,
	"<": 4, "<=": 4, ">": 4, ">=": 4,
	"<<": 5, ">>": 5,
	"+": 6, "-": 6,
	"*": 7, "/": 7, "%": 7,
}

func (p *Parser) parseExpr() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.at("?") {
		return cond, nil
	}
	q := p.next() // '?'
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(":"); err != nil {
		return nil, err
	}
	els, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &CondExpr{exprBase: exprBase{pos: q.Pos}, Cond: cond, Then: then, Else: els}, nil
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{exprBase: exprBase{pos: t.Pos}, Op: t.Text, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.Kind == TokPunct && (t.Text == "-" || t.Text == "!" || t.Text == "*" || t.Text == "&" || t.Text == "+") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if t.Text == "+" {
			return x, nil
		}
		return &UnaryExpr{exprBase: exprBase{pos: t.Pos}, Op: t.Text, X: x}, nil
	}
	if t.Kind == TokKeyword && t.Text == "sizeof" {
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		se := &SizeofExpr{exprBase: exprBase{pos: t.Pos}, Of: typ}
		se.SetType(LongType)
		return se, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokPunct {
			return x, nil
		}
		switch t.Text {
		case "(":
			id, ok := x.(*Ident)
			if !ok {
				return nil, errf(t.Pos, "call target must be a function name")
			}
			p.next()
			call := &CallExpr{exprBase: exprBase{pos: t.Pos}, Fun: id}
			if !p.at(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(",") {
						break
					}
				}
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			x = call
		case "[":
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{exprBase: exprBase{pos: t.Pos}, X: x, Index: idx}
		case ".", "->":
			p.next()
			fn, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			x = &MemberExpr{exprBase: exprBase{pos: t.Pos}, X: x, Field: fn.Text, Arrow: t.Text == "->"}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokIdent:
		p.next()
		return NewIdent(t.Pos, t.Text), nil
	case TokIntLit:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad integer %q", t.Text)
		}
		e := &IntLit{exprBase: exprBase{pos: t.Pos}, Value: v}
		e.SetType(IntType)
		return e, nil
	case TokFloatLit:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad float %q", t.Text)
		}
		e := &FloatLit{exprBase: exprBase{pos: t.Pos}, Value: v, Text: t.Text}
		e.SetType(DoubleType)
		return e, nil
	case TokStringLit:
		p.next()
		e := &StringLit{exprBase: exprBase{pos: t.Pos}, Value: t.Text}
		e.SetType(&Pointer{Elem: CharType})
		return e, nil
	case TokPunct:
		if t.Text == "(" {
			p.next()
			// Cast: ( type ... ) — accepted and recorded as a no-op paren.
			if kw := p.peek(); kw.Kind == TokKeyword && isTypeKeyword(kw.Text) && kw.Text != "const" && kw.Text != "static" {
				if _, err := p.parseType(); err != nil {
					return nil, err
				}
				if _, err := p.expect(")"); err != nil {
					return nil, err
				}
				return p.parseUnary() // value of the cast operand
			}
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return &ParenExpr{exprBase: exprBase{pos: t.Pos}, X: x}, nil
		}
	}
	return nil, errf(t.Pos, "expected expression, got %s", t)
}
