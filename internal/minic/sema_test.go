package minic

import (
	"strings"
	"testing"
)

func checkOK(t *testing.T, src string) *CheckResult {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res := Check(f)
	if err := res.Err(); err != nil {
		t.Fatalf("check: %v", err)
	}
	return res
}

func checkErr(t *testing.T, src, wantSub string) {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res := Check(f)
	err = res.Err()
	if err == nil {
		t.Fatalf("no check error, want %q", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err, wantSub)
	}
}

func TestCheckBlackscholes(t *testing.T) {
	res := checkOK(t, blackscholesSrc)
	if res.Globals["numOptions"] == nil || res.Globals["prices"] == nil {
		t.Fatal("globals not registered")
	}
}

func TestCheckUndefinedVariable(t *testing.T) {
	checkErr(t, "int f(void) { return missing; }", "undefined: missing")
}

func TestCheckUndefinedFunction(t *testing.T) {
	checkErr(t, "int f(void) { return g(); }", "undefined function")
}

func TestCheckRedeclaration(t *testing.T) {
	checkErr(t, "int f(void) { int x; int x; return x; }", "redeclaration")
}

func TestCheckShadowingAllowed(t *testing.T) {
	checkOK(t, `
int x;
int f(void) {
    int x = 1;
    if (x > 0) {
        int x = 2;
        return x;
    }
    return x;
}
`)
}

func TestCheckArgCount(t *testing.T) {
	checkErr(t, `
int g(int a, int b) { return a + b; }
int f(void) { return g(1); }
`, "expects 2 arguments")
}

func TestCheckBuiltinArgCount(t *testing.T) {
	checkErr(t, "double f(void) { return sqrt(1.0, 2.0); }", "sqrt expects 1 arguments")
}

func TestCheckIndexNonArray(t *testing.T) {
	checkErr(t, "int f(int x) { return x[0]; }", "cannot index")
}

func TestCheckDerefNonPointer(t *testing.T) {
	checkErr(t, "int f(int x) { return *x; }", "cannot dereference")
}

func TestCheckMemberOnNonStruct(t *testing.T) {
	checkErr(t, "int f(int x) { return x.val; }", "requires a struct")
}

func TestCheckUnknownField(t *testing.T) {
	checkErr(t, `
struct p { int x; };
int f(struct p *q) { return q->y; }
`, "no field")
}

func TestCheckArrowOnValue(t *testing.T) {
	checkErr(t, `
struct p { int x; };
int f(struct p q) { return q->x; }
`, "-> requires a pointer")
}

func TestCheckAssignToRvalue(t *testing.T) {
	checkErr(t, "void f(int x) { x + 1 = 2; }", "cannot assign")
}

func TestCheckPragmaUndefinedVar(t *testing.T) {
	checkErr(t, `
int n;
void f(void) {
    int i;
    #pragma offload target(mic:0) in(ghost : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        n = n;
    }
}
`, "undefined variable \"ghost\"")
}

func TestCheckTypesOnExpressions(t *testing.T) {
	src := `
float a[10];
int f(int i) {
    return i;
}
void g(void) {
    float x = a[2] * 2.0;
    int y = f(3) % 2;
    x = x;
    y = y;
}
`
	res := checkOK(t, src)
	f := res.File
	var idx *IndexExpr
	Inspect(f, func(n Node) bool {
		if ie, ok := n.(*IndexExpr); ok {
			idx = ie
		}
		return true
	})
	if idx == nil || !idx.Type().Equal(FloatType) {
		t.Fatalf("a[2] type = %v, want float", idx.Type())
	}
}

func TestCheckPointerFromMalloc(t *testing.T) {
	checkOK(t, `
void f(void) {
    float *p = (float *) malloc(400);
    double *q = malloc(800);
    p[0] = 1.0;
    q[1] = 2.0;
    free(p);
    free(q);
}
`)
}

func TestCheckModulusNeedsIntegers(t *testing.T) {
	checkErr(t, "int f(float x) { return x % 2; }", "integer operands")
}

func TestCheckMissingReturnValue(t *testing.T) {
	checkErr(t, "int f(void) { return; }", "missing return value")
}

func TestCheckComparisonYieldsInt(t *testing.T) {
	res := checkOK(t, "int f(float a, float b) { return a < b; }")
	var cmp *BinaryExpr
	Inspect(res.File, func(n Node) bool {
		if be, ok := n.(*BinaryExpr); ok && be.Op == "<" {
			cmp = be
		}
		return true
	})
	if cmp == nil || !cmp.Type().Equal(IntType) {
		t.Fatal("comparison type is not int")
	}
}

func TestCheckPromotion(t *testing.T) {
	res := checkOK(t, "double f(int i, double d) { return i + d; }")
	var add *BinaryExpr
	Inspect(res.File, func(n Node) bool {
		if be, ok := n.(*BinaryExpr); ok && be.Op == "+" {
			add = be
		}
		return true
	})
	if add == nil || !add.Type().Equal(DoubleType) {
		t.Fatalf("int + double type = %v, want double", add.Type())
	}
}

func TestCheckMultipleErrorsReported(t *testing.T) {
	f, err := Parse("int f(void) { return a + b; }")
	if err != nil {
		t.Fatal(err)
	}
	res := Check(f)
	if len(res.Errors) != 2 {
		t.Fatalf("errors = %d, want 2 (both a and b undefined)", len(res.Errors))
	}
}

func TestCheckSymbolLinkage(t *testing.T) {
	res := checkOK(t, `
int n;
int f(int k) { return k + n; }
`)
	var ids []*Ident
	Inspect(res.File, func(nd Node) bool {
		if id, ok := nd.(*Ident); ok {
			ids = append(ids, id)
		}
		return true
	})
	for _, id := range ids {
		if id.Sym == nil {
			t.Errorf("ident %q has no symbol", id.Name)
			continue
		}
		switch id.Name {
		case "n":
			if !id.Sym.Global || id.Sym.Kind != SymVar {
				t.Errorf("n symbol = %+v", id.Sym)
			}
		case "k":
			if id.Sym.Global || id.Sym.Kind != SymParam {
				t.Errorf("k symbol = %+v", id.Sym)
			}
		}
	}
}

func TestPromoteErrors(t *testing.T) {
	if _, err := Promote(IntType, VoidType); err == nil {
		t.Error("promote with void succeeded")
	}
	if _, err := Promote(&Pointer{Elem: IntType}, IntType); err == nil {
		t.Error("promote with pointer succeeded")
	}
}

func TestTypeSizes(t *testing.T) {
	cases := []struct {
		t    Type
		want int64
	}{
		{IntType, 4}, {FloatType, 4}, {DoubleType, 8}, {LongType, 8},
		{CharType, 1}, {VoidType, 0},
		{&Pointer{Elem: DoubleType}, 8},
		{&Array{Elem: FloatType, Len: &IntLit{Value: 10}}, 40},
	}
	for _, c := range cases {
		if got := c.t.Size(); got != c.want {
			t.Errorf("%s size = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestTypeEquality(t *testing.T) {
	if !(&Pointer{Elem: FloatType}).Equal(&Pointer{Elem: FloatType}) {
		t.Error("identical pointers unequal")
	}
	if (&Pointer{Elem: FloatType}).Equal(&Pointer{Elem: DoubleType}) {
		t.Error("different pointers equal")
	}
	a := &Array{Elem: IntType, Len: &IntLit{Value: 5}}
	b := &Array{Elem: IntType, Len: &IntLit{Value: 9}}
	if !a.Equal(b) {
		t.Error("arrays with same elem should be equal regardless of length")
	}
	s1 := &StructType{Name: "p"}
	s2 := &StructType{Name: "q"}
	if s1.Equal(s2) {
		t.Error("different structs equal")
	}
}
