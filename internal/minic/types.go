package minic

import "fmt"

// Type is the interface implemented by all MiniC types.
type Type interface {
	// Size returns the storage size in bytes (C layout: int/float 4,
	// long/double/pointer 8).
	Size() int64
	// String renders the type in C syntax.
	String() string
	// Equal reports structural type equality.
	Equal(Type) bool
}

// BasicKind enumerates the scalar types.
type BasicKind int

// Scalar type kinds.
const (
	Int BasicKind = iota
	Long
	Float
	Double
	Void
	Char
)

// Basic is a scalar type.
type Basic struct{ Kind BasicKind }

// Predefined scalar types.
var (
	IntType    = &Basic{Int}
	LongType   = &Basic{Long}
	FloatType  = &Basic{Float}
	DoubleType = &Basic{Double}
	VoidType   = &Basic{Void}
	CharType   = &Basic{Char}
)

// Size implements Type.
func (b *Basic) Size() int64 {
	switch b.Kind {
	case Int, Float:
		return 4
	case Long, Double:
		return 8
	case Char:
		return 1
	}
	return 0
}

func (b *Basic) String() string {
	switch b.Kind {
	case Int:
		return "int"
	case Long:
		return "long"
	case Float:
		return "float"
	case Double:
		return "double"
	case Char:
		return "char"
	}
	return "void"
}

// Equal implements Type.
func (b *Basic) Equal(o Type) bool {
	ob, ok := o.(*Basic)
	return ok && ob.Kind == b.Kind
}

// IsNumeric reports whether the type supports arithmetic.
func (b *Basic) IsNumeric() bool { return b.Kind != Void }

// IsInteger reports whether the type is an integer type.
func (b *Basic) IsInteger() bool { return b.Kind == Int || b.Kind == Long || b.Kind == Char }

// Pointer is a pointer type.
type Pointer struct{ Elem Type }

// Size implements Type.
func (p *Pointer) Size() int64    { return 8 }
func (p *Pointer) String() string { return p.Elem.String() + " *" }

// Equal implements Type.
func (p *Pointer) Equal(o Type) bool {
	op, ok := o.(*Pointer)
	return ok && p.Elem.Equal(op.Elem)
}

// Array is a fixed- or runtime-length array type. Len is nil for
// pointer-style declarations whose extent comes from pragma length clauses.
type Array struct {
	Elem Type
	Len  Expr // may be nil (unsized)
}

// Size implements Type; unsized arrays report the pointer size.
func (a *Array) Size() int64 {
	if lit, ok := a.Len.(*IntLit); ok {
		return a.Elem.Size() * lit.Value
	}
	return 8
}

func (a *Array) String() string { return a.Elem.String() + " []" }

// Equal implements Type. Array lengths are not compared: the front end
// treats T[n] and T[m] as the same type and leaves extent checking to the
// analyses that know the runtime lengths.
func (a *Array) Equal(o Type) bool {
	oa, ok := o.(*Array)
	return ok && a.Elem.Equal(oa.Elem)
}

// StructType is a record type.
type StructType struct {
	Name   string
	Fields []StructField
}

// StructField is one member of a struct.
type StructField struct {
	Name string
	Type Type
}

// Size implements Type with no padding (all our fields are 4/8-byte
// scalars; alignment padding would only add noise to the transfer model).
func (s *StructType) Size() int64 {
	var n int64
	for _, f := range s.Fields {
		n += f.Type.Size()
	}
	return n
}

func (s *StructType) String() string { return "struct " + s.Name }

// Equal implements Type (nominal equality).
func (s *StructType) Equal(o Type) bool {
	os, ok := o.(*StructType)
	return ok && os.Name == s.Name
}

// Field returns the named field, or nil.
func (s *StructType) Field(name string) *StructField {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i]
		}
	}
	return nil
}

// Offset returns the byte offset of the named field, or -1.
func (s *StructType) Offset(name string) int64 {
	var off int64
	for _, f := range s.Fields {
		if f.Name == name {
			return off
		}
		off += f.Type.Size()
	}
	return -1
}

// ElemOf returns the element type of an array or pointer, or nil.
func ElemOf(t Type) Type {
	switch tt := t.(type) {
	case *Array:
		return tt.Elem
	case *Pointer:
		return tt.Elem
	}
	return nil
}

// IsIndexable reports whether t supports subscripting.
func IsIndexable(t Type) bool { return ElemOf(t) != nil }

// FuncType describes a function signature.
type FuncType struct {
	Params []Type
	Ret    Type
}

// Size implements Type (functions are not first-class values in MiniC).
func (f *FuncType) Size() int64 { return 8 }

func (f *FuncType) String() string {
	s := f.Ret.String() + " (*)("
	for i, p := range f.Params {
		if i > 0 {
			s += ", "
		}
		s += p.String()
	}
	return s + ")"
}

// Equal implements Type.
func (f *FuncType) Equal(o Type) bool {
	of, ok := o.(*FuncType)
	if !ok || len(of.Params) != len(f.Params) || !f.Ret.Equal(of.Ret) {
		return false
	}
	for i := range f.Params {
		if !f.Params[i].Equal(of.Params[i]) {
			return false
		}
	}
	return true
}

// numericRank orders scalar types for usual-arithmetic-conversion.
func numericRank(b *Basic) int {
	switch b.Kind {
	case Char:
		return 0
	case Int:
		return 1
	case Long:
		return 2
	case Float:
		return 3
	case Double:
		return 4
	}
	return -1
}

// Promote returns the common type of two numeric operands.
func Promote(a, b Type) (Type, error) {
	ab, aok := a.(*Basic)
	bb, bok := b.(*Basic)
	if !aok || !bok || !ab.IsNumeric() || !bb.IsNumeric() {
		return nil, fmt.Errorf("cannot promote %s and %s", a, b)
	}
	if numericRank(ab) >= numericRank(bb) {
		return ab, nil
	}
	return bb, nil
}
