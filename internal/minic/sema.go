package minic

import (
	"fmt"
	"strings"
)

// Builtin describes a built-in function known to the checker and the
// interpreter. Transcendental weights feed the performance model: a call
// to exp costs more "flops" than an add.
type Builtin struct {
	Name     string
	Params   int // -1 means variadic
	Ret      Type
	FlopCost float64
}

// Builtins is the table of built-in functions.
var Builtins = map[string]Builtin{
	"sqrt":   {Name: "sqrt", Params: 1, Ret: DoubleType, FlopCost: 15},
	"exp":    {Name: "exp", Params: 1, Ret: DoubleType, FlopCost: 20},
	"log":    {Name: "log", Params: 1, Ret: DoubleType, FlopCost: 20},
	"pow":    {Name: "pow", Params: 2, Ret: DoubleType, FlopCost: 30},
	"fabs":   {Name: "fabs", Params: 1, Ret: DoubleType, FlopCost: 1},
	"floor":  {Name: "floor", Params: 1, Ret: DoubleType, FlopCost: 2},
	"ceil":   {Name: "ceil", Params: 1, Ret: DoubleType, FlopCost: 2},
	"fmin":   {Name: "fmin", Params: 2, Ret: DoubleType, FlopCost: 1},
	"fmax":   {Name: "fmax", Params: 2, Ret: DoubleType, FlopCost: 1},
	"printf": {Name: "printf", Params: -1, Ret: IntType, FlopCost: 0},
	// Allocation intrinsics. malloc-family calls return untyped pointers
	// that may be assigned to any pointer variable.
	"malloc":                {Name: "malloc", Params: 1, Ret: &Pointer{Elem: VoidType}, FlopCost: 0},
	"free":                  {Name: "free", Params: 1, Ret: VoidType, FlopCost: 0},
	"offload_shared_malloc": {Name: "offload_shared_malloc", Params: 1, Ret: &Pointer{Elem: VoidType}, FlopCost: 0},
	"offload_shared_free":   {Name: "offload_shared_free", Params: 1, Ret: VoidType, FlopCost: 0},
}

// CheckResult carries the symbol information produced by Check.
type CheckResult struct {
	File    *File
	Globals map[string]*Symbol
	Errors  []error
}

// Err returns the combined error, or nil when checking succeeded.
func (r *CheckResult) Err() error {
	if len(r.Errors) == 0 {
		return nil
	}
	msgs := make([]string, len(r.Errors))
	for i, e := range r.Errors {
		msgs[i] = e.Error()
	}
	return fmt.Errorf("minic: %d errors:\n%s", len(r.Errors), strings.Join(msgs, "\n"))
}

type checker struct {
	res    *CheckResult
	scopes []map[string]*Symbol
	funcs  map[string]*FuncDecl
	cur    *FuncDecl
}

// Check resolves identifiers and types the whole file. It is tolerant:
// it records every error it finds and keeps going, so a single pass
// reports all problems in a source file.
func Check(f *File) *CheckResult {
	res := &CheckResult{File: f, Globals: map[string]*Symbol{}}
	c := &checker{res: res, funcs: map[string]*FuncDecl{}}
	c.push() // global scope

	// Pass 1: declare globals and functions.
	for _, d := range f.Decls {
		switch x := d.(type) {
		case *FuncDecl:
			c.funcs[x.Name] = x
			sig := &FuncType{Ret: x.Ret}
			for _, p := range x.Params {
				sig.Params = append(sig.Params, p.Type)
			}
			sym := &Symbol{Name: x.Name, Kind: SymFunc, Type: sig, Global: true, Shared: x.Shared, Decl: x}
			c.declare(x.Pos(), sym)
		case *VarDecl:
			sym := &Symbol{Name: x.Name, Kind: SymVar, Type: x.Type, Global: true, Shared: x.Shared, Decl: x}
			x.Sym = sym
			c.declare(x.Pos(), sym)
			res.Globals[x.Name] = sym
		}
	}

	// Pass 2: check bodies.
	for _, d := range f.Decls {
		if fd, ok := d.(*FuncDecl); ok && fd.Body != nil {
			c.checkFunc(fd)
		}
	}
	for _, d := range f.Decls {
		if vd, ok := d.(*VarDecl); ok && vd.Init != nil {
			c.expr(vd.Init)
		}
	}
	return res
}

func (c *checker) errorf(pos Pos, format string, args ...interface{}) {
	c.res.Errors = append(c.res.Errors, errf(pos, format, args...))
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(pos Pos, s *Symbol) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[s.Name]; dup {
		c.errorf(pos, "redeclaration of %q", s.Name)
		return
	}
	top[s.Name] = s
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (c *checker) checkFunc(fd *FuncDecl) {
	c.cur = fd
	c.push()
	for i := range fd.Params {
		p := &fd.Params[i]
		c.declare(p.Pos, &Symbol{Name: p.Name, Kind: SymParam, Type: p.Type})
	}
	c.block(fd.Body)
	c.pop()
	c.cur = nil
}

func (c *checker) block(b *Block) {
	c.push()
	for _, s := range b.Stmts {
		c.stmt(s)
	}
	c.pop()
}

func (c *checker) stmt(s Stmt) {
	switch x := s.(type) {
	case *DeclStmt:
		c.declStmt(x)
	case *ExprStmt:
		c.expr(x.X)
	case *AssignStmt:
		lt := c.expr(x.LHS)
		rt := c.expr(x.RHS)
		if !isLvalue(x.LHS) {
			c.errorf(x.Pos(), "cannot assign to %s", ExprString(x.LHS))
		}
		c.checkAssignable(x.Pos(), lt, rt, x.RHS)
	case *IncDecStmt:
		t := c.expr(x.X)
		if !isLvalue(x.X) {
			c.errorf(x.Pos(), "cannot modify %s", ExprString(x.X))
		}
		if b, ok := t.(*Basic); ok && !b.IsNumeric() {
			c.errorf(x.Pos(), "%s requires a numeric operand", x.Op)
		}
	case *Block:
		c.block(x)
	case *ForStmt:
		c.push()
		if x.Init != nil {
			c.stmt(x.Init)
		}
		if x.Cond != nil {
			c.expr(x.Cond)
		}
		if x.Post != nil {
			c.stmt(x.Post)
		}
		c.block(x.Body)
		c.checkPragmas(x)
		c.pop()
	case *WhileStmt:
		c.expr(x.Cond)
		c.block(x.Body)
	case *IfStmt:
		c.expr(x.Cond)
		c.block(x.Then)
		if x.Else != nil {
			c.stmt(x.Else)
		}
	case *ReturnStmt:
		if x.X != nil {
			c.expr(x.X)
		} else if c.cur != nil && !c.cur.Ret.Equal(VoidType) {
			c.errorf(x.Pos(), "missing return value in %s", c.cur.Name)
		}
	case *PragmaStmt:
		c.pragmaItems(x.P)
	case *BreakStmt, *ContinueStmt:
	}
}

func (c *checker) declStmt(x *DeclStmt) {
	vd := x.Decl
	if arr, ok := vd.Type.(*Array); ok && arr.Len != nil {
		c.expr(arr.Len)
	}
	if vd.Init != nil {
		it := c.expr(vd.Init)
		c.checkAssignable(vd.Pos(), vd.Type, it, vd.Init)
	}
	sym := &Symbol{Name: vd.Name, Kind: SymVar, Type: vd.Type, Shared: vd.Shared, Decl: vd}
	vd.Sym = sym
	c.declare(vd.Pos(), sym)
}

// checkPragmas verifies that pragma clause variables resolve in scope.
func (c *checker) checkPragmas(f *ForStmt) {
	for _, p := range f.Pragmas {
		c.pragmaItems(p)
	}
}

func (c *checker) pragmaItems(p *Pragma) {
	for _, it := range p.AllItems() {
		if c.lookup(it.Name) == nil {
			c.errorf(p.Pos, "pragma references undefined variable %q", it.Name)
		}
		for _, e := range []Expr{it.Start, it.Length, it.AllocIf, it.FreeIf} {
			if e != nil {
				c.expr(e)
			}
		}
		// it.Into names a device-side buffer; it need not exist on the host.
	}
	for _, r := range p.Reductions {
		if c.lookup(r) == nil {
			c.errorf(p.Pos, "reduction references undefined variable %q", r)
		}
	}
}

func (c *checker) checkAssignable(pos Pos, lt, rt Type, rhs Expr) {
	if lt == nil || rt == nil {
		return
	}
	lb, lok := lt.(*Basic)
	rb, rok := rt.(*Basic)
	if lok && rok && lb.IsNumeric() && rb.IsNumeric() {
		return
	}
	if lp, ok := lt.(*Pointer); ok {
		// void* converts to any pointer (malloc), and NULL-style 0 literals.
		if rp, ok := rt.(*Pointer); ok {
			if rp.Elem.Equal(VoidType) || lp.Elem.Equal(VoidType) || lp.Elem.Equal(rp.Elem) {
				return
			}
		}
		if ra, ok := rt.(*Array); ok && (lp.Elem.Equal(ra.Elem) || lp.Elem.Equal(VoidType)) {
			return // array decays to pointer
		}
		if lit, ok := rhs.(*IntLit); ok && lit.Value == 0 {
			return
		}
	}
	if lt.Equal(rt) {
		return
	}
	c.errorf(pos, "cannot assign %s to %s", rt, lt)
}

func isLvalue(e Expr) bool {
	switch x := e.(type) {
	case *Ident:
		return true
	case *IndexExpr, *MemberExpr:
		return true
	case *UnaryExpr:
		return x.Op == "*"
	case *ParenExpr:
		return isLvalue(x.X)
	}
	return false
}

// expr types an expression and returns its type (nil on error).
func (c *checker) expr(e Expr) Type {
	switch x := e.(type) {
	case *Ident:
		sym := c.lookup(x.Name)
		if sym == nil {
			c.errorf(x.Pos(), "undefined: %s", x.Name)
			return nil
		}
		x.Sym = sym
		x.SetType(sym.Type)
		return sym.Type
	case *IntLit:
		return x.Type()
	case *FloatLit:
		return x.Type()
	case *StringLit:
		return x.Type()
	case *SizeofExpr:
		return x.Type()
	case *ParenExpr:
		t := c.expr(x.X)
		x.SetType(t)
		return t
	case *UnaryExpr:
		t := c.expr(x.X)
		if t == nil {
			return nil
		}
		switch x.Op {
		case "-":
			x.SetType(t)
		case "!":
			x.SetType(IntType)
		case "*":
			el := ElemOf(t)
			if el == nil {
				c.errorf(x.Pos(), "cannot dereference %s", t)
				return nil
			}
			x.SetType(el)
		case "&":
			if !isLvalue(x.X) {
				c.errorf(x.Pos(), "cannot take address of %s", ExprString(x.X))
				return nil
			}
			x.SetType(&Pointer{Elem: t})
		}
		return x.Type()
	case *BinaryExpr:
		lt := c.expr(x.X)
		rt := c.expr(x.Y)
		if lt == nil || rt == nil {
			return nil
		}
		switch x.Op {
		case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
			x.SetType(IntType)
		case "%", "<<", ">>":
			x.SetType(IntType)
			for _, t := range []Type{lt, rt} {
				if b, ok := t.(*Basic); !ok || !b.IsInteger() {
					c.errorf(x.Pos(), "operator %s requires integer operands, got %s", x.Op, t)
				}
			}
		default:
			// Pointer arithmetic: ptr + int.
			if IsIndexable(lt) {
				x.SetType(lt)
				return lt
			}
			pt, err := Promote(lt, rt)
			if err != nil {
				c.errorf(x.Pos(), "invalid operands to %s: %s and %s", x.Op, lt, rt)
				return nil
			}
			x.SetType(pt)
		}
		return x.Type()
	case *IndexExpr:
		bt := c.expr(x.X)
		it := c.expr(x.Index)
		if bt == nil {
			return nil
		}
		el := ElemOf(bt)
		if el == nil {
			c.errorf(x.Pos(), "cannot index %s", bt)
			return nil
		}
		if ib, ok := it.(*Basic); it != nil && (!ok || !ib.IsInteger()) {
			c.errorf(x.Pos(), "array index must be integer, got %s", it)
		}
		x.SetType(el)
		return el
	case *MemberExpr:
		bt := c.expr(x.X)
		if bt == nil {
			return nil
		}
		var st *StructType
		if x.Arrow {
			pt, ok := bt.(*Pointer)
			if !ok {
				c.errorf(x.Pos(), "-> requires a pointer, got %s", bt)
				return nil
			}
			st, ok = pt.Elem.(*StructType)
			if !ok {
				c.errorf(x.Pos(), "-> requires pointer to struct, got %s", bt)
				return nil
			}
		} else {
			var ok bool
			st, ok = bt.(*StructType)
			if !ok {
				c.errorf(x.Pos(), ". requires a struct, got %s", bt)
				return nil
			}
		}
		fl := st.Field(x.Field)
		if fl == nil {
			c.errorf(x.Pos(), "struct %s has no field %q", st.Name, x.Field)
			return nil
		}
		x.SetType(fl.Type)
		return fl.Type
	case *CondExpr:
		c.expr(x.Cond)
		tt := c.expr(x.Then)
		et := c.expr(x.Else)
		if tt == nil || et == nil {
			return nil
		}
		pt, err := Promote(tt, et)
		if err != nil {
			c.errorf(x.Pos(), "conditional branches have incompatible types %s and %s", tt, et)
			return nil
		}
		x.SetType(pt)
		return pt
	case *CallExpr:
		return c.call(x)
	}
	return nil
}

func (c *checker) call(x *CallExpr) Type {
	for _, a := range x.Args {
		c.expr(a)
	}
	if b, ok := Builtins[x.Fun.Name]; ok {
		if b.Params >= 0 && len(x.Args) != b.Params {
			c.errorf(x.Pos(), "%s expects %d arguments, got %d", b.Name, b.Params, len(x.Args))
		}
		x.SetType(b.Ret)
		return b.Ret
	}
	fd, ok := c.funcs[x.Fun.Name]
	if !ok {
		c.errorf(x.Pos(), "call to undefined function %q", x.Fun.Name)
		return nil
	}
	if len(x.Args) != len(fd.Params) {
		c.errorf(x.Pos(), "%s expects %d arguments, got %d", fd.Name, len(fd.Params), len(x.Args))
	}
	x.SetType(fd.Ret)
	return fd.Ret
}
