package minic

// Deep-copy utilities for AST rewriting. Transformation passes clone
// subtrees before substituting so the original program stays intact.

// CloneExpr returns a deep copy of e (nil-safe). Type annotations are
// dropped; re-run Check on the transformed file.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Ident:
		return NewIdent(x.Pos(), x.Name)
	case *IntLit:
		return &IntLit{exprBase: exprBase{pos: x.Pos()}, Value: x.Value}
	case *FloatLit:
		return &FloatLit{exprBase: exprBase{pos: x.Pos()}, Value: x.Value, Text: x.Text}
	case *StringLit:
		return &StringLit{exprBase: exprBase{pos: x.Pos()}, Value: x.Value}
	case *BinaryExpr:
		return &BinaryExpr{exprBase: exprBase{pos: x.Pos()}, Op: x.Op, X: CloneExpr(x.X), Y: CloneExpr(x.Y)}
	case *UnaryExpr:
		return &UnaryExpr{exprBase: exprBase{pos: x.Pos()}, Op: x.Op, X: CloneExpr(x.X)}
	case *CallExpr:
		out := &CallExpr{exprBase: exprBase{pos: x.Pos()}, Fun: NewIdent(x.Fun.Pos(), x.Fun.Name)}
		for _, a := range x.Args {
			out.Args = append(out.Args, CloneExpr(a))
		}
		return out
	case *IndexExpr:
		return &IndexExpr{exprBase: exprBase{pos: x.Pos()}, X: CloneExpr(x.X), Index: CloneExpr(x.Index)}
	case *MemberExpr:
		return &MemberExpr{exprBase: exprBase{pos: x.Pos()}, X: CloneExpr(x.X), Field: x.Field, Arrow: x.Arrow}
	case *ParenExpr:
		return &ParenExpr{exprBase: exprBase{pos: x.Pos()}, X: CloneExpr(x.X)}
	case *SizeofExpr:
		return &SizeofExpr{exprBase: exprBase{pos: x.Pos()}, Of: x.Of}
	case *CondExpr:
		return &CondExpr{exprBase: exprBase{pos: x.Pos()}, Cond: CloneExpr(x.Cond), Then: CloneExpr(x.Then), Else: CloneExpr(x.Else)}
	}
	panic("minic: CloneExpr: unknown expression")
}

// CloneStmt returns a deep copy of s (nil-safe).
func CloneStmt(s Stmt) Stmt {
	switch x := s.(type) {
	case nil:
		return nil
	case *DeclStmt:
		return &DeclStmt{stmtBase: stmtBase{pos: x.Pos()}, Decl: CloneVarDecl(x.Decl)}
	case *ExprStmt:
		return &ExprStmt{stmtBase: stmtBase{pos: x.Pos()}, X: CloneExpr(x.X)}
	case *AssignStmt:
		return &AssignStmt{stmtBase: stmtBase{pos: x.Pos()}, Op: x.Op, LHS: CloneExpr(x.LHS), RHS: CloneExpr(x.RHS)}
	case *IncDecStmt:
		return &IncDecStmt{stmtBase: stmtBase{pos: x.Pos()}, Op: x.Op, X: CloneExpr(x.X)}
	case *Block:
		return CloneBlock(x)
	case *ForStmt:
		out := &ForStmt{
			stmtBase: stmtBase{pos: x.Pos()},
			Init:     CloneStmt(x.Init),
			Cond:     CloneExpr(x.Cond),
			Post:     CloneStmt(x.Post),
			Body:     CloneBlock(x.Body),
		}
		for _, p := range x.Pragmas {
			out.Pragmas = append(out.Pragmas, ClonePragma(p))
		}
		return out
	case *WhileStmt:
		return &WhileStmt{stmtBase: stmtBase{pos: x.Pos()}, Cond: CloneExpr(x.Cond), Body: CloneBlock(x.Body)}
	case *IfStmt:
		return &IfStmt{stmtBase: stmtBase{pos: x.Pos()}, Cond: CloneExpr(x.Cond), Then: CloneBlock(x.Then), Else: CloneStmt(x.Else)}
	case *ReturnStmt:
		return &ReturnStmt{stmtBase: stmtBase{pos: x.Pos()}, X: CloneExpr(x.X)}
	case *BreakStmt:
		return &BreakStmt{stmtBase{pos: x.Pos()}}
	case *ContinueStmt:
		return &ContinueStmt{stmtBase{pos: x.Pos()}}
	case *PragmaStmt:
		return &PragmaStmt{stmtBase: stmtBase{pos: x.Pos()}, P: ClonePragma(x.P)}
	}
	panic("minic: CloneStmt: unknown statement")
}

// CloneBlock returns a deep copy of b (nil-safe).
func CloneBlock(b *Block) *Block {
	if b == nil {
		return nil
	}
	out := &Block{stmtBase: stmtBase{pos: b.Pos()}}
	for _, s := range b.Stmts {
		out.Stmts = append(out.Stmts, CloneStmt(s))
	}
	return out
}

// CloneVarDecl returns a deep copy of vd.
func CloneVarDecl(vd *VarDecl) *VarDecl {
	out := &VarDecl{
		declBase: declBase{pos: vd.Pos()},
		Name:     vd.Name,
		Type:     vd.Type,
		Init:     CloneExpr(vd.Init),
		Shared:   vd.Shared,
	}
	if arr, ok := vd.Type.(*Array); ok {
		out.Type = &Array{Elem: arr.Elem, Len: CloneExpr(arr.Len)}
	}
	return out
}

// ClonePragma returns a deep copy of p.
func ClonePragma(p *Pragma) *Pragma {
	out := &Pragma{
		Pos:     p.Pos,
		Kind:    p.Kind,
		Target:  p.Target,
		Signal:  p.Signal,
		Wait:    p.Wait,
		Persist: p.Persist,
	}
	out.Reductions = append(out.Reductions, p.Reductions...)
	cloneItems := func(items []TransferItem) []TransferItem {
		var outs []TransferItem
		for _, it := range items {
			outs = append(outs, TransferItem{
				Name:      it.Name,
				Start:     CloneExpr(it.Start),
				Length:    CloneExpr(it.Length),
				Into:      it.Into,
				IntoStart: CloneExpr(it.IntoStart),
				AllocIf:   CloneExpr(it.AllocIf),
				FreeIf:    CloneExpr(it.FreeIf),
			})
		}
		return outs
	}
	out.In = cloneItems(p.In)
	out.Out = cloneItems(p.Out)
	out.InOut = cloneItems(p.InOut)
	out.NoCopy = cloneItems(p.NoCopy)
	return out
}

// CloneFile returns a deep copy of the whole translation unit.
func CloneFile(f *File) *File {
	out := &File{}
	for _, d := range f.Decls {
		switch x := d.(type) {
		case *VarDecl:
			out.Decls = append(out.Decls, CloneVarDecl(x))
		case *StructDecl:
			out.Decls = append(out.Decls, &StructDecl{declBase: declBase{pos: x.Pos()}, Type: x.Type})
		case *FuncDecl:
			nf := &FuncDecl{
				declBase: declBase{pos: x.Pos()},
				Name:     x.Name,
				Ret:      x.Ret,
				Shared:   x.Shared,
				Body:     CloneBlock(x.Body),
			}
			nf.Params = append(nf.Params, x.Params...)
			out.Decls = append(out.Decls, nf)
		}
	}
	return out
}

// Substitute rewrites expressions in-place throughout a statement tree,
// replacing each expression for which repl returns non-nil. Children of
// replaced expressions are not revisited.
func Substitute(s Stmt, repl func(Expr) Expr) {
	var doExpr func(e Expr) Expr
	doExpr = func(e Expr) Expr {
		if e == nil {
			return nil
		}
		if r := repl(e); r != nil {
			return r
		}
		switch x := e.(type) {
		case *BinaryExpr:
			x.X = doExpr(x.X)
			x.Y = doExpr(x.Y)
		case *UnaryExpr:
			x.X = doExpr(x.X)
		case *CallExpr:
			for i := range x.Args {
				x.Args[i] = doExpr(x.Args[i])
			}
		case *IndexExpr:
			x.X = doExpr(x.X)
			x.Index = doExpr(x.Index)
		case *MemberExpr:
			x.X = doExpr(x.X)
		case *ParenExpr:
			x.X = doExpr(x.X)
		case *CondExpr:
			x.Cond = doExpr(x.Cond)
			x.Then = doExpr(x.Then)
			x.Else = doExpr(x.Else)
		}
		return e
	}
	var doStmt func(st Stmt)
	doStmt = func(st Stmt) {
		switch x := st.(type) {
		case nil:
		case *DeclStmt:
			x.Decl.Init = doExpr(x.Decl.Init)
		case *ExprStmt:
			x.X = doExpr(x.X)
		case *AssignStmt:
			x.LHS = doExpr(x.LHS)
			x.RHS = doExpr(x.RHS)
		case *IncDecStmt:
			x.X = doExpr(x.X)
		case *Block:
			for _, s2 := range x.Stmts {
				doStmt(s2)
			}
		case *ForStmt:
			doStmt(x.Init)
			x.Cond = doExpr(x.Cond)
			doStmt(x.Post)
			doStmt(x.Body)
		case *WhileStmt:
			x.Cond = doExpr(x.Cond)
			doStmt(x.Body)
		case *IfStmt:
			x.Cond = doExpr(x.Cond)
			doStmt(x.Then)
			doStmt(x.Else)
		case *ReturnStmt:
			x.X = doExpr(x.X)
		}
	}
	doStmt(s)
}
