package minic_test

import (
	"strings"
	"testing"

	"comp/internal/minic"
	"comp/internal/workloads"
)

// seedCorpus feeds the fuzzer every real MiniC program in the repo — the
// ten workload sources plus their CPU baselines — and a few handwritten
// edge fragments. The fuzzer mutates from there.
func seedCorpus(f *testing.F) {
	for _, b := range workloads.All() {
		if b.Source != "" {
			f.Add(b.Source)
		}
		if b.CPUOverride != "" {
			f.Add(b.CPUOverride)
		}
	}
	for _, s := range []string{
		"",
		"int main() { return 0; }",
		"float x[10]; void f() { x[0] = 1.5e-3; }",
		"#pragma offload target(mic:0) in(a : length(n))\n",
		"void f() { for (i = 0; i < n; i++) { a[i] = a[i] + 1; } }",
		"/* unterminated",
		"\"unterminated string",
		"int a = 1 ? 2 : 3;",
		"void f() { if (x) { } else { while (y) { break; } } }",
		"#pragma omp parallel for\n#pragma offload\n",
		"int x = 0x", // dangling numeric prefix
		"}}}((()",
	} {
		f.Add(s)
	}
}

// FuzzLex: the lexer must terminate and never panic on arbitrary bytes,
// and every token it produces must carry a valid position inside the input.
func FuzzLex(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := minic.Lex(src)
		if err != nil {
			return
		}
		lines := 1 + strings.Count(src, "\n")
		for _, tok := range toks {
			if !tok.Pos.IsValid() || tok.Pos.Col < 1 {
				t.Fatalf("token %v has invalid position %v", tok, tok.Pos)
			}
			if tok.Pos.Line > lines+1 {
				t.Fatalf("token %v at line %d, input has %d lines", tok, tok.Pos.Line, lines)
			}
		}
	})
}

// FuzzParse: the parser must never panic, and anything it accepts must
// survive a print→reparse→print round trip (the printer emits valid MiniC
// and printing is a fixed point) and semantic checking.
func FuzzParse(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		file, err := minic.Parse(src)
		if err != nil {
			return
		}
		printed := minic.Print(file)
		again, err := minic.Parse(printed)
		if err != nil {
			t.Fatalf("printed output does not reparse: %v\ninput: %q\nprinted: %q", err, src, printed)
		}
		if p2 := minic.Print(again); p2 != printed {
			t.Fatalf("print is not a fixed point:\nfirst:  %q\nsecond: %q", printed, p2)
		}
		// Sema must not panic on any parseable file.
		minic.Check(file)
	})
}
