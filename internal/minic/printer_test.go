package minic

import (
	"strings"
	"testing"
)

// TestPrintRoundTrip is the core printer property: printing a parsed file
// and re-parsing it yields a file that prints identically (the printed form
// is a fixed point).
func TestPrintRoundTrip(t *testing.T) {
	sources := []string{
		blackscholesSrc,
		`
struct cell {
    double temp;
    double power;
};
struct cell grid[4096];
double delta;
void step(int n) {
    int i;
    #pragma omp parallel for
    for (i = 1; i < n - 1; i++) {
        grid[i].temp = grid[i].temp + delta * (grid[i - 1].temp + grid[i + 1].temp - 2.0 * grid[i].temp) + grid[i].power;
    }
}
`,
		`
int a[100];
int b[100];
int c[100];
int n;
void gather(void) {
    int i;
    #pragma offload target(mic:0) in(a, b : length(n)) out(c : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        c[i] = a[b[i]];
    }
}
`,
		`
int f(int x) {
    if (x > 10) {
        return 1;
    } else if (x > 5) {
        return 2;
    } else {
        return 3;
    }
}
`,
		`
float data[10];
int tag;
void g(void) {
    #pragma offload_transfer target(mic:0) in(data : length(10)) signal(&tag)
    while (tag > 0) {
        tag--;
    }
}
`,
	}
	for i, src := range sources {
		f1, err := Parse(src)
		if err != nil {
			t.Fatalf("source %d: parse: %v", i, err)
		}
		p1 := Print(f1)
		f2, err := Parse(p1)
		if err != nil {
			t.Fatalf("source %d: reparse of printed output: %v\n%s", i, err, p1)
		}
		p2 := Print(f2)
		if p1 != p2 {
			t.Fatalf("source %d: print not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", i, p1, p2)
		}
	}
}

func TestPrintPreservesPrecedence(t *testing.T) {
	cases := []string{
		"int x = (1 + 2) * 3;",
		"int y = 1 + 2 * 3;",
		"int z = -(1 + 2);",
		"int w = (1 + 2) % 5;",
		"int v = 10 / (5 - 3);",
	}
	for _, src := range cases {
		f1 := MustParse(src)
		v1 := evalConstDecl(t, f1)
		f2 := MustParse(Print(f1))
		v2 := evalConstDecl(t, f2)
		if v1 != v2 {
			t.Errorf("%s: value changed across print: %d vs %d\nprinted: %s", src, v1, v2, Print(f1))
		}
	}
}

// evalConstDecl evaluates the constant integer initializer of the first
// declaration, for checking that printing preserves semantics.
func evalConstDecl(t *testing.T, f *File) int64 {
	t.Helper()
	vd := f.Decls[0].(*VarDecl)
	v, ok := evalConst(vd.Init)
	if !ok {
		t.Fatalf("not a constant: %s", ExprString(vd.Init))
	}
	return v
}

func evalConst(e Expr) (int64, bool) {
	switch x := e.(type) {
	case *IntLit:
		return x.Value, true
	case *ParenExpr:
		return evalConst(x.X)
	case *UnaryExpr:
		v, ok := evalConst(x.X)
		if !ok {
			return 0, false
		}
		if x.Op == "-" {
			return -v, true
		}
		return 0, false
	case *BinaryExpr:
		a, ok1 := evalConst(x.X)
		b, ok2 := evalConst(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case "+":
			return a + b, true
		case "-":
			return a - b, true
		case "*":
			return a * b, true
		case "/":
			return a / b, true
		case "%":
			return a % b, true
		}
	}
	return 0, false
}

func TestPrintPragmas(t *testing.T) {
	f := MustParse(blackscholesSrc)
	out := Print(f)
	if !strings.Contains(out, "#pragma offload target(mic:0)") {
		t.Errorf("printed output missing offload pragma:\n%s", out)
	}
	if !strings.Contains(out, "#pragma omp parallel for") {
		t.Errorf("printed output missing omp pragma")
	}
	if !strings.Contains(out, "out(prices : length(numOptions))") {
		t.Errorf("printed output missing out clause:\n%s", out)
	}
}

func TestPrintSharedQualifiers(t *testing.T) {
	src := `
_Cilk_shared int v;
_Cilk_shared void foo(void) {
    v = v + 1;
}
`
	out := Print(MustParse(src))
	if !strings.Contains(out, "_Cilk_shared int v;") {
		t.Errorf("shared variable lost:\n%s", out)
	}
	if !strings.Contains(out, "_Cilk_shared void foo()") {
		t.Errorf("shared function lost:\n%s", out)
	}
}

func TestTypeStringDeclarations(t *testing.T) {
	cases := []struct {
		t    Type
		name string
		want string
	}{
		{FloatType, "x", "float x"},
		{&Pointer{Elem: FloatType}, "p", "float *p"},
		{&Array{Elem: IntType, Len: &IntLit{Value: 8}}, "a", "int a[8]"},
		{&Array{Elem: DoubleType}, "b", "double b[]"},
		{&StructType{Name: "pt"}, "s", "struct pt s"},
	}
	for _, c := range cases {
		if got := TypeString(c.t, c.name); got != c.want {
			t.Errorf("TypeString = %q, want %q", got, c.want)
		}
	}
}

func TestStmtString(t *testing.T) {
	f := MustParse("void f(void) { int x = 1; x += 2; x++; }")
	body := f.Func("f").Body
	wants := []string{"int x = 1;\n", "x += 2;\n", "x++;\n"}
	for i, w := range wants {
		if got := StmtString(body.Stmts[i]); got != w {
			t.Errorf("stmt %d = %q, want %q", i, got, w)
		}
	}
}
