package minic

import (
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := Lex("int x = 42;")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind TokenKind
		text string
	}{
		{TokKeyword, "int"}, {TokIdent, "x"}, {TokPunct, "="},
		{TokIntLit, "42"}, {TokPunct, ";"}, {TokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = %v, want %s %q", i, toks[i], w.kind, w.text)
		}
	}
}

func TestLexFloats(t *testing.T) {
	cases := []struct {
		src  string
		kind TokenKind
		text string
	}{
		{"3.14", TokFloatLit, "3.14"},
		{"1e10", TokFloatLit, "1e10"},
		{"2.5e-3", TokFloatLit, "2.5e-3"},
		{"1.0f", TokFloatLit, "1.0"},
		{"7", TokIntLit, "7"},
		{"100L", TokIntLit, "100"},
		{".5", TokFloatLit, ".5"},
	}
	for _, c := range cases {
		toks, err := Lex(c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if toks[0].Kind != c.kind || toks[0].Text != c.text {
			t.Errorf("%q lexed to %v, want %s %q", c.src, toks[0], c.kind, c.text)
		}
	}
}

func TestLexMalformedExponent(t *testing.T) {
	if _, err := Lex("1e+"); err == nil {
		t.Fatal("malformed exponent accepted")
	}
}

func TestLexMultiCharOperators(t *testing.T) {
	src := "== != <= >= && || += -= *= /= ++ -- -> << >>"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{"==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "++", "--", "->", "<<", ">>"}
	for i, w := range wants {
		if toks[i].Text != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestLexComments(t *testing.T) {
	src := `
int a; // line comment
/* block
   comment */ int b;`
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	var idents []string
	for _, tk := range toks {
		if tk.Kind == TokIdent {
			idents = append(idents, tk.Text)
		}
	}
	if len(idents) != 2 || idents[0] != "a" || idents[1] != "b" {
		t.Fatalf("idents = %v, want [a b]", idents)
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	if _, err := Lex("/* never closed"); err == nil {
		t.Fatal("unterminated comment accepted")
	}
}

func TestLexPragmaLine(t *testing.T) {
	src := "#pragma offload target(mic:0) in(x : length(n))\nint y;"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokPragma {
		t.Fatalf("first token = %v, want pragma", toks[0])
	}
	if toks[0].Text != "#pragma offload target(mic:0) in(x : length(n))" {
		t.Fatalf("pragma text = %q", toks[0].Text)
	}
	if toks[1].Kind != TokKeyword || toks[1].Text != "int" {
		t.Fatalf("token after pragma = %v", toks[1])
	}
}

func TestLexIncludeSkipped(t *testing.T) {
	toks, err := Lex("#include <stdio.h>\nint x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokKeyword || toks[0].Text != "int" {
		t.Fatalf("include not skipped: %v", toks[0])
	}
}

func TestLexIndentedPragma(t *testing.T) {
	toks, err := Lex("    #pragma omp parallel for\nfor")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokPragma {
		t.Fatalf("indented pragma not recognized: %v", toks[0])
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := Lex(`"hello\nworld"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokStringLit || toks[0].Text != "hello\nworld" {
		t.Fatalf("string token = %v", toks[0])
	}
	if _, err := Lex(`"unterminated`); err == nil {
		t.Fatal("unterminated string accepted")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("int\n  x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("int at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("x at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	if _, err := Lex("int x @ y;"); err == nil {
		t.Fatal("unexpected character accepted")
	}
}

func TestLexCilkShared(t *testing.T) {
	toks, err := Lex("_Cilk_shared int v;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokKeyword || toks[0].Text != "_Cilk_shared" {
		t.Fatalf("_Cilk_shared token = %v", toks[0])
	}
}

func TestTokenKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := TokEOF; k <= TokKeyword; k++ {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Errorf("kind %d has bad or duplicate string %q", k, s)
		}
		seen[s] = true
	}
	_ = kinds(nil)
}
