package minic

// Node is implemented by every AST node.
type Node interface {
	Pos() Pos
}

// ---- Expressions ----

// Expr is implemented by all expression nodes. Type() returns the type
// assigned by the checker (nil before Check runs).
type Expr interface {
	Node
	Type() Type
	exprNode()
}

type exprBase struct {
	pos Pos
	typ Type
}

func (e *exprBase) Pos() Pos       { return e.pos }
func (e *exprBase) Type() Type     { return e.typ }
func (e *exprBase) SetType(t Type) { e.typ = t }
func (e *exprBase) exprNode()      {}

// Ident is a reference to a named entity. After checking, Sym points to the
// symbol it resolves to.
type Ident struct {
	exprBase
	Name string
	Sym  *Symbol
}

// NewIdent constructs an identifier expression.
func NewIdent(pos Pos, name string) *Ident { return &Ident{exprBase: exprBase{pos: pos}, Name: name} }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	exprBase
	Value float64
	Text  string // original spelling, preserved by the printer
}

// StringLit is a string literal (only used as call arguments, e.g. printf).
type StringLit struct {
	exprBase
	Value string
}

// BinaryExpr is a binary operation; Op is the operator spelling.
type BinaryExpr struct {
	exprBase
	Op   string
	X, Y Expr
}

// UnaryExpr is a prefix operation: -, !, * (deref), & (address-of).
type UnaryExpr struct {
	exprBase
	Op string
	X  Expr
}

// CallExpr is a function call.
type CallExpr struct {
	exprBase
	Fun  *Ident
	Args []Expr
}

// IndexExpr is an array subscript X[Index].
type IndexExpr struct {
	exprBase
	X     Expr
	Index Expr
}

// MemberExpr is a field access; Arrow distinguishes `->` from `.`.
type MemberExpr struct {
	exprBase
	X     Expr
	Field string
	Arrow bool
}

// ParenExpr preserves explicit parentheses for the printer.
type ParenExpr struct {
	exprBase
	X Expr
}

// SizeofExpr is sizeof(type).
type SizeofExpr struct {
	exprBase
	Of Type
}

// CondExpr is the conditional operator `Cond ? Then : Else`.
type CondExpr struct {
	exprBase
	Cond Expr
	Then Expr
	Else Expr
}

// ---- Statements ----

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

type stmtBase struct{ pos Pos }

func (s *stmtBase) Pos() Pos  { return s.pos }
func (s *stmtBase) stmtNode() {}

// DeclStmt declares a local variable.
type DeclStmt struct {
	stmtBase
	Decl *VarDecl
}

// ExprStmt evaluates an expression for effect (calls, ++/--).
type ExprStmt struct {
	stmtBase
	X Expr
}

// AssignStmt is `LHS op RHS;` with op one of = += -= *= /=.
type AssignStmt struct {
	stmtBase
	Op  string
	LHS Expr
	RHS Expr
}

// IncDecStmt is `X++;` or `X--;`.
type IncDecStmt struct {
	stmtBase
	Op string // "++" or "--"
	X  Expr
}

// Block is `{ stmts }`.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// ForStmt is a C for loop. Pragmas holds the pragma lines that
// syntactically precede the loop (omp parallel for, offload, ...).
type ForStmt struct {
	stmtBase
	Pragmas []*Pragma
	Init    Stmt // DeclStmt or AssignStmt or nil
	Cond    Expr // nil means forever
	Post    Stmt // AssignStmt or IncDecStmt or nil
	Body    *Block
}

// WhileStmt is a while loop.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body *Block
}

// IfStmt is if/else; Else is a *Block, an *IfStmt, or nil.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then *Block
	Else Stmt
}

// ReturnStmt returns from a function.
type ReturnStmt struct {
	stmtBase
	X Expr // nil for void return
}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ stmtBase }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ stmtBase }

// PragmaStmt is a pragma not attached to a for loop (offload_transfer,
// offload_wait). It acts as a standalone statement.
type PragmaStmt struct {
	stmtBase
	P *Pragma
}

// ---- Declarations ----

// Decl is implemented by top-level declarations.
type Decl interface {
	Node
	declNode()
}

type declBase struct{ pos Pos }

func (d *declBase) Pos() Pos  { return d.pos }
func (d *declBase) declNode() {}

// VarDecl declares a variable (global or local via DeclStmt).
type VarDecl struct {
	declBase
	Name   string
	Type   Type
	Init   Expr // may be nil
	Shared bool // declared _Cilk_shared
	Sym    *Symbol
}

// Param is a function parameter.
type Param struct {
	Pos  Pos
	Name string
	Type Type
}

// FuncDecl defines a function.
type FuncDecl struct {
	declBase
	Name   string
	Params []Param
	Ret    Type
	Body   *Block // nil for a prototype
	Shared bool   // declared _Cilk_shared (compiled for both sides)
}

// StructDecl declares a struct type.
type StructDecl struct {
	declBase
	Type *StructType
}

// File is a parsed translation unit.
type File struct {
	Decls []Decl
}

// Pos implements Node; a file starts at line 1.
func (f *File) Pos() Pos { return Pos{Line: 1, Col: 1} }

// Funcs returns the function declarations in order.
func (f *File) Funcs() []*FuncDecl {
	var out []*FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*FuncDecl); ok {
			out = append(out, fd)
		}
	}
	return out
}

// Func returns the named function, or nil.
func (f *File) Func(name string) *FuncDecl {
	for _, fd := range f.Funcs() {
		if fd.Name == name {
			return fd
		}
	}
	return nil
}

// Struct returns the named struct type, or nil.
func (f *File) Struct(name string) *StructType {
	for _, d := range f.Decls {
		if sd, ok := d.(*StructDecl); ok && sd.Type.Name == name {
			return sd.Type
		}
	}
	return nil
}

// SymbolKind classifies symbols.
type SymbolKind int

// Symbol kinds.
const (
	SymVar SymbolKind = iota
	SymParam
	SymFunc
)

// Symbol is a named entity produced by the checker.
type Symbol struct {
	Name   string
	Kind   SymbolKind
	Type   Type
	Shared bool
	Global bool
	Decl   Node // *VarDecl, *Param position holder, or *FuncDecl
}

// ---- AST walking ----

// Inspect walks the AST rooted at n in depth-first order, calling f for
// every node. If f returns false for a node, its children are skipped.
func Inspect(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch x := n.(type) {
	case *File:
		for _, d := range x.Decls {
			Inspect(d, f)
		}
	case *FuncDecl:
		if x.Body != nil {
			Inspect(x.Body, f)
		}
	case *VarDecl:
		if x.Init != nil {
			Inspect(x.Init, f)
		}
		if arr, ok := x.Type.(*Array); ok && arr.Len != nil {
			Inspect(arr.Len, f)
		}
	case *StructDecl:
	case *DeclStmt:
		Inspect(x.Decl, f)
	case *ExprStmt:
		Inspect(x.X, f)
	case *AssignStmt:
		Inspect(x.LHS, f)
		Inspect(x.RHS, f)
	case *IncDecStmt:
		Inspect(x.X, f)
	case *Block:
		for _, s := range x.Stmts {
			Inspect(s, f)
		}
	case *ForStmt:
		if x.Init != nil {
			Inspect(x.Init, f)
		}
		if x.Cond != nil {
			Inspect(x.Cond, f)
		}
		if x.Post != nil {
			Inspect(x.Post, f)
		}
		Inspect(x.Body, f)
	case *WhileStmt:
		Inspect(x.Cond, f)
		Inspect(x.Body, f)
	case *IfStmt:
		Inspect(x.Cond, f)
		Inspect(x.Then, f)
		if x.Else != nil {
			Inspect(x.Else, f)
		}
	case *ReturnStmt:
		if x.X != nil {
			Inspect(x.X, f)
		}
	case *BinaryExpr:
		Inspect(x.X, f)
		Inspect(x.Y, f)
	case *UnaryExpr:
		Inspect(x.X, f)
	case *CallExpr:
		Inspect(x.Fun, f)
		for _, a := range x.Args {
			Inspect(a, f)
		}
	case *IndexExpr:
		Inspect(x.X, f)
		Inspect(x.Index, f)
	case *MemberExpr:
		Inspect(x.X, f)
	case *ParenExpr:
		Inspect(x.X, f)
	case *CondExpr:
		Inspect(x.Cond, f)
		Inspect(x.Then, f)
		Inspect(x.Else, f)
	case *Ident, *IntLit, *FloatLit, *StringLit, *SizeofExpr,
		*BreakStmt, *ContinueStmt, *PragmaStmt:
	}
}
