package minic

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a file back to MiniC source. The output of Print on a
// parsed file re-parses to an equivalent AST (tested by a round-trip
// property test), which is what makes the transformation passes genuinely
// source-to-source.
func Print(f *File) string {
	var pr printer
	for i, d := range f.Decls {
		if i > 0 {
			pr.nl()
		}
		pr.decl(d)
	}
	return pr.b.String()
}

// ExprString renders a single expression.
func ExprString(e Expr) string {
	var pr printer
	pr.expr(e)
	return pr.b.String()
}

// StmtString renders a single statement at zero indentation.
func StmtString(s Stmt) string {
	var pr printer
	pr.stmt(s)
	return pr.b.String()
}

// TypeString renders a declaration of name with the given type, e.g.
// "float *prices" or "double J[n]".
func TypeString(t Type, name string) string {
	switch tt := t.(type) {
	case *Array:
		if tt.Len != nil {
			return fmt.Sprintf("%s[%s]", TypeString(tt.Elem, name), ExprString(tt.Len))
		}
		return fmt.Sprintf("%s[]", TypeString(tt.Elem, name))
	case *Pointer:
		return fmt.Sprintf("%s *%s", tt.Elem.String(), name)
	default:
		return fmt.Sprintf("%s %s", t.String(), name)
	}
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) nl() {
	p.b.WriteByte('\n')
}

func (p *printer) line(format string, args ...interface{}) {
	p.b.WriteString(strings.Repeat("    ", p.indent))
	fmt.Fprintf(&p.b, format, args...)
	p.nl()
}

func (p *printer) decl(d Decl) {
	switch x := d.(type) {
	case *StructDecl:
		p.line("struct %s {", x.Type.Name)
		p.indent++
		for _, f := range x.Type.Fields {
			p.line("%s;", TypeString(f.Type, f.Name))
		}
		p.indent--
		p.line("};")
	case *VarDecl:
		p.line("%s;", p.varDeclString(x))
	case *FuncDecl:
		var sig strings.Builder
		if x.Shared {
			sig.WriteString("_Cilk_shared ")
		}
		sig.WriteString(x.Ret.String())
		sig.WriteString(" ")
		sig.WriteString(x.Name)
		sig.WriteString("(")
		for i, pa := range x.Params {
			if i > 0 {
				sig.WriteString(", ")
			}
			sig.WriteString(TypeString(pa.Type, pa.Name))
		}
		sig.WriteString(")")
		if x.Body == nil {
			p.line("%s;", sig.String())
			return
		}
		p.line("%s {", sig.String())
		p.indent++
		for _, s := range x.Body.Stmts {
			p.stmt(s)
		}
		p.indent--
		p.line("}")
	}
}

func (p *printer) varDeclString(v *VarDecl) string {
	var b strings.Builder
	if v.Shared {
		b.WriteString("_Cilk_shared ")
	}
	b.WriteString(TypeString(v.Type, v.Name))
	if v.Init != nil {
		b.WriteString(" = ")
		b.WriteString(ExprString(v.Init))
	}
	return b.String()
}

func (p *printer) stmt(s Stmt) {
	switch x := s.(type) {
	case *DeclStmt:
		p.line("%s;", p.varDeclString(x.Decl))
	case *ExprStmt:
		p.line("%s;", ExprString(x.X))
	case *AssignStmt:
		p.line("%s %s %s;", ExprString(x.LHS), x.Op, ExprString(x.RHS))
	case *IncDecStmt:
		p.line("%s%s;", ExprString(x.X), x.Op)
	case *Block:
		p.line("{")
		p.indent++
		for _, st := range x.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	case *ForStmt:
		for _, pr := range x.Pragmas {
			p.line("%s", pr.String())
		}
		var init, post string
		if x.Init != nil {
			init = p.inlineSimple(x.Init)
		}
		if x.Post != nil {
			post = p.inlineSimple(x.Post)
		}
		cond := ""
		if x.Cond != nil {
			cond = ExprString(x.Cond)
		}
		p.line("for (%s; %s; %s) {", init, cond, post)
		p.indent++
		for _, st := range x.Body.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	case *WhileStmt:
		p.line("while (%s) {", ExprString(x.Cond))
		p.indent++
		for _, st := range x.Body.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	case *IfStmt:
		p.ifStmt(x, "if")
	case *ReturnStmt:
		if x.X == nil {
			p.line("return;")
		} else {
			p.line("return %s;", ExprString(x.X))
		}
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	case *PragmaStmt:
		p.line("%s", x.P.String())
	default:
		p.line("/* unknown statement %T */", s)
	}
}

func (p *printer) ifStmt(x *IfStmt, kw string) {
	p.line("%s (%s) {", kw, ExprString(x.Cond))
	p.indent++
	for _, st := range x.Then.Stmts {
		p.stmt(st)
	}
	p.indent--
	switch e := x.Else.(type) {
	case nil:
		p.line("}")
	case *IfStmt:
		p.b.WriteString(strings.Repeat("    ", p.indent))
		p.b.WriteString("} else ")
		// Re-render the chained if without leading indentation.
		sub := printer{indent: p.indent}
		sub.ifStmt(e, "if")
		out := sub.b.String()
		p.b.WriteString(strings.TrimLeft(out, " "))
	case *Block:
		p.line("} else {")
		p.indent++
		for _, st := range e.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	default:
		p.line("} else {")
		p.indent++
		p.stmt(e)
		p.indent--
		p.line("}")
	}
}

// inlineSimple renders Init/Post statements without newline or semicolon.
func (p *printer) inlineSimple(s Stmt) string {
	switch x := s.(type) {
	case *DeclStmt:
		return p.varDeclString(x.Decl)
	case *AssignStmt:
		return fmt.Sprintf("%s %s %s", ExprString(x.LHS), x.Op, ExprString(x.RHS))
	case *IncDecStmt:
		return ExprString(x.X) + x.Op
	case *ExprStmt:
		return ExprString(x.X)
	}
	return "/* ? */"
}

func (p *printer) expr(e Expr) {
	switch x := e.(type) {
	case *Ident:
		p.b.WriteString(x.Name)
	case *IntLit:
		p.b.WriteString(strconv.FormatInt(x.Value, 10))
	case *FloatLit:
		if x.Text != "" {
			p.b.WriteString(x.Text)
		} else {
			p.b.WriteString(strconv.FormatFloat(x.Value, 'g', -1, 64))
		}
	case *StringLit:
		p.b.WriteString(strconv.Quote(x.Value))
	case *BinaryExpr:
		p.exprPrec(x.X, precOf(x))
		p.b.WriteString(" " + x.Op + " ")
		p.exprPrec(x.Y, precOf(x)+1)
	case *UnaryExpr:
		p.b.WriteString(x.Op)
		p.exprPrec(x.X, 100)
	case *CallExpr:
		p.b.WriteString(x.Fun.Name)
		p.b.WriteString("(")
		for i, a := range x.Args {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.expr(a)
		}
		p.b.WriteString(")")
	case *IndexExpr:
		p.exprPrec(x.X, 100)
		p.b.WriteString("[")
		p.expr(x.Index)
		p.b.WriteString("]")
	case *MemberExpr:
		p.exprPrec(x.X, 100)
		if x.Arrow {
			p.b.WriteString("->")
		} else {
			p.b.WriteString(".")
		}
		p.b.WriteString(x.Field)
	case *ParenExpr:
		p.b.WriteString("(")
		p.expr(x.X)
		p.b.WriteString(")")
	case *CondExpr:
		// Lowest precedence: exprPrec parenthesizes when embedded.
		p.exprPrec(x.Cond, 1)
		p.b.WriteString(" ? ")
		p.expr(x.Then)
		p.b.WriteString(" : ")
		p.expr(x.Else)
	case *SizeofExpr:
		p.b.WriteString("sizeof(")
		p.b.WriteString(x.Of.String())
		p.b.WriteString(")")
	default:
		fmt.Fprintf(&p.b, "/* %T */", e)
	}
}

func precOf(e Expr) int {
	switch x := e.(type) {
	case *BinaryExpr:
		return binPrec[x.Op]
	case *CondExpr:
		return 0
	}
	return 100
}

// exprPrec prints e, parenthesizing when its precedence is below min.
func (p *printer) exprPrec(e Expr, min int) {
	if precOf(e) < min {
		p.b.WriteString("(")
		p.expr(e)
		p.b.WriteString(")")
		return
	}
	p.expr(e)
}
