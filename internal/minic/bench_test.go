package minic

import "testing"

// BenchmarkParse measures front-end throughput on the blackscholes fixture.
func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(blackscholesSrc); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(blackscholesSrc)))
}

// BenchmarkPrint measures the source printer.
func BenchmarkPrint(b *testing.B) {
	f := MustParse(blackscholesSrc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Print(f)
	}
}
