package minic

import (
	"strings"
	"testing"
)

// blackscholesSrc mirrors the structure of Figure 5(a): an offloaded OpenMP
// loop with in/out clauses.
const blackscholesSrc = `
float BlkSchlsEqEuroNoDiv(float spt, float strike, float rate, float volatility, float time, int otype) {
    float d1 = (log(spt / strike) + (rate + volatility * volatility / 2.0) * time) / (volatility * sqrt(time));
    float d2 = d1 - volatility * sqrt(time);
    if (otype == 0) {
        return spt * d1 - strike * exp(-rate * time) * d2;
    }
    return strike * exp(-rate * time) * d2 - spt * d1;
}

int numOptions;
float sptprice[1000000];
float strike[1000000];
float rate[1000000];
float volatility[1000000];
float otime[1000000];
float prices[1000000];

void bs_thread(void) {
    int i;
    #pragma offload target(mic:0) in(sptprice, strike, rate, volatility, otime : length(numOptions)) out(prices : length(numOptions))
    #pragma omp parallel for
    for (i = 0; i < numOptions; i++) {
        prices[i] = BlkSchlsEqEuroNoDiv(sptprice[i], strike[i], rate[i], volatility[i], otime[i], 0);
    }
}
`

func TestParseBlackscholes(t *testing.T) {
	f, err := Parse(blackscholesSrc)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f.Funcs()); got != 2 {
		t.Fatalf("functions = %d, want 2", got)
	}
	bs := f.Func("bs_thread")
	if bs == nil {
		t.Fatal("bs_thread not found")
	}
	var loop *ForStmt
	Inspect(bs.Body, func(n Node) bool {
		if fs, ok := n.(*ForStmt); ok && loop == nil {
			loop = fs
		}
		return true
	})
	if loop == nil {
		t.Fatal("offloaded loop not found")
	}
	if len(loop.Pragmas) != 2 {
		t.Fatalf("pragmas = %d, want 2", len(loop.Pragmas))
	}
	off := loop.Pragmas[0]
	if off.Kind != PragmaOffload {
		t.Fatalf("first pragma = %v, want offload", off.Kind)
	}
	if off.Target != "mic:0" {
		t.Errorf("target = %q, want mic:0", off.Target)
	}
	if len(off.In) != 5 {
		t.Errorf("in items = %d, want 5", len(off.In))
	}
	if len(off.Out) != 1 || off.Out[0].Name != "prices" {
		t.Errorf("out items = %+v, want [prices]", off.Out)
	}
	if off.In[0].Length == nil || ExprString(off.In[0].Length) != "numOptions" {
		t.Errorf("in length = %v, want numOptions", off.In[0].Length)
	}
	if loop.Pragmas[1].Kind != PragmaOmpParallelFor {
		t.Errorf("second pragma = %v, want omp parallel for", loop.Pragmas[1].Kind)
	}
}

func TestParseStruct(t *testing.T) {
	src := `
struct point {
    float x;
    float y;
    int id;
};
struct point pts[100];
float dist(struct point *p) {
    return sqrt(p->x * p->x + p->y * p->y);
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	st := f.Struct("point")
	if st == nil {
		t.Fatal("struct point not found")
	}
	if len(st.Fields) != 3 {
		t.Fatalf("fields = %d, want 3", len(st.Fields))
	}
	if st.Size() != 12 {
		t.Errorf("size = %d, want 12", st.Size())
	}
	if st.Offset("y") != 4 || st.Offset("id") != 8 {
		t.Errorf("offsets y=%d id=%d, want 4,8", st.Offset("y"), st.Offset("id"))
	}
}

func TestParsePointerAndArrayDecls(t *testing.T) {
	src := `
float *p;
double **q;
int grid[64];
int m[10];
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	decls := map[string]Type{}
	for _, d := range f.Decls {
		vd := d.(*VarDecl)
		decls[vd.Name] = vd.Type
	}
	if _, ok := decls["p"].(*Pointer); !ok {
		t.Errorf("p type = %T, want *Pointer", decls["p"])
	}
	if pp, ok := decls["q"].(*Pointer); !ok {
		t.Errorf("q type = %T", decls["q"])
	} else if _, ok := pp.Elem.(*Pointer); !ok {
		t.Errorf("q elem = %T, want *Pointer", pp.Elem)
	}
	arr, ok := decls["grid"].(*Array)
	if !ok {
		t.Fatalf("grid type = %T, want *Array", decls["grid"])
	}
	if lit, ok := arr.Len.(*IntLit); !ok || lit.Value != 64 {
		t.Errorf("grid len = %v", arr.Len)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
int f(int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) {
        if (i % 2 == 0) {
            s += i;
        } else if (i % 3 == 0) {
            s -= i;
        } else {
            continue;
        }
        if (s > 100) break;
    }
    while (s > 0) {
        s = s - 7;
    }
    return s;
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var fors, whiles, ifs, breaks, conts int
	Inspect(f, func(n Node) bool {
		switch n.(type) {
		case *ForStmt:
			fors++
		case *WhileStmt:
			whiles++
		case *IfStmt:
			ifs++
		case *BreakStmt:
			breaks++
		case *ContinueStmt:
			conts++
		}
		return true
	})
	if fors != 1 || whiles != 1 || ifs != 3 || breaks != 1 || conts != 1 {
		t.Fatalf("fors=%d whiles=%d ifs=%d breaks=%d conts=%d", fors, whiles, ifs, breaks, conts)
	}
}

func TestParsePrecedence(t *testing.T) {
	f, err := Parse("int x = 1 + 2 * 3;")
	if err != nil {
		t.Fatal(err)
	}
	init := f.Decls[0].(*VarDecl).Init
	be, ok := init.(*BinaryExpr)
	if !ok || be.Op != "+" {
		t.Fatalf("top op = %v", init)
	}
	inner, ok := be.Y.(*BinaryExpr)
	if !ok || inner.Op != "*" {
		t.Fatalf("rhs = %v, want 2*3", ExprString(be.Y))
	}
}

func TestParseUnaryAndMembers(t *testing.T) {
	src := `
struct node {
    int val;
    struct node *next;
};
int get(struct node *n) {
    return -n->next->val + (*n).val;
}
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseCastIgnored(t *testing.T) {
	src := `
void f(void) {
    float *p = (float *) malloc(100 * sizeof(float));
    free(p);
}
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseSingleStmtBodies(t *testing.T) {
	src := `
int f(int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) s += i;
    if (s > 0) return s;
    return 0;
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var loop *ForStmt
	Inspect(f, func(n Node) bool {
		if fs, ok := n.(*ForStmt); ok {
			loop = fs
		}
		return true
	})
	if loop == nil || len(loop.Body.Stmts) != 1 {
		t.Fatal("single-statement for body not wrapped in block")
	}
}

func TestParseForWithDeclInit(t *testing.T) {
	src := `
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        s += i;
    }
    return s;
}
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int ;",                            // missing name
		"int f( {",                         // bad params
		"int f(void) { return 1 }",         // missing semicolon
		"int f(void) { for i; ; ) }",       // bad for
		"#pragma omp parallel for\nint x;", // pragma not before for (at top level)
		"int f(void) { x = ; }",            // missing rhs
		"int f(void) { (1+2 ; }",           // unbalanced paren
		"struct s { int x; } ",             // missing semicolon after struct
		"int f(void) {",                    // unterminated block
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParsePragmaStandaloneTransfer(t *testing.T) {
	src := `
float data[100];
int tag;
void f(void) {
    #pragma offload_transfer target(mic:0) in(data : length(100)) signal(&tag)
    #pragma offload_wait target(mic:0) wait(&tag)
    return;
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := f.Func("f")
	ps, ok := fn.Body.Stmts[0].(*PragmaStmt)
	if !ok {
		t.Fatalf("first stmt = %T, want PragmaStmt", fn.Body.Stmts[0])
	}
	if ps.P.Kind != PragmaOffloadTransfer || ps.P.Signal != "tag" {
		t.Fatalf("pragma = %+v", ps.P)
	}
	ws := fn.Body.Stmts[1].(*PragmaStmt)
	if ws.P.Kind != PragmaOffloadWait || ws.P.Wait != "tag" {
		t.Fatalf("wait pragma = %+v", ws.P)
	}
}

func TestParseCilkSharedDecls(t *testing.T) {
	src := `
_Cilk_shared int count;
_Cilk_shared void foo(void) {
    count = count + 1;
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	vd := f.Decls[0].(*VarDecl)
	if !vd.Shared {
		t.Error("variable not marked shared")
	}
	fd := f.Func("foo")
	if !fd.Shared {
		t.Error("function not marked shared")
	}
}

func TestMustParsePanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on bad input did not panic")
		}
	}()
	MustParse("int f( {")
}

func TestParsePragmaErrors(t *testing.T) {
	cases := []string{
		"#pragma vectorize",                    // unknown pragma
		"#pragma offload target(mic in(x)",     // unbalanced
		"#pragma offload badclause(x)",         // unknown clause
		"#pragma offload in(x : size(10))",     // not length
		"#pragma offload in( : length(10))",    // empty
		"#pragma offload in(x y : length(10))", // missing comma
	}
	for _, src := range cases {
		if _, err := ParsePragma(src, Pos{Line: 1, Col: 1}); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestPragmaString(t *testing.T) {
	p, err := ParsePragma("#pragma offload target(mic:0) in(a, b : length(n * 2)) out(c : length(n)) signal(&tag)", Pos{})
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"offload", "target(mic:0)", "in(a : length(n * 2), b : length(n * 2))", "out(c : length(n))", "signal(&tag)"} {
		if !strings.Contains(s, want) {
			t.Errorf("pragma string %q missing %q", s, want)
		}
	}
}
