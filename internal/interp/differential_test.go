package interp_test

import (
	"testing"

	"comp/internal/core"
	"comp/internal/interp"
	"comp/internal/workloads"
)

// The differential suite proves the backend boundary clean: the
// interpreter computes every value itself, so running a workload against
// the full simulated platform and against NullBackend (which discards all
// machine operations) must produce bit-identical outputs. Any divergence
// means a backend leaked into value execution — the simulator would be
// "computing" answers instead of timing them.

// nullRun executes a source through the interpreter with NullBackend,
// applying the benchmark's input setup.
func nullRun(t *testing.T, b *workloads.Benchmark, src string) *interp.Program {
	t.Helper()
	p, err := interp.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := p.Reset(); err != nil {
		t.Fatal(err)
	}
	if b.Setup != nil {
		if err := b.Setup(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Run(interp.NullBackend{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	return p
}

// compareArrays checks the benchmark's output arrays bit-for-bit.
func compareArrays(t *testing.T, b *workloads.Benchmark, sim, null *interp.Program) {
	t.Helper()
	for _, name := range b.Outputs {
		x, err := sim.ArrayData(name)
		if err != nil {
			t.Fatal(err)
		}
		y, err := null.ArrayData(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(x) != len(y) {
			t.Fatalf("%s: length %d vs %d", name, len(x), len(y))
		}
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("%s[%d]: simulated %v vs null %v", name, i, x[i], y[i])
			}
		}
	}
	if a, c := sim.Output(), null.Output(); a != c {
		t.Errorf("printed output differs: %q vs %q", a, c)
	}
}

// TestSimulatedVsNullBackend runs every MiniC workload, naive and fully
// optimized, under both backends.
func TestSimulatedVsNullBackend(t *testing.T) {
	for _, b := range workloads.All() {
		if b.SharedMem {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			opt, err := core.Optimize(b.Source, core.DefaultOptions())
			if err != nil {
				t.Fatalf("optimize: %v", err)
			}
			variants := []struct {
				name string
				src  string
				ro   workloads.RunOptions
			}{
				{"naive", b.Source, workloads.RunOptions{Variant: workloads.MICNaive}},
				{"optimized", opt.Source(), workloads.RunOptions{Variant: workloads.MICOptimized, Opt: core.DefaultOptions()}},
			}
			for _, v := range variants {
				simRes, err := b.Run(v.ro)
				if err != nil {
					t.Fatalf("%s: simulated run: %v", v.name, err)
				}
				null := nullRun(t, b, v.src)
				compareArrays(t, b, simRes.Program, null)
			}
		})
	}
}

// TestHostOnlyVsNullBackend closes the triangle: the pragma-stripped CPU
// baseline under the simulated host model must also match NullBackend
// value execution.
func TestHostOnlyVsNullBackend(t *testing.T) {
	for _, b := range workloads.All() {
		if b.SharedMem {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			src, err := b.CPUSource()
			if err != nil {
				t.Fatal(err)
			}
			simRes, err := b.Run(workloads.RunOptions{Variant: workloads.CPU})
			if err != nil {
				t.Fatalf("simulated CPU run: %v", err)
			}
			null := nullRun(t, b, src)
			compareArrays(t, b, simRes.Program, null)
		})
	}
}
