package interp

import "testing"

func TestTernaryOperator(t *testing.T) {
	p, _ := run(t, `
float a[8];
float b[8];
int n;
int main(void) {
    int i;
    n = 8;
    for (i = 0; i < n; i++) {
        a[i] = i;
    }
    #pragma offload target(mic:0) in(a : length(n)) out(b : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        b[i] = a[i] > 3.0 ? a[i] * 2.0 : -a[i];
    }
    return 0;
}
`)
	bv, _ := p.ArrayData("b")
	for i := 0; i < 8; i++ {
		want := -float64(i)
		if i > 3 {
			want = float64(i) * 2
		}
		if bv[i] != want {
			t.Fatalf("b[%d] = %v, want %v", i, bv[i], want)
		}
	}
}

func TestTernaryNested(t *testing.T) {
	p, _ := run(t, `
float r;
int main(void) {
    int x = 5;
    r = x > 10 ? 1.0 : x > 3 ? 2.0 : 3.0;
    return 0;
}
`)
	if got := scalar(t, p, "r"); got != 2 {
		t.Fatalf("nested ternary = %v, want 2", got)
	}
}

func TestTernaryLazyEvaluation(t *testing.T) {
	// The untaken branch must not evaluate (guarded division).
	p, _ := run(t, `
float r;
int main(void) {
    int z = 0;
    r = z == 0 ? 7.0 : 10 / z;
    return 0;
}
`)
	if got := scalar(t, p, "r"); got != 7 {
		t.Fatalf("r = %v, want 7", got)
	}
}
