package interp

import (
	"comp/internal/minic"
)

// Direction of a transfer relative to the device.
type Direction int

// Directions.
const (
	DirIn  Direction = iota // host -> device
	DirOut                  // device -> host
	DirNone
)

// TransferSpec is one resolved pragma item: sizes evaluated, buffer
// lifetime decisions made.
type TransferSpec struct {
	Item minic.TransferItem
	Dir  Direction
	// Dest is the device buffer name.
	Dest string
	// Elems is the element count (0 for scalars), Bytes the wire size.
	Elems int64
	Bytes int64
	// AllocBytes is the device buffer size this item implies (set for any
	// item that allocates, including nocopy items that move no data).
	AllocBytes int64
	// DestOffsetBytes is the resolved byte offset of the transfer within
	// the device buffer (for h2d writes; 0 otherwise).
	DestOffsetBytes int64
	// Alloc / Free are the resolved lifetime decisions for the device
	// buffer (LEO defaults: allocate before, free after, each offload).
	Alloc bool
	Free  bool
	// Scalar marks a by-value scalar copy.
	Scalar bool
}

// OffloadOp describes one executed offload region: its transfers, its
// synchronization tags, and the work measured while the region's body ran
// on the device.
type OffloadOp struct {
	Pragma  *minic.Pragma
	Specs   []TransferSpec
	Wait    string
	Signal  string
	Persist bool
	Work    Work
	// DevTouched lists the device buffers (and the byte ranges within
	// them) the kernel body actually accessed, recorded while the
	// interpreter executed it. The runtime uses this to detect pipelining
	// races: a DMA overwriting a range while a kernel using it is still
	// in flight.
	DevTouched []BufferRange
}

// BufferRange is a touched byte range within a device buffer.
type BufferRange struct {
	Name      string
	StartByte int64
	EndByte   int64 // exclusive
}

// InBytes sums host-to-device payload.
func (op *OffloadOp) InBytes() int64 {
	var n int64
	for _, s := range op.Specs {
		if s.Dir == DirIn {
			n += s.Bytes
		}
	}
	return n
}

// OutBytes sums device-to-host payload.
func (op *OffloadOp) OutBytes() int64 {
	var n int64
	for _, s := range op.Specs {
		if s.Dir == DirOut {
			n += s.Bytes
		}
	}
	return n
}

// TransferOp describes one offload_transfer pragma execution.
type TransferOp struct {
	Pragma *minic.Pragma
	Specs  []TransferSpec
	Wait   string
	Signal string
}

// Backend receives the interpreter's machine-visible operations in program
// order. Implementations map them to time (internal/runtime) or just count
// them (test fakes).
type Backend interface {
	// HostCompute reports host work accumulated since the previous
	// operation.
	HostCompute(w Work)
	// Offload reports a synchronous offload region (allocate, move inputs,
	// run kernel, move outputs, free). An error aborts the program; the
	// canonical one is device OOM. A backend is free to recover instead of
	// erroring — retry transient failures, or run the region some other
	// way (internal/runtime degrades to a staging buffer and then to the
	// host) — as long as any signal tag the program expects still fires.
	Offload(op *OffloadOp) error
	// Transfer reports an asynchronous offload_transfer.
	Transfer(op *TransferOp) error
	// OffloadWait reports an offload_wait barrier on a signal tag.
	OffloadWait(tag string)
}

// NullBackend discards all operations; useful for pure value execution.
type NullBackend struct{}

// HostCompute implements Backend.
func (NullBackend) HostCompute(Work) {}

// Offload implements Backend.
func (NullBackend) Offload(*OffloadOp) error { return nil }

// Transfer implements Backend.
func (NullBackend) Transfer(*TransferOp) error { return nil }

// OffloadWait implements Backend.
func (NullBackend) OffloadWait(string) {}
