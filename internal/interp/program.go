package interp

import (
	"bytes"
	"fmt"

	"comp/internal/minic"
)

// Program is a compiled MiniC program ready to execute.
type Program struct {
	file  *minic.File
	check *minic.CheckResult

	gvars map[string]*gvar
	funcs map[string]*cfunc

	// Device-side memory (one coprocessor).
	devArr  map[string]*Array
	devCell map[string]*Cell

	out bytes.Buffer

	// sharedAllocs counts offload_shared_malloc calls (Table III's
	// "dynamic shared allocations").
	sharedAllocs int64

	// engine, when set, replaces the tree-walker for Run (internal/vm);
	// engineErr records why the default factory declined this program.
	engine    Engine
	engineErr error

	// loopBudget caps total loop iterations per Run (0 = unlimited);
	// enforced identically by the tree-walker and engines. See
	// SetLoopBudget.
	loopBudget int64
}

type gvar struct {
	name    string
	typ     minic.Type
	elem    minic.Type // element type for arrays/pointers, nil for scalars
	arrayly bool
	shared  bool
	cell    Cell
	arr     *Array
	decl    *minic.VarDecl
}

// Compile parses, checks, and compiles a MiniC source text.
func Compile(src string) (*Program, error) {
	f, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileFile(f)
}

// CompileFile checks and compiles a parsed file.
func CompileFile(f *minic.File) (*Program, error) {
	res := minic.Check(f)
	if err := res.Err(); err != nil {
		return nil, err
	}
	p := &Program{
		file:    f,
		check:   res,
		gvars:   map[string]*gvar{},
		funcs:   map[string]*cfunc{},
		devArr:  map[string]*Array{},
		devCell: map[string]*Cell{},
	}
	c := &compiler{prog: p}
	if err := c.compile(); err != nil {
		return nil, err
	}
	if err := p.initGlobals(); err != nil {
		return nil, err
	}
	if mk := defaultEngineFactory(); mk != nil {
		if eng, err := mk(p); err != nil {
			p.engineErr = err // fall back to the tree-walker
		} else {
			p.engine = eng
		}
	}
	return p, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(src string) *Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// initGlobals allocates global arrays and evaluates scalar initializers.
func (p *Program) initGlobals() error {
	for _, g := range p.gvars {
		if !g.arrayly {
			if g.decl != nil && g.decl.Init != nil {
				v, ok := constFloat(g.decl.Init)
				if !ok {
					return fmt.Errorf("interp: global %s initializer must be constant", g.name)
				}
				g.cell.V = v
			}
			continue
		}
		if arr, ok := g.typ.(*minic.Array); ok && arr.Len != nil {
			n, ok := constIntExpr(arr.Len)
			if !ok {
				return fmt.Errorf("interp: global array %s needs a constant length", g.name)
			}
			g.arr = NewArrayFor(g.name, g.elem, n)
		}
		// Pointer globals stay nil until malloc'd or injected.
	}
	return nil
}

// Reset zeroes global state: arrays are re-created, scalars re-initialized,
// device memory and captured output cleared. It lets one compiled program
// run multiple times from a clean slate.
func (p *Program) Reset() error {
	p.devArr = map[string]*Array{}
	p.devCell = map[string]*Cell{}
	p.out.Reset()
	p.sharedAllocs = 0
	for _, g := range p.gvars {
		g.cell.V = 0
		g.arr = nil
	}
	return p.initGlobals()
}

// Run executes main() against the backend. Runtime faults (device OOM,
// missing device data, bounds) are returned as *RuntimeError.
func (p *Program) Run(b Backend) (err error) {
	main := p.funcs["main"]
	if main == nil {
		return fmt.Errorf("interp: program has no main function")
	}
	if len(main.params) > 0 {
		return fmt.Errorf("interp: main takes no parameters")
	}
	if p.engine != nil {
		return p.engine.Run(p, b)
	}
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(*RuntimeError); ok {
				err = re
				return
			}
			panic(r)
		}
	}()
	env := &Env{p: p, backend: b, work: &Work{}}
	if p.loopBudget > 0 {
		env.budgetOn = true
		env.budget = p.loopBudget
	}
	env.call(main, nil, nil)
	// Flush trailing host work.
	if !env.work.Zero() {
		b.HostCompute(*env.work)
		*env.work = Work{}
	}
	return nil
}

// Output returns everything printf wrote.
func (p *Program) Output() string { return p.out.String() }

// SharedAllocs returns the number of offload_shared_malloc calls executed.
func (p *Program) SharedAllocs() int64 { return p.sharedAllocs }

// Scalar returns a global scalar's current value.
func (p *Program) Scalar(name string) (float64, error) {
	g := p.gvars[name]
	if g == nil || g.arrayly {
		return 0, fmt.Errorf("interp: no scalar global %q", name)
	}
	return g.cell.V, nil
}

// SetScalar stores a global scalar, for input injection.
func (p *Program) SetScalar(name string, v float64) error {
	g := p.gvars[name]
	if g == nil || g.arrayly {
		return fmt.Errorf("interp: no scalar global %q", name)
	}
	g.cell.V = v
	return nil
}

// ArrayData returns the backing data of a global array (host side).
func (p *Program) ArrayData(name string) ([]float64, error) {
	g := p.gvars[name]
	if g == nil || !g.arrayly || g.arr == nil {
		return nil, fmt.Errorf("interp: no allocated array global %q", name)
	}
	return g.arr.Data, nil
}

// SetArray replaces a global array/pointer's storage with the given data
// (one float per element for scalar arrays). The element layout comes from
// the declared type.
func (p *Program) SetArray(name string, data []float64) error {
	g := p.gvars[name]
	if g == nil || !g.arrayly {
		return fmt.Errorf("interp: no array global %q", name)
	}
	fields := 1
	var fieldOff map[string]int
	if st, ok := g.elem.(*minic.StructType); ok {
		fields = len(st.Fields)
		fieldOff = map[string]int{}
		for i, fl := range st.Fields {
			fieldOff[fl.Name] = i
		}
	}
	if len(data)%fields != 0 {
		return fmt.Errorf("interp: data length %d not a multiple of %d fields", len(data), fields)
	}
	g.arr = &Array{Name: name, Data: data, Fields: fields, FieldOff: fieldOff, ElemBytes: g.elem.Size()}
	return nil
}

// DeviceArray returns a device buffer's data, or nil if absent; tests use
// it to assert transfer semantics.
func (p *Program) DeviceArray(name string) []float64 {
	if a := p.devArr[name]; a != nil {
		return a.Data
	}
	return nil
}

// File returns the compiled file (for transforms and reporting).
func (p *Program) File() *minic.File { return p.file }

func constIntExpr(e minic.Expr) (int64, bool) {
	v, ok := constFloat(e)
	if !ok {
		return 0, false
	}
	return int64(v), true
}

func constFloat(e minic.Expr) (float64, bool) {
	switch x := e.(type) {
	case *minic.IntLit:
		return float64(x.Value), true
	case *minic.FloatLit:
		return x.Value, true
	case *minic.ParenExpr:
		return constFloat(x.X)
	case *minic.UnaryExpr:
		if x.Op == "-" {
			v, ok := constFloat(x.X)
			return -v, ok
		}
	case *minic.BinaryExpr:
		a, ok1 := constFloat(x.X)
		b, ok2 := constFloat(x.Y)
		if ok1 && ok2 {
			switch x.Op {
			case "+":
				return a + b, true
			case "-":
				return a - b, true
			case "*":
				return a * b, true
			case "/":
				if b != 0 {
					return a / b, true
				}
			}
		}
	}
	return 0, false
}
