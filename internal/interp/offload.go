package interp

import (
	"sort"

	"comp/internal/analysis"
	"comp/internal/minic"
)

// loopIndexName extracts the induction variable name syntactically.
func loopIndexName(fs *minic.ForStmt) string {
	switch init := fs.Init.(type) {
	case *minic.AssignStmt:
		if id, ok := init.LHS.(*minic.Ident); ok {
			return id.Name
		}
	case *minic.DeclStmt:
		return init.Decl.Name
	}
	return ""
}

func (c *compiler) compileFor(fs *minic.ForStmt) (stmtFn, error) {
	var offload, omp *minic.Pragma
	for _, p := range fs.Pragmas {
		switch p.Kind {
		case minic.PragmaOffload:
			offload = p
		case minic.PragmaOmpParallelFor:
			omp = p
		}
	}

	c.push()
	defer c.pop()

	var initFn stmtFn
	var err error
	if fs.Init != nil {
		initFn, err = c.compileStmt(fs.Init)
		if err != nil {
			return nil, err
		}
	}
	var cond cx
	hasCond := fs.Cond != nil
	if hasCond {
		cond, err = c.compileExpr(fs.Cond)
		if err != nil {
			return nil, err
		}
	}
	var postFn stmtFn
	if fs.Post != nil {
		postFn, err = c.compileStmt(fs.Post)
		if err != nil {
			return nil, err
		}
	}

	ivar := loopIndexName(fs)
	c.loopVars = append(c.loopVars, ivar)
	body, err := c.compileBlock(fs.Body)
	c.loopVars = c.loopVars[:len(c.loopVars)-1]
	if err != nil {
		return nil, err
	}

	// Static vectorizability for parallel loops.
	vec := false
	if omp != nil {
		if info, aerr := analysis.Analyze(fs, c.prog.file); aerr == nil {
			vec = info.Vectorizable()
		}
	}

	pos := fs.Pos()
	condW, condB, condIrr := cond.w, cond.b, cond.irr
	rawLoop := func(env *Env) ctl {
		if initFn != nil {
			if cc := initFn(env); cc == ctlReturn {
				return cc
			}
		}
		for iter := int64(0); ; iter++ {
			if iter > maxLoopIters {
				throw(rtErrf(pos, "for loop exceeded %d iterations", int64(maxLoopIters)))
			}
			env.spendIteration(pos)
			if hasCond {
				env.addWork(condW, condB, condIrr)
				if cond.f(env) == 0 {
					return ctlNormal
				}
			}
			switch body(env) {
			case ctlBreak:
				return ctlNormal
			case ctlReturn:
				return ctlReturn
			}
			if postFn != nil {
				postFn(env)
			}
		}
	}

	// countingLoop additionally reports the iteration count.
	countingLoop := func(env *Env) (ctl, int64) {
		var iters int64
		if initFn != nil {
			if cc := initFn(env); cc == ctlReturn {
				return cc, iters
			}
		}
		for {
			env.spendIteration(pos)
			if hasCond {
				env.addWork(condW, condB, condIrr)
				if cond.f(env) == 0 {
					return ctlNormal, iters
				}
			}
			iters++
			switch body(env) {
			case ctlBreak:
				return ctlNormal, iters
			case ctlReturn:
				return ctlReturn, iters
			}
			if postFn != nil {
				postFn(env)
			}
		}
	}

	parallelLoop := rawLoop
	if omp != nil {
		parallelLoop = func(env *Env) ctl {
			if env.parallel {
				// Nested parallelism is disabled (OpenMP default): the
				// inner loop just runs in the enclosing parallel context.
				return rawLoop(env)
			}
			env.parallel = true
			env.vec = vec
			cc, iters := countingLoop(env)
			env.parallel = false
			env.vec = false
			env.work.ParIters += iters
			return cc
		}
	}

	if offload == nil {
		return parallelLoop, nil
	}

	specs, err := c.compileSpecs(offload)
	if err != nil {
		return nil, err
	}
	return func(env *Env) ctl {
		if env.onDevice {
			throw(rtErrf(pos, "nested offload"))
		}
		env.flushHost()
		resolved := evalSpecs(env, specs, pos)
		applyIn(env, specs, resolved, pos)
		kernelWork := Work{}
		savedWork := env.work
		env.work = &kernelWork
		env.onDevice = true
		env.devTouched = map[string]*elemRange{}
		cc := parallelLoop(env)
		var touched []BufferRange
		for name, rg := range env.devTouched {
			elemBytes := int64(8)
			if a := env.p.devArr[name]; a != nil {
				elemBytes = a.ElemBytes
			}
			touched = append(touched, BufferRange{
				Name:      name,
				StartByte: rg.lo * elemBytes,
				EndByte:   (rg.hi + 1) * elemBytes,
			})
		}
		sort.Slice(touched, func(i, j int) bool { return touched[i].Name < touched[j].Name })
		env.devTouched = nil
		env.onDevice = false
		env.work = savedWork
		op := &OffloadOp{
			Pragma:     offload,
			Specs:      resolved,
			Wait:       offload.Wait,
			Signal:     offload.Signal,
			Persist:    offload.Persist,
			Work:       kernelWork,
			DevTouched: touched,
		}
		if err := env.backend.Offload(op); err != nil {
			throw(rtErrf(pos, "offload failed: %v", err))
		}
		applyOut(env, specs, resolved, pos)
		applyFrees(env, resolved)
		return cc
	}, nil
}

func (c *compiler) compilePragmaStmt(x *minic.PragmaStmt) (stmtFn, error) {
	p := x.P
	pos := x.Pos()
	switch p.Kind {
	case minic.PragmaOffloadWait:
		tag := p.Wait
		return func(env *Env) ctl {
			env.flushHost()
			env.backend.OffloadWait(tag)
			return ctlNormal
		}, nil
	case minic.PragmaOffloadTransfer:
		specs, err := c.compileSpecs(p)
		if err != nil {
			return nil, err
		}
		return func(env *Env) ctl {
			env.flushHost()
			resolved := evalSpecs(env, specs, pos)
			applyIn(env, specs, resolved, pos)
			op := &TransferOp{Pragma: p, Specs: resolved, Wait: p.Wait, Signal: p.Signal}
			if err := env.backend.Transfer(op); err != nil {
				throw(rtErrf(pos, "offload_transfer failed: %v", err))
			}
			applyOut(env, specs, resolved, pos)
			applyFrees(env, resolved)
			return ctlNormal
		}, nil
	}
	return nil, c.errf(pos, "pragma %s not valid as a statement", p.Kind)
}

func (e *Env) flushHost() {
	if !e.work.Zero() {
		e.backend.HostCompute(*e.work)
		*e.work = Work{}
	}
}

// cspec is a compiled transfer item.
type cspec struct {
	item      minic.TransferItem
	dir       Direction
	scalar    bool
	elem      minic.Type
	elemBytes int64
	start     *cx
	length    *cx
	intoStart *cx
	allocIf   *cx
	freeIf    *cx
	// Host-side resolver for the host end of the copy (the Name side for
	// in/nocopy, the Into side for out). Nil for scalars and for device-
	// only names.
	hostName string
	devName  string
	// defaults when alloc_if/free_if are absent.
	defAlloc bool
	defFree  bool
}

// compileSpecs compiles every item of an offload/offload_transfer pragma.
func (c *compiler) compileSpecs(p *minic.Pragma) ([]*cspec, error) {
	var out []*cspec
	defAlloc, defFree := true, true
	if p.Kind == minic.PragmaOffloadTransfer {
		// Asynchronous transfers default to persistent buffers: the data
		// must survive until a later offload consumes it.
		defFree = false
	}
	add := func(items []minic.TransferItem, dir Direction) error {
		for _, it := range items {
			sp, err := c.compileSpec(it, dir, defAlloc, defFree)
			if err != nil {
				return err
			}
			out = append(out, sp)
		}
		return nil
	}
	if err := add(p.In, DirIn); err != nil {
		return nil, err
	}
	// inout items become one in-spec plus one out-spec; the in side owns
	// allocation, the out side owns freeing.
	for _, it := range p.InOut {
		inSpec, err := c.compileSpec(it, DirIn, defAlloc, false)
		if err != nil {
			return nil, err
		}
		inSpec.defFree = false
		outSpec, err := c.compileSpec(it, DirOut, false, defFree)
		if err != nil {
			return nil, err
		}
		outSpec.defAlloc = false
		out = append(out, inSpec, outSpec)
	}
	if err := add(p.Out, DirOut); err != nil {
		return nil, err
	}
	if err := add(p.NoCopy, DirNone); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *compiler) compileSpec(it minic.TransferItem, dir Direction, defAlloc, defFree bool) (*cspec, error) {
	bnd, ok := c.lookup(it.Name)
	if !ok {
		return nil, c.errf(minic.Pos{}, "pragma item %s undefined", it.Name)
	}
	sp := &cspec{item: it, dir: dir, defAlloc: defAlloc, defFree: defFree}
	if !isRefType(bnd.typ) || it.Length == nil {
		// Scalar copied by value.
		sp.scalar = true
		sp.elem = bnd.typ
		sp.elemBytes = bnd.typ.Size()
		sp.hostName = it.Name
		sp.devName = it.Dest()
		return sp, nil
	}
	sp.elem = minic.ElemOf(bnd.typ)
	sp.elemBytes = sp.elem.Size()
	switch dir {
	case DirOut:
		// Name is the device side; Into (or Name) is the host side.
		sp.devName = it.Name
		sp.hostName = it.Dest()
	default:
		sp.hostName = it.Name
		sp.devName = it.Dest()
	}
	compileOpt := func(e minic.Expr) (*cx, error) {
		if e == nil {
			return nil, nil
		}
		v, err := c.compileExpr(e)
		if err != nil {
			return nil, err
		}
		return &v, nil
	}
	var err error
	if sp.start, err = compileOpt(it.Start); err != nil {
		return nil, err
	}
	if sp.length, err = compileOpt(it.Length); err != nil {
		return nil, err
	}
	if sp.intoStart, err = compileOpt(it.IntoStart); err != nil {
		return nil, err
	}
	if sp.allocIf, err = compileOpt(it.AllocIf); err != nil {
		return nil, err
	}
	if sp.freeIf, err = compileOpt(it.FreeIf); err != nil {
		return nil, err
	}
	return sp, nil
}

// evalSpecs resolves compiled specs against the current host state.
func evalSpecs(env *Env, specs []*cspec, pos minic.Pos) []TransferSpec {
	out := make([]TransferSpec, len(specs))
	for i, sp := range specs {
		ts := TransferSpec{Item: sp.item, Dir: sp.dir, Dest: sp.devName, Scalar: sp.scalar}
		if sp.scalar {
			ts.Bytes = sp.elemBytes
			ts.Alloc = false
			ts.Free = false
			out[i] = ts
			continue
		}
		n := int64(0)
		if sp.length != nil {
			n = int64(sp.length.f(env))
			if n < 0 {
				throw(rtErrf(pos, "negative transfer length %d for %s", n, sp.item.Name))
			}
		}
		ts.Elems = n
		ts.AllocBytes = n * sp.elemBytes
		if sp.dir != DirNone {
			ts.Bytes = n * sp.elemBytes
		}
		if sp.dir == DirIn {
			// Resolve the destination byte offset for race detection.
			switch {
			case sp.intoStart != nil:
				ts.DestOffsetBytes = int64(sp.intoStart.f(env)) * sp.elemBytes
			case sp.item.Into == "" && sp.start != nil:
				ts.DestOffsetBytes = int64(sp.start.f(env)) * sp.elemBytes
			}
		}
		ts.Alloc = sp.defAlloc
		if sp.allocIf != nil {
			ts.Alloc = sp.allocIf.f(env) != 0
		}
		ts.Free = sp.defFree
		if sp.freeIf != nil {
			ts.Free = sp.freeIf.f(env) != 0
		}
		out[i] = ts
	}
	return out
}

// hostArrayFor resolves the host storage of a named array.
func hostArrayFor(env *Env, name string, pos minic.Pos) *Array {
	g := env.p.gvars[name]
	if g == nil || !g.arrayly {
		throw(rtErrf(pos, "pragma item %s is not a global array", name))
	}
	if g.arr == nil {
		throw(rtErrf(pos, "array %s has no storage", name))
	}
	return g.arr
}

// devBufferShape returns element layout info for creating a device buffer
// named after a declared variable.
func devBufferShape(env *Env, name string, elems int64, pos minic.Pos) *Array {
	g := env.p.gvars[name]
	if g == nil || !g.arrayly {
		throw(rtErrf(pos, "device buffer %s must be a declared array or pointer", name))
	}
	return NewArrayFor(name, g.elem, elems)
}

// applyIn performs device allocation and host->device value copies.
func applyIn(env *Env, specs []*cspec, resolved []TransferSpec, pos minic.Pos) {
	for i, sp := range specs {
		ts := resolved[i]
		if sp.scalar {
			if sp.dir == DirIn || sp.dir == DirNone {
				g := env.p.gvars[sp.hostName]
				if g == nil {
					throw(rtErrf(pos, "scalar %s is not global; only globals can be transferred", sp.hostName))
				}
				cell := env.p.devCell[sp.devName]
				if cell == nil {
					cell = &Cell{}
					env.p.devCell[sp.devName] = cell
				}
				cell.V = g.cell.V
			}
			continue
		}
		if ts.Alloc {
			env.p.devArr[sp.devName] = devBufferShape(env, sp.devName, ts.Elems, pos)
		}
		if sp.dir != DirIn {
			continue
		}
		dst := env.p.devArr[sp.devName]
		if dst == nil {
			throw(rtErrf(pos, "device buffer %s used before allocation (alloc_if(0) without a prior alloc?)", sp.devName))
		}
		src := hostArrayFor(env, sp.hostName, pos)
		srcOff := int64(0)
		if sp.start != nil {
			srcOff = int64(sp.start.f(env))
		}
		dstOff := int64(0)
		if sp.intoStart != nil {
			dstOff = int64(sp.intoStart.f(env))
		} else if sp.item.Into == "" {
			// LEO: a section without into() occupies the same offsets in
			// the device copy of the array.
			dstOff = srcOff
		}
		copySection(src, srcOff, dst, dstOff, ts.Elems, pos)
	}
}

// applyOut performs device->host value copies.
func applyOut(env *Env, specs []*cspec, resolved []TransferSpec, pos minic.Pos) {
	for i, sp := range specs {
		ts := resolved[i]
		if sp.dir != DirOut {
			continue
		}
		if sp.scalar {
			if cell := env.p.devCell[sp.devName]; cell != nil {
				g := env.p.gvars[sp.hostName]
				if g == nil {
					throw(rtErrf(pos, "scalar %s is not global", sp.hostName))
				}
				g.cell.V = cell.V
			}
			continue
		}
		src := env.p.devArr[sp.devName]
		if src == nil {
			throw(rtErrf(pos, "device buffer %s not present for out transfer", sp.devName))
		}
		dst := hostArrayFor(env, sp.hostName, pos)
		srcOff := int64(0)
		if sp.start != nil {
			srcOff = int64(sp.start.f(env))
		}
		dstOff := int64(0)
		if sp.intoStart != nil {
			dstOff = int64(sp.intoStart.f(env))
		} else if sp.item.Into == "" {
			dstOff = srcOff
		}
		copySection(src, srcOff, dst, dstOff, ts.Elems, pos)
	}
}

// applyFrees drops device buffers whose specs request freeing.
func applyFrees(env *Env, resolved []TransferSpec) {
	for _, ts := range resolved {
		if ts.Free && !ts.Scalar {
			delete(env.p.devArr, ts.Dest)
		}
	}
}

func copySection(src *Array, srcOff int64, dst *Array, dstOff, elems int64, pos minic.Pos) {
	if src.Fields != dst.Fields {
		throw(rtErrf(pos, "transfer between %s and %s with different element layouts", src.Name, dst.Name))
	}
	f := int64(src.Fields)
	if srcOff < 0 || srcOff+elems > int64(src.Len()) {
		throw(rtErrf(pos, "transfer section [%d,%d) out of range for %s (len %d)", srcOff, srcOff+elems, src.Name, src.Len()))
	}
	if dstOff < 0 || dstOff+elems > int64(dst.Len()) {
		throw(rtErrf(pos, "transfer section [%d,%d) out of range for %s (len %d)", dstOff, dstOff+elems, dst.Name, dst.Len()))
	}
	copy(dst.Data[dstOff*f:(dstOff+elems)*f], src.Data[srcOff*f:(srcOff+elems)*f])
}
