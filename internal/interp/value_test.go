package interp

import (
	"math"
	"testing"

	"comp/internal/minic"
)

func TestWorkAccounting(t *testing.T) {
	var w Work
	if !w.Zero() {
		t.Fatal("zero Work not Zero")
	}
	w.Add(Work{
		Serial:   Bucket{Flops: 10, Bytes: 4},
		Vec:      Bucket{Flops: 100, Bytes: 40, IrrBytes: 8},
		Scalar:   Bucket{Flops: 1},
		ParIters: 7,
	})
	w.Add(Work{Vec: Bucket{Flops: 50}})
	if w.Zero() {
		t.Fatal("non-empty Work reports Zero")
	}
	if w.TotalFlops() != 161 {
		t.Fatalf("TotalFlops = %v, want 161", w.TotalFlops())
	}
	if w.TotalBytes() != 44 {
		t.Fatalf("TotalBytes = %v, want 44", w.TotalBytes())
	}
	if w.ParIters != 7 {
		t.Fatalf("ParIters = %d", w.ParIters)
	}
	if got := w.Vec.IrregularFrac(); got != 8.0/40 {
		t.Fatalf("IrregularFrac = %v, want 0.2", got)
	}
	if (Bucket{}).IrregularFrac() != 0 {
		t.Fatal("empty bucket IrregularFrac != 0")
	}
}

func TestArrayShapes(t *testing.T) {
	st := &minic.StructType{Name: "p", Fields: []minic.StructField{
		{Name: "x", Type: minic.FloatType},
		{Name: "y", Type: minic.FloatType},
		{Name: "m", Type: minic.DoubleType},
	}}
	a := NewArrayFor("pts", st, 10)
	if a.Len() != 10 || a.Fields != 3 {
		t.Fatalf("len=%d fields=%d", a.Len(), a.Fields)
	}
	if a.Bytes() != 10*16 {
		t.Fatalf("Bytes = %d, want 160", a.Bytes())
	}
	if a.FieldOff["m"] != 2 {
		t.Fatalf("field offset m = %d", a.FieldOff["m"])
	}
	c := a.CloneShape("pts2", 4)
	if c.Len() != 4 || c.Fields != 3 || c.ElemBytes != a.ElemBytes {
		t.Fatalf("CloneShape = %+v", c)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative length array accepted")
		}
	}()
	NewArrayFor("bad", minic.FloatType, -1)
}

func TestMustCompileAndFile(t *testing.T) {
	p := MustCompile("int main(void) { return 0; }")
	if p.File() == nil {
		t.Fatal("File() nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile on bad source did not panic")
		}
	}()
	MustCompile("int main( {")
}

func TestCompoundAssignmentOperators(t *testing.T) {
	p, _ := run(t, `
float fr;
int ir;
int main(void) {
    float f = 10.0;
    f += 2.5;
    f -= 0.5;
    f *= 2.0;
    f /= 4.0;
    fr = f;
    int k = 13;
    k %= 5;
    ir = k;
    return 0;
}
`)
	if got := scalar(t, p, "fr"); got != 6.0 {
		t.Fatalf("float compound chain = %v, want 6", got)
	}
	if got := scalar(t, p, "ir"); got != 3 {
		t.Fatalf("int %%= result = %v, want 3", got)
	}
}

func TestShiftOperators(t *testing.T) {
	p, _ := run(t, `
int a;
int b;
int main(void) {
    a = 3 << 4;
    b = 256 >> 3;
    return 0;
}
`)
	if scalar(t, p, "a") != 48 || scalar(t, p, "b") != 32 {
		t.Fatalf("shifts = %v, %v", scalar(t, p, "a"), scalar(t, p, "b"))
	}
}

func TestLogicalOperatorsShortCircuit(t *testing.T) {
	// The right side of && must not evaluate when the left is false:
	// otherwise the guarded division faults.
	p, _ := run(t, `
float r;
int main(void) {
    int z = 0;
    if (z != 0 && 10 / z > 1) {
        r = 1.0;
    } else {
        r = 2.0;
    }
    if (z == 0 || 10 / z > 1) {
        r = r + 10.0;
    }
    return 0;
}
`)
	if got := scalar(t, p, "r"); got != 12 {
		t.Fatalf("r = %v, want 12", got)
	}
}

func TestUnaryNotAndNegation(t *testing.T) {
	p, _ := run(t, `
float r;
int main(void) {
    float x = -3.5;
    if (!(x > 0.0)) {
        r = -x;
    }
    return 0;
}
`)
	if got := scalar(t, p, "r"); got != 3.5 {
		t.Fatalf("r = %v, want 3.5", got)
	}
}

func TestRuntimeErrorFormatting(t *testing.T) {
	e := &RuntimeError{Pos: minic.Pos{Line: 3, Col: 7}, Msg: "boom"}
	if e.Error() != "runtime: 3:7: boom" {
		t.Fatalf("error = %q", e.Error())
	}
	e2 := &RuntimeError{Msg: "nowhere"}
	if e2.Error() != "runtime: nowhere" {
		t.Fatalf("error = %q", e2.Error())
	}
}

func TestGlobalConstInitializers(t *testing.T) {
	p, _ := run(t, `
double a = 2.0 * (3.0 + 1.0);
double b = -5.5;
double c = 10.0 / 4.0;
double d = 7.0 - 2.0;
int main(void) { return 0; }
`)
	for name, want := range map[string]float64{"a": 8, "b": -5.5, "c": 2.5, "d": 5} {
		if got := scalar(t, p, name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestNaNSafety(t *testing.T) {
	// log of a negative number yields NaN; the interpreter must pass it
	// through rather than corrupt control flow.
	p, _ := run(t, `
double r;
int main(void) {
    r = log(-1.0);
    return 0;
}
`)
	if got := scalar(t, p, "r"); !math.IsNaN(got) {
		t.Fatalf("log(-1) = %v, want NaN", got)
	}
}
