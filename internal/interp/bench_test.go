package interp

import "testing"

// BenchmarkKernelThroughput measures interpreted loop iterations per
// second on a blackscholes-weight body — the figure that bounds how large
// the evaluation workloads can be.
func BenchmarkKernelThroughput(b *testing.B) {
	p := MustCompile(`
float a[16384];
float out[16384];
int n;
int main(void) {
    int i;
    n = 16384;
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        float v = a[i] + 1.0;
        out[i] = sqrt(v) * exp(-v * 0.001) + log(v + 2.0);
    }
    return 0;
}
`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Reset(); err != nil {
			b.Fatal(err)
		}
		if err := p.Run(NullBackend{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(16384*float64(b.N)/b.Elapsed().Seconds(), "iters/s")
}
