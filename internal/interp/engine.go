package interp

import (
	"io"
	"sort"
	"sync"

	"comp/internal/minic"
)

// Engine is an alternative execution engine for a compiled Program. The
// canonical implementation is the bytecode VM in internal/vm; the
// tree-walker in this package is the reference semantics and stays around
// as the differential oracle for every engine.
//
// An Engine must be a drop-in for the tree-walker: bit-identical outputs
// (arrays, scalars, printf), the same Work reported to the Backend at the
// same flush points, and the same *RuntimeError (message and position) on
// every fault.
type Engine interface {
	Run(p *Program, b Backend) error
}

// EngineFactory builds an Engine for a freshly compiled Program. It runs
// at CompileFile time so engine compilation errors surface early; on error
// the Program records the error and falls back to the tree-walker.
type EngineFactory func(p *Program) (Engine, error)

var (
	engineMu      sync.RWMutex
	engineFactory EngineFactory
)

// SetDefaultEngine installs a factory applied to every subsequently
// compiled Program. Passing nil restores the tree-walker default. Intended
// for process startup (the cmd/* -exec flag); concurrent use with
// in-flight compiles is safe but which engine a racing compile sees is
// unspecified.
func SetDefaultEngine(f EngineFactory) {
	engineMu.Lock()
	engineFactory = f
	engineMu.Unlock()
}

func defaultEngineFactory() EngineFactory {
	engineMu.RLock()
	defer engineMu.RUnlock()
	return engineFactory
}

// SetEngine overrides this program's execution engine (nil = tree-walker).
func (p *Program) SetEngine(e Engine) { p.engine = e }

// Engine returns the installed engine, or nil when the tree-walker runs.
func (p *Program) Engine() Engine { return p.engine }

// EngineErr reports why the default engine factory declined this program
// (nil when the engine attached, or when no factory was installed).
func (p *Program) EngineErr() error { return p.engineErr }

// ---- Engine-facing state access ----
//
// The accessors below expose the Program's mutable execution state to
// engines. They exist for internal/vm; nothing else should need them.

// GlobalHandle is an engine's stable handle to one global variable. The
// handle stays valid across Reset: Reset replaces the storage a handle
// points at, not the handle itself.
type GlobalHandle struct{ g *gvar }

// Valid reports whether the handle resolved.
func (h GlobalHandle) Valid() bool { return h.g != nil }

// Name returns the global's declared name.
func (h GlobalHandle) Name() string { return h.g.name }

// IsArray reports whether the global is an array or pointer.
func (h GlobalHandle) IsArray() bool { return h.g.arrayly }

// Shared reports the _Cilk_shared attribute.
func (h GlobalHandle) Shared() bool { return h.g.shared }

// Type returns the declared type.
func (h GlobalHandle) Type() minic.Type { return h.g.typ }

// Elem returns the element type (nil for scalars).
func (h GlobalHandle) Elem() minic.Type { return h.g.elem }

// Cell returns the host-side scalar storage (meaningful for scalars).
func (h GlobalHandle) Cell() *Cell { return &h.g.cell }

// Arr returns the current host-side array storage (nil when unallocated).
func (h GlobalHandle) Arr() *Array { return h.g.arr }

// SetArr rebinds the host-side array storage (global pointer assignment).
func (h GlobalHandle) SetArr(a *Array) { h.g.arr = a }

// Global resolves a global by name; the second result reports success.
func (p *Program) Global(name string) (GlobalHandle, bool) {
	g, ok := p.gvars[name]
	return GlobalHandle{g: g}, ok
}

// GlobalNames returns every global's name in sorted order.
func (p *Program) GlobalNames() []string {
	names := make([]string, 0, len(p.gvars))
	for n := range p.gvars {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DevBuf returns the device copy of a buffer, or nil.
func (p *Program) DevBuf(name string) *Array { return p.devArr[name] }

// SetDevBuf installs a device buffer (offload allocation).
func (p *Program) SetDevBuf(name string, a *Array) { p.devArr[name] = a }

// DropDevBuf frees a device buffer (free_if semantics).
func (p *Program) DropDevBuf(name string) { delete(p.devArr, name) }

// DevScalar returns the device copy of a scalar, or nil if it was never
// transferred or written on the device.
func (p *Program) DevScalar(name string) *Cell { return p.devCell[name] }

// EnsureDevScalar returns the device copy of a scalar, creating it zeroed
// on first use (device-side store semantics).
func (p *Program) EnsureDevScalar(name string) *Cell {
	c := p.devCell[name]
	if c == nil {
		c = &Cell{}
		p.devCell[name] = c
	}
	return c
}

// OutWriter returns the printf sink.
func (p *Program) OutWriter() io.Writer { return &p.out }

// NoteSharedAlloc counts one offload_shared_malloc call.
func (p *Program) NoteSharedAlloc() { p.sharedAllocs++ }

// LoopBudget returns the configured per-run loop-iteration budget
// (0 = unlimited).
func (p *Program) LoopBudget() int64 { return p.loopBudget }

// SetLoopBudget caps the total loop iterations a single Run may execute
// across all loops (0 = unlimited). Both the tree-walker and any engine
// enforce the cap at the same program points with the same error, so
// differential harnesses can bound adversarial inputs without risking
// divergence. Intended for fuzzing; normal execution leaves it off.
func (p *Program) SetLoopBudget(n int64) { p.loopBudget = n }
