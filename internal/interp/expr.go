package interp

import (
	"fmt"
	"math"

	"comp/internal/minic"
)

// compileExpr compiles a numeric-valued expression.
func (c *compiler) compileExpr(e minic.Expr) (cx, error) {
	switch x := e.(type) {
	case *minic.IntLit:
		v := float64(x.Value)
		return cx{f: func(*Env) float64 { return v }}, nil
	case *minic.FloatLit:
		v := x.Value
		return cx{f: func(*Env) float64 { return v }}, nil
	case *minic.SizeofExpr:
		v := float64(x.Of.Size())
		return cx{f: func(*Env) float64 { return v }}, nil
	case *minic.ParenExpr:
		return c.compileExpr(x.X)
	case *minic.Ident:
		return c.compileIdent(x)
	case *minic.UnaryExpr:
		return c.compileUnary(x)
	case *minic.BinaryExpr:
		return c.compileBinary(x)
	case *minic.IndexExpr:
		return c.compileIndexRead(x, "")
	case *minic.MemberExpr:
		ie, ok := x.X.(*minic.IndexExpr)
		if !ok {
			return cx{}, c.errf(x.Pos(), "member access requires an indexed struct array")
		}
		return c.compileIndexRead(ie, x.Field)
	case *minic.CallExpr:
		return c.compileCall(x)
	case *minic.CondExpr:
		cond, err := c.compileExpr(x.Cond)
		if err != nil {
			return cx{}, err
		}
		then, err := c.compileExpr(x.Then)
		if err != nil {
			return cx{}, err
		}
		els, err := c.compileExpr(x.Else)
		if err != nil {
			return cx{}, err
		}
		// Vectorized hardware evaluates both sides under a mask; charge
		// both for cost, evaluate lazily for values.
		out := cx{
			w:   cond.w + then.w + els.w + 1,
			b:   cond.b + then.b + els.b,
			irr: cond.irr + then.irr + els.irr,
		}
		out.f = func(env *Env) float64 {
			if cond.f(env) != 0 {
				return then.f(env)
			}
			return els.f(env)
		}
		return out, nil
	case *minic.StringLit:
		return cx{f: func(*Env) float64 { return 0 }}, nil
	}
	return cx{}, c.errf(e.Pos(), "unsupported expression %T", e)
}

func (c *compiler) compileIdent(x *minic.Ident) (cx, error) {
	bnd, ok := c.lookup(x.Name)
	if !ok {
		return cx{}, c.errf(x.Pos(), "undefined %s", x.Name)
	}
	switch bnd.kind {
	case bindLocal:
		slot := bnd.slot
		return cx{f: func(env *Env) float64 { return env.f[slot] }}, nil
	case bindGlobal:
		if bnd.g.arrayly {
			return cx{}, c.errf(x.Pos(), "array %s used as a scalar", x.Name)
		}
		g := bnd.g
		name := g.name
		return cx{f: func(env *Env) float64 {
			if env.onDevice {
				if cell := env.p.devCell[name]; cell != nil {
					return cell.V
				}
			}
			return g.cell.V
		}}, nil
	}
	return cx{}, c.errf(x.Pos(), "pointer %s used as a scalar", x.Name)
}

func (c *compiler) compileUnary(x *minic.UnaryExpr) (cx, error) {
	if x.Op == "*" {
		// *p == p[0]
		idx := &minic.IndexExpr{X: x.X, Index: &minic.IntLit{Value: 0}}
		return c.compileIndexRead(idx, "")
	}
	if x.Op == "&" {
		return cx{}, c.errf(x.Pos(), "address-of is only supported inside pragma clauses")
	}
	sub, err := c.compileExpr(x.X)
	if err != nil {
		return cx{}, err
	}
	op := x.Op
	out := cx{w: sub.w + 1, b: sub.b, irr: sub.irr}
	switch op {
	case "-":
		out.f = func(env *Env) float64 { return -sub.f(env) }
	case "!":
		out.f = func(env *Env) float64 { return boolToF(sub.f(env) == 0) }
	default:
		return cx{}, c.errf(x.Pos(), "unsupported unary %q", op)
	}
	return out, nil
}

func (c *compiler) compileBinary(x *minic.BinaryExpr) (cx, error) {
	a, err := c.compileExpr(x.X)
	if err != nil {
		return cx{}, err
	}
	b, err := c.compileExpr(x.Y)
	if err != nil {
		return cx{}, err
	}
	intCtx := false
	if t, ok := x.Type().(*minic.Basic); ok && t.IsInteger() {
		intCtx = true
	}
	out := cx{w: a.w + b.w + 1, b: a.b + b.b, irr: a.irr + b.irr}
	af, bf := a.f, b.f
	switch x.Op {
	case "+":
		out.f = func(env *Env) float64 { return af(env) + bf(env) }
	case "-":
		out.f = func(env *Env) float64 { return af(env) - bf(env) }
	case "*":
		out.f = func(env *Env) float64 { return af(env) * bf(env) }
	case "/":
		if intCtx {
			pos := x.Pos()
			out.f = func(env *Env) float64 {
				d := bf(env)
				if d == 0 {
					throw(rtErrf(pos, "integer division by zero"))
				}
				return math.Trunc(af(env) / d)
			}
		} else {
			out.f = func(env *Env) float64 { return af(env) / bf(env) }
		}
	case "%":
		pos := x.Pos()
		out.f = func(env *Env) float64 {
			d := int64(bf(env))
			if d == 0 {
				throw(rtErrf(pos, "integer modulus by zero"))
			}
			return float64(int64(af(env)) % d)
		}
	case "<<":
		out.f = func(env *Env) float64 { return float64(int64(af(env)) << uint(int64(bf(env)))) }
	case ">>":
		out.f = func(env *Env) float64 { return float64(int64(af(env)) >> uint(int64(bf(env)))) }
	case "==":
		out.f = func(env *Env) float64 { return boolToF(af(env) == bf(env)) }
	case "!=":
		out.f = func(env *Env) float64 { return boolToF(af(env) != bf(env)) }
	case "<":
		out.f = func(env *Env) float64 { return boolToF(af(env) < bf(env)) }
	case "<=":
		out.f = func(env *Env) float64 { return boolToF(af(env) <= bf(env)) }
	case ">":
		out.f = func(env *Env) float64 { return boolToF(af(env) > bf(env)) }
	case ">=":
		out.f = func(env *Env) float64 { return boolToF(af(env) >= bf(env)) }
	case "&&":
		out.f = func(env *Env) float64 {
			if af(env) == 0 {
				return 0
			}
			return boolToF(bf(env) != 0)
		}
	case "||":
		out.f = func(env *Env) float64 {
			if af(env) != 0 {
				return 1
			}
			return boolToF(bf(env) != 0)
		}
	default:
		return cx{}, c.errf(x.Pos(), "unsupported operator %q", x.Op)
	}
	return out, nil
}

// resolveArray builds a side-aware array resolver for a binding.
func (c *compiler) resolveArray(bnd binding, name string, pos minic.Pos) refFn {
	switch bnd.kind {
	case bindLocalRef:
		slot := bnd.slot
		return func(env *Env) *Array {
			a := env.r[slot]
			if a == nil {
				throw(rtErrf(pos, "nil pointer %s", name))
			}
			return a
		}
	case bindGlobal:
		g := bnd.g
		return func(env *Env) *Array {
			if env.onDevice {
				a := env.p.devArr[name]
				if a == nil {
					throw(rtErrf(pos, "array %s is not present on the device (missing in/nocopy clause?)", name))
				}
				return a
			}
			if g.arr == nil {
				throw(rtErrf(pos, "array %s has no storage (not allocated)", name))
			}
			return g.arr
		}
	}
	return nil
}

// compileAccess builds the shared pieces of an array element access. The
// final bool reports whether the base is a global (device-trackable)
// array.
func (c *compiler) compileAccess(x *minic.IndexExpr, field string) (refFn, cx, int, float64, bool, bool, error) {
	id, ok := x.X.(*minic.Ident)
	if !ok {
		if p, isParen := x.X.(*minic.ParenExpr); isParen {
			if id2, ok2 := p.X.(*minic.Ident); ok2 {
				id = id2
				ok = true
			}
		}
	}
	if !ok {
		return nil, cx{}, 0, 0, false, false, c.errf(x.Pos(), "unsupported array base expression")
	}
	bnd, found := c.lookup(id.Name)
	if !found {
		return nil, cx{}, 0, 0, false, false, c.errf(id.Pos(), "undefined %s", id.Name)
	}
	if !isRefType(bnd.typ) {
		return nil, cx{}, 0, 0, false, false, c.errf(id.Pos(), "%s is not an array", id.Name)
	}
	isGlobal := bnd.kind == bindGlobal
	res := c.resolveArray(bnd, id.Name, x.Pos())
	idx, err := c.compileExpr(x.Index)
	if err != nil {
		return nil, cx{}, 0, 0, false, false, err
	}
	elem := minic.ElemOf(bnd.typ)
	elemBytes := float64(elem.Size())
	fieldOff := -1
	if field != "" {
		st, ok := elem.(*minic.StructType)
		if !ok {
			return nil, cx{}, 0, 0, false, false, c.errf(x.Pos(), "%s is not a struct array", id.Name)
		}
		f := st.Field(field)
		if f == nil {
			return nil, cx{}, 0, 0, false, false, c.errf(x.Pos(), "struct %s has no field %s", st.Name, field)
		}
		off := 0
		for _, sf := range st.Fields {
			if sf.Name == field {
				break
			}
			off++
		}
		fieldOff = off
		elemBytes = float64(f.Type.Size())
	}
	// Member walks over struct arrays (AoS) use only part of each cache
	// line even when the subscript is contiguous; charge them as irregular
	// traffic alongside gathered/strided subscripts.
	irregular := c.classifySite(x.Index) || field != ""
	return res, idx, fieldOff, elemBytes, irregular, isGlobal, nil
}

func (c *compiler) compileIndexRead(x *minic.IndexExpr, field string) (cx, error) {
	res, idx, fieldOff, elemBytes, irregular, isGlobal, err := c.compileAccess(x, field)
	if err != nil {
		return cx{}, err
	}
	pos := x.Pos()
	out := cx{w: idx.w + 1, b: idx.b + elemBytes, irr: idx.irr}
	if irregular {
		out.irr += elemBytes
	}
	out.f = func(env *Env) float64 {
		a := res(env)
		i := int64(idx.f(env))
		if i < 0 || i >= int64(a.Len()) {
			throw(rtErrf(pos, "index %d out of range for %s (len %d)", i, a.Name, a.Len()))
		}
		if isGlobal && env.devTouched != nil {
			env.touchDev(a.Name, i)
		}
		off := 0
		if fieldOff >= 0 {
			off = fieldOff
		}
		return a.Data[int(i)*a.Fields+off]
	}
	return out, nil
}

// compileLValue compiles the store and load halves of an assignable
// location. It returns (store, load, weight, bytes, irrBytes, intTyped).
func (c *compiler) compileLValue(e minic.Expr) (func(*Env, float64), func(*Env) float64, float64, float64, float64, bool, error) {
	switch x := e.(type) {
	case *minic.ParenExpr:
		return c.compileLValue(x.X)
	case *minic.Ident:
		bnd, ok := c.lookup(x.Name)
		if !ok {
			return nil, nil, 0, 0, 0, false, c.errf(x.Pos(), "undefined %s", x.Name)
		}
		intTyped := isIntType(bnd.typ)
		switch bnd.kind {
		case bindLocal:
			slot := bnd.slot
			return func(env *Env, v float64) { env.f[slot] = v },
				func(env *Env) float64 { return env.f[slot] }, 0, 0, 0, intTyped, nil
		case bindGlobal:
			if bnd.g.arrayly {
				return nil, nil, 0, 0, 0, false, c.errf(x.Pos(), "cannot assign scalar to array %s", x.Name)
			}
			g := bnd.g
			name := g.name
			store := func(env *Env, v float64) {
				if env.onDevice {
					cell := env.p.devCell[name]
					if cell == nil {
						cell = &Cell{}
						env.p.devCell[name] = cell
					}
					cell.V = v
					return
				}
				g.cell.V = v
			}
			load := func(env *Env) float64 {
				if env.onDevice {
					if cell := env.p.devCell[name]; cell != nil {
						return cell.V
					}
				}
				return g.cell.V
			}
			return store, load, 0, 0, 0, intTyped, nil
		}
		return nil, nil, 0, 0, 0, false, c.errf(x.Pos(), "cannot assign to pointer %s here", x.Name)
	case *minic.UnaryExpr:
		if x.Op == "*" {
			idx := &minic.IndexExpr{X: x.X, Index: &minic.IntLit{Value: 0}}
			return c.compileLValue(idx)
		}
	case *minic.IndexExpr:
		return c.compileIndexLValue(x, "")
	case *minic.MemberExpr:
		if ie, ok := x.X.(*minic.IndexExpr); ok {
			return c.compileIndexLValue(ie, x.Field)
		}
	}
	return nil, nil, 0, 0, 0, false, c.errf(e.Pos(), "unsupported assignment target")
}

func (c *compiler) compileIndexLValue(x *minic.IndexExpr, field string) (func(*Env, float64), func(*Env) float64, float64, float64, float64, bool, error) {
	res, idx, fieldOff, elemBytes, irregular, isGlobal, err := c.compileAccess(x, field)
	if err != nil {
		return nil, nil, 0, 0, 0, false, err
	}
	pos := x.Pos()
	locate := func(env *Env) (*Array, int) {
		a := res(env)
		i := int64(idx.f(env))
		if i < 0 || i >= int64(a.Len()) {
			throw(rtErrf(pos, "index %d out of range for %s (len %d)", i, a.Name, a.Len()))
		}
		if isGlobal && env.devTouched != nil {
			env.touchDev(a.Name, i)
		}
		off := 0
		if fieldOff >= 0 {
			off = fieldOff
		}
		return a, int(i)*a.Fields + off
	}
	store := func(env *Env, v float64) {
		a, k := locate(env)
		a.Data[k] = v
	}
	load := func(env *Env) float64 {
		a, k := locate(env)
		return a.Data[k]
	}
	irr := 0.0
	if irregular {
		irr = elemBytes
	}
	intTyped := false
	if t := x.Type(); t != nil {
		intTyped = isIntType(t)
	}
	return store, load, idx.w + 1, idx.b + elemBytes, idx.irr + irr, intTyped, nil
}

// compileRef compiles a pointer/array-valued expression. elemHint supplies
// the element type for malloc-family calls.
func (c *compiler) compileRef(e minic.Expr, elemHint minic.Type) (refFn, error) {
	switch x := e.(type) {
	case *minic.ParenExpr:
		return c.compileRef(x.X, elemHint)
	case *minic.Ident:
		bnd, ok := c.lookup(x.Name)
		if !ok {
			return nil, c.errf(x.Pos(), "undefined %s", x.Name)
		}
		if !isRefType(bnd.typ) {
			return nil, c.errf(x.Pos(), "%s is not a pointer or array", x.Name)
		}
		res := c.resolveArray(bnd, x.Name, x.Pos())
		return res, nil
	case *minic.IntLit:
		if x.Value == 0 {
			return func(*Env) *Array { return nil }, nil // NULL
		}
	case *minic.CallExpr:
		switch x.Fun.Name {
		case "malloc", "offload_shared_malloc":
			if elemHint == nil {
				elemHint = minic.DoubleType
			}
			if len(x.Args) != 1 {
				return nil, c.errf(x.Pos(), "%s takes one argument", x.Fun.Name)
			}
			sz, err := c.compileExpr(x.Args[0])
			if err != nil {
				return nil, err
			}
			elem := elemHint
			shared := x.Fun.Name == "offload_shared_malloc"
			pos := x.Pos()
			return func(env *Env) *Array {
				bytes := int64(sz.f(env))
				if bytes < 0 {
					throw(rtErrf(pos, "negative allocation size %d", bytes))
				}
				n := bytes / elem.Size()
				if shared {
					env.p.sharedAllocs++
				}
				return NewArrayFor("malloc", elem, n)
			}, nil
		}
	}
	return nil, c.errf(e.Pos(), "unsupported pointer expression %T", e)
}

func (c *compiler) compileCall(x *minic.CallExpr) (cx, error) {
	name := x.Fun.Name
	// free / offload_shared_free are value-level no-ops.
	if name == "free" || name == "offload_shared_free" {
		return cx{f: func(*Env) float64 { return 0 }}, nil
	}
	if name == "printf" {
		return c.compilePrintf(x)
	}
	if b, ok := minic.Builtins[name]; ok {
		return c.compileBuiltin(x, b)
	}
	cf, ok := c.prog.funcs[name]
	if !ok {
		return cx{}, c.errf(x.Pos(), "call to undefined function %s", name)
	}
	// Compile arguments, splitting numeric from reference arguments by the
	// callee's parameter types.
	fd := cf.decl
	if len(x.Args) != len(fd.Params) {
		return cx{}, c.errf(x.Pos(), "%s expects %d args, got %d", name, len(fd.Params), len(x.Args))
	}
	var numArgs []cx
	var refArgs []refFn
	var order []bool // true = ref
	out := cx{w: 5}
	for i, a := range x.Args {
		if isRefType(fd.Params[i].Type) {
			rf, err := c.compileRef(a, minic.ElemOf(fd.Params[i].Type))
			if err != nil {
				return cx{}, err
			}
			refArgs = append(refArgs, rf)
			order = append(order, true)
			continue
		}
		ca, err := c.compileExpr(a)
		if err != nil {
			return cx{}, err
		}
		out.w += ca.w
		out.b += ca.b
		out.irr += ca.irr
		numArgs = append(numArgs, ca)
		order = append(order, false)
	}
	_ = order
	out.f = func(env *Env) float64 {
		args := make([]float64, len(numArgs))
		for i, a := range numArgs {
			args[i] = a.f(env)
		}
		refs := make([]*Array, len(refArgs))
		for i, r := range refArgs {
			refs[i] = r(env)
		}
		return env.call(cf, args, refs)
	}
	return out, nil
}

func (c *compiler) compileBuiltin(x *minic.CallExpr, b minic.Builtin) (cx, error) {
	var args []cx
	out := cx{w: b.FlopCost}
	for _, a := range x.Args {
		ca, err := c.compileExpr(a)
		if err != nil {
			return cx{}, err
		}
		out.w += ca.w
		out.b += ca.b
		out.irr += ca.irr
		args = append(args, ca)
	}
	switch b.Name {
	case "sqrt":
		a0 := args[0].f
		out.f = func(env *Env) float64 { return math.Sqrt(a0(env)) }
	case "exp":
		a0 := args[0].f
		out.f = func(env *Env) float64 { return math.Exp(a0(env)) }
	case "log":
		a0 := args[0].f
		out.f = func(env *Env) float64 { return math.Log(a0(env)) }
	case "pow":
		a0, a1 := args[0].f, args[1].f
		out.f = func(env *Env) float64 { return math.Pow(a0(env), a1(env)) }
	case "fabs":
		a0 := args[0].f
		out.f = func(env *Env) float64 { return math.Abs(a0(env)) }
	case "floor":
		a0 := args[0].f
		out.f = func(env *Env) float64 { return math.Floor(a0(env)) }
	case "ceil":
		a0 := args[0].f
		out.f = func(env *Env) float64 { return math.Ceil(a0(env)) }
	case "fmin":
		a0, a1 := args[0].f, args[1].f
		out.f = func(env *Env) float64 { return math.Min(a0(env), a1(env)) }
	case "fmax":
		a0, a1 := args[0].f, args[1].f
		out.f = func(env *Env) float64 { return math.Max(a0(env), a1(env)) }
	case "malloc", "offload_shared_malloc":
		return cx{}, c.errf(x.Pos(), "%s result must be assigned to a pointer", b.Name)
	default:
		return cx{}, c.errf(x.Pos(), "builtin %s not supported here", b.Name)
	}
	return out, nil
}

func (c *compiler) compilePrintf(x *minic.CallExpr) (cx, error) {
	if len(x.Args) == 0 {
		return cx{}, c.errf(x.Pos(), "printf needs a format string")
	}
	lit, ok := x.Args[0].(*minic.StringLit)
	if !ok {
		return cx{}, c.errf(x.Pos(), "printf format must be a string literal")
	}
	format := lit.Value
	var args []cx
	for _, a := range x.Args[1:] {
		ca, err := c.compileExpr(a)
		if err != nil {
			return cx{}, err
		}
		args = append(args, ca)
	}
	return cx{f: func(env *Env) float64 {
		vals := make([]interface{}, len(args))
		ai := 0
		// Translate %d to integer rendering; everything else passes through.
		out := make([]byte, 0, len(format)+16)
		for i := 0; i < len(format); i++ {
			ch := format[i]
			if ch != '%' || i+1 >= len(format) {
				out = append(out, ch)
				continue
			}
			i++
			verb := format[i]
			if verb == '%' {
				out = append(out, '%')
				continue
			}
			if ai >= len(args) {
				out = append(out, '%', verb)
				continue
			}
			v := args[ai].f(env)
			switch verb {
			case 'd', 'i':
				out = append(out, '%', 'd')
				vals[ai] = int64(v)
			case 'f', 'g', 'e':
				out = append(out, '%', verb)
				vals[ai] = v
			default:
				out = append(out, '%', 'v')
				vals[ai] = v
			}
			ai++
		}
		fmt.Fprintf(&env.p.out, string(out), vals[:ai]...)
		return 0
	}}, nil
}
