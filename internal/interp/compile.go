package interp

import (
	"fmt"
	"math"
	"strings"

	"comp/internal/analysis"
	"comp/internal/minic"
)

// Env is the per-run execution state. Calls create fresh frames; the Env
// itself is shared down the call stack.
type Env struct {
	p       *Program
	backend Backend

	// Current frame.
	f []float64
	r []*Array

	onDevice bool
	parallel bool
	vec      bool
	// devTouched records device buffers (element index ranges) accessed
	// by the current kernel.
	devTouched map[string]*elemRange

	work   *Work
	retVal float64

	// depth is the live MiniC call depth (bounded by maxCallDepth).
	depth int
	// budget counts down loop iterations when budgetOn (SetLoopBudget).
	budget   int64
	budgetOn bool
}

// maxCallDepth bounds MiniC recursion so runaway programs fault like any
// other runtime error instead of exhausting the Go stack. Engines enforce
// the same limit with the same message.
const maxCallDepth = 10000

// spendIteration enforces the optional per-run loop budget. It sits at
// every loop head, before the condition, in both the tree-walker and the
// VM, so budget faults fire at identical program points.
func (e *Env) spendIteration(pos minic.Pos) {
	if !e.budgetOn {
		return
	}
	e.budget--
	if e.budget < 0 {
		throw(rtErrf(pos, "loop budget exhausted"))
	}
}

type ctl int

const (
	ctlNormal ctl = iota
	ctlBreak
	ctlContinue
	ctlReturn
)

type stmtFn func(*Env) ctl
type exprFn func(*Env) float64
type refFn func(*Env) *Array

// cx is a compiled expression with its static cost.
type cx struct {
	f   exprFn
	w   float64 // operation weight per evaluation
	b   float64 // bytes of array traffic per evaluation
	irr float64 // irregular portion of b
}

type cfunc struct {
	name     string
	decl     *minic.FuncDecl
	numSlots int
	refSlots int
	// params maps positionally to either a numeric or a ref slot.
	params []paramSlot
	body   stmtFn
}

type paramSlot struct {
	slot  int
	isRef bool
	elem  minic.Type
}

type bindKind int

const (
	bindLocal bindKind = iota
	bindLocalRef
	bindGlobal
)

type binding struct {
	kind bindKind
	slot int
	g    *gvar
	typ  minic.Type
}

type compiler struct {
	prog   *Program
	fn     *cfunc
	scopes []map[string]binding
	// loopVars tracks enclosing for-loop index variables (innermost last),
	// used to classify access sites as regular/irregular traffic.
	loopVars []string
}

func (c *compiler) errf(pos minic.Pos, format string, args ...interface{}) error {
	return fmt.Errorf("interp: %s: %s", pos, fmt.Sprintf(format, args...))
}

func (c *compiler) compile() error {
	// Register globals first.
	for _, d := range c.prog.file.Decls {
		vd, ok := d.(*minic.VarDecl)
		if !ok {
			continue
		}
		g := &gvar{name: vd.Name, typ: vd.Type, shared: vd.Shared, decl: vd}
		if el := minic.ElemOf(vd.Type); el != nil {
			g.arrayly = true
			g.elem = el
		}
		c.prog.gvars[vd.Name] = g
	}
	// Pre-create cfunc shells so calls resolve (including recursion).
	for _, fd := range c.prog.file.Funcs() {
		if fd.Body == nil {
			continue
		}
		c.prog.funcs[fd.Name] = &cfunc{name: fd.Name, decl: fd}
	}
	for _, fd := range c.prog.file.Funcs() {
		if fd.Body == nil {
			continue
		}
		if err := c.compileFunc(c.prog.funcs[fd.Name], fd); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) push() { c.scopes = append(c.scopes, map[string]binding{}) }
func (c *compiler) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *compiler) bind(name string, b binding) { c.scopes[len(c.scopes)-1][name] = b }

func (c *compiler) lookup(name string) (binding, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if b, ok := c.scopes[i][name]; ok {
			return b, true
		}
	}
	if g, ok := c.prog.gvars[name]; ok {
		return binding{kind: bindGlobal, g: g, typ: g.typ}, true
	}
	return binding{}, false
}

func (c *compiler) newSlot() int {
	s := c.fn.numSlots
	c.fn.numSlots++
	return s
}

func (c *compiler) newRefSlot() int {
	s := c.fn.refSlots
	c.fn.refSlots++
	return s
}

func isRefType(t minic.Type) bool { return minic.ElemOf(t) != nil }

func (c *compiler) compileFunc(cf *cfunc, fd *minic.FuncDecl) error {
	c.fn = cf
	c.push()
	defer c.pop()
	for _, p := range fd.Params {
		if isRefType(p.Type) {
			slot := c.newRefSlot()
			cf.params = append(cf.params, paramSlot{slot: slot, isRef: true, elem: minic.ElemOf(p.Type)})
			c.bind(p.Name, binding{kind: bindLocalRef, slot: slot, typ: p.Type})
		} else {
			slot := c.newSlot()
			cf.params = append(cf.params, paramSlot{slot: slot})
			c.bind(p.Name, binding{kind: bindLocal, slot: slot, typ: p.Type})
		}
	}
	body, err := c.compileBlock(fd.Body)
	if err != nil {
		return err
	}
	cf.body = body
	return nil
}

func (c *compiler) compileBlock(b *minic.Block) (stmtFn, error) {
	c.push()
	defer c.pop()
	var stmts []stmtFn
	for _, s := range b.Stmts {
		fn, err := c.compileStmt(s)
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, fn)
	}
	return func(env *Env) ctl {
		for _, s := range stmts {
			if cc := s(env); cc != ctlNormal {
				return cc
			}
		}
		return ctlNormal
	}, nil
}

func (c *compiler) compileStmt(s minic.Stmt) (stmtFn, error) {
	switch x := s.(type) {
	case *minic.Block:
		return c.compileBlock(x)
	case *minic.DeclStmt:
		return c.compileDecl(x)
	case *minic.ExprStmt:
		return c.compileExprStmt(x)
	case *minic.AssignStmt:
		return c.compileAssign(x)
	case *minic.IncDecStmt:
		return c.compileIncDec(x)
	case *minic.IfStmt:
		return c.compileIf(x)
	case *minic.WhileStmt:
		return c.compileWhile(x)
	case *minic.ForStmt:
		return c.compileFor(x)
	case *minic.ReturnStmt:
		return c.compileReturn(x)
	case *minic.BreakStmt:
		return func(*Env) ctl { return ctlBreak }, nil
	case *minic.ContinueStmt:
		return func(*Env) ctl { return ctlContinue }, nil
	case *minic.PragmaStmt:
		return c.compilePragmaStmt(x)
	}
	return nil, c.errf(s.Pos(), "unsupported statement %T", s)
}

func (c *compiler) compileDecl(d *minic.DeclStmt) (stmtFn, error) {
	vd := d.Decl
	if arr, ok := vd.Type.(*minic.Array); ok {
		// Local (possibly variable-length) array: fresh storage per entry.
		if arr.Len == nil {
			return nil, c.errf(vd.Pos(), "local array %s needs a length", vd.Name)
		}
		lenX, err := c.compileExpr(arr.Len)
		if err != nil {
			return nil, err
		}
		slot := c.newRefSlot()
		c.bind(vd.Name, binding{kind: bindLocalRef, slot: slot, typ: vd.Type})
		elem := arr.Elem
		name := vd.Name
		pos := vd.Pos()
		return func(env *Env) ctl {
			n := int64(lenX.f(env))
			if n < 0 {
				throw(rtErrf(pos, "negative length %d for local array %s", n, name))
			}
			env.r[slot] = NewArrayFor(name, elem, n)
			return ctlNormal
		}, nil
	}
	if isRefType(vd.Type) {
		// Pointer local.
		slot := c.newRefSlot()
		c.bind(vd.Name, binding{kind: bindLocalRef, slot: slot, typ: vd.Type})
		if vd.Init == nil {
			return func(env *Env) ctl { env.r[slot] = nil; return ctlNormal }, nil
		}
		rf, err := c.compileRef(vd.Init, minic.ElemOf(vd.Type))
		if err != nil {
			return nil, err
		}
		return func(env *Env) ctl {
			env.r[slot] = rf(env)
			return ctlNormal
		}, nil
	}
	slot := c.newSlot()
	c.bind(vd.Name, binding{kind: bindLocal, slot: slot, typ: vd.Type})
	intTyped := isIntType(vd.Type)
	if vd.Init == nil {
		return func(env *Env) ctl { env.f[slot] = 0; return ctlNormal }, nil
	}
	init, err := c.compileExpr(vd.Init)
	if err != nil {
		return nil, err
	}
	w, b, irr := init.w, init.b, init.irr
	return func(env *Env) ctl {
		env.addWork(w, b, irr)
		v := init.f(env)
		if intTyped {
			v = math.Trunc(v)
		}
		env.f[slot] = v
		return ctlNormal
	}, nil
}

func isIntType(t minic.Type) bool {
	b, ok := t.(*minic.Basic)
	return ok && b.IsInteger()
}

func (c *compiler) compileExprStmt(x *minic.ExprStmt) (stmtFn, error) {
	// Pointer-valued calls used as statements (free) are handled in
	// compileExpr's call support.
	e, err := c.compileExpr(x.X)
	if err != nil {
		return nil, err
	}
	w, b, irr := e.w, e.b, e.irr
	return func(env *Env) ctl {
		env.addWork(w, b, irr)
		e.f(env)
		return ctlNormal
	}, nil
}

func (c *compiler) compileAssign(x *minic.AssignStmt) (stmtFn, error) {
	// Pointer assignment: p = malloc(...), p = q.
	if id, ok := x.LHS.(*minic.Ident); ok {
		if bnd, found := c.lookup(id.Name); found && isRefType(bnd.typ) {
			if x.Op != "=" {
				return nil, c.errf(x.Pos(), "compound assignment to pointer %s", id.Name)
			}
			rf, err := c.compileRef(x.RHS, minic.ElemOf(bnd.typ))
			if err != nil {
				return nil, err
			}
			switch bnd.kind {
			case bindLocalRef:
				slot := bnd.slot
				return func(env *Env) ctl { env.r[slot] = rf(env); return ctlNormal }, nil
			case bindGlobal:
				g := bnd.g
				pos := x.Pos()
				return func(env *Env) ctl {
					if env.onDevice {
						throw(rtErrf(pos, "cannot rebind global pointer %s on the device", g.name))
					}
					g.arr = rf(env)
					return ctlNormal
				}, nil
			}
		}
	}
	rhs, err := c.compileExpr(x.RHS)
	if err != nil {
		return nil, err
	}
	store, load, lw, lb, lirr, intTyped, err := c.compileLValue(x.LHS)
	if err != nil {
		return nil, err
	}
	op := strings.TrimSuffix(x.Op, "=")
	w := rhs.w + lw + 1
	b := rhs.b + lb
	irr := rhs.irr + lirr
	if op == "" {
		return func(env *Env) ctl {
			env.addWork(w, b, irr)
			v := rhs.f(env)
			if intTyped {
				v = math.Trunc(v)
			}
			store(env, v)
			return ctlNormal
		}, nil
	}
	// Compound assignment reads then writes.
	b += lb
	irr += lirr
	return func(env *Env) ctl {
		env.addWork(w, b, irr)
		cur := load(env)
		v := applyBinOp(op, cur, rhs.f(env), intTyped)
		if intTyped {
			v = math.Trunc(v)
		}
		store(env, v)
		return ctlNormal
	}, nil
}

func (c *compiler) compileIncDec(x *minic.IncDecStmt) (stmtFn, error) {
	store, load, lw, lb, lirr, _, err := c.compileLValue(x.X)
	if err != nil {
		return nil, err
	}
	delta := 1.0
	if x.Op == "--" {
		delta = -1
	}
	w := lw + 1
	return func(env *Env) ctl {
		env.addWork(w, 2*lb, 2*lirr)
		store(env, load(env)+delta)
		return ctlNormal
	}, nil
}

func (c *compiler) compileIf(x *minic.IfStmt) (stmtFn, error) {
	cond, err := c.compileExpr(x.Cond)
	if err != nil {
		return nil, err
	}
	then, err := c.compileBlock(x.Then)
	if err != nil {
		return nil, err
	}
	var els stmtFn
	if x.Else != nil {
		els, err = c.compileStmt(x.Else)
		if err != nil {
			return nil, err
		}
	}
	w, b, irr := cond.w, cond.b, cond.irr
	return func(env *Env) ctl {
		env.addWork(w, b, irr)
		if cond.f(env) != 0 {
			return then(env)
		}
		if els != nil {
			return els(env)
		}
		return ctlNormal
	}, nil
}

func (c *compiler) compileWhile(x *minic.WhileStmt) (stmtFn, error) {
	cond, err := c.compileExpr(x.Cond)
	if err != nil {
		return nil, err
	}
	body, err := c.compileBlock(x.Body)
	if err != nil {
		return nil, err
	}
	w, b, irr := cond.w, cond.b, cond.irr
	pos := x.Pos()
	return func(env *Env) ctl {
		for iter := int64(0); ; iter++ {
			if iter > maxLoopIters {
				throw(rtErrf(pos, "while loop exceeded %d iterations", int64(maxLoopIters)))
			}
			env.spendIteration(pos)
			env.addWork(w, b, irr)
			if cond.f(env) == 0 {
				return ctlNormal
			}
			switch body(env) {
			case ctlBreak:
				return ctlNormal
			case ctlReturn:
				return ctlReturn
			}
		}
	}, nil
}

// maxLoopIters guards against runaway loops in transformed code under test.
const maxLoopIters = 1 << 33

func (c *compiler) compileReturn(x *minic.ReturnStmt) (stmtFn, error) {
	if x.X == nil {
		return func(env *Env) ctl { env.retVal = 0; return ctlReturn }, nil
	}
	e, err := c.compileExpr(x.X)
	if err != nil {
		return nil, err
	}
	w, b, irr := e.w, e.b, e.irr
	return func(env *Env) ctl {
		env.addWork(w, b, irr)
		env.retVal = e.f(env)
		return ctlReturn
	}, nil
}

// elemRange tracks the min/max element index touched in one buffer.
type elemRange struct{ lo, hi int64 }

// touchDev widens the touched range of a device buffer.
func (e *Env) touchDev(name string, idx int64) {
	r := e.devTouched[name]
	if r == nil {
		e.devTouched[name] = &elemRange{lo: idx, hi: idx}
		return
	}
	if idx < r.lo {
		r.lo = idx
	}
	if idx > r.hi {
		r.hi = idx
	}
}

// addWork routes measured cost to the bucket matching the execution mode.
func (e *Env) addWork(w, b, irr float64) {
	var bk *Bucket
	switch {
	case !e.parallel:
		bk = &e.work.Serial
	case e.vec:
		bk = &e.work.Vec
	default:
		bk = &e.work.Scalar
	}
	bk.Flops += w
	bk.Bytes += b
	bk.IrrBytes += irr
}

// call invokes a compiled function with evaluated arguments.
func (e *Env) call(cf *cfunc, args []float64, refArgs []*Array) float64 {
	if e.depth >= maxCallDepth {
		throw(rtErrf(minic.Pos{}, "call depth exceeded (%d frames)", maxCallDepth))
	}
	e.depth++
	savedF, savedR, savedRet := e.f, e.r, e.retVal
	e.f = make([]float64, cf.numSlots)
	e.r = make([]*Array, cf.refSlots)
	ai, ri := 0, 0
	for _, ps := range cf.params {
		if ps.isRef {
			e.r[ps.slot] = refArgs[ri]
			ri++
		} else {
			e.f[ps.slot] = args[ai]
			ai++
		}
	}
	cf.body(e)
	ret := e.retVal
	e.f, e.r, e.retVal = savedF, savedR, savedRet
	e.depth--
	return ret
}

func applyBinOp(op string, a, b float64, intCtx bool) float64 {
	switch op {
	case "+":
		return a + b
	case "-":
		return a - b
	case "*":
		return a * b
	case "/":
		if intCtx {
			if b == 0 {
				throw(rtErrf(minic.Pos{}, "integer division by zero"))
			}
			return math.Trunc(a / b)
		}
		return a / b
	case "%":
		if int64(b) == 0 {
			throw(rtErrf(minic.Pos{}, "integer modulus by zero"))
		}
		return float64(int64(a) % int64(b))
	case "<<":
		return float64(int64(a) << uint(int64(b)))
	case ">>":
		return float64(int64(a) >> uint(int64(b)))
	case "==":
		return boolToF(a == b)
	case "!=":
		return boolToF(a != b)
	case "<":
		return boolToF(a < b)
	case "<=":
		return boolToF(a <= b)
	case ">":
		return boolToF(a > b)
	case ">=":
		return boolToF(a >= b)
	case "&&":
		return boolToF(a != 0 && b != 0)
	case "||":
		return boolToF(a != 0 || b != 0)
	}
	throw(rtErrf(minic.Pos{}, "unknown operator %q", op))
	return 0
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// innermostLoopVar returns the index variable used for access
// classification, or "".
func (c *compiler) innermostLoopVar() string {
	if len(c.loopVars) == 0 {
		return ""
	}
	return c.loopVars[len(c.loopVars)-1]
}

// classifySite decides whether an access site counts as irregular traffic.
func (c *compiler) classifySite(idx minic.Expr) bool {
	ivar := c.innermostLoopVar()
	if ivar == "" {
		return false
	}
	kind, stride := analysis.ClassifySite(idx, ivar)
	switch kind {
	case analysis.AccessIndirect, analysis.AccessOpaque:
		return true
	}
	return stride != 1 && stride != 0
}
