package interp

import (
	"math"
	"strings"
	"testing"
)

// recordBackend captures the operation stream for assertions.
type recordBackend struct {
	host       []Work
	offloads   []*OffloadOp
	transfers  []*TransferOp
	waits      []string
	offloadErr error
}

func (r *recordBackend) HostCompute(w Work) { r.host = append(r.host, w) }
func (r *recordBackend) Offload(op *OffloadOp) error {
	r.offloads = append(r.offloads, op)
	return r.offloadErr
}
func (r *recordBackend) Transfer(op *TransferOp) error {
	r.transfers = append(r.transfers, op)
	return nil
}
func (r *recordBackend) OffloadWait(tag string) { r.waits = append(r.waits, tag) }

func run(t *testing.T, src string) (*Program, *recordBackend) {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	b := &recordBackend{}
	if err := p.Run(b); err != nil {
		t.Fatalf("run: %v", err)
	}
	return p, b
}

func scalar(t *testing.T, p *Program, name string) float64 {
	t.Helper()
	v, err := p.Scalar(name)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestArithmeticAndControlFlow(t *testing.T) {
	p, _ := run(t, `
int result;
int main(void) {
    int s = 0;
    int i;
    for (i = 1; i <= 10; i++) {
        if (i % 2 == 0) {
            s += i;
        } else {
            s -= 1;
        }
    }
    result = s;
    return 0;
}
`)
	// evens 2+4+6+8+10 = 30, minus 5 odds = 25
	if got := scalar(t, p, "result"); got != 25 {
		t.Fatalf("result = %v, want 25", got)
	}
}

func TestFloatMathBuiltins(t *testing.T) {
	p, _ := run(t, `
double r1;
double r2;
double r3;
int main(void) {
    r1 = sqrt(16.0) + pow(2.0, 10.0);
    r2 = fabs(-3.5) + fmax(1.0, 2.0) + fmin(1.0, 2.0);
    r3 = floor(2.7) + ceil(2.1) + log(exp(3.0));
    return 0;
}
`)
	if got := scalar(t, p, "r1"); got != 4+1024 {
		t.Fatalf("r1 = %v", got)
	}
	if got := scalar(t, p, "r2"); got != 3.5+2+1 {
		t.Fatalf("r2 = %v", got)
	}
	if got := scalar(t, p, "r3"); math.Abs(got-(2+3+3)) > 1e-12 {
		t.Fatalf("r3 = %v", got)
	}
}

func TestWhileAndBreakContinue(t *testing.T) {
	p, _ := run(t, `
int result;
int main(void) {
    int k = 100;
    int steps = 0;
    while (k > 1) {
        k = k / 2;
        steps++;
        if (steps > 50) break;
    }
    int j;
    int sum = 0;
    for (j = 0; j < 10; j++) {
        if (j == 5) continue;
        sum += j;
    }
    result = steps * 100 + sum;
    return 0;
}
`)
	// 100 -> 50 -> 25 -> 12 -> 6 -> 3 -> 1 : 6 steps; sum 0..9 minus 5 = 40
	if got := scalar(t, p, "result"); got != 640 {
		t.Fatalf("result = %v, want 640", got)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	p, _ := run(t, `
int result;
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main(void) {
    result = fib(15);
    return 0;
}
`)
	if got := scalar(t, p, "result"); got != 610 {
		t.Fatalf("fib(15) = %v, want 610", got)
	}
}

func TestArraysAndPointerParams(t *testing.T) {
	p, _ := run(t, `
float data[8];
float total;
void fill(float *a, int n) {
    int i;
    for (i = 0; i < n; i++) {
        a[i] = i * 2.0;
    }
}
float sum(float *a, int n) {
    float s = 0.0;
    int i;
    for (i = 0; i < n; i++) {
        s += a[i];
    }
    return s;
}
int main(void) {
    fill(data, 8);
    total = sum(data, 8);
    return 0;
}
`)
	if got := scalar(t, p, "total"); got != 56 { // 2*(0+..+7)
		t.Fatalf("total = %v, want 56", got)
	}
	d, err := p.ArrayData("data")
	if err != nil {
		t.Fatal(err)
	}
	if d[3] != 6 {
		t.Fatalf("data[3] = %v, want 6", d[3])
	}
}

func TestMallocAndLocalArrays(t *testing.T) {
	p, _ := run(t, `
float result;
int main(void) {
    float *buf = (float *) malloc(10 * sizeof(float));
    int i;
    for (i = 0; i < 10; i++) {
        buf[i] = i;
    }
    float tmp[5];
    for (i = 0; i < 5; i++) {
        tmp[i] = buf[2 * i];
    }
    result = tmp[4] + buf[9];
    free(buf);
    return 0;
}
`)
	if got := scalar(t, p, "result"); got != 8+9 {
		t.Fatalf("result = %v, want 17", got)
	}
}

func TestStructArrays(t *testing.T) {
	p, _ := run(t, `
struct point {
    float x;
    float y;
};
struct point pts[4];
float result;
int main(void) {
    int i;
    for (i = 0; i < 4; i++) {
        pts[i].x = i;
        pts[i].y = i * 10.0;
    }
    result = pts[3].x + pts[2].y;
    return 0;
}
`)
	if got := scalar(t, p, "result"); got != 3+20 {
		t.Fatalf("result = %v, want 23", got)
	}
}

func TestPrintf(t *testing.T) {
	p, _ := run(t, `
int main(void) {
    printf("n=%d f=%f\n", 42, 2.5);
    return 0;
}
`)
	if got := p.Output(); got != "n=42 f=2.500000\n" {
		t.Fatalf("output = %q", got)
	}
}

func TestGlobalInitializers(t *testing.T) {
	p, _ := run(t, `
int n = 5;
double pi = 3.25;
int result;
int main(void) {
    result = n * 2;
    return 0;
}
`)
	if got := scalar(t, p, "result"); got != 10 {
		t.Fatalf("result = %v", got)
	}
	if got := scalar(t, p, "pi"); got != 3.25 {
		t.Fatalf("pi = %v", got)
	}
}

const offloadSrc = `
float a[16];
float b[16];
int n;
int main(void) {
    int i;
    n = 16;
    for (i = 0; i < n; i++) {
        a[i] = i;
    }
    #pragma offload target(mic:0) in(a : length(n)) out(b : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        b[i] = a[i] * 2.0;
    }
    return 0;
}
`

func TestOffloadSemantics(t *testing.T) {
	p, bk := run(t, offloadSrc)
	bv, err := p.ArrayData("b")
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range bv {
		if v != float64(i)*2 {
			t.Fatalf("b[%d] = %v, want %v", i, v, float64(i)*2)
		}
	}
	if len(bk.offloads) != 1 {
		t.Fatalf("offloads = %d, want 1", len(bk.offloads))
	}
	op := bk.offloads[0]
	if op.InBytes() != 16*4 || op.OutBytes() != 16*4 {
		t.Fatalf("in/out bytes = %d/%d, want 64/64", op.InBytes(), op.OutBytes())
	}
	if op.Work.ParIters != 16 {
		t.Fatalf("kernel parallel iters = %d, want 16", op.Work.ParIters)
	}
	if op.Work.Vec.Flops <= 0 {
		t.Fatalf("kernel flops = %v, want > 0 (vectorizable bucket)", op.Work.Vec.Flops)
	}
	if op.Work.Serial.Flops != 0 {
		t.Fatalf("kernel serial flops = %v, want 0", op.Work.Serial.Flops)
	}
	// Default LEO lifetime: buffers freed after offload.
	if p.DeviceArray("a") != nil || p.DeviceArray("b") != nil {
		t.Fatal("device buffers not freed with default lifetimes")
	}
	// Host work flushed before offload.
	if len(bk.host) == 0 {
		t.Fatal("host work not reported")
	}
}

func TestOffloadMissingArrayFails(t *testing.T) {
	p, err := Compile(`
float a[8];
float b[8];
int main(void) {
    int i;
    #pragma offload target(mic:0) in(a : length(8))
    #pragma omp parallel for
    for (i = 0; i < 8; i++) {
        b[i] = a[i];
    }
    return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	err = p.Run(NullBackend{})
	if err == nil || !strings.Contains(err.Error(), "not present on the device") {
		t.Fatalf("err = %v, want device-missing error", err)
	}
}

func TestOffloadScalarInOut(t *testing.T) {
	p, _ := run(t, `
float sum;
float a[8];
int n;
int main(void) {
    int i;
    n = 8;
    for (i = 0; i < n; i++) {
        a[i] = 1.5;
    }
    sum = 100.0;
    #pragma offload target(mic:0) in(a : length(n)) inout(sum)
    #pragma omp parallel for reduction(+:sum)
    for (i = 0; i < n; i++) {
        sum += a[i];
    }
    return 0;
}
`)
	if got := scalar(t, p, "sum"); got != 112 {
		t.Fatalf("sum = %v, want 112", got)
	}
}

func TestOffloadScalarReadFallsBackToHost(t *testing.T) {
	// Scalars not in any clause are implicitly visible (copied at launch).
	p, _ := run(t, `
float scale;
float a[4];
float b[4];
int main(void) {
    int i;
    scale = 3.0;
    for (i = 0; i < 4; i++) {
        a[i] = i;
    }
    #pragma offload target(mic:0) in(a : length(4)) out(b : length(4))
    #pragma omp parallel for
    for (i = 0; i < 4; i++) {
        b[i] = a[i] * scale;
    }
    return 0;
}
`)
	bv, _ := p.ArrayData("b")
	if bv[2] != 6 {
		t.Fatalf("b[2] = %v, want 6", bv[2])
	}
}

func TestOffloadDeviceScalarWriteDoesNotLeakToHost(t *testing.T) {
	p, _ := run(t, `
float flag;
float a[4];
int main(void) {
    int i;
    flag = 1.0;
    #pragma offload target(mic:0) out(a : length(4))
    #pragma omp parallel for
    for (i = 0; i < 4; i++) {
        flag = 99.0;
        a[i] = flag;
    }
    return 0;
}
`)
	if got := scalar(t, p, "flag"); got != 1 {
		t.Fatalf("flag = %v, want 1 (device writes must not leak without out clause)", got)
	}
	av, _ := p.ArrayData("a")
	if av[0] != 99 {
		t.Fatalf("a[0] = %v, want 99", av[0])
	}
}

func TestOffloadTransferWithSectionsAndSignals(t *testing.T) {
	// Double-buffer shape: transfer halves into separate device buffers.
	p, bk := run(t, `
float src[8];
float *buf1;
float *buf2;
float dst[8];
int sig0;
int sig1;
int main(void) {
    int i;
    for (i = 0; i < 8; i++) {
        src[i] = i + 1;
    }
    #pragma offload_transfer target(mic:0) nocopy(buf1 : length(4) alloc_if(1) free_if(0)) nocopy(buf2 : length(4) alloc_if(1) free_if(0))
    #pragma offload_transfer target(mic:0) in(src[0 : 4] : into(buf1) alloc_if(0) free_if(0)) signal(&sig0)
    #pragma offload_transfer target(mic:0) in(src[4 : 4] : into(buf2) alloc_if(0) free_if(0)) signal(&sig1)
    #pragma offload target(mic:0) nocopy(buf1 : length(4) alloc_if(0) free_if(0)) out(buf1[0 : 4] : into(dst[0 : 4]) alloc_if(0) free_if(0)) wait(&sig0)
    #pragma omp parallel for
    for (i = 0; i < 4; i++) {
        buf1[i] = buf1[i] * 10.0;
    }
    #pragma offload target(mic:0) nocopy(buf2 : length(4) alloc_if(0) free_if(0)) out(buf2[0 : 4] : into(dst[4 : 4]) alloc_if(0) free_if(0)) wait(&sig1)
    #pragma omp parallel for
    for (i = 0; i < 4; i++) {
        buf2[i] = buf2[i] * 10.0;
    }
    return 0;
}
`)
	dv, _ := p.ArrayData("dst")
	for i := 0; i < 8; i++ {
		want := float64(i+1) * 10
		if dv[i] != want {
			t.Fatalf("dst[%d] = %v, want %v", i, dv[i], want)
		}
	}
	if len(bk.transfers) != 3 {
		t.Fatalf("transfers = %d, want 3", len(bk.transfers))
	}
	if bk.transfers[1].Signal != "sig0" || bk.transfers[2].Signal != "sig1" {
		t.Fatalf("signals = %q/%q", bk.transfers[1].Signal, bk.transfers[2].Signal)
	}
	if len(bk.offloads) != 2 || bk.offloads[0].Wait != "sig0" {
		t.Fatalf("offload waits wrong: %+v", bk.offloads)
	}
	// Buffers persist (free_if(0) everywhere).
	if p.DeviceArray("buf1") == nil || p.DeviceArray("buf2") == nil {
		t.Fatal("persistent device buffers were freed")
	}
}

func TestAllocIfZeroWithoutAllocationFails(t *testing.T) {
	p, err := Compile(`
float a[4];
int main(void) {
    #pragma offload_transfer target(mic:0) in(a[0 : 4] : into(a) alloc_if(0) free_if(0))
    return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	err = p.Run(NullBackend{})
	if err == nil || !strings.Contains(err.Error(), "before allocation") {
		t.Fatalf("err = %v, want allocation error", err)
	}
}

func TestOffloadWaitStatement(t *testing.T) {
	_, bk := run(t, `
float a[4];
int tag;
int main(void) {
    #pragma offload_transfer target(mic:0) in(a : length(4)) signal(&tag)
    #pragma offload_wait target(mic:0) wait(&tag)
    return 0;
}
`)
	if len(bk.waits) != 1 || bk.waits[0] != "tag" {
		t.Fatalf("waits = %v", bk.waits)
	}
}

func TestWorkBucketsSplitSerialParallel(t *testing.T) {
	_, bk := run(t, `
float a[100];
float b[100];
int main(void) {
    int i;
    int j;
    // Serial host loop.
    for (i = 0; i < 100; i++) {
        a[i] = i;
    }
    // Parallel vectorizable host loop.
    #pragma omp parallel for
    for (j = 0; j < 100; j++) {
        b[j] = a[j] * 2.0;
    }
    return 0;
}
`)
	if len(bk.host) != 1 {
		t.Fatalf("host flushes = %d, want 1", len(bk.host))
	}
	w := bk.host[0]
	if w.Serial.Flops <= 0 || w.Vec.Flops <= 0 {
		t.Fatalf("work = %+v, want both serial and vec flops", w)
	}
	if w.ParIters != 100 {
		t.Fatalf("ParIters = %d, want 100", w.ParIters)
	}
}

func TestIrregularTrafficMeasured(t *testing.T) {
	_, bk := run(t, `
float a[64];
int idx[64];
float c[64];
int main(void) {
    int i;
    for (i = 0; i < 64; i++) {
        a[i] = i;
        idx[i] = 63 - i;
    }
    #pragma omp parallel for
    for (i = 0; i < 64; i++) {
        c[i] = a[idx[i]];
    }
    return 0;
}
`)
	w := bk.host[0]
	// Gather loop is not vectorizable -> Scalar bucket, with irregular bytes.
	if w.Scalar.Bytes <= 0 || w.Scalar.IrrBytes <= 0 {
		t.Fatalf("scalar bucket = %+v, want irregular traffic", w.Scalar)
	}
	if w.Scalar.IrrBytes >= w.Scalar.Bytes {
		t.Fatalf("irregular %v should be a strict subset of total %v", w.Scalar.IrrBytes, w.Scalar.Bytes)
	}
	if w.Vec.Flops != 0 {
		t.Fatalf("gather loop must not land in the vectorizable bucket: %+v", w)
	}
}

func TestMergedOffloadSerialOnDevice(t *testing.T) {
	_, bk := run(t, `
float a[32];
float b[32];
int steps;
int main(void) {
    int s;
    int i;
    steps = 4;
    #pragma offload target(mic:0) inout(a, b : length(32))
    for (s = 0; s < steps; s++) {
        // serial on device
        b[0] = b[0] + 1.0;
        #pragma omp parallel for
        for (i = 0; i < 32; i++) {
            a[i] = a[i] + b[0];
        }
    }
    return 0;
}
`)
	if len(bk.offloads) != 1 {
		t.Fatalf("offloads = %d, want 1 (merged)", len(bk.offloads))
	}
	w := bk.offloads[0].Work
	if w.Serial.Flops <= 0 {
		t.Fatalf("merged offload should have serial device work: %+v", w)
	}
	if w.Vec.Flops <= 0 {
		t.Fatalf("merged offload should have parallel device work: %+v", w)
	}
	if w.ParIters != 4*32 {
		t.Fatalf("ParIters = %d, want 128", w.ParIters)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`int main(void) { int x = 1 / 0; return x; }`, "division by zero"},
		{`int main(void) { int x = 1 % 0; return x; }`, "modulus by zero"},
		{`float a[4]; int main(void) { a[9] = 1.0; return 0; }`, "out of range"},
		{`float *p; float r; int main(void) { r = p[0]; return 0; }`, "no storage"},
	}
	for _, c := range cases {
		p, err := Compile(c.src)
		if err != nil {
			t.Errorf("%q: compile: %v", c.src, err)
			continue
		}
		err = p.Run(NullBackend{})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: err = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestResetRestoresCleanState(t *testing.T) {
	p, _ := run(t, offloadSrc)
	before, _ := p.ArrayData("b")
	if before[5] == 0 {
		t.Fatal("sanity: run should have written b")
	}
	if err := p.Reset(); err != nil {
		t.Fatal(err)
	}
	after, _ := p.ArrayData("b")
	if after[5] != 0 {
		t.Fatal("Reset did not clear array state")
	}
	if err := p.Run(&recordBackend{}); err != nil {
		t.Fatalf("rerun after reset: %v", err)
	}
	again, _ := p.ArrayData("b")
	if again[5] != 10 {
		t.Fatalf("rerun b[5] = %v, want 10", again[5])
	}
}

func TestSetArrayAndSetScalarInjection(t *testing.T) {
	p, err := Compile(`
float data[4];
float total;
int n;
int main(void) {
    int i;
    total = 0.0;
    for (i = 0; i < n; i++) {
        total += data[i];
    }
    return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetArray("data", []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetScalar("n", 4); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(NullBackend{}); err != nil {
		t.Fatal(err)
	}
	if got := scalar(t, p, "total"); got != 10 {
		t.Fatalf("total = %v, want 10", got)
	}
}

func TestSharedMallocCounted(t *testing.T) {
	p, _ := run(t, `
float *p1;
float *p2;
int main(void) {
    int i;
    for (i = 0; i < 5; i++) {
        p1 = (float *) offload_shared_malloc(64);
    }
    p2 = (float *) malloc(64);
    return 0;
}
`)
	if got := p.SharedAllocs(); got != 5 {
		t.Fatalf("shared allocs = %d, want 5", got)
	}
}

func TestOffloadBackendErrorAborts(t *testing.T) {
	p, err := Compile(offloadSrc)
	if err != nil {
		t.Fatal(err)
	}
	bk := &recordBackend{offloadErr: errOOM{}}
	err = p.Run(bk)
	if err == nil || !strings.Contains(err.Error(), "device OOM") {
		t.Fatalf("err = %v, want propagated OOM", err)
	}
}

type errOOM struct{}

func (errOOM) Error() string { return "device OOM" }

func TestMainRequired(t *testing.T) {
	p, err := Compile("int foo(void) { return 1; }")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(NullBackend{}); err == nil {
		t.Fatal("Run without main succeeded")
	}
}

func TestIntTruncationSemantics(t *testing.T) {
	p, _ := run(t, `
int result;
int main(void) {
    int a = 7 / 2;
    float f = 7.9;
    int b = f;
    result = a * 10 + b;
    return 0;
}
`)
	if got := scalar(t, p, "result"); got != 37 {
		t.Fatalf("result = %v, want 37 (3*10 + 7)", got)
	}
}
