// Package interp executes MiniC programs for their values while reporting
// offload activity and measured work to a pluggable Backend.
//
// The interpreter is the "functional" half of the simulator: it runs both
// original and COMP-transformed programs over concrete data (so transforms
// are checked for semantic equivalence), maintains separate host and device
// memories with LEO copy semantics (so a kernel touching an untransferred
// array fails loudly, as it would on the card), and dynamically profiles
// every loop (operation counts, memory traffic, irregular-traffic fraction)
// for the performance model. Timing itself lives in the Backend
// implementation (internal/runtime), which maps the reported operations
// onto the discrete-event machine.
package interp

import (
	"fmt"

	"comp/internal/minic"
)

// Array is the storage for an array or malloc'd buffer. Struct arrays are
// stored field-interleaved: element i's field f lives at
// Data[i*Fields + FieldOff[f]].
type Array struct {
	Name      string
	Data      []float64
	Fields    int            // float64 slots per logical element (>=1)
	FieldOff  map[string]int // field name -> slot offset (struct arrays)
	ElemBytes int64          // modelled bytes per logical element
}

// Len returns the logical element count.
func (a *Array) Len() int { return len(a.Data) / a.Fields }

// Bytes returns the modelled byte size of the whole array.
func (a *Array) Bytes() int64 { return int64(a.Len()) * a.ElemBytes }

// NewArrayFor builds storage for n elements of the given MiniC type.
func NewArrayFor(name string, elem minic.Type, n int64) *Array {
	if n < 0 {
		panic(fmt.Sprintf("interp: negative array length %d for %s", n, name))
	}
	a := &Array{Name: name, Fields: 1, ElemBytes: elem.Size()}
	if st, ok := elem.(*minic.StructType); ok {
		a.Fields = len(st.Fields)
		a.FieldOff = map[string]int{}
		for i, f := range st.Fields {
			a.FieldOff[f.Name] = i
		}
	}
	a.Data = make([]float64, n*int64(a.Fields))
	return a
}

// CloneShape returns an empty array with the same element layout.
func (a *Array) CloneShape(name string, n int64) *Array {
	return &Array{
		Name:      name,
		Data:      make([]float64, n*int64(a.Fields)),
		Fields:    a.Fields,
		FieldOff:  a.FieldOff,
		ElemBytes: a.ElemBytes,
	}
}

// Cell is scalar storage.
type Cell struct{ V float64 }

// RuntimeError aborts execution with source context; it models the runtime
// failures the paper discusses (device OOM, missing device data) as well as
// plain interpreter faults (bounds).
type RuntimeError struct {
	Pos minic.Pos
	Msg string
}

func (e *RuntimeError) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("runtime: %s: %s", e.Pos, e.Msg)
	}
	return "runtime: " + e.Msg
}

func rtErrf(pos minic.Pos, format string, args ...interface{}) *RuntimeError {
	return &RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// throw unwinds to Run's recover.
func throw(err *RuntimeError) { panic(err) }

// Bucket accumulates modelled work of one kind.
type Bucket struct {
	Flops    float64
	Bytes    float64
	IrrBytes float64
}

// Add merges o into b.
func (b *Bucket) Add(o Bucket) {
	b.Flops += o.Flops
	b.Bytes += o.Bytes
	b.IrrBytes += o.IrrBytes
}

// IrregularFrac returns the irregular share of traffic.
func (b Bucket) IrregularFrac() float64 {
	if b.Bytes == 0 {
		return 0
	}
	return b.IrrBytes / b.Bytes
}

// Work is the dynamic profile of a code region, split by how the hardware
// can execute it: Serial work runs on one thread; Vec work runs in parallel
// loops the vectorizer accepts; Scalar work runs in parallel loops it
// rejects (irregular bodies).
type Work struct {
	Serial Bucket
	Vec    Bucket
	Scalar Bucket
	// ParIters counts iterations of top-level parallel loops in the region.
	ParIters int64
}

// Add merges o into w.
func (w *Work) Add(o Work) {
	w.Serial.Add(o.Serial)
	w.Vec.Add(o.Vec)
	w.Scalar.Add(o.Scalar)
	w.ParIters += o.ParIters
}

// Zero reports whether no work was recorded.
func (w Work) Zero() bool {
	return w.Serial == Bucket{} && w.Vec == Bucket{} && w.Scalar == Bucket{} && w.ParIters == 0
}

// TotalFlops sums operation counts across buckets.
func (w Work) TotalFlops() float64 { return w.Serial.Flops + w.Vec.Flops + w.Scalar.Flops }

// TotalBytes sums traffic across buckets.
func (w Work) TotalBytes() float64 { return w.Serial.Bytes + w.Vec.Bytes + w.Scalar.Bytes }
