package analysis

import (
	"fmt"

	"comp/internal/minic"
)

// LoopInfo is the analysis summary of one (candidate offload) loop.
type LoopInfo struct {
	For *minic.ForStmt

	// Normalized iteration space: for (IndexVar = Lower; IndexVar < Upper;
	// IndexVar += Step).
	IndexVar string
	Lower    minic.Expr
	Upper    minic.Expr
	Step     int64

	// Parallel reports an `omp parallel for` annotation; the paper's
	// transformations assume no cross-iteration dependences in such loops.
	Parallel bool
	// Reductions lists omp reduction variables.
	Reductions []string
	// Offload is the offload pragma, nil when the loop runs on the host.
	Offload *minic.Pragma

	// Accesses lists every subscripted access in the body.
	Accesses []ArrayAccess
	// ScalarReads lists scalar variables read but not written (candidates
	// for by-value in clauses).
	ScalarReads []string
	// ArraysRead / ArraysWritten index Accesses by array name.
	ArraysRead    map[string]bool
	ArraysWritten map[string]bool

	// HasInnerLoops, HasWhile, HasCalls describe body structure.
	HasInnerLoops bool
	HasWhile      bool
	HasCalls      bool
	CallTargets   []string
}

// Analyze normalizes and classifies the loop. file provides function
// bodies for interprocedural access collection (one level of inlining, the
// common benchmark shape: the loop body calls one kernel function).
func Analyze(fs *minic.ForStmt, file *minic.File) (*LoopInfo, error) {
	info := &LoopInfo{
		For:           fs,
		Step:          1,
		ArraysRead:    map[string]bool{},
		ArraysWritten: map[string]bool{},
	}
	for _, p := range fs.Pragmas {
		switch p.Kind {
		case minic.PragmaOmpParallelFor:
			info.Parallel = true
			info.Reductions = append(info.Reductions, p.Reductions...)
		case minic.PragmaOffload:
			info.Offload = p
		}
	}
	if err := normalize(fs, info); err != nil {
		return nil, err
	}
	assigned := assignedVars(fs.Body)
	invariant := func(name string) bool { return name != info.IndexVar && !assigned[name] }

	collectAccesses(fs.Body, info, invariant, false, file, 0)
	collectScalarReads(fs, info, assigned)
	return info, nil
}

// normalize extracts the canonical (i = lo; i < hi; i += step) form.
func normalize(fs *minic.ForStmt, info *LoopInfo) error {
	// Init: `i = lo` or `int i = lo`.
	switch init := fs.Init.(type) {
	case *minic.AssignStmt:
		id, ok := init.LHS.(*minic.Ident)
		if !ok || init.Op != "=" {
			return errAt(fs, "loop init must assign the index variable")
		}
		info.IndexVar = id.Name
		info.Lower = init.RHS
	case *minic.DeclStmt:
		if init.Decl.Init == nil {
			return errAt(fs, "loop index declaration needs an initializer")
		}
		info.IndexVar = init.Decl.Name
		info.Lower = init.Decl.Init
	default:
		return errAt(fs, "unsupported loop init")
	}
	// Cond: `i < hi` (or <=, normalized to < hi+1).
	cond, ok := fs.Cond.(*minic.BinaryExpr)
	if !ok {
		return errAt(fs, "unsupported loop condition")
	}
	lhs, lok := baseIdent(cond.X)
	if !lok || lhs != info.IndexVar {
		return errAt(fs, "loop condition must test the index variable")
	}
	switch cond.Op {
	case "<":
		info.Upper = cond.Y
	case "<=":
		info.Upper = addExprs(cond.Y, &minic.IntLit{Value: 1})
	default:
		return errAt(fs, "unsupported loop comparison %q", cond.Op)
	}
	// Post: `i++` or `i += c`.
	switch post := fs.Post.(type) {
	case *minic.IncDecStmt:
		id, ok := post.X.(*minic.Ident)
		if !ok || id.Name != info.IndexVar || post.Op != "++" {
			return errAt(fs, "unsupported loop post statement")
		}
		info.Step = 1
	case *minic.AssignStmt:
		id, ok := post.LHS.(*minic.Ident)
		if !ok || id.Name != info.IndexVar || post.Op != "+=" {
			return errAt(fs, "unsupported loop post statement")
		}
		c, isConst := ConstInt(post.RHS)
		if !isConst || c <= 0 {
			return errAt(fs, "loop step must be a positive constant")
		}
		info.Step = c
	default:
		return errAt(fs, "unsupported loop post statement")
	}
	return nil
}

func errAt(n minic.Node, format string, args ...interface{}) error {
	return fmt.Errorf("%s: %s", n.Pos(), fmt.Sprintf(format, args...))
}

// assignedVars returns the set of scalar names assigned anywhere in the block.
func assignedVars(b *minic.Block) map[string]bool {
	out := map[string]bool{}
	minic.Inspect(b, func(n minic.Node) bool {
		switch x := n.(type) {
		case *minic.AssignStmt:
			if id, ok := baseIdent(x.LHS); ok {
				out[id] = true
			}
		case *minic.IncDecStmt:
			if id, ok := baseIdent(x.X); ok {
				out[id] = true
			}
		case *minic.DeclStmt:
			out[x.Decl.Name] = true
		}
		return true
	})
	return out
}

const maxInlineDepth = 3

// collectAccesses walks the body recording array accesses. guarded is true
// under conditionals. file enables descending into called functions.
func collectAccesses(n minic.Node, info *LoopInfo, invariant func(string) bool, guarded bool, file *minic.File, depth int) {
	switch x := n.(type) {
	case nil:
		return
	case *minic.Block:
		for _, s := range x.Stmts {
			collectAccesses(s, info, invariant, guarded, file, depth)
		}
	case *minic.DeclStmt:
		if x.Decl.Init != nil {
			collectExprAccesses(x.Decl.Init, info, invariant, guarded, false, file, depth)
		}
	case *minic.ExprStmt:
		collectExprAccesses(x.X, info, invariant, guarded, false, file, depth)
	case *minic.AssignStmt:
		collectExprAccesses(x.LHS, info, invariant, guarded, true, file, depth)
		if x.Op != "=" {
			// Compound assignment also reads the LHS.
			collectExprAccesses(x.LHS, info, invariant, guarded, false, file, depth)
		}
		collectExprAccesses(x.RHS, info, invariant, guarded, false, file, depth)
	case *minic.IncDecStmt:
		collectExprAccesses(x.X, info, invariant, guarded, true, file, depth)
		collectExprAccesses(x.X, info, invariant, guarded, false, file, depth)
	case *minic.IfStmt:
		collectExprAccesses(x.Cond, info, invariant, guarded, false, file, depth)
		collectAccesses(x.Then, info, invariant, true, file, depth)
		if x.Else != nil {
			collectAccesses(x.Else, info, invariant, true, file, depth)
		}
	case *minic.ForStmt:
		info.HasInnerLoops = true
		if x.Init != nil {
			collectAccesses(x.Init, info, invariant, guarded, file, depth)
		}
		if x.Cond != nil {
			collectExprAccesses(x.Cond, info, invariant, guarded, false, file, depth)
		}
		if x.Post != nil {
			collectAccesses(x.Post, info, invariant, guarded, file, depth)
		}
		// Inner loop induction variables are not invariant; the invariant
		// callback already handles this via assignedVars.
		collectAccesses(x.Body, info, invariant, guarded, file, depth)
	case *minic.WhileStmt:
		info.HasWhile = true
		collectExprAccesses(x.Cond, info, invariant, guarded, false, file, depth)
		collectAccesses(x.Body, info, invariant, guarded, file, depth)
	case *minic.ReturnStmt:
		if x.X != nil {
			collectExprAccesses(x.X, info, invariant, guarded, false, file, depth)
		}
	case *minic.PragmaStmt, *minic.BreakStmt, *minic.ContinueStmt:
	}
}

// collectExprAccesses records subscripted accesses inside an expression.
func collectExprAccesses(e minic.Expr, info *LoopInfo, invariant func(string) bool, guarded, write bool, file *minic.File, depth int) {
	switch x := e.(type) {
	case nil:
		return
	case *minic.IndexExpr:
		recordAccess(x, "", info, invariant, guarded, write)
		collectExprAccesses(x.Index, info, invariant, guarded, false, file, depth)
		// A[i][j] style nesting: the base may itself subscript.
		if inner, ok := x.X.(*minic.IndexExpr); ok {
			collectExprAccesses(inner, info, invariant, guarded, false, file, depth)
		}
	case *minic.MemberExpr:
		// pts[i].f — array-of-structures access.
		if ie, ok := x.X.(*minic.IndexExpr); ok {
			recordAccess(ie, x.Field, info, invariant, guarded, write)
			collectExprAccesses(ie.Index, info, invariant, guarded, false, file, depth)
			return
		}
		collectExprAccesses(x.X, info, invariant, guarded, write, file, depth)
	case *minic.BinaryExpr:
		collectExprAccesses(x.X, info, invariant, guarded, false, file, depth)
		collectExprAccesses(x.Y, info, invariant, guarded, false, file, depth)
	case *minic.UnaryExpr:
		collectExprAccesses(x.X, info, invariant, guarded, x.Op == "*" && write, file, depth)
	case *minic.ParenExpr:
		collectExprAccesses(x.X, info, invariant, guarded, write, file, depth)
	case *minic.CondExpr:
		collectExprAccesses(x.Cond, info, invariant, guarded, false, file, depth)
		// Branch accesses are conditional, like accesses under an if.
		collectExprAccesses(x.Then, info, invariant, true, false, file, depth)
		collectExprAccesses(x.Else, info, invariant, true, false, file, depth)
	case *minic.CallExpr:
		for _, a := range x.Args {
			collectExprAccesses(a, info, invariant, guarded, false, file, depth)
		}
		if _, builtin := minic.Builtins[x.Fun.Name]; builtin {
			return
		}
		info.HasCalls = true
		info.CallTargets = append(info.CallTargets, x.Fun.Name)
		// Descend one level into user functions to find accesses to
		// globals (common shape: kernel body in a helper function).
		if file != nil && depth < maxInlineDepth {
			if fd := file.Func(x.Fun.Name); fd != nil && fd.Body != nil {
				collectAccesses(fd.Body, info, func(string) bool { return false }, guarded, file, depth+1)
			}
		}
	}
}

func recordAccess(ie *minic.IndexExpr, field string, info *LoopInfo, invariant func(string) bool, guarded, write bool) {
	name, ok := baseIdent(ie.X)
	if !ok {
		return
	}
	kind, stride, offset, offConst, idxArrays := classifyIndex(ie.Index, info.IndexVar, invariant)
	var elem minic.Type
	if t := ie.Type(); t != nil {
		elem = t
	}
	if field != "" {
		if st, ok := elem.(*minic.StructType); ok {
			if f := st.Field(field); f != nil {
				elem = f.Type
			}
		}
	}
	acc := ArrayAccess{
		Array:       name,
		Elem:        elem,
		Index:       ie.Index,
		Write:       write,
		Kind:        kind,
		Stride:      stride,
		Offset:      offset,
		OffsetConst: offConst,
		IndexArrays: idxArrays,
		Guarded:     guarded,
		Field:       field,
	}
	info.Accesses = append(info.Accesses, acc)
	if write {
		info.ArraysWritten[name] = true
	} else {
		info.ArraysRead[name] = true
	}
}

// collectScalarReads finds loop-invariant scalars the body reads; these
// become by-value in() items.
func collectScalarReads(fs *minic.ForStmt, info *LoopInfo, assigned map[string]bool) {
	seen := map[string]bool{}
	// Walk the whole loop, not just the body: bound variables (e.g. `n` in
	// `i < n`) must reach the device too.
	minic.Inspect(fs, func(n minic.Node) bool {
		id, ok := n.(*minic.Ident)
		if !ok || id.Name == info.IndexVar || assigned[id.Name] || seen[id.Name] {
			return true
		}
		if id.Sym != nil {
			if _, isArr := id.Sym.Type.(*minic.Array); isArr {
				return true
			}
			if _, isPtr := id.Sym.Type.(*minic.Pointer); isPtr {
				return true
			}
			if id.Sym.Kind == minic.SymFunc {
				return true
			}
		} else if info.ArraysRead[id.Name] || info.ArraysWritten[id.Name] {
			return true
		}
		seen[id.Name] = true
		info.ScalarReads = append(info.ScalarReads, id.Name)
		return true
	})
}

// IrregularAccesses returns the accesses that break contiguity.
func (info *LoopInfo) IrregularAccesses() []ArrayAccess {
	var out []ArrayAccess
	for _, a := range info.Accesses {
		if a.Irregular() {
			out = append(out, a)
		}
	}
	return out
}

// Vectorizable reports whether the auto-vectorizer would succeed on the
// body: affine unit-or-zero-stride accesses only (branches are masked on
// 512-bit SIMD, so plain ifs are allowed), no while loops, and no opaque
// or indirect subscripts.
func (info *LoopInfo) Vectorizable() bool {
	if info.HasWhile {
		return false
	}
	for _, a := range info.Accesses {
		if a.Irregular() {
			return false
		}
	}
	return true
}

// StreamLegal implements the paper's §III-A legality check: data streaming
// applies when every array subscript is a*i + b with constant a and b, and
// the loop is a parallel loop. Stride magnitude above 1 leaves holes in
// blocks, so only |a| <= 1 with constant offsets passes.
func (info *LoopInfo) StreamLegal() bool {
	if !info.Parallel {
		return false
	}
	for _, a := range info.Accesses {
		if a.Kind != AccessAffine || !a.OffsetConst || a.Field != "" {
			return false
		}
		if a.Stride != 1 && a.Stride != 0 {
			return false
		}
	}
	return len(info.Accesses) > 0
}

// IrregularFraction returns the fraction of per-iteration traffic moved by
// irregular accesses, feeding the machine model's bandwidth derating.
func (info *LoopInfo) IrregularFraction() float64 {
	var total, irr int64
	for _, a := range info.Accesses {
		sz := a.ElemSize()
		total += sz
		if a.Irregular() {
			irr += sz
		}
	}
	if total == 0 {
		return 0
	}
	return float64(irr) / float64(total)
}
