// Package analysis implements the static analyses COMP relies on: loop
// normalization, affine access classification (the data-streaming legality
// check from §III-A), irregular-pattern detection (the regularization
// triggers from §IV), liveness-based in/out clause inference (the Apricot
// module the paper builds on), vectorizability, and offload footprints.
package analysis

import (
	"fmt"

	"comp/internal/minic"
)

// AccessKind classifies how an array index relates to the loop variable.
type AccessKind int

// Access kinds.
const (
	// AccessAffine indexes are a*i + b with constant a (the offset b may be
	// a loop-invariant expression; see OffsetConst).
	AccessAffine AccessKind = iota
	// AccessIndirect indexes read another array, e.g. A[B[i]].
	AccessIndirect
	// AccessOpaque indexes defeat the analysis (non-linear, loop-variant
	// symbols, calls).
	AccessOpaque
)

func (k AccessKind) String() string {
	switch k {
	case AccessAffine:
		return "affine"
	case AccessIndirect:
		return "indirect"
	}
	return "opaque"
}

// ArrayAccess describes one subscripted access inside a loop body.
type ArrayAccess struct {
	// Array is the subscripted variable's name.
	Array string
	// Elem is the element type (nil when unresolved).
	Elem minic.Type
	// Index is the subscript expression.
	Index minic.Expr
	// Write reports whether the access stores.
	Write bool
	// Kind classifies the subscript.
	Kind AccessKind
	// Stride is the coefficient of the loop variable (valid when affine).
	Stride int64
	// Offset is the remainder of the affine form; nil means zero.
	Offset minic.Expr
	// OffsetConst reports that Offset is a compile-time integer constant
	// (or nil). The paper's streaming legality check requires this.
	OffsetConst bool
	// IndexArrays lists arrays read inside the subscript (indirect case).
	IndexArrays []string
	// Guarded reports the access sits under a branch; the paper's array
	// reordering declines guarded accesses for safety (§IV).
	Guarded bool
	// Field is set for array-of-structures member accesses, pts[i].f.
	Field string
}

// ElemSize returns the accessed element size in bytes (struct member
// accesses report the member size).
func (a ArrayAccess) ElemSize() int64 {
	if a.Elem == nil {
		return 8
	}
	return a.Elem.Size()
}

// Unit reports whether the access walks memory contiguously with the loop.
func (a ArrayAccess) Unit() bool { return a.Kind == AccessAffine && a.Stride == 1 && a.Field == "" }

// Irregular reports whether the access breaks contiguity: gathers, strides
// other than one, or AoS member walks.
func (a ArrayAccess) Irregular() bool {
	switch a.Kind {
	case AccessIndirect, AccessOpaque:
		return true
	}
	return a.Stride != 1 && a.Stride != 0 || a.Field != ""
}

func (a ArrayAccess) String() string {
	rw := "read"
	if a.Write {
		rw = "write"
	}
	return fmt.Sprintf("%s %s[%s] (%s, stride %d)", rw, a.Array, minic.ExprString(a.Index), a.Kind, a.Stride)
}

// linearForm decomposes e as stride*ivar + offset where stride is a
// compile-time constant. invariant reports whether a symbol may be treated
// as loop-invariant.
func linearForm(e minic.Expr, ivar string, invariant func(string) bool) (stride int64, offset minic.Expr, ok bool) {
	switch x := e.(type) {
	case *minic.IntLit:
		return 0, x, true
	case *minic.Ident:
		if x.Name == ivar {
			return 1, nil, true
		}
		if invariant(x.Name) {
			return 0, x, true
		}
		return 0, nil, false
	case *minic.ParenExpr:
		return linearForm(x.X, ivar, invariant)
	case *minic.UnaryExpr:
		if x.Op != "-" {
			return 0, nil, false
		}
		s, off, ok := linearForm(x.X, ivar, invariant)
		if !ok {
			return 0, nil, false
		}
		return -s, negate(off), true
	case *minic.BinaryExpr:
		switch x.Op {
		case "+", "-":
			s1, o1, ok1 := linearForm(x.X, ivar, invariant)
			s2, o2, ok2 := linearForm(x.Y, ivar, invariant)
			if !ok1 || !ok2 {
				return 0, nil, false
			}
			if x.Op == "+" {
				return s1 + s2, addExprs(o1, o2), true
			}
			return s1 - s2, addExprs(o1, negate(o2)), true
		case "*":
			// One side must be an integer constant.
			if c, isConst := ConstInt(x.X); isConst {
				s, o, ok := linearForm(x.Y, ivar, invariant)
				if !ok {
					return 0, nil, false
				}
				return c * s, mulConst(c, o), true
			}
			if c, isConst := ConstInt(x.Y); isConst {
				s, o, ok := linearForm(x.X, ivar, invariant)
				if !ok {
					return 0, nil, false
				}
				return c * s, mulConst(c, o), true
			}
			return 0, nil, false
		}
	}
	return 0, nil, false
}

// ConstInt evaluates a compile-time constant integer expression.
func ConstInt(e minic.Expr) (int64, bool) {
	switch x := e.(type) {
	case nil:
		return 0, true
	case *minic.IntLit:
		return x.Value, true
	case *minic.ParenExpr:
		return ConstInt(x.X)
	case *minic.UnaryExpr:
		if x.Op != "-" {
			return 0, false
		}
		v, ok := ConstInt(x.X)
		return -v, ok
	case *minic.BinaryExpr:
		a, ok1 := ConstInt(x.X)
		b, ok2 := ConstInt(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case "+":
			return a + b, true
		case "-":
			return a - b, true
		case "*":
			return a * b, true
		case "/":
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case "%":
			if b == 0 {
				return 0, false
			}
			return a % b, true
		}
	}
	return 0, false
}

func negate(e minic.Expr) minic.Expr {
	if e == nil {
		return nil
	}
	if lit, ok := e.(*minic.IntLit); ok {
		return &minic.IntLit{Value: -lit.Value}
	}
	return &minic.UnaryExpr{Op: "-", X: e}
}

func addExprs(a, b minic.Expr) minic.Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	la, aok := a.(*minic.IntLit)
	lb, bok := b.(*minic.IntLit)
	if aok && bok {
		return &minic.IntLit{Value: la.Value + lb.Value}
	}
	return &minic.BinaryExpr{Op: "+", X: a, Y: b}
}

func mulConst(c int64, e minic.Expr) minic.Expr {
	if e == nil {
		return nil
	}
	if lit, ok := e.(*minic.IntLit); ok {
		return &minic.IntLit{Value: c * lit.Value}
	}
	return &minic.BinaryExpr{Op: "*", X: &minic.IntLit{Value: c}, Y: e}
}

// indexArrays collects names of arrays subscripted inside e.
func indexArrays(e minic.Expr) []string {
	var out []string
	minic.Inspect(e, func(n minic.Node) bool {
		if ie, ok := n.(*minic.IndexExpr); ok {
			if id, ok := baseIdent(ie.X); ok {
				out = append(out, id)
			}
		}
		return true
	})
	return out
}

// baseIdent unwraps an expression to a plain identifier name.
func baseIdent(e minic.Expr) (string, bool) {
	switch x := e.(type) {
	case *minic.Ident:
		return x.Name, true
	case *minic.ParenExpr:
		return baseIdent(x.X)
	}
	return "", false
}

// ClassifySite classifies one subscript against a loop index variable,
// treating every other symbol as loop-invariant. The interpreter uses it at
// compile time to decide which access sites count as irregular traffic.
func ClassifySite(idx minic.Expr, ivar string) (AccessKind, int64) {
	kind, stride, _, _, _ := classifyIndex(idx, ivar, func(string) bool { return true })
	return kind, stride
}

// classifyIndex builds the access classification for one subscript.
func classifyIndex(idx minic.Expr, ivar string, invariant func(string) bool) (AccessKind, int64, minic.Expr, bool, []string) {
	if arrs := indexArrays(idx); len(arrs) > 0 {
		return AccessIndirect, 0, nil, false, arrs
	}
	stride, offset, ok := linearForm(idx, ivar, invariant)
	if !ok {
		// A subscript that never mentions the loop variable (e.g. an
		// inner-loop walk over a lookup table, centroids[j*d + k]) touches
		// the same element set in every iteration of the analyzed loop.
		// For blocking purposes that is a stride-0 access over an array
		// that must stay whole on the device.
		if !mentionsIdent(idx, ivar) {
			return AccessAffine, 0, idx, true, nil
		}
		return AccessOpaque, 0, nil, false, nil
	}
	_, offsetConst := ConstInt(offset)
	return AccessAffine, stride, offset, offsetConst, nil
}

// mentionsIdent reports whether the expression references the name.
func mentionsIdent(e minic.Expr, name string) bool {
	found := false
	minic.Inspect(e, func(n minic.Node) bool {
		if id, ok := n.(*minic.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
