package analysis

import (
	"reflect"
	"strings"
	"testing"

	"comp/internal/minic"
)

// parseLoop parses src, checks it, and returns the first pragma-annotated
// (or any, if none annotated) for loop plus the file.
func parseLoop(t *testing.T, src string) (*minic.ForStmt, *minic.File) {
	t.Helper()
	f, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := minic.Check(f).Err(); err != nil {
		t.Fatalf("check: %v", err)
	}
	var first, annotated *minic.ForStmt
	minic.Inspect(f, func(n minic.Node) bool {
		if fs, ok := n.(*minic.ForStmt); ok {
			if first == nil {
				first = fs
			}
			if len(fs.Pragmas) > 0 && annotated == nil {
				annotated = fs
			}
		}
		return true
	})
	if annotated != nil {
		return annotated, f
	}
	if first == nil {
		t.Fatal("no for loop found")
	}
	return first, f
}

func analyzeSrc(t *testing.T, src string) (*LoopInfo, *minic.File) {
	t.Helper()
	fs, f := parseLoop(t, src)
	info, err := Analyze(fs, f)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return info, f
}

const regularLoop = `
float a[1000];
float b[1000];
float c[1000];
int n;
void f(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        c[i] = a[i] * 2.0 + b[i + 1];
    }
}
`

func TestAnalyzeRegularLoop(t *testing.T) {
	info, _ := analyzeSrc(t, regularLoop)
	if info.IndexVar != "i" || info.Step != 1 {
		t.Fatalf("index=%s step=%d", info.IndexVar, info.Step)
	}
	if minic.ExprString(info.Upper) != "n" || minic.ExprString(info.Lower) != "0" {
		t.Fatalf("bounds = [%s, %s)", minic.ExprString(info.Lower), minic.ExprString(info.Upper))
	}
	if !info.Parallel {
		t.Error("parallel pragma not detected")
	}
	if len(info.Accesses) != 3 {
		t.Fatalf("accesses = %d, want 3", len(info.Accesses))
	}
	for _, a := range info.Accesses {
		if a.Kind != AccessAffine || a.Stride != 1 {
			t.Errorf("access %v: kind=%v stride=%d, want affine/1", a, a.Kind, a.Stride)
		}
	}
	if !info.StreamLegal() {
		t.Error("regular loop should pass streaming legality")
	}
	if !info.Vectorizable() {
		t.Error("regular loop should vectorize")
	}
	if info.IrregularFraction() != 0 {
		t.Errorf("irregular fraction = %v, want 0", info.IrregularFraction())
	}
}

func TestAnalyzeAffineOffsets(t *testing.T) {
	info, _ := analyzeSrc(t, `
float a[100];
float b[100];
int n;
void f(void) {
    int i;
    for (i = 0; i < n; i++) {
        b[i] = a[2 * i + 3] + a[i - 1];
    }
}
`)
	var strides []int64
	for _, a := range info.Accesses {
		if a.Array == "a" {
			strides = append(strides, a.Stride)
			if !a.OffsetConst {
				t.Errorf("access %v offset not constant", a)
			}
		}
	}
	if !reflect.DeepEqual(strides, []int64{2, 1}) {
		t.Fatalf("strides = %v, want [2 1]", strides)
	}
	if info.StreamLegal() {
		t.Error("stride-2 loop must fail streaming legality")
	}
}

func TestAnalyzeGather(t *testing.T) {
	info, _ := analyzeSrc(t, `
float a[100];
int b[100];
float c[100];
int n;
void f(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        c[i] = a[b[i]];
    }
}
`)
	var gather *ArrayAccess
	for i := range info.Accesses {
		if info.Accesses[i].Array == "a" {
			gather = &info.Accesses[i]
		}
	}
	if gather == nil || gather.Kind != AccessIndirect {
		t.Fatalf("a access = %+v, want indirect", gather)
	}
	if len(gather.IndexArrays) != 1 || gather.IndexArrays[0] != "b" {
		t.Fatalf("index arrays = %v, want [b]", gather.IndexArrays)
	}
	if info.Vectorizable() {
		t.Error("gather loop must not vectorize")
	}
	if info.StreamLegal() {
		t.Error("gather loop must fail streaming legality")
	}
	irr := ClassifyIrregular(info)
	if len(irr) != 1 || irr[0].Pattern != PatternGather {
		t.Fatalf("irregular = %+v, want one gather", irr)
	}
	if f := info.IrregularFraction(); f <= 0 || f >= 1 {
		t.Errorf("irregular fraction = %v, want in (0,1)", f)
	}
}

func TestAnalyzeStridedPattern(t *testing.T) {
	info, _ := analyzeSrc(t, `
float a[1000];
float c[100];
int n;
void f(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        c[i] = a[8 * i];
    }
}
`)
	irr := ClassifyIrregular(info)
	if len(irr) != 1 || irr[0].Pattern != PatternStrided {
		t.Fatalf("irregular = %+v, want one strided", irr)
	}
	cands := ReorderCandidates(info)
	if len(cands) != 1 {
		t.Fatalf("reorder candidates = %d, want 1", len(cands))
	}
}

func TestAnalyzeAoSPattern(t *testing.T) {
	info, _ := analyzeSrc(t, `
struct pt {
    float x;
    float y;
};
struct pt pts[100];
float out[100];
int n;
void f(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        out[i] = pts[i].x + pts[i].y;
    }
}
`)
	irr := ClassifyIrregular(info)
	if len(irr) != 2 {
		t.Fatalf("irregular = %d accesses, want 2 AoS", len(irr))
	}
	for _, x := range irr {
		if x.Pattern != PatternAoS {
			t.Errorf("pattern = %v, want aos", x.Pattern)
		}
	}
	// AoS member access of a float should report 4-byte elements.
	for _, x := range irr {
		if x.Access.ElemSize() != 4 {
			t.Errorf("elem size = %d, want 4", x.Access.ElemSize())
		}
	}
}

func TestAnalyzeGuardedAccessExcluded(t *testing.T) {
	info, _ := analyzeSrc(t, `
float a[100];
int b[100];
float c[100];
int n;
void f(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        if (i % 2 == 0) {
            c[i] = a[b[i]];
        }
    }
}
`)
	if got := len(ReorderCandidates(info)); got != 0 {
		t.Fatalf("guarded gather produced %d reorder candidates, want 0", got)
	}
}

func TestInferClauses(t *testing.T) {
	info, _ := analyzeSrc(t, `
float a[100];
float b[100];
float c[100];
int n;
float scale;
void f(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        c[i] = a[i] * scale;
        b[i] = b[i] + c[i];
    }
}
`)
	c := InferClauses(info)
	if !reflect.DeepEqual(c.In, []string{"a"}) {
		t.Errorf("In = %v, want [a]", c.In)
	}
	if !reflect.DeepEqual(c.InOut, []string{"b", "c"}) {
		t.Errorf("InOut = %v, want [b c]", c.InOut)
	}
	if len(c.Out) != 0 {
		t.Errorf("Out = %v, want empty", c.Out)
	}
	wantScalars := []string{"n", "scale"}
	if !reflect.DeepEqual(c.Scalars, wantScalars) {
		t.Errorf("Scalars = %v, want %v", c.Scalars, wantScalars)
	}
}

func TestInferClausesPureOutput(t *testing.T) {
	info, _ := analyzeSrc(t, `
float c[100];
int n;
void f(void) {
    int i;
    for (i = 0; i < n; i++) {
        c[i] = 1.0;
    }
}
`)
	c := InferClauses(info)
	if !reflect.DeepEqual(c.Out, []string{"c"}) || len(c.In) != 0 || len(c.InOut) != 0 {
		t.Fatalf("clauses = %+v, want only Out=[c]", c)
	}
}

func TestClausesUnion(t *testing.T) {
	u := Union(
		Clauses{In: []string{"a", "w"}, Out: []string{"b"}, Scalars: []string{"n"}},
		Clauses{In: []string{"b"}, Out: []string{"a"}, Scalars: []string{"n", "k"}},
	)
	if !reflect.DeepEqual(u.InOut, []string{"a", "b"}) {
		t.Errorf("InOut = %v, want [a b]", u.InOut)
	}
	if !reflect.DeepEqual(u.In, []string{"w"}) {
		t.Errorf("In = %v, want [w]", u.In)
	}
	if !reflect.DeepEqual(u.Scalars, []string{"k", "n"}) {
		t.Errorf("Scalars = %v, want [k n]", u.Scalars)
	}
}

func TestClausesMatches(t *testing.T) {
	info, _ := analyzeSrc(t, regularLoop)
	c := InferClauses(info)
	p, err := minic.ParsePragma("#pragma offload target(mic:0) in(a : length(n)) out(c : length(n))", minic.Pos{})
	if err != nil {
		t.Fatal(err)
	}
	missing := c.Matches(p)
	if !reflect.DeepEqual(missing, []string{"b"}) {
		t.Fatalf("missing = %v, want [b]", missing)
	}
}

func TestSplitPointSradShape(t *testing.T) {
	// The srad pattern: irregular gathers first, regular compute after.
	info, f := analyzeSrc(t, `
float J[10000];
int iN[100];
int iS[100];
float dN[100];
float dS[100];
float c[100];
int n;
void f(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        float jc = J[i];
        float jn = J[iN[i]];
        float js = J[iS[i]];
        dN[i] = jn - jc;
        dS[i] = js - jc;
        c[i] = (dN[i] * dN[i] + dS[i] * dS[i]) / (jc * jc + 1.0);
    }
}
`)
	sp := SplitPoint(info, f)
	if sp != 3 {
		t.Fatalf("split point = %d, want 3 (after the three J loads)", sp)
	}
}

func TestSplitPointDeclinesIrregularWrite(t *testing.T) {
	info, f := analyzeSrc(t, `
float a[100];
int b[100];
int n;
void f(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        a[b[i]] = 1.0;
        a[i] = a[i] + 1.0;
    }
}
`)
	if sp := SplitPoint(info, f); sp != 0 {
		t.Fatalf("split point = %d, want 0 (irregular write)", sp)
	}
}

func TestSplitPointNoRegularSuffix(t *testing.T) {
	info, f := analyzeSrc(t, `
float a[100];
int b[100];
float c[100];
int n;
void f(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        c[i] = a[b[i]];
    }
}
`)
	if sp := SplitPoint(info, f); sp != 0 {
		t.Fatalf("split point = %d, want 0 (no regular suffix)", sp)
	}
}

func TestAnalyzeCallTargets(t *testing.T) {
	info, _ := analyzeSrc(t, `
float prices[100];
float sptprice[100];
int n;
float kern(float x) {
    return sqrt(x) * exp(x);
}
void f(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        prices[i] = kern(sptprice[i]);
    }
}
`)
	if !info.HasCalls || len(info.CallTargets) != 1 || info.CallTargets[0] != "kern" {
		t.Fatalf("calls = %v", info.CallTargets)
	}
	// sqrt/exp are builtins, not user calls; loop stays vectorizable.
	if !info.Vectorizable() {
		t.Error("loop with inlinable call should vectorize")
	}
}

func TestAnalyzeCalleeGlobalAccesses(t *testing.T) {
	info, _ := analyzeSrc(t, `
float table[100];
float out[100];
int n;
float lookup(int k) {
    return table[k];
}
void f(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        out[i] = lookup(i);
    }
}
`)
	if !info.ArraysRead["table"] {
		t.Fatal("interprocedural access to table not found")
	}
}

func TestAnalyzeLoopNormalizationErrors(t *testing.T) {
	cases := []string{
		"int n; void f(void) { int i; for (i = n; i > 0; i--) { n = n; } }",
		"int n; void f(void) { int i; int j; for (i = 0; j < n; i++) { n = n; } }",
		"int n; void f(void) { int i; for (i = 0; i != n; i++) { n = n; } }",
		"int n; void f(void) { int i; for (i = 0; i < n; i *= 2) { n = n; } }",
		"int n; void f(void) { int i; for (i = 0; i < n; i += n) { n = n; } }",
	}
	for _, src := range cases {
		fs, f := parseLoop(t, src)
		if _, err := Analyze(fs, f); err == nil {
			t.Errorf("no normalization error for %q", src)
		}
	}
}

func TestAnalyzeStepAndInclusiveBound(t *testing.T) {
	info, _ := analyzeSrc(t, `
int n;
float a[100];
void f(void) {
    int i;
    for (i = 2; i <= n; i += 4) {
        a[i] = 0.0;
    }
}
`)
	if info.Step != 4 {
		t.Fatalf("step = %d, want 4", info.Step)
	}
	if got := minic.ExprString(info.Upper); got != "n + 1" {
		t.Fatalf("upper = %q, want n + 1", got)
	}
}

func TestTripCount(t *testing.T) {
	info, _ := analyzeSrc(t, `
int n;
float a[100];
void f(void) {
    int i;
    for (i = 0; i < n; i += 3) {
        a[i] = 0.0;
    }
}
`)
	eval := func(e minic.Expr) (int64, error) {
		if id, ok := e.(*minic.Ident); ok && id.Name == "n" {
			return 10, nil
		}
		if v, ok := ConstInt(e); ok {
			return v, nil
		}
		t.Fatalf("unexpected expr %s", minic.ExprString(e))
		return 0, nil
	}
	got, err := TripCount(info, eval)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 { // 0,3,6,9
		t.Fatalf("trip count = %d, want 4", got)
	}
}

func TestFootprint(t *testing.T) {
	p, err := minic.ParsePragma("#pragma offload target(mic:0) in(a, b : length(n)) out(c : length(2 * n)) in(s)", minic.Pos{})
	if err != nil {
		t.Fatal(err)
	}
	eval := func(e minic.Expr) (int64, error) {
		switch x := e.(type) {
		case *minic.Ident:
			return 100, nil // n = 100
		case *minic.IntLit:
			return x.Value, nil
		case *minic.BinaryExpr:
			a, _ := ConstInt(x.X)
			return a * 100, nil
		}
		return 0, nil
	}
	sizes := func(name string) (int64, error) {
		if name == "s" {
			return 8, nil
		}
		return 4, nil
	}
	got, err := Footprint(p, eval, sizes)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(100*4 + 100*4 + 200*4 + 8)
	if got != want {
		t.Fatalf("footprint = %d, want %d", got, want)
	}
}

func TestConstInt(t *testing.T) {
	cases := []struct {
		src  string
		want int64
		ok   bool
	}{
		{"int x = 6;", 6, true},
		{"int x = 2 + 3 * 4;", 14, true},
		{"int x = (10 - 2) / 4;", 2, true},
		{"int x = -5;", -5, true},
		{"int x = 7 % 3;", 1, true},
	}
	for _, c := range cases {
		f := minic.MustParse(c.src)
		vd := f.Decls[0].(*minic.VarDecl)
		got, ok := ConstInt(vd.Init)
		if ok != c.ok || got != c.want {
			t.Errorf("%s: ConstInt = %d,%v want %d,%v", c.src, got, ok, c.want, c.ok)
		}
	}
}

func TestAccessStringAndKindString(t *testing.T) {
	info, _ := analyzeSrc(t, regularLoop)
	s := info.Accesses[0].String()
	if !strings.Contains(s, "affine") {
		t.Errorf("access string %q missing kind", s)
	}
	if AccessOpaque.String() != "opaque" || PatternOpaque.String() != "opaque" {
		t.Error("string methods broken")
	}
}

func TestWhileDisablesVectorization(t *testing.T) {
	info, _ := analyzeSrc(t, `
float a[100];
int n;
void f(void) {
    int i;
    for (i = 0; i < n; i++) {
        int k = i;
        while (k > 0) {
            k = k / 2;
        }
        a[i] = k;
    }
}
`)
	if info.Vectorizable() {
		t.Error("loop containing while must not vectorize")
	}
	if !info.HasWhile {
		t.Error("HasWhile not set")
	}
}

func TestCompoundAssignmentCountsReadAndWrite(t *testing.T) {
	info, _ := analyzeSrc(t, `
float a[100];
int n;
void f(void) {
    int i;
    for (i = 0; i < n; i++) {
        a[i] += 1.0;
    }
}
`)
	if !info.ArraysRead["a"] || !info.ArraysWritten["a"] {
		t.Fatalf("a read=%v written=%v, want both", info.ArraysRead["a"], info.ArraysWritten["a"])
	}
	c := InferClauses(info)
	if !reflect.DeepEqual(c.InOut, []string{"a"}) {
		t.Fatalf("InOut = %v, want [a]", c.InOut)
	}
}

func TestTernaryAccessesCollected(t *testing.T) {
	info, _ := analyzeSrc(t, `
float a[100];
float b[100];
float c[100];
int n;
void f(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        c[i] = a[i] > 0.0 ? a[i] : b[i];
    }
}
`)
	if !info.ArraysRead["a"] || !info.ArraysRead["b"] {
		t.Fatalf("ternary branch accesses missed: %v", info.ArraysRead)
	}
	// Branch accesses are guarded, like accesses under an if.
	guarded := 0
	for _, acc := range info.Accesses {
		if acc.Guarded {
			guarded++
		}
	}
	if guarded != 2 {
		t.Fatalf("guarded accesses = %d, want 2 (the two branches)", guarded)
	}
}
