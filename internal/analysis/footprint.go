package analysis

import (
	"fmt"

	"comp/internal/minic"
)

// Evaluator resolves an expression to a runtime integer value. The offload
// runtime supplies one bound to its variable store; tests supply simple
// maps.
type Evaluator func(minic.Expr) (int64, error)

// SizeTable resolves a variable name to its element size in bytes (for
// arrays/pointers) or its scalar size.
type SizeTable func(name string) (int64, error)

// ItemBytes returns the transfer size in bytes of one pragma item.
func ItemBytes(it minic.TransferItem, eval Evaluator, sizes SizeTable) (int64, error) {
	elem, err := sizes(it.Name)
	if err != nil {
		return 0, err
	}
	if it.Length == nil {
		return elem, nil // scalar, copied by value
	}
	n, err := eval(it.Length)
	if err != nil {
		return 0, fmt.Errorf("length of %s: %w", it.Name, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("negative length %d for %s", n, it.Name)
	}
	return n * elem, nil
}

// Footprint returns the total device memory an offload pragma requires:
// the sum of all item sizes. With LEO default lifetimes this is what must
// fit on the card simultaneously; the paper's §III-B memory-reduction
// transform exists to shrink it.
func Footprint(p *minic.Pragma, eval Evaluator, sizes SizeTable) (int64, error) {
	var total int64
	for _, it := range p.AllItems() {
		b, err := ItemBytes(it, eval, sizes)
		if err != nil {
			return 0, err
		}
		total += b
	}
	return total, nil
}

// TripCount evaluates a normalized loop's iteration count.
func TripCount(info *LoopInfo, eval Evaluator) (int64, error) {
	lo, err := eval(info.Lower)
	if err != nil {
		return 0, fmt.Errorf("loop lower bound: %w", err)
	}
	hi, err := eval(info.Upper)
	if err != nil {
		return 0, fmt.Errorf("loop upper bound: %w", err)
	}
	if hi <= lo {
		return 0, nil
	}
	return (hi - lo + info.Step - 1) / info.Step, nil
}
