package analysis

import (
	"sort"

	"comp/internal/minic"
)

// Clauses is the inferred data-movement requirement of an offload region:
// which arrays must be copied in, out, or both, and which scalars are read.
// This reimplements the Apricot liveness module the paper builds on:
// programmers write plain OpenMP loops and the compiler populates the
// offload clauses.
type Clauses struct {
	In    []string
	Out   []string
	InOut []string
	// Scalars are loop-invariant scalar reads, copied by value at offload.
	Scalars []string
}

// InferClauses derives in/out/inout sets for a loop from its access
// summary: arrays only read go in; arrays only written come out; arrays
// both read and written go inout. (A written array whose first access in
// some iteration might be a read must be transferred in as well; without
// path-sensitive analysis we conservatively treat read+written as inout,
// which is also what Apricot emits.)
func InferClauses(info *LoopInfo) Clauses {
	var c Clauses
	arrays := map[string]bool{}
	for _, a := range info.Accesses {
		arrays[a.Array] = true
	}
	for name := range arrays {
		r := info.ArraysRead[name]
		w := info.ArraysWritten[name]
		switch {
		case r && w:
			c.InOut = append(c.InOut, name)
		case w:
			c.Out = append(c.Out, name)
		default:
			c.In = append(c.In, name)
		}
	}
	c.Scalars = append(c.Scalars, info.ScalarReads...)
	sort.Strings(c.In)
	sort.Strings(c.Out)
	sort.Strings(c.InOut)
	sort.Strings(c.Scalars)
	return c
}

// Union merges clause sets (used by offload merging, which combines the
// in/out/inout clauses of each inner loop to populate the hoisted outer
// offload, §III-C). A name appearing as input in one loop and output in
// another becomes inout.
func Union(sets ...Clauses) Clauses {
	type rw struct{ r, w bool }
	arr := map[string]*rw{}
	mark := func(names []string, r, w bool) {
		for _, n := range names {
			e := arr[n]
			if e == nil {
				e = &rw{}
				arr[n] = e
			}
			e.r = e.r || r
			e.w = e.w || w
		}
	}
	scalars := map[string]bool{}
	for _, s := range sets {
		mark(s.In, true, false)
		mark(s.Out, false, true)
		mark(s.InOut, true, true)
		for _, sc := range s.Scalars {
			scalars[sc] = true
		}
	}
	var out Clauses
	for n, e := range arr {
		switch {
		case e.r && e.w:
			out.InOut = append(out.InOut, n)
		case e.w:
			out.Out = append(out.Out, n)
		default:
			out.In = append(out.In, n)
		}
	}
	for sc := range scalars {
		out.Scalars = append(out.Scalars, sc)
	}
	sort.Strings(out.In)
	sort.Strings(out.Out)
	sort.Strings(out.InOut)
	sort.Strings(out.Scalars)
	return out
}

// Matches reports whether an explicit offload pragma covers at least the
// inferred requirement (every inferred array appears in some clause).
// Used as a diagnostic: a pragma missing an inferred array is a likely
// source of wrong results on the device.
func (c Clauses) Matches(p *minic.Pragma) (missing []string) {
	have := map[string]bool{}
	for _, it := range p.AllItems() {
		have[it.Name] = true
	}
	for _, group := range [][]string{c.In, c.Out, c.InOut} {
		for _, n := range group {
			if !have[n] {
				missing = append(missing, n)
			}
		}
	}
	sort.Strings(missing)
	return missing
}
