package analysis

import (
	"comp/internal/minic"
)

// IrregularPattern enumerates the §IV access patterns COMP regularizes.
type IrregularPattern int

// Patterns.
const (
	// PatternGather is A[B[i]]: the subscript reads another array.
	// Regularized by array reordering (a permutation array A1 sorted by
	// access order).
	PatternGather IrregularPattern = iota
	// PatternStrided is A[c*i] with constant c > 1 (the nn benchmark).
	// Regularized by packing the used elements into a new dense array.
	PatternStrided
	// PatternAoS is pts[i].f: array-of-structures member walks.
	// Regularized by AoS -> SoA conversion.
	PatternAoS
	// PatternOpaque subscripts defeat classification; no transformation
	// applies and the loop keeps its irregular cost.
	PatternOpaque
)

func (p IrregularPattern) String() string {
	switch p {
	case PatternGather:
		return "gather"
	case PatternStrided:
		return "strided"
	case PatternAoS:
		return "aos"
	}
	return "opaque"
}

// Irregularity pairs an access with its pattern.
type Irregularity struct {
	Access  ArrayAccess
	Pattern IrregularPattern
}

// ClassifyIrregular maps each irregular access in the loop to the §IV
// pattern that handles it.
func ClassifyIrregular(info *LoopInfo) []Irregularity {
	var out []Irregularity
	for _, a := range info.IrregularAccesses() {
		out = append(out, Irregularity{Access: a, Pattern: patternOf(a)})
	}
	return out
}

func patternOf(a ArrayAccess) IrregularPattern {
	if a.Field != "" && a.Kind == AccessAffine {
		return PatternAoS
	}
	switch a.Kind {
	case AccessIndirect:
		return PatternGather
	case AccessAffine:
		if a.Stride > 1 || a.Stride < -1 {
			return PatternStrided
		}
	}
	return PatternOpaque
}

// SplitPoint looks for the srad shape (§IV "splitting loops"): a prefix of
// the loop body performs all the irregular reads into locally declared
// scalars or regularly indexed temporaries, and the remaining statements
// are fully regular. It returns the number of leading statements to peel
// into the gather loop, or 0 when splitting does not apply.
func SplitPoint(info *LoopInfo, file *minic.File) int {
	body := info.For.Body.Stmts
	if len(body) < 2 {
		return 0
	}
	invariantNames := assignedVars(info.For.Body)
	invariant := func(name string) bool { return name != info.IndexVar && !invariantNames[name] }

	stmtIrregular := make([]bool, len(body))
	stmtGuarded := make([]bool, len(body))
	for i, s := range body {
		sub := &LoopInfo{
			IndexVar:      info.IndexVar,
			ArraysRead:    map[string]bool{},
			ArraysWritten: map[string]bool{},
		}
		collectAccesses(s, sub, invariant, false, file, 0)
		for _, a := range sub.Accesses {
			if a.Irregular() {
				stmtIrregular[i] = true
				// Splitting an irregular *write* is unsafe without a
				// scatter epilogue; decline.
				if a.Write {
					return 0
				}
			}
			if a.Guarded && a.Irregular() {
				stmtGuarded[i] = true
			}
		}
		if sub.HasWhile {
			return 0
		}
	}
	// Find the last irregular statement; everything before and including it
	// must be peelable, everything after must be regular.
	last := -1
	for i, irr := range stmtIrregular {
		if irr {
			if stmtGuarded[i] {
				return 0 // §IV: only unguarded accesses are transformed
			}
			last = i
		}
	}
	if last < 0 || last == len(body)-1 {
		return 0 // nothing irregular, or no regular suffix to vectorize
	}
	// The peeled prefix communicates with the suffix through values it
	// defines. Those definitions must be buffered per iteration, which the
	// transform does by promoting scalars to temporary arrays indexed by i.
	// That is always possible for scalar and regular array definitions, so
	// the split point is simply after the last irregular statement.
	return last + 1
}

// ReorderCandidates returns gather/strided read accesses eligible for the
// array-reordering transformation: unguarded irregular reads (§IV applies
// the transformation "only on arrays whose accesses are not guarded by any
// branch"; writes need a copy-back epilogue which applies only when the
// loop is parallel).
func ReorderCandidates(info *LoopInfo) []Irregularity {
	var out []Irregularity
	for _, ir := range ClassifyIrregular(info) {
		if ir.Access.Guarded {
			continue
		}
		if ir.Pattern != PatternGather && ir.Pattern != PatternStrided {
			continue
		}
		if ir.Access.Write && !info.Parallel {
			continue
		}
		out = append(out, ir)
	}
	return out
}
