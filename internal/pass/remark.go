// Package pass is the COMP pass manager: it runs an ordered pipeline of
// optimization passes (offload merging §III-C, regularization §IV, data
// streaming §III, plus the Apricot-style auto-offload front end) over a
// MiniC translation unit and records every decision — applied,
// skipped-illegal, skipped-unprofitable — as a structured remark in the
// style of LLVM optimization remarks.
//
// The pipeline is specified as a comma-separated string of pass names
// (DefaultSpec is "merge,regularize,streaming"), so CLIs and the serving
// layer can request non-default pipelines without new driver code. All
// passes share one Context: a single fresh-name sequencer (so composed
// passes never mint colliding identifiers), a memoized analysis cache
// invalidated on AST mutation, and the deferred-gather handoff between
// regularization and streaming.
package pass

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Verdict classifies one pass decision.
type Verdict string

const (
	// VerdictApplied: the transformation fired.
	VerdictApplied Verdict = "applied"
	// VerdictSkippedIllegal: the transformation would be unsound or its
	// preconditions do not hold (legality).
	VerdictSkippedIllegal Verdict = "skipped-illegal"
	// VerdictSkippedUnprofitable: legal but not worth doing here
	// (profitability).
	VerdictSkippedUnprofitable Verdict = "skipped-unprofitable"
)

// Applied reports whether the verdict records a fired transformation.
func (v Verdict) Applied() bool { return v == VerdictApplied }

// Remark is one structured pass decision, LLVM-optimization-remark style.
type Remark struct {
	// Pass is the pipeline stage that made the decision (e.g. "regularize").
	Pass string `json:"pass"`
	// Op is the concrete transformation within the pass (e.g. "split",
	// "reorder", "stream"); equal to Pass for single-op passes.
	Op string `json:"op,omitempty"`
	// Pos locates the loop the decision is about, as "line:col".
	Pos string `json:"pos,omitempty"`
	// Verdict says what happened; Reason says why, human-readably.
	Verdict Verdict `json:"verdict"`
	Reason  string  `json:"reason"`
	// Args carries the machine-readable parameters of the decision
	// (e.g. blocks=20, accesses=2).
	Args map[string]any `json:"args,omitempty"`
}

// String renders the remark as one line:
//
//	pos pass/op verdict: reason (k=v, ...)
func (r Remark) String() string {
	var b strings.Builder
	if r.Pos != "" {
		fmt.Fprintf(&b, "%s ", r.Pos)
	}
	b.WriteString(r.Pass)
	if r.Op != "" && r.Op != r.Pass {
		b.WriteString("/" + r.Op)
	}
	fmt.Fprintf(&b, " %s: %s", r.Verdict, r.Reason)
	if len(r.Args) > 0 {
		keys := make([]string, 0, len(r.Args))
		for k := range r.Args {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%v", k, r.Args[k])
		}
		fmt.Fprintf(&b, " (%s)", strings.Join(parts, ", "))
	}
	return b.String()
}

// Remarks is an ordered remark trail.
type Remarks []Remark

// Has reports whether a transformation with the given op (or pass) name
// was applied.
func (rs Remarks) Has(name string) bool {
	for _, r := range rs {
		if r.Verdict.Applied() && (r.Op == name || r.Pass == name) {
			return true
		}
	}
	return false
}

// Applied returns the subset of remarks whose transformations fired.
func (rs Remarks) Applied() Remarks {
	var out Remarks
	for _, r := range rs {
		if r.Verdict.Applied() {
			out = append(out, r)
		}
	}
	return out
}

// Skipped returns the subset of remarks that declined, with reasons.
func (rs Remarks) Skipped() Remarks {
	var out Remarks
	for _, r := range rs {
		if !r.Verdict.Applied() {
			out = append(out, r)
		}
	}
	return out
}

// Render returns the trail as text, one remark per line.
func (rs Remarks) Render() string {
	var b strings.Builder
	for _, r := range rs {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteJSON writes the trail as indented JSON (deterministic: struct
// field order plus sorted map keys).
func (rs Remarks) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}
