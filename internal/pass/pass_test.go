package pass_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"comp/internal/minic"
	"comp/internal/pass"
	"comp/internal/transform"
)

// twoLoops composes the two transforms that mint the most fresh names: a
// gather loop (regularize reorders it, streaming consumes the pipelined
// gather) and a second plain streaming loop. Before the shared per-Context
// sequencer, each transform call started its own counter, so the two
// streamed loops both minted __n1, __bs2, ... and only lexical scoping kept
// the program legal.
const twoLoops = `
float a[65536];
int idx[65536];
float c[65536];
float in2[65536];
float out2[65536];
int n;
int main(void) {
    int i;
    n = 65536;
    for (i = 0; i < n; i++) {
        a[i] = i * 0.25;
        idx[i] = (i * 31) % n;
        in2[i] = i * 0.5;
    }
    #pragma offload target(mic:0) in(a, idx : length(n)) out(c : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        c[i] = a[idx[i]] + 1.0;
    }
    #pragma offload target(mic:0) in(in2 : length(n)) out(out2 : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        out2[i] = in2[i] * 2.0;
    }
    return 0;
}
`

func mustParse(t *testing.T, src string) *minic.File {
	t.Helper()
	f, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(f).Err(); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestFreshNamesUniqueAcrossPasses is the regression test for the shared
// per-Context name sequencer: composing regularization (ReorderArrays) with
// streaming (Stream) over multiple loops must not declare the same
// "__"-prefixed identifier twice anywhere in the file — not even in
// disjoint scopes, where duplicates would be legal but unreadable and one
// hoist away from a miscompile.
func TestFreshNamesUniqueAcrossPasses(t *testing.T) {
	f := mustParse(t, twoLoops)
	m, err := pass.Parse("regularize,streaming", pass.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	remarks, err := m.Run(f)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, remarks.Render())
	}
	// Both transforms must actually have fired for the test to mean anything.
	if !remarks.Has("reorder") {
		t.Fatalf("reorder did not fire:\n%s", remarks.Render())
	}
	if !remarks.Has("stream") {
		t.Fatalf("stream did not fire:\n%s", remarks.Render())
	}
	streams := 0
	for _, r := range remarks.Applied() {
		if r.Op == "stream" {
			streams++
		}
	}
	if streams < 2 {
		t.Fatalf("want both loops streamed, got %d:\n%s", streams, remarks.Render())
	}

	seen := map[string]int{}
	minic.Inspect(f, func(n minic.Node) bool {
		if d, ok := n.(*minic.VarDecl); ok && strings.HasPrefix(d.Name, "__") {
			seen[d.Name]++
		}
		return true
	})
	if len(seen) == 0 {
		t.Fatal("no generated identifiers declared; transforms did not run")
	}
	for name, count := range seen {
		if count > 1 {
			t.Errorf("generated identifier %s declared %d times", name, count)
		}
	}
	if t.Failed() {
		t.Logf("transformed source:\n%s", minic.Print(f))
	}
}

// TestManagerDeterministic: two runs over fresh parses of the same source
// produce byte-identical output and identical remark trails.
func TestManagerDeterministic(t *testing.T) {
	run := func() (string, string) {
		f := mustParse(t, twoLoops)
		m, err := pass.Parse(pass.DefaultSpec, pass.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		remarks, err := m.Run(f)
		if err != nil {
			t.Fatal(err)
		}
		return minic.Print(f), remarks.Render()
	}
	src1, rem1 := run()
	src2, rem2 := run()
	if src1 != src2 {
		t.Error("two runs printed different source")
	}
	if rem1 != rem2 {
		t.Errorf("two runs produced different remark trails:\n--- first\n%s--- second\n%s", rem1, rem2)
	}
}

// TestContextAnalysisMemoized: Analysis returns the cached summary until
// MarkMutated invalidates it.
func TestContextAnalysisMemoized(t *testing.T) {
	f := mustParse(t, twoLoops)
	loops := transform.FindOffloadLoops(f)
	if len(loops) == 0 {
		t.Fatal("no offload loops")
	}
	ctx := pass.NewContext(f)
	info1, err := ctx.Analysis(loops[0])
	if err != nil {
		t.Fatal(err)
	}
	info2, err := ctx.Analysis(loops[0])
	if err != nil {
		t.Fatal(err)
	}
	if info1 != info2 {
		t.Error("second Analysis call did not return the memoized summary")
	}
	ctx.MarkMutated()
	info3, err := ctx.Analysis(loops[0])
	if err != nil {
		t.Fatal(err)
	}
	if info3 == info1 {
		t.Error("Analysis returned a stale summary after MarkMutated")
	}
}

func TestRemarkFormatting(t *testing.T) {
	r := pass.Remark{
		Pass: "streaming", Op: "stream", Pos: "12:5",
		Verdict: pass.VerdictApplied,
		Reason:  "pipelined into 20 blocks",
		Args:    map[string]any{"blocks": 20, "persistent": true},
	}
	want := "12:5 streaming/stream applied: pipelined into 20 blocks (blocks=20, persistent=true)"
	if got := r.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}

	// Op equal to Pass is not repeated; missing Pos and Args are dropped.
	r2 := pass.Remark{Pass: "merge", Op: "merge", Verdict: pass.VerdictSkippedIllegal, Reason: "merge declined: x"}
	if got, want := r2.String(), "merge skipped-illegal: merge declined: x"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}

	rs := pass.Remarks{r, r2}
	rendered := rs.Render()
	if rendered != r.String()+"\n"+r2.String()+"\n" {
		t.Errorf("Render() = %q", rendered)
	}
	if !rs.Has("stream") || !rs.Has("streaming") {
		t.Error("Has should match applied remarks by op and by pass name")
	}
	if rs.Has("merge") {
		t.Error("Has must ignore skipped remarks")
	}
	if len(rs.Applied()) != 1 || len(rs.Skipped()) != 1 {
		t.Errorf("Applied/Skipped split wrong: %d/%d", len(rs.Applied()), len(rs.Skipped()))
	}

	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	js := buf.String()
	for _, frag := range []string{`"pass": "streaming"`, `"op": "stream"`, `"verdict": "applied"`, `"blocks": 20`} {
		if !strings.Contains(js, frag) {
			t.Errorf("JSON missing %q:\n%s", frag, js)
		}
	}
	if strings.Contains(js, `"pos": ""`) || strings.Contains(js, `"args": null`) {
		t.Errorf("empty fields should be omitted:\n%s", js)
	}
}

// TestSkippedRemarksCarryReasons: a pipeline over a file it cannot help
// still explains itself — every loop gets a remark and every skip a reason.
func TestSkippedRemarksCarryReasons(t *testing.T) {
	// One offloaded loop with a loop-carried dependence: merge has no pair,
	// regularize finds no irregular accesses, streaming declines.
	src := `
float a[4096];
int n;
int main(void) {
    int i;
    n = 4096;
    #pragma offload target(mic:0) inout(a : length(n))
    #pragma omp parallel for
    for (i = 1; i < n; i++) {
        a[i] = a[i - 1] * 0.5;
    }
    return 0;
}
`
	f := mustParse(t, src)
	m, err := pass.Parse(pass.DefaultSpec, pass.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	remarks, err := m.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(remarks.Applied()); n != 0 {
		t.Fatalf("nothing should fire, got %d applied:\n%s", n, remarks.Render())
	}
	if len(remarks.Skipped()) == 0 {
		t.Fatal("expected skip remarks explaining the declines")
	}
	for _, r := range remarks.Skipped() {
		if r.Reason == "" {
			t.Errorf("skip remark without reason: %+v", r)
		}
		if r.Pass == "" {
			t.Errorf("remark without pass name: %+v", r)
		}
	}
}

// TestStrandedGatherSafetyNet: a pipeline that regularizes with streaming
// upcoming but whose streaming pass declines every loop must still fill the
// permutation arrays (upfront gathers) — and say so in the trail.
func TestStrandedGatherSafetyNet(t *testing.T) {
	f := mustParse(t, twoLoops)
	// regularize alone: no streaming in the tail, so gathers are never
	// deferred — reorder materializes them itself. The trail must not
	// contain the safety-net remark, and the program must still check.
	m, err := pass.Parse("regularize", pass.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	remarks, err := m.Run(f)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, remarks.Render())
	}
	if !remarks.Has("reorder") {
		t.Fatalf("reorder did not fire:\n%s", remarks.Render())
	}
	for _, r := range remarks {
		if r.Pass == "pipeline" {
			t.Errorf("safety net fired although streaming was never upcoming: %s", r)
		}
	}
	src := minic.Print(f)
	if !strings.Contains(src, "__a_r") {
		t.Errorf("reordered array missing from output:\n%s", src)
	}
}

func ExampleRemarks_Render() {
	rs := pass.Remarks{
		{Pass: "regularize", Op: "split", Pos: "31:5", Verdict: pass.VerdictApplied,
			Reason: "peeled irregular prefix; regular remainder vectorizes"},
		{Pass: "streaming", Pos: "27:5", Verdict: pass.VerdictSkippedIllegal,
			Reason: "serial offload region (merged or already wrapped); streaming requires a parallel loop"},
	}
	fmt.Print(rs.Render())
	// Output:
	// 31:5 regularize/split applied: peeled irregular prefix; regular remainder vectorizes
	// 27:5 streaming skipped-illegal: serial offload region (merged or already wrapped); streaming requires a parallel loop
}
