package pass

import (
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec    string
		want    []string
		wantErr string
	}{
		{spec: "merge,regularize,streaming", want: []string{"merge", "regularize", "streaming"}},
		{spec: DefaultSpec, want: []string{"merge", "regularize", "streaming"}},
		{spec: "streaming", want: []string{"streaming"}},
		{spec: " merge , streaming ", want: []string{"merge", "streaming"}},
		{spec: "auto-offload,streaming", want: []string{"auto-offload", "streaming"}},
		// Spec order is pipeline order; reversal is legal, just different.
		{spec: "streaming,merge", want: []string{"streaming", "merge"}},
		{spec: "", wantErr: "empty pipeline spec"},
		{spec: " , ,", wantErr: "empty pipeline spec"},
		{spec: "merge,vectorize", wantErr: `unknown pass "vectorize"`},
		{spec: "merge,merge", wantErr: `duplicate pass "merge"`},
		{spec: "merge,streaming,merge", wantErr: `duplicate pass "merge"`},
	}
	for _, c := range cases {
		names, err := ParseSpec(c.spec)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("ParseSpec(%q) err = %v, want containing %q", c.spec, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.spec, err)
			continue
		}
		if len(names) != len(c.want) {
			t.Errorf("ParseSpec(%q) = %v, want %v", c.spec, names, c.want)
			continue
		}
		for i := range names {
			if names[i] != c.want[i] {
				t.Errorf("ParseSpec(%q) = %v, want %v", c.spec, names, c.want)
				break
			}
		}
	}
}

func TestParseSpecErrorsListKnownPasses(t *testing.T) {
	_, err := ParseSpec("bogus")
	if err == nil {
		t.Fatal("unknown pass accepted")
	}
	for _, name := range KnownPasses() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list known pass %q", err, name)
		}
	}
}

func TestKnownPassesSortedAndComplete(t *testing.T) {
	names := KnownPasses()
	want := []string{"auto-offload", "merge", "regularize", "streaming", "tune"}
	if len(names) != len(want) {
		t.Fatalf("KnownPasses = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("KnownPasses = %v, want %v", names, want)
		}
	}
}

func TestManagerConstruction(t *testing.T) {
	m, err := Parse(DefaultSpec, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := m.Passes()
	if len(got) != 3 || got[0] != "merge" || got[1] != "regularize" || got[2] != "streaming" {
		t.Fatalf("Passes() = %v", got)
	}
	if _, err := Parse("nope", DefaultConfig()); err == nil {
		t.Fatal("Parse accepted an unknown pass")
	}
	// New with no passes is legal: check-only manager (core uses it for
	// Options with everything disabled).
	if _, err := New(nil, DefaultConfig()); err != nil {
		t.Fatalf("empty New: %v", err)
	}
	if _, err := New([]string{"merge", "merge"}, DefaultConfig()); err == nil {
		t.Fatal("New accepted duplicate passes")
	}
}

func TestVerdictHelpers(t *testing.T) {
	if !VerdictApplied.Applied() {
		t.Fatal("applied verdict not applied")
	}
	if VerdictSkippedIllegal.Applied() || VerdictSkippedUnprofitable.Applied() {
		t.Fatal("skip verdict reports applied")
	}
}
