package pass

import (
	"fmt"

	"comp/internal/minic"
	"comp/internal/sim/engine"
)

// TuneDecision is the configuration the cost-model tuner (internal/tune)
// settled on for one compilation: the pipeline spec and streaming
// parameters it chose, what the cost model predicted the makespan would
// be, and what the probe actually measured. The pass layer defines the
// type (rather than internal/tune) so the manager can emit the decision
// as a structured remark without importing the tuner.
type TuneDecision struct {
	// Spec is the chosen pass pipeline (e.g. "merge,regularize,streaming");
	// it may be empty when the tuner decided no pass is profitable.
	Spec string `json:"spec"`
	// Blocks is the chosen streaming block count; Streams the chosen
	// device-stream count (0 = caller's fixed stream count).
	Blocks  int `json:"blocks"`
	Streams int `json:"streams,omitempty"`
	// PredictedNs is the cost model's makespan estimate for this
	// configuration; MeasuredNs what the winning simulator probe measured.
	// Their gap is the model error the remark trail records for training.
	PredictedNs int64 `json:"predicted_ns"`
	MeasuredNs  int64 `json:"measured_ns"`
	// Probes counts the simulator runs the search spent (0 = pure cache or
	// model hit). Source says where the winning configuration came from:
	// "cache", "model" (learned predictor), or "search" (cost-ranked probing).
	Probes int    `json:"probes"`
	Source string `json:"source"`
}

// Gap returns predicted/measured − 1, the signed relative model error
// (0 when either side is unknown).
func (d TuneDecision) Gap() float64 {
	if d.MeasuredNs <= 0 || d.PredictedNs <= 0 {
		return 0
	}
	return float64(d.PredictedNs)/float64(d.MeasuredNs) - 1
}

// Remark renders the decision as the structured remark the tune pipeline
// stage emits.
func (d TuneDecision) Remark() Remark {
	spec := d.Spec
	if spec == "" {
		spec = "(none)"
	}
	return Remark{
		Pass:    "tune",
		Op:      "select",
		Verdict: VerdictApplied,
		Reason: fmt.Sprintf("selected pipeline %s with %d blocks (%d probes via %s; predicted %v, measured %v)",
			spec, d.Blocks, d.Probes, d.Source,
			engine.Duration(d.PredictedNs), engine.Duration(d.MeasuredNs)),
		Args: map[string]any{
			"spec":         d.Spec,
			"blocks":       d.Blocks,
			"streams":      d.Streams,
			"predicted_ns": d.PredictedNs,
			"measured_ns":  d.MeasuredNs,
			"probes":       d.Probes,
			"source":       d.Source,
		},
	}
}

// tunePass is the tune pipeline stage: a file-scoped pass that transforms
// nothing and instead records the tuner's configuration decision —
// predicted vs measured cost included — in the remark trail, so a tuned
// compilation explains itself the same way every other pass decision does.
type tunePass struct {
	d *TuneDecision
}

func (tunePass) Name() string { return "tune" }

// ApplyFile emits the decision remark (filePass seam: runs once per file,
// not per loop).
func (p tunePass) ApplyFile(ctx *Context) (Remarks, error) {
	if p.d == nil {
		return Remarks{{
			Pass:    "tune",
			Op:      "select",
			Verdict: VerdictSkippedIllegal,
			Reason:  "no tuning decision available (pipeline requested the tune stage without running the tuner)",
		}}, nil
	}
	return Remarks{p.d.Remark()}, nil
}

// Applies and Apply satisfy the Pass interface; the manager dispatches
// file-scoped passes through ApplyFile and never calls them.
func (tunePass) Applies(*Context, *minic.ForStmt) (bool, string) {
	return false, "tune is file-scoped"
}

func (p tunePass) Apply(*Context, *minic.ForStmt) (Remarks, error) {
	return nil, fmt.Errorf("pass: tune is file-scoped; Apply must not be called")
}
