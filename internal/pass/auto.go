package pass

import (
	"fmt"

	"comp/internal/analysis"
	"comp/internal/minic"
	"comp/internal/transform"
)

// autoOffloadPass reimplements the Apricot capability the paper builds on
// (§VI: "Apricot automatically inserts LEO offload and data transfer
// clauses in OpenMP applications for MIC"): every `omp parallel for` loop
// that does not already carry an offload pragma gets one, with in/out/
// inout clauses inferred by liveness analysis and lengths taken from the
// array declarations.
//
// Loops whose transfer lengths cannot be determined statically (pointer
// arrays with no declared extent) stay on the host, with a skipped remark.
type autoOffloadPass struct{}

func (autoOffloadPass) Name() string { return "auto-offload" }

// SelectLoops returns every un-offloaded parallel loop, without descending
// into matches: nested parallel loops offload with their parent region.
func (autoOffloadPass) SelectLoops(ctx *Context) []*minic.ForStmt {
	var loops []*minic.ForStmt
	minic.Inspect(ctx.File, func(n minic.Node) bool {
		fs, ok := n.(*minic.ForStmt)
		if !ok {
			return true
		}
		if transform.OmpPragma(fs) != nil && transform.OffloadPragma(fs) == nil {
			loops = append(loops, fs)
			return false
		}
		return true
	})
	return loops
}

func (autoOffloadPass) Applies(*Context, *minic.ForStmt) (bool, string) { return true, "" }

func (autoOffloadPass) Apply(ctx *Context, fs *minic.ForStmt) (Remarks, error) {
	info, err := ctx.Analysis(fs)
	if err != nil {
		return Remarks{{
			Verdict: VerdictSkippedIllegal,
			Reason:  fmt.Sprintf("auto-offload skipped: %v", err),
		}}, nil
	}
	clauses := analysis.InferClauses(info)
	p, err := buildOffloadPragma(ctx.File, info, clauses)
	if err != nil {
		return Remarks{{
			Verdict: VerdictSkippedIllegal,
			Reason:  fmt.Sprintf("auto-offload skipped: %v", err),
		}}, nil
	}
	fs.Pragmas = append([]*minic.Pragma{p}, fs.Pragmas...)
	ctx.MarkMutated()
	return Remarks{{
		Verdict: VerdictApplied,
		Reason: fmt.Sprintf("inserted offload with %d in, %d out, %d inout items",
			len(p.In), len(p.Out), len(p.InOut)),
		Args: map[string]any{"in": len(p.In), "out": len(p.Out), "inout": len(p.InOut)},
	}}, nil
}

// buildOffloadPragma materializes inferred clauses into a pragma, sizing
// each array by its declaration.
func buildOffloadPragma(f *minic.File, info *analysis.LoopInfo, c analysis.Clauses) (*minic.Pragma, error) {
	p := &minic.Pragma{Kind: minic.PragmaOffload, Target: "mic:0"}
	add := func(names []string, dst *[]minic.TransferItem) error {
		for _, name := range names {
			ln := arrayExtent(f, name)
			if ln == nil {
				return fmt.Errorf("array %s has no statically known extent", name)
			}
			*dst = append(*dst, minic.TransferItem{Name: name, Length: ln})
		}
		return nil
	}
	if err := add(c.In, &p.In); err != nil {
		return nil, err
	}
	if err := add(c.Out, &p.Out); err != nil {
		return nil, err
	}
	if err := add(c.InOut, &p.InOut); err != nil {
		return nil, err
	}
	// Reduction scalars must round-trip by value.
	for _, red := range info.Reductions {
		p.InOut = append(p.InOut, minic.TransferItem{Name: red})
	}
	return p, nil
}

// arrayExtent returns a fresh expression for a global array's declared
// element count, or nil when unknown.
func arrayExtent(f *minic.File, name string) minic.Expr {
	for _, d := range f.Decls {
		vd, ok := d.(*minic.VarDecl)
		if !ok || vd.Name != name {
			continue
		}
		if arr, ok := vd.Type.(*minic.Array); ok && arr.Len != nil {
			return minic.CloneExpr(arr.Len)
		}
	}
	return nil
}
