package pass

import (
	"comp/internal/analysis"
	"comp/internal/minic"
	"comp/internal/transform"
)

// Context is the state shared by every pass in one Manager.Run: the file
// under transformation, one fresh-name sequencer (per-file, not per-pass,
// so composed passes cannot mint colliding identifiers), a memoized
// analysis cache with explicit invalidation, and the deferred-gather
// handoff from regularization to streaming.
type Context struct {
	File *minic.File
	// Names is the file-wide fresh-name sequencer; passes must hand it to
	// every transform they invoke.
	Names *transform.NameSeq

	upcoming map[string]bool

	analyses    map[*minic.ForStmt]analysisEntry
	gathers     map[*minic.ForStmt][]transform.GatherInfo
	gatherOrder []*minic.ForStmt
}

type analysisEntry struct {
	info *analysis.LoopInfo
	err  error
}

// NewContext prepares a context for one pipeline run over f.
func NewContext(f *minic.File) *Context {
	return &Context{
		File:     f,
		Names:    &transform.NameSeq{},
		upcoming: map[string]bool{},
		analyses: map[*minic.ForStmt]analysisEntry{},
		gathers:  map[*minic.ForStmt][]transform.GatherInfo{},
	}
}

// Analysis returns the memoized analysis.Analyze result for loop,
// recomputing only after MarkMutated. Errors are cached too: a loop that
// defeats analysis does so deterministically until the AST changes.
func (c *Context) Analysis(loop *minic.ForStmt) (*analysis.LoopInfo, error) {
	if e, ok := c.analyses[loop]; ok {
		return e.info, e.err
	}
	info, err := analysis.Analyze(loop, c.File)
	c.analyses[loop] = analysisEntry{info: info, err: err}
	return info, err
}

// MarkMutated invalidates the analysis cache. Passes call it after every
// transformation that fired; stale loop summaries must never survive an
// AST mutation.
func (c *Context) MarkMutated() {
	clear(c.analyses)
}

// Upcoming reports whether a pass with the given name runs later in the
// pipeline. Regularization uses it to decide whether deferring gathers
// into streaming is sound.
func (c *Context) Upcoming(name string) bool { return c.upcoming[name] }

// DeferGathers records gathers that a later streaming pass must pipeline
// into loop's block transfers.
func (c *Context) DeferGathers(loop *minic.ForStmt, gs []transform.GatherInfo) {
	if len(gs) == 0 {
		return
	}
	if _, ok := c.gathers[loop]; !ok {
		c.gatherOrder = append(c.gatherOrder, loop)
	}
	c.gathers[loop] = append(c.gathers[loop], gs...)
}

// TakeGathers removes and returns the gathers deferred for loop.
func (c *Context) TakeGathers(loop *minic.ForStmt) []transform.GatherInfo {
	gs := c.gathers[loop]
	delete(c.gathers, loop)
	return gs
}

// pendingGathers returns the loops with still-deferred gathers, in the
// order they were deferred. The manager materializes these as upfront
// gathers at the end of the run; a permutation array that is never filled
// would be a wrong program, not a missed optimization.
func (c *Context) pendingGathers() []*minic.ForStmt {
	var out []*minic.ForStmt
	for _, loop := range c.gatherOrder {
		if _, ok := c.gathers[loop]; ok {
			out = append(out, loop)
		}
	}
	return out
}

func (c *Context) setUpcoming(names []string) {
	clear(c.upcoming)
	for _, n := range names {
		c.upcoming[n] = true
	}
}
