package pass

import (
	"strings"
	"testing"

	"comp/internal/minic"
)

const tuneTestSrc = `
int A[1000];
int B[1000];
int main() {
    int n = 1000;
    #pragma offload target(mic:0) in(A : length(n)) out(B : length(n))
    #pragma omp parallel for
    for (int i = 0; i < n; i++) {
        B[i] = A[i] + 1;
    }
    return 0;
}
`

func parseTuneTestFile(t *testing.T) *minic.File {
	t.Helper()
	f, err := minic.Parse(tuneTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(f).Err(); err != nil {
		t.Fatal(err)
	}
	return f
}

// The tune stage is file-scoped: one remark per run carrying the decision,
// regardless of how many loops the file has.
func TestTuneStageEmitsDecisionRemark(t *testing.T) {
	d := &TuneDecision{
		Spec: "merge,streaming", Blocks: 20, Streams: 4,
		PredictedNs: 1000, MeasuredNs: 1100, Probes: 3, Source: "search",
	}
	m, err := Parse("tune,streaming", Config{Blocks: 20, Tuned: d})
	if err != nil {
		t.Fatal(err)
	}
	f := parseTuneTestFile(t)
	rs, err := m.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	var tuneRemarks Remarks
	for _, r := range rs {
		if r.Pass == "tune" {
			tuneRemarks = append(tuneRemarks, r)
		}
	}
	if len(tuneRemarks) != 1 {
		t.Fatalf("tune remarks = %d, want exactly 1 (file-scoped):\n%s", len(tuneRemarks), rs.Render())
	}
	r := tuneRemarks[0]
	if !r.Verdict.Applied() {
		t.Fatalf("tune remark verdict = %s, want applied", r.Verdict)
	}
	for _, k := range []string{"spec", "blocks", "streams", "predicted_ns", "measured_ns", "probes", "source"} {
		if _, ok := r.Args[k]; !ok {
			t.Errorf("tune remark missing arg %q: %v", k, r.Args)
		}
	}
	if got := r.Args["predicted_ns"]; got != int64(1000) {
		t.Errorf("predicted_ns = %v, want 1000", got)
	}
	if !rs.Has("stream") {
		t.Errorf("streaming did not run after the tune stage:\n%s", rs.Render())
	}
}

// A tune stage without a decision records a skipped remark, not an error:
// the pipeline stays runnable, it just documents that no tuner ran.
func TestTuneStageWithoutDecisionSkips(t *testing.T) {
	m, err := Parse("tune", Config{})
	if err != nil {
		t.Fatal(err)
	}
	f := parseTuneTestFile(t)
	rs, err := m.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Pass != "tune" || rs[0].Verdict.Applied() {
		t.Fatalf("remarks = %s, want one skipped tune remark", rs.Render())
	}
	if !strings.Contains(rs[0].Reason, "no tuning decision") {
		t.Errorf("reason = %q, want it to say no decision was available", rs[0].Reason)
	}
}

// The decision's Gap is the signed relative model error.
func TestTuneDecisionGap(t *testing.T) {
	cases := []struct {
		pred, meas int64
		want       float64
	}{
		{1100, 1000, 0.10},
		{900, 1000, -0.10},
		{0, 1000, 0},
		{1000, 0, 0},
	}
	for _, c := range cases {
		d := TuneDecision{PredictedNs: c.pred, MeasuredNs: c.meas}
		got := d.Gap()
		if diff := got - c.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("Gap(pred=%d, meas=%d) = %v, want %v", c.pred, c.meas, got, c.want)
		}
	}
}
