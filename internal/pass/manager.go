package pass

import (
	"fmt"
	"sort"
	"strings"

	"comp/internal/minic"
	"comp/internal/transform"
)

// Pass is one pipeline stage. Applies is the cheap legality gate: when it
// returns false the manager records a skipped-illegal remark with the
// reason and does not call Apply. Apply performs the transformation(s) on
// one loop and returns the fine-grained remark trail; it returns a non-nil
// error only for invariant violations (a half-transformed program), never
// for an ordinary "declined" — those become skipped remarks.
type Pass interface {
	Name() string
	Applies(ctx *Context, loop *minic.ForStmt) (bool, string)
	Apply(ctx *Context, loop *minic.ForStmt) (Remarks, error)
}

// loopSelector lets a pass choose its own loop set (merge wants host-side
// candidate loops, auto-offload wants un-offloaded parallel loops). Passes
// without it run over every offloaded loop in source order.
type loopSelector interface {
	SelectLoops(ctx *Context) []*minic.ForStmt
}

// filePass marks a pass that runs once per translation unit instead of
// per loop (the tune stage, which records the tuner's configuration
// decision). The manager calls ApplyFile and skips loop iteration.
type filePass interface {
	ApplyFile(ctx *Context) (Remarks, error)
}

// Config carries the knobs shared by pass constructors.
type Config struct {
	// Blocks fixes the streaming block count; 0 means transform.DefaultBlocks.
	Blocks int
	// ReduceMemory selects the §III-B double-buffer streaming variant.
	ReduceMemory bool
	// Persistent marks streamed kernels persist(1) (§III-C).
	Persistent bool
	// Tuned carries the cost-model tuner's decision for pipelines that
	// include the "tune" stage; the stage emits it as a structured remark
	// with predicted-vs-measured cost. Nil makes the stage record a
	// skipped remark.
	Tuned *TuneDecision
}

// DefaultConfig enables the full streaming variant, matching
// core.DefaultOptions.
func DefaultConfig() Config { return Config{ReduceMemory: true, Persistent: true} }

// DefaultSpec is the paper's profitable order: hoist merges first, then
// regularize, then stream whatever is (or became) legal.
const DefaultSpec = "merge,regularize,streaming"

var registry = map[string]func(Config) Pass{
	"auto-offload": func(Config) Pass { return autoOffloadPass{} },
	"merge":        func(Config) Pass { return mergePass{} },
	"regularize":   func(Config) Pass { return regularizePass{} },
	"streaming": func(c Config) Pass {
		return streamingPass{blocks: c.Blocks, reduceMemory: c.ReduceMemory, persistent: c.Persistent}
	},
	"tune": func(c Config) Pass { return tunePass{d: c.Tuned} },
}

// KnownPasses returns the registered pass names, sorted.
func KnownPasses() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ParseSpec validates a comma-separated pipeline spec ("merge,streaming")
// and returns the pass names in order. Whitespace around names is
// ignored. Empty specs, unknown names, and duplicates are errors.
func ParseSpec(spec string) ([]string, error) {
	var names []string
	for _, part := range strings.Split(spec, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("pass: empty pipeline spec (known passes: %s)", strings.Join(KnownPasses(), ", "))
	}
	if err := validateNames(names); err != nil {
		return nil, err
	}
	return names, nil
}

func validateNames(names []string) error {
	seen := map[string]bool{}
	for _, name := range names {
		if _, ok := registry[name]; !ok {
			return fmt.Errorf("pass: unknown pass %q (known passes: %s)", name, strings.Join(KnownPasses(), ", "))
		}
		if seen[name] {
			return fmt.Errorf("pass: duplicate pass %q in pipeline spec", name)
		}
		seen[name] = true
	}
	return nil
}

// Manager runs an ordered pass pipeline deterministically: passes in spec
// order, loops in source order, one shared Context.
type Manager struct {
	names  []string
	passes []Pass
}

// New builds a Manager from pass names in order. An empty name list is
// allowed: the manager then only re-checks the file.
func New(names []string, cfg Config) (*Manager, error) {
	if err := validateNames(names); err != nil {
		return nil, err
	}
	m := &Manager{names: append([]string(nil), names...)}
	for _, name := range names {
		m.passes = append(m.passes, registry[name](cfg))
	}
	return m, nil
}

// Parse builds a Manager from a pipeline spec string.
func Parse(spec string, cfg Config) (*Manager, error) {
	names, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return New(names, cfg)
}

// Passes returns the pipeline's pass names in run order.
func (m *Manager) Passes() []string { return append([]string(nil), m.names...) }

// Run executes the pipeline over f in place and returns the remark trail.
// The input must already be checked; the output is re-checked before
// returning.
func (m *Manager) Run(f *minic.File) (Remarks, error) {
	ctx := NewContext(f)
	var all Remarks
	for i, p := range m.passes {
		ctx.setUpcoming(m.names[i+1:])
		if fp, ok := p.(filePass); ok {
			rs, err := fp.ApplyFile(ctx)
			for j := range rs {
				if rs[j].Pass == "" {
					rs[j].Pass = p.Name()
				}
			}
			all = append(all, rs...)
			if err != nil {
				return all, err
			}
			continue
		}
		loops := selectLoops(p, ctx)
		for _, loop := range loops {
			at := loop.Pos().String()
			ok, reason := p.Applies(ctx, loop)
			if !ok {
				all = append(all, Remark{
					Pass: p.Name(), Pos: at,
					Verdict: VerdictSkippedIllegal, Reason: reason,
				})
				continue
			}
			rs, err := p.Apply(ctx, loop)
			for j := range rs {
				if rs[j].Pass == "" {
					rs[j].Pass = p.Name()
				}
				if rs[j].Pos == "" {
					rs[j].Pos = at
				}
			}
			all = append(all, rs...)
			if err != nil {
				return all, err
			}
		}
	}

	// Safety net: a pipelined reorder whose streaming never happened (pass
	// absent from the tail of the pipeline, or no stream consumed the
	// gathers) leaves permutation arrays unfilled. Materialize them as
	// upfront host gathers; this is a correctness obligation, not a choice.
	for _, loop := range ctx.pendingGathers() {
		gs := ctx.TakeGathers(loop)
		at := loop.Pos().String()
		info, err := ctx.Analysis(loop)
		if err != nil {
			return all, fmt.Errorf("pass: pipelined gathers stranded at %s: %v", at, err)
		}
		if err := transform.UpfrontGathers(f, loop, gs, info.Upper, ctx.Names); err != nil {
			return all, fmt.Errorf("pass: %v", err)
		}
		ctx.MarkMutated()
		all = append(all, Remark{
			Pass: "pipeline", Op: "upfront-gather", Pos: at,
			Verdict: VerdictApplied,
			Reason:  fmt.Sprintf("%d deferred gathers materialized upfront (no streaming pass consumed them)", len(gs)),
			Args:    map[string]any{"gathers": len(gs)},
		})
	}

	if err := minic.Check(f).Err(); err != nil {
		return all, fmt.Errorf("pass: transformed program fails checking: %w", err)
	}
	return all, nil
}

// selectLoops asks the pass for its loop set, defaulting to every
// offloaded loop in source order.
func selectLoops(p Pass, ctx *Context) []*minic.ForStmt {
	if sel, ok := p.(loopSelector); ok {
		return sel.SelectLoops(ctx)
	}
	return transform.FindOffloadLoops(ctx.File)
}
