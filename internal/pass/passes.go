package pass

import (
	"fmt"

	"comp/internal/analysis"
	"comp/internal/minic"
	"comp/internal/transform"
)

// mergePass hoists multiple inner offloads of a host loop into one region
// (§III-C offload merging). It runs over merge candidates, not offload
// loops: the interesting loop is the serial host loop around the offloads.
type mergePass struct{}

func (mergePass) Name() string { return "merge" }

func (mergePass) SelectLoops(ctx *Context) []*minic.ForStmt {
	return transform.MergeCandidates(ctx.File, 2)
}

func (mergePass) Applies(*Context, *minic.ForStmt) (bool, string) { return true, "" }

func (mergePass) Apply(ctx *Context, outer *minic.ForStmt) (Remarks, error) {
	inner := len(innerOffloads(outer))
	if err := transform.MergeOffloads(ctx.File, outer); err != nil {
		return Remarks{{
			Op: "merge", Verdict: VerdictSkippedIllegal,
			Reason: fmt.Sprintf("merge declined: %v", err),
		}}, nil
	}
	ctx.MarkMutated()
	return Remarks{{
		Op: "merge", Verdict: VerdictApplied,
		Reason: fmt.Sprintf("hoisted %d inner offloads into one region", inner),
		Args:   map[string]any{"inner": inner},
	}}, nil
}

func innerOffloads(outer *minic.ForStmt) []*minic.ForStmt {
	var out []*minic.ForStmt
	minic.Inspect(outer.Body, func(n minic.Node) bool {
		if fs, ok := n.(*minic.ForStmt); ok && transform.OffloadPragma(fs) != nil {
			out = append(out, fs)
		}
		return true
	})
	return out
}

// regularizePass applies the §IV transformations to one offloaded parallel
// loop: loop splitting for gathers with a regular remainder, AoS→SoA
// layout conversion, and array reordering (pipelined into streaming when a
// streaming pass runs later, whole-array otherwise).
type regularizePass struct{}

func (regularizePass) Name() string { return "regularize" }

func (regularizePass) Applies(ctx *Context, loop *minic.ForStmt) (bool, string) {
	if transform.OmpPragma(loop) == nil {
		return false, "serial offload region (merged or already wrapped); nothing to regularize"
	}
	return true, ""
}

func (regularizePass) Apply(ctx *Context, loop *minic.ForStmt) (Remarks, error) {
	var rs Remarks
	info, err := ctx.Analysis(loop)
	if err != nil {
		return Remarks{{
			Verdict: VerdictSkippedIllegal,
			Reason:  fmt.Sprintf("analysis failed: %v", err),
		}}, nil
	}
	if len(info.IrregularAccesses()) == 0 {
		return Remarks{{
			Verdict: VerdictSkippedUnprofitable,
			Reason:  "no irregular accesses; loop is already regular",
		}}, nil
	}

	// Gathers with a regular remainder prefer splitting (free at runtime,
	// §IV); strided and leftover patterns prefer array reordering, which
	// also unlocks streaming. Splitting is only attempted when a gather is
	// present so that pure strided loops (nn) take the reordering path.
	hasGather := false
	for _, ir := range analysis.ClassifyIrregular(info) {
		if ir.Pattern == analysis.PatternGather {
			hasGather = true
		}
	}
	if hasGather {
		split, err := transform.SplitLoop(ctx.File, loop, ctx.Names)
		switch {
		case err != nil:
			rs = append(rs, Remark{
				Op: "split", Verdict: VerdictSkippedIllegal,
				Reason: fmt.Sprintf("split declined: %v", err),
			})
		case split:
			ctx.MarkMutated()
			rs = append(rs, Remark{
				Op: "split", Verdict: VerdictApplied,
				Reason: "peeled irregular prefix; regular remainder vectorizes",
			})
			// The loop was replaced by the wrapped pair; nothing left to do.
			return rs, nil
		default:
			rs = append(rs, Remark{
				Op: "split", Verdict: VerdictSkippedUnprofitable,
				Reason: "split pattern does not apply (no promotable prefix)",
			})
		}
	}

	if n, err := transform.AoSToSoA(ctx.File, loop); err != nil {
		rs = append(rs, Remark{
			Op: "soa", Verdict: VerdictSkippedIllegal,
			Reason: fmt.Sprintf("soa declined: %v", err),
		})
	} else if n > 0 {
		ctx.MarkMutated()
		rs = append(rs, Remark{
			Op: "soa", Verdict: VerdictApplied,
			Reason: fmt.Sprintf("converted %d struct arrays to SoA", n),
			Args:   map[string]any{"arrays": n},
		})
	}

	if ctx.Upcoming("streaming") {
		// Defer read-only gathers into the streaming pipeline (§IV
		// "pipelining regularization"): the gather of block i+1 overlaps
		// the computation of block i. Only sound when a streaming pass
		// runs later; otherwise the permutation arrays would stay empty.
		n, gathers, err := transform.ReorderArraysPipelined(ctx.File, loop, ctx.Names)
		switch {
		case err != nil:
			rs = append(rs, Remark{
				Op: "reorder", Verdict: VerdictSkippedIllegal,
				Reason: fmt.Sprintf("pipelined reorder declined: %v", err),
			})
		case n > 0:
			ctx.MarkMutated()
			ctx.DeferGathers(loop, gathers)
			rs = append(rs, Remark{
				Op: "reorder", Verdict: VerdictApplied,
				Reason: fmt.Sprintf("regularized %d accesses (gathers pipelined into streaming)", n),
				Args:   map[string]any{"accesses": n, "pipelined": true},
			})
		}
	}

	if n, err := transform.ReorderArrays(ctx.File, loop, ctx.Names); err != nil {
		rs = append(rs, Remark{
			Op: "reorder", Verdict: VerdictSkippedIllegal,
			Reason: fmt.Sprintf("reorder declined: %v", err),
		})
	} else if n > 0 {
		ctx.MarkMutated()
		rs = append(rs, Remark{
			Op: "reorder", Verdict: VerdictApplied,
			Reason: fmt.Sprintf("regularized %d irregular accesses", n),
			Args:   map[string]any{"accesses": n},
		})
	}
	return rs, nil
}

// streamingPass rewrites one offloaded parallel loop into the pipelined,
// block-transferred form of §III, consuming any gathers the regularize
// pass deferred. When streaming declines on a loop with deferred gathers,
// the pass falls back to upfront whole-array gathers — the permutation
// arrays must be filled either way.
type streamingPass struct {
	blocks       int
	reduceMemory bool
	persistent   bool
}

func (streamingPass) Name() string { return "streaming" }

func (streamingPass) Applies(ctx *Context, loop *minic.ForStmt) (bool, string) {
	if transform.OmpPragma(loop) == nil {
		return false, "serial offload region (merged or already wrapped); streaming requires a parallel loop"
	}
	return true, ""
}

func (p streamingPass) Apply(ctx *Context, loop *minic.ForStmt) (Remarks, error) {
	var rs Remarks
	at := loop.Pos().String()
	gathers := ctx.TakeGathers(loop)
	err := transform.Stream(ctx.File, loop, transform.StreamOptions{
		Blocks:       p.blocks,
		ReduceMemory: p.reduceMemory,
		Persistent:   p.persistent,
		Gathers:      gathers,
		Names:        ctx.Names,
	})
	if err != nil {
		rs = append(rs, Remark{
			Op: "stream", Verdict: VerdictSkippedIllegal,
			Reason: fmt.Sprintf("streaming declined: %v", err),
		})
		if len(gathers) > 0 {
			// The permutation arrays still need filling; fall back to the
			// upfront whole-array gather. Failure here is an invariant
			// violation — the program would compute with garbage.
			info, aerr := ctx.Analysis(loop)
			if aerr != nil {
				return rs, fmt.Errorf("pass: pipelined gathers stranded at %s: %v", at, aerr)
			}
			if gerr := transform.UpfrontGathers(ctx.File, loop, gathers, info.Upper, ctx.Names); gerr != nil {
				return rs, fmt.Errorf("pass: %v", gerr)
			}
			ctx.MarkMutated()
			rs = append(rs, Remark{
				Op: "upfront-gather", Verdict: VerdictApplied,
				Reason: fmt.Sprintf("%d pipelined gathers fell back to upfront gathering", len(gathers)),
				Args:   map[string]any{"gathers": len(gathers)},
			})
		}
		return rs, nil
	}
	ctx.MarkMutated()
	if len(gathers) > 0 {
		rs = append(rs, Remark{
			Op: "pipeline-gather", Verdict: VerdictApplied,
			Reason: fmt.Sprintf("%d gathers overlapped with transfer and compute", len(gathers)),
			Args:   map[string]any{"gathers": len(gathers)},
		})
	}
	n := p.blocks
	if n <= 0 {
		n = transform.DefaultBlocks
	}
	rs = append(rs, Remark{
		Op: "stream", Verdict: VerdictApplied,
		Reason: fmt.Sprintf("pipelined into %d blocks (reduceMemory=%v persistent=%v)", n, p.reduceMemory, p.persistent),
		Args:   map[string]any{"blocks": n, "reduceMemory": p.reduceMemory, "persistent": p.persistent},
	})
	return rs, nil
}
