package scenario

import (
	"strings"
	"testing"
)

// TestBuiltinInvariantsAndDeterminism is the acceptance gate: every
// built-in scenario must pass the serving invariants on two replays of the
// same seed with bit-identical per-request outcomes and ServerReport —
// including the fault-storm and hot-unplug scenarios.
func TestBuiltinInvariantsAndDeterminism(t *testing.T) {
	for _, sc := range Builtins() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Verify(sc, 1)
			if err != nil {
				t.Fatal(err)
			}
			if res.Report.Submitted == 0 {
				t.Fatalf("%s expanded to an empty trace", sc.Name)
			}
		})
	}
}

// TestBuiltinSecondSeed replays a subset under a different seed: the
// invariants are seed-independent even where the Expect minimums are
// calibrated for seed 1.
func TestBuiltinSecondSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("second-seed sweep skipped in -short")
	}
	for _, name := range []string{"steady", "overload", "fault-storm", "hot-unplug"} {
		sc, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		sc.Expect = Expect{} // minimums are per-seed; the contract is not
		if _, err := Verify(sc, 20260808); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestReplayFaultStormRecovers(t *testing.T) {
	sc, err := Lookup("fault-storm")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.Completed != rep.Submitted {
		t.Fatalf("fault storm lost work: %d completed of %d submitted", rep.Completed, rep.Submitted)
	}
	if rep.FaultsInjected == 0 || rep.Retries == 0 {
		t.Fatalf("storm injected %d faults, %d retries — expected both nonzero", rep.FaultsInjected, rep.Retries)
	}
}

func TestReplayHotUnplugFallsBack(t *testing.T) {
	sc, err := Lookup("hot-unplug")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if res.Report.Completed != res.Report.Submitted {
		t.Fatalf("unplug lost work: %d completed of %d submitted", res.Report.Completed, res.Report.Submitted)
	}
	if res.Report.Fallbacks == 0 {
		t.Fatal("unplugged windows recorded no degradation-ladder fallbacks")
	}
	// Requests outside the unplug window must not have degraded.
	sawClean := false
	for _, out := range res.Outcomes {
		req := res.Trace.Requests[out.ID]
		if (req.Window < 2 || req.Window >= 6) && out.Fallbacks == 0 {
			sawClean = true
		}
	}
	if !sawClean {
		t.Fatal("no request outside the unplug window completed without fallbacks")
	}
}

func TestReplayDeadlineHeavyExpires(t *testing.T) {
	sc, err := Lookup("deadline-heavy")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if res.Report.Expired == 0 {
		t.Fatal("deadline-heavy scenario expired nothing")
	}
}

// TestReplayBrokenHitsCachedError is the scenario-level cached-error
// regression: a mix of nothing but broken submissions builds the failing
// plan exactly once — every later request is answered from the cached
// error without recompiling or tuning.
func TestReplayBrokenHitsCachedError(t *testing.T) {
	sc := New("broken-only", 6).
		Arrive(Steady, 2).
		Broken(1).
		Server(2, 32, 4).
		MustBuild()
	res, err := Verify(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.Failed != rep.Submitted {
		t.Fatalf("broken-only: %d failed of %d submitted", rep.Failed, rep.Submitted)
	}
	if rep.PlanMisses != 1 {
		t.Fatalf("broken plan built %d times, want exactly 1 (cached error)", rep.PlanMisses)
	}
	if rep.TuneProbes != 0 {
		t.Fatalf("broken plan spent %d tuning probes, want 0", rep.TuneProbes)
	}
	first := ""
	for _, out := range res.Outcomes {
		if out.Err == "" {
			t.Fatalf("broken request %d completed", out.ID)
		}
		if first == "" {
			first = out.Err
		} else if out.Err != first {
			t.Fatalf("broken requests saw different errors:\n  %q\n  %q", first, out.Err)
		}
	}
}

func TestReplaySqueezeSheds(t *testing.T) {
	sc := New("squeeze", 6).
		Arrive(Steady, 6).
		Synth(2, 1, false).
		Squeeze(2, 4, 1).
		Server(2, 32, 8).
		MustBuild()
	res, err := Verify(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Shed == 0 {
		t.Fatal("capacity squeeze shed nothing despite limit 1 under rate 6")
	}
	// Outside the squeeze the queue is ample: total shed must be well
	// below total arrivals.
	if res.Report.Shed >= res.Report.Submitted {
		t.Fatalf("everything shed (%d of %d)", res.Report.Shed, res.Report.Submitted)
	}
}

func TestReplayInvalidEntriesTyped(t *testing.T) {
	sc := New("invalid-mix", 4).
		Arrive(Steady, 4).
		Synth(2, 1, false).Invalid(1).
		Server(2, 32, 8).
		MustBuild()
	res, err := Verify(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Invalid == 0 {
		t.Fatal("invalid mix produced no ErrInvalidJob rejections")
	}
	for _, out := range res.Outcomes {
		if sc.Mix[out.Mix].Invalid && !strings.Contains(out.Err, "invalid job") {
			t.Fatalf("invalid request %d got %q", out.ID, out.Err)
		}
	}
}

func TestVerifySchedulerBuiltins(t *testing.T) {
	names := []string{"steady", "fault-storm", "hot-unplug"}
	if testing.Short() {
		names = names[:1]
	}
	for _, name := range names {
		sc, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := VerifyScheduler(sc, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rep.Outputs) == 0 {
			t.Fatalf("%s: scheduler replay executed nothing", name)
		}
	}
}

// TestSchedulerMatchesServeOutputs cross-checks the two replay paths: for
// a pure-synth scenario the serve layer and the raw scheduler must compute
// identical outputs for every request both executed — batching, queueing,
// and faults shift timing, never values.
func TestSchedulerMatchesServeOutputs(t *testing.T) {
	sc := New("cross-check", 5).
		Arrive(Steady, 3).
		Synth(3, 1, false).Synth(8, 1, false).
		FaultStorm(1, 3, map[string]float64{"dma": 0.5, "hang": 0.3}).
		Server(2, 64, 8).
		MustBuild()
	served, err := Replay(sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := served.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	raw, err := ReplayTraceScheduler(served.Trace)
	if err != nil {
		t.Fatal(err)
	}
	compared := 0
	for _, out := range served.Outcomes {
		if !out.Completed() {
			continue
		}
		rawOut, ok := raw.Outputs[out.ID]
		if !ok {
			t.Fatalf("request %d served but missing from scheduler replay", out.ID)
		}
		for name, data := range out.Outputs {
			other := rawOut[name]
			if len(other) != len(data) {
				t.Fatalf("request %d output %s: lengths differ", out.ID, name)
			}
			for i := range data {
				if data[i] != other[i] {
					t.Fatalf("request %d output %s[%d]: serve %v, scheduler %v",
						out.ID, name, i, data[i], other[i])
				}
			}
		}
		compared++
	}
	if compared == 0 {
		t.Fatal("no completed requests to cross-check")
	}
}
