// Package scenario is the serving stack's stress harness: a JSON scenario
// format plus a Go builder describing arrival processes, workload mixes,
// deadline distributions, machine shape, and timed event schedules (fault
// storms, device hot-unplug, queue-capacity squeezes). A deterministic
// generator expands a scenario and a seed into a concrete request trace; a
// replayer drives the trace through serve.Server (or the raw
// runtime.Scheduler) and checks the serving invariants after every run.
//
// The point is ROADMAP item 5 made systematic: the serving layer and the
// scheduler were only ever exercised by two synthetic fleets, yet — as in
// the MIC stream configurations of Li et al. (1603.08619) and the tuning
// space of Zhang et al. (1802.02760) — the interesting failure modes only
// appear under realistic mixes of bursts, deadline pressure, and faults.
// Every scenario replay asserts the same contract: no admitted request is
// lost, every rejection is a typed error, deadlines are honoured or
// answered with ErrDeadlineExceeded, and two replays of the same
// (scenario, seed) are bit-identical — outputs and ServerReport alike.
//
// Determinism rests on three legs: the generator derives every sample
// (arrival counts, mix picks, deadlines) from a pure (seed, stream, n)
// hash; the replayer runs the server in stepped mode on a virtual clock,
// so batch composition and every timestamp are functions of the trace;
// and the simulated platform beneath is already deterministic.
package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"comp/internal/sim/fault"
	"comp/internal/workloads"
)

// Limits keep scenarios — including fuzz-generated ones — bounded.
const (
	MaxWindows       = 512
	MaxRatePerWindow = 256
	MaxRequests      = 65536
	MaxMixEntries    = 16
	MaxEvents        = 32
	MaxStreams       = 16
	MaxQueueDepth    = 4096
)

// Arrival processes.
const (
	// Steady spreads Rate arrivals evenly over every window (fractional
	// rates accumulate).
	Steady = "steady"
	// Poisson draws each window's arrival count from Poisson(Rate).
	Poisson = "poisson"
	// Burst lays Rate steady arrivals per window plus Burst extra ones on
	// every Period-th window.
	Burst = "burst"
	// Diurnal modulates a Poisson rate through one ramp-up/ramp-down cycle
	// over the run: lambda(w) = Rate·(1 + (Peak−1)·sin²(πw/Windows)).
	Diurnal = "diurnal"
	// Closed models a closed loop: Clients callers, each submitting its
	// next request when the previous one is answered. Arrival counts are
	// derived from the window-granular service model (one batch of up to
	// MaxBatch per window).
	Closed = "closed"
)

// Event kinds.
const (
	// EventFaultStorm raises the fault schedule to Rates over [At, Until).
	EventFaultStorm = "fault-storm"
	// EventUnplug models device hot-unplug over [At, Until): every device
	// operation fails, so requests survive only through the recovery
	// ladder's host fallback. Until is the replug.
	EventUnplug = "unplug"
	// EventSqueeze caps the admission queue at Capacity over [At, Until).
	EventSqueeze = "squeeze"
)

// Scenario is one reproducible load description. The zero value is not
// runnable; construct with the Builder or ParseJSON and always Validate.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Windows is the number of dispatch windows; the replayer runs one
	// scheduler batch per window and keeps stepping past the last window
	// until the queue drains.
	Windows int `json:"windows"`
	// WindowMS is the virtual duration of one window in milliseconds
	// (default 1). Deadlines are expressed in window units.
	WindowMS int `json:"window_ms,omitempty"`

	Arrival  Arrival    `json:"arrival"`
	Mix      []MixEntry `json:"mix"`
	Deadline Deadline   `json:"deadline,omitempty"`
	Server   ServerSpec `json:"server,omitempty"`
	Faults   FaultSpec  `json:"faults,omitempty"`
	Events   []Event    `json:"events,omitempty"`
	Expect   Expect     `json:"expect,omitempty"`
}

// Arrival selects the arrival process.
type Arrival struct {
	Process string  `json:"process"`
	Rate    float64 `json:"rate,omitempty"`
	Burst   int     `json:"burst,omitempty"`
	Period  int     `json:"period,omitempty"`
	Clients int     `json:"clients,omitempty"`
	// Peak is the diurnal peak multiplier (default 3).
	Peak float64 `json:"peak,omitempty"`
}

// MixEntry is one workload class in the request mix. Exactly one of
// Workload, Synth, Invalid, Broken selects the class.
type MixEntry struct {
	// Workload names a registry benchmark (workloads.Get).
	Workload string `json:"workload,omitempty"`
	// Synth > 0 serves a small inline synthetic offload program whose
	// outputs depend on the scale — cheap enough for fuzzing, distinct
	// enough that plans do not collide.
	Synth int `json:"synth,omitempty"`
	// Optimize runs a synth entry through the COMP pipeline with measured
	// tuning when its plan is built.
	Optimize bool `json:"optimize,omitempty"`
	// Invalid submits a deliberately malformed job; the replayer requires
	// the typed ErrInvalidJob for every one.
	Invalid bool `json:"invalid,omitempty"`
	// Broken submits an inline source that does not compile under a fixed
	// plan key; the first build caches the error and every later request
	// must be answered from the cached entry without re-probing.
	Broken bool `json:"broken,omitempty"`
	// ExpectError marks a workload entry whose plan build is expected to
	// fail (unknown name, shared-memory benchmark). Without it, Validate
	// insists the workload exists and is servable.
	ExpectError bool `json:"expect_error,omitempty"`
	// Weight is the entry's share of the mix (default 1).
	Weight float64 `json:"weight,omitempty"`
}

// Deadline distributions. Values are in window units so scenarios scale
// with WindowMS.
type Deadline struct {
	// Dist is "", "none", "fixed" (MinWindows), or "uniform"
	// ([MinWindows, MaxWindows]).
	Dist       string  `json:"dist,omitempty"`
	MinWindows float64 `json:"min_windows,omitempty"`
	MaxWindows float64 `json:"max_windows,omitempty"`
	// Fraction is the share of requests carrying a deadline (default 1).
	Fraction float64 `json:"fraction,omitempty"`
}

// ServerSpec shapes the server and the simulated machine.
type ServerSpec struct {
	Streams    int `json:"streams,omitempty"`     // default 4
	QueueDepth int `json:"queue_depth,omitempty"` // default 16
	MaxBatch   int `json:"max_batch,omitempty"`   // default 8
	// MICThreads/CPUThreads override the default machine occupancy.
	MICThreads int `json:"mic_threads,omitempty"`
	CPUThreads int `json:"cpu_threads,omitempty"`
	// Exec pins the execution engine for every program the scenario
	// compiles ("vm", "interp", or "" = process default).
	Exec string `json:"exec,omitempty"`
}

// FaultSpec is the baseline fault schedule (fault storms override it over
// their window). Rates is keyed by kind name: dma, launch, hang, alloc.
type FaultSpec struct {
	Seed  int64              `json:"seed,omitempty"`
	Rates map[string]float64 `json:"rates,omitempty"`
}

// Event is one timed perturbation, active over windows [At, Until).
// Until 0 means "until the end of the run".
type Event struct {
	Kind     string             `json:"kind"`
	At       int                `json:"at"`
	Until    int                `json:"until,omitempty"`
	Rates    map[string]float64 `json:"rates,omitempty"`
	Capacity int                `json:"capacity,omitempty"`
}

// Expect states scenario-specific minimums the replayer asserts on top of
// the universal invariants; zero fields are not checked.
type Expect struct {
	MinCompleted int64 `json:"min_completed,omitempty"`
	MinShed      int64 `json:"min_shed,omitempty"`
	MinExpired   int64 `json:"min_expired,omitempty"`
	MinFaults    int64 `json:"min_faults,omitempty"`
	MinRetries   int64 `json:"min_retries,omitempty"`
	MinFallbacks int64 `json:"min_fallbacks,omitempty"`
}

// kindByName maps JSON rate keys onto fault kinds.
var kindByName = map[string]fault.Kind{
	"dma":    fault.DMA,
	"launch": fault.Launch,
	"hang":   fault.Hang,
	"alloc":  fault.Alloc,
}

// faultConfig turns a name-keyed rate map into a fault.Config.
func faultConfig(seed int64, rates map[string]float64) (fault.Config, error) {
	kinds := make(map[fault.Kind]float64, len(rates))
	for name, r := range rates {
		k, ok := kindByName[strings.ToLower(name)]
		if !ok {
			return fault.Config{}, fmt.Errorf("scenario: unknown fault kind %q", name)
		}
		kinds[k] = r
	}
	cfg := fault.FromRates(seed, kinds)
	return cfg, cfg.Validate()
}

// ParseJSON decodes and validates a scenario. Unknown fields are typed
// errors, not silently dropped — fuzzed inputs must fail loudly or run.
func ParseJSON(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after the scenario object")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// MarshalJSON is the inverse of ParseJSON for round-tripping scenarios to
// disk; it is plain encoding/json marshalling of the struct.
func (s *Scenario) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// windowDur returns the virtual duration of one window.
func (s *Scenario) windowDur() time.Duration {
	ms := s.WindowMS
	if ms == 0 {
		ms = 1
	}
	return time.Duration(ms) * time.Millisecond
}

// server returns the ServerSpec with defaults resolved.
func (s *Scenario) server() ServerSpec {
	sp := s.Server
	if sp.Streams == 0 {
		sp.Streams = 4
	}
	if sp.QueueDepth == 0 {
		sp.QueueDepth = 16
	}
	if sp.MaxBatch == 0 {
		sp.MaxBatch = 8
	}
	return sp
}

// Validate reports the first configuration error. A valid scenario is
// guaranteed to expand into a bounded trace and to run through the
// replayer without configuration failures.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if s.Windows < 1 || s.Windows > MaxWindows {
		return fmt.Errorf("scenario %s: windows %d outside [1, %d]", s.Name, s.Windows, MaxWindows)
	}
	if s.WindowMS < 0 {
		return fmt.Errorf("scenario %s: negative window_ms %d", s.Name, s.WindowMS)
	}
	if err := s.validateArrival(); err != nil {
		return err
	}
	if err := s.validateMix(); err != nil {
		return err
	}
	if err := s.validateDeadline(); err != nil {
		return err
	}
	sp := s.server()
	if sp.Streams < 1 || sp.Streams > MaxStreams {
		return fmt.Errorf("scenario %s: streams %d outside [1, %d]", s.Name, sp.Streams, MaxStreams)
	}
	if sp.QueueDepth < 1 || sp.QueueDepth > MaxQueueDepth {
		return fmt.Errorf("scenario %s: queue_depth %d outside [1, %d]", s.Name, sp.QueueDepth, MaxQueueDepth)
	}
	if sp.MaxBatch < 1 || sp.MaxBatch > sp.QueueDepth {
		return fmt.Errorf("scenario %s: max_batch %d outside [1, queue_depth]", s.Name, sp.MaxBatch)
	}
	if sp.MICThreads < 0 || sp.CPUThreads < 0 {
		return fmt.Errorf("scenario %s: negative thread override", s.Name)
	}
	if _, err := faultConfig(s.Faults.Seed, s.Faults.Rates); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if len(s.Events) > MaxEvents {
		return fmt.Errorf("scenario %s: %d events exceed the %d cap", s.Name, len(s.Events), MaxEvents)
	}
	for i, e := range s.Events {
		if err := s.validateEvent(i, e); err != nil {
			return err
		}
	}
	return nil
}

func (s *Scenario) validateArrival() error {
	a := s.Arrival
	switch a.Process {
	case Steady, Poisson, Burst, Diurnal:
		if a.Rate < 0 || a.Rate > MaxRatePerWindow {
			return fmt.Errorf("scenario %s: rate %g outside [0, %d]", s.Name, a.Rate, MaxRatePerWindow)
		}
	case Closed:
		if a.Clients < 1 || a.Clients > MaxRatePerWindow {
			return fmt.Errorf("scenario %s: closed-loop clients %d outside [1, %d]", s.Name, a.Clients, MaxRatePerWindow)
		}
	default:
		return fmt.Errorf("scenario %s: unknown arrival process %q", s.Name, a.Process)
	}
	if a.Burst < 0 || a.Burst > MaxRatePerWindow {
		return fmt.Errorf("scenario %s: burst %d outside [0, %d]", s.Name, a.Burst, MaxRatePerWindow)
	}
	if a.Period < 0 || (a.Burst > 0 && a.Period == 0) {
		return fmt.Errorf("scenario %s: burst %d needs a positive period", s.Name, a.Burst)
	}
	if a.Peak < 0 || a.Peak > 64 {
		return fmt.Errorf("scenario %s: diurnal peak %g outside [0, 64]", s.Name, a.Peak)
	}
	// Bound the worst-case expansion so fuzzed scenarios stay tractable.
	peak := a.Peak
	if peak == 0 {
		peak = 3
	}
	worst := (a.Rate*peak + float64(a.Burst) + float64(a.Clients)) * float64(s.Windows) * 4
	if worst > MaxRequests {
		return fmt.Errorf("scenario %s: worst-case %d requests exceed the %d cap", s.Name, int(worst), MaxRequests)
	}
	return nil
}

func (s *Scenario) validateMix() error {
	if len(s.Mix) == 0 {
		return fmt.Errorf("scenario %s: empty mix", s.Name)
	}
	if len(s.Mix) > MaxMixEntries {
		return fmt.Errorf("scenario %s: %d mix entries exceed the %d cap", s.Name, len(s.Mix), MaxMixEntries)
	}
	for i, m := range s.Mix {
		kinds := 0
		for _, set := range []bool{m.Workload != "", m.Synth > 0, m.Invalid, m.Broken} {
			if set {
				kinds++
			}
		}
		if kinds != 1 {
			return fmt.Errorf("scenario %s: mix[%d] must set exactly one of workload/synth/invalid/broken", s.Name, i)
		}
		if m.Weight < 0 {
			return fmt.Errorf("scenario %s: mix[%d] negative weight %g", s.Name, i, m.Weight)
		}
		if m.Synth < 0 || m.Synth > 1<<20 {
			return fmt.Errorf("scenario %s: mix[%d] synth scale %d outside [0, 2^20]", s.Name, i, m.Synth)
		}
		if m.Optimize && m.Synth == 0 {
			return fmt.Errorf("scenario %s: mix[%d] optimize is only for synth entries", s.Name, i)
		}
		if m.Workload != "" && !m.ExpectError {
			b, err := workloads.Get(m.Workload)
			if err != nil {
				return fmt.Errorf("scenario %s: mix[%d]: %w (mark expect_error to serve it anyway)", s.Name, i, err)
			}
			if b.SharedMem {
				return fmt.Errorf("scenario %s: mix[%d]: %s is a shared-memory benchmark (mark expect_error to serve it anyway)", s.Name, i, m.Workload)
			}
		}
	}
	return nil
}

func (s *Scenario) validateDeadline() error {
	d := s.Deadline
	switch d.Dist {
	case "", "none":
		return nil
	case "fixed":
		if d.MinWindows <= 0 {
			return fmt.Errorf("scenario %s: fixed deadline needs min_windows > 0", s.Name)
		}
	case "uniform":
		if d.MinWindows <= 0 || d.MaxWindows < d.MinWindows {
			return fmt.Errorf("scenario %s: uniform deadline needs 0 < min_windows <= max_windows", s.Name)
		}
	default:
		return fmt.Errorf("scenario %s: unknown deadline dist %q", s.Name, d.Dist)
	}
	if d.Fraction < 0 || d.Fraction > 1 {
		return fmt.Errorf("scenario %s: deadline fraction %g outside [0, 1]", s.Name, d.Fraction)
	}
	return nil
}

func (s *Scenario) validateEvent(i int, e Event) error {
	if e.At < 0 || e.At >= s.Windows {
		return fmt.Errorf("scenario %s: events[%d] at %d outside [0, %d)", s.Name, i, e.At, s.Windows)
	}
	if e.Until != 0 && e.Until <= e.At {
		return fmt.Errorf("scenario %s: events[%d] until %d not after at %d", s.Name, i, e.Until, e.At)
	}
	switch e.Kind {
	case EventFaultStorm:
		if len(e.Rates) == 0 {
			return fmt.Errorf("scenario %s: events[%d] fault-storm without rates", s.Name, i)
		}
		if _, err := faultConfig(0, e.Rates); err != nil {
			return fmt.Errorf("scenario %s: events[%d]: %w", s.Name, i, err)
		}
	case EventUnplug:
		// No parameters: the device is simply gone.
	case EventSqueeze:
		if e.Capacity < 0 || e.Capacity > MaxQueueDepth {
			return fmt.Errorf("scenario %s: events[%d] squeeze capacity %d outside [0, %d]", s.Name, i, e.Capacity, MaxQueueDepth)
		}
	default:
		return fmt.Errorf("scenario %s: events[%d] unknown kind %q", s.Name, i, e.Kind)
	}
	return nil
}

// Builder assembles scenarios fluently; terminate with Build, which
// validates. The zero Builder is not usable — start with New.
type Builder struct{ sc Scenario }

// New starts a scenario with the given name and window count.
func New(name string, windows int) *Builder {
	return &Builder{sc: Scenario{Name: name, Windows: windows}}
}

// Describe sets the human-readable description.
func (b *Builder) Describe(d string) *Builder { b.sc.Description = d; return b }

// Arrive selects an open-loop arrival process.
func (b *Builder) Arrive(process string, rate float64) *Builder {
	b.sc.Arrival.Process = process
	b.sc.Arrival.Rate = rate
	return b
}

// BurstEvery adds `extra` arrivals on every period-th window (with the
// Burst process).
func (b *Builder) BurstEvery(extra, period int) *Builder {
	b.sc.Arrival.Burst = extra
	b.sc.Arrival.Period = period
	return b
}

// Peak sets the diurnal peak multiplier.
func (b *Builder) Peak(p float64) *Builder { b.sc.Arrival.Peak = p; return b }

// ClosedLoop selects the closed arrival process with the given population.
func (b *Builder) ClosedLoop(clients int) *Builder {
	b.sc.Arrival.Process = Closed
	b.sc.Arrival.Clients = clients
	return b
}

// Workload adds a registry benchmark to the mix.
func (b *Builder) Workload(name string, weight float64) *Builder {
	b.sc.Mix = append(b.sc.Mix, MixEntry{Workload: name, Weight: weight})
	return b
}

// Synth adds a synthetic inline program of the given scale to the mix.
func (b *Builder) Synth(scale int, weight float64, optimize bool) *Builder {
	b.sc.Mix = append(b.sc.Mix, MixEntry{Synth: scale, Weight: weight, Optimize: optimize})
	return b
}

// Invalid adds malformed submissions to the mix.
func (b *Builder) Invalid(weight float64) *Builder {
	b.sc.Mix = append(b.sc.Mix, MixEntry{Invalid: true, Weight: weight})
	return b
}

// Broken adds non-compiling inline submissions (cached plan error) to the
// mix.
func (b *Builder) Broken(weight float64) *Builder {
	b.sc.Mix = append(b.sc.Mix, MixEntry{Broken: true, Weight: weight})
	return b
}

// Deadlines sets the deadline distribution.
func (b *Builder) Deadlines(dist string, minW, maxW, fraction float64) *Builder {
	b.sc.Deadline = Deadline{Dist: dist, MinWindows: minW, MaxWindows: maxW, Fraction: fraction}
	return b
}

// Server shapes the server: streams, queue depth, max batch.
func (b *Builder) Server(streams, queue, maxBatch int) *Builder {
	b.sc.Server.Streams = streams
	b.sc.Server.QueueDepth = queue
	b.sc.Server.MaxBatch = maxBatch
	return b
}

// Faults sets the baseline fault schedule.
func (b *Builder) Faults(seed int64, rates map[string]float64) *Builder {
	b.sc.Faults = FaultSpec{Seed: seed, Rates: rates}
	return b
}

// FaultStorm raises fault rates over [at, until).
func (b *Builder) FaultStorm(at, until int, rates map[string]float64) *Builder {
	b.sc.Events = append(b.sc.Events, Event{Kind: EventFaultStorm, At: at, Until: until, Rates: rates})
	return b
}

// Unplug removes the device over [at, until) — replug at until.
func (b *Builder) Unplug(at, until int) *Builder {
	b.sc.Events = append(b.sc.Events, Event{Kind: EventUnplug, At: at, Until: until})
	return b
}

// Squeeze caps the admission queue at capacity over [at, until).
func (b *Builder) Squeeze(at, until, capacity int) *Builder {
	b.sc.Events = append(b.sc.Events, Event{Kind: EventSqueeze, At: at, Until: until, Capacity: capacity})
	return b
}

// Expecting installs scenario-specific minimum expectations.
func (b *Builder) Expecting(e Expect) *Builder { b.sc.Expect = e; return b }

// Build validates and returns the scenario.
func (b *Builder) Build() (*Scenario, error) {
	sc := b.sc
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// MustBuild is Build for the built-in table; it panics on error.
func (b *Builder) MustBuild() *Scenario {
	sc, err := b.Build()
	if err != nil {
		panic(err)
	}
	return sc
}
