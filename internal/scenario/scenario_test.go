package scenario

import (
	"strings"
	"testing"
	"time"
)

func TestBuiltinsValidateAndRoundTrip(t *testing.T) {
	scs := Builtins()
	if len(scs) != 8 {
		t.Fatalf("built-ins: got %d scenarios, want 8", len(scs))
	}
	for _, sc := range scs {
		if err := sc.Validate(); err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		data, err := sc.JSON()
		if err != nil {
			t.Fatalf("%s: marshal: %v", sc.Name, err)
		}
		back, err := ParseJSON(data)
		if err != nil {
			t.Fatalf("%s: round-trip parse: %v\n%s", sc.Name, err, data)
		}
		tr1, err := sc.Generate(42)
		if err != nil {
			t.Fatalf("%s: generate: %v", sc.Name, err)
		}
		tr2, err := back.Generate(42)
		if err != nil {
			t.Fatalf("%s: round-trip generate: %v", sc.Name, err)
		}
		if len(tr1.Requests) != len(tr2.Requests) {
			t.Fatalf("%s: round-trip changed the trace: %d vs %d requests",
				sc.Name, len(tr1.Requests), len(tr2.Requests))
		}
		for i := range tr1.Requests {
			if tr1.Requests[i] != tr2.Requests[i] {
				t.Fatalf("%s: round-trip changed request %d: %+v vs %+v",
					sc.Name, i, tr1.Requests[i], tr2.Requests[i])
			}
		}
	}
}

func TestLookup(t *testing.T) {
	sc, err := Lookup("fault-storm")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "fault-storm" {
		t.Fatalf("Lookup returned %q", sc.Name)
	}
	if _, err := Lookup("no-such-scenario"); err == nil {
		t.Fatal("Lookup(no-such-scenario) succeeded")
	} else if !strings.Contains(err.Error(), "built-ins") {
		t.Fatalf("Lookup error does not list built-ins: %v", err)
	}
}

func TestParseJSONRejects(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty object", `{}`, "missing name"},
		{"unknown field", `{"name":"x","windows":2,"arrival":{"process":"steady","rate":1},"mix":[{"synth":2}],"bogus":1}`, "bogus"},
		{"trailing data", `{"name":"x","windows":2,"arrival":{"process":"steady","rate":1},"mix":[{"synth":2}]} 7`, "trailing"},
		{"bad process", `{"name":"x","windows":2,"arrival":{"process":"fractal","rate":1},"mix":[{"synth":2}]}`, "arrival process"},
		{"no mix", `{"name":"x","windows":2,"arrival":{"process":"steady","rate":1}}`, "empty mix"},
		{"ambiguous mix", `{"name":"x","windows":2,"arrival":{"process":"steady","rate":1},"mix":[{"synth":2,"invalid":true}]}`, "exactly one"},
		{"unknown workload", `{"name":"x","windows":2,"arrival":{"process":"steady","rate":1},"mix":[{"workload":"nope"}]}`, "unknown benchmark"},
		{"shared-mem workload", `{"name":"x","windows":2,"arrival":{"process":"steady","rate":1},"mix":[{"workload":"ferret"}]}`, "shared-memory"},
		{"bad deadline dist", `{"name":"x","windows":2,"arrival":{"process":"steady","rate":1},"mix":[{"synth":2}],"deadline":{"dist":"zipf"}}`, "deadline dist"},
		{"bad event kind", `{"name":"x","windows":2,"arrival":{"process":"steady","rate":1},"mix":[{"synth":2}],"events":[{"kind":"meteor","at":0}]}`, "unknown kind"},
		{"event out of range", `{"name":"x","windows":2,"arrival":{"process":"steady","rate":1},"mix":[{"synth":2}],"events":[{"kind":"unplug","at":5}]}`, "outside"},
		{"storm without rates", `{"name":"x","windows":2,"arrival":{"process":"steady","rate":1},"mix":[{"synth":2}],"events":[{"kind":"fault-storm","at":0}]}`, "without rates"},
		{"bad fault kind", `{"name":"x","windows":2,"arrival":{"process":"steady","rate":1},"mix":[{"synth":2}],"faults":{"rates":{"cosmic":0.5}}}`, "fault kind"},
		{"fault rate range", `{"name":"x","windows":2,"arrival":{"process":"steady","rate":1},"mix":[{"synth":2}],"faults":{"rates":{"dma":1.5}}}`, "outside"},
		{"max_batch above queue", `{"name":"x","windows":2,"arrival":{"process":"steady","rate":1},"mix":[{"synth":2}],"server":{"queue_depth":4,"max_batch":8}}`, "max_batch"},
		{"worst case too big", `{"name":"x","windows":512,"arrival":{"process":"steady","rate":256},"mix":[{"synth":2}]}`, "cap"},
	}
	for _, c := range cases {
		_, err := ParseJSON([]byte(c.in))
		if err == nil {
			t.Errorf("%s: parsed without error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestGenerateDeterministicAndSeedSensitive(t *testing.T) {
	sc, err := Lookup("mixed-chaos")
	if err != nil {
		t.Fatal(err)
	}
	a, err := sc.Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("same seed, different trace sizes: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("same seed, request %d differs: %+v vs %+v", i, a.Requests[i], b.Requests[i])
		}
	}
	c, err := sc.Generate(6)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Requests) == len(c.Requests)
	if same {
		for i := range a.Requests {
			if a.Requests[i] != c.Requests[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 5 and 6 expanded to identical traces")
	}
}

func TestArrivalProcesses(t *testing.T) {
	t.Run("steady fractional rate", func(t *testing.T) {
		sc := New("s", 10).Arrive(Steady, 1.5).Synth(2, 1, false).MustBuild()
		tr, err := sc.Generate(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Requests) != 15 {
			t.Fatalf("steady 1.5 x 10 windows expanded to %d requests, want 15", len(tr.Requests))
		}
	})
	t.Run("burst adds on period", func(t *testing.T) {
		sc := New("b", 6).Arrive(Burst, 1).BurstEvery(5, 3).Synth(2, 1, false).MustBuild()
		tr, err := sc.Generate(1)
		if err != nil {
			t.Fatal(err)
		}
		perWindow := make(map[int]int)
		for _, r := range tr.Requests {
			perWindow[r.Window]++
		}
		if perWindow[2] != 6 || perWindow[5] != 6 {
			t.Fatalf("burst windows got %d and %d arrivals, want 6 each", perWindow[2], perWindow[5])
		}
		if perWindow[0] != 1 {
			t.Fatalf("baseline window got %d arrivals, want 1", perWindow[0])
		}
	})
	t.Run("closed loop bounded by clients", func(t *testing.T) {
		sc := New("c", 8).ClosedLoop(5).Synth(2, 1, false).Server(2, 16, 2).MustBuild()
		tr, err := sc.Generate(1)
		if err != nil {
			t.Fatal(err)
		}
		perWindow := make(map[int]int)
		for _, r := range tr.Requests {
			perWindow[r.Window]++
		}
		if perWindow[0] != 5 {
			t.Fatalf("closed loop window 0 got %d arrivals, want all 5 clients", perWindow[0])
		}
		for w, n := range perWindow {
			if n > 5 {
				t.Fatalf("window %d has %d arrivals, more than the 5 clients", w, n)
			}
		}
	})
	t.Run("arrivals ordered and windowed", func(t *testing.T) {
		sc, err := Lookup("diurnal")
		if err != nil {
			t.Fatal(err)
		}
		tr, err := sc.Generate(3)
		if err != nil {
			t.Fatal(err)
		}
		var last time.Duration = -1
		for _, r := range tr.Requests {
			if r.Arrival <= last {
				t.Fatalf("request %d arrival %v not after previous %v", r.ID, r.Arrival, last)
			}
			last = r.Arrival
			lo := time.Duration(r.Window) * tr.Window
			if r.Arrival < lo || r.Arrival >= lo+tr.Window {
				t.Fatalf("request %d arrival %v outside its window %d", r.ID, r.Arrival, r.Window)
			}
		}
	})
}

func TestDeadlineSampling(t *testing.T) {
	sc := New("d", 4).Arrive(Steady, 8).Synth(2, 1, false).
		Deadlines("uniform", 1, 3, 0.5).Server(2, 64, 8).MustBuild()
	tr, err := sc.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	with, without := 0, 0
	for _, r := range tr.Requests {
		if r.Deadline == 0 {
			without++
			continue
		}
		with++
		if r.Deadline < tr.Window || r.Deadline > 3*tr.Window {
			t.Fatalf("deadline %v outside [1, 3] windows", r.Deadline)
		}
	}
	if with == 0 || without == 0 {
		t.Fatalf("fraction 0.5 drew %d with / %d without deadlines", with, without)
	}
}

func TestBuilderValidation(t *testing.T) {
	if _, err := New("", 4).Arrive(Steady, 1).Synth(2, 1, false).Build(); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New("x", 0).Arrive(Steady, 1).Synth(2, 1, false).Build(); err == nil {
		t.Error("zero windows accepted")
	}
	if _, err := New("x", 4).Arrive(Steady, 1).Synth(2, 1, false).
		Squeeze(1, 3, -1).Build(); err == nil {
		t.Error("negative squeeze capacity accepted")
	}
	if _, err := New("x", 4).Arrive(Steady, 1).Synth(2, 1, false).
		FaultStorm(3, 2, map[string]float64{"dma": 0.5}).Build(); err == nil {
		t.Error("until before at accepted")
	}
}
