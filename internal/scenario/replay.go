package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"comp/internal/runtime"
	"comp/internal/serve"
	"comp/internal/sim/fault"
	"comp/internal/sim/metrics"
)

// synthSource is the inline MiniC program behind synth mix entries: one
// offload over a small array whose outputs depend on the scale, so synth
// plans at different scales never collide in the cache. It is deliberately
// tiny — fuzzed scenarios replay hundreds of these.
func synthSource(scale int) string {
	return fmt.Sprintf(`
float a[2048];
float out[2048];
int n;
int main(void) {
    int i;
    n = 2048;
    for (i = 0; i < n; i++) {
        a[i] = i * 0.25 + 1.0;
    }
    #pragma offload target(mic:0) in(a : length(n)) out(out : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        out[i] = sqrt(a[i] * %d.0) + a[i] * 0.125;
    }
    return 0;
}
`, scale)
}

// brokenSource does not parse; its plan build fails once and the error is
// cached under a fixed key, so every later broken request must be answered
// from the cached entry without recompiling or re-probing.
const brokenSource = "int main(void) { return 0"

// brokenKey is the shared plan-cache key for broken submissions.
const brokenKey = "scenario-broken"

// Outcome is one request's answer.
type Outcome struct {
	ID  int `json:"id"`
	Mix int `json:"mix"`
	// Label is the server-assigned id (empty when rejected at admission).
	Label string `json:"label,omitempty"`
	// Err is the error text; empty means the request completed.
	Err string `json:"err,omitempty"`
	// Outputs are the completed request's output arrays.
	Outputs map[string][]float64 `json:"outputs,omitempty"`
	// LatencyNs is the virtual submit→answer latency.
	LatencyNs int64 `json:"latency_ns,omitempty"`
	StreamID  int   `json:"stream,omitempty"`
	Retries   int64 `json:"retries,omitempty"`
	Fallbacks int   `json:"fallbacks,omitempty"`
	// PlanCached reports plan-cache reuse for completed requests.
	PlanCached bool `json:"plan_cached,omitempty"`

	answered bool
	err      error
}

// Completed reports whether the request was served successfully.
func (o Outcome) Completed() bool { return o.answered && o.err == nil }

// Result is one replay's full evidence: the trace it executed, every
// request's outcome, and the server report. OutcomesJSON/ReportJSON are
// the canonical bytes Verify compares across replays.
type Result struct {
	Trace        *Trace
	Outcomes     []Outcome
	Report       metrics.ServerReport
	ReportJSON   []byte
	OutcomesJSON []byte
}

// Replay expands the scenario with the seed and replays the trace.
func Replay(sc *Scenario, seed int64) (*Result, error) {
	tr, err := sc.Generate(seed)
	if err != nil {
		return nil, err
	}
	return ReplayTrace(tr)
}

// activeState resolves which perturbations are in force during a window:
// the effective fault schedule and the admission cap. Events with Until 0
// stay active through the drain windows after the last arrival.
func activeState(sc *Scenario, w int, base fault.Config) (fault.Config, int) {
	fc := base
	limit := -1
	for _, e := range sc.Events {
		until := e.Until
		if until == 0 {
			until = 1 << 30
		}
		if w < e.At || w >= until {
			continue
		}
		switch e.Kind {
		case EventFaultStorm:
			// Validated at build time; storms replace the whole schedule so
			// overlapping storms compose last-wins, like operator actions.
			fc, _ = faultConfig(sc.Faults.Seed, e.Rates)
		case EventUnplug:
			// Every device operation fails; requests survive only through
			// the recovery ladder's host fallback.
			fc = fault.Uniform(sc.Faults.Seed, 1)
		case EventSqueeze:
			limit = e.Capacity
		}
	}
	return fc, limit
}

// ReplayTrace drives a trace through a stepped serve.Server on a virtual
// clock: submit window w's arrivals at their virtual times, advance the
// clock to the window boundary, run exactly one batch, and answer the
// batch's requests — then keep stepping past the last window until the
// queue drains. Everything the server observes is a function of the trace,
// so two replays are bit-identical.
func ReplayTrace(tr *Trace) (*Result, error) {
	sc := tr.Scenario
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sp := sc.server()

	rtCfg := runtime.DefaultConfig()
	rtCfg.DisableTrace = true
	if sp.MICThreads > 0 {
		rtCfg.MICThreads = sp.MICThreads
	}
	if sp.CPUThreads > 0 {
		rtCfg.CPUThreads = sp.CPUThreads
	}
	baseFaults, err := faultConfig(sc.Faults.Seed, sc.Faults.Rates)
	if err != nil {
		return nil, err
	}
	rtCfg.Faults = baseFaults

	// The virtual clock: a fixed epoch plus the replay's current offset.
	epoch := time.Unix(0, 0).UTC()
	var offset time.Duration
	srv, err := serve.New(serve.Config{
		Runtime:    &rtCfg,
		Streams:    sp.Streams,
		QueueDepth: sp.QueueDepth,
		MaxBatch:   sp.MaxBatch,
		Stepped:    true,
		Clock:      func() time.Time { return epoch.Add(offset) },
		Exec:       sp.Exec,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	res := &Result{Trace: tr, Outcomes: make([]Outcome, len(tr.Requests))}
	for i, req := range tr.Requests {
		res.Outcomes[i] = Outcome{ID: req.ID, Mix: req.Mix}
	}

	// Outstanding tickets in admission order; StepBatch answers batches in
	// queue order, so the n oldest tickets are the answered ones.
	type open struct {
		id int
		t  *serve.Ticket
	}
	var outstanding []open

	byWindow := make([][]Request, sc.Windows)
	for _, req := range tr.Requests {
		byWindow[req.Window] = append(byWindow[req.Window], req)
	}

	win := tr.Window
	settle := func(n int) {
		for i := 0; i < n; i++ {
			o := outstanding[i]
			resp, err := o.t.Wait()
			out := &res.Outcomes[o.id]
			out.answered = true
			out.Label = o.t.Label()
			if err != nil {
				out.err = err
				out.Err = err.Error()
				continue
			}
			out.Outputs = resp.Outputs
			out.LatencyNs = int64(resp.Latency)
			out.StreamID = resp.StreamID
			out.Retries = resp.Retries
			out.Fallbacks = resp.Fallbacks
			out.PlanCached = resp.PlanCached
		}
		outstanding = outstanding[n:]
	}

	maxWindows := sc.Windows + len(tr.Requests) + 1
	for w := 0; w < maxWindows; w++ {
		if w >= sc.Windows && len(outstanding) == 0 {
			break
		}
		fc, limit := activeState(sc, w, baseFaults)
		if err := srv.SetFaults(fc); err != nil {
			return nil, err
		}
		srv.SetAdmitLimit(limit)

		if w < sc.Windows {
			for _, req := range byWindow[w] {
				offset = req.Arrival
				t, err := srv.Enqueue(jobFor(sc, req))
				out := &res.Outcomes[req.ID]
				if err != nil {
					out.answered = true
					out.err = err
					out.Err = err.Error()
					continue
				}
				outstanding = append(outstanding, open{id: req.ID, t: t})
			}
		}
		offset = time.Duration(w+1) * win
		settle(srv.StepBatch())
	}
	if len(outstanding) > 0 {
		return nil, fmt.Errorf("scenario %s: replay did not drain: %d requests still open", sc.Name, len(outstanding))
	}

	res.Report = srv.Report()
	if res.ReportJSON, err = json.Marshal(res.Report); err != nil {
		return nil, err
	}
	if res.OutcomesJSON, err = json.Marshal(res.Outcomes); err != nil {
		return nil, err
	}
	return res, nil
}

// jobFor shapes one request's serve.Job from its mix entry.
func jobFor(sc *Scenario, req Request) serve.Job {
	m := sc.Mix[req.Mix]
	switch {
	case m.Workload != "":
		return serve.Job{Workload: m.Workload, Deadline: req.Deadline}
	case m.Synth > 0:
		key := fmt.Sprintf("scenario-synth-%d", m.Synth)
		if m.Optimize {
			key += "-opt"
		}
		return serve.Job{
			Key:      key,
			Source:   synthSource(m.Synth),
			Outputs:  []string{"out"},
			Optimize: m.Optimize,
			Deadline: req.Deadline,
		}
	case m.Broken:
		return serve.Job{Key: brokenKey, Source: brokenSource, Deadline: req.Deadline}
	default: // Invalid
		return serve.Job{Deadline: req.Deadline}
	}
}

// CheckInvariants asserts the serving contract over one replay:
//
//  1. Every request is answered exactly once — no silent drops.
//  2. Every rejection is a typed error; only expected-bad mix entries may
//     fail with anything else, and malformed submissions must see
//     ErrInvalidJob specifically.
//  3. Deadlines are honoured: a completed request never exceeds its
//     deadline, and ErrDeadlineExceeded only answers requests that had one.
//  4. Completed workload/synth requests carry non-empty outputs.
//  5. The report's accounting balances against the per-request outcomes.
//  6. The scenario's Expect minimums hold.
func (r *Result) CheckInvariants() error {
	sc := r.Trace.Scenario
	if len(r.Outcomes) != len(r.Trace.Requests) {
		return fmt.Errorf("scenario %s: %d outcomes for %d requests", sc.Name, len(r.Outcomes), len(r.Trace.Requests))
	}
	var completed, failed, shed, expired, invalid int64
	for i, out := range r.Outcomes {
		req := r.Trace.Requests[i]
		m := sc.Mix[out.Mix]
		if !out.answered {
			return fmt.Errorf("scenario %s: request %d was never answered", sc.Name, out.ID)
		}
		if out.err == nil {
			completed++
			if (m.Workload != "" || m.Synth > 0) && len(out.Outputs) == 0 {
				return fmt.Errorf("scenario %s: request %d completed without outputs", sc.Name, out.ID)
			}
			if req.Deadline > 0 && time.Duration(out.LatencyNs) > req.Deadline {
				return fmt.Errorf("scenario %s: request %d completed at %v past its %v deadline",
					sc.Name, out.ID, time.Duration(out.LatencyNs), req.Deadline)
			}
			if m.Invalid || m.Broken {
				return fmt.Errorf("scenario %s: %s request %d completed", sc.Name, mixKind(m), out.ID)
			}
			continue
		}
		switch {
		case errors.Is(out.err, serve.ErrInvalidJob):
			invalid++
		case errors.Is(out.err, serve.ErrOverloaded):
			shed++
		case errors.Is(out.err, serve.ErrDeadlineExceeded):
			expired++
			if req.Deadline <= 0 {
				return fmt.Errorf("scenario %s: request %d expired without a deadline", sc.Name, out.ID)
			}
		case errors.Is(out.err, serve.ErrClosed):
			failed++
		default:
			// Untyped errors are legal only for mix entries that promise
			// them (broken source, expect_error workloads).
			if !m.Broken && !m.ExpectError {
				return fmt.Errorf("scenario %s: request %d failed with untyped error %q", sc.Name, out.ID, out.Err)
			}
			failed++
		}
		if m.Invalid && !errors.Is(out.err, serve.ErrInvalidJob) {
			return fmt.Errorf("scenario %s: invalid request %d got %q, want ErrInvalidJob", sc.Name, out.ID, out.Err)
		}
	}

	rep := r.Report
	if rep.Submitted != int64(len(r.Outcomes)) {
		return fmt.Errorf("scenario %s: report submitted %d, trace has %d", sc.Name, rep.Submitted, len(r.Outcomes))
	}
	if rep.Submitted != rep.Completed+rep.Failed+rep.Shed+rep.Expired+rep.Invalid {
		return fmt.Errorf("scenario %s: accounting leak: submitted %d != completed %d + failed %d + shed %d + expired %d + invalid %d",
			sc.Name, rep.Submitted, rep.Completed, rep.Failed, rep.Shed, rep.Expired, rep.Invalid)
	}
	if rep.Admitted != rep.Completed+rep.Failed+rep.Expired {
		return fmt.Errorf("scenario %s: admitted %d != completed %d + failed %d + expired %d",
			sc.Name, rep.Admitted, rep.Completed, rep.Failed, rep.Expired)
	}
	for _, c := range []struct {
		name      string
		got, want int64
	}{
		{"completed", rep.Completed, completed},
		{"failed", rep.Failed, failed},
		{"shed", rep.Shed, shed},
		{"expired", rep.Expired, expired},
		{"invalid", rep.Invalid, invalid},
	} {
		if c.got != c.want {
			return fmt.Errorf("scenario %s: report %s %d, outcomes say %d", sc.Name, c.name, c.got, c.want)
		}
	}

	e := sc.Expect
	for _, c := range []struct {
		name      string
		got, want int64
	}{
		{"completed", rep.Completed, e.MinCompleted},
		{"shed", rep.Shed, e.MinShed},
		{"expired", rep.Expired, e.MinExpired},
		{"faults injected", rep.FaultsInjected, e.MinFaults},
		{"retries", rep.Retries, e.MinRetries},
		{"fallbacks", rep.Fallbacks, e.MinFallbacks},
	} {
		if c.want > 0 && c.got < c.want {
			return fmt.Errorf("scenario %s: expected at least %d %s, got %d", sc.Name, c.want, c.name, c.got)
		}
	}
	return nil
}

func mixKind(m MixEntry) string {
	switch {
	case m.Workload != "":
		return "workload " + m.Workload
	case m.Synth > 0:
		return fmt.Sprintf("synth-%d", m.Synth)
	case m.Broken:
		return "broken"
	default:
		return "invalid"
	}
}

// Verify replays (scenario, seed) twice and demands bit-identical evidence:
// the same per-request outputs, errors, latencies and stream assignments,
// and the same marshalled ServerReport. Both replays must also pass
// CheckInvariants. It returns the first replay's result.
func Verify(sc *Scenario, seed int64) (*Result, error) {
	first, err := Replay(sc, seed)
	if err != nil {
		return nil, err
	}
	if err := first.CheckInvariants(); err != nil {
		return nil, err
	}
	second, err := Replay(sc, seed)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: second replay: %w", sc.Name, err)
	}
	if err := second.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("scenario %s: second replay: %w", sc.Name, err)
	}
	if !bytes.Equal(first.OutcomesJSON, second.OutcomesJSON) {
		return nil, fmt.Errorf("scenario %s: replay divergence: per-request outcomes differ between replays of seed %d", sc.Name, seed)
	}
	if !bytes.Equal(first.ReportJSON, second.ReportJSON) {
		return nil, fmt.Errorf("scenario %s: replay divergence: server reports differ between replays of seed %d", sc.Name, seed)
	}
	return first, nil
}
