package scenario

import (
	"fmt"
	"sort"
)

// builtins constructs the built-in scenario table. Each call builds fresh
// values so callers can mutate their copy; sizes are chosen to finish in
// well under a second each so the whole table runs in CI with -race.
func builtins() map[string]*Scenario {
	table := []*Scenario{
		New("steady", 8).
			Describe("steady open-loop load under ample capacity; everything completes").
			Arrive(Steady, 4).
			Workload("nn", 2).Synth(3, 3, false).Workload("dedup", 1).
			Server(4, 32, 8).
			Expecting(Expect{MinCompleted: 32}).
			MustBuild(),

		New("overload", 6).
			Describe("arrival rate far past service capacity; the queue sheds, admitted work still completes").
			Arrive(Steady, 8).
			Synth(2, 1, false).Synth(5, 1, false).
			Server(2, 6, 3).
			Expecting(Expect{MinCompleted: 18, MinShed: 15}).
			MustBuild(),

		New("burst", 9).
			Describe("quiet baseline with a 13x burst every third window; bursts overflow the queue").
			Arrive(Burst, 1).BurstEvery(12, 3).
			Workload("nn", 1).Synth(4, 2, false).
			Server(4, 10, 8).
			Expecting(Expect{MinCompleted: 30, MinShed: 6}).
			MustBuild(),

		New("diurnal", 12).
			Describe("Poisson load ramping through one diurnal peak and back down").
			Arrive(Diurnal, 2).Peak(4).
			Synth(3, 1, false).Synth(6, 1, false).Workload("nn", 1).
			Server(4, 24, 8).
			Expecting(Expect{MinCompleted: 10}).
			MustBuild(),

		New("deadline-heavy", 8).
			Describe("tight deadlines against a deliberately small batch size; backlog growth expires the tail").
			Arrive(Steady, 6).
			Synth(3, 2, false).Workload("nn", 1).
			Deadlines("uniform", 1, 2, 0.8).
			Server(4, 24, 4).
			Expecting(Expect{MinCompleted: 10, MinExpired: 5}).
			MustBuild(),

		New("fault-storm", 8).
			Describe("low background fault rate with a mid-run storm; every request completes via retries").
			Arrive(Steady, 3).
			Synth(3, 2, false).Workload("nn", 1).
			Faults(7, map[string]float64{"dma": 0.02}).
			FaultStorm(2, 6, map[string]float64{"dma": 0.4, "hang": 0.25, "launch": 0.2}).
			Server(4, 24, 8).
			Expecting(Expect{MinCompleted: 24, MinFaults: 3, MinRetries: 1}).
			MustBuild(),

		New("hot-unplug", 8).
			Describe("device disappears for four windows; requests survive on the host-fallback ladder until replug").
			Arrive(Steady, 3).
			Synth(2, 1, false).Synth(7, 1, false).
			Unplug(2, 6).
			Server(2, 24, 8).
			Expecting(Expect{MinCompleted: 24, MinFaults: 2, MinFallbacks: 2}).
			MustBuild(),

		New("mixed-chaos", 10).
			Describe("Poisson load with deadlines, malformed and non-compiling submissions, a fault storm, and a queue squeeze").
			Arrive(Poisson, 4).
			Workload("nn", 1).Synth(3, 2, false).Invalid(0.5).Broken(0.5).
			Deadlines("uniform", 2, 4, 0.5).
			Faults(11, map[string]float64{"dma": 0.05}).
			FaultStorm(3, 6, map[string]float64{"dma": 0.3, "hang": 0.2}).
			Squeeze(5, 8, 2).
			Server(4, 12, 6).
			Expecting(Expect{MinCompleted: 10, MinFaults: 1}).
			MustBuild(),
	}
	m := make(map[string]*Scenario, len(table))
	for _, sc := range table {
		m[sc.Name] = sc
	}
	return m
}

// Builtins returns the built-in scenarios in name order. Each call returns
// fresh values.
func Builtins() []*Scenario {
	m := builtins()
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*Scenario, 0, len(names))
	for _, name := range names {
		out = append(out, m[name])
	}
	return out
}

// Lookup returns the named built-in scenario.
func Lookup(name string) (*Scenario, error) {
	if sc, ok := builtins()[name]; ok {
		return sc, nil
	}
	names := make([]string, 0)
	for n := range builtins() {
		names = append(names, n)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("scenario: unknown scenario %q (built-ins: %v)", name, names)
}
