package scenario

import (
	"testing"
)

// clampForFuzz bounds a parsed scenario so one fuzz execution stays cheap:
// small window counts and rates, synthetic-only workload classes (registry
// workloads are orders of magnitude more expensive per request and are
// covered by the built-in suite), and a modest queue. The interesting
// structure — arrival processes, deadline distributions, event schedules,
// invalid/broken mix entries — is preserved.
func clampForFuzz(sc *Scenario) {
	if sc.Windows > 6 {
		sc.Windows = 6
	}
	if sc.Arrival.Rate > 6 {
		sc.Arrival.Rate = 6
	}
	if sc.Arrival.Burst > 8 {
		sc.Arrival.Burst = 8
	}
	if sc.Arrival.Clients > 8 {
		sc.Arrival.Clients = 8
	}
	if sc.Arrival.Peak > 4 {
		sc.Arrival.Peak = 4
	}
	if len(sc.Mix) > 4 {
		sc.Mix = sc.Mix[:4]
	}
	for i := range sc.Mix {
		m := &sc.Mix[i]
		if m.Workload != "" || m.ExpectError {
			*m = MixEntry{Synth: 2, Weight: m.Weight}
		}
		if m.Synth > 16 {
			m.Synth = 1 + m.Synth%16
		}
		m.Optimize = false
	}
	if sc.Server.QueueDepth > 64 {
		sc.Server.QueueDepth = 64
	}
	if sc.Server.MaxBatch > sc.Server.QueueDepth && sc.Server.QueueDepth > 0 {
		sc.Server.MaxBatch = sc.Server.QueueDepth
	}
	if sc.Server.Streams > 4 {
		sc.Server.Streams = 4
	}
	if len(sc.Events) > 6 {
		sc.Events = sc.Events[:6]
	}
	for i := range sc.Events {
		if sc.Events[i].At >= sc.Windows {
			sc.Events[i].At = sc.Events[i].At % sc.Windows
		}
		if u := sc.Events[i].Until; u != 0 && u <= sc.Events[i].At {
			sc.Events[i].Until = sc.Events[i].At + 1
		}
	}
}

// FuzzScenario throws arbitrary JSON at the scenario engine. Inputs that
// fail to parse or validate must do so with an error, never a panic;
// inputs that validate are clamped to a cheap size and must replay with
// every serving invariant intact and bit-identical double-replay evidence.
func FuzzScenario(f *testing.F) {
	for _, sc := range Builtins() {
		data, err := sc.JSON()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data, int64(1))
	}
	f.Add([]byte(`{"name":"tiny","windows":2,"arrival":{"process":"steady","rate":2},"mix":[{"synth":2}]}`), int64(7))
	f.Add([]byte(`{"name":"bad","windows":-3}`), int64(0))

	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		sc, err := ParseJSON(data)
		if err != nil {
			return // malformed or invalid: a typed error is the contract
		}
		clampForFuzz(sc)
		if err := sc.Validate(); err != nil {
			return // clamping cannot repair every input
		}
		sc.Expect = Expect{} // expectations are author intent, not invariants
		if _, err := Verify(sc, seed); err != nil {
			t.Fatalf("scenario broke the serving invariants:\n%s\nseed %d: %v", data, seed, err)
		}
	})
}
