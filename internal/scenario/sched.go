package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"

	"comp/internal/interp"
	"comp/internal/runtime"
	"comp/internal/vm"
	"comp/internal/workloads"
)

// SchedReplay is the raw-scheduler replay of a trace: no serving layer, no
// queue, no deadlines — every serveable arrival executes, one Scheduler
// run per window. It is the control arm for the serve-level replay: the
// same trace, the same fault windows, the same outputs, with the
// admission-control machinery removed.
type SchedReplay struct {
	Trace *Trace
	// Outputs holds each executed request's output arrays by request ID.
	// Invalid, broken and expect-error entries have no scheduler
	// equivalent and are skipped (recorded in Skipped).
	Outputs map[int]map[string][]float64
	Skipped int
	// Windows is each non-empty window's scheduler stats, in window order.
	Windows []runtime.SchedStats
	// StatsJSON is the canonical marshalling of Windows that
	// VerifyScheduler compares across replays.
	StatsJSON []byte
}

// ReplayScheduler expands and replays the scenario on the raw scheduler.
func ReplayScheduler(sc *Scenario, seed int64) (*SchedReplay, error) {
	tr, err := sc.Generate(seed)
	if err != nil {
		return nil, err
	}
	return ReplayTraceScheduler(tr)
}

// ReplayTraceScheduler drives the trace through runtime.Scheduler directly:
// for every window, the window's serveable arrivals become one batch on a
// fresh scheduler configured with the window's effective fault schedule
// (storms and unplug windows apply exactly as in the serve replay).
func ReplayTraceScheduler(tr *Trace) (*SchedReplay, error) {
	sc := tr.Scenario
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sp := sc.server()

	rtCfg := runtime.DefaultConfig()
	rtCfg.DisableTrace = true
	if sp.MICThreads > 0 {
		rtCfg.MICThreads = sp.MICThreads
	}
	if sp.CPUThreads > 0 {
		rtCfg.CPUThreads = sp.CPUThreads
	}
	baseFaults, err := faultConfig(sc.Faults.Seed, sc.Faults.Rates)
	if err != nil {
		return nil, err
	}

	rep := &SchedReplay{Trace: tr, Outputs: make(map[int]map[string][]float64)}

	byWindow := make([][]Request, sc.Windows)
	for _, req := range tr.Requests {
		byWindow[req.Window] = append(byWindow[req.Window], req)
	}

	type item struct {
		id      int
		prog    *interp.Program
		outputs []string
	}
	for w := 0; w < sc.Windows; w++ {
		fc, _ := activeState(sc, w, baseFaults)
		cfg := rtCfg
		cfg.Faults = fc

		var items []item
		for _, req := range byWindow[w] {
			m := sc.Mix[req.Mix]
			switch {
			case m.Workload != "" && !m.ExpectError:
				b, err := workloads.Get(m.Workload)
				if err != nil {
					return nil, err
				}
				prog, _, err := b.Prepare(workloads.RunOptions{Variant: workloads.MICNaive, Config: &cfg, Exec: sc.Server.Exec})
				if err != nil {
					return nil, fmt.Errorf("scenario %s: request %d: %w", sc.Name, req.ID, err)
				}
				items = append(items, item{id: req.ID, prog: prog, outputs: b.Outputs})
			case m.Synth > 0:
				prog, err := interp.Compile(synthSource(m.Synth))
				if err != nil {
					return nil, fmt.Errorf("scenario %s: synth-%d compile: %w", sc.Name, m.Synth, err)
				}
				if err := vm.Apply(prog, sc.Server.Exec); err != nil {
					return nil, fmt.Errorf("scenario %s: synth-%d: %w", sc.Name, m.Synth, err)
				}
				items = append(items, item{id: req.ID, prog: prog, outputs: []string{"out"}})
			default:
				rep.Skipped++
			}
		}
		if len(items) == 0 {
			continue
		}

		sched, err := runtime.NewScheduler(cfg, sp.Streams)
		if err != nil {
			return nil, err
		}
		for _, it := range items {
			var setup func(*interp.Program) error
			if m := sc.Mix[tr.Requests[it.id].Mix]; m.Workload != "" {
				b, _ := workloads.Get(m.Workload)
				setup = b.Setup
			}
			sched.Submit(runtime.Request{
				Label:   fmt.Sprintf("w%03d-r%06d", w, it.id),
				Program: it.prog,
				Setup:   setup,
			})
		}
		res, err := sched.Run()
		if err != nil {
			return nil, fmt.Errorf("scenario %s: window %d: %w", sc.Name, w, err)
		}
		rep.Windows = append(rep.Windows, res.Stats)

		for _, it := range items {
			outs := make(map[string][]float64, len(it.outputs))
			for _, name := range it.outputs {
				data, err := it.prog.ArrayData(name)
				if err != nil {
					return nil, fmt.Errorf("scenario %s: request %d output %s: %w", sc.Name, it.id, name, err)
				}
				outs[name] = append([]float64(nil), data...)
			}
			rep.Outputs[it.id] = outs
		}
	}

	if rep.StatsJSON, err = json.Marshal(rep.Windows); err != nil {
		return nil, err
	}
	return rep, nil
}

// VerifyScheduler replays the scenario twice on the raw scheduler and
// demands bit-identical window stats and per-request outputs.
func VerifyScheduler(sc *Scenario, seed int64) (*SchedReplay, error) {
	first, err := ReplayScheduler(sc, seed)
	if err != nil {
		return nil, err
	}
	second, err := ReplayScheduler(sc, seed)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: second scheduler replay: %w", sc.Name, err)
	}
	if !bytes.Equal(first.StatsJSON, second.StatsJSON) {
		return nil, fmt.Errorf("scenario %s: scheduler replay divergence: window stats differ for seed %d", sc.Name, seed)
	}
	for id, outs := range first.Outputs {
		other, ok := second.Outputs[id]
		if !ok {
			return nil, fmt.Errorf("scenario %s: scheduler replay divergence: request %d missing from second replay", sc.Name, id)
		}
		for name, data := range outs {
			got := other[name]
			if len(got) != len(data) {
				return nil, fmt.Errorf("scenario %s: scheduler replay divergence: request %d output %s length", sc.Name, id, name)
			}
			for i := range data {
				if data[i] != got[i] {
					return nil, fmt.Errorf("scenario %s: scheduler replay divergence: request %d output %s[%d]", sc.Name, id, name, i)
				}
			}
		}
	}
	return first, nil
}
