package scenario

import (
	"fmt"
	"math"
	"time"
)

// Request is one concrete arrival in an expanded trace.
type Request struct {
	// ID is the global submission index; the replayer submits requests in
	// ID order, so it doubles as the server label order.
	ID int `json:"id"`
	// Window is the dispatch window the request arrives in.
	Window int `json:"window"`
	// Arrival is the virtual arrival offset from the start of the run.
	Arrival time.Duration `json:"arrival_ns"`
	// Mix indexes the scenario mix entry that shaped the request.
	Mix int `json:"mix"`
	// Deadline is the per-request deadline (0 = none).
	Deadline time.Duration `json:"deadline_ns,omitempty"`
}

// Trace is the deterministic expansion of (scenario, seed): the full
// arrival schedule the replayer executes. Same scenario + same seed →
// byte-identical trace.
type Trace struct {
	Scenario *Scenario     `json:"scenario"`
	Seed     int64         `json:"seed"`
	Window   time.Duration `json:"window_ns"`
	Requests []Request     `json:"requests"`
}

// PRNG streams. Each sampled quantity draws from its own stream so adding
// samples to one never perturbs another — the same property the fault
// injector relies on.
const (
	streamArrivals = iota + 1
	streamMix
	streamDeadlineGate
	streamDeadlineValue
)

// unit maps (seed, stream, n) to a uniform value in [0, 1) with the same
// splitmix64-style finalizer the fault injector uses. No mutable state:
// the Nth draw of a stream is a pure function of its inputs.
func unit(seed int64, stream, n int64) float64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(stream)*0xD1B54A32D192ED03 + uint64(n)*0x8CB92BA72F3D8DD7
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(uint64(1)<<53)
}

// poissonDraw inverts the Poisson CDF at a uniform sample. Rates here are
// small (≤ MaxRatePerWindow), so the linear walk is fine; the count is
// capped at 4·lambda+16 to bound pathological tails.
func poissonDraw(u, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	cap := int(4*lambda) + 16
	p := math.Exp(-lambda)
	cdf := p
	for k := 0; k < cap; k++ {
		if u < cdf {
			return k
		}
		p *= lambda / float64(k+1)
		cdf += p
	}
	return cap
}

// Generate expands the scenario into a concrete trace. It fails only when
// the expansion exceeds MaxRequests (Validate bounds make this rare but a
// fuzzer can still aim for it).
func (s *Scenario) Generate(seed int64) (*Trace, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	counts := s.arrivalCounts(seed)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total > MaxRequests {
		return nil, fmt.Errorf("scenario %s: trace of %d requests exceeds the %d cap", s.Name, total, MaxRequests)
	}

	win := s.windowDur()
	tr := &Trace{Scenario: s, Seed: seed, Window: win, Requests: make([]Request, 0, total)}
	weights := make([]float64, len(s.Mix))
	var weightSum float64
	for i, m := range s.Mix {
		w := m.Weight
		if w == 0 {
			w = 1
		}
		weights[i] = w
		weightSum += w
	}

	id := 0
	for w, count := range counts {
		for i := 0; i < count; i++ {
			// Spread arrivals across the window at deterministic fractions.
			frac := float64(i+1) / float64(count+1)
			req := Request{
				ID:      id,
				Window:  w,
				Arrival: time.Duration(w)*win + time.Duration(frac*float64(win)),
				Mix:     pickMix(weights, weightSum, unit(seed, streamMix, int64(id))),
			}
			req.Deadline = s.sampleDeadline(seed, int64(id), win)
			tr.Requests = append(tr.Requests, req)
			id++
		}
	}
	return tr, nil
}

// arrivalCounts returns the number of arrivals per window.
func (s *Scenario) arrivalCounts(seed int64) []int {
	a := s.Arrival
	counts := make([]int, s.Windows)
	switch a.Process {
	case Steady:
		for w := range counts {
			counts[w] = steadyCount(a.Rate, w)
		}
	case Poisson:
		for w := range counts {
			counts[w] = poissonDraw(unit(seed, streamArrivals, int64(w)), a.Rate)
		}
	case Burst:
		for w := range counts {
			counts[w] = steadyCount(a.Rate, w)
			if a.Period > 0 && (w+1)%a.Period == 0 {
				counts[w] += a.Burst
			}
		}
	case Diurnal:
		peak := a.Peak
		if peak == 0 {
			peak = 3
		}
		for w := range counts {
			shape := math.Sin(math.Pi * float64(w) / float64(s.Windows))
			lambda := a.Rate * (1 + (peak-1)*shape*shape)
			counts[w] = poissonDraw(unit(seed, streamArrivals, int64(w)), lambda)
		}
	case Closed:
		// Closed loop under the replay service model: one batch of up to
		// MaxBatch requests is served per window, and each client submits
		// its next request in the window after its previous one was
		// answered. backlog_w requests are pending at window start;
		// arrivals are the clients not currently waiting.
		sp := s.server()
		backlog := 0
		for w := range counts {
			arrivals := a.Clients - backlog
			if arrivals < 0 {
				arrivals = 0
			}
			counts[w] = arrivals
			backlog += arrivals
			served := sp.MaxBatch
			if served > backlog {
				served = backlog
			}
			backlog -= served
		}
	}
	return counts
}

// steadyCount spreads a fractional per-window rate over the run:
// floor(rate·(w+1)) − floor(rate·w), so the cumulative count tracks
// rate·windows exactly.
func steadyCount(rate float64, w int) int {
	return int(rate*float64(w+1)) - int(rate*float64(w))
}

// pickMix maps a uniform sample onto a weighted mix index.
func pickMix(weights []float64, sum, u float64) int {
	target := u * sum
	for i, w := range weights {
		target -= w
		if target < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// sampleDeadline draws one request's deadline from the scenario
// distribution (0 when the request carries none).
func (s *Scenario) sampleDeadline(seed, id int64, win time.Duration) time.Duration {
	d := s.Deadline
	switch d.Dist {
	case "", "none":
		return 0
	}
	frac := d.Fraction
	if frac == 0 {
		frac = 1
	}
	if unit(seed, streamDeadlineGate, id) >= frac {
		return 0
	}
	windows := d.MinWindows
	if d.Dist == "uniform" {
		windows += unit(seed, streamDeadlineValue, id) * (d.MaxWindows - d.MinWindows)
	}
	return time.Duration(windows * float64(win))
}
