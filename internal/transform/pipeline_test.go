package transform

import (
	"strings"
	"testing"

	"comp/internal/minic"
)

func TestPipelinedReorderEquivalence(t *testing.T) {
	base := runFile(t, parse(t, gatherCandidate))

	f := parse(t, gatherCandidate)
	loop := findOffload(t, f)
	n, gathers, err := ReorderArraysPipelined(f, loop, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || len(gathers) != 1 {
		t.Fatalf("pipelined reorder: n=%d gathers=%d, want 1/1", n, len(gathers))
	}
	if gathers[0].Src != "a" || !strings.HasPrefix(gathers[0].Perm, "__a_r") {
		t.Fatalf("gather = %+v", gathers[0])
	}
	if err := Stream(f, loop, StreamOptions{Blocks: 8, ReduceMemory: true, Gathers: gathers}); err != nil {
		t.Fatal(err)
	}
	piped := runFile(t, f)
	assertSame(t, arrayOf(t, base, "c"), arrayOf(t, piped, "c"), "c")
}

// computeHeavyGather has enough kernel work per block that the gather of
// block i+1 hides completely behind the computation of block i — the
// regime the paper's pipelined-regularization claim ("the only extra
// overhead is the time taken to regularize the first data block") assumes.
const computeHeavyGather = `
float a[65536];
int idx[65536];
float c[65536];
int n;
int main(void) {
    int i;
    n = 65536;
    for (i = 0; i < n; i++) {
        a[i] = i * 0.25;
        idx[i] = (i * 7919) % n;
    }
    #pragma offload target(mic:0) in(a, idx : length(n)) out(c : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        float v = a[idx[i]];
        c[i] = exp(log(sqrt(v + 2.0) + 1.0)) * 3.0 + pow(v + 1.0, 0.5) + exp(-v * 0.001) + log(v * v + 1.5);
    }
    return 0;
}
`

func TestPipelinedGatherOverlapsCompute(t *testing.T) {
	// The pipelined version must not be slower than upfront gathering,
	// and the generated source must gather inside the block loop.
	f1 := parse(t, computeHeavyGather)
	l1 := findOffload(t, f1)
	if _, err := ReorderArrays(f1, l1, nil); err != nil {
		t.Fatal(err)
	}
	if err := Stream(f1, l1, StreamOptions{Blocks: 8, ReduceMemory: true}); err != nil {
		t.Fatal(err)
	}
	upfront := runFile(t, f1)

	f2 := parse(t, computeHeavyGather)
	l2 := findOffload(t, f2)
	_, gathers, err := ReorderArraysPipelined(f2, l2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Stream(f2, l2, StreamOptions{Blocks: 8, ReduceMemory: true, Gathers: gathers}); err != nil {
		t.Fatal(err)
	}
	out := minic.Print(f2)
	// The gather loop must appear inside the parity bodies (after the
	// block-count check), not before the streamed loop.
	if !strings.Contains(out, "__gv") {
		t.Fatalf("no per-block gather in generated source:\n%s", out)
	}
	piped := runFile(t, f2)
	assertSame(t, arrayOf(t, upfront, "c"), arrayOf(t, piped, "c"), "c")
	// Paper: "the only extra overhead caused by regularization is the time
	// taken to regularize the first data block" — pipelined must beat or
	// match the upfront variant.
	slack := float64(piped.Stats.Time) / float64(upfront.Stats.Time)
	if slack > 1.02 {
		t.Fatalf("pipelined %v slower than upfront %v", piped.Stats.Time, upfront.Stats.Time)
	}
	t.Logf("upfront %v pipelined %v", upfront.Stats.Time, piped.Stats.Time)
}

func TestPipelinedReorderDeclinesWrites(t *testing.T) {
	src := `
float a[4096];
int idx[4096];
int n;
int main(void) {
    int i;
    n = 4096;
    #pragma offload target(mic:0) in(idx : length(n)) inout(a : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        a[idx[i]] = i * 2.0;
    }
    return 0;
}
`
	f := parse(t, src)
	n, gathers, err := ReorderArraysPipelined(f, findOffload(t, f), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || gathers != nil {
		t.Fatalf("pipelined reorder accepted a written irregular array: n=%d", n)
	}
}

func TestStreamRejectsUnknownGatherTarget(t *testing.T) {
	f := parse(t, streamCandidate)
	err := Stream(f, findOffload(t, f), StreamOptions{
		Blocks:  4,
		Gathers: []GatherInfo{{Perm: "ghost", Src: "x", Index: intLit(0), IndexVar: "i"}},
	})
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("err = %v, want unknown gather target", err)
	}
}

func TestUpfrontGathersFallback(t *testing.T) {
	base := runFile(t, parse(t, gatherCandidate))
	f := parse(t, gatherCandidate)
	loop := findOffload(t, f)
	_, gathers, err := ReorderArraysPipelined(f, loop, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Instead of streaming, materialize the gathers up front.
	info := mustAnalyze(t, f, loop)
	if err := UpfrontGathers(f, loop, gathers, info.Upper, nil); err != nil {
		t.Fatal(err)
	}
	res := runFile(t, f)
	assertSame(t, arrayOf(t, base, "c"), arrayOf(t, res, "c"), "c")
}
