package transform

import (
	"fmt"
	"testing"

	"comp/internal/sim/engine"
)

// Regression: the transfer-bound branch computes N* = (D−C)/K, which drops
// below 2 whenever D−C < 2K, while the sqrt(D/K) floor it is raised to can
// itself round to 1. The clamp must pin the result at 2 — one block has no
// pipeline to overlap.
func TestOptimalBlocksClampsTransferBoundEdge(t *testing.T) {
	cases := []struct{ d, c, k engine.Duration }{
		// D−C = 1 < 2K = 10; sqrt(D/K) = sqrt(2) ≈ 1.41 rounds to 1.
		{d: 10, c: 9, k: 5},
		// D−C = 0 exactly at the branch boundary (c < d keeps it
		// transfer-bound only when strictly below; take c just under d).
		{d: 100, c: 99, k: 60},
		// Compute-bound with sqrt(D/K) < 1.5.
		{d: 10, c: 20, k: 8},
	}
	for _, tc := range cases {
		got := OptimalBlocks(tc.d, tc.c, tc.k)
		if got < minBlocks {
			t.Errorf("OptimalBlocks(%d, %d, %d) = %d, below the minimum %d",
				tc.d, tc.c, tc.k, got, minBlocks)
		}
		if got > maxBlocks {
			t.Errorf("OptimalBlocks(%d, %d, %d) = %d, above the maximum %d",
				tc.d, tc.c, tc.k, got, maxBlocks)
		}
	}
}

func TestClampBlocks(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-3, minBlocks}, {0, minBlocks}, {1, minBlocks}, {2, 2},
		{17, 17}, {64, 64}, {65, maxBlocks}, {1000, maxBlocks},
	} {
		if got := clampBlocks(tc.in); got != tc.want {
			t.Errorf("clampBlocks(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// The degenerate-input guards must also respect the clamp range.
func TestOptimalBlocksDegenerateInputs(t *testing.T) {
	if got := OptimalBlocks(0, 100, 10); got != minBlocks {
		t.Errorf("OptimalBlocks(d=0) = %d, want %d", got, minBlocks)
	}
	if got := OptimalBlocks(100, 100, 0); got != maxBlocks {
		t.Errorf("OptimalBlocks(k=0) = %d, want %d", got, maxBlocks)
	}
}

func TestAutoTunerFindsLadderMinimum(t *testing.T) {
	tuner := &AutoTuner{}
	// Convex cost: minimum at 10.
	cost := func(blocks int) (engine.Duration, error) {
		d := blocks - 10
		return engine.Duration(1000 + d*d), nil
	}
	res, err := tuner.Tune("convex", 40, cost)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 10 {
		t.Errorf("Tune chose %d, want 10 (history %v)", res.Blocks, res.History)
	}
	if res.Probes > DefaultMaxProbes {
		t.Errorf("Tune spent %d probes, budget %d", res.Probes, DefaultMaxProbes)
	}
	if res.Cached {
		t.Error("first Tune reported Cached")
	}
}

func TestAutoTunerCachesPerKey(t *testing.T) {
	tuner := &AutoTuner{}
	calls := 0
	cost := func(blocks int) (engine.Duration, error) {
		calls++
		return engine.Duration(blocks), nil
	}
	first, err := tuner.Tune("k", 20, cost)
	if err != nil {
		t.Fatal(err)
	}
	callsAfterFirst := calls
	second, err := tuner.Tune("k", 20, cost)
	if err != nil {
		t.Fatal(err)
	}
	if calls != callsAfterFirst {
		t.Errorf("cached Tune measured again (%d -> %d calls)", callsAfterFirst, calls)
	}
	if !second.Cached || second.Probes != 0 {
		t.Errorf("cached result not marked: %+v", second)
	}
	if second.Blocks != first.Blocks {
		t.Errorf("cached Blocks %d != first %d", second.Blocks, first.Blocks)
	}
	// A different key measures afresh.
	if _, err := tuner.Tune("k2", 20, cost); err != nil {
		t.Fatal(err)
	}
	if calls == callsAfterFirst {
		t.Error("distinct key did not measure")
	}
}

func TestAutoTunerRespectsProbeBudget(t *testing.T) {
	tuner := &AutoTuner{MaxProbes: 2}
	calls := 0
	// Monotone decreasing: the climb would walk the whole ladder.
	cost := func(blocks int) (engine.Duration, error) {
		calls++
		return engine.Duration(1000 - blocks), nil
	}
	res, err := tuner.Tune("budget", 2, cost)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 || res.Probes != 2 {
		t.Errorf("spent %d measure calls / %d probes, budget 2", calls, res.Probes)
	}
	if res.Blocks == 0 {
		t.Error("no block count chosen within budget")
	}
}

func TestAutoTunerSeedOutsideLadder(t *testing.T) {
	tuner := &AutoTuner{}
	// Seed 64 (OptimalBlocks max) is above the top rung 50; the search must
	// start at 50 and still walk downhill to the true minimum at 40.
	cost := func(blocks int) (engine.Duration, error) {
		d := blocks - 40
		return engine.Duration(100 + d*d), nil
	}
	res, err := tuner.Tune("high-seed", 64, cost)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 40 {
		t.Errorf("Tune chose %d, want 40 (history %v)", res.Blocks, res.History)
	}
}

func TestAutoTunerPropagatesMeasureError(t *testing.T) {
	tuner := &AutoTuner{}
	boom := fmt.Errorf("probe failed")
	if _, err := tuner.Tune("err", 20, func(int) (engine.Duration, error) { return 0, boom }); err == nil {
		t.Fatal("measure error not propagated")
	}
}
