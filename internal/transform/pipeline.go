package transform

import (
	"fmt"

	"comp/internal/analysis"
	"comp/internal/minic"
)

// GatherInfo describes one deferred regularization gather: the permutation
// array that must be filled from the source array before each block of it
// transfers. Index is the original irregular subscript expressed in terms
// of IndexVar.
type GatherInfo struct {
	Perm     string
	Src      string
	Index    minic.Expr
	IndexVar string
}

// ReorderArraysPipelined is the §IV "pipelining regularization with data
// transfer and computation" variant of ReorderArrays: the permutation
// arrays are allocated up front but filled block-by-block inside the
// streamed loop, so the gather of block i+1 overlaps the computation of
// block i. Only unguarded read accesses qualify (a scatter-back epilogue
// would need the whole array finished).
//
// The loop body and offload clauses are rewritten exactly as ReorderArrays
// does; the returned GatherInfo list must be handed to Stream (via
// StreamOptions.Gathers), which emits the per-block gather loops. Without
// a subsequent successful Stream the permutation arrays are never filled,
// so callers must only commit this transformation when streaming follows
// (see the pass manager, which falls back to the upfront gather). names
// supplies fresh identifiers; nil uses a private sequence.
func ReorderArraysPipelined(f *minic.File, loop *minic.ForStmt, names *NameSeq) (int, []GatherInfo, error) {
	info, err := analysis.Analyze(loop, f)
	if err != nil {
		return 0, nil, err
	}
	var cands []analysis.Irregularity
	for _, c := range analysis.ReorderCandidates(info) {
		if c.Access.Write {
			continue // scatter-back cannot be pipelined blockwise
		}
		cands = append(cands, c)
	}
	if len(cands) == 0 {
		return 0, nil, nil
	}
	if lo, ok := analysis.ConstInt(info.Lower); !ok || lo != 0 {
		return 0, nil, fmt.Errorf("transform: pipelined reordering requires a zero lower bound")
	}
	off := OffloadPragma(loop)
	if off == nil {
		return 0, nil, fmt.Errorf("transform: pipelined reordering requires an offloaded loop")
	}

	type group struct {
		array string
		idx   minic.Expr
	}
	groups := map[string]*group{}
	var order []string
	for _, c := range cands {
		key := c.Access.Array + "[" + minic.ExprString(c.Access.Index) + "]"
		if groups[key] == nil {
			groups[key] = &group{array: c.Access.Array, idx: c.Access.Index}
			order = append(order, key)
		}
	}

	seq := seqOrNew(names)
	nExpr := info.Upper
	var prologue, epilogue []minic.Stmt
	var newGlobals []*minic.VarDecl
	var gathers []GatherInfo
	taken := map[string]bool{}

	for _, key := range order {
		g := groups[key]
		elem := globalElemType(f, g.array)
		if elem == nil {
			continue
		}
		permName := "__" + g.array + "_r"
		for declaredGlobal(f, permName) || taken[permName] {
			permName = seq.Fresh(g.array + "_r")
		}
		taken[permName] = true
		newGlobals = append(newGlobals, &minic.VarDecl{Name: permName, Type: &minic.Pointer{Elem: elem}})

		prologue = append(prologue, &minic.AssignStmt{
			Op:  "=",
			LHS: ident(permName),
			RHS: &minic.CallExpr{
				Fun:  ident("malloc"),
				Args: []minic.Expr{bin("*", paren(minic.CloneExpr(nExpr)), &minic.SizeofExpr{Of: elem})},
			},
		})
		epilogue = append(epilogue, &minic.ExprStmt{X: &minic.CallExpr{Fun: ident("free"), Args: []minic.Expr{ident(permName)}}})

		// Rewrite the body; defer the gather to the streaming pass.
		want := minic.ExprString(g.idx)
		arr := g.array
		minic.Substitute(loop.Body, func(e minic.Expr) minic.Expr {
			ie, ok := e.(*minic.IndexExpr)
			if !ok {
				return nil
			}
			id, ok := ie.X.(*minic.Ident)
			if !ok || id.Name != arr || minic.ExprString(ie.Index) != want {
				return nil
			}
			return index(permName, ident(info.IndexVar))
		})
		if off != nil {
			off.In = append(off.In, minic.TransferItem{Name: permName, Length: minic.CloneExpr(nExpr)})
		}
		gathers = append(gathers, GatherInfo{
			Perm:     permName,
			Src:      g.array,
			Index:    minic.CloneExpr(g.idx),
			IndexVar: info.IndexVar,
		})
	}
	if len(gathers) == 0 {
		return 0, nil, nil
	}
	addGlobals(f, newGlobals...)
	pruneUnusedItems(off, loop)
	if !replaceStmt(f, loop, append(append(prologue, loop), epilogue...)) {
		return 0, nil, fmt.Errorf("transform: loop not found in file")
	}
	return len(gathers), gathers, nil
}

// UpfrontGathers materializes deferred gathers as whole-array host loops
// before the given statement — the fallback when streaming (which would
// have pipelined them) does not apply after all. names supplies fresh
// identifiers; nil uses a private sequence.
func UpfrontGathers(f *minic.File, loop minic.Stmt, gathers []GatherInfo, n minic.Expr, names *NameSeq) error {
	seq := seqOrNew(names)
	var stmts []minic.Stmt
	for _, gi := range gathers {
		gv := seq.Fresh("gv")
		idx := cloneWithIndexVar(gi.Index, gi.IndexVar, gv)
		lp := forLoop(gv, intLit(0), minic.CloneExpr(n), nil,
			&minic.AssignStmt{Op: "=", LHS: index(gi.Perm, ident(gv)), RHS: index(gi.Src, idx)})
		lp.Init = declInt(gv, intLit(0))
		stmts = append(stmts, lp)
	}
	if !replaceStmt(f, loop, append(stmts, loop)) {
		return fmt.Errorf("transform: loop not found for upfront gathers")
	}
	return nil
}

// gatherBlock emits the host-side gather of one block:
//
//	for (gv = start; gv < start + len; gv++) { perm[gv] = src[idx(gv)]; }
func gatherBlock(g GatherInfo, gVar string, start minic.Expr, lenName string) minic.Stmt {
	idx := cloneWithIndexVar(g.Index, g.IndexVar, gVar)
	lo := paren(minic.CloneExpr(start))
	hi := bin("+", paren(minic.CloneExpr(start)), ident(lenName))
	body := &minic.AssignStmt{
		Op:  "=",
		LHS: index(g.Perm, ident(gVar)),
		RHS: index(g.Src, idx),
	}
	lp := forLoop(gVar, lo, hi, nil, body)
	lp.Init = declInt(gVar, lo)
	return lp
}
