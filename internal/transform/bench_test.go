package transform

import (
	"testing"

	"comp/internal/minic"
)

// BenchmarkStreamTransform measures one full streaming code generation.
func BenchmarkStreamTransform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := minic.Parse(streamCandidate)
		if err != nil {
			b.Fatal(err)
		}
		if err := minic.Check(f).Err(); err != nil {
			b.Fatal(err)
		}
		loops := FindOffloadLoops(f)
		if err := Stream(f, loops[0], StreamOptions{Blocks: 20, ReduceMemory: true}); err != nil {
			b.Fatal(err)
		}
	}
}
