package transform

import (
	"fmt"

	"comp/internal/analysis"
	"comp/internal/minic"
)

// StreamOptions configures the data-streaming transformation.
type StreamOptions struct {
	// Blocks is the block count N; 0 selects DefaultBlocks. Use
	// OptimalBlocks with profiled D/C/K to apply the §III-B model.
	Blocks int
	// ReduceMemory selects the Figure 5(c) variant: two device blocks per
	// streamed input and one per output, instead of whole-array device
	// buffers (Figure 5(b)).
	ReduceMemory bool
	// Persistent marks the generated kernels persist(1) so the runtime
	// reuses MIC threads instead of relaunching per block (§III-C).
	Persistent bool
	// Gathers carries deferred regularization gathers (§IV "pipelining
	// regularization"): before each block of the named permutation array
	// transfers, the generated code fills that block on the host, so the
	// gather of block i+1 overlaps the computation of block i.
	Gathers []GatherInfo
	// Names supplies fresh identifiers; nil uses a private sequence (safe
	// only when Stream is the sole transform applied to the file).
	Names *NameSeq
}

type streamRole int

const (
	roleIn streamRole = iota
	roleOut
	roleInOut
)

type streamArray struct {
	name   string
	role   streamRole
	length minic.Expr // full-array element count from the pragma
	// streamed is false for arrays whose accesses are all loop-invariant
	// (stride 0); those transfer once, whole, before the loop.
	streamed bool
	// device buffer names (memory-reduction variant).
	buf1, buf2, outBuf string
	elem               minic.Type
}

func (a *streamArray) reads() bool  { return a.role == roleIn || a.role == roleInOut }
func (a *streamArray) writes() bool { return a.role == roleOut || a.role == roleInOut }

// curBuf returns the buffer the kernel of the given parity uses.
func (a *streamArray) curBuf(parity int) string {
	if !a.reads() {
		return a.outBuf
	}
	if parity == 0 {
		return a.buf1
	}
	return a.buf2
}

// nextBuf returns the buffer the prefetch of the given parity fills.
func (a *streamArray) nextBuf(parity int) string {
	if parity == 0 {
		return a.buf2
	}
	return a.buf1
}

// Stream rewrites one offloaded parallel loop into the pipelined,
// double-buffered form of Figure 5, replacing the loop in f. The loop
// must pass the §III-A legality check (all subscripts i with unit or zero
// stride and constant zero offset, unit step).
func Stream(f *minic.File, loop *minic.ForStmt, opt StreamOptions) error {
	off := OffloadPragma(loop)
	if off == nil {
		return fmt.Errorf("transform: loop at %s has no offload pragma", loop.Pos())
	}
	omp := OmpPragma(loop)
	if omp == nil {
		return fmt.Errorf("transform: loop at %s is not a parallel loop", loop.Pos())
	}
	info, err := analysis.Analyze(loop, f)
	if err != nil {
		return fmt.Errorf("transform: %v", err)
	}
	if !info.StreamLegal() {
		return fmt.Errorf("transform: loop at %s fails the streaming legality check", loop.Pos())
	}
	if info.Step != 1 {
		return fmt.Errorf("transform: streaming requires unit step, got %d", info.Step)
	}
	for _, a := range info.Accesses {
		if a.Stride == 1 {
			if v, ok := analysis.ConstInt(a.Offset); !ok || v != 0 {
				return fmt.Errorf("transform: access %s has a nonzero offset; halo streaming is not supported", a)
			}
		}
	}

	arrays, err := classifyStreamArrays(info, off)
	if err != nil {
		return err
	}
	nblocks := opt.Blocks
	if nblocks <= 0 {
		nblocks = DefaultBlocks
	}

	g := &streamGen{
		f: f, loop: loop, info: info, off: off, omp: omp,
		opt: opt, arrays: arrays, nblocks: nblocks,
		seq: seqOrNew(opt.Names),
	}
	for _, gi := range opt.Gathers {
		found := false
		for _, sa := range arrays {
			if sa.name == gi.Perm && sa.streamed && sa.reads() {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("transform: pipelined gather targets %s, which is not a streamed input", gi.Perm)
		}
	}
	return g.generate()
}

// classifyStreamArrays pairs pragma items with the loop's access summary.
func classifyStreamArrays(info *analysis.LoopInfo, off *minic.Pragma) ([]*streamArray, error) {
	strideOf := map[string]int64{}
	for _, a := range info.Accesses {
		prev, seen := strideOf[a.Array]
		if seen && prev != a.Stride {
			return nil, fmt.Errorf("transform: array %s mixes strides %d and %d", a.Array, prev, a.Stride)
		}
		strideOf[a.Array] = a.Stride
	}
	var out []*streamArray
	addItems := func(items []minic.TransferItem, role streamRole) error {
		for _, it := range items {
			if it.Length == nil {
				continue // scalar item; reattached to the alloc pragma
			}
			if it.Into != "" || it.Start != nil {
				return fmt.Errorf("transform: item %s already uses sections; loop appears transformed", it.Name)
			}
			stride, accessed := strideOf[it.Name]
			sa := &streamArray{
				name:     it.Name,
				role:     role,
				length:   it.Length,
				streamed: accessed && stride == 1,
			}
			out = append(out, sa)
			delete(strideOf, it.Name)
		}
		return nil
	}
	if err := addItems(off.In, roleIn); err != nil {
		return nil, err
	}
	if err := addItems(off.Out, roleOut); err != nil {
		return nil, err
	}
	if err := addItems(off.InOut, roleInOut); err != nil {
		return nil, err
	}
	for name := range strideOf {
		return nil, fmt.Errorf("transform: array %s is accessed but missing from the offload clauses", name)
	}
	return out, nil
}

type streamGen struct {
	f       *minic.File
	loop    *minic.ForStmt
	info    *analysis.LoopInfo
	off     *minic.Pragma
	omp     *minic.Pragma
	opt     StreamOptions
	arrays  []*streamArray
	nblocks int
	seq     *NameSeq

	// generated names
	nVar, bsVar, baseVar, blkVar string
	sig                          [2]string
	ksig                         string
}

func (g *streamGen) generate() error {
	g.nVar = g.seq.Fresh("n")
	g.bsVar = g.seq.Fresh("bs")
	g.baseVar = g.seq.Fresh("base")
	g.blkVar = g.seq.Fresh("blk")
	g.sig[0] = g.uniqueGlobal("sig_a")
	g.sig[1] = g.uniqueGlobal("sig_b")

	var newGlobals []*minic.VarDecl
	newGlobals = append(newGlobals,
		&minic.VarDecl{Name: g.sig[0], Type: minic.IntType},
		&minic.VarDecl{Name: g.sig[1], Type: minic.IntType},
	)
	if len(g.opt.Gathers) > 0 {
		g.ksig = g.uniqueGlobal("ksig")
		newGlobals = append(newGlobals, &minic.VarDecl{Name: g.ksig, Type: minic.IntType})
	}
	for _, sa := range g.arrays {
		sa.elem = globalElemType(g.f, sa.name)
		if sa.elem == nil {
			return fmt.Errorf("transform: cannot determine element type of %s", sa.name)
		}
		if !g.opt.ReduceMemory || !sa.streamed {
			continue
		}
		ptr := &minic.Pointer{Elem: sa.elem}
		if sa.reads() {
			sa.buf1 = g.uniqueGlobal(sa.name + "_s1")
			sa.buf2 = g.uniqueGlobal(sa.name + "_s2")
			newGlobals = append(newGlobals,
				&minic.VarDecl{Name: sa.buf1, Type: ptr},
				&minic.VarDecl{Name: sa.buf2, Type: ptr},
			)
		} else {
			sa.outBuf = g.uniqueGlobal(sa.name + "_o")
			newGlobals = append(newGlobals, &minic.VarDecl{Name: sa.outBuf, Type: ptr})
		}
	}
	addGlobals(g.f, newGlobals...)

	var stmts []minic.Stmt
	// int __n = (hi) - (lo); int __base = lo; int __bs = (__n + NB - 1)/NB;
	stmts = append(stmts,
		declInt(g.nVar, bin("-", paren(minic.CloneExpr(g.info.Upper)), paren(minic.CloneExpr(g.info.Lower)))),
		declInt(g.baseVar, paren(minic.CloneExpr(g.info.Lower))),
		declInt(g.bsVar, bin("/", paren(bin("+", ident(g.nVar), intLit(int64(g.nblocks-1)))), intLit(int64(g.nblocks)))),
	)
	stmts = append(stmts, g.allocPragma())
	stmts = append(stmts, g.firstTransfer()...)
	stmts = append(stmts, g.blockLoop())
	stmts = append(stmts, g.freePragma())

	if !replaceStmt(g.f, g.loop, []minic.Stmt{block(stmts...)}) {
		return fmt.Errorf("transform: loop not found in file")
	}
	return nil
}

func (g *streamGen) uniqueGlobal(base string) string {
	name := "__" + base
	for declaredGlobal(g.f, name) {
		name = g.seq.Fresh(base)
	}
	return name
}

// allocPragma performs the hoisted one-shot allocation (§III-A "memory
// allocation and deallocation"): device buffers for every streamed array,
// full transfers for loop-invariant arrays, and by-value scalar copies.
func (g *streamGen) allocPragma() minic.Stmt {
	p := &minic.Pragma{Kind: minic.PragmaOffloadTransfer, Target: g.off.Target}
	one, zero := intLit(1), intLit(0)
	for _, sa := range g.arrays {
		if !sa.streamed {
			// Loop-invariant array: transfer whole, keep resident.
			p.In = append(p.In, minic.TransferItem{
				Name: sa.name, Length: minic.CloneExpr(sa.length),
				AllocIf: one, FreeIf: zero,
			})
			continue
		}
		if g.opt.ReduceMemory {
			if sa.reads() {
				for _, b := range []string{sa.buf1, sa.buf2} {
					p.NoCopy = append(p.NoCopy, minic.TransferItem{
						Name: b, Length: ident(g.bsVar), AllocIf: one, FreeIf: zero,
					})
				}
			} else {
				p.NoCopy = append(p.NoCopy, minic.TransferItem{
					Name: sa.outBuf, Length: ident(g.bsVar), AllocIf: one, FreeIf: zero,
				})
			}
			continue
		}
		// Figure 5(b): allocate the entire array on the device once.
		p.NoCopy = append(p.NoCopy, minic.TransferItem{
			Name: sa.name, Length: minic.CloneExpr(sa.length), AllocIf: one, FreeIf: zero,
		})
	}
	// Scalars are copied at the allocation site (§III-A).
	for _, s := range g.info.ScalarReads {
		if declaredGlobal(g.f, s) {
			p.In = append(p.In, minic.TransferItem{Name: s})
		}
	}
	return &minic.PragmaStmt{P: p}
}

// sectionIn builds the in item moving block [base+off, base+off+len) of a
// streamed input.
func (g *streamGen) sectionIn(sa *streamArray, offExpr minic.Expr, lenName, buf string) minic.TransferItem {
	it := minic.TransferItem{
		Name:    sa.name,
		Start:   bin("+", ident(g.baseVar), paren(minic.CloneExpr(offExpr))),
		Length:  ident(lenName),
		AllocIf: intLit(0),
		FreeIf:  intLit(0),
	}
	if buf != "" {
		it.Into = buf
		it.IntoStart = intLit(0)
	}
	return it
}

// firstTransfer moves block 0 before entering the loop, gathering any
// pipelined permutation blocks first.
func (g *streamGen) firstTransfer() []minic.Stmt {
	len0 := g.seq.Fresh("len")
	stmts := clampLen(len0, g.bsVar, g.nVar, intLit(0))
	if len(g.opt.Gathers) > 0 {
		// Prime the pipeline: blocks 0 and 1 are gathered up front; block
		// i+2 is gathered while kernel i computes ("the only extra
		// overhead is the time taken to regularize the first data block").
		stmts = append(stmts, g.gatherStmts(ident(g.baseVar), len0)...)
		len1 := g.seq.Fresh("len")
		stmts = append(stmts, clampLen(len1, g.bsVar, g.nVar, ident(g.bsVar))...)
		gatherOne := g.gatherStmts(bin("+", ident(g.baseVar), ident(g.bsVar)), len1)
		stmts = append(stmts, &minic.IfStmt{
			Cond: bin(">", ident(len1), intLit(0)),
			Then: block(gatherOne...),
		})
	}
	p := &minic.Pragma{Kind: minic.PragmaOffloadTransfer, Target: g.off.Target, Signal: g.sig[0]}
	for _, sa := range g.arrays {
		if !sa.streamed || !sa.reads() {
			continue
		}
		buf := ""
		if g.opt.ReduceMemory {
			buf = sa.buf1
		}
		p.In = append(p.In, g.sectionIn(sa, intLit(0), len0, buf))
	}
	if len(p.In) == 0 {
		// Output-only loop: nothing to prefetch, but the kernels still
		// wait on the tag; fire it by transferring zero inputs.
		return stmts
	}
	return append(stmts, &minic.PragmaStmt{P: p})
}

// gatherStmts emits the pipelined-regularization gathers for one block
// [start, start+len).
func (g *streamGen) gatherStmts(start minic.Expr, lenName string) []minic.Stmt {
	var out []minic.Stmt
	for _, gi := range g.opt.Gathers {
		gv := g.seq.Fresh("gv")
		out = append(out, gatherBlock(gi, gv, start, lenName))
	}
	return out
}

// hasStreamedInputs reports whether any streamed array is read.
func (g *streamGen) hasStreamedInputs() bool {
	for _, sa := range g.arrays {
		if sa.streamed && sa.reads() {
			return true
		}
	}
	return false
}

// blockLoop builds the two-level pipelined loop with even/odd parity
// bodies (Figure 5(c)).
func (g *streamGen) blockLoop() minic.Stmt {
	offVar := g.seq.Fresh("off")
	lenVar := g.seq.Fresh("len")
	var body []minic.Stmt
	body = append(body, declInt(offVar, bin("*", ident(g.blkVar), ident(g.bsVar))))
	body = append(body, clampLen(lenVar, g.bsVar, g.nVar, ident(offVar))...)
	even := g.parityBody(0, offVar, lenVar)
	odd := g.parityBody(1, offVar, lenVar)
	body = append(body, &minic.IfStmt{
		Cond: bin(">", ident(lenVar), intLit(0)),
		Then: block(&minic.IfStmt{
			Cond: bin("==", bin("%", ident(g.blkVar), intLit(2)), intLit(0)),
			Then: block(even...),
			Else: block(odd...),
		}),
	})
	lp := forLoop(g.blkVar, intLit(0), intLit(int64(g.nblocks)), nil, body...)
	lp.Init = declInt(g.blkVar, intLit(0))
	return lp
}

// parityBody emits the prefetch of block blk+1 and the kernel of block blk
// for one parity.
func (g *streamGen) parityBody(parity int, offVar, lenVar string) []minic.Stmt {
	var stmts []minic.Stmt
	// Prefetch next block (asynchronously) into the other buffer.
	if g.hasStreamedInputs() {
		noff := g.seq.Fresh("noff")
		nlen := g.seq.Fresh("nlen")
		pre := []minic.Stmt{
			declInt(noff, bin("*", paren(bin("+", ident(g.blkVar), intLit(1))), ident(g.bsVar))),
		}
		pre = append(pre, clampLen(nlen, g.bsVar, g.nVar, ident(noff))...)
		tp := &minic.Pragma{Kind: minic.PragmaOffloadTransfer, Target: g.off.Target, Signal: g.sig[1-parity]}
		for _, sa := range g.arrays {
			if !sa.streamed || !sa.reads() {
				continue
			}
			buf := ""
			if g.opt.ReduceMemory {
				buf = sa.nextBuf(parity)
			}
			tp.In = append(tp.In, g.sectionIn(sa, ident(noff), nlen, buf))
		}
		pre = append(pre, &minic.IfStmt{
			Cond: bin(">", ident(nlen), intLit(0)),
			Then: block(&minic.PragmaStmt{P: tp}),
		})
		stmts = append(stmts, &minic.IfStmt{
			Cond: bin("<", bin("+", ident(g.blkVar), intLit(1)), intLit(int64(g.nblocks))),
			Then: block(pre...),
		})
	}
	if len(g.opt.Gathers) == 0 {
		stmts = append(stmts, g.kernel(parity, offVar, lenVar))
		return stmts
	}
	// Pipelined regularization: launch the kernel asynchronously, gather
	// block i+2 on the host while it computes, then wait.
	kstmt := g.kernel(parity, offVar, lenVar)
	markKernelAsync(kstmt, g.ksig)
	stmts = append(stmts, kstmt)
	g2off := g.seq.Fresh("goff")
	g2len := g.seq.Fresh("glen")
	gath := []minic.Stmt{
		declInt(g2off, bin("*", paren(bin("+", ident(g.blkVar), intLit(2))), ident(g.bsVar))),
	}
	gath = append(gath, clampLen(g2len, g.bsVar, g.nVar, ident(g2off))...)
	gatherTwo := g.gatherStmts(bin("+", ident(g.baseVar), ident(g2off)), g2len)
	gath = append(gath, &minic.IfStmt{
		Cond: bin(">", ident(g2len), intLit(0)),
		Then: block(gatherTwo...),
	})
	stmts = append(stmts, &minic.IfStmt{
		Cond: bin("<", bin("+", ident(g.blkVar), intLit(2)), intLit(int64(g.nblocks))),
		Then: block(gath...),
	})
	stmts = append(stmts, &minic.PragmaStmt{P: &minic.Pragma{
		Kind:   minic.PragmaOffloadWait,
		Target: g.off.Target,
		Wait:   g.ksig,
	}})
	return stmts
}

// markKernelAsync turns the generated block kernel into an asynchronous
// offload signalling the given tag.
func markKernelAsync(st minic.Stmt, tag string) {
	fs, ok := st.(*minic.ForStmt)
	if !ok {
		return
	}
	for _, p := range fs.Pragmas {
		if p.Kind == minic.PragmaOffload {
			p.Signal = tag
		}
	}
}

// kernel emits the per-block offload and its rewritten loop.
func (g *streamGen) kernel(parity int, offVar, lenVar string) minic.Stmt {
	kp := &minic.Pragma{Kind: minic.PragmaOffload, Target: g.off.Target, Persist: g.opt.Persistent}
	if g.hasStreamedInputs() {
		kp.Wait = g.sig[parity]
	}
	for _, sa := range g.arrays {
		if !sa.streamed || !sa.writes() {
			continue
		}
		// Stream the block's output back, synchronously.
		it := minic.TransferItem{
			Length:  ident(lenVar),
			AllocIf: intLit(0),
			FreeIf:  intLit(0),
		}
		if g.opt.ReduceMemory {
			it.Name = sa.curBuf(parity)
			it.Start = intLit(0)
			it.Into = sa.name
			it.IntoStart = bin("+", ident(g.baseVar), ident(offVar))
		} else {
			it.Name = sa.name
			it.Start = bin("+", ident(g.baseVar), ident(offVar))
		}
		kp.Out = append(kp.Out, it)
	}
	ompClone := minic.ClonePragma(g.omp)
	pragmas := []*minic.Pragma{kp, ompClone}

	ivar := g.info.IndexVar
	if !g.opt.ReduceMemory {
		// Figure 5(b): device holds whole arrays, so the body is unchanged;
		// only the bounds narrow to this block.
		lo := bin("+", ident(g.baseVar), ident(offVar))
		hi := bin("+", bin("+", ident(g.baseVar), ident(offVar)), ident(lenVar))
		inner := forLoop(ivar, lo, hi, pragmas, minic.CloneBlock(g.loop.Body).Stmts...)
		inner.Init = g.remakeInit(lo)
		return inner
	}
	// Figure 5(c): rewrite accesses onto the block buffers and rebase the
	// index variable.
	j := g.seq.Fresh("j")
	bodyClone := minic.CloneBlock(g.loop.Body)
	bufOf := map[string]string{}
	for _, sa := range g.arrays {
		if sa.streamed {
			bufOf[sa.name] = sa.curBuf(parity)
		}
	}
	minic.Substitute(bodyClone, func(e minic.Expr) minic.Expr {
		switch x := e.(type) {
		case *minic.IndexExpr:
			if id, ok := x.X.(*minic.Ident); ok {
				if buf, streamed := bufOf[id.Name]; streamed {
					return index(buf, ident(j))
				}
			}
		case *minic.Ident:
			if x.Name == ivar {
				return paren(bin("+", bin("+", ident(g.baseVar), ident(offVar)), ident(j)))
			}
		}
		return nil
	})
	inner := forLoop(j, intLit(0), ident(lenVar), pragmas, bodyClone.Stmts...)
	inner.Init = &minic.DeclStmt{Decl: &minic.VarDecl{Name: j, Type: minic.IntType, Init: intLit(0)}}
	return inner
}

// remakeInit rebuilds the loop init in the original style (declaration vs
// assignment) with a new lower bound.
func (g *streamGen) remakeInit(lo minic.Expr) minic.Stmt {
	if ds, ok := g.loop.Init.(*minic.DeclStmt); ok {
		return &minic.DeclStmt{Decl: &minic.VarDecl{Name: ds.Decl.Name, Type: ds.Decl.Type, Init: lo}}
	}
	return &minic.AssignStmt{Op: "=", LHS: ident(g.info.IndexVar), RHS: lo}
}

// freePragma releases every hoisted device buffer and copies reduction
// scalars back.
func (g *streamGen) freePragma() minic.Stmt {
	p := &minic.Pragma{Kind: minic.PragmaOffloadTransfer, Target: g.off.Target}
	zero, one := intLit(0), intLit(1)
	addFree := func(name string) {
		p.NoCopy = append(p.NoCopy, minic.TransferItem{
			Name: name, Length: intLit(1), AllocIf: zero, FreeIf: one,
		})
	}
	for _, sa := range g.arrays {
		if !sa.streamed {
			addFree(sa.name)
			continue
		}
		if g.opt.ReduceMemory {
			if sa.reads() {
				addFree(sa.buf1)
				addFree(sa.buf2)
			} else {
				addFree(sa.outBuf)
			}
		} else {
			addFree(sa.name)
		}
	}
	for _, r := range g.omp.Reductions {
		if declaredGlobal(g.f, r) {
			p.Out = append(p.Out, minic.TransferItem{Name: r})
		}
	}
	return &minic.PragmaStmt{P: p}
}
