package transform

import (
	"fmt"

	"comp/internal/analysis"
	"comp/internal/minic"
)

// ReorderArrays implements §IV "reordering arrays": for each unguarded
// gathered (A[B[i]]) or strided (A[c*i], c>1) access in a parallel loop, a
// permutation array sorted by access order is built on the host before the
// loop, and the loop reads the permutation array contiguously instead.
// Written irregular arrays are scattered back after the loop. The loop
// becomes regular, enabling data streaming and vectorization.
//
// It returns the number of accesses regularized (0 if none applied).
// names supplies fresh identifiers; nil uses a private sequence.
func ReorderArrays(f *minic.File, loop *minic.ForStmt, names *NameSeq) (int, error) {
	info, err := analysis.Analyze(loop, f)
	if err != nil {
		return 0, err
	}
	cands := analysis.ReorderCandidates(info)
	// The gather prologue evaluates each candidate's index with the loop
	// variable substituted; every OTHER variable in the index must be
	// loop-invariant or the hoisted read sees a different value than the
	// loop body did. This matters for wrapper loops produced by SplitLoop,
	// whose bodies assign the inner loops' induction variables.
	mutated := assignedScalars(loop.Body)
	kept := cands[:0]
	for _, c := range cands {
		if !referencesAny(c.Access.Index, mutated, info.IndexVar) {
			kept = append(kept, c)
		}
	}
	cands = kept
	if len(cands) == 0 {
		return 0, nil
	}
	if lo, ok := analysis.ConstInt(info.Lower); !ok || lo != 0 {
		return 0, fmt.Errorf("transform: reordering requires a zero lower bound")
	}
	off := OffloadPragma(loop)

	// Group candidate accesses by (array, index expression).
	type group struct {
		array string
		idx   minic.Expr
		key   string
		read  bool
		write bool
		elem  minic.Type
	}
	groups := map[string]*group{}
	var order []string
	for _, c := range cands {
		key := c.Access.Array + "[" + minic.ExprString(c.Access.Index) + "]"
		g := groups[key]
		if g == nil {
			g = &group{array: c.Access.Array, idx: c.Access.Index, key: key}
			groups[key] = g
			order = append(order, key)
		}
		if c.Access.Write {
			g.write = true
		} else {
			g.read = true
		}
	}

	seq := seqOrNew(names)
	nExpr := info.Upper
	var prologue, epilogue []minic.Stmt
	var newGlobals []*minic.VarDecl
	gVar := seq.Fresh("g")
	prologue = append(prologue, declInt(gVar, intLit(0)))

	count := 0
	taken := map[string]bool{}
	for _, key := range order {
		g := groups[key]
		g.elem = globalElemType(f, g.array)
		if g.elem == nil {
			continue
		}
		permName := "__" + g.array + "_r"
		for declaredGlobal(f, permName) || taken[permName] {
			permName = seq.Fresh(g.array + "_r")
		}
		taken[permName] = true
		newGlobals = append(newGlobals, &minic.VarDecl{Name: permName, Type: &minic.Pointer{Elem: g.elem}})

		// permName = malloc(n * sizeof(elem));
		alloc := &minic.AssignStmt{
			Op:  "=",
			LHS: ident(permName),
			RHS: &minic.CallExpr{
				Fun:  ident("malloc"),
				Args: []minic.Expr{bin("*", paren(minic.CloneExpr(nExpr)), &minic.SizeofExpr{Of: g.elem})},
			},
		}
		prologue = append(prologue, alloc)

		// Gather in access order: perm[g] = A[idx(i->g)].
		if g.read {
			gatherIdx := cloneWithIndexVar(g.idx, info.IndexVar, gVar)
			prologue = append(prologue, forLoop(gVar, intLit(0), minic.CloneExpr(nExpr), nil,
				&minic.AssignStmt{Op: "=", LHS: index(permName, ident(gVar)), RHS: index(g.array, gatherIdx)},
			))
		}
		// Scatter back for written irregular arrays.
		if g.write {
			scatterIdx := cloneWithIndexVar(g.idx, info.IndexVar, gVar)
			epilogue = append(epilogue, forLoop(gVar, intLit(0), minic.CloneExpr(nExpr), nil,
				&minic.AssignStmt{Op: "=", LHS: index(g.array, scatterIdx), RHS: index(permName, ident(gVar))},
			))
		}

		// Rewrite the loop body.
		want := minic.ExprString(g.idx)
		arr := g.array
		minic.Substitute(loop.Body, func(e minic.Expr) minic.Expr {
			ie, ok := e.(*minic.IndexExpr)
			if !ok {
				return nil
			}
			id, ok := ie.X.(*minic.Ident)
			if !ok || id.Name != arr || minic.ExprString(ie.Index) != want {
				return nil
			}
			return index(permName, ident(info.IndexVar))
		})

		// Update the offload clauses.
		if off != nil {
			item := minic.TransferItem{Name: permName, Length: minic.CloneExpr(nExpr)}
			switch {
			case g.read && g.write:
				off.InOut = append(off.InOut, item)
			case g.write:
				off.Out = append(off.Out, item)
			default:
				off.In = append(off.In, item)
			}
		}
		epilogue = append(epilogue, &minic.ExprStmt{X: &minic.CallExpr{Fun: ident("free"), Args: []minic.Expr{ident(permName)}}})
		count++
	}
	if count == 0 {
		return 0, nil
	}
	addGlobals(f, newGlobals...)
	if off != nil {
		pruneUnusedItems(off, loop)
	}
	if !replaceStmt(f, loop, append(append(prologue, loop), epilogue...)) {
		return 0, fmt.Errorf("transform: loop not found in file")
	}
	return count, nil
}

// assignedScalars collects every scalar variable name assigned anywhere in
// the statement: assignment targets, ++/--, declarations with initializers,
// and nested loop headers.
func assignedScalars(s minic.Stmt) map[string]bool {
	out := map[string]bool{}
	record := func(e minic.Expr) {
		if id, ok := e.(*minic.Ident); ok {
			out[id.Name] = true
		}
	}
	minic.Inspect(s, func(n minic.Node) bool {
		switch st := n.(type) {
		case *minic.AssignStmt:
			record(st.LHS)
		case *minic.IncDecStmt:
			record(st.X)
		case *minic.DeclStmt:
			out[st.Decl.Name] = true
		}
		return true
	})
	return out
}

// referencesAny reports whether e mentions any identifier in vars other
// than exempt.
func referencesAny(e minic.Expr, vars map[string]bool, exempt string) bool {
	found := false
	minic.Inspect(e, func(n minic.Node) bool {
		if id, ok := n.(*minic.Ident); ok && id.Name != exempt && vars[id.Name] {
			found = true
		}
		return !found
	})
	return found
}

// cloneWithIndexVar clones idx replacing the loop variable with newVar.
func cloneWithIndexVar(idx minic.Expr, ivar, newVar string) minic.Expr {
	c := minic.CloneExpr(idx)
	wrap := &minic.ExprStmt{X: c}
	minic.Substitute(wrap, func(e minic.Expr) minic.Expr {
		if id, ok := e.(*minic.Ident); ok && id.Name == ivar {
			return ident(newVar)
		}
		return nil
	})
	return wrap.X
}

// pruneUnusedItems drops pragma items whose arrays the (rewritten) loop no
// longer touches — e.g. the original gathered array and its index array
// once the permutation array replaces them (the nn effect: unnecessary
// transfer removed).
func pruneUnusedItems(p *minic.Pragma, loop *minic.ForStmt) {
	used := map[string]bool{}
	minic.Inspect(loop, func(n minic.Node) bool {
		if ie, ok := n.(*minic.IndexExpr); ok {
			if id, ok := ie.X.(*minic.Ident); ok {
				used[id.Name] = true
			}
		}
		return true
	})
	filter := func(items []minic.TransferItem) []minic.TransferItem {
		var out []minic.TransferItem
		for _, it := range items {
			if it.Length == nil || used[it.Name] {
				out = append(out, it)
			}
		}
		return out
	}
	p.In = filter(p.In)
	p.Out = filter(p.Out)
	p.InOut = filter(p.InOut)
}

// SplitLoop implements §IV "splitting loops" (the srad shape): the
// irregular prefix of the body is peeled into its own (non-vectorizable)
// loop whose per-iteration scalar results are buffered in temporary
// arrays; the regular remainder becomes a second, vectorizable loop. Both
// loops stay in a single offload region so no extra transfers appear —
// "this optimization is done statically, and there is no runtime
// overhead".
//
// Returns false if the split pattern does not apply. names supplies fresh
// identifiers; nil uses a private sequence.
func SplitLoop(f *minic.File, loop *minic.ForStmt, names *NameSeq) (bool, error) {
	info, err := analysis.Analyze(loop, f)
	if err != nil {
		return false, err
	}
	sp := analysis.SplitPoint(info, f)
	if sp == 0 {
		return false, nil
	}
	off := OffloadPragma(loop)
	omp := OmpPragma(loop)
	if omp == nil {
		return false, nil
	}

	prefix := loop.Body.Stmts[:sp]
	suffix := loop.Body.Stmts[sp:]

	// Locals declared in the prefix and referenced in the suffix are
	// promoted to device-resident temporary arrays indexed by i.
	promoted := map[string]minic.Type{}
	var promotedOrder []string
	for _, s := range prefix {
		ds, ok := s.(*minic.DeclStmt)
		if !ok {
			continue
		}
		name := ds.Decl.Name
		if usesIdent(suffix, name) {
			promoted[name] = ds.Decl.Type
			promotedOrder = append(promotedOrder, name)
		}
	}
	if len(promoted) == 0 {
		return false, nil
	}

	seq := seqOrNew(names)
	tmpOf := map[string]string{}
	var newGlobals []*minic.VarDecl
	for _, name := range promotedOrder {
		tmp := "__t_" + name
		for declaredGlobal(f, tmp) {
			tmp = seq.Fresh("t_" + name)
		}
		tmpOf[name] = tmp
		newGlobals = append(newGlobals, &minic.VarDecl{Name: tmp, Type: &minic.Pointer{Elem: promoted[name]}})
	}
	addGlobals(f, newGlobals...)

	ivar := info.IndexVar
	substPromoted := func(stmts []minic.Stmt) []minic.Stmt {
		blockStmts := make([]minic.Stmt, 0, len(stmts))
		for _, s := range stmts {
			cs := minic.CloneStmt(s)
			// decl `T x = e;` becomes `__t_x[i] = e;`
			if ds, ok := cs.(*minic.DeclStmt); ok {
				if tmp, isPromoted := tmpOf[ds.Decl.Name]; isPromoted {
					cs = &minic.AssignStmt{
						Op:  "=",
						LHS: index(tmp, ident(ivar)),
						RHS: ds.Decl.Init,
					}
				}
			}
			minic.Substitute(cs, func(e minic.Expr) minic.Expr {
				if id, ok := e.(*minic.Ident); ok {
					if tmp, isPromoted := tmpOf[id.Name]; isPromoted {
						return index(tmp, ident(ivar))
					}
				}
				return nil
			})
			blockStmts = append(blockStmts, cs)
		}
		return blockStmts
	}

	mkLoop := func(stmts []minic.Stmt) *minic.ForStmt {
		nl := &minic.ForStmt{
			Pragmas: []*minic.Pragma{minic.ClonePragma(omp)},
			Init:    minic.CloneStmt(loop.Init),
			Cond:    minic.CloneExpr(loop.Cond),
			Post:    minic.CloneStmt(loop.Post),
			Body:    &minic.Block{Stmts: stmts},
		}
		return nl
	}
	loop1 := mkLoop(substPromoted(prefix))
	loop2 := mkLoop(substPromoted(suffix))

	// One offload region wraps both loops; the temporaries are device-only
	// nocopy buffers sized to the iteration space.
	wrapPragmas := []*minic.Pragma{}
	if off != nil {
		mp := minic.ClonePragma(off)
		for _, name := range promotedOrder {
			mp.NoCopy = append(mp.NoCopy, minic.TransferItem{
				Name:    tmpOf[name],
				Length:  minic.CloneExpr(info.Upper),
				AllocIf: intLit(1),
				FreeIf:  intLit(1),
			})
		}
		wrapPragmas = append(wrapPragmas, mp)
	}
	onceVar := seq.Fresh("once")
	wrapper := forLoop(onceVar, intLit(0), intLit(1), wrapPragmas, loop1, loop2)
	wrapper.Init = declInt(onceVar, intLit(0))

	if !replaceStmt(f, loop, []minic.Stmt{wrapper}) {
		return false, fmt.Errorf("transform: loop not found in file")
	}
	return true, nil
}

func usesIdent(stmts []minic.Stmt, name string) bool {
	found := false
	for _, s := range stmts {
		minic.Inspect(s, func(n minic.Node) bool {
			if id, ok := n.(*minic.Ident); ok && id.Name == name {
				found = true
			}
			return !found
		})
	}
	return found
}

// AoSToSoA implements §IV "handling arrays of structures": the paper
// converts arrays of structures to structures of arrays *statically* —
// the layout itself changes at the declaration, so no runtime conversion
// is needed. Every use of the struct array program-wide must be a member
// access through a subscript (pts[e].f); anything else (whole-element
// copies, pointers into the array) makes the transformation decline.
//
// The trigger is an AoS access pattern in the given loop; the rewrite then
// applies to the whole file: the declaration splits into one array per
// field, all accesses are rewritten, and every pragma item naming the
// struct array is replaced by per-field items.
//
// Returns the number of struct arrays converted.
func AoSToSoA(f *minic.File, loop *minic.ForStmt) (int, error) {
	info, err := analysis.Analyze(loop, f)
	if err != nil {
		return 0, err
	}
	targets := map[string]*minic.StructType{}
	var arrays []string
	for _, ir := range analysis.ClassifyIrregular(info) {
		if ir.Pattern != analysis.PatternAoS {
			continue
		}
		name := ir.Access.Array
		if _, seen := targets[name]; seen {
			continue
		}
		st, _ := globalElemType(f, name).(*minic.StructType)
		if st == nil {
			continue
		}
		targets[name] = st
		arrays = append(arrays, name)
	}
	if len(arrays) == 0 {
		return 0, nil
	}

	converted := 0
	for _, arrName := range arrays {
		st := targets[arrName]
		if !aosOnlyMemberUses(f, arrName) {
			continue
		}
		// Build per-field declarations mirroring the original shape.
		fieldArr := map[string]string{}
		var newDecls []*minic.VarDecl
		origLen := declaredArrayLen(f, arrName)
		for _, fl := range st.Fields {
			fa := "__" + arrName + "_" + fl.Name
			for declaredGlobal(f, fa) {
				fa = fa + "_"
			}
			fieldArr[fl.Name] = fa
			var ft minic.Type
			if origLen != nil {
				ft = &minic.Array{Elem: fl.Type, Len: minic.CloneExpr(origLen)}
			} else {
				ft = &minic.Pointer{Elem: fl.Type}
			}
			newDecls = append(newDecls, &minic.VarDecl{Name: fa, Type: ft})
		}
		// Swap the declaration.
		replaced := false
		for i, d := range f.Decls {
			vd, ok := d.(*minic.VarDecl)
			if !ok || vd.Name != arrName {
				continue
			}
			var nd []minic.Decl
			nd = append(nd, f.Decls[:i]...)
			for _, dd := range newDecls {
				nd = append(nd, dd)
			}
			nd = append(nd, f.Decls[i+1:]...)
			f.Decls = nd
			replaced = true
			break
		}
		if !replaced {
			continue
		}
		// Rewrite every access program-wide.
		for _, fd := range f.Funcs() {
			if fd.Body == nil {
				continue
			}
			minic.Substitute(fd.Body, func(e minic.Expr) minic.Expr {
				me, ok := e.(*minic.MemberExpr)
				if !ok {
					return nil
				}
				ie, ok := me.X.(*minic.IndexExpr)
				if !ok {
					return nil
				}
				id, ok := ie.X.(*minic.Ident)
				if !ok || id.Name != arrName {
					return nil
				}
				return index(fieldArr[me.Field], minic.CloneExpr(ie.Index))
			})
		}
		// Rewrite pragma items everywhere.
		rewritePragmas(f, func(p *minic.Pragma) {
			expand := func(items []minic.TransferItem) []minic.TransferItem {
				var out []minic.TransferItem
				for _, it := range items {
					if it.Name != arrName {
						out = append(out, it)
						continue
					}
					for _, fl := range st.Fields {
						nit := it
						nit.Name = fieldArr[fl.Name]
						nit.Length = minic.CloneExpr(it.Length)
						out = append(out, nit)
					}
				}
				return out
			}
			p.In = expand(p.In)
			p.Out = expand(p.Out)
			p.InOut = expand(p.InOut)
			p.NoCopy = expand(p.NoCopy)
		})
		converted++
	}
	return converted, nil
}

// aosOnlyMemberUses verifies every use of the array is pts[e].f or a
// pragma item — the precondition for the static layout change.
func aosOnlyMemberUses(f *minic.File, name string) bool {
	ok := true
	var walk func(e minic.Expr, parentMemberIndex bool)
	walk = func(e minic.Expr, parentMemberIndex bool) {
		switch x := e.(type) {
		case nil:
		case *minic.Ident:
			if x.Name == name && !parentMemberIndex {
				ok = false
			}
		case *minic.MemberExpr:
			if ie, isIdx := x.X.(*minic.IndexExpr); isIdx {
				if id, isID := ie.X.(*minic.Ident); isID && id.Name == name {
					walk(ie.Index, false)
					return
				}
			}
			walk(x.X, false)
		case *minic.IndexExpr:
			walk(x.X, false)
			walk(x.Index, false)
		case *minic.BinaryExpr:
			walk(x.X, false)
			walk(x.Y, false)
		case *minic.UnaryExpr:
			walk(x.X, false)
		case *minic.ParenExpr:
			walk(x.X, false)
		case *minic.CallExpr:
			for _, a := range x.Args {
				walk(a, false)
			}
		}
	}
	for _, fd := range f.Funcs() {
		if fd.Body == nil {
			continue
		}
		minic.Inspect(fd.Body, func(n minic.Node) bool {
			switch x := n.(type) {
			case *minic.MemberExpr:
				walk(x, false)
				return false
			case minic.Expr:
				if id, isID := x.(*minic.Ident); isID && id.Name == name {
					ok = false
				}
			}
			return true
		})
	}
	return ok
}

// rewritePragmas applies fn to every pragma in the file.
func rewritePragmas(f *minic.File, fn func(*minic.Pragma)) {
	minic.Inspect(f, func(n minic.Node) bool {
		switch x := n.(type) {
		case *minic.ForStmt:
			for _, p := range x.Pragmas {
				fn(p)
			}
		case *minic.PragmaStmt:
			fn(x.P)
		}
		return true
	})
}
