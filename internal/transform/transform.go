// Package transform implements COMP's three source-to-source optimization
// families (MICRO 2014):
//
//   - data streaming (§III): pipelined block transfer with hoisted
//     allocation, the memory-reduction double-buffer variant, the analytic
//     block-count model, persistent kernels, and offload merging;
//   - regularization (§IV): array reordering for gathered and strided
//     accesses, loop splitting, and AoS→SoA conversion;
//   - shared-memory lowering support for pointer-based structures (§V)
//     lives in internal/shmem; this package only carries the pointer-
//     augmentation rewriting used by the compiler side.
//
// All passes consume and produce minic ASTs, so the output of every pass
// is printable source (minic.Print) and directly executable on the
// simulated runtime.
package transform

import (
	"fmt"

	"comp/internal/minic"
)

// NameSeq hands out fresh `__`-prefixed identifiers. Transforms that run
// in sequence over one file must share a single NameSeq (the pass manager
// carries one per Context); otherwise two passes can mint the same name.
// Entry points accept a nil NameSeq and fall back to a private sequence,
// which is only safe when a single transform runs on the file.
type NameSeq struct{ n int }

// Fresh returns the next unused identifier derived from base.
func (s *NameSeq) Fresh(base string) string {
	s.n++
	return fmt.Sprintf("__%s%d", base, s.n)
}

// seqOrNew returns names, or a private sequence when names is nil.
func seqOrNew(names *NameSeq) *NameSeq {
	if names == nil {
		return &NameSeq{}
	}
	return names
}

// FindOffloadLoops returns every for loop carrying an offload pragma, in
// source order.
func FindOffloadLoops(f *minic.File) []*minic.ForStmt {
	var out []*minic.ForStmt
	minic.Inspect(f, func(n minic.Node) bool {
		fs, ok := n.(*minic.ForStmt)
		if !ok {
			return true
		}
		for _, p := range fs.Pragmas {
			if p.Kind == minic.PragmaOffload {
				out = append(out, fs)
				break
			}
		}
		return true
	})
	return out
}

// OffloadPragma returns the loop's offload pragma, or nil.
func OffloadPragma(fs *minic.ForStmt) *minic.Pragma {
	for _, p := range fs.Pragmas {
		if p.Kind == minic.PragmaOffload {
			return p
		}
	}
	return nil
}

// OmpPragma returns the loop's omp parallel for pragma, or nil.
func OmpPragma(fs *minic.ForStmt) *minic.Pragma {
	for _, p := range fs.Pragmas {
		if p.Kind == minic.PragmaOmpParallelFor {
			return p
		}
	}
	return nil
}

// replaceStmt swaps old for the given statements wherever old appears as a
// direct child of a block in the file. Returns false if old was not found.
func replaceStmt(f *minic.File, old minic.Stmt, with []minic.Stmt) bool {
	found := false
	minic.Inspect(f, func(n minic.Node) bool {
		b, ok := n.(*minic.Block)
		if !ok || found {
			return !found
		}
		for i, s := range b.Stmts {
			if s == old {
				rest := append([]minic.Stmt{}, b.Stmts[i+1:]...)
				b.Stmts = append(b.Stmts[:i], append(with, rest...)...)
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// addGlobals inserts variable declarations before the first function.
func addGlobals(f *minic.File, decls ...*minic.VarDecl) {
	insert := len(f.Decls)
	for i, d := range f.Decls {
		if fd, ok := d.(*minic.FuncDecl); ok && fd.Body != nil {
			insert = i
			break
		}
	}
	var nd []minic.Decl
	nd = append(nd, f.Decls[:insert]...)
	for _, d := range decls {
		nd = append(nd, d)
	}
	nd = append(nd, f.Decls[insert:]...)
	f.Decls = nd
}

// declaredGlobal reports whether a global with the name exists.
func declaredGlobal(f *minic.File, name string) bool {
	for _, d := range f.Decls {
		if vd, ok := d.(*minic.VarDecl); ok && vd.Name == name {
			return true
		}
	}
	return false
}

// globalElemType returns the element type of a global array/pointer.
func globalElemType(f *minic.File, name string) minic.Type {
	for _, d := range f.Decls {
		if vd, ok := d.(*minic.VarDecl); ok && vd.Name == name {
			return minic.ElemOf(vd.Type)
		}
	}
	return nil
}

// ident builds an identifier expression.
func ident(name string) *minic.Ident { return minic.NewIdent(minic.Pos{}, name) }

// intLit builds an integer literal.
func intLit(v int64) *minic.IntLit { return &minic.IntLit{Value: v} }

// bin builds a binary expression.
func bin(op string, x, y minic.Expr) *minic.BinaryExpr {
	return &minic.BinaryExpr{Op: op, X: x, Y: y}
}

// paren wraps an expression for safe embedding.
func paren(x minic.Expr) minic.Expr {
	switch x.(type) {
	case *minic.Ident, *minic.IntLit, *minic.ParenExpr:
		return x
	}
	return &minic.ParenExpr{X: x}
}

// assign builds `name = expr;`.
func assign(name string, x minic.Expr) *minic.AssignStmt {
	return &minic.AssignStmt{Op: "=", LHS: ident(name), RHS: x}
}

// declInt builds `int name = expr;`.
func declInt(name string, x minic.Expr) *minic.DeclStmt {
	return &minic.DeclStmt{Decl: &minic.VarDecl{Name: name, Type: minic.IntType, Init: x}}
}

// index builds `arr[idx]`.
func index(arr string, idx minic.Expr) *minic.IndexExpr {
	return &minic.IndexExpr{X: ident(arr), Index: idx}
}

// forLoop builds `for (name = lo; name < hi; name++) { body }`.
func forLoop(name string, lo, hi minic.Expr, pragmas []*minic.Pragma, body ...minic.Stmt) *minic.ForStmt {
	return &minic.ForStmt{
		Pragmas: pragmas,
		Init:    &minic.AssignStmt{Op: "=", LHS: ident(name), RHS: lo},
		Cond:    bin("<", ident(name), hi),
		Post:    &minic.IncDecStmt{Op: "++", X: ident(name)},
		Body:    &minic.Block{Stmts: body},
	}
}

// block wraps statements.
func block(stmts ...minic.Stmt) *minic.Block { return &minic.Block{Stmts: stmts} }

// clampLen builds:
//
//	int lenName = bs;
//	if (offExpr + bs > n) { lenName = n - offExpr; }
func clampLen(lenName, bsName, nName string, offExpr minic.Expr) []minic.Stmt {
	return []minic.Stmt{
		declInt(lenName, ident(bsName)),
		&minic.IfStmt{
			Cond: bin(">", bin("+", minic.CloneExpr(offExpr), ident(bsName)), ident(nName)),
			Then: block(assign(lenName, bin("-", ident(nName), minic.CloneExpr(offExpr)))),
		},
	}
}
