package transform_test

import (
	"testing"

	"comp/internal/interp"
	"comp/internal/minic"
	"comp/internal/transform"
	"comp/internal/vm"
	"comp/internal/workloads"
)

// The §IV regularization passes rewrite loop bodies and data layouts —
// exactly the transforms that could silently change answers. This sweep
// applies each pass individually to every registry workload it accepts and
// proves, through the interpreter (NullBackend: values only, no simulated
// machine), that the transformed program computes element-wise identical
// outputs to the program as written. It lives in an external test package
// because workloads depends on transform via core.

// regPass adapts the three §IV entry points to one shape: applications
// performed (0 = pass not applicable to this loop).
type regPass struct {
	name  string
	apply func(f *minic.File, loop *minic.ForStmt) (int, error)
}

func regPasses() []regPass {
	return []regPass{
		{"ReorderArrays", func(f *minic.File, loop *minic.ForStmt) (int, error) {
			return transform.ReorderArrays(f, loop, nil)
		}},
		{"SplitLoop", func(f *minic.File, loop *minic.ForStmt) (int, error) {
			ok, err := transform.SplitLoop(f, loop, nil)
			if ok {
				return 1, err
			}
			return 0, err
		}},
		{"AoSToSoA", transform.AoSToSoA},
	}
}

// nullRunSource executes MiniC source through the interpreter alone,
// injecting the given input setup after reset.
func nullRunSource(t *testing.T, src string, setup func(*interp.Program) error) *interp.Program {
	t.Helper()
	p, err := interp.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := p.Reset(); err != nil {
		t.Fatal(err)
	}
	if setup != nil {
		if err := setup(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Run(interp.NullBackend{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	return p
}

// applyPassToFile runs one pass over every offload loop in source order and
// returns the total applications.
func applyPassToFile(t *testing.T, pass regPass, f *minic.File) int {
	t.Helper()
	applied := 0
	for _, loop := range transform.FindOffloadLoops(f) {
		n, err := pass.apply(f, loop)
		if err != nil {
			t.Fatalf("%s: %v", pass.name, err)
		}
		applied += n
	}
	return applied
}

// diffOutputs compares the named output arrays and printed output of the
// transformed program against the untransformed reference, bit for bit.
func diffOutputs(t *testing.T, outputs []string, ref, got *interp.Program) {
	t.Helper()
	for _, name := range outputs {
		want, err := ref.ArrayData(name)
		if err != nil {
			t.Fatal(err)
		}
		have, err := got.ArrayData(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(have) {
			t.Fatalf("%s: length %d (transformed) vs %d (reference)", name, len(have), len(want))
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("%s[%d]: transformed %v, reference %v", name, i, have[i], want[i])
			}
		}
	}
	if a, b := ref.Output(), got.Output(); a != b {
		t.Errorf("printed output differs: reference %q, transformed %q", a, b)
	}
}

// TestRegularizationDifferentialSweep applies each §IV pass on its own to
// every MiniC workload and requires bit-identical outputs versus the
// untransformed program. It also pins down which workloads each pass fires
// on, so a legality regression that silently stops a pass from applying
// (and would make the equivalence check vacuously pass) is caught.
func TestRegularizationDifferentialSweep(t *testing.T) {
	fired := map[string]map[string]bool{}
	for _, pass := range regPasses() {
		fired[pass.name] = map[string]bool{}
	}
	for _, b := range workloads.All() {
		if b.SharedMem {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			ref := nullRunSource(t, b.Source, b.Setup)
			for _, pass := range regPasses() {
				pass := pass
				t.Run(pass.name, func(t *testing.T) {
					f, err := minic.Parse(b.Source)
					if err != nil {
						t.Fatalf("parse: %v", err)
					}
					if applyPassToFile(t, pass, f) == 0 {
						t.Skipf("%s not applicable to %s", pass.name, b.Name)
					}
					fired[pass.name][b.Name] = true
					got := nullRunSource(t, minic.Print(f), b.Setup)
					diffOutputs(t, b.Outputs, ref, got)
				})
			}
		})
	}
	// Table II credits nn and srad with regularization; the sweep must have
	// actually exercised those pairs or the suite proves nothing.
	if !fired["ReorderArrays"]["nn"] {
		t.Error("ReorderArrays did not fire on nn (Table II regularization workload)")
	}
	if !fired["SplitLoop"]["srad"] {
		t.Error("SplitLoop did not fire on srad (Table II regularization workload)")
	}
}

// No registry workload declares an AoS struct (Table II's layout
// conversion shows up in nn's record reordering instead), so the AoS→SoA
// differential runs on a representative synthetic source: an n-body-style
// kernel whose offload loop reads three interleaved fields.
const aosDifferentialSource = `
struct body {
    float x;
    float y;
    float m;
};
struct body bodies[16384];
float ke[16384];
int n;
int main(void) {
    int i;
    n = 16384;
    for (i = 0; i < n; i++) {
        bodies[i].x = i * 0.5;
        bodies[i].y = 2.0 - i * 0.25;
        bodies[i].m = 1.0 + i % 9;
    }
    #pragma offload target(mic:0) in(bodies : length(n)) out(ke : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        ke[i] = 0.5 * bodies[i].m * (bodies[i].x * bodies[i].x + bodies[i].y * bodies[i].y);
    }
    return 0;
}
`

// TestAoSToSoADifferential is the interpreter-level differential for the
// layout pass: same values out of the SoA program, bit for bit.
func TestAoSToSoADifferential(t *testing.T) {
	ref := nullRunSource(t, aosDifferentialSource, nil)
	f, err := minic.Parse(aosDifferentialSource)
	if err != nil {
		t.Fatal(err)
	}
	pass := regPasses()[2]
	if pass.name != "AoSToSoA" {
		t.Fatal("pass table changed; update index")
	}
	if applyPassToFile(t, pass, f) == 0 {
		t.Fatal("AoSToSoA did not fire on the synthetic AoS kernel")
	}
	got := nullRunSource(t, minic.Print(f), nil)
	diffOutputs(t, []string{"ke"}, ref, got)
}

// composePasses applies all three §IV passes to the same file in one
// pipeline, returning per-pass application counts. Split runs before
// reorder: reordering first rewrites the gathered loop into a shape whose
// split precondition no longer holds (observed on srad), so the reverse
// order would silently degrade the composition to a single pass. The
// single-pass sweep above cannot catch interactions between rewrites that
// are individually sound.
func composePasses(t *testing.T, f *minic.File) map[string]int {
	t.Helper()
	passes := regPasses()
	passes[0], passes[1] = passes[1], passes[0] // SplitLoop, ReorderArrays, AoSToSoA
	fired := map[string]int{}
	for _, pass := range passes {
		fired[pass.name] = applyPassToFile(t, pass, f)
	}
	return fired
}

// vmRunSource is nullRunSource with the bytecode VM attached as the
// execution engine, so the composed-transform differential also holds
// under the second engine.
func vmRunSource(t *testing.T, src string, setup func(*interp.Program) error) *interp.Program {
	t.Helper()
	return engineRunSource(t, src, setup, vm.Attach)
}

// columnarRunSource is vmRunSource with the columnar batch tier enabled —
// the transformed programs are exactly the regular, element-wise shapes
// the tier targets, so this is where fused vector ops meet §IV rewrites.
func columnarRunSource(t *testing.T, src string, setup func(*interp.Program) error) *interp.Program {
	t.Helper()
	return engineRunSource(t, src, setup, vm.AttachColumnar)
}

func engineRunSource(t *testing.T, src string, setup func(*interp.Program) error, attach func(*interp.Program) error) *interp.Program {
	t.Helper()
	p, err := interp.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := attach(p); err != nil {
		t.Fatalf("vm attach: %v", err)
	}
	if err := p.Reset(); err != nil {
		t.Fatal(err)
	}
	if setup != nil {
		if err := setup(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Run(interp.NullBackend{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	return p
}

// gatherDifferentialSource is a pure-gather kernel: no irregular prefix for
// SplitLoop to peel and no struct layout for AoSToSoA, so in the composed
// pipeline ReorderArrays is the pass that fires on it.
const gatherDifferentialSource = `
float A[8192];
int idx[8192];
float out[8192];
int n;
int main(void) {
    int i;
    n = 8192;
    for (i = 0; i < n; i++) {
        A[i] = i * 0.125;
        idx[i] = (i * 37) % n;
    }
    #pragma offload target(mic:0) in(A : length(n), idx : length(n)) out(out : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        out[i] = A[idx[i]] * 2.0 + 1.0;
    }
    return 0;
}
`

// TestComposedPipelineDifferential applies all three §IV passes to one file
// in a single pipeline over every workload (plus two synthetic kernels) and
// requires the composed program to compute bit-identical outputs under BOTH
// execution engines: the tree-walking interpreter and the bytecode VM. It
// also pins the pass interactions: SplitLoop and ReorderArrays compete for
// the same irregular loops, so whichever runs first claims them, and
// ReorderArrays must refuse the wrapper loops SplitLoop leaves behind
// (hoisting a gather out of the wrapper would read the inner loops'
// induction variables before they are assigned).
func TestComposedPipelineDifferential(t *testing.T) {
	type unit struct {
		name    string
		source  string
		setup   func(*interp.Program) error
		outputs []string
	}
	units := []unit{
		{"aos-synthetic", aosDifferentialSource, nil, []string{"ke"}},
		{"gather-synthetic", gatherDifferentialSource, nil, []string{"out"}},
	}
	for _, b := range workloads.All() {
		if b.SharedMem {
			continue
		}
		units = append(units, unit{b.Name, b.Source, b.Setup, b.Outputs})
	}
	perUnit := map[string]map[string]int{}
	for _, u := range units {
		u := u
		t.Run(u.name, func(t *testing.T) {
			ref := nullRunSource(t, u.source, u.setup)
			f, err := minic.Parse(u.source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			fired := composePasses(t, f)
			perUnit[u.name] = fired
			n := 0
			for _, c := range fired {
				n += c
			}
			if n == 0 {
				t.Skip("no §IV pass applicable")
			}
			src := minic.Print(f)
			t.Run("interp", func(t *testing.T) {
				diffOutputs(t, u.outputs, ref, nullRunSource(t, src, u.setup))
			})
			t.Run("vm", func(t *testing.T) {
				diffOutputs(t, u.outputs, ref, vmRunSource(t, src, u.setup))
			})
			t.Run("columnar", func(t *testing.T) {
				diffOutputs(t, u.outputs, ref, columnarRunSource(t, src, u.setup))
			})
		})
	}
	// Composition pins. Each pass must fire somewhere in the composed
	// sweep, on the unit whose shape it owns.
	if perUnit["srad"]["SplitLoop"] == 0 {
		t.Error("SplitLoop did not fire on srad in the composed pipeline")
	}
	if perUnit["gather-synthetic"]["ReorderArrays"] == 0 {
		t.Error("ReorderArrays did not fire on the gather kernel in the composed pipeline")
	}
	if perUnit["aos-synthetic"]["AoSToSoA"] == 0 {
		t.Error("AoSToSoA did not fire on the AoS kernel in the composed pipeline")
	}
	// Interaction pin: after SplitLoop claims srad, ReorderArrays must NOT
	// fire on the split wrapper — its gather indices reference the inner
	// loops' induction variables, which the wrapper body assigns.
	if n := perUnit["srad"]["ReorderArrays"]; n != 0 {
		t.Errorf("ReorderArrays fired %d times on split srad; hoisting from the wrapper is unsound", n)
	}
}
