package transform

import (
	"strings"
	"testing"

	"comp/internal/analysis"
	"comp/internal/interp"
	"comp/internal/minic"
	rt "comp/internal/runtime"
	"comp/internal/sim/engine"
)

// pipeline helpers -----------------------------------------------------

func parse(t *testing.T, src string) *minic.File {
	t.Helper()
	f, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := minic.Check(f).Err(); err != nil {
		t.Fatalf("check: %v", err)
	}
	return f
}

// runFile compiles and runs a file on the simulated runtime.
func runFile(t *testing.T, f *minic.File) rt.Result {
	t.Helper()
	// Round-trip through the printer: transforms must produce valid source.
	printed := minic.Print(f)
	p, err := interp.Compile(printed)
	if err != nil {
		t.Fatalf("compile transformed source: %v\n%s", err, printed)
	}
	res, err := rt.Run(p, rt.DefaultConfig())
	if err != nil {
		t.Fatalf("run: %v\n%s", err, printed)
	}
	// Invariant: no transformation may generate a pipelining race.
	if len(res.Stats.RaceWarnings) != 0 {
		t.Fatalf("transformed program races: %v\n%s", res.Stats.RaceWarnings, printed)
	}
	return res
}

func arrayOf(t *testing.T, res rt.Result, name string) []float64 {
	t.Helper()
	d, err := res.Program.ArrayData(name)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func assertSame(t *testing.T, a, b []float64, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: lengths differ %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s[%d]: %v != %v", label, i, a[i], b[i])
		}
	}
}

// ---- block-size model (§III-B) ----

func TestModelTimeMatchesUnstreamedAtN1(t *testing.T) {
	d, c, k := engine.Duration(1000), engine.Duration(500), engine.Duration(10)
	if got, want := ModelTime(d, c, k, 1), d+c+k; got != want {
		t.Fatalf("T(1) = %v, want %v", got, want)
	}
}

func TestModelTimeImprovesWithPipelining(t *testing.T) {
	d, c, k := engine.Duration(1000000), engine.Duration(1000000), engine.Duration(100)
	t1 := ModelTime(d, c, k, 1)
	t20 := ModelTime(d, c, k, 20)
	if t20 >= t1 {
		t.Fatalf("T(20)=%v not better than T(1)=%v", t20, t1)
	}
	// With D == C and tiny K, pipelined time approaches max(D,C) = D.
	if t20 > engine.Duration(float64(d)*1.2) {
		t.Fatalf("T(20)=%v should approach D=%v", t20, d)
	}
}

func TestOptimalBlocksComputeBound(t *testing.T) {
	// C >> D: optimum near sqrt(D/K).
	d, c, k := engine.Duration(10000), engine.Duration(1000000), engine.Duration(100)
	n := OptimalBlocks(d, c, k)
	// sqrt(10000/100) = 10.
	if n < 5 || n > 20 {
		t.Fatalf("compute-bound optimum %d, want near 10", n)
	}
}

func TestOptimalBlocksIsArgmin(t *testing.T) {
	cases := []struct{ d, c, k engine.Duration }{
		{1000000, 100000, 50},
		{50000, 500000, 100},
		{1000000, 1000000, 1},
		{100, 100, 1000},
	}
	for _, cse := range cases {
		best := OptimalBlocks(cse.d, cse.c, cse.k)
		bt := ModelTime(cse.d, cse.c, cse.k, best)
		for n := 2; n <= 64; n++ {
			if ModelTime(cse.d, cse.c, cse.k, n) < bt {
				t.Fatalf("d=%v c=%v k=%v: N=%d beats chosen N=%d", cse.d, cse.c, cse.k, n, best)
			}
		}
	}
}

func TestOptimalBlocksDegenerate(t *testing.T) {
	if n := OptimalBlocks(0, 100, 10); n != 2 {
		t.Fatalf("zero transfer: N = %d, want 2", n)
	}
	if n := OptimalBlocks(100, 100, 0); n != 64 {
		t.Fatalf("zero launch cost: N = %d, want 64 (max)", n)
	}
}

// ---- data streaming (§III) ----

const streamCandidate = `
float sptprice[262144];
float strike[262144];
float prices[262144];
int numOptions;
int main(void) {
    int i;
    numOptions = 262144;
    for (i = 0; i < numOptions; i++) {
        sptprice[i] = 10.0 + i % 100;
        strike[i] = 12.0 + i % 90;
    }
    #pragma offload target(mic:0) in(sptprice, strike : length(numOptions)) out(prices : length(numOptions))
    #pragma omp parallel for
    for (i = 0; i < numOptions; i++) {
        prices[i] = sqrt(sptprice[i]) * exp(strike[i] / 100.0) + sptprice[i] * 0.5;
    }
    return 0;
}
`

func findOffload(t *testing.T, f *minic.File) *minic.ForStmt {
	t.Helper()
	loops := FindOffloadLoops(f)
	if len(loops) == 0 {
		t.Fatal("no offloaded loop found")
	}
	return loops[0]
}

func TestStreamSemanticEquivalence(t *testing.T) {
	for _, reduce := range []bool{false, true} {
		base := runFile(t, parse(t, streamCandidate))
		f := parse(t, streamCandidate)
		if err := Stream(f, findOffload(t, f), StreamOptions{Blocks: 16, ReduceMemory: reduce}); err != nil {
			t.Fatalf("reduce=%v: %v", reduce, err)
		}
		streamed := runFile(t, f)
		assertSame(t, arrayOf(t, base, "prices"), arrayOf(t, streamed, "prices"), "prices")

		if streamed.Stats.Overlap <= 0 {
			t.Errorf("reduce=%v: no transfer/compute overlap", reduce)
		}
		if streamed.Stats.Time >= base.Stats.Time {
			t.Errorf("reduce=%v: streamed %v not faster than base %v", reduce, streamed.Stats.Time, base.Stats.Time)
		}
		if reduce {
			// Figure 13: >80%% memory reduction at N=16.
			if streamed.Stats.PeakDeviceBytes*5 > base.Stats.PeakDeviceBytes {
				t.Errorf("peak %d not reduced by 80%% vs %d", streamed.Stats.PeakDeviceBytes, base.Stats.PeakDeviceBytes)
			}
		}
	}
}

func TestStreamPrintedFormMatchesFigure5(t *testing.T) {
	f := parse(t, streamCandidate)
	if err := Stream(f, findOffload(t, f), StreamOptions{Blocks: 8, ReduceMemory: true}); err != nil {
		t.Fatal(err)
	}
	out := minic.Print(f)
	for _, want := range []string{
		"__sptprice_s1 : length",
		"__sptprice_s2 : length",
		"__prices_o : length",
		"signal(&__sig_a)",
		"signal(&__sig_b)",
		"wait(&__sig_a)",
		"wait(&__sig_b)",
		"alloc_if(1) free_if(0)",
		"alloc_if(0) free_if(1)",
		"% 2 == 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transformed source missing %q\n%s", want, out)
		}
	}
}

func TestStreamRemainderBlocks(t *testing.T) {
	// Size not divisible by block count: remainder logic must hold.
	src := strings.ReplaceAll(streamCandidate, "262144", "100003")
	base := runFile(t, parse(t, src))
	f := parse(t, src)
	if err := Stream(f, findOffload(t, f), StreamOptions{Blocks: 7, ReduceMemory: true}); err != nil {
		t.Fatal(err)
	}
	streamed := runFile(t, f)
	assertSame(t, arrayOf(t, base, "prices"), arrayOf(t, streamed, "prices"), "prices")
}

func TestStreamInoutArray(t *testing.T) {
	src := `
float data[65536];
int n;
int main(void) {
    int i;
    n = 65536;
    for (i = 0; i < n; i++) {
        data[i] = i % 17;
    }
    #pragma offload target(mic:0) inout(data : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        data[i] = data[i] * 2.0 + 1.0;
    }
    return 0;
}
`
	base := runFile(t, parse(t, src))
	f := parse(t, src)
	if err := Stream(f, findOffload(t, f), StreamOptions{Blocks: 8, ReduceMemory: true}); err != nil {
		t.Fatal(err)
	}
	streamed := runFile(t, f)
	assertSame(t, arrayOf(t, base, "data"), arrayOf(t, streamed, "data"), "data")
}

func TestStreamInvariantArrayTransferredOnce(t *testing.T) {
	src := `
float table[64];
float in1[65536];
float out1[65536];
int n;
int main(void) {
    int i;
    n = 65536;
    for (i = 0; i < 64; i++) {
        table[i] = i * 0.5;
    }
    for (i = 0; i < n; i++) {
        in1[i] = i % 64;
    }
    #pragma offload target(mic:0) in(in1 : length(n)) in(table : length(64)) out(out1 : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        out1[i] = in1[i] + table[3];
    }
    return 0;
}
`
	base := runFile(t, parse(t, src))
	f := parse(t, src)
	if err := Stream(f, findOffload(t, f), StreamOptions{Blocks: 8, ReduceMemory: true}); err != nil {
		t.Fatal(err)
	}
	streamed := runFile(t, f)
	assertSame(t, arrayOf(t, base, "out1"), arrayOf(t, streamed, "out1"), "out1")
}

func TestStreamReductionScalar(t *testing.T) {
	src := `
float data[65536];
float total;
int n;
int main(void) {
    int i;
    n = 65536;
    for (i = 0; i < n; i++) {
        data[i] = 0.5;
    }
    total = 0.0;
    #pragma offload target(mic:0) in(data : length(n)) inout(total)
    #pragma omp parallel for reduction(+:total)
    for (i = 0; i < n; i++) {
        total += data[i];
    }
    return 0;
}
`
	base := runFile(t, parse(t, src))
	f := parse(t, src)
	if err := Stream(f, findOffload(t, f), StreamOptions{Blocks: 8, ReduceMemory: true}); err != nil {
		t.Fatal(err)
	}
	streamed := runFile(t, f)
	bt, _ := base.Program.Scalar("total")
	st, _ := streamed.Program.Scalar("total")
	if bt != st {
		t.Fatalf("reduction total: streamed %v != base %v", st, bt)
	}
	if bt != 0.5*65536 {
		t.Fatalf("total = %v, want %v", bt, 0.5*65536)
	}
}

func TestStreamPersistentReducesLaunches(t *testing.T) {
	f1 := parse(t, streamCandidate)
	if err := Stream(f1, findOffload(t, f1), StreamOptions{Blocks: 16, ReduceMemory: true}); err != nil {
		t.Fatal(err)
	}
	relaunch := runFile(t, f1)

	f2 := parse(t, streamCandidate)
	if err := Stream(f2, findOffload(t, f2), StreamOptions{Blocks: 16, ReduceMemory: true, Persistent: true}); err != nil {
		t.Fatal(err)
	}
	persist := runFile(t, f2)

	if relaunch.Stats.KernelLaunches != 16 {
		t.Fatalf("relaunch launches = %d, want 16", relaunch.Stats.KernelLaunches)
	}
	if persist.Stats.KernelLaunches >= relaunch.Stats.KernelLaunches {
		t.Fatalf("persistent launches = %d, want < %d", persist.Stats.KernelLaunches, relaunch.Stats.KernelLaunches)
	}
	if persist.Stats.Time >= relaunch.Stats.Time {
		t.Fatalf("persistent %v not faster than relaunch %v", persist.Stats.Time, relaunch.Stats.Time)
	}
}

func TestStreamLegalityRejections(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"gather", `
float a[100];
int b[100];
float c[100];
int main(void) {
    int i;
    #pragma offload target(mic:0) in(a, b : length(100)) out(c : length(100))
    #pragma omp parallel for
    for (i = 0; i < 100; i++) {
        c[i] = a[b[i]];
    }
    return 0;
}
`},
		{"halo offset", `
float a[100];
float c[100];
int main(void) {
    int i;
    #pragma offload target(mic:0) in(a : length(100)) out(c : length(100))
    #pragma omp parallel for
    for (i = 0; i < 99; i++) {
        c[i] = a[i + 1];
    }
    return 0;
}
`},
		{"not parallel", `
float a[100];
float c[100];
int main(void) {
    int i;
    #pragma offload target(mic:0) in(a : length(100)) out(c : length(100))
    for (i = 0; i < 100; i++) {
        c[i] = a[i];
    }
    return 0;
}
`},
	}
	for _, cse := range cases {
		f := parse(t, cse.src)
		err := Stream(f, findOffload(t, f), StreamOptions{Blocks: 4})
		if err == nil {
			t.Errorf("%s: streaming accepted illegal loop", cse.name)
		}
	}
}

// ---- offload merging (§III-C) ----

const mergeCandidate = `
float a[32768];
float b[32768];
float centers[64];
int n;
int iters;
int main(void) {
    int it;
    int i;
    n = 32768;
    iters = 12;
    for (i = 0; i < n; i++) {
        a[i] = i % 100;
    }
    for (i = 0; i < 64; i++) {
        centers[i] = i;
    }
    for (it = 0; it < iters; it++) {
        #pragma offload target(mic:0) in(a : length(n)) in(centers : length(64)) out(b : length(n))
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            b[i] = a[i] + centers[i % 64];
        }
        #pragma offload target(mic:0) in(b : length(n)) inout(a : length(n))
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            a[i] = a[i] * 0.5 + b[i] * 0.25;
        }
        centers[0] = centers[0] + 1.0;
    }
    return 0;
}
`

func findMergeOuter(t *testing.T, f *minic.File) *minic.ForStmt {
	t.Helper()
	cands := MergeCandidates(f, 2)
	if len(cands) != 1 {
		t.Fatalf("merge candidates = %d, want 1", len(cands))
	}
	return cands[0]
}

func TestMergeSemanticEquivalence(t *testing.T) {
	base := runFile(t, parse(t, mergeCandidate))
	f := parse(t, mergeCandidate)
	if err := MergeOffloads(f, findMergeOuter(t, f)); err != nil {
		t.Fatal(err)
	}
	merged := runFile(t, f)
	assertSame(t, arrayOf(t, base, "a"), arrayOf(t, merged, "a"), "a")
	assertSame(t, arrayOf(t, base, "b"), arrayOf(t, merged, "b"), "b")
	assertSame(t, arrayOf(t, base, "centers"), arrayOf(t, merged, "centers"), "centers")

	if merged.Stats.KernelLaunches != 1 {
		t.Fatalf("merged launches = %d, want 1 (base had %d)", merged.Stats.KernelLaunches, base.Stats.KernelLaunches)
	}
	if base.Stats.KernelLaunches != 24 {
		t.Fatalf("base launches = %d, want 24", base.Stats.KernelLaunches)
	}
	if merged.Stats.Time >= base.Stats.Time {
		t.Fatalf("merged %v not faster than base %v", merged.Stats.Time, base.Stats.Time)
	}
	// Bytes moved collapse: one round trip instead of iters round trips.
	if merged.Stats.BytesIn >= base.Stats.BytesIn/4 {
		t.Fatalf("merged bytes in %d, want far below base %d", merged.Stats.BytesIn, base.Stats.BytesIn)
	}
}

func TestMergeRejectsLoopWithoutInnerOffloads(t *testing.T) {
	f := parse(t, streamCandidate)
	var hostLoop *minic.ForStmt
	minic.Inspect(f, func(n minic.Node) bool {
		if fs, ok := n.(*minic.ForStmt); ok && OffloadPragma(fs) == nil && hostLoop == nil {
			hostLoop = fs
		}
		return true
	})
	if err := MergeOffloads(f, hostLoop); err == nil {
		t.Fatal("merge accepted loop without inner offloads")
	}
}

// ---- regularization (§IV) ----

const gatherCandidate = `
float a[65536];
int idx[65536];
float c[65536];
int n;
int main(void) {
    int i;
    n = 65536;
    for (i = 0; i < n; i++) {
        a[i] = i * 0.25;
        idx[i] = (i * 7919) % n;
    }
    #pragma offload target(mic:0) in(a, idx : length(n)) out(c : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        c[i] = a[idx[i]] * 2.0;
    }
    return 0;
}
`

func TestReorderArraysEquivalenceAndSpeedup(t *testing.T) {
	base := runFile(t, parse(t, gatherCandidate))
	f := parse(t, gatherCandidate)
	nreg, err := ReorderArrays(f, findOffload(t, f), nil)
	if err != nil {
		t.Fatal(err)
	}
	if nreg != 1 {
		t.Fatalf("regularized %d accesses, want 1", nreg)
	}
	reg := runFile(t, f)
	assertSame(t, arrayOf(t, base, "c"), arrayOf(t, reg, "c"), "c")

	// After reordering the kernel loop is streamable and vectorizable.
	f2 := parse(t, gatherCandidate)
	if _, err := ReorderArrays(f2, findOffload(t, f2), nil); err != nil {
		t.Fatal(err)
	}
	if err := Stream(f2, findOffload(t, f2), StreamOptions{Blocks: 8, ReduceMemory: true}); err != nil {
		t.Fatalf("streaming after regularization: %v", err)
	}
	both := runFile(t, f2)
	assertSame(t, arrayOf(t, base, "c"), arrayOf(t, both, "c"), "c")
}

func TestReorderDropsUnneededTransfers(t *testing.T) {
	// The nn effect: after reordering a strided access, only the used
	// elements transfer.
	src := `
float big[524288];
float c[65536];
int n;
int main(void) {
    int i;
    n = 65536;
    for (i = 0; i < 8 * n; i++) {
        big[i] = i;
    }
    #pragma offload target(mic:0) in(big : length(8 * n)) out(c : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        c[i] = big[8 * i] + 1.0;
    }
    return 0;
}
`
	base := runFile(t, parse(t, src))
	f := parse(t, src)
	if _, err := ReorderArrays(f, findOffload(t, f), nil); err != nil {
		t.Fatal(err)
	}
	reg := runFile(t, f)
	assertSame(t, arrayOf(t, base, "c"), arrayOf(t, reg, "c"), "c")
	if reg.Stats.BytesIn >= base.Stats.BytesIn/4 {
		t.Fatalf("regularized transfers %d bytes, want < base %d / 4", reg.Stats.BytesIn, base.Stats.BytesIn)
	}
}

func TestReorderScatterForWrites(t *testing.T) {
	src := `
float a[4096];
int idx[4096];
int n;
int main(void) {
    int i;
    n = 4096;
    for (i = 0; i < n; i++) {
        a[i] = i;
        idx[i] = (n - 1) - i;
    }
    #pragma offload target(mic:0) in(idx : length(n)) inout(a : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        a[idx[i]] = i * 2.0;
    }
    return 0;
}
`
	base := runFile(t, parse(t, src))
	f := parse(t, src)
	nreg, err := ReorderArrays(f, findOffload(t, f), nil)
	if err != nil {
		t.Fatal(err)
	}
	if nreg != 1 {
		t.Fatalf("regularized = %d, want 1", nreg)
	}
	reg := runFile(t, f)
	assertSame(t, arrayOf(t, base, "a"), arrayOf(t, reg, "a"), "a")
}

const sradCandidate = `
float J[66000];
int iN[65536];
int iS[65536];
float dN[65536];
float dS[65536];
float c[65536];
int n;
int main(void) {
    int i;
    n = 65536;
    for (i = 0; i < n + 400; i++) {
        J[i] = (i % 97) * 0.125 + 1.0;
    }
    for (i = 0; i < n; i++) {
        iN[i] = (i + 37) % n;
        iS[i] = (i * 13 + 5) % n;
    }
    #pragma offload target(mic:0) in(J : length(n + 400)) in(iN, iS : length(n)) out(dN, dS, c : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        float jc = J[i];
        float jn = J[iN[i]];
        float js = J[iS[i]];
        dN[i] = jn - jc;
        dS[i] = js - jc;
        float g2 = (dN[i] * dN[i] + dS[i] * dS[i]) / (jc * jc + 1.0);
        float l2 = sqrt(fabs(g2)) + exp(-g2) + log(g2 + 2.0);
        c[i] = 1.0 / (1.0 + exp(l2) * (g2 - l2) / (1.0 + l2 + sqrt(l2 + 3.0)));
    }
    return 0;
}
`

func TestSplitLoopEquivalenceAndVectorization(t *testing.T) {
	base := runFile(t, parse(t, sradCandidate))
	f := parse(t, sradCandidate)
	ok, err := SplitLoop(f, findOffload(t, f), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("split did not apply to the srad shape")
	}
	split := runFile(t, f)
	for _, arr := range []string{"dN", "dS", "c"} {
		assertSame(t, arrayOf(t, base, arr), arrayOf(t, split, arr), arr)
	}
	// The split version must be faster: the regular suffix vectorizes.
	if split.Stats.Time >= base.Stats.Time {
		t.Fatalf("split %v not faster than base %v", split.Stats.Time, base.Stats.Time)
	}
	// Still a single offload region (no extra transfers).
	if split.Stats.KernelLaunches != 1 {
		t.Fatalf("split launches = %d, want 1", split.Stats.KernelLaunches)
	}
	if split.Stats.BytesIn != base.Stats.BytesIn {
		t.Fatalf("split moved %d bytes in, base %d; splitting must not add transfers",
			split.Stats.BytesIn, base.Stats.BytesIn)
	}
}

func TestSplitLoopPrintedShape(t *testing.T) {
	f := parse(t, sradCandidate)
	if _, err := SplitLoop(f, findOffload(t, f), nil); err != nil {
		t.Fatal(err)
	}
	out := minic.Print(f)
	for _, want := range []string{"__t_jc", "__t_jn", "__t_js"} {
		if !strings.Contains(out, want) {
			t.Errorf("split source missing %q\n%s", want, out)
		}
	}
}

func TestSplitLoopDoesNotApplyToRegularLoop(t *testing.T) {
	f := parse(t, streamCandidate)
	ok, err := SplitLoop(f, findOffload(t, f), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("split applied to a fully regular loop")
	}
}

const aosCandidate = `
struct body {
    float x;
    float y;
    float m;
};
struct body bodies[32768];
float ke[32768];
int n;
int main(void) {
    int i;
    n = 32768;
    for (i = 0; i < n; i++) {
        bodies[i].x = i * 0.5;
        bodies[i].y = i * 0.25;
        bodies[i].m = 1.0 + i % 7;
    }
    #pragma offload target(mic:0) in(bodies : length(n)) out(ke : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        ke[i] = bodies[i].m * (bodies[i].x * bodies[i].x + bodies[i].y * bodies[i].y);
    }
    return 0;
}
`

func TestAoSToSoAEquivalence(t *testing.T) {
	base := runFile(t, parse(t, aosCandidate))
	f := parse(t, aosCandidate)
	nConv, err := AoSToSoA(f, findOffload(t, f))
	if err != nil {
		t.Fatal(err)
	}
	if nConv != 1 {
		t.Fatalf("converted %d arrays, want 1", nConv)
	}
	soa := runFile(t, f)
	assertSame(t, arrayOf(t, base, "ke"), arrayOf(t, soa, "ke"), "ke")
	// SoA loop vectorizes; it must not be slower.
	if soa.Stats.Time > base.Stats.Time {
		t.Fatalf("SoA %v slower than AoS %v", soa.Stats.Time, base.Stats.Time)
	}
	// After conversion the loop passes streaming legality.
	f2 := parse(t, aosCandidate)
	if _, err := AoSToSoA(f2, findOffload(t, f2)); err != nil {
		t.Fatal(err)
	}
	if err := Stream(f2, findOffload(t, f2), StreamOptions{Blocks: 8, ReduceMemory: true}); err != nil {
		t.Fatalf("streaming after SoA: %v", err)
	}
	both := runFile(t, f2)
	assertSame(t, arrayOf(t, base, "ke"), arrayOf(t, both, "ke"), "ke")
}

func TestAoSWrittenFieldsCopyBack(t *testing.T) {
	src := `
struct cell {
    float v;
    float p;
};
struct cell cells[8192];
int n;
int main(void) {
    int i;
    n = 8192;
    for (i = 0; i < n; i++) {
        cells[i].v = i;
        cells[i].p = 0.0;
    }
    #pragma offload target(mic:0) inout(cells : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        cells[i].p = cells[i].v * 3.0;
    }
    return 0;
}
`
	base := runFile(t, parse(t, src))
	f := parse(t, src)
	if _, err := AoSToSoA(f, findOffload(t, f)); err != nil {
		t.Fatal(err)
	}
	soa := runFile(t, f)
	// The layout changed statically: compare the p field against the
	// interleaved original.
	cells := arrayOf(t, base, "cells") // [v0 p0 v1 p1 ...]
	pArr := arrayOf(t, soa, "__cells_p")
	if len(pArr)*2 != len(cells) {
		t.Fatalf("field array length %d vs struct array %d", len(pArr), len(cells))
	}
	for i := range pArr {
		if pArr[i] != cells[2*i+1] {
			t.Fatalf("p[%d] = %v, want %v", i, pArr[i], cells[2*i+1])
		}
	}
}

// mustAnalyze runs the loop analysis, failing the test on error.
func mustAnalyze(t *testing.T, f *minic.File, loop *minic.ForStmt) *analysis.LoopInfo {
	t.Helper()
	info, err := analysis.Analyze(loop, f)
	if err != nil {
		t.Fatal(err)
	}
	return info
}
