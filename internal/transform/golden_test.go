package transform_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"comp/internal/core"
	"comp/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite the golden transform outputs")

// goldenOpts are the per-optimization configurations whose printed output
// is pinned. Each is applied to every MiniC workload it fires on; the
// golden file is the complete transformed source, so any change to the
// streaming rewrite, offload merging or loop regularization shows up as a
// reviewable source-level diff instead of a silent perf shift.
var goldenOpts = []struct {
	name string
	opt  core.Options
}{
	{"streaming", core.Options{Streaming: true, ReduceMemory: true, Persistent: true, Blocks: 4}},
	{"merge", core.Options{Merge: true}},
	{"regularize", core.Options{Regularize: true}},
	{"combined", func() core.Options { o := core.DefaultOptions(); o.Blocks = 4; return o }()},
}

// TestGoldenTransforms pins the printed output of each optimization on
// each workload. Regenerate with:
//
//	go test ./internal/transform -run Golden -update
func TestGoldenTransforms(t *testing.T) {
	for _, b := range workloads.All() {
		if b.SharedMem {
			continue
		}
		b := b
		for _, g := range goldenOpts {
			g := g
			t.Run(b.Name+"/"+g.name, func(t *testing.T) {
				res, err := core.Optimize(b.Source, g.opt)
				if err != nil {
					t.Fatalf("optimize: %v", err)
				}
				var sb strings.Builder
				fmt.Fprintf(&sb, "// golden: %s with %s\n", b.Name, g.name)
				for _, a := range res.Report.Applied {
					fmt.Fprintf(&sb, "// applied: %s\n", a)
				}
				sb.WriteString(res.Source())
				got := sb.String()

				path := filepath.Join("testdata", "golden", b.Name+"."+g.name+".c")
				if *update {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update to create): %v", err)
				}
				if got != string(want) {
					t.Errorf("transformed source differs from %s:\n%s\nregenerate with -update if the change is intended", path, diffHint(string(want), got))
				}
			})
		}
	}
}

// diffHint locates the first differing line for a readable failure.
func diffHint(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("first difference at line %d:\n-%s\n+%s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("lengths differ: golden %d lines, got %d lines", len(wl), len(gl))
}
