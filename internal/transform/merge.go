package transform

import (
	"fmt"

	"comp/internal/analysis"
	"comp/internal/minic"
)

// MergeOffloads implements §III-C "merging offload": a host loop whose body
// performs several small offloads is rewritten so the whole loop runs in
// one offload. The inner loops' in/out/inout clauses are combined to
// populate the hoisted clause set; the serial glue between the inner loops
// then executes (slowly, single-threaded) on the device, which the paper
// accepts in exchange for eliminating per-iteration kernel launches and
// transfers.
func MergeOffloads(f *minic.File, outer *minic.ForStmt) error {
	if OffloadPragma(outer) != nil {
		return fmt.Errorf("transform: loop at %s is already offloaded", outer.Pos())
	}
	inner := innerOffloadLoops(outer)
	if len(inner) == 0 {
		return fmt.Errorf("transform: loop at %s contains no offloaded inner loops", outer.Pos())
	}

	// Union the inner clauses, remembering each array's length expression.
	lengths := map[string]minic.Expr{}
	var sets []analysis.Clauses
	for _, il := range inner {
		p := OffloadPragma(il)
		var c analysis.Clauses
		record := func(items []minic.TransferItem, dst *[]string) {
			for _, it := range items {
				if it.Length == nil {
					c.Scalars = append(c.Scalars, it.Name)
					continue
				}
				*dst = append(*dst, it.Name)
				if _, ok := lengths[it.Name]; !ok {
					lengths[it.Name] = it.Length
				}
			}
		}
		record(p.In, &c.In)
		record(p.Out, &c.Out)
		record(p.InOut, &c.InOut)
		sets = append(sets, c)
	}

	// Host statements inside the outer loop also move to the device; their
	// array accesses must be covered too.
	outerInfo, err := analysis.Analyze(outer, f)
	if err != nil {
		return fmt.Errorf("transform: outer loop: %v", err)
	}
	hostClauses := analysis.InferClauses(outerInfo)
	for _, name := range append(append(append([]string{}, hostClauses.In...), hostClauses.Out...), hostClauses.InOut...) {
		if _, ok := lengths[name]; ok {
			continue
		}
		ln := declaredArrayLen(f, name)
		if ln == nil {
			return fmt.Errorf("transform: cannot infer transfer length for array %s", name)
		}
		lengths[name] = ln
	}
	union := analysis.Union(append(sets, hostClauses)...)

	// Build the hoisted pragma.
	mp := &minic.Pragma{Kind: minic.PragmaOffload, Target: innerTarget(inner)}
	addItems := func(names []string, dst *[]minic.TransferItem) {
		for _, n := range names {
			*dst = append(*dst, minic.TransferItem{Name: n, Length: minic.CloneExpr(lengths[n])})
		}
	}
	addItems(union.In, &mp.In)
	addItems(union.Out, &mp.Out)
	addItems(union.InOut, &mp.InOut)
	// Global scalars written inside the region must round-trip.
	for _, s := range scalarWrites(f, outer) {
		mp.InOut = append(mp.InOut, minic.TransferItem{Name: s})
	}

	// Strip the inner offload pragmas (keep omp) and attach the merged one.
	for _, il := range inner {
		var kept []*minic.Pragma
		for _, p := range il.Pragmas {
			if p.Kind != minic.PragmaOffload {
				kept = append(kept, p)
			}
		}
		il.Pragmas = kept
	}
	outer.Pragmas = append([]*minic.Pragma{mp}, outer.Pragmas...)
	return nil
}

// innerOffloadLoops finds offloaded loops strictly inside outer.
func innerOffloadLoops(outer *minic.ForStmt) []*minic.ForStmt {
	var out []*minic.ForStmt
	minic.Inspect(outer.Body, func(n minic.Node) bool {
		if fs, ok := n.(*minic.ForStmt); ok && OffloadPragma(fs) != nil {
			out = append(out, fs)
		}
		return true
	})
	return out
}

func innerTarget(inner []*minic.ForStmt) string {
	for _, il := range inner {
		if p := OffloadPragma(il); p != nil && p.Target != "" {
			return p.Target
		}
	}
	return "mic:0"
}

// declaredArrayLen returns the declared constant length of a global array.
func declaredArrayLen(f *minic.File, name string) minic.Expr {
	for _, d := range f.Decls {
		if vd, ok := d.(*minic.VarDecl); ok && vd.Name == name {
			if arr, ok := vd.Type.(*minic.Array); ok && arr.Len != nil {
				return arr.Len
			}
		}
	}
	return nil
}

// scalarWrites lists global scalars assigned anywhere inside the loop.
func scalarWrites(f *minic.File, loop *minic.ForStmt) []string {
	globals := map[string]bool{}
	for _, d := range f.Decls {
		if vd, ok := d.(*minic.VarDecl); ok {
			if minic.ElemOf(vd.Type) == nil {
				globals[vd.Name] = true
			}
		}
	}
	// Locals shadow globals; collect declared locals.
	locals := map[string]bool{}
	minic.Inspect(loop, func(n minic.Node) bool {
		if ds, ok := n.(*minic.DeclStmt); ok {
			locals[ds.Decl.Name] = true
		}
		return true
	})
	seen := map[string]bool{}
	var out []string
	record := func(e minic.Expr) {
		id, ok := e.(*minic.Ident)
		if !ok {
			return
		}
		if globals[id.Name] && !locals[id.Name] && !seen[id.Name] {
			seen[id.Name] = true
			out = append(out, id.Name)
		}
	}
	minic.Inspect(loop, func(n minic.Node) bool {
		switch x := n.(type) {
		case *minic.AssignStmt:
			record(x.LHS)
		case *minic.IncDecStmt:
			record(x.X)
		}
		return true
	})
	return out
}

// MergeCandidates returns host loops that contain at least minInner
// offloaded inner loops — the streamcluster pattern (Figure 6).
func MergeCandidates(f *minic.File, minInner int) []*minic.ForStmt {
	var out []*minic.ForStmt
	minic.Inspect(f, func(n minic.Node) bool {
		fs, ok := n.(*minic.ForStmt)
		if !ok {
			return true
		}
		if OffloadPragma(fs) != nil {
			return false // already a device loop
		}
		if len(innerOffloadLoops(fs)) >= minInner {
			out = append(out, fs)
			return false // do not nest candidates
		}
		return true
	})
	return out
}
