// golden: srad with regularize
// applied: split at 19:5: peeled irregular prefix; regular remainder vectorizes
float J[25000];

int iN[24576];

int iS[24576];

int jW[24576];

int jE[24576];

float dN[24576];

float dS[24576];

float dW[24576];

float dE[24576];

float c[24576];

int n;

float *__t_jc;

float *__t_jn;

float *__t_js;

float *__t_jw;

float *__t_je;

int main() {
    int i;
    n = 24576;
    #pragma offload target(mic:0) in(J : length(25000), iN : length(n), iS : length(n), jW : length(n), jE : length(n)) out(dN : length(n), dS : length(n), dW : length(n), dE : length(n), c : length(n)) nocopy(__t_jc : length(n) alloc_if(1) free_if(1), __t_jn : length(n) alloc_if(1) free_if(1), __t_js : length(n) alloc_if(1) free_if(1), __t_jw : length(n) alloc_if(1) free_if(1), __t_je : length(n) alloc_if(1) free_if(1))
    for (int __once1 = 0; __once1 < 1; __once1++) {
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            __t_jc[i] = J[i];
            __t_jn[i] = J[iN[i]];
            __t_js[i] = J[iS[i]];
            __t_jw[i] = J[jW[i]];
            __t_je[i] = J[jE[i]];
        }
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            dN[i] = __t_jn[i] - __t_jc[i];
            dS[i] = __t_js[i] - __t_jc[i];
            dW[i] = __t_jw[i] - __t_jc[i];
            dE[i] = __t_je[i] - __t_jc[i];
            float g2 = (dN[i] * dN[i] + dS[i] * dS[i] + dW[i] * dW[i] + dE[i] * dE[i]) / (__t_jc[i] * __t_jc[i] + 0.001);
            float l = (dN[i] + dS[i] + dW[i] + dE[i]) / (__t_jc[i] + 0.001);
            float num = 0.5 * g2 - 0.0625 * l * l;
            float den = 1.0 + 0.25 * l;
            float qsqr = num / (den * den + 0.001);
            den = (qsqr - 0.25) / (0.25 * (1.0 + 0.25) + 0.001);
            c[i] = 1.0 / (1.0 + den) + exp(-qsqr) * 0.001 + sqrt(fabs(den) + 0.001) * 0.01 + log(fabs(qsqr) + 1.0) * 0.001 + sqrt(g2 + 1.0) * 0.0001 + exp(-l * l) * 0.0001 + exp(-g2 * 0.5) * 0.0001 + sqrt(fabs(l) + 1.0) * 0.0001;
        }
    }
    return 0;
}
