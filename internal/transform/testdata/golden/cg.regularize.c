// golden: cg with regularize
float ad0[16384];

float ad1[16384];

float ad2[16384];

float ad3[16384];

float x[16384];

float q[16384];

float z[16384];

int n;

int iters;

int main() {
    int it;
    int i;
    n = 16384;
    iters = 80;
    for (it = 0; it < iters; it++) {
        #pragma offload target(mic:0) in(ad0 : length(n), ad1 : length(n), ad2 : length(n), ad3 : length(n), x : length(n)) out(q : length(n))
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            q[i] = ad0[i] * x[i] + ad1[i] * x[i] * 0.5 + ad2[i] * x[i] * 0.25 + ad3[i] * x[i] * 0.125;
        }
        #pragma offload target(mic:0) in(q : length(n)) inout(z : length(n), x : length(n))
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            z[i] = z[i] + 0.3 * q[i];
            x[i] = x[i] * 0.999 + z[i] * 0.001;
        }
    }
    return 0;
}
