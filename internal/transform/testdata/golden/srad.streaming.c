// golden: srad with streaming
float J[25000];

int iN[24576];

int iS[24576];

int jW[24576];

int jE[24576];

float dN[24576];

float dS[24576];

float dW[24576];

float dE[24576];

float c[24576];

int n;

int main() {
    int i;
    n = 24576;
    #pragma offload target(mic:0) in(J : length(25000), iN : length(n), iS : length(n), jW : length(n), jE : length(n)) out(dN : length(n), dS : length(n), dW : length(n), dE : length(n), c : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        float jc = J[i];
        float jn = J[iN[i]];
        float js = J[iS[i]];
        float jw = J[jW[i]];
        float je = J[jE[i]];
        dN[i] = jn - jc;
        dS[i] = js - jc;
        dW[i] = jw - jc;
        dE[i] = je - jc;
        float g2 = (dN[i] * dN[i] + dS[i] * dS[i] + dW[i] * dW[i] + dE[i] * dE[i]) / (jc * jc + 0.001);
        float l = (dN[i] + dS[i] + dW[i] + dE[i]) / (jc + 0.001);
        float num = 0.5 * g2 - 0.0625 * l * l;
        float den = 1.0 + 0.25 * l;
        float qsqr = num / (den * den + 0.001);
        den = (qsqr - 0.25) / (0.25 * (1.0 + 0.25) + 0.001);
        c[i] = 1.0 / (1.0 + den) + exp(-qsqr) * 0.001 + sqrt(fabs(den) + 0.001) * 0.01 + log(fabs(qsqr) + 1.0) * 0.001 + sqrt(g2 + 1.0) * 0.0001 + exp(-l * l) * 0.0001 + exp(-g2 * 0.5) * 0.0001 + sqrt(fabs(l) + 1.0) * 0.0001;
    }
    return 0;
}
