// golden: cfd with streaming
// applied: stream at 19:9: pipelined into 4 blocks (reduceMemory=true persistent=true)
// applied: stream at 33:9: pipelined into 4 blocks (reduceMemory=true persistent=true)
float density[3072];

float momentum[3072];

float energy[3072];

float stepf[3072];

float flux[3072];

int nb[3072];

int n;

int iters;

int __sig_a;

int __sig_b;

float *__density_s1;

float *__density_s2;

float *__momentum_s1;

float *__momentum_s2;

float *__stepf_o;

int __sig_a5;

int __sig_b6;

float *__flux_s1;

float *__flux_s2;

float *__stepf_s1;

float *__stepf_s2;

float *__density_s17;

float *__density_s28;

float *__momentum_s19;

float *__momentum_s210;

float *__energy_s1;

float *__energy_s2;

int main() {
    int it;
    int i;
    n = 3072;
    iters = 200;
    for (it = 0; it < iters; it++) {
        {
            int __n1 = n - 0;
            int __base3 = 0;
            int __bs2 = (__n1 + 3) / 4;
            #pragma offload_transfer target(mic:0) in(n) nocopy(__density_s1 : length(__bs2) alloc_if(1) free_if(0), __density_s2 : length(__bs2) alloc_if(1) free_if(0), __momentum_s1 : length(__bs2) alloc_if(1) free_if(0), __momentum_s2 : length(__bs2) alloc_if(1) free_if(0), __stepf_o : length(__bs2) alloc_if(1) free_if(0))
            int __len5 = __bs2;
            if (0 + __bs2 > __n1) {
                __len5 = __n1 - 0;
            }
            #pragma offload_transfer target(mic:0) in(density[__base3 + 0 : __len5] : into(__density_s1[0 : __len5]) alloc_if(0) free_if(0), momentum[__base3 + 0 : __len5] : into(__momentum_s1[0 : __len5]) alloc_if(0) free_if(0)) signal(&__sig_a)
            for (int __blk4 = 0; __blk4 < 4; __blk4++) {
                int __off6 = __blk4 * __bs2;
                int __len7 = __bs2;
                if (__off6 + __bs2 > __n1) {
                    __len7 = __n1 - __off6;
                }
                if (__len7 > 0) {
                    if (__blk4 % 2 == 0) {
                        if (__blk4 + 1 < 4) {
                            int __noff8 = (__blk4 + 1) * __bs2;
                            int __nlen9 = __bs2;
                            if (__noff8 + __bs2 > __n1) {
                                __nlen9 = __n1 - __noff8;
                            }
                            if (__nlen9 > 0) {
                                #pragma offload_transfer target(mic:0) in(density[__base3 + __noff8 : __nlen9] : into(__density_s2[0 : __nlen9]) alloc_if(0) free_if(0), momentum[__base3 + __noff8 : __nlen9] : into(__momentum_s2[0 : __nlen9]) alloc_if(0) free_if(0)) signal(&__sig_b)
                            }
                        }
                        #pragma offload target(mic:0) out(__stepf_o[0 : __len7] : into(stepf[__base3 + __off6 : __len7]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_a)
                        #pragma omp parallel for
                        for (int __j10 = 0; __j10 < __len7; __j10++) {
                            __stepf_o[__j10] = 0.5 / (sqrt(fabs(__density_s1[__j10]) + 1.0) + __momentum_s1[__j10] * __momentum_s1[__j10]);
                        }
                    } else {
                        if (__blk4 + 1 < 4) {
                            int __noff11 = (__blk4 + 1) * __bs2;
                            int __nlen12 = __bs2;
                            if (__noff11 + __bs2 > __n1) {
                                __nlen12 = __n1 - __noff11;
                            }
                            if (__nlen12 > 0) {
                                #pragma offload_transfer target(mic:0) in(density[__base3 + __noff11 : __nlen12] : into(__density_s1[0 : __nlen12]) alloc_if(0) free_if(0), momentum[__base3 + __noff11 : __nlen12] : into(__momentum_s1[0 : __nlen12]) alloc_if(0) free_if(0)) signal(&__sig_a)
                            }
                        }
                        #pragma offload target(mic:0) out(__stepf_o[0 : __len7] : into(stepf[__base3 + __off6 : __len7]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_b)
                        #pragma omp parallel for
                        for (int __j13 = 0; __j13 < __len7; __j13++) {
                            __stepf_o[__j13] = 0.5 / (sqrt(fabs(__density_s2[__j13]) + 1.0) + __momentum_s2[__j13] * __momentum_s2[__j13]);
                        }
                    }
                }
            }
            #pragma offload_transfer target(mic:0) nocopy(__density_s1 : length(1) alloc_if(0) free_if(1), __density_s2 : length(1) alloc_if(0) free_if(1), __momentum_s1 : length(1) alloc_if(0) free_if(1), __momentum_s2 : length(1) alloc_if(0) free_if(1), __stepf_o : length(1) alloc_if(0) free_if(1))
        }
        #pragma offload target(mic:0) in(density : length(n), stepf : length(n), nb : length(n)) out(flux : length(n))
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            float f = density[i] * stepf[i];
            if (nb[i] >= 0) {
                f += density[nb[i]] * 0.25;
            }
            flux[i] = f;
        }
        {
            int __n1 = n - 0;
            int __base3 = 0;
            int __bs2 = (__n1 + 3) / 4;
            #pragma offload_transfer target(mic:0) in(n) nocopy(__flux_s1 : length(__bs2) alloc_if(1) free_if(0), __flux_s2 : length(__bs2) alloc_if(1) free_if(0), __stepf_s1 : length(__bs2) alloc_if(1) free_if(0), __stepf_s2 : length(__bs2) alloc_if(1) free_if(0), __density_s17 : length(__bs2) alloc_if(1) free_if(0), __density_s28 : length(__bs2) alloc_if(1) free_if(0), __momentum_s19 : length(__bs2) alloc_if(1) free_if(0), __momentum_s210 : length(__bs2) alloc_if(1) free_if(0), __energy_s1 : length(__bs2) alloc_if(1) free_if(0), __energy_s2 : length(__bs2) alloc_if(1) free_if(0))
            int __len11 = __bs2;
            if (0 + __bs2 > __n1) {
                __len11 = __n1 - 0;
            }
            #pragma offload_transfer target(mic:0) in(flux[__base3 + 0 : __len11] : into(__flux_s1[0 : __len11]) alloc_if(0) free_if(0), stepf[__base3 + 0 : __len11] : into(__stepf_s1[0 : __len11]) alloc_if(0) free_if(0), density[__base3 + 0 : __len11] : into(__density_s17[0 : __len11]) alloc_if(0) free_if(0), momentum[__base3 + 0 : __len11] : into(__momentum_s19[0 : __len11]) alloc_if(0) free_if(0), energy[__base3 + 0 : __len11] : into(__energy_s1[0 : __len11]) alloc_if(0) free_if(0)) signal(&__sig_a5)
            for (int __blk4 = 0; __blk4 < 4; __blk4++) {
                int __off12 = __blk4 * __bs2;
                int __len13 = __bs2;
                if (__off12 + __bs2 > __n1) {
                    __len13 = __n1 - __off12;
                }
                if (__len13 > 0) {
                    if (__blk4 % 2 == 0) {
                        if (__blk4 + 1 < 4) {
                            int __noff14 = (__blk4 + 1) * __bs2;
                            int __nlen15 = __bs2;
                            if (__noff14 + __bs2 > __n1) {
                                __nlen15 = __n1 - __noff14;
                            }
                            if (__nlen15 > 0) {
                                #pragma offload_transfer target(mic:0) in(flux[__base3 + __noff14 : __nlen15] : into(__flux_s2[0 : __nlen15]) alloc_if(0) free_if(0), stepf[__base3 + __noff14 : __nlen15] : into(__stepf_s2[0 : __nlen15]) alloc_if(0) free_if(0), density[__base3 + __noff14 : __nlen15] : into(__density_s28[0 : __nlen15]) alloc_if(0) free_if(0), momentum[__base3 + __noff14 : __nlen15] : into(__momentum_s210[0 : __nlen15]) alloc_if(0) free_if(0), energy[__base3 + __noff14 : __nlen15] : into(__energy_s2[0 : __nlen15]) alloc_if(0) free_if(0)) signal(&__sig_b6)
                            }
                        }
                        #pragma offload target(mic:0) out(__density_s17[0 : __len13] : into(density[__base3 + __off12 : __len13]) alloc_if(0) free_if(0), __momentum_s19[0 : __len13] : into(momentum[__base3 + __off12 : __len13]) alloc_if(0) free_if(0), __energy_s1[0 : __len13] : into(energy[__base3 + __off12 : __len13]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_a5)
                        #pragma omp parallel for
                        for (int __j16 = 0; __j16 < __len13; __j16++) {
                            __density_s17[__j16] = __density_s17[__j16] + __flux_s1[__j16] * __stepf_s1[__j16];
                            __momentum_s19[__j16] = __momentum_s19[__j16] * 0.9995;
                            __energy_s1[__j16] = __energy_s1[__j16] + __flux_s1[__j16] * 0.125;
                        }
                    } else {
                        if (__blk4 + 1 < 4) {
                            int __noff17 = (__blk4 + 1) * __bs2;
                            int __nlen18 = __bs2;
                            if (__noff17 + __bs2 > __n1) {
                                __nlen18 = __n1 - __noff17;
                            }
                            if (__nlen18 > 0) {
                                #pragma offload_transfer target(mic:0) in(flux[__base3 + __noff17 : __nlen18] : into(__flux_s1[0 : __nlen18]) alloc_if(0) free_if(0), stepf[__base3 + __noff17 : __nlen18] : into(__stepf_s1[0 : __nlen18]) alloc_if(0) free_if(0), density[__base3 + __noff17 : __nlen18] : into(__density_s17[0 : __nlen18]) alloc_if(0) free_if(0), momentum[__base3 + __noff17 : __nlen18] : into(__momentum_s19[0 : __nlen18]) alloc_if(0) free_if(0), energy[__base3 + __noff17 : __nlen18] : into(__energy_s1[0 : __nlen18]) alloc_if(0) free_if(0)) signal(&__sig_a5)
                            }
                        }
                        #pragma offload target(mic:0) out(__density_s28[0 : __len13] : into(density[__base3 + __off12 : __len13]) alloc_if(0) free_if(0), __momentum_s210[0 : __len13] : into(momentum[__base3 + __off12 : __len13]) alloc_if(0) free_if(0), __energy_s2[0 : __len13] : into(energy[__base3 + __off12 : __len13]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_b6)
                        #pragma omp parallel for
                        for (int __j19 = 0; __j19 < __len13; __j19++) {
                            __density_s28[__j19] = __density_s28[__j19] + __flux_s2[__j19] * __stepf_s2[__j19];
                            __momentum_s210[__j19] = __momentum_s210[__j19] * 0.9995;
                            __energy_s2[__j19] = __energy_s2[__j19] + __flux_s2[__j19] * 0.125;
                        }
                    }
                }
            }
            #pragma offload_transfer target(mic:0) nocopy(__flux_s1 : length(1) alloc_if(0) free_if(1), __flux_s2 : length(1) alloc_if(0) free_if(1), __stepf_s1 : length(1) alloc_if(0) free_if(1), __stepf_s2 : length(1) alloc_if(0) free_if(1), __density_s17 : length(1) alloc_if(0) free_if(1), __density_s28 : length(1) alloc_if(0) free_if(1), __momentum_s19 : length(1) alloc_if(0) free_if(1), __momentum_s210 : length(1) alloc_if(0) free_if(1), __energy_s1 : length(1) alloc_if(0) free_if(1), __energy_s2 : length(1) alloc_if(0) free_if(1))
        }
    }
    return 0;
}
