// golden: cfd with streaming
// applied: stream at 19:9: pipelined into 4 blocks (reduceMemory=true persistent=true)
// applied: stream at 33:9: pipelined into 4 blocks (reduceMemory=true persistent=true)
float density[3072];

float momentum[3072];

float energy[3072];

float stepf[3072];

float flux[3072];

int nb[3072];

int n;

int iters;

int __sig_a;

int __sig_b;

float *__density_s1;

float *__density_s2;

float *__momentum_s1;

float *__momentum_s2;

float *__stepf_o;

int __sig_a18;

int __sig_b19;

float *__flux_s1;

float *__flux_s2;

float *__stepf_s1;

float *__stepf_s2;

float *__density_s120;

float *__density_s221;

float *__momentum_s122;

float *__momentum_s223;

float *__energy_s1;

float *__energy_s2;

int main() {
    int it;
    int i;
    n = 3072;
    iters = 200;
    for (it = 0; it < iters; it++) {
        {
            int __n1 = n - 0;
            int __base3 = 0;
            int __bs2 = (__n1 + 3) / 4;
            #pragma offload_transfer target(mic:0) in(n) nocopy(__density_s1 : length(__bs2) alloc_if(1) free_if(0), __density_s2 : length(__bs2) alloc_if(1) free_if(0), __momentum_s1 : length(__bs2) alloc_if(1) free_if(0), __momentum_s2 : length(__bs2) alloc_if(1) free_if(0), __stepf_o : length(__bs2) alloc_if(1) free_if(0))
            int __len5 = __bs2;
            if (0 + __bs2 > __n1) {
                __len5 = __n1 - 0;
            }
            #pragma offload_transfer target(mic:0) in(density[__base3 + 0 : __len5] : into(__density_s1[0 : __len5]) alloc_if(0) free_if(0), momentum[__base3 + 0 : __len5] : into(__momentum_s1[0 : __len5]) alloc_if(0) free_if(0)) signal(&__sig_a)
            for (int __blk4 = 0; __blk4 < 4; __blk4++) {
                int __off6 = __blk4 * __bs2;
                int __len7 = __bs2;
                if (__off6 + __bs2 > __n1) {
                    __len7 = __n1 - __off6;
                }
                if (__len7 > 0) {
                    if (__blk4 % 2 == 0) {
                        if (__blk4 + 1 < 4) {
                            int __noff8 = (__blk4 + 1) * __bs2;
                            int __nlen9 = __bs2;
                            if (__noff8 + __bs2 > __n1) {
                                __nlen9 = __n1 - __noff8;
                            }
                            if (__nlen9 > 0) {
                                #pragma offload_transfer target(mic:0) in(density[__base3 + __noff8 : __nlen9] : into(__density_s2[0 : __nlen9]) alloc_if(0) free_if(0), momentum[__base3 + __noff8 : __nlen9] : into(__momentum_s2[0 : __nlen9]) alloc_if(0) free_if(0)) signal(&__sig_b)
                            }
                        }
                        #pragma offload target(mic:0) out(__stepf_o[0 : __len7] : into(stepf[__base3 + __off6 : __len7]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_a)
                        #pragma omp parallel for
                        for (int __j10 = 0; __j10 < __len7; __j10++) {
                            __stepf_o[__j10] = 0.5 / (sqrt(fabs(__density_s1[__j10]) + 1.0) + __momentum_s1[__j10] * __momentum_s1[__j10]);
                        }
                    } else {
                        if (__blk4 + 1 < 4) {
                            int __noff11 = (__blk4 + 1) * __bs2;
                            int __nlen12 = __bs2;
                            if (__noff11 + __bs2 > __n1) {
                                __nlen12 = __n1 - __noff11;
                            }
                            if (__nlen12 > 0) {
                                #pragma offload_transfer target(mic:0) in(density[__base3 + __noff11 : __nlen12] : into(__density_s1[0 : __nlen12]) alloc_if(0) free_if(0), momentum[__base3 + __noff11 : __nlen12] : into(__momentum_s1[0 : __nlen12]) alloc_if(0) free_if(0)) signal(&__sig_a)
                            }
                        }
                        #pragma offload target(mic:0) out(__stepf_o[0 : __len7] : into(stepf[__base3 + __off6 : __len7]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_b)
                        #pragma omp parallel for
                        for (int __j13 = 0; __j13 < __len7; __j13++) {
                            __stepf_o[__j13] = 0.5 / (sqrt(fabs(__density_s2[__j13]) + 1.0) + __momentum_s2[__j13] * __momentum_s2[__j13]);
                        }
                    }
                }
            }
            #pragma offload_transfer target(mic:0) nocopy(__density_s1 : length(1) alloc_if(0) free_if(1), __density_s2 : length(1) alloc_if(0) free_if(1), __momentum_s1 : length(1) alloc_if(0) free_if(1), __momentum_s2 : length(1) alloc_if(0) free_if(1), __stepf_o : length(1) alloc_if(0) free_if(1))
        }
        #pragma offload target(mic:0) in(density : length(n), stepf : length(n), nb : length(n)) out(flux : length(n))
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            float f = density[i] * stepf[i];
            if (nb[i] >= 0) {
                f += density[nb[i]] * 0.25;
            }
            flux[i] = f;
        }
        {
            int __n14 = n - 0;
            int __base16 = 0;
            int __bs15 = (__n14 + 3) / 4;
            #pragma offload_transfer target(mic:0) in(n) nocopy(__flux_s1 : length(__bs15) alloc_if(1) free_if(0), __flux_s2 : length(__bs15) alloc_if(1) free_if(0), __stepf_s1 : length(__bs15) alloc_if(1) free_if(0), __stepf_s2 : length(__bs15) alloc_if(1) free_if(0), __density_s120 : length(__bs15) alloc_if(1) free_if(0), __density_s221 : length(__bs15) alloc_if(1) free_if(0), __momentum_s122 : length(__bs15) alloc_if(1) free_if(0), __momentum_s223 : length(__bs15) alloc_if(1) free_if(0), __energy_s1 : length(__bs15) alloc_if(1) free_if(0), __energy_s2 : length(__bs15) alloc_if(1) free_if(0))
            int __len24 = __bs15;
            if (0 + __bs15 > __n14) {
                __len24 = __n14 - 0;
            }
            #pragma offload_transfer target(mic:0) in(flux[__base16 + 0 : __len24] : into(__flux_s1[0 : __len24]) alloc_if(0) free_if(0), stepf[__base16 + 0 : __len24] : into(__stepf_s1[0 : __len24]) alloc_if(0) free_if(0), density[__base16 + 0 : __len24] : into(__density_s120[0 : __len24]) alloc_if(0) free_if(0), momentum[__base16 + 0 : __len24] : into(__momentum_s122[0 : __len24]) alloc_if(0) free_if(0), energy[__base16 + 0 : __len24] : into(__energy_s1[0 : __len24]) alloc_if(0) free_if(0)) signal(&__sig_a18)
            for (int __blk17 = 0; __blk17 < 4; __blk17++) {
                int __off25 = __blk17 * __bs15;
                int __len26 = __bs15;
                if (__off25 + __bs15 > __n14) {
                    __len26 = __n14 - __off25;
                }
                if (__len26 > 0) {
                    if (__blk17 % 2 == 0) {
                        if (__blk17 + 1 < 4) {
                            int __noff27 = (__blk17 + 1) * __bs15;
                            int __nlen28 = __bs15;
                            if (__noff27 + __bs15 > __n14) {
                                __nlen28 = __n14 - __noff27;
                            }
                            if (__nlen28 > 0) {
                                #pragma offload_transfer target(mic:0) in(flux[__base16 + __noff27 : __nlen28] : into(__flux_s2[0 : __nlen28]) alloc_if(0) free_if(0), stepf[__base16 + __noff27 : __nlen28] : into(__stepf_s2[0 : __nlen28]) alloc_if(0) free_if(0), density[__base16 + __noff27 : __nlen28] : into(__density_s221[0 : __nlen28]) alloc_if(0) free_if(0), momentum[__base16 + __noff27 : __nlen28] : into(__momentum_s223[0 : __nlen28]) alloc_if(0) free_if(0), energy[__base16 + __noff27 : __nlen28] : into(__energy_s2[0 : __nlen28]) alloc_if(0) free_if(0)) signal(&__sig_b19)
                            }
                        }
                        #pragma offload target(mic:0) out(__density_s120[0 : __len26] : into(density[__base16 + __off25 : __len26]) alloc_if(0) free_if(0), __momentum_s122[0 : __len26] : into(momentum[__base16 + __off25 : __len26]) alloc_if(0) free_if(0), __energy_s1[0 : __len26] : into(energy[__base16 + __off25 : __len26]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_a18)
                        #pragma omp parallel for
                        for (int __j29 = 0; __j29 < __len26; __j29++) {
                            __density_s120[__j29] = __density_s120[__j29] + __flux_s1[__j29] * __stepf_s1[__j29];
                            __momentum_s122[__j29] = __momentum_s122[__j29] * 0.9995;
                            __energy_s1[__j29] = __energy_s1[__j29] + __flux_s1[__j29] * 0.125;
                        }
                    } else {
                        if (__blk17 + 1 < 4) {
                            int __noff30 = (__blk17 + 1) * __bs15;
                            int __nlen31 = __bs15;
                            if (__noff30 + __bs15 > __n14) {
                                __nlen31 = __n14 - __noff30;
                            }
                            if (__nlen31 > 0) {
                                #pragma offload_transfer target(mic:0) in(flux[__base16 + __noff30 : __nlen31] : into(__flux_s1[0 : __nlen31]) alloc_if(0) free_if(0), stepf[__base16 + __noff30 : __nlen31] : into(__stepf_s1[0 : __nlen31]) alloc_if(0) free_if(0), density[__base16 + __noff30 : __nlen31] : into(__density_s120[0 : __nlen31]) alloc_if(0) free_if(0), momentum[__base16 + __noff30 : __nlen31] : into(__momentum_s122[0 : __nlen31]) alloc_if(0) free_if(0), energy[__base16 + __noff30 : __nlen31] : into(__energy_s1[0 : __nlen31]) alloc_if(0) free_if(0)) signal(&__sig_a18)
                            }
                        }
                        #pragma offload target(mic:0) out(__density_s221[0 : __len26] : into(density[__base16 + __off25 : __len26]) alloc_if(0) free_if(0), __momentum_s223[0 : __len26] : into(momentum[__base16 + __off25 : __len26]) alloc_if(0) free_if(0), __energy_s2[0 : __len26] : into(energy[__base16 + __off25 : __len26]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_b19)
                        #pragma omp parallel for
                        for (int __j32 = 0; __j32 < __len26; __j32++) {
                            __density_s221[__j32] = __density_s221[__j32] + __flux_s2[__j32] * __stepf_s2[__j32];
                            __momentum_s223[__j32] = __momentum_s223[__j32] * 0.9995;
                            __energy_s2[__j32] = __energy_s2[__j32] + __flux_s2[__j32] * 0.125;
                        }
                    }
                }
            }
            #pragma offload_transfer target(mic:0) nocopy(__flux_s1 : length(1) alloc_if(0) free_if(1), __flux_s2 : length(1) alloc_if(0) free_if(1), __stepf_s1 : length(1) alloc_if(0) free_if(1), __stepf_s2 : length(1) alloc_if(0) free_if(1), __density_s120 : length(1) alloc_if(0) free_if(1), __density_s221 : length(1) alloc_if(0) free_if(1), __momentum_s122 : length(1) alloc_if(0) free_if(1), __momentum_s223 : length(1) alloc_if(0) free_if(1), __energy_s1 : length(1) alloc_if(0) free_if(1), __energy_s2 : length(1) alloc_if(0) free_if(1))
        }
    }
    return 0;
}
