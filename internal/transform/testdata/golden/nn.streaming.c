// golden: nn with streaming
float recs[262144];

float dist[32768];

float tlat;

float tlng;

int n;

int main() {
    int i;
    n = 32768;
    tlat = 30.0;
    tlng = 50.0;
    float seen = 0.0;
    for (i = 0; i < n; i++) {
        seen = seen + recs[8 * i] * 0.001;
        seen = seen - floor(seen);
    }
    #pragma offload target(mic:0) in(recs : length(8 * n)) out(dist : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        float dlat = recs[8 * i] - tlat;
        float dlng = recs[8 * i + 1] - tlng;
        dist[i] = sqrt(dlat * dlat + dlng * dlng) + exp(-fabs(dlat) * 0.01);
    }
    printf("seen %f\n", seen);
    return 0;
}
