// golden: cg with streaming
// applied: stream at 22:9: pipelined into 4 blocks (reduceMemory=true persistent=true)
// applied: stream at 28:9: pipelined into 4 blocks (reduceMemory=true persistent=true)
float ad0[16384];

float ad1[16384];

float ad2[16384];

float ad3[16384];

float x[16384];

float q[16384];

float z[16384];

int n;

int iters;

int __sig_a;

int __sig_b;

float *__ad0_s1;

float *__ad0_s2;

float *__ad1_s1;

float *__ad1_s2;

float *__ad2_s1;

float *__ad2_s2;

float *__ad3_s1;

float *__ad3_s2;

float *__x_s1;

float *__x_s2;

float *__q_o;

int __sig_a18;

int __sig_b19;

float *__q_s1;

float *__q_s2;

float *__z_s1;

float *__z_s2;

float *__x_s120;

float *__x_s221;

int main() {
    int it;
    int i;
    n = 16384;
    iters = 80;
    for (it = 0; it < iters; it++) {
        {
            int __n1 = n - 0;
            int __base3 = 0;
            int __bs2 = (__n1 + 3) / 4;
            #pragma offload_transfer target(mic:0) in(n) nocopy(__ad0_s1 : length(__bs2) alloc_if(1) free_if(0), __ad0_s2 : length(__bs2) alloc_if(1) free_if(0), __ad1_s1 : length(__bs2) alloc_if(1) free_if(0), __ad1_s2 : length(__bs2) alloc_if(1) free_if(0), __ad2_s1 : length(__bs2) alloc_if(1) free_if(0), __ad2_s2 : length(__bs2) alloc_if(1) free_if(0), __ad3_s1 : length(__bs2) alloc_if(1) free_if(0), __ad3_s2 : length(__bs2) alloc_if(1) free_if(0), __x_s1 : length(__bs2) alloc_if(1) free_if(0), __x_s2 : length(__bs2) alloc_if(1) free_if(0), __q_o : length(__bs2) alloc_if(1) free_if(0))
            int __len5 = __bs2;
            if (0 + __bs2 > __n1) {
                __len5 = __n1 - 0;
            }
            #pragma offload_transfer target(mic:0) in(ad0[__base3 + 0 : __len5] : into(__ad0_s1[0 : __len5]) alloc_if(0) free_if(0), ad1[__base3 + 0 : __len5] : into(__ad1_s1[0 : __len5]) alloc_if(0) free_if(0), ad2[__base3 + 0 : __len5] : into(__ad2_s1[0 : __len5]) alloc_if(0) free_if(0), ad3[__base3 + 0 : __len5] : into(__ad3_s1[0 : __len5]) alloc_if(0) free_if(0), x[__base3 + 0 : __len5] : into(__x_s1[0 : __len5]) alloc_if(0) free_if(0)) signal(&__sig_a)
            for (int __blk4 = 0; __blk4 < 4; __blk4++) {
                int __off6 = __blk4 * __bs2;
                int __len7 = __bs2;
                if (__off6 + __bs2 > __n1) {
                    __len7 = __n1 - __off6;
                }
                if (__len7 > 0) {
                    if (__blk4 % 2 == 0) {
                        if (__blk4 + 1 < 4) {
                            int __noff8 = (__blk4 + 1) * __bs2;
                            int __nlen9 = __bs2;
                            if (__noff8 + __bs2 > __n1) {
                                __nlen9 = __n1 - __noff8;
                            }
                            if (__nlen9 > 0) {
                                #pragma offload_transfer target(mic:0) in(ad0[__base3 + __noff8 : __nlen9] : into(__ad0_s2[0 : __nlen9]) alloc_if(0) free_if(0), ad1[__base3 + __noff8 : __nlen9] : into(__ad1_s2[0 : __nlen9]) alloc_if(0) free_if(0), ad2[__base3 + __noff8 : __nlen9] : into(__ad2_s2[0 : __nlen9]) alloc_if(0) free_if(0), ad3[__base3 + __noff8 : __nlen9] : into(__ad3_s2[0 : __nlen9]) alloc_if(0) free_if(0), x[__base3 + __noff8 : __nlen9] : into(__x_s2[0 : __nlen9]) alloc_if(0) free_if(0)) signal(&__sig_b)
                            }
                        }
                        #pragma offload target(mic:0) out(__q_o[0 : __len7] : into(q[__base3 + __off6 : __len7]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_a)
                        #pragma omp parallel for
                        for (int __j10 = 0; __j10 < __len7; __j10++) {
                            __q_o[__j10] = __ad0_s1[__j10] * __x_s1[__j10] + __ad1_s1[__j10] * __x_s1[__j10] * 0.5 + __ad2_s1[__j10] * __x_s1[__j10] * 0.25 + __ad3_s1[__j10] * __x_s1[__j10] * 0.125;
                        }
                    } else {
                        if (__blk4 + 1 < 4) {
                            int __noff11 = (__blk4 + 1) * __bs2;
                            int __nlen12 = __bs2;
                            if (__noff11 + __bs2 > __n1) {
                                __nlen12 = __n1 - __noff11;
                            }
                            if (__nlen12 > 0) {
                                #pragma offload_transfer target(mic:0) in(ad0[__base3 + __noff11 : __nlen12] : into(__ad0_s1[0 : __nlen12]) alloc_if(0) free_if(0), ad1[__base3 + __noff11 : __nlen12] : into(__ad1_s1[0 : __nlen12]) alloc_if(0) free_if(0), ad2[__base3 + __noff11 : __nlen12] : into(__ad2_s1[0 : __nlen12]) alloc_if(0) free_if(0), ad3[__base3 + __noff11 : __nlen12] : into(__ad3_s1[0 : __nlen12]) alloc_if(0) free_if(0), x[__base3 + __noff11 : __nlen12] : into(__x_s1[0 : __nlen12]) alloc_if(0) free_if(0)) signal(&__sig_a)
                            }
                        }
                        #pragma offload target(mic:0) out(__q_o[0 : __len7] : into(q[__base3 + __off6 : __len7]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_b)
                        #pragma omp parallel for
                        for (int __j13 = 0; __j13 < __len7; __j13++) {
                            __q_o[__j13] = __ad0_s2[__j13] * __x_s2[__j13] + __ad1_s2[__j13] * __x_s2[__j13] * 0.5 + __ad2_s2[__j13] * __x_s2[__j13] * 0.25 + __ad3_s2[__j13] * __x_s2[__j13] * 0.125;
                        }
                    }
                }
            }
            #pragma offload_transfer target(mic:0) nocopy(__ad0_s1 : length(1) alloc_if(0) free_if(1), __ad0_s2 : length(1) alloc_if(0) free_if(1), __ad1_s1 : length(1) alloc_if(0) free_if(1), __ad1_s2 : length(1) alloc_if(0) free_if(1), __ad2_s1 : length(1) alloc_if(0) free_if(1), __ad2_s2 : length(1) alloc_if(0) free_if(1), __ad3_s1 : length(1) alloc_if(0) free_if(1), __ad3_s2 : length(1) alloc_if(0) free_if(1), __x_s1 : length(1) alloc_if(0) free_if(1), __x_s2 : length(1) alloc_if(0) free_if(1), __q_o : length(1) alloc_if(0) free_if(1))
        }
        {
            int __n14 = n - 0;
            int __base16 = 0;
            int __bs15 = (__n14 + 3) / 4;
            #pragma offload_transfer target(mic:0) in(n) nocopy(__q_s1 : length(__bs15) alloc_if(1) free_if(0), __q_s2 : length(__bs15) alloc_if(1) free_if(0), __z_s1 : length(__bs15) alloc_if(1) free_if(0), __z_s2 : length(__bs15) alloc_if(1) free_if(0), __x_s120 : length(__bs15) alloc_if(1) free_if(0), __x_s221 : length(__bs15) alloc_if(1) free_if(0))
            int __len22 = __bs15;
            if (0 + __bs15 > __n14) {
                __len22 = __n14 - 0;
            }
            #pragma offload_transfer target(mic:0) in(q[__base16 + 0 : __len22] : into(__q_s1[0 : __len22]) alloc_if(0) free_if(0), z[__base16 + 0 : __len22] : into(__z_s1[0 : __len22]) alloc_if(0) free_if(0), x[__base16 + 0 : __len22] : into(__x_s120[0 : __len22]) alloc_if(0) free_if(0)) signal(&__sig_a18)
            for (int __blk17 = 0; __blk17 < 4; __blk17++) {
                int __off23 = __blk17 * __bs15;
                int __len24 = __bs15;
                if (__off23 + __bs15 > __n14) {
                    __len24 = __n14 - __off23;
                }
                if (__len24 > 0) {
                    if (__blk17 % 2 == 0) {
                        if (__blk17 + 1 < 4) {
                            int __noff25 = (__blk17 + 1) * __bs15;
                            int __nlen26 = __bs15;
                            if (__noff25 + __bs15 > __n14) {
                                __nlen26 = __n14 - __noff25;
                            }
                            if (__nlen26 > 0) {
                                #pragma offload_transfer target(mic:0) in(q[__base16 + __noff25 : __nlen26] : into(__q_s2[0 : __nlen26]) alloc_if(0) free_if(0), z[__base16 + __noff25 : __nlen26] : into(__z_s2[0 : __nlen26]) alloc_if(0) free_if(0), x[__base16 + __noff25 : __nlen26] : into(__x_s221[0 : __nlen26]) alloc_if(0) free_if(0)) signal(&__sig_b19)
                            }
                        }
                        #pragma offload target(mic:0) out(__z_s1[0 : __len24] : into(z[__base16 + __off23 : __len24]) alloc_if(0) free_if(0), __x_s120[0 : __len24] : into(x[__base16 + __off23 : __len24]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_a18)
                        #pragma omp parallel for
                        for (int __j27 = 0; __j27 < __len24; __j27++) {
                            __z_s1[__j27] = __z_s1[__j27] + 0.3 * __q_s1[__j27];
                            __x_s120[__j27] = __x_s120[__j27] * 0.999 + __z_s1[__j27] * 0.001;
                        }
                    } else {
                        if (__blk17 + 1 < 4) {
                            int __noff28 = (__blk17 + 1) * __bs15;
                            int __nlen29 = __bs15;
                            if (__noff28 + __bs15 > __n14) {
                                __nlen29 = __n14 - __noff28;
                            }
                            if (__nlen29 > 0) {
                                #pragma offload_transfer target(mic:0) in(q[__base16 + __noff28 : __nlen29] : into(__q_s1[0 : __nlen29]) alloc_if(0) free_if(0), z[__base16 + __noff28 : __nlen29] : into(__z_s1[0 : __nlen29]) alloc_if(0) free_if(0), x[__base16 + __noff28 : __nlen29] : into(__x_s120[0 : __nlen29]) alloc_if(0) free_if(0)) signal(&__sig_a18)
                            }
                        }
                        #pragma offload target(mic:0) out(__z_s2[0 : __len24] : into(z[__base16 + __off23 : __len24]) alloc_if(0) free_if(0), __x_s221[0 : __len24] : into(x[__base16 + __off23 : __len24]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_b19)
                        #pragma omp parallel for
                        for (int __j30 = 0; __j30 < __len24; __j30++) {
                            __z_s2[__j30] = __z_s2[__j30] + 0.3 * __q_s2[__j30];
                            __x_s221[__j30] = __x_s221[__j30] * 0.999 + __z_s2[__j30] * 0.001;
                        }
                    }
                }
            }
            #pragma offload_transfer target(mic:0) nocopy(__q_s1 : length(1) alloc_if(0) free_if(1), __q_s2 : length(1) alloc_if(0) free_if(1), __z_s1 : length(1) alloc_if(0) free_if(1), __z_s2 : length(1) alloc_if(0) free_if(1), __x_s120 : length(1) alloc_if(0) free_if(1), __x_s221 : length(1) alloc_if(0) free_if(1))
        }
    }
    return 0;
}
