// golden: nn with combined
// applied: reorder at 21:5: regularized 2 accesses (gathers pipelined into streaming)
// applied: pipeline-gather at 21:5: 2 gathers overlapped with transfer and compute
// applied: stream at 21:5: pipelined into 4 blocks (reduceMemory=true persistent=true)
float recs[262144];

float dist[32768];

float tlat;

float tlng;

int n;

float *__recs_r;

float *__recs_r1;

int __sig_a;

int __sig_b;

int __ksig;

float *____recs_r_s1;

float *____recs_r_s2;

float *____recs_r1_s1;

float *____recs_r1_s2;

float *__dist_o;

int main() {
    int i;
    n = 32768;
    tlat = 30.0;
    tlng = 50.0;
    float seen = 0.0;
    for (i = 0; i < n; i++) {
        seen = seen + recs[8 * i] * 0.001;
        seen = seen - floor(seen);
    }
    __recs_r = malloc(n * sizeof(float));
    __recs_r1 = malloc(n * sizeof(float));
    {
        int __n2 = n - 0;
        int __base4 = 0;
        int __bs3 = (__n2 + 3) / 4;
        #pragma offload_transfer target(mic:0) in(n, tlat, tlng) nocopy(____recs_r_s1 : length(__bs3) alloc_if(1) free_if(0), ____recs_r_s2 : length(__bs3) alloc_if(1) free_if(0), ____recs_r1_s1 : length(__bs3) alloc_if(1) free_if(0), ____recs_r1_s2 : length(__bs3) alloc_if(1) free_if(0), __dist_o : length(__bs3) alloc_if(1) free_if(0))
        int __len6 = __bs3;
        if (0 + __bs3 > __n2) {
            __len6 = __n2 - 0;
        }
        for (int __gv7 = __base4; __gv7 < __base4 + __len6; __gv7++) {
            __recs_r[__gv7] = recs[8 * __gv7];
        }
        for (int __gv8 = __base4; __gv8 < __base4 + __len6; __gv8++) {
            __recs_r1[__gv8] = recs[8 * __gv8 + 1];
        }
        int __len9 = __bs3;
        if (__bs3 + __bs3 > __n2) {
            __len9 = __n2 - __bs3;
        }
        if (__len9 > 0) {
            for (int __gv10 = (__base4 + __bs3); __gv10 < (__base4 + __bs3) + __len9; __gv10++) {
                __recs_r[__gv10] = recs[8 * __gv10];
            }
            for (int __gv11 = (__base4 + __bs3); __gv11 < (__base4 + __bs3) + __len9; __gv11++) {
                __recs_r1[__gv11] = recs[8 * __gv11 + 1];
            }
        }
        #pragma offload_transfer target(mic:0) in(__recs_r[__base4 + 0 : __len6] : into(____recs_r_s1[0 : __len6]) alloc_if(0) free_if(0), __recs_r1[__base4 + 0 : __len6] : into(____recs_r1_s1[0 : __len6]) alloc_if(0) free_if(0)) signal(&__sig_a)
        for (int __blk5 = 0; __blk5 < 4; __blk5++) {
            int __off12 = __blk5 * __bs3;
            int __len13 = __bs3;
            if (__off12 + __bs3 > __n2) {
                __len13 = __n2 - __off12;
            }
            if (__len13 > 0) {
                if (__blk5 % 2 == 0) {
                    if (__blk5 + 1 < 4) {
                        int __noff14 = (__blk5 + 1) * __bs3;
                        int __nlen15 = __bs3;
                        if (__noff14 + __bs3 > __n2) {
                            __nlen15 = __n2 - __noff14;
                        }
                        if (__nlen15 > 0) {
                            #pragma offload_transfer target(mic:0) in(__recs_r[__base4 + __noff14 : __nlen15] : into(____recs_r_s2[0 : __nlen15]) alloc_if(0) free_if(0), __recs_r1[__base4 + __noff14 : __nlen15] : into(____recs_r1_s2[0 : __nlen15]) alloc_if(0) free_if(0)) signal(&__sig_b)
                        }
                    }
                    #pragma offload target(mic:0) out(__dist_o[0 : __len13] : into(dist[__base4 + __off12 : __len13]) alloc_if(0) free_if(0)) persist(1) signal(&__ksig) wait(&__sig_a)
                    #pragma omp parallel for
                    for (int __j16 = 0; __j16 < __len13; __j16++) {
                        float dlat = ____recs_r_s1[__j16] - tlat;
                        float dlng = ____recs_r1_s1[__j16] - tlng;
                        __dist_o[__j16] = sqrt(dlat * dlat + dlng * dlng) + exp(-fabs(dlat) * 0.01);
                    }
                    if (__blk5 + 2 < 4) {
                        int __goff17 = (__blk5 + 2) * __bs3;
                        int __glen18 = __bs3;
                        if (__goff17 + __bs3 > __n2) {
                            __glen18 = __n2 - __goff17;
                        }
                        if (__glen18 > 0) {
                            for (int __gv19 = (__base4 + __goff17); __gv19 < (__base4 + __goff17) + __glen18; __gv19++) {
                                __recs_r[__gv19] = recs[8 * __gv19];
                            }
                            for (int __gv20 = (__base4 + __goff17); __gv20 < (__base4 + __goff17) + __glen18; __gv20++) {
                                __recs_r1[__gv20] = recs[8 * __gv20 + 1];
                            }
                        }
                    }
                    #pragma offload_wait target(mic:0) wait(&__ksig)
                } else {
                    if (__blk5 + 1 < 4) {
                        int __noff21 = (__blk5 + 1) * __bs3;
                        int __nlen22 = __bs3;
                        if (__noff21 + __bs3 > __n2) {
                            __nlen22 = __n2 - __noff21;
                        }
                        if (__nlen22 > 0) {
                            #pragma offload_transfer target(mic:0) in(__recs_r[__base4 + __noff21 : __nlen22] : into(____recs_r_s1[0 : __nlen22]) alloc_if(0) free_if(0), __recs_r1[__base4 + __noff21 : __nlen22] : into(____recs_r1_s1[0 : __nlen22]) alloc_if(0) free_if(0)) signal(&__sig_a)
                        }
                    }
                    #pragma offload target(mic:0) out(__dist_o[0 : __len13] : into(dist[__base4 + __off12 : __len13]) alloc_if(0) free_if(0)) persist(1) signal(&__ksig) wait(&__sig_b)
                    #pragma omp parallel for
                    for (int __j23 = 0; __j23 < __len13; __j23++) {
                        float dlat = ____recs_r_s2[__j23] - tlat;
                        float dlng = ____recs_r1_s2[__j23] - tlng;
                        __dist_o[__j23] = sqrt(dlat * dlat + dlng * dlng) + exp(-fabs(dlat) * 0.01);
                    }
                    if (__blk5 + 2 < 4) {
                        int __goff24 = (__blk5 + 2) * __bs3;
                        int __glen25 = __bs3;
                        if (__goff24 + __bs3 > __n2) {
                            __glen25 = __n2 - __goff24;
                        }
                        if (__glen25 > 0) {
                            for (int __gv26 = (__base4 + __goff24); __gv26 < (__base4 + __goff24) + __glen25; __gv26++) {
                                __recs_r[__gv26] = recs[8 * __gv26];
                            }
                            for (int __gv27 = (__base4 + __goff24); __gv27 < (__base4 + __goff24) + __glen25; __gv27++) {
                                __recs_r1[__gv27] = recs[8 * __gv27 + 1];
                            }
                        }
                    }
                    #pragma offload_wait target(mic:0) wait(&__ksig)
                }
            }
        }
        #pragma offload_transfer target(mic:0) nocopy(____recs_r_s1 : length(1) alloc_if(0) free_if(1), ____recs_r_s2 : length(1) alloc_if(0) free_if(1), ____recs_r1_s1 : length(1) alloc_if(0) free_if(1), ____recs_r1_s2 : length(1) alloc_if(0) free_if(1), __dist_o : length(1) alloc_if(0) free_if(1))
    }
    free(__recs_r);
    free(__recs_r1);
    printf("seen %f\n", seen);
    return 0;
}
