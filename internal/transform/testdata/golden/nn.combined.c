// golden: nn with combined
// applied: reorder at 21:5: regularized 2 accesses (gathers pipelined into streaming)
// applied: pipeline-gather at 21:5: 2 gathers overlapped with transfer and compute
// applied: stream at 21:5: pipelined into 4 blocks (reduceMemory=true persistent=true)
float recs[262144];

float dist[32768];

float tlat;

float tlng;

int n;

float *__recs_r;

float *__recs_r1;

int __sig_a;

int __sig_b;

int __ksig;

float *____recs_r_s1;

float *____recs_r_s2;

float *____recs_r1_s1;

float *____recs_r1_s2;

float *__dist_o;

int main() {
    int i;
    n = 32768;
    tlat = 30.0;
    tlng = 50.0;
    float seen = 0.0;
    for (i = 0; i < n; i++) {
        seen = seen + recs[8 * i] * 0.001;
        seen = seen - floor(seen);
    }
    __recs_r = malloc(n * sizeof(float));
    __recs_r1 = malloc(n * sizeof(float));
    {
        int __n1 = n - 0;
        int __base3 = 0;
        int __bs2 = (__n1 + 3) / 4;
        #pragma offload_transfer target(mic:0) in(n, tlat, tlng) nocopy(____recs_r_s1 : length(__bs2) alloc_if(1) free_if(0), ____recs_r_s2 : length(__bs2) alloc_if(1) free_if(0), ____recs_r1_s1 : length(__bs2) alloc_if(1) free_if(0), ____recs_r1_s2 : length(__bs2) alloc_if(1) free_if(0), __dist_o : length(__bs2) alloc_if(1) free_if(0))
        int __len5 = __bs2;
        if (0 + __bs2 > __n1) {
            __len5 = __n1 - 0;
        }
        for (int __gv6 = __base3; __gv6 < __base3 + __len5; __gv6++) {
            __recs_r[__gv6] = recs[8 * __gv6];
        }
        for (int __gv7 = __base3; __gv7 < __base3 + __len5; __gv7++) {
            __recs_r1[__gv7] = recs[8 * __gv7 + 1];
        }
        int __len8 = __bs2;
        if (__bs2 + __bs2 > __n1) {
            __len8 = __n1 - __bs2;
        }
        if (__len8 > 0) {
            for (int __gv9 = (__base3 + __bs2); __gv9 < (__base3 + __bs2) + __len8; __gv9++) {
                __recs_r[__gv9] = recs[8 * __gv9];
            }
            for (int __gv10 = (__base3 + __bs2); __gv10 < (__base3 + __bs2) + __len8; __gv10++) {
                __recs_r1[__gv10] = recs[8 * __gv10 + 1];
            }
        }
        #pragma offload_transfer target(mic:0) in(__recs_r[__base3 + 0 : __len5] : into(____recs_r_s1[0 : __len5]) alloc_if(0) free_if(0), __recs_r1[__base3 + 0 : __len5] : into(____recs_r1_s1[0 : __len5]) alloc_if(0) free_if(0)) signal(&__sig_a)
        for (int __blk4 = 0; __blk4 < 4; __blk4++) {
            int __off11 = __blk4 * __bs2;
            int __len12 = __bs2;
            if (__off11 + __bs2 > __n1) {
                __len12 = __n1 - __off11;
            }
            if (__len12 > 0) {
                if (__blk4 % 2 == 0) {
                    if (__blk4 + 1 < 4) {
                        int __noff13 = (__blk4 + 1) * __bs2;
                        int __nlen14 = __bs2;
                        if (__noff13 + __bs2 > __n1) {
                            __nlen14 = __n1 - __noff13;
                        }
                        if (__nlen14 > 0) {
                            #pragma offload_transfer target(mic:0) in(__recs_r[__base3 + __noff13 : __nlen14] : into(____recs_r_s2[0 : __nlen14]) alloc_if(0) free_if(0), __recs_r1[__base3 + __noff13 : __nlen14] : into(____recs_r1_s2[0 : __nlen14]) alloc_if(0) free_if(0)) signal(&__sig_b)
                        }
                    }
                    #pragma offload target(mic:0) out(__dist_o[0 : __len12] : into(dist[__base3 + __off11 : __len12]) alloc_if(0) free_if(0)) persist(1) signal(&__ksig) wait(&__sig_a)
                    #pragma omp parallel for
                    for (int __j15 = 0; __j15 < __len12; __j15++) {
                        float dlat = ____recs_r_s1[__j15] - tlat;
                        float dlng = ____recs_r1_s1[__j15] - tlng;
                        __dist_o[__j15] = sqrt(dlat * dlat + dlng * dlng) + exp(-fabs(dlat) * 0.01);
                    }
                    if (__blk4 + 2 < 4) {
                        int __goff16 = (__blk4 + 2) * __bs2;
                        int __glen17 = __bs2;
                        if (__goff16 + __bs2 > __n1) {
                            __glen17 = __n1 - __goff16;
                        }
                        if (__glen17 > 0) {
                            for (int __gv18 = (__base3 + __goff16); __gv18 < (__base3 + __goff16) + __glen17; __gv18++) {
                                __recs_r[__gv18] = recs[8 * __gv18];
                            }
                            for (int __gv19 = (__base3 + __goff16); __gv19 < (__base3 + __goff16) + __glen17; __gv19++) {
                                __recs_r1[__gv19] = recs[8 * __gv19 + 1];
                            }
                        }
                    }
                    #pragma offload_wait target(mic:0) wait(&__ksig)
                } else {
                    if (__blk4 + 1 < 4) {
                        int __noff20 = (__blk4 + 1) * __bs2;
                        int __nlen21 = __bs2;
                        if (__noff20 + __bs2 > __n1) {
                            __nlen21 = __n1 - __noff20;
                        }
                        if (__nlen21 > 0) {
                            #pragma offload_transfer target(mic:0) in(__recs_r[__base3 + __noff20 : __nlen21] : into(____recs_r_s1[0 : __nlen21]) alloc_if(0) free_if(0), __recs_r1[__base3 + __noff20 : __nlen21] : into(____recs_r1_s1[0 : __nlen21]) alloc_if(0) free_if(0)) signal(&__sig_a)
                        }
                    }
                    #pragma offload target(mic:0) out(__dist_o[0 : __len12] : into(dist[__base3 + __off11 : __len12]) alloc_if(0) free_if(0)) persist(1) signal(&__ksig) wait(&__sig_b)
                    #pragma omp parallel for
                    for (int __j22 = 0; __j22 < __len12; __j22++) {
                        float dlat = ____recs_r_s2[__j22] - tlat;
                        float dlng = ____recs_r1_s2[__j22] - tlng;
                        __dist_o[__j22] = sqrt(dlat * dlat + dlng * dlng) + exp(-fabs(dlat) * 0.01);
                    }
                    if (__blk4 + 2 < 4) {
                        int __goff23 = (__blk4 + 2) * __bs2;
                        int __glen24 = __bs2;
                        if (__goff23 + __bs2 > __n1) {
                            __glen24 = __n1 - __goff23;
                        }
                        if (__glen24 > 0) {
                            for (int __gv25 = (__base3 + __goff23); __gv25 < (__base3 + __goff23) + __glen24; __gv25++) {
                                __recs_r[__gv25] = recs[8 * __gv25];
                            }
                            for (int __gv26 = (__base3 + __goff23); __gv26 < (__base3 + __goff23) + __glen24; __gv26++) {
                                __recs_r1[__gv26] = recs[8 * __gv26 + 1];
                            }
                        }
                    }
                    #pragma offload_wait target(mic:0) wait(&__ksig)
                }
            }
        }
        #pragma offload_transfer target(mic:0) nocopy(____recs_r_s1 : length(1) alloc_if(0) free_if(1), ____recs_r_s2 : length(1) alloc_if(0) free_if(1), ____recs_r1_s1 : length(1) alloc_if(0) free_if(1), ____recs_r1_s2 : length(1) alloc_if(0) free_if(1), __dist_o : length(1) alloc_if(0) free_if(1))
    }
    free(__recs_r);
    free(__recs_r1);
    printf("seen %f\n", seen);
    return 0;
}
