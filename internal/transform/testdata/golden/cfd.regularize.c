// golden: cfd with regularize
float density[3072];

float momentum[3072];

float energy[3072];

float stepf[3072];

float flux[3072];

int nb[3072];

int n;

int iters;

int main() {
    int it;
    int i;
    n = 3072;
    iters = 200;
    for (it = 0; it < iters; it++) {
        #pragma offload target(mic:0) in(density : length(n), momentum : length(n)) out(stepf : length(n))
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            stepf[i] = 0.5 / (sqrt(fabs(density[i]) + 1.0) + momentum[i] * momentum[i]);
        }
        #pragma offload target(mic:0) in(density : length(n), stepf : length(n), nb : length(n)) out(flux : length(n))
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            float f = density[i] * stepf[i];
            if (nb[i] >= 0) {
                f += density[nb[i]] * 0.25;
            }
            flux[i] = f;
        }
        #pragma offload target(mic:0) in(flux : length(n), stepf : length(n)) inout(density : length(n), momentum : length(n), energy : length(n))
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            density[i] = density[i] + flux[i] * stepf[i];
            momentum[i] = momentum[i] * 0.9995;
            energy[i] = energy[i] + flux[i] * 0.125;
        }
    }
    return 0;
}
