// golden: streamcluster with combined
// applied: merge at 21:5: hoisted 3 inner offloads into one region
float px[8192];

float py[8192];

float wts[8192];

float ids[8192];

float cost[8192];

float gain[8192];

float assignv[8192];

float cx;

float cy;

int n;

int iters;

int main() {
    int it;
    int i;
    n = 8192;
    iters = 200;
    cx = 0.5;
    cy = 0.25;
    #pragma offload target(mic:0) in(ids : length(n), px : length(n), py : length(n), wts : length(n)) inout(assignv : length(n), cost : length(n), gain : length(n), cx, cy)
    for (it = 0; it < iters; it++) {
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            float dx = px[i] - cx;
            float dy = py[i] - cy;
            cost[i] = (dx * dx + dy * dy) * wts[0] + ids[0] * 0.0;
        }
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            gain[i] = cost[i] * 0.5 + 1.0 + wts[0] * 0.0 + ids[0] * 0.0;
        }
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            if (gain[i] < assignv[i] + wts[0] * 0.0) {
                assignv[i] = gain[i];
            }
        }
        cx = cx + 0.001;
        cy = cy - 0.0005;
    }
    return 0;
}
