// golden: kmeans with streaming
// applied: stream at 30:5: pipelined into 4 blocks (reduceMemory=true persistent=true)
float p0[12288];

float p1[12288];

float p2[12288];

float p3[12288];

float p4[12288];

float p5[12288];

float p6[12288];

float p7[12288];

float c0[16];

float c1[16];

float c2[16];

float c3[16];

float c4[16];

float c5[16];

float c6[16];

float c7[16];

float membership[12288];

float mindist[12288];

int n;

int k;

int __sig_a;

int __sig_b;

float *__p0_s1;

float *__p0_s2;

float *__p1_s1;

float *__p1_s2;

float *__p2_s1;

float *__p2_s2;

float *__p3_s1;

float *__p3_s2;

float *__p4_s1;

float *__p4_s2;

float *__p5_s1;

float *__p5_s2;

float *__p6_s1;

float *__p6_s2;

float *__p7_s1;

float *__p7_s2;

float *__membership_o;

float *__mindist_o;

int main() {
    int i;
    int j;
    n = 12288;
    k = 16;
    {
        int __n1 = n - 0;
        int __base3 = 0;
        int __bs2 = (__n1 + 3) / 4;
        #pragma offload_transfer target(mic:0) in(c0 : length(k) alloc_if(1) free_if(0), c1 : length(k) alloc_if(1) free_if(0), c2 : length(k) alloc_if(1) free_if(0), c3 : length(k) alloc_if(1) free_if(0), c4 : length(k) alloc_if(1) free_if(0), c5 : length(k) alloc_if(1) free_if(0), c6 : length(k) alloc_if(1) free_if(0), c7 : length(k) alloc_if(1) free_if(0), n, k) nocopy(__p0_s1 : length(__bs2) alloc_if(1) free_if(0), __p0_s2 : length(__bs2) alloc_if(1) free_if(0), __p1_s1 : length(__bs2) alloc_if(1) free_if(0), __p1_s2 : length(__bs2) alloc_if(1) free_if(0), __p2_s1 : length(__bs2) alloc_if(1) free_if(0), __p2_s2 : length(__bs2) alloc_if(1) free_if(0), __p3_s1 : length(__bs2) alloc_if(1) free_if(0), __p3_s2 : length(__bs2) alloc_if(1) free_if(0), __p4_s1 : length(__bs2) alloc_if(1) free_if(0), __p4_s2 : length(__bs2) alloc_if(1) free_if(0), __p5_s1 : length(__bs2) alloc_if(1) free_if(0), __p5_s2 : length(__bs2) alloc_if(1) free_if(0), __p6_s1 : length(__bs2) alloc_if(1) free_if(0), __p6_s2 : length(__bs2) alloc_if(1) free_if(0), __p7_s1 : length(__bs2) alloc_if(1) free_if(0), __p7_s2 : length(__bs2) alloc_if(1) free_if(0), __membership_o : length(__bs2) alloc_if(1) free_if(0), __mindist_o : length(__bs2) alloc_if(1) free_if(0))
        int __len5 = __bs2;
        if (0 + __bs2 > __n1) {
            __len5 = __n1 - 0;
        }
        #pragma offload_transfer target(mic:0) in(p0[__base3 + 0 : __len5] : into(__p0_s1[0 : __len5]) alloc_if(0) free_if(0), p1[__base3 + 0 : __len5] : into(__p1_s1[0 : __len5]) alloc_if(0) free_if(0), p2[__base3 + 0 : __len5] : into(__p2_s1[0 : __len5]) alloc_if(0) free_if(0), p3[__base3 + 0 : __len5] : into(__p3_s1[0 : __len5]) alloc_if(0) free_if(0), p4[__base3 + 0 : __len5] : into(__p4_s1[0 : __len5]) alloc_if(0) free_if(0), p5[__base3 + 0 : __len5] : into(__p5_s1[0 : __len5]) alloc_if(0) free_if(0), p6[__base3 + 0 : __len5] : into(__p6_s1[0 : __len5]) alloc_if(0) free_if(0), p7[__base3 + 0 : __len5] : into(__p7_s1[0 : __len5]) alloc_if(0) free_if(0)) signal(&__sig_a)
        for (int __blk4 = 0; __blk4 < 4; __blk4++) {
            int __off6 = __blk4 * __bs2;
            int __len7 = __bs2;
            if (__off6 + __bs2 > __n1) {
                __len7 = __n1 - __off6;
            }
            if (__len7 > 0) {
                if (__blk4 % 2 == 0) {
                    if (__blk4 + 1 < 4) {
                        int __noff8 = (__blk4 + 1) * __bs2;
                        int __nlen9 = __bs2;
                        if (__noff8 + __bs2 > __n1) {
                            __nlen9 = __n1 - __noff8;
                        }
                        if (__nlen9 > 0) {
                            #pragma offload_transfer target(mic:0) in(p0[__base3 + __noff8 : __nlen9] : into(__p0_s2[0 : __nlen9]) alloc_if(0) free_if(0), p1[__base3 + __noff8 : __nlen9] : into(__p1_s2[0 : __nlen9]) alloc_if(0) free_if(0), p2[__base3 + __noff8 : __nlen9] : into(__p2_s2[0 : __nlen9]) alloc_if(0) free_if(0), p3[__base3 + __noff8 : __nlen9] : into(__p3_s2[0 : __nlen9]) alloc_if(0) free_if(0), p4[__base3 + __noff8 : __nlen9] : into(__p4_s2[0 : __nlen9]) alloc_if(0) free_if(0), p5[__base3 + __noff8 : __nlen9] : into(__p5_s2[0 : __nlen9]) alloc_if(0) free_if(0), p6[__base3 + __noff8 : __nlen9] : into(__p6_s2[0 : __nlen9]) alloc_if(0) free_if(0), p7[__base3 + __noff8 : __nlen9] : into(__p7_s2[0 : __nlen9]) alloc_if(0) free_if(0)) signal(&__sig_b)
                        }
                    }
                    #pragma offload target(mic:0) out(__membership_o[0 : __len7] : into(membership[__base3 + __off6 : __len7]) alloc_if(0) free_if(0), __mindist_o[0 : __len7] : into(mindist[__base3 + __off6 : __len7]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_a)
                    #pragma omp parallel for
                    for (int __j10 = 0; __j10 < __len7; __j10++) {
                        float best = 1000000000.0;
                        int bestj = 0;
                        for (j = 0; j < k; j++) {
                            float d0 = __p0_s1[__j10] - c0[j];
                            float d1 = __p1_s1[__j10] - c1[j];
                            float d2 = __p2_s1[__j10] - c2[j];
                            float d3 = __p3_s1[__j10] - c3[j];
                            float d4 = __p4_s1[__j10] - c4[j];
                            float d5 = __p5_s1[__j10] - c5[j];
                            float d6 = __p6_s1[__j10] - c6[j];
                            float d7 = __p7_s1[__j10] - c7[j];
                            float dist = sqrt(d0 * d0 + d1 * d1 + d2 * d2 + d3 * d3 + d4 * d4 + d5 * d5 + d6 * d6 + d7 * d7);
                            if (dist < best) {
                                best = dist;
                                bestj = j;
                            }
                        }
                        __membership_o[__j10] = bestj;
                        __mindist_o[__j10] = best;
                    }
                } else {
                    if (__blk4 + 1 < 4) {
                        int __noff11 = (__blk4 + 1) * __bs2;
                        int __nlen12 = __bs2;
                        if (__noff11 + __bs2 > __n1) {
                            __nlen12 = __n1 - __noff11;
                        }
                        if (__nlen12 > 0) {
                            #pragma offload_transfer target(mic:0) in(p0[__base3 + __noff11 : __nlen12] : into(__p0_s1[0 : __nlen12]) alloc_if(0) free_if(0), p1[__base3 + __noff11 : __nlen12] : into(__p1_s1[0 : __nlen12]) alloc_if(0) free_if(0), p2[__base3 + __noff11 : __nlen12] : into(__p2_s1[0 : __nlen12]) alloc_if(0) free_if(0), p3[__base3 + __noff11 : __nlen12] : into(__p3_s1[0 : __nlen12]) alloc_if(0) free_if(0), p4[__base3 + __noff11 : __nlen12] : into(__p4_s1[0 : __nlen12]) alloc_if(0) free_if(0), p5[__base3 + __noff11 : __nlen12] : into(__p5_s1[0 : __nlen12]) alloc_if(0) free_if(0), p6[__base3 + __noff11 : __nlen12] : into(__p6_s1[0 : __nlen12]) alloc_if(0) free_if(0), p7[__base3 + __noff11 : __nlen12] : into(__p7_s1[0 : __nlen12]) alloc_if(0) free_if(0)) signal(&__sig_a)
                        }
                    }
                    #pragma offload target(mic:0) out(__membership_o[0 : __len7] : into(membership[__base3 + __off6 : __len7]) alloc_if(0) free_if(0), __mindist_o[0 : __len7] : into(mindist[__base3 + __off6 : __len7]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_b)
                    #pragma omp parallel for
                    for (int __j13 = 0; __j13 < __len7; __j13++) {
                        float best = 1000000000.0;
                        int bestj = 0;
                        for (j = 0; j < k; j++) {
                            float d0 = __p0_s2[__j13] - c0[j];
                            float d1 = __p1_s2[__j13] - c1[j];
                            float d2 = __p2_s2[__j13] - c2[j];
                            float d3 = __p3_s2[__j13] - c3[j];
                            float d4 = __p4_s2[__j13] - c4[j];
                            float d5 = __p5_s2[__j13] - c5[j];
                            float d6 = __p6_s2[__j13] - c6[j];
                            float d7 = __p7_s2[__j13] - c7[j];
                            float dist = sqrt(d0 * d0 + d1 * d1 + d2 * d2 + d3 * d3 + d4 * d4 + d5 * d5 + d6 * d6 + d7 * d7);
                            if (dist < best) {
                                best = dist;
                                bestj = j;
                            }
                        }
                        __membership_o[__j13] = bestj;
                        __mindist_o[__j13] = best;
                    }
                }
            }
        }
        #pragma offload_transfer target(mic:0) nocopy(__p0_s1 : length(1) alloc_if(0) free_if(1), __p0_s2 : length(1) alloc_if(0) free_if(1), __p1_s1 : length(1) alloc_if(0) free_if(1), __p1_s2 : length(1) alloc_if(0) free_if(1), __p2_s1 : length(1) alloc_if(0) free_if(1), __p2_s2 : length(1) alloc_if(0) free_if(1), __p3_s1 : length(1) alloc_if(0) free_if(1), __p3_s2 : length(1) alloc_if(0) free_if(1), __p4_s1 : length(1) alloc_if(0) free_if(1), __p4_s2 : length(1) alloc_if(0) free_if(1), __p5_s1 : length(1) alloc_if(0) free_if(1), __p5_s2 : length(1) alloc_if(0) free_if(1), __p6_s1 : length(1) alloc_if(0) free_if(1), __p6_s2 : length(1) alloc_if(0) free_if(1), __p7_s1 : length(1) alloc_if(0) free_if(1), __p7_s2 : length(1) alloc_if(0) free_if(1), c0 : length(1) alloc_if(0) free_if(1), c1 : length(1) alloc_if(0) free_if(1), c2 : length(1) alloc_if(0) free_if(1), c3 : length(1) alloc_if(0) free_if(1), c4 : length(1) alloc_if(0) free_if(1), c5 : length(1) alloc_if(0) free_if(1), c6 : length(1) alloc_if(0) free_if(1), c7 : length(1) alloc_if(0) free_if(1), __membership_o : length(1) alloc_if(0) free_if(1), __mindist_o : length(1) alloc_if(0) free_if(1))
    }
    return 0;
}
