// golden: blackscholes with combined
// applied: stream at 46:5: pipelined into 4 blocks (reduceMemory=true persistent=true)
float sptprice[32768];

float strike[32768];

float rate[32768];

float volatility[32768];

float otime[32768];

float prices[32768];

int numOptions;

int numRuns;

int __sig_a;

int __sig_b;

float *__sptprice_s1;

float *__sptprice_s2;

float *__strike_s1;

float *__strike_s2;

float *__rate_s1;

float *__rate_s2;

float *__volatility_s1;

float *__volatility_s2;

float *__otime_s1;

float *__otime_s2;

float *__prices_o;

float CNDF(float x) {
    float sign = 1.0;
    if (x < 0.0) {
        x = -x;
        sign = 0.0;
    }
    float k = 1.0 / (1.0 + 0.2316419 * x);
    float kp = k * (0.319381530 + k * (-0.356563782 + k * (1.781477937 + k * (-1.821255978 + k * 1.330274429))));
    float nd = 1.0 - 0.39894228 * exp(-0.5 * x * x) * kp;
    if (sign == 0.0) {
        nd = 1.0 - nd;
    }
    return nd;
}

float BlkSchlsEqEuroNoDiv(float spt, float str, float r, float v, float t, int otype) {
    float sqrtT = sqrt(t);
    float d1 = (log(spt / str) + (r + 0.5 * v * v) * t) / (v * sqrtT);
    float d2 = d1 - v * sqrtT;
    float nd1 = CNDF(d1);
    float nd2 = CNDF(d2);
    float futureValue = str * exp(-r * t);
    if (otype == 0) {
        return spt * nd1 - futureValue * nd2;
    }
    return futureValue * (1.0 - nd2) - spt * (1.0 - nd1);
}

int main() {
    int i;
    int r;
    numOptions = 32768;
    numRuns = 2;
    {
        int __n1 = numOptions - 0;
        int __base3 = 0;
        int __bs2 = (__n1 + 3) / 4;
        #pragma offload_transfer target(mic:0) in(numOptions, numRuns) nocopy(__sptprice_s1 : length(__bs2) alloc_if(1) free_if(0), __sptprice_s2 : length(__bs2) alloc_if(1) free_if(0), __strike_s1 : length(__bs2) alloc_if(1) free_if(0), __strike_s2 : length(__bs2) alloc_if(1) free_if(0), __rate_s1 : length(__bs2) alloc_if(1) free_if(0), __rate_s2 : length(__bs2) alloc_if(1) free_if(0), __volatility_s1 : length(__bs2) alloc_if(1) free_if(0), __volatility_s2 : length(__bs2) alloc_if(1) free_if(0), __otime_s1 : length(__bs2) alloc_if(1) free_if(0), __otime_s2 : length(__bs2) alloc_if(1) free_if(0), __prices_o : length(__bs2) alloc_if(1) free_if(0))
        int __len5 = __bs2;
        if (0 + __bs2 > __n1) {
            __len5 = __n1 - 0;
        }
        #pragma offload_transfer target(mic:0) in(sptprice[__base3 + 0 : __len5] : into(__sptprice_s1[0 : __len5]) alloc_if(0) free_if(0), strike[__base3 + 0 : __len5] : into(__strike_s1[0 : __len5]) alloc_if(0) free_if(0), rate[__base3 + 0 : __len5] : into(__rate_s1[0 : __len5]) alloc_if(0) free_if(0), volatility[__base3 + 0 : __len5] : into(__volatility_s1[0 : __len5]) alloc_if(0) free_if(0), otime[__base3 + 0 : __len5] : into(__otime_s1[0 : __len5]) alloc_if(0) free_if(0)) signal(&__sig_a)
        for (int __blk4 = 0; __blk4 < 4; __blk4++) {
            int __off6 = __blk4 * __bs2;
            int __len7 = __bs2;
            if (__off6 + __bs2 > __n1) {
                __len7 = __n1 - __off6;
            }
            if (__len7 > 0) {
                if (__blk4 % 2 == 0) {
                    if (__blk4 + 1 < 4) {
                        int __noff8 = (__blk4 + 1) * __bs2;
                        int __nlen9 = __bs2;
                        if (__noff8 + __bs2 > __n1) {
                            __nlen9 = __n1 - __noff8;
                        }
                        if (__nlen9 > 0) {
                            #pragma offload_transfer target(mic:0) in(sptprice[__base3 + __noff8 : __nlen9] : into(__sptprice_s2[0 : __nlen9]) alloc_if(0) free_if(0), strike[__base3 + __noff8 : __nlen9] : into(__strike_s2[0 : __nlen9]) alloc_if(0) free_if(0), rate[__base3 + __noff8 : __nlen9] : into(__rate_s2[0 : __nlen9]) alloc_if(0) free_if(0), volatility[__base3 + __noff8 : __nlen9] : into(__volatility_s2[0 : __nlen9]) alloc_if(0) free_if(0), otime[__base3 + __noff8 : __nlen9] : into(__otime_s2[0 : __nlen9]) alloc_if(0) free_if(0)) signal(&__sig_b)
                        }
                    }
                    #pragma offload target(mic:0) out(__prices_o[0 : __len7] : into(prices[__base3 + __off6 : __len7]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_a)
                    #pragma omp parallel for
                    for (int __j10 = 0; __j10 < __len7; __j10++) {
                        float price = 0.0;
                        for (r = 0; r < numRuns; r++) {
                            price = BlkSchlsEqEuroNoDiv(__sptprice_s1[__j10], __strike_s1[__j10], __rate_s1[__j10], __volatility_s1[__j10], __otime_s1[__j10], (__base3 + __off6 + __j10) % 2);
                        }
                        __prices_o[__j10] = price;
                    }
                } else {
                    if (__blk4 + 1 < 4) {
                        int __noff11 = (__blk4 + 1) * __bs2;
                        int __nlen12 = __bs2;
                        if (__noff11 + __bs2 > __n1) {
                            __nlen12 = __n1 - __noff11;
                        }
                        if (__nlen12 > 0) {
                            #pragma offload_transfer target(mic:0) in(sptprice[__base3 + __noff11 : __nlen12] : into(__sptprice_s1[0 : __nlen12]) alloc_if(0) free_if(0), strike[__base3 + __noff11 : __nlen12] : into(__strike_s1[0 : __nlen12]) alloc_if(0) free_if(0), rate[__base3 + __noff11 : __nlen12] : into(__rate_s1[0 : __nlen12]) alloc_if(0) free_if(0), volatility[__base3 + __noff11 : __nlen12] : into(__volatility_s1[0 : __nlen12]) alloc_if(0) free_if(0), otime[__base3 + __noff11 : __nlen12] : into(__otime_s1[0 : __nlen12]) alloc_if(0) free_if(0)) signal(&__sig_a)
                        }
                    }
                    #pragma offload target(mic:0) out(__prices_o[0 : __len7] : into(prices[__base3 + __off6 : __len7]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_b)
                    #pragma omp parallel for
                    for (int __j13 = 0; __j13 < __len7; __j13++) {
                        float price = 0.0;
                        for (r = 0; r < numRuns; r++) {
                            price = BlkSchlsEqEuroNoDiv(__sptprice_s2[__j13], __strike_s2[__j13], __rate_s2[__j13], __volatility_s2[__j13], __otime_s2[__j13], (__base3 + __off6 + __j13) % 2);
                        }
                        __prices_o[__j13] = price;
                    }
                }
            }
        }
        #pragma offload_transfer target(mic:0) nocopy(__sptprice_s1 : length(1) alloc_if(0) free_if(1), __sptprice_s2 : length(1) alloc_if(0) free_if(1), __strike_s1 : length(1) alloc_if(0) free_if(1), __strike_s2 : length(1) alloc_if(0) free_if(1), __rate_s1 : length(1) alloc_if(0) free_if(1), __rate_s2 : length(1) alloc_if(0) free_if(1), __volatility_s1 : length(1) alloc_if(0) free_if(1), __volatility_s2 : length(1) alloc_if(0) free_if(1), __otime_s1 : length(1) alloc_if(0) free_if(1), __otime_s2 : length(1) alloc_if(0) free_if(1), __prices_o : length(1) alloc_if(0) free_if(1))
    }
    return 0;
}
