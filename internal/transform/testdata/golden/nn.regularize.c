// golden: nn with regularize
// applied: reorder at 21:5: regularized 2 irregular accesses
float recs[262144];

float dist[32768];

float tlat;

float tlng;

int n;

float *__recs_r;

float *__recs_r2;

int main() {
    int i;
    n = 32768;
    tlat = 30.0;
    tlng = 50.0;
    float seen = 0.0;
    for (i = 0; i < n; i++) {
        seen = seen + recs[8 * i] * 0.001;
        seen = seen - floor(seen);
    }
    int __g1 = 0;
    __recs_r = malloc(n * sizeof(float));
    for (__g1 = 0; __g1 < n; __g1++) {
        __recs_r[__g1] = recs[8 * __g1];
    }
    __recs_r2 = malloc(n * sizeof(float));
    for (__g1 = 0; __g1 < n; __g1++) {
        __recs_r2[__g1] = recs[8 * __g1 + 1];
    }
    #pragma offload target(mic:0) in(__recs_r : length(n), __recs_r2 : length(n)) out(dist : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        float dlat = __recs_r[i] - tlat;
        float dlng = __recs_r2[i] - tlng;
        dist[i] = sqrt(dlat * dlat + dlng * dlng) + exp(-fabs(dlat) * 0.01);
    }
    free(__recs_r);
    free(__recs_r2);
    printf("seen %f\n", seen);
    return 0;
}
