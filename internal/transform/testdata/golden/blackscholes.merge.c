// golden: blackscholes with merge
float sptprice[32768];

float strike[32768];

float rate[32768];

float volatility[32768];

float otime[32768];

float prices[32768];

int numOptions;

int numRuns;

float CNDF(float x) {
    float sign = 1.0;
    if (x < 0.0) {
        x = -x;
        sign = 0.0;
    }
    float k = 1.0 / (1.0 + 0.2316419 * x);
    float kp = k * (0.319381530 + k * (-0.356563782 + k * (1.781477937 + k * (-1.821255978 + k * 1.330274429))));
    float nd = 1.0 - 0.39894228 * exp(-0.5 * x * x) * kp;
    if (sign == 0.0) {
        nd = 1.0 - nd;
    }
    return nd;
}

float BlkSchlsEqEuroNoDiv(float spt, float str, float r, float v, float t, int otype) {
    float sqrtT = sqrt(t);
    float d1 = (log(spt / str) + (r + 0.5 * v * v) * t) / (v * sqrtT);
    float d2 = d1 - v * sqrtT;
    float nd1 = CNDF(d1);
    float nd2 = CNDF(d2);
    float futureValue = str * exp(-r * t);
    if (otype == 0) {
        return spt * nd1 - futureValue * nd2;
    }
    return futureValue * (1.0 - nd2) - spt * (1.0 - nd1);
}

int main() {
    int i;
    int r;
    numOptions = 32768;
    numRuns = 2;
    #pragma offload target(mic:0) in(sptprice : length(numOptions), strike : length(numOptions), rate : length(numOptions), volatility : length(numOptions), otime : length(numOptions)) out(prices : length(numOptions))
    #pragma omp parallel for
    for (i = 0; i < numOptions; i++) {
        float price = 0.0;
        for (r = 0; r < numRuns; r++) {
            price = BlkSchlsEqEuroNoDiv(sptprice[i], strike[i], rate[i], volatility[i], otime[i], i % 2);
        }
        prices[i] = price;
    }
    return 0;
}
