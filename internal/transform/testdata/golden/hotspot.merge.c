// golden: hotspot with merge
float temp[32768];

float temp2[32768];

float power[32768];

int n;

int steps;

int main() {
    int s;
    int i;
    n = 32768;
    steps = 50;
    float acc = 0.0;
    for (i = 0; i < n; i++) {
        acc = acc + power[i] * 0.01 + exp(-power[i]) + log(power[i] + 1.5) + pow(power[i] + 0.5, 0.3);
        acc = acc - floor(acc) + sqrt(acc + 2.0) * 0.001;
    }
    #pragma offload target(mic:0) in(power : length(n)) inout(temp : length(n), temp2 : length(n))
    for (s = 0; s < steps; s++) {
        #pragma omp parallel for
        for (i = 1; i < n - 1; i++) {
            temp2[i] = temp[i] + 0.1 * (temp[i - 1] + temp[i + 1] - 2.0 * temp[i]) + 0.05 * power[i];
        }
        #pragma omp parallel for
        for (i = 1; i < n - 1; i++) {
            temp[i] = temp2[i] + 0.1 * (temp2[i - 1] + temp2[i + 1] - 2.0 * temp2[i]) + 0.05 * power[i];
        }
    }
    printf("acc %f\n", acc);
    return 0;
}
