// golden: kmeans with merge
float p0[12288];

float p1[12288];

float p2[12288];

float p3[12288];

float p4[12288];

float p5[12288];

float p6[12288];

float p7[12288];

float c0[16];

float c1[16];

float c2[16];

float c3[16];

float c4[16];

float c5[16];

float c6[16];

float c7[16];

float membership[12288];

float mindist[12288];

int n;

int k;

int main() {
    int i;
    int j;
    n = 12288;
    k = 16;
    #pragma offload target(mic:0) in(p0 : length(n), p1 : length(n), p2 : length(n), p3 : length(n), p4 : length(n), p5 : length(n), p6 : length(n), p7 : length(n), c0 : length(k), c1 : length(k), c2 : length(k), c3 : length(k), c4 : length(k), c5 : length(k), c6 : length(k), c7 : length(k)) out(membership : length(n), mindist : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        float best = 1000000000.0;
        int bestj = 0;
        for (j = 0; j < k; j++) {
            float d0 = p0[i] - c0[j];
            float d1 = p1[i] - c1[j];
            float d2 = p2[i] - c2[j];
            float d3 = p3[i] - c3[j];
            float d4 = p4[i] - c4[j];
            float d5 = p5[i] - c5[j];
            float d6 = p6[i] - c6[j];
            float d7 = p7[i] - c7[j];
            float dist = sqrt(d0 * d0 + d1 * d1 + d2 * d2 + d3 * d3 + d4 * d4 + d5 * d5 + d6 * d6 + d7 * d7);
            if (dist < best) {
                best = dist;
                bestj = j;
            }
        }
        membership[i] = bestj;
        mindist[i] = best;
    }
    return 0;
}
