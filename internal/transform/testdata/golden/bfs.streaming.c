// golden: bfs with streaming
int rs[16385];

int col[98304];

float dist[16384];

float front[16384];

float next[16384];

int n;

int levels;

int main() {
    int lvl;
    int i;
    int e;
    n = 16384;
    levels = 10;
    for (lvl = 0; lvl < levels; lvl++) {
        #pragma offload target(mic:0) in(rs : length(n + 1), col : length(98304), front : length(n), dist : length(n)) out(next : length(n))
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
            float nd = 0.0;
            if (front[i] > 0.0) {
                for (e = rs[i]; e < rs[i + 1]; e++) {
                    float dn = dist[col[e]];
                    if (dn > dist[i] + 1.0) {
                        nd = nd + 1.0;
                    }
                }
            }
            next[i] = nd;
        }
        for (i = 0; i < n; i++) {
            if (next[i] > 0.0) {
                front[i] = 1.0;
                dist[i] = dist[i] + exp(-next[i] * 0.125);
            } else {
                front[i] = front[i] * 0.5;
            }
        }
    }
    return 0;
}
