// golden: dedup with streaming
float chunks[65536];

float hashes[65536];

float *buf1;

float *buf2;

float *outb;

int sig0;

int sig1;

int n;

int main() {
    int i;
    int blk;
    n = 65536;
    int bs = n / 16;
    #pragma offload_transfer target(mic:0) nocopy(buf1 : length(bs) alloc_if(1) free_if(0), buf2 : length(bs) alloc_if(1) free_if(0), outb : length(bs) alloc_if(1) free_if(0))
    #pragma offload_transfer target(mic:0) in(chunks[0 : bs] : into(buf1) alloc_if(0) free_if(0)) signal(&sig0)
    for (blk = 0; blk < 16; blk++) {
        if (blk % 2 == 0) {
            if (blk + 1 < 16) {
                #pragma offload_transfer target(mic:0) in(chunks[(blk + 1) * bs : bs] : into(buf2) alloc_if(0) free_if(0)) signal(&sig1)
            }
            #pragma offload target(mic:0) out(outb[0 : bs] : into(hashes[blk * bs : bs]) alloc_if(0) free_if(0)) wait(&sig0)
            #pragma omp parallel for
            for (i = 0; i < bs; i++) {
                float h = buf1[i] * 2654435761.0;
                h = h - floor(h / 65536.0) * 65536.0;
                float roll = h;
                roll = roll * 31.0 + buf1[i];
                roll = roll - floor(roll / 8191.0) * 8191.0;
                float mix = exp(-roll * 0.0001) + log(h + 2.0) + pow(roll + 1.0, 0.25);
                outb[i] = roll + sqrt(h + 1.0) + mix * 0.001 + exp(-h * 0.00001);
            }
        } else {
            if (blk + 1 < 16) {
                #pragma offload_transfer target(mic:0) in(chunks[(blk + 1) * bs : bs] : into(buf1) alloc_if(0) free_if(0)) signal(&sig0)
            }
            #pragma offload target(mic:0) out(outb[0 : bs] : into(hashes[blk * bs : bs]) alloc_if(0) free_if(0)) wait(&sig1)
            #pragma omp parallel for
            for (i = 0; i < bs; i++) {
                float h = buf2[i] * 2654435761.0;
                h = h - floor(h / 65536.0) * 65536.0;
                float roll = h;
                roll = roll * 31.0 + buf2[i];
                roll = roll - floor(roll / 8191.0) * 8191.0;
                float mix = exp(-roll * 0.0001) + log(h + 2.0) + pow(roll + 1.0, 0.25);
                outb[i] = roll + sqrt(h + 1.0) + mix * 0.001 + exp(-h * 0.00001);
            }
        }
    }
    return 0;
}
