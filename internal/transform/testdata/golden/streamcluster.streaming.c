// golden: streamcluster with streaming
// applied: stream at 24:9: pipelined into 4 blocks (reduceMemory=true persistent=true)
// applied: stream at 31:9: pipelined into 4 blocks (reduceMemory=true persistent=true)
// applied: stream at 36:9: pipelined into 4 blocks (reduceMemory=true persistent=true)
float px[8192];

float py[8192];

float wts[8192];

float ids[8192];

float cost[8192];

float gain[8192];

float assignv[8192];

float cx;

float cy;

int n;

int iters;

int __sig_a;

int __sig_b;

float *__px_s1;

float *__px_s2;

float *__py_s1;

float *__py_s2;

float *__cost_o;

int __sig_a18;

int __sig_b19;

float *__cost_s1;

float *__cost_s2;

float *__gain_o;

int __sig_a33;

int __sig_b34;

float *__gain_s1;

float *__gain_s2;

float *__assignv_s1;

float *__assignv_s2;

int main() {
    int it;
    int i;
    n = 8192;
    iters = 200;
    cx = 0.5;
    cy = 0.25;
    for (it = 0; it < iters; it++) {
        {
            int __n1 = n - 0;
            int __base3 = 0;
            int __bs2 = (__n1 + 3) / 4;
            #pragma offload_transfer target(mic:0) in(wts : length(n) alloc_if(1) free_if(0), ids : length(n) alloc_if(1) free_if(0), n, cx, cy) nocopy(__px_s1 : length(__bs2) alloc_if(1) free_if(0), __px_s2 : length(__bs2) alloc_if(1) free_if(0), __py_s1 : length(__bs2) alloc_if(1) free_if(0), __py_s2 : length(__bs2) alloc_if(1) free_if(0), __cost_o : length(__bs2) alloc_if(1) free_if(0))
            int __len5 = __bs2;
            if (0 + __bs2 > __n1) {
                __len5 = __n1 - 0;
            }
            #pragma offload_transfer target(mic:0) in(px[__base3 + 0 : __len5] : into(__px_s1[0 : __len5]) alloc_if(0) free_if(0), py[__base3 + 0 : __len5] : into(__py_s1[0 : __len5]) alloc_if(0) free_if(0)) signal(&__sig_a)
            for (int __blk4 = 0; __blk4 < 4; __blk4++) {
                int __off6 = __blk4 * __bs2;
                int __len7 = __bs2;
                if (__off6 + __bs2 > __n1) {
                    __len7 = __n1 - __off6;
                }
                if (__len7 > 0) {
                    if (__blk4 % 2 == 0) {
                        if (__blk4 + 1 < 4) {
                            int __noff8 = (__blk4 + 1) * __bs2;
                            int __nlen9 = __bs2;
                            if (__noff8 + __bs2 > __n1) {
                                __nlen9 = __n1 - __noff8;
                            }
                            if (__nlen9 > 0) {
                                #pragma offload_transfer target(mic:0) in(px[__base3 + __noff8 : __nlen9] : into(__px_s2[0 : __nlen9]) alloc_if(0) free_if(0), py[__base3 + __noff8 : __nlen9] : into(__py_s2[0 : __nlen9]) alloc_if(0) free_if(0)) signal(&__sig_b)
                            }
                        }
                        #pragma offload target(mic:0) out(__cost_o[0 : __len7] : into(cost[__base3 + __off6 : __len7]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_a)
                        #pragma omp parallel for
                        for (int __j10 = 0; __j10 < __len7; __j10++) {
                            float dx = __px_s1[__j10] - cx;
                            float dy = __py_s1[__j10] - cy;
                            __cost_o[__j10] = (dx * dx + dy * dy) * wts[0] + ids[0] * 0.0;
                        }
                    } else {
                        if (__blk4 + 1 < 4) {
                            int __noff11 = (__blk4 + 1) * __bs2;
                            int __nlen12 = __bs2;
                            if (__noff11 + __bs2 > __n1) {
                                __nlen12 = __n1 - __noff11;
                            }
                            if (__nlen12 > 0) {
                                #pragma offload_transfer target(mic:0) in(px[__base3 + __noff11 : __nlen12] : into(__px_s1[0 : __nlen12]) alloc_if(0) free_if(0), py[__base3 + __noff11 : __nlen12] : into(__py_s1[0 : __nlen12]) alloc_if(0) free_if(0)) signal(&__sig_a)
                            }
                        }
                        #pragma offload target(mic:0) out(__cost_o[0 : __len7] : into(cost[__base3 + __off6 : __len7]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_b)
                        #pragma omp parallel for
                        for (int __j13 = 0; __j13 < __len7; __j13++) {
                            float dx = __px_s2[__j13] - cx;
                            float dy = __py_s2[__j13] - cy;
                            __cost_o[__j13] = (dx * dx + dy * dy) * wts[0] + ids[0] * 0.0;
                        }
                    }
                }
            }
            #pragma offload_transfer target(mic:0) nocopy(__px_s1 : length(1) alloc_if(0) free_if(1), __px_s2 : length(1) alloc_if(0) free_if(1), __py_s1 : length(1) alloc_if(0) free_if(1), __py_s2 : length(1) alloc_if(0) free_if(1), wts : length(1) alloc_if(0) free_if(1), ids : length(1) alloc_if(0) free_if(1), __cost_o : length(1) alloc_if(0) free_if(1))
        }
        {
            int __n14 = n - 0;
            int __base16 = 0;
            int __bs15 = (__n14 + 3) / 4;
            #pragma offload_transfer target(mic:0) in(wts : length(n) alloc_if(1) free_if(0), ids : length(n) alloc_if(1) free_if(0), n) nocopy(__cost_s1 : length(__bs15) alloc_if(1) free_if(0), __cost_s2 : length(__bs15) alloc_if(1) free_if(0), __gain_o : length(__bs15) alloc_if(1) free_if(0))
            int __len20 = __bs15;
            if (0 + __bs15 > __n14) {
                __len20 = __n14 - 0;
            }
            #pragma offload_transfer target(mic:0) in(cost[__base16 + 0 : __len20] : into(__cost_s1[0 : __len20]) alloc_if(0) free_if(0)) signal(&__sig_a18)
            for (int __blk17 = 0; __blk17 < 4; __blk17++) {
                int __off21 = __blk17 * __bs15;
                int __len22 = __bs15;
                if (__off21 + __bs15 > __n14) {
                    __len22 = __n14 - __off21;
                }
                if (__len22 > 0) {
                    if (__blk17 % 2 == 0) {
                        if (__blk17 + 1 < 4) {
                            int __noff23 = (__blk17 + 1) * __bs15;
                            int __nlen24 = __bs15;
                            if (__noff23 + __bs15 > __n14) {
                                __nlen24 = __n14 - __noff23;
                            }
                            if (__nlen24 > 0) {
                                #pragma offload_transfer target(mic:0) in(cost[__base16 + __noff23 : __nlen24] : into(__cost_s2[0 : __nlen24]) alloc_if(0) free_if(0)) signal(&__sig_b19)
                            }
                        }
                        #pragma offload target(mic:0) out(__gain_o[0 : __len22] : into(gain[__base16 + __off21 : __len22]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_a18)
                        #pragma omp parallel for
                        for (int __j25 = 0; __j25 < __len22; __j25++) {
                            __gain_o[__j25] = __cost_s1[__j25] * 0.5 + 1.0 + wts[0] * 0.0 + ids[0] * 0.0;
                        }
                    } else {
                        if (__blk17 + 1 < 4) {
                            int __noff26 = (__blk17 + 1) * __bs15;
                            int __nlen27 = __bs15;
                            if (__noff26 + __bs15 > __n14) {
                                __nlen27 = __n14 - __noff26;
                            }
                            if (__nlen27 > 0) {
                                #pragma offload_transfer target(mic:0) in(cost[__base16 + __noff26 : __nlen27] : into(__cost_s1[0 : __nlen27]) alloc_if(0) free_if(0)) signal(&__sig_a18)
                            }
                        }
                        #pragma offload target(mic:0) out(__gain_o[0 : __len22] : into(gain[__base16 + __off21 : __len22]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_b19)
                        #pragma omp parallel for
                        for (int __j28 = 0; __j28 < __len22; __j28++) {
                            __gain_o[__j28] = __cost_s2[__j28] * 0.5 + 1.0 + wts[0] * 0.0 + ids[0] * 0.0;
                        }
                    }
                }
            }
            #pragma offload_transfer target(mic:0) nocopy(__cost_s1 : length(1) alloc_if(0) free_if(1), __cost_s2 : length(1) alloc_if(0) free_if(1), wts : length(1) alloc_if(0) free_if(1), ids : length(1) alloc_if(0) free_if(1), __gain_o : length(1) alloc_if(0) free_if(1))
        }
        {
            int __n29 = n - 0;
            int __base31 = 0;
            int __bs30 = (__n29 + 3) / 4;
            #pragma offload_transfer target(mic:0) in(wts : length(n) alloc_if(1) free_if(0), n) nocopy(__gain_s1 : length(__bs30) alloc_if(1) free_if(0), __gain_s2 : length(__bs30) alloc_if(1) free_if(0), __assignv_s1 : length(__bs30) alloc_if(1) free_if(0), __assignv_s2 : length(__bs30) alloc_if(1) free_if(0))
            int __len35 = __bs30;
            if (0 + __bs30 > __n29) {
                __len35 = __n29 - 0;
            }
            #pragma offload_transfer target(mic:0) in(gain[__base31 + 0 : __len35] : into(__gain_s1[0 : __len35]) alloc_if(0) free_if(0), assignv[__base31 + 0 : __len35] : into(__assignv_s1[0 : __len35]) alloc_if(0) free_if(0)) signal(&__sig_a33)
            for (int __blk32 = 0; __blk32 < 4; __blk32++) {
                int __off36 = __blk32 * __bs30;
                int __len37 = __bs30;
                if (__off36 + __bs30 > __n29) {
                    __len37 = __n29 - __off36;
                }
                if (__len37 > 0) {
                    if (__blk32 % 2 == 0) {
                        if (__blk32 + 1 < 4) {
                            int __noff38 = (__blk32 + 1) * __bs30;
                            int __nlen39 = __bs30;
                            if (__noff38 + __bs30 > __n29) {
                                __nlen39 = __n29 - __noff38;
                            }
                            if (__nlen39 > 0) {
                                #pragma offload_transfer target(mic:0) in(gain[__base31 + __noff38 : __nlen39] : into(__gain_s2[0 : __nlen39]) alloc_if(0) free_if(0), assignv[__base31 + __noff38 : __nlen39] : into(__assignv_s2[0 : __nlen39]) alloc_if(0) free_if(0)) signal(&__sig_b34)
                            }
                        }
                        #pragma offload target(mic:0) out(__assignv_s1[0 : __len37] : into(assignv[__base31 + __off36 : __len37]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_a33)
                        #pragma omp parallel for
                        for (int __j40 = 0; __j40 < __len37; __j40++) {
                            if (__gain_s1[__j40] < __assignv_s1[__j40] + wts[0] * 0.0) {
                                __assignv_s1[__j40] = __gain_s1[__j40];
                            }
                        }
                    } else {
                        if (__blk32 + 1 < 4) {
                            int __noff41 = (__blk32 + 1) * __bs30;
                            int __nlen42 = __bs30;
                            if (__noff41 + __bs30 > __n29) {
                                __nlen42 = __n29 - __noff41;
                            }
                            if (__nlen42 > 0) {
                                #pragma offload_transfer target(mic:0) in(gain[__base31 + __noff41 : __nlen42] : into(__gain_s1[0 : __nlen42]) alloc_if(0) free_if(0), assignv[__base31 + __noff41 : __nlen42] : into(__assignv_s1[0 : __nlen42]) alloc_if(0) free_if(0)) signal(&__sig_a33)
                            }
                        }
                        #pragma offload target(mic:0) out(__assignv_s2[0 : __len37] : into(assignv[__base31 + __off36 : __len37]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_b34)
                        #pragma omp parallel for
                        for (int __j43 = 0; __j43 < __len37; __j43++) {
                            if (__gain_s2[__j43] < __assignv_s2[__j43] + wts[0] * 0.0) {
                                __assignv_s2[__j43] = __gain_s2[__j43];
                            }
                        }
                    }
                }
            }
            #pragma offload_transfer target(mic:0) nocopy(__gain_s1 : length(1) alloc_if(0) free_if(1), __gain_s2 : length(1) alloc_if(0) free_if(1), wts : length(1) alloc_if(0) free_if(1), __assignv_s1 : length(1) alloc_if(0) free_if(1), __assignv_s2 : length(1) alloc_if(0) free_if(1))
        }
        cx = cx + 0.001;
        cy = cy - 0.0005;
    }
    return 0;
}
