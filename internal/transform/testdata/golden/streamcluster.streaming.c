// golden: streamcluster with streaming
// applied: stream at 24:9: pipelined into 4 blocks (reduceMemory=true persistent=true)
// applied: stream at 31:9: pipelined into 4 blocks (reduceMemory=true persistent=true)
// applied: stream at 36:9: pipelined into 4 blocks (reduceMemory=true persistent=true)
float px[8192];

float py[8192];

float wts[8192];

float ids[8192];

float cost[8192];

float gain[8192];

float assignv[8192];

float cx;

float cy;

int n;

int iters;

int __sig_a;

int __sig_b;

float *__px_s1;

float *__px_s2;

float *__py_s1;

float *__py_s2;

float *__cost_o;

int __sig_a5;

int __sig_b6;

float *__cost_s1;

float *__cost_s2;

float *__gain_o;

int __sig_a6;

int __sig_b7;

float *__gain_s1;

float *__gain_s2;

float *__assignv_s1;

float *__assignv_s2;

int main() {
    int it;
    int i;
    n = 8192;
    iters = 200;
    cx = 0.5;
    cy = 0.25;
    for (it = 0; it < iters; it++) {
        {
            int __n1 = n - 0;
            int __base3 = 0;
            int __bs2 = (__n1 + 3) / 4;
            #pragma offload_transfer target(mic:0) in(wts : length(n) alloc_if(1) free_if(0), ids : length(n) alloc_if(1) free_if(0), n, cx, cy) nocopy(__px_s1 : length(__bs2) alloc_if(1) free_if(0), __px_s2 : length(__bs2) alloc_if(1) free_if(0), __py_s1 : length(__bs2) alloc_if(1) free_if(0), __py_s2 : length(__bs2) alloc_if(1) free_if(0), __cost_o : length(__bs2) alloc_if(1) free_if(0))
            int __len5 = __bs2;
            if (0 + __bs2 > __n1) {
                __len5 = __n1 - 0;
            }
            #pragma offload_transfer target(mic:0) in(px[__base3 + 0 : __len5] : into(__px_s1[0 : __len5]) alloc_if(0) free_if(0), py[__base3 + 0 : __len5] : into(__py_s1[0 : __len5]) alloc_if(0) free_if(0)) signal(&__sig_a)
            for (int __blk4 = 0; __blk4 < 4; __blk4++) {
                int __off6 = __blk4 * __bs2;
                int __len7 = __bs2;
                if (__off6 + __bs2 > __n1) {
                    __len7 = __n1 - __off6;
                }
                if (__len7 > 0) {
                    if (__blk4 % 2 == 0) {
                        if (__blk4 + 1 < 4) {
                            int __noff8 = (__blk4 + 1) * __bs2;
                            int __nlen9 = __bs2;
                            if (__noff8 + __bs2 > __n1) {
                                __nlen9 = __n1 - __noff8;
                            }
                            if (__nlen9 > 0) {
                                #pragma offload_transfer target(mic:0) in(px[__base3 + __noff8 : __nlen9] : into(__px_s2[0 : __nlen9]) alloc_if(0) free_if(0), py[__base3 + __noff8 : __nlen9] : into(__py_s2[0 : __nlen9]) alloc_if(0) free_if(0)) signal(&__sig_b)
                            }
                        }
                        #pragma offload target(mic:0) out(__cost_o[0 : __len7] : into(cost[__base3 + __off6 : __len7]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_a)
                        #pragma omp parallel for
                        for (int __j10 = 0; __j10 < __len7; __j10++) {
                            float dx = __px_s1[__j10] - cx;
                            float dy = __py_s1[__j10] - cy;
                            __cost_o[__j10] = (dx * dx + dy * dy) * wts[0] + ids[0] * 0.0;
                        }
                    } else {
                        if (__blk4 + 1 < 4) {
                            int __noff11 = (__blk4 + 1) * __bs2;
                            int __nlen12 = __bs2;
                            if (__noff11 + __bs2 > __n1) {
                                __nlen12 = __n1 - __noff11;
                            }
                            if (__nlen12 > 0) {
                                #pragma offload_transfer target(mic:0) in(px[__base3 + __noff11 : __nlen12] : into(__px_s1[0 : __nlen12]) alloc_if(0) free_if(0), py[__base3 + __noff11 : __nlen12] : into(__py_s1[0 : __nlen12]) alloc_if(0) free_if(0)) signal(&__sig_a)
                            }
                        }
                        #pragma offload target(mic:0) out(__cost_o[0 : __len7] : into(cost[__base3 + __off6 : __len7]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_b)
                        #pragma omp parallel for
                        for (int __j13 = 0; __j13 < __len7; __j13++) {
                            float dx = __px_s2[__j13] - cx;
                            float dy = __py_s2[__j13] - cy;
                            __cost_o[__j13] = (dx * dx + dy * dy) * wts[0] + ids[0] * 0.0;
                        }
                    }
                }
            }
            #pragma offload_transfer target(mic:0) nocopy(__px_s1 : length(1) alloc_if(0) free_if(1), __px_s2 : length(1) alloc_if(0) free_if(1), __py_s1 : length(1) alloc_if(0) free_if(1), __py_s2 : length(1) alloc_if(0) free_if(1), wts : length(1) alloc_if(0) free_if(1), ids : length(1) alloc_if(0) free_if(1), __cost_o : length(1) alloc_if(0) free_if(1))
        }
        {
            int __n1 = n - 0;
            int __base3 = 0;
            int __bs2 = (__n1 + 3) / 4;
            #pragma offload_transfer target(mic:0) in(wts : length(n) alloc_if(1) free_if(0), ids : length(n) alloc_if(1) free_if(0), n) nocopy(__cost_s1 : length(__bs2) alloc_if(1) free_if(0), __cost_s2 : length(__bs2) alloc_if(1) free_if(0), __gain_o : length(__bs2) alloc_if(1) free_if(0))
            int __len7 = __bs2;
            if (0 + __bs2 > __n1) {
                __len7 = __n1 - 0;
            }
            #pragma offload_transfer target(mic:0) in(cost[__base3 + 0 : __len7] : into(__cost_s1[0 : __len7]) alloc_if(0) free_if(0)) signal(&__sig_a5)
            for (int __blk4 = 0; __blk4 < 4; __blk4++) {
                int __off8 = __blk4 * __bs2;
                int __len9 = __bs2;
                if (__off8 + __bs2 > __n1) {
                    __len9 = __n1 - __off8;
                }
                if (__len9 > 0) {
                    if (__blk4 % 2 == 0) {
                        if (__blk4 + 1 < 4) {
                            int __noff10 = (__blk4 + 1) * __bs2;
                            int __nlen11 = __bs2;
                            if (__noff10 + __bs2 > __n1) {
                                __nlen11 = __n1 - __noff10;
                            }
                            if (__nlen11 > 0) {
                                #pragma offload_transfer target(mic:0) in(cost[__base3 + __noff10 : __nlen11] : into(__cost_s2[0 : __nlen11]) alloc_if(0) free_if(0)) signal(&__sig_b6)
                            }
                        }
                        #pragma offload target(mic:0) out(__gain_o[0 : __len9] : into(gain[__base3 + __off8 : __len9]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_a5)
                        #pragma omp parallel for
                        for (int __j12 = 0; __j12 < __len9; __j12++) {
                            __gain_o[__j12] = __cost_s1[__j12] * 0.5 + 1.0 + wts[0] * 0.0 + ids[0] * 0.0;
                        }
                    } else {
                        if (__blk4 + 1 < 4) {
                            int __noff13 = (__blk4 + 1) * __bs2;
                            int __nlen14 = __bs2;
                            if (__noff13 + __bs2 > __n1) {
                                __nlen14 = __n1 - __noff13;
                            }
                            if (__nlen14 > 0) {
                                #pragma offload_transfer target(mic:0) in(cost[__base3 + __noff13 : __nlen14] : into(__cost_s1[0 : __nlen14]) alloc_if(0) free_if(0)) signal(&__sig_a5)
                            }
                        }
                        #pragma offload target(mic:0) out(__gain_o[0 : __len9] : into(gain[__base3 + __off8 : __len9]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_b6)
                        #pragma omp parallel for
                        for (int __j15 = 0; __j15 < __len9; __j15++) {
                            __gain_o[__j15] = __cost_s2[__j15] * 0.5 + 1.0 + wts[0] * 0.0 + ids[0] * 0.0;
                        }
                    }
                }
            }
            #pragma offload_transfer target(mic:0) nocopy(__cost_s1 : length(1) alloc_if(0) free_if(1), __cost_s2 : length(1) alloc_if(0) free_if(1), wts : length(1) alloc_if(0) free_if(1), ids : length(1) alloc_if(0) free_if(1), __gain_o : length(1) alloc_if(0) free_if(1))
        }
        {
            int __n1 = n - 0;
            int __base3 = 0;
            int __bs2 = (__n1 + 3) / 4;
            #pragma offload_transfer target(mic:0) in(wts : length(n) alloc_if(1) free_if(0), n) nocopy(__gain_s1 : length(__bs2) alloc_if(1) free_if(0), __gain_s2 : length(__bs2) alloc_if(1) free_if(0), __assignv_s1 : length(__bs2) alloc_if(1) free_if(0), __assignv_s2 : length(__bs2) alloc_if(1) free_if(0))
            int __len8 = __bs2;
            if (0 + __bs2 > __n1) {
                __len8 = __n1 - 0;
            }
            #pragma offload_transfer target(mic:0) in(gain[__base3 + 0 : __len8] : into(__gain_s1[0 : __len8]) alloc_if(0) free_if(0), assignv[__base3 + 0 : __len8] : into(__assignv_s1[0 : __len8]) alloc_if(0) free_if(0)) signal(&__sig_a6)
            for (int __blk4 = 0; __blk4 < 4; __blk4++) {
                int __off9 = __blk4 * __bs2;
                int __len10 = __bs2;
                if (__off9 + __bs2 > __n1) {
                    __len10 = __n1 - __off9;
                }
                if (__len10 > 0) {
                    if (__blk4 % 2 == 0) {
                        if (__blk4 + 1 < 4) {
                            int __noff11 = (__blk4 + 1) * __bs2;
                            int __nlen12 = __bs2;
                            if (__noff11 + __bs2 > __n1) {
                                __nlen12 = __n1 - __noff11;
                            }
                            if (__nlen12 > 0) {
                                #pragma offload_transfer target(mic:0) in(gain[__base3 + __noff11 : __nlen12] : into(__gain_s2[0 : __nlen12]) alloc_if(0) free_if(0), assignv[__base3 + __noff11 : __nlen12] : into(__assignv_s2[0 : __nlen12]) alloc_if(0) free_if(0)) signal(&__sig_b7)
                            }
                        }
                        #pragma offload target(mic:0) out(__assignv_s1[0 : __len10] : into(assignv[__base3 + __off9 : __len10]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_a6)
                        #pragma omp parallel for
                        for (int __j13 = 0; __j13 < __len10; __j13++) {
                            if (__gain_s1[__j13] < __assignv_s1[__j13] + wts[0] * 0.0) {
                                __assignv_s1[__j13] = __gain_s1[__j13];
                            }
                        }
                    } else {
                        if (__blk4 + 1 < 4) {
                            int __noff14 = (__blk4 + 1) * __bs2;
                            int __nlen15 = __bs2;
                            if (__noff14 + __bs2 > __n1) {
                                __nlen15 = __n1 - __noff14;
                            }
                            if (__nlen15 > 0) {
                                #pragma offload_transfer target(mic:0) in(gain[__base3 + __noff14 : __nlen15] : into(__gain_s1[0 : __nlen15]) alloc_if(0) free_if(0), assignv[__base3 + __noff14 : __nlen15] : into(__assignv_s1[0 : __nlen15]) alloc_if(0) free_if(0)) signal(&__sig_a6)
                            }
                        }
                        #pragma offload target(mic:0) out(__assignv_s2[0 : __len10] : into(assignv[__base3 + __off9 : __len10]) alloc_if(0) free_if(0)) persist(1) wait(&__sig_b7)
                        #pragma omp parallel for
                        for (int __j16 = 0; __j16 < __len10; __j16++) {
                            if (__gain_s2[__j16] < __assignv_s2[__j16] + wts[0] * 0.0) {
                                __assignv_s2[__j16] = __gain_s2[__j16];
                            }
                        }
                    }
                }
            }
            #pragma offload_transfer target(mic:0) nocopy(__gain_s1 : length(1) alloc_if(0) free_if(1), __gain_s2 : length(1) alloc_if(0) free_if(1), wts : length(1) alloc_if(0) free_if(1), __assignv_s1 : length(1) alloc_if(0) free_if(1), __assignv_s2 : length(1) alloc_if(0) free_if(1))
        }
        cx = cx + 0.001;
        cy = cy - 0.0005;
    }
    return 0;
}
