package transform

import (
	"fmt"
	"sync"

	"comp/internal/sim/engine"
	"comp/internal/tune/search"
)

// Online block-count autotuning. The §III-B model picks N analytically from
// D, C and K, but its assumptions — uniform blocks, a stable K, transfer
// and compute that scale linearly with block size — break under irregular
// workloads and shared devices. Zhang et al. ("Tuning Streamed Applications
// on Intel Xeon Phi") show measured feedback beats the closed form there.
// AutoTuner keeps the model as the starting point and replaces trust with
// measurement: it probes actual simulated run times, hill-climbing along a
// small ladder of candidate block counts.
//
// AutoTuner is now a shim over the shared search layer: the climb itself
// lives in internal/tune/search, where the cost-model pipeline tuner
// (internal/tune) reuses it as the block-dimension refinement of its wider
// pipeline × streams × blocks search. This type keeps the per-key cache
// and the stable API the bench and serving layers already depend on.

// DefaultLadder is the candidate block counts the tuner walks: the paper's
// sweep {10, 20, 40, 50} widened downward so transfer-dominated kernels
// that want shallow pipelines are reachable. It must be sorted ascending.
func DefaultLadder() []int { return []int{2, 4, 8, 10, 20, 40, 50} }

// DefaultMaxProbes bounds measured runs per tuning key. A hill-climb on the
// 7-point default ladder probes every rung in the worst case; 8 gives it
// one spare.
const DefaultMaxProbes = 8

// Measurement is one probe: the measured execution time at a block count.
type Measurement struct {
	Blocks int
	Time   engine.Duration
}

// TuneResult is the outcome of one Tune call.
type TuneResult struct {
	// Blocks is the chosen block count; Time its measured execution time.
	Blocks int
	Time   engine.Duration
	// Probes is how many measured runs the search spent (0 on cache hits).
	Probes int
	// Cached reports the result came from the per-key cache.
	Cached bool
	// History lists the probes in measurement order.
	History []Measurement
}

// AutoTuner searches block counts by measurement. The zero value is ready
// to use (default ladder and probe budget). Safe for concurrent use; probe
// results are cached per key, so a (workload, machine) pair is tuned once.
type AutoTuner struct {
	// Ladder is the ascending candidate list; nil means DefaultLadder.
	Ladder []int
	// MaxProbes bounds measured runs per key; 0 means DefaultMaxProbes.
	MaxProbes int

	mu    sync.Mutex
	cache map[string]TuneResult
}

// Tune returns the best block count for key, measuring with measure. The
// search seeds at the ladder rung nearest seed (callers pass the §III-B
// OptimalBlocks answer, or DefaultBlocks without a profile), then probes
// neighbouring rungs and moves downhill while the measured time improves,
// stopping at a local minimum or when the probe budget is spent. Results
// are cached: a second Tune with the same key returns the stored result
// with Cached set and measure never called.
func (t *AutoTuner) Tune(key string, seed int, measure func(blocks int) (engine.Duration, error)) (TuneResult, error) {
	t.mu.Lock()
	if r, ok := t.cache[key]; ok {
		t.mu.Unlock()
		r.Cached = true
		r.Probes = 0
		return r, nil
	}
	t.mu.Unlock()

	ladder := t.Ladder
	if ladder == nil {
		ladder = DefaultLadder()
	}
	if len(ladder) == 0 {
		return TuneResult{}, fmt.Errorf("transform: AutoTuner has an empty ladder")
	}
	budget := t.MaxProbes
	if budget == 0 {
		budget = DefaultMaxProbes
	}
	sr, err := search.Climb(ladder, seed, budget, measure)
	if err != nil {
		return TuneResult{}, fmt.Errorf("transform: %w", err)
	}
	if sr.Probes == 0 {
		return TuneResult{}, fmt.Errorf("transform: AutoTuner probe budget %d spent nothing", budget)
	}
	res := TuneResult{Blocks: sr.Value, Time: sr.Time, Probes: sr.Probes}
	for _, p := range sr.History {
		res.History = append(res.History, Measurement{Blocks: p.Value, Time: p.Time})
	}

	t.mu.Lock()
	if t.cache == nil {
		t.cache = map[string]TuneResult{}
	}
	t.cache[key] = res
	t.mu.Unlock()
	return res, nil
}
