package transform

import (
	"fmt"
	"sort"
	"sync"

	"comp/internal/sim/engine"
)

// Online block-count autotuning. The §III-B model picks N analytically from
// D, C and K, but its assumptions — uniform blocks, a stable K, transfer
// and compute that scale linearly with block size — break under irregular
// workloads and shared devices. Zhang et al. ("Tuning Streamed Applications
// on Intel Xeon Phi") show measured feedback beats the closed form there.
// AutoTuner keeps the model as the starting point and replaces trust with
// measurement: it probes actual simulated run times, hill-climbing along a
// small ladder of candidate block counts.

// DefaultLadder is the candidate block counts the tuner walks: the paper's
// sweep {10, 20, 40, 50} widened downward so transfer-dominated kernels
// that want shallow pipelines are reachable. It must be sorted ascending.
func DefaultLadder() []int { return []int{2, 4, 8, 10, 20, 40, 50} }

// DefaultMaxProbes bounds measured runs per tuning key. A hill-climb on the
// 7-point default ladder probes every rung in the worst case; 8 gives it
// one spare.
const DefaultMaxProbes = 8

// Measurement is one probe: the measured execution time at a block count.
type Measurement struct {
	Blocks int
	Time   engine.Duration
}

// TuneResult is the outcome of one Tune call.
type TuneResult struct {
	// Blocks is the chosen block count; Time its measured execution time.
	Blocks int
	Time   engine.Duration
	// Probes is how many measured runs the search spent (0 on cache hits).
	Probes int
	// Cached reports the result came from the per-key cache.
	Cached bool
	// History lists the probes in measurement order.
	History []Measurement
}

// AutoTuner searches block counts by measurement. The zero value is ready
// to use (default ladder and probe budget). Safe for concurrent use; probe
// results are cached per key, so a (workload, machine) pair is tuned once.
type AutoTuner struct {
	// Ladder is the ascending candidate list; nil means DefaultLadder.
	Ladder []int
	// MaxProbes bounds measured runs per key; 0 means DefaultMaxProbes.
	MaxProbes int

	mu    sync.Mutex
	cache map[string]TuneResult
}

// Tune returns the best block count for key, measuring with measure. The
// search seeds at the ladder rung nearest seed (callers pass the §III-B
// OptimalBlocks answer, or DefaultBlocks without a profile), then probes
// neighbouring rungs and moves downhill while the measured time improves,
// stopping at a local minimum or when the probe budget is spent. Results
// are cached: a second Tune with the same key returns the stored result
// with Cached set and measure never called.
func (t *AutoTuner) Tune(key string, seed int, measure func(blocks int) (engine.Duration, error)) (TuneResult, error) {
	t.mu.Lock()
	if r, ok := t.cache[key]; ok {
		t.mu.Unlock()
		r.Cached = true
		r.Probes = 0
		return r, nil
	}
	t.mu.Unlock()

	ladder := t.Ladder
	if ladder == nil {
		ladder = DefaultLadder()
	}
	if len(ladder) == 0 {
		return TuneResult{}, fmt.Errorf("transform: AutoTuner has an empty ladder")
	}
	if !sort.IntsAreSorted(ladder) {
		return TuneResult{}, fmt.Errorf("transform: AutoTuner ladder %v is not ascending", ladder)
	}
	budget := t.MaxProbes
	if budget == 0 {
		budget = DefaultMaxProbes
	}

	res := TuneResult{}
	seen := map[int]engine.Duration{}
	probe := func(i int) (engine.Duration, error) {
		blocks := ladder[i]
		if d, ok := seen[blocks]; ok {
			return d, nil
		}
		if res.Probes >= budget {
			return 0, errBudget
		}
		d, err := measure(blocks)
		if err != nil {
			return 0, err
		}
		res.Probes++
		seen[blocks] = d
		res.History = append(res.History, Measurement{Blocks: blocks, Time: d})
		if res.Blocks == 0 || d < res.Time {
			res.Blocks, res.Time = blocks, d
		}
		return d, nil
	}

	// Start at the rung nearest the analytic seed.
	at := nearestRung(ladder, seed)
	cur, err := probe(at)
	if err != nil {
		return TuneResult{}, err
	}
	// Pick the downhill direction by peeking at both neighbours, then keep
	// walking while the measured time improves.
	dir := 0
	bestN := cur
	for _, d := range []int{-1, +1} {
		j := at + d
		if j < 0 || j >= len(ladder) {
			continue
		}
		n, err := probe(j)
		if err == errBudget {
			break
		}
		if err != nil {
			return TuneResult{}, err
		}
		if n < bestN {
			bestN, dir = n, d
		}
	}
	for dir != 0 {
		at += dir
		cur = bestN
		j := at + dir
		if j < 0 || j >= len(ladder) {
			break
		}
		n, err := probe(j)
		if err == errBudget {
			break
		}
		if err != nil {
			return TuneResult{}, err
		}
		if n >= cur {
			break
		}
		bestN = n
	}

	t.mu.Lock()
	if t.cache == nil {
		t.cache = map[string]TuneResult{}
	}
	t.cache[key] = res
	t.mu.Unlock()
	return res, nil
}

// errBudget is the internal out-of-probes signal; the search returns the
// best measurement so far when it surfaces.
var errBudget = fmt.Errorf("transform: probe budget exhausted")

// nearestRung returns the index of the ladder value closest to seed, the
// lower rung on ties.
func nearestRung(ladder []int, seed int) int {
	best, bestDist := 0, -1
	for i, v := range ladder {
		d := v - seed
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}
