package transform

import (
	"math"

	"comp/internal/sim/engine"
)

// The §III-B block-count model. With total transfer time D, total
// computation time C, per-launch overhead K and N blocks, streamed
// execution takes
//
//	T(N) = D/N + max(C/N + K, D/N) * (N-1) + C/N + K.
//
// When compute dominates (C/N + K > D/N) the optimum is N = sqrt(D/K);
// when transfer dominates it is N = (D - C)/K.

// ModelTime evaluates T(N).
func ModelTime(d, c, k engine.Duration, n int) engine.Duration {
	if n < 1 {
		n = 1
	}
	dn := float64(d) / float64(n)
	cn := float64(c)/float64(n) + float64(k)
	inner := cn
	if dn > inner {
		inner = dn
	}
	return engine.Duration(dn + inner*float64(n-1) + cn)
}

// OptimalBlocks returns the model's best block count, clamped to
// [minBlocks, maxBlocks]. The clamp reflects the paper's observation that
// the best N for most benchmarks lies between 10 and 40; outside that
// range either launch overhead (large N) or lost overlap (small N)
// dominates.
func OptimalBlocks(d, c, k engine.Duration) int {
	if k <= 0 {
		return maxBlocks
	}
	if d <= 0 {
		return minBlocks
	}
	var n float64
	if c >= d {
		// Compute-bound: N* = sqrt(D/K).
		n = math.Sqrt(float64(d) / float64(k))
	} else {
		// Transfer-bound: N* = (D - C)/K. When D−C < 2K this lands below
		// two blocks — no pipeline at all — even though sqrt(D/K) may
		// round to 1 as well; clampBlocks pins the floor either way.
		n = float64(d-c) / float64(k)
		if s := math.Sqrt(float64(d) / float64(k)); n < s {
			n = s
		}
	}
	best := clampBlocks(int(n + 0.5))
	// The model is coarse; refine by direct evaluation around the analytic
	// answer (cheap, and robust to the max() kink).
	bestT := ModelTime(d, c, k, best)
	for cand := minBlocks; cand <= maxBlocks; cand++ {
		if t := ModelTime(d, c, k, cand); t < bestT {
			best, bestT = cand, t
		}
	}
	return best
}

// Block-count bounds: below two blocks there is no pipeline to overlap;
// beyond 64 launch overhead always dominates at the paper's scales.
const (
	minBlocks = 2
	maxBlocks = 64
)

// clampBlocks pins a candidate block count to [minBlocks, maxBlocks]. Both
// analytic branches of OptimalBlocks can land outside the range (the
// transfer-bound optimum (D−C)/K drops below 2 whenever D−C < 2K), so the
// clamp is the single place the invariant lives.
func clampBlocks(n int) int {
	if n < minBlocks {
		return minBlocks
	}
	if n > maxBlocks {
		return maxBlocks
	}
	return n
}

// DefaultBlocks is used when no profile is available; the paper sweeps
// N in {10, 20, 40, 50} and finds 10–40 best for most benchmarks.
const DefaultBlocks = 20
