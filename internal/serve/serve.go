// Package serve is the offload-as-a-service layer: a long-running front
// end that multiplexes many clients onto the multi-stream scheduler
// (runtime.Scheduler) the way a serving system fronts a model or a
// database — with a plan cache, admission control, and batching.
//
// The paper's kernel-launch minimization (§III) amortizes per-offload
// setup across many small requests; this layer amortizes the other
// per-workload costs a service pays: compiling the optimized program and
// tuning its streaming block count by measurement run once per
// (workload, machine) key and are reused by every later request (Zhang et
// al.: tuning decisions are a property of the workload/platform pair, not
// of the request). Admitted requests are grouped into batches, each batch
// executed as one deterministic Scheduler run across N device streams
// (Li et al.: multiplexing streams recovers the utilization a single
// pipeline leaves idle).
//
// Determinism: a request's results are a pure function of its plan source
// and input setup. The interpreter computes every value itself — the
// simulated platform only times operations (proven by the differential
// suite in internal/interp) — so batch composition, stream assignment,
// arrival interleaving, and injected faults change timing but never
// outputs. Two runs of the same request trace therefore return
// bit-identical per-request results even though batch boundaries differ.
//
// Admission control never stalls a caller: a full queue rejects with
// ErrOverloaded immediately, and every admitted request is answered
// exactly once (a result, its error, or ErrDeadlineExceeded) — requests
// are never dropped silently.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"comp/internal/interp"
	"comp/internal/runtime"
	"comp/internal/sim/engine"
	"comp/internal/sim/fault"
	"comp/internal/sim/metrics"
	"comp/internal/tune"
	"comp/internal/vm"
)

// Typed admission-control errors.
var (
	// ErrOverloaded rejects a submission because the admission queue is
	// full. The caller sees it immediately — shedding never blocks.
	ErrOverloaded = errors.New("serve: overloaded: admission queue full")
	// ErrDeadlineExceeded answers an admitted request whose deadline passed
	// while it waited in the queue.
	ErrDeadlineExceeded = errors.New("serve: deadline exceeded while queued")
	// ErrClosed rejects submissions after Close.
	ErrClosed = errors.New("serve: server closed")
	// ErrInvalidJob rejects a malformed Job at submission, before it is
	// admitted — an empty job, an inline source without a cache key, or a
	// negative deadline would otherwise fail deep inside the planner.
	// Returned errors wrap it; match with errors.Is.
	ErrInvalidJob = errors.New("serve: invalid job")
)

// Config assembles a server.
type Config struct {
	// Runtime is the simulated platform; nil means runtime.DefaultConfig
	// with tracing disabled (server-level metrics come from the serving
	// layer, not per-run span streams).
	Runtime *runtime.Config
	// Streams is the device-stream count each batch runs on (default 4).
	Streams int
	// QueueDepth bounds the admission queue (default 64). Submissions
	// beyond it shed with ErrOverloaded.
	QueueDepth int
	// MaxBatch caps how many queued requests one Scheduler run executes
	// (default QueueDepth).
	MaxBatch int
	// Planner is the plan cache; nil creates a private one. Share a
	// Planner across servers to warm one cache for a fleet.
	Planner *Planner
	// Tune switches plan building to the unified cost-model pipeline
	// search (internal/tune): candidate pipeline orderings and block
	// counts are priced by the cost model and only the top candidates are
	// probed, with the decision recorded in the plan's remark trail. Plan
	// cache keys gain a "|tuned" marker so tuned and legacy plans never
	// alias. Enabling it on any server sharing a Planner enables it for
	// all of them (first enable wins).
	Tune bool
	// TuneModel seeds the tuner's learned predictor and accumulates every
	// decision made while serving; nil starts an empty private model.
	// Only read when Tune is set.
	TuneModel *tune.Model
	// Clock, when non-nil, replaces time.Now for every timestamp the
	// server takes (enqueue times, deadline checks, completion times).
	// Trace replay injects a virtual clock here so deadlines and latency
	// histograms become a deterministic function of the trace instead of
	// wall-clock scheduling noise.
	Clock func() time.Time
	// Stepped disables the background dispatcher: batches run only when
	// the owner calls StepBatch, one batch per call, synchronously on the
	// caller's goroutine. Combined with Clock this makes batch composition
	// — and therefore every figure in the ServerReport — bit-identical
	// across replays of the same submission sequence.
	Stepped bool
	// Exec pins the execution engine for every program this server
	// compiles: vm.ExecVM for bytecode, vm.ExecInterp for the tree-walker,
	// "" for the process-wide default (vm.SetExecMode).
	Exec string
}

// Job is one client request.
type Job struct {
	// Workload names a registry benchmark (workloads.Get) to serve. Leave
	// empty for inline-source jobs.
	Workload string
	// Source is an inline MiniC program; Key must then name the plan-cache
	// entry (two jobs with the same Key share one plan, so the Key must
	// identify the source and its setup).
	Source string
	Key    string
	// Outputs lists the global arrays returned for inline-source jobs
	// (workload jobs report the benchmark's output arrays).
	Outputs []string
	// Optimize runs inline source through the COMP pipeline with a
	// measured-tuned block count when its plan is built.
	Optimize bool
	// Setup overrides the plan's input-injection hook for this request
	// (same plan, different inputs). Nil uses the plan's own.
	Setup func(*interp.Program) error
	// Deadline is the wall-clock budget from submission; a request still
	// queued when it expires is answered with ErrDeadlineExceeded. Zero
	// means no deadline.
	Deadline time.Duration
}

// validate rejects malformed jobs before they are admitted. Every error
// wraps ErrInvalidJob.
func (j Job) validate() error {
	switch {
	case j.Workload == "" && j.Source == "" && j.Key == "":
		return fmt.Errorf("%w: names neither a workload nor an inline source", ErrInvalidJob)
	case j.Source == "" && j.Workload == "" && j.Key != "":
		return fmt.Errorf("%w: key %q has no source and no workload", ErrInvalidJob, j.Key)
	case j.Source != "" && j.Key == "":
		return fmt.Errorf("%w: inline source requires a plan-cache Key", ErrInvalidJob)
	case j.Source != "" && j.Workload != "":
		return fmt.Errorf("%w: names both workload %q and an inline source", ErrInvalidJob, j.Workload)
	case j.Deadline < 0:
		return fmt.Errorf("%w: negative deadline %v", ErrInvalidJob, j.Deadline)
	}
	return nil
}

// Response is one served request's result.
type Response struct {
	// Label is the server-assigned request id inside its batch run.
	Label string
	// Plan identifies the plan that served the request; PlanCached reports
	// whether it was reused (true for every request after a key's first).
	PlanKey    string
	PlanCached bool
	// Blocks is the plan's tuned streaming block count (0 = non-streaming).
	Blocks int
	// Outputs holds the program's output arrays by name, copied out of the
	// executed instance.
	Outputs map[string][]float64
	// QueueWaitSim is the request's simulated-time wait behind earlier
	// requests on its stream; StreamID the stream it ran on.
	QueueWaitSim engine.Duration
	StreamID     int
	// BatchSize is how many requests shared the scheduler run.
	BatchSize int
	// Latency is the wall-clock submit→response time.
	Latency time.Duration
	// Retries and Fallbacks are the request's fault-recovery footprint:
	// reissued operations and degradation-ladder steps its scheduler run
	// recorded for it (0 on fault-free runs).
	Retries   int64
	Fallbacks int
}

// pending is one admitted request waiting for its batch.
type pending struct {
	job      Job
	label    string
	enqueued time.Time
	deadline time.Time // zero = none
	resp     chan outcome
}

type outcome struct {
	resp Response
	err  error
}

// fail answers a pending request with an error. Each pending is answered
// exactly once; resp is buffered so the dispatcher never blocks on a
// caller.
func (p *pending) fail(err error) { p.resp <- outcome{err: err} }

// Server is the long-running offload service. Submissions (Do) are safe
// from any number of goroutines; a single dispatcher goroutine drains the
// admission queue into batched Scheduler runs.
type Server struct {
	cfg     Config
	clock   func() time.Time
	planner *Planner
	queue   chan *pending
	quit    chan struct{}
	wg      sync.WaitGroup

	// rtCfg is the simulated platform; rtMu guards it because SetFaults
	// may retarget the fault schedule between batches.
	rtMu  sync.Mutex
	rtCfg runtime.Config

	mu     sync.Mutex
	closed bool
	nextID int64

	// admitLimit, when ≥ 0, caps the admitted queue depth below the
	// channel's capacity — the runtime knob behind queue-capacity-squeeze
	// scenarios. -1 means the full QueueDepth.
	admitLimit int64

	// Counters (atomics; the slices under statsMu).
	submitted int64
	admitted  int64
	completed int64
	failed    int64
	shed      int64
	expired   int64
	invalid   int64
	batches   int64
	maxDepth  int64
	maxBatch  int64
	// Fault-recovery totals accumulated from every batch's SchedStats.
	faultsInjected int64
	retries        int64
	watchdogFires  int64
	fallbacks      int64
	// simBusy sums the simulated makespan of every batch this server ran.
	// Batches on one device are sequential, so the sum is the device's
	// simulated busy time — the deterministic per-device makespan figure
	// the fleet layer rolls up.
	simBusy int64

	statsMu    sync.Mutex
	latencies  []int64
	queueWaits []int64
	batchSizes []int64

	// testHoldBatch, when set by tests, stalls the dispatcher at the top of
	// every batch until the channel yields — the hook that makes overload
	// and deadline behavior deterministic to test.
	testHoldBatch chan struct{}
}

// New validates the configuration and starts the dispatcher.
func New(cfg Config) (*Server, error) {
	if cfg.Streams == 0 {
		cfg.Streams = 4
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.QueueDepth < 0 || cfg.Streams < 0 || cfg.MaxBatch < 0 {
		return nil, fmt.Errorf("serve: negative Config value")
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = cfg.QueueDepth
	}
	rtCfg := runtime.DefaultConfig()
	rtCfg.DisableTrace = true
	if cfg.Runtime != nil {
		rtCfg = *cfg.Runtime
	}
	// Validate platform and partition up front, not on the first batch.
	if _, err := runtime.NewScheduler(rtCfg, cfg.Streams); err != nil {
		return nil, err
	}
	planner := cfg.Planner
	if planner == nil {
		planner = NewPlanner()
	}
	if cfg.Tune {
		planner.EnableTune(cfg.TuneModel)
	}
	s := &Server{
		cfg:        cfg,
		clock:      cfg.Clock,
		rtCfg:      rtCfg,
		planner:    planner,
		queue:      make(chan *pending, cfg.QueueDepth),
		quit:       make(chan struct{}),
		admitLimit: -1,
	}
	if s.clock == nil {
		s.clock = time.Now
	}
	if !cfg.Stepped {
		s.wg.Add(1)
		go s.dispatch()
	}
	return s, nil
}

// now reads the server's clock (time.Now unless Config.Clock was set).
func (s *Server) now() time.Time { return s.clock() }

// SetFaults swaps the fault schedule used by every subsequent batch; it
// validates the schedule and never disturbs batches already running.
// Scenario replay uses it for fault storms and device unplug/replug
// windows; it is safe to call concurrently with submissions.
func (s *Server) SetFaults(fc fault.Config) error {
	if err := fc.Validate(); err != nil {
		return err
	}
	s.rtMu.Lock()
	s.rtCfg.Faults = fc
	s.rtMu.Unlock()
	return nil
}

// Faults returns the currently configured fault schedule.
func (s *Server) Faults() fault.Config {
	s.rtMu.Lock()
	defer s.rtMu.Unlock()
	return s.rtCfg.Faults
}

// SetAdmitLimit caps the admitted queue depth below QueueDepth — the
// queue-capacity-squeeze knob: submissions beyond the limit shed with
// ErrOverloaded exactly as if the queue were that small. A negative limit
// restores the full capacity. Requests already queued are unaffected.
func (s *Server) SetAdmitLimit(n int) {
	if n < 0 {
		n = -1
	}
	atomic.StoreInt64(&s.admitLimit, int64(n))
}

// Planner returns the server's plan cache.
func (s *Server) Planner() *Planner { return s.planner }

// Depth reports how many admitted requests are waiting in the queue right
// now. It is a load signal, not a synchronized snapshot: the fleet router
// reads it to pick the least-loaded device when a primary's queue grows
// past the work-stealing threshold.
func (s *Server) Depth() int { return len(s.queue) }

// Ticket is an admitted request's claim on its eventual answer. Wait
// consumes the answer; it may be called at most once.
type Ticket struct {
	label string
	resp  chan outcome
}

// Label returns the server-assigned request id.
func (t *Ticket) Label() string { return t.label }

// Wait blocks until the ticket's request is served and returns its
// response or error. Exactly one Wait per ticket.
func (t *Ticket) Wait() (Response, error) {
	out := <-t.resp
	return out.resp, out.err
}

// Do submits a job and blocks until it is served. It returns
// ErrInvalidJob for malformed jobs, ErrOverloaded immediately when the
// admission queue is full, ErrClosed after Close, and ErrDeadlineExceeded
// if the job's deadline passed while it was queued. Safe for concurrent
// use.
func (s *Server) Do(job Job) (Response, error) {
	t, err := s.Enqueue(job)
	if err != nil {
		return Response{}, err
	}
	return t.Wait()
}

// Enqueue is the non-blocking half of Do: it validates and admits the job
// and returns a Ticket for the answer, or the typed admission error
// (ErrInvalidJob, ErrOverloaded, ErrClosed) immediately. Admission outcome
// is known synchronously, which is what lets a trace replayer submit a
// request sequence with a deterministic queue order. Safe for concurrent
// use.
func (s *Server) Enqueue(job Job) (*Ticket, error) {
	atomic.AddInt64(&s.submitted, 1)
	if err := job.validate(); err != nil {
		atomic.AddInt64(&s.invalid, 1)
		return nil, err
	}
	p := &pending{job: job, enqueued: s.now(), resp: make(chan outcome, 1)}
	if job.Deadline > 0 {
		p.deadline = p.enqueued.Add(job.Deadline)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if limit := atomic.LoadInt64(&s.admitLimit); limit >= 0 && int64(len(s.queue)) >= limit {
		s.mu.Unlock()
		atomic.AddInt64(&s.shed, 1)
		return nil, ErrOverloaded
	}
	s.nextID++
	p.label = fmt.Sprintf("r%08d", s.nextID)
	select {
	case s.queue <- p:
		depth := int64(len(s.queue))
		s.mu.Unlock()
		atomic.AddInt64(&s.admitted, 1)
		for {
			max := atomic.LoadInt64(&s.maxDepth)
			if depth <= max || atomic.CompareAndSwapInt64(&s.maxDepth, max, depth) {
				break
			}
		}
	default:
		s.mu.Unlock()
		atomic.AddInt64(&s.shed, 1)
		return nil, ErrOverloaded
	}
	return &Ticket{label: p.label, resp: p.resp}, nil
}

// Close stops admissions, serves every already-queued request, and waits
// for the dispatcher to finish. On a stepped server the remaining queue is
// drained synchronously. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	s.wg.Wait()
	if s.cfg.Stepped {
		for s.stepOne() > 0 {
		}
	}
}

// StepBatch collects and runs exactly one batch on the caller's goroutine
// and returns how many requests it answered (0 when the queue is empty).
// Only valid on a server built with Config.Stepped; the caller is the
// dispatcher, so StepBatch must not be called concurrently with itself or
// with Close.
func (s *Server) StepBatch() int {
	if !s.cfg.Stepped {
		panic("serve: StepBatch on a server without Config.Stepped")
	}
	return s.stepOne()
}

// stepOne drains and runs one batch if anything is queued.
func (s *Server) stepOne() int {
	select {
	case p := <-s.queue:
		batch := s.drainBatch(p)
		s.runBatch(batch)
		return len(batch)
	default:
		return 0
	}
}

// dispatch is the single consumer of the admission queue. After quit it
// drains what was admitted before Close and exits — queued requests are
// served, never dropped.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		select {
		case p := <-s.queue:
			s.runBatch(s.drainBatch(p))
		case <-s.quit:
			for {
				select {
				case p := <-s.queue:
					s.runBatch(s.drainBatch(p))
				default:
					return
				}
			}
		}
	}
}

// drainBatch greedily collects everything already queued, up to MaxBatch.
func (s *Server) drainBatch(first *pending) []*pending {
	batch := []*pending{first}
	for len(batch) < s.cfg.MaxBatch {
		select {
		case p := <-s.queue:
			batch = append(batch, p)
		default:
			return batch
		}
	}
	return batch
}

// runBatch plans, compiles and executes one batch as a single Scheduler
// run, then answers every request in it.
func (s *Server) runBatch(batch []*pending) {
	if s.testHoldBatch != nil {
		<-s.testHoldBatch
	}
	atomic.AddInt64(&s.batches, 1)
	for {
		max := atomic.LoadInt64(&s.maxBatch)
		if int64(len(batch)) <= max || atomic.CompareAndSwapInt64(&s.maxBatch, max, int64(len(batch))) {
			break
		}
	}

	// Snapshot the platform config once per batch: SetFaults may swap the
	// fault schedule between batches but never inside one.
	s.rtMu.Lock()
	rtCfg := s.rtCfg
	s.rtMu.Unlock()

	// Shed expired requests before spending any work on them.
	now := s.now()
	live := make([]*pending, 0, len(batch))
	for _, p := range batch {
		if !p.deadline.IsZero() && now.After(p.deadline) {
			atomic.AddInt64(&s.expired, 1)
			p.fail(ErrDeadlineExceeded)
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}

	// Resolve plans (cache hits are free; first use per key tunes) and
	// compile one fresh program per request.
	type item struct {
		p      *pending
		plan   *Plan
		cached bool
		prog   *interp.Program
	}
	items := make([]item, 0, len(live))
	for _, p := range live {
		plan, cached, err := s.planner.planFor(p.job, rtCfg)
		if err != nil {
			atomic.AddInt64(&s.failed, 1)
			p.fail(err)
			continue
		}
		prog, err := interp.Compile(plan.Source)
		if err != nil {
			atomic.AddInt64(&s.failed, 1)
			p.fail(fmt.Errorf("serve: plan %s compile: %w", plan.Key, err))
			continue
		}
		if err := vm.Apply(prog, s.cfg.Exec); err != nil {
			atomic.AddInt64(&s.failed, 1)
			p.fail(fmt.Errorf("serve: plan %s: %w", plan.Key, err))
			continue
		}
		items = append(items, item{p: p, plan: plan, cached: cached, prog: prog})
	}
	if len(items) == 0 {
		return
	}

	failAll := func(err error) {
		for _, it := range items {
			atomic.AddInt64(&s.failed, 1)
			it.p.fail(err)
		}
	}
	sched, err := runtime.NewScheduler(rtCfg, s.cfg.Streams)
	if err != nil {
		failAll(err)
		return
	}
	for _, it := range items {
		setup := it.p.job.Setup
		if setup == nil {
			setup = it.plan.setup
		}
		sched.Submit(runtime.Request{Label: it.p.label, Program: it.prog, Setup: setup})
	}
	res, err := sched.Run()
	if err != nil {
		failAll(err)
		return
	}
	byLabel := make(map[string]runtime.RequestStats, len(res.Stats.Requests))
	var fellBack int64
	for _, rq := range res.Stats.Requests {
		byLabel[rq.Label] = rq
		fellBack += int64(len(rq.Fallbacks))
	}
	atomic.AddInt64(&s.faultsInjected, res.Stats.FaultsInjected)
	atomic.AddInt64(&s.retries, res.Stats.Retries)
	atomic.AddInt64(&s.watchdogFires, res.Stats.WatchdogFires)
	atomic.AddInt64(&s.fallbacks, fellBack)
	atomic.AddInt64(&s.simBusy, int64(res.Stats.Time))

	done := s.now()
	for _, it := range items {
		outputs := make(map[string][]float64, len(it.plan.Outputs))
		var outErr error
		for _, name := range it.plan.Outputs {
			data, err := it.prog.ArrayData(name)
			if err != nil {
				outErr = err
				break
			}
			outputs[name] = append([]float64(nil), data...)
		}
		if outErr != nil {
			atomic.AddInt64(&s.failed, 1)
			it.p.fail(outErr)
			continue
		}
		rq := byLabel[it.p.label]
		resp := Response{
			Label:        it.p.label,
			PlanKey:      it.plan.Key,
			PlanCached:   it.cached,
			Blocks:       it.plan.Blocks,
			Outputs:      outputs,
			QueueWaitSim: rq.QueueWait,
			StreamID:     rq.StreamID,
			BatchSize:    len(items),
			Latency:      done.Sub(it.p.enqueued),
			Retries:      rq.Retries,
			Fallbacks:    len(rq.Fallbacks),
		}
		atomic.AddInt64(&s.completed, 1)
		s.statsMu.Lock()
		s.latencies = append(s.latencies, int64(resp.Latency))
		s.queueWaits = append(s.queueWaits, int64(rq.QueueWait))
		s.statsMu.Unlock()
		it.p.resp <- outcome{resp: resp}
	}
	s.statsMu.Lock()
	s.batchSizes = append(s.batchSizes, int64(len(items)))
	s.statsMu.Unlock()
}

// Report snapshots the server-level metrics as a metrics.ServerReport.
func (s *Server) Report() metrics.ServerReport {
	hits, misses, probes := s.planner.Stats()
	rep := metrics.ServerReport{
		Submitted:     atomic.LoadInt64(&s.submitted),
		Admitted:      atomic.LoadInt64(&s.admitted),
		Completed:     atomic.LoadInt64(&s.completed),
		Failed:        atomic.LoadInt64(&s.failed),
		Shed:          atomic.LoadInt64(&s.shed),
		Expired:       atomic.LoadInt64(&s.expired),
		Invalid:       atomic.LoadInt64(&s.invalid),
		Batches:       atomic.LoadInt64(&s.batches),
		MaxBatch:      int(atomic.LoadInt64(&s.maxBatch)),
		QueueCapacity: s.cfg.QueueDepth,
		QueueDepth:    len(s.queue),
		MaxQueueDepth: int(atomic.LoadInt64(&s.maxDepth)),
		PlanHits:      hits,
		PlanMisses:    misses,
		TuneProbes:    probes,

		FaultsInjected: atomic.LoadInt64(&s.faultsInjected),
		Retries:        atomic.LoadInt64(&s.retries),
		WatchdogFires:  atomic.LoadInt64(&s.watchdogFires),
		Fallbacks:      atomic.LoadInt64(&s.fallbacks),
		SimBusyNs:      atomic.LoadInt64(&s.simBusy),
	}
	if total := hits + misses; total > 0 {
		rep.PlanHitRatio = float64(hits) / float64(total)
	}
	rep.Plans = s.planner.Explain()
	for _, p := range rep.Plans {
		rep.Passes = metrics.MergePassCounts(rep.Passes, metrics.PassCounts(p.Remarks))
	}
	s.statsMu.Lock()
	rep.Latency = metrics.HistogramOf(s.latencies)
	rep.QueueWaitSim = metrics.HistogramOf(s.queueWaits)
	rep.BatchSizes = metrics.HistogramOf(s.batchSizes)
	s.statsMu.Unlock()
	return rep
}
