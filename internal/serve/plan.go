package serve

import (
	"fmt"
	"sort"
	"sync"

	"comp/internal/core"
	"comp/internal/interp"
	"comp/internal/pass"
	"comp/internal/runtime"
	"comp/internal/sim/engine"
	"comp/internal/sim/metrics"
	"comp/internal/transform"
	"comp/internal/tune"
	"comp/internal/workloads"
)

// Plan is one cached serving plan: everything expensive about preparing a
// request — optimizing the source and tuning the streaming block count by
// measurement — computed once per (workload, machine) key. Executing a
// request from a plan only needs a fresh interp.Compile of the stored
// source, which every request pays anyway because Program instances cannot
// be shared across concurrent executions.
type Plan struct {
	// Key identifies the plan in the cache: the job key plus the machine
	// configuration it was tuned for.
	Key string
	// Source is the optimized MiniC source requests execute.
	Source string
	// Blocks is the tuned streaming block count (0 when the workload does
	// not stream).
	Blocks int
	// TuneProbes is how many measured runs building the plan spent; cache
	// hits spend zero.
	TuneProbes int
	// Outputs lists the global arrays a Response reports back.
	Outputs []string
	// Remarks is the remark trail the compiler recorded while building the
	// plan — why each pass applied or declined. Cache hits surface it in
	// ServerReport without recompiling.
	Remarks pass.Remarks
	// Tuned is the cost-model tuner's decision when the plan was built by
	// the unified pipeline search (Config.Tune); nil for legacy
	// block-only tuning.
	Tuned *pass.TuneDecision
	// setup injects the workload's generated inputs (nil for inline-source
	// jobs without a setup hook).
	setup func(*interp.Program) error
}

// planEntry is a cache slot with singleflight semantics: the first
// requester builds, concurrent requesters for the same key block on ready
// and share the result (they count as hits — they trigger no tuning).
type planEntry struct {
	ready chan struct{}
	plan  *Plan
	err   error
	// hits counts reuses of this entry (guarded by Planner.mu).
	hits int64
}

// Planner builds and caches serving plans. It is safe for concurrent use
// and may be shared between servers so a fleet warms one cache.
type Planner struct {
	tuner transform.AutoTuner

	mu     sync.Mutex
	ct     *tune.Tuner // cost-model pipeline tuner; nil = legacy block tuning
	plans  map[string]*planEntry
	hits   int64
	misses int64
	probes int64
}

// NewPlanner returns an empty plan cache.
func NewPlanner() *Planner {
	return &Planner{plans: map[string]*planEntry{}}
}

// EnableTune switches the planner to the unified cost-model pipeline
// search (internal/tune) for every plan built from now on. The model
// seeds the search and accumulates every decision; nil starts an empty
// private model. Idempotent: the first call wins, so servers sharing a
// planner share one tuner and one model.
func (pl *Planner) EnableTune(model *tune.Model) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.ct != nil {
		return
	}
	if model == nil {
		model = tune.NewModel()
	}
	pl.ct = &tune.Tuner{Model: model}
}

// TuneModel returns the learned-predictor model behind EnableTune (nil
// when cost-model tuning is off) so callers can persist it after a run.
func (pl *Planner) TuneModel() *tune.Model {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.ct == nil {
		return nil
	}
	return pl.ct.Model
}

func (pl *Planner) costTuner() *tune.Tuner {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.ct
}

// Stats returns the cache counters: hits, misses, and total tuning probes
// spent building plans. Probes stop growing once every key in the request
// trace has been planned — the "tune once, serve forever" property the
// serving layer exists to provide.
func (pl *Planner) Stats() (hits, misses, probes int64) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.hits, pl.misses, pl.probes
}

// Explain reports every successfully built plan in the cache — key, tuned
// shape, per-plan hit count, and the remark trail recorded at build time —
// sorted by key. In-flight builds and cached failures are omitted. This is
// how a cache hit explains its plan's shape without recompiling: the trail
// was captured once, at build.
func (pl *Planner) Explain() []metrics.PlanReport {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	var out []metrics.PlanReport
	for _, e := range pl.plans {
		select {
		case <-e.ready:
		default:
			continue // still building
		}
		if e.err != nil || e.plan == nil {
			continue
		}
		out = append(out, metrics.PlanReport{
			Key:        e.plan.Key,
			Blocks:     e.plan.Blocks,
			TuneProbes: e.plan.TuneProbes,
			Hits:       e.hits,
			Remarks:    e.plan.Remarks,
			Tuned:      e.plan.Tuned,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// cacheKey derives the plan-cache key for a job on a platform: tuning
// decisions depend on both the workload and the machine it runs on, and —
// when the cost-model tuner is on — on the tuned pipeline configuration,
// so tuned and legacy plans for the same workload never alias. Fleet
// device signatures carry the same marker, which keeps work stealing
// plan-affine across tuned fleets.
func cacheKey(job Job, cfg runtime.Config, tuned bool) (string, error) {
	base := job.Key
	if base == "" {
		base = job.Workload
	}
	if base == "" {
		return "", fmt.Errorf("serve: job names neither a workload nor a key")
	}
	key := fmt.Sprintf("%s|%s|%s", base, cfg.MIC.Name, cfg.CPU.Name)
	if tuned {
		key += "|tuned"
	}
	return key, nil
}

// planFor returns the plan for a job, building it on first use. The cached
// return reports whether the plan (or an in-flight build of it) already
// existed.
func (pl *Planner) planFor(job Job, cfg runtime.Config) (plan *Plan, cached bool, err error) {
	ct := pl.costTuner()
	key, err := cacheKey(job, cfg, ct != nil)
	if err != nil {
		return nil, false, err
	}
	pl.mu.Lock()
	if e, ok := pl.plans[key]; ok {
		pl.hits++
		e.hits++
		pl.mu.Unlock()
		<-e.ready
		return e.plan, true, e.err
	}
	e := &planEntry{ready: make(chan struct{})}
	if pl.plans == nil {
		pl.plans = map[string]*planEntry{}
	}
	pl.plans[key] = e
	pl.misses++
	pl.mu.Unlock()

	// Build outside the lock; errors are cached too — plan building is
	// deterministic, so a failed key would fail identically on retry.
	if ct != nil {
		e.plan, e.err = pl.buildTuned(ct, key, job, cfg)
	} else {
		e.plan, e.err = pl.build(key, job, cfg)
	}
	if e.plan != nil {
		pl.mu.Lock()
		pl.probes += int64(e.plan.TuneProbes)
		pl.mu.Unlock()
	}
	close(e.ready)
	return e.plan, false, e.err
}

// build constructs the plan: resolve the source, tune the block count by
// measurement when the job streams, and optimize.
func (pl *Planner) build(key string, job Job, cfg runtime.Config) (*Plan, error) {
	if job.Source != "" {
		return pl.buildSource(key, job, cfg)
	}
	b, err := workloads.Get(job.Workload)
	if err != nil {
		return nil, err
	}
	if b.SharedMem {
		return nil, fmt.Errorf("serve: %s is a shared-memory benchmark; the scheduler serves MiniC offload programs", b.Name)
	}
	probeCfg := cfg
	probeCfg.DisableTrace = true
	if b.CPUThreads > 0 {
		probeCfg.CPUThreads = b.CPUThreads
	}
	opt := core.DefaultOptions()
	probes := 0
	if b.Has("streaming") {
		// Seed the tuner from the §III-B model evaluated on the workload's
		// streaming baseline (the same recipe the bench harness validated
		// against the exhaustive sweep), then hill-climb on measured runs of
		// the full optimization set — measure what will be served.
		baseVariant, baseOpt := workloads.MICNaive, core.Options{}
		if b.Has("regularization") {
			baseVariant, baseOpt = workloads.MICOptimized, core.Options{Regularize: true}
		}
		base, err := b.Run(workloads.RunOptions{Variant: baseVariant, Opt: baseOpt, Config: &probeCfg})
		if err != nil {
			return nil, fmt.Errorf("serve: plan %s baseline: %w", key, err)
		}
		seed := core.ProfileFromStats(base.Stats, probeCfg.MIC.LaunchOverhead).Blocks()
		tr, err := pl.tuner.Tune(key, seed, func(blocks int) (engine.Duration, error) {
			o := core.DefaultOptions()
			o.Blocks = blocks
			res, err := b.Run(workloads.RunOptions{Variant: workloads.MICOptimized, Opt: o, Config: &probeCfg})
			if err != nil {
				return 0, err
			}
			return res.Stats.Time, nil
		})
		if err != nil {
			return nil, fmt.Errorf("serve: plan %s tuning: %w", key, err)
		}
		opt.Blocks = tr.Blocks
		probes = tr.Probes
	}
	res, err := core.Optimize(b.Source, opt)
	if err != nil {
		return nil, fmt.Errorf("serve: plan %s optimize: %w", key, err)
	}
	return &Plan{
		Key:        key,
		Source:     res.Source(),
		Blocks:     opt.Blocks,
		TuneProbes: probes,
		Outputs:    append([]string(nil), b.Outputs...),
		Remarks:    res.Report.Remarks,
		setup:      b.Setup,
	}, nil
}

// buildSource plans an inline-source job. Without Optimize the source is
// served as written (the plan still validates it compiles); with Optimize
// the block count is tuned by measurement and the COMP pipeline applied,
// exactly as for registry workloads.
func (pl *Planner) buildSource(key string, job Job, cfg runtime.Config) (*Plan, error) {
	probeCfg := cfg
	probeCfg.DisableTrace = true
	src := job.Source
	blocks, probes := 0, 0
	var remarks pass.Remarks
	if job.Optimize {
		base, err := runProbe(job.Source, probeCfg, job.Setup)
		if err != nil {
			return nil, fmt.Errorf("serve: plan %s baseline: %w", key, err)
		}
		seed := core.ProfileFromStats(base.Stats, probeCfg.MIC.LaunchOverhead).Blocks()
		tr, err := pl.tuner.Tune(key, seed, func(n int) (engine.Duration, error) {
			o := core.DefaultOptions()
			o.Blocks = n
			res, err := core.Optimize(job.Source, o)
			if err != nil {
				return 0, err
			}
			probed, err := runProbe(res.Source(), probeCfg, job.Setup)
			if err != nil {
				return 0, err
			}
			return probed.Stats.Time, nil
		})
		if err != nil {
			return nil, fmt.Errorf("serve: plan %s tuning: %w", key, err)
		}
		o := core.DefaultOptions()
		o.Blocks = tr.Blocks
		res, err := core.Optimize(job.Source, o)
		if err != nil {
			return nil, fmt.Errorf("serve: plan %s optimize: %w", key, err)
		}
		src, blocks, probes = res.Source(), tr.Blocks, tr.Probes
		remarks = res.Report.Remarks
	} else if _, err := interp.Compile(src); err != nil {
		return nil, fmt.Errorf("serve: plan %s: %w", key, err)
	}
	return &Plan{
		Key:        key,
		Source:     src,
		Blocks:     blocks,
		TuneProbes: probes,
		Outputs:    append([]string(nil), job.Outputs...),
		Remarks:    remarks,
		setup:      job.Setup,
	}, nil
}

// buildTuned constructs a plan through the unified cost-model pipeline
// search: extract the workload's features, measure one unoptimized
// baseline, let the tuner rank and probe candidate (spec, blocks)
// configurations within its budget, then compile the winner behind a tune
// stage so the decision — predicted vs measured cost included — lands in
// the plan's remark trail.
func (pl *Planner) buildTuned(ct *tune.Tuner, key string, job Job, cfg runtime.Config) (*Plan, error) {
	if job.Source != "" && !job.Optimize {
		// Inline source served as written: nothing to tune.
		return pl.buildSource(key, job, cfg)
	}
	probeCfg := cfg
	probeCfg.DisableTrace = true
	src := job.Source
	setup := job.Setup
	outputs := append([]string(nil), job.Outputs...)
	base := job.Key
	if src == "" {
		b, err := workloads.Get(job.Workload)
		if err != nil {
			return nil, err
		}
		if b.SharedMem {
			return nil, fmt.Errorf("serve: %s is a shared-memory benchmark; the scheduler serves MiniC offload programs", b.Name)
		}
		if b.CPUThreads > 0 {
			probeCfg.CPUThreads = b.CPUThreads
		}
		src, setup = b.Source, b.Setup
		outputs = append([]string(nil), b.Outputs...)
		if base == "" {
			base = b.Name
		}
	}

	d, err := core.TuneSource(ct, base, src, probeCfg, setup)
	if err != nil {
		return nil, fmt.Errorf("serve: plan %s: %w", key, err)
	}
	res, err := core.OptimizeTuned(src, &d.TuneDecision)
	if err != nil {
		return nil, fmt.Errorf("serve: plan %s optimize: %w", key, err)
	}
	return &Plan{
		Key:        key,
		Source:     res.Source(),
		Blocks:     d.Blocks,
		TuneProbes: d.Probes,
		Outputs:    outputs,
		Remarks:    res.Report.Remarks,
		Tuned:      &d.TuneDecision,
		setup:      setup,
	}, nil
}

// runProbe executes one measured run for inline-source tuning.
func runProbe(src string, cfg runtime.Config, setup func(*interp.Program) error) (runtime.Result, error) {
	p, err := interp.Compile(src)
	if err != nil {
		return runtime.Result{}, err
	}
	return runtime.RunWithSetup(p, cfg, setup)
}
