package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"comp/internal/interp"
	"comp/internal/runtime"
	"comp/internal/sim/fault"
)

// The soak drives the server the way the CI race job needs it driven: 32
// concurrent submitters hammering a small admission queue while the
// simulated platform injects chaos faults, with deadlines on part of the
// trace. It asserts the three serving invariants under that pressure:
// every request is answered exactly once with a result or a typed error;
// successful results are bit-identical to a fault-free reference (faults
// perturb timing, never values); and the accounting adds up — nothing is
// dropped silently and nothing deadlocks.
func TestSoakServe32SubmittersChaos(t *testing.T) {
	const (
		submitters = 32
		perClient  = 4
	)
	rtCfg := runtime.DefaultConfig()
	rtCfg.DisableTrace = true
	rtCfg.Faults = fault.Uniform(7, 0.25)
	s, err := New(Config{Runtime: &rtCfg, Streams: 4, QueueDepth: 16, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Fault-free references, one per synthetic key: the interpreter
	// computes values and the platform only times them, so chaos runs must
	// reproduce these bit-for-bit.
	scales := []int{3, 5, 7, 11}
	refs := make(map[int][]float64, len(scales))
	for _, scale := range scales {
		p, err := interp.Compile(synthSource(scale))
		if err != nil {
			t.Fatal(err)
		}
		res, err := runtime.Run(p, runtime.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		data, err := res.Program.ArrayData("b")
		if err != nil {
			t.Fatal(err)
		}
		refs[scale] = append([]float64(nil), data...)
	}

	type tally struct{ completed, shed, expired int }
	tallies := make([]tally, submitters)
	var wg sync.WaitGroup
	for c := 0; c < submitters; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				scale := scales[(c+j)%len(scales)]
				job := Job{
					Key:     synthKey(scale),
					Source:  synthSource(scale),
					Outputs: []string{"b"},
				}
				if (c+j)%5 == 0 {
					job.Deadline = 5 * time.Second // generous: only pathological stalls expire it
				}
				resp, err := s.Do(job)
				switch {
				case err == nil:
					ref := refs[scale]
					got := resp.Outputs["b"]
					if len(got) != len(ref) {
						t.Errorf("client %d job %d: output resized", c, j)
						return
					}
					for i := range got {
						if got[i] != ref[i] {
							t.Errorf("client %d job %d: b[%d] = %v, fault-free reference %v", c, j, i, got[i], ref[i])
							return
						}
					}
					tallies[c].completed++
				case errors.Is(err, ErrOverloaded):
					tallies[c].shed++
				case errors.Is(err, ErrDeadlineExceeded):
					tallies[c].expired++
				default:
					t.Errorf("client %d job %d: unexpected error %v", c, j, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	var completed, shed, expired int64
	for _, y := range tallies {
		completed += int64(y.completed)
		shed += int64(y.shed)
		expired += int64(y.expired)
	}
	if completed+shed+expired != submitters*perClient {
		t.Fatalf("accounting: %d completed + %d shed + %d expired != %d submitted",
			completed, shed, expired, submitters*perClient)
	}
	rep := s.Report()
	if rep.Completed != completed || rep.Shed != shed || rep.Expired != expired || rep.Failed != 0 {
		t.Fatalf("server counters disagree with client tallies: %+v", rep)
	}
	if rep.Submitted != rep.Completed+rep.Shed+rep.Expired {
		t.Fatalf("requests dropped silently: %+v", rep)
	}
	if completed == 0 {
		t.Fatal("soak completed nothing; queue too small for the trace")
	}
	// One plan per key, no matter how many submitters raced on first use.
	if rep.PlanMisses != int64(len(scales)) {
		t.Fatalf("plan misses %d, want %d (one per key)", rep.PlanMisses, len(scales))
	}
}

func synthKey(scale int) string { return fmt.Sprintf("soak-synth-%d", scale) }
