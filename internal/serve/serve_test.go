package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"comp/internal/interp"
	"comp/internal/tune"
)

// synthSource builds a small offload program whose outputs depend on the
// scale constant, so distinct keys provably serve distinct plans.
func synthSource(scale int) string {
	return fmt.Sprintf(`
float a[16384];
float b[16384];
int n;
int main(void) {
    int i;
    n = 16384;
    for (i = 0; i < n; i++) {
        a[i] = i * 0.5 + 1.0;
    }
    #pragma offload target(mic:0) in(a : length(n)) out(b : length(n))
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
        b[i] = sqrt(a[i] * %d.0) + exp(a[i] * 0.0001);
    }
    return 0;
}
`, scale)
}

// seededSetup injects a deterministic input for array "a", overriding the
// source's static initialization — the per-request-inputs path.
func seededSetup(seed int64) func(*interp.Program) error {
	return func(p *interp.Program) error {
		r := rand.New(rand.NewSource(seed))
		data := make([]float64, 16384)
		for i := range data {
			data[i] = 1.0 + r.Float64()*100
		}
		return p.SetArray("a", data)
	}
}

// jobFor maps a client index onto the test's job mix: four synthetic
// sources (one tuned, one with per-request seeded inputs) plus the nn
// workload, so the plan cache holds five keys.
func jobFor(client int) Job {
	switch client % 8 {
	case 0:
		return Job{Workload: "nn"}
	case 1, 2:
		return Job{Key: "synth-3", Source: synthSource(3), Outputs: []string{"b"}}
	case 3, 4:
		return Job{Key: "synth-7-opt", Source: synthSource(7), Outputs: []string{"b"}, Optimize: true}
	case 5:
		return Job{Key: "synth-11-seeded", Source: synthSource(11), Outputs: []string{"b"},
			Setup: seededSetup(int64(1000 + client))}
	default:
		return Job{Key: "synth-5", Source: synthSource(5), Outputs: []string{"b"}}
	}
}

// runTrace serves one fixed 64-client trace on a fresh server and returns
// each client's outputs.
func runTrace(t *testing.T, clients int) ([]map[string][]float64, *Server) {
	t.Helper()
	s, err := New(Config{Streams: 4, QueueDepth: clients, MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	results := make([]map[string][]float64, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, err := s.Do(jobFor(c))
			results[c], errs[c] = resp.Outputs, err
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	return results, s
}

// TestServe64ClientsBitIdentical is the headline acceptance test: 64
// concurrent clients, two independent server runs over the same trace,
// bit-identical per-client results — batch boundaries and stream
// assignment may differ between runs, outputs may not. -short keeps the
// same double-run structure at a quarter of the fleet.
func TestServe64ClientsBitIdentical(t *testing.T) {
	clients := 64
	if testing.Short() {
		clients = 16
	}
	first, s1 := runTrace(t, clients)
	s1.Close()
	second, s2 := runTrace(t, clients)
	s2.Close()
	for c := 0; c < clients; c++ {
		a, b := first[c], second[c]
		if len(a) == 0 || len(a) != len(b) {
			t.Fatalf("client %d: output sets differ (%d vs %d arrays)", c, len(a), len(b))
		}
		for name, x := range a {
			y, ok := b[name]
			if !ok || len(x) != len(y) {
				t.Fatalf("client %d: output %s missing or resized", c, name)
			}
			for i := range x {
				if x[i] != y[i] {
					t.Fatalf("client %d: %s[%d] = %v vs %v across runs", c, name, i, x[i], y[i])
				}
			}
		}
	}
	rep := s1.Report()
	if rep.Completed != int64(clients) || rep.Shed != 0 || rep.Expired != 0 || rep.Failed != 0 {
		t.Fatalf("accounting: %+v", rep)
	}
	if rep.Submitted != rep.Completed+rep.Shed+rep.Expired+rep.Failed {
		t.Fatalf("requests dropped silently: %+v", rep)
	}
}

// TestServeOverloadSheds drives 2× the queue capacity into a server whose
// dispatcher is pinned: exactly QueueDepth requests are admitted, the rest
// shed with ErrOverloaded immediately, and after release every admitted
// request completes — no deadlock, nothing dropped silently.
func TestServeOverloadSheds(t *testing.T) {
	const depth = 8
	hold := make(chan struct{})
	s, err := New(Config{Streams: 2, QueueDepth: depth, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.testHoldBatch = hold
	defer s.Close()

	job := Job{Key: "synth-3", Source: synthSource(3), Outputs: []string{"b"}}
	var wg sync.WaitGroup
	firstDone := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := s.Do(job)
		firstDone <- err
	}()
	// Wait until the dispatcher has dequeued the first request and is
	// pinned at the hold point, so the queue is provably empty.
	waitFor(t, func() bool {
		rep := s.Report()
		return rep.Admitted == 1 && rep.QueueDepth == 0
	})

	total := 2 * depth
	errC := make(chan error, total)
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Do(job)
			errC <- err
		}()
	}
	// All shed decisions are immediate; admitted requests block. Wait for
	// the queue to fill and the sheds to land.
	waitFor(t, func() bool { return s.Report().Shed == int64(total-depth) })
	if rep := s.Report(); rep.QueueDepth != depth {
		t.Fatalf("queue depth %d, want %d", rep.QueueDepth, depth)
	}

	close(hold)
	wg.Wait()
	if err := <-firstDone; err != nil {
		t.Fatalf("pinned request failed: %v", err)
	}
	var shed, completed int
	for i := 0; i < total; i++ {
		err := <-errC
		switch {
		case err == nil:
			completed++
		case errors.Is(err, ErrOverloaded):
			shed++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if shed != depth || completed != depth {
		t.Fatalf("shed %d completed %d, want %d and %d", shed, completed, depth, depth)
	}
	rep := s.Report()
	if rep.Submitted != rep.Completed+rep.Shed {
		t.Fatalf("requests dropped silently: %+v", rep)
	}
	if rep.MaxQueueDepth != depth {
		t.Fatalf("high-water mark %d, want %d", rep.MaxQueueDepth, depth)
	}
}

// TestServeDeadlineExpiresInQueue pins the dispatcher so a deadlined
// request provably expires while queued and is answered with the typed
// error, not dropped.
func TestServeDeadlineExpiresInQueue(t *testing.T) {
	hold := make(chan struct{})
	s, err := New(Config{Streams: 2, QueueDepth: 4, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.testHoldBatch = hold
	defer s.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var pinnedErr error
	go func() {
		defer wg.Done()
		_, pinnedErr = s.Do(Job{Key: "synth-3", Source: synthSource(3), Outputs: []string{"b"}})
	}()
	waitFor(t, func() bool {
		rep := s.Report()
		return rep.Admitted == 1 && rep.QueueDepth == 0
	})

	wg.Add(1)
	var deadlineErr error
	go func() {
		defer wg.Done()
		_, deadlineErr = s.Do(Job{Key: "synth-3", Source: synthSource(3), Outputs: []string{"b"},
			Deadline: 10 * time.Millisecond})
	}()
	waitFor(t, func() bool { return s.Report().QueueDepth == 1 })
	time.Sleep(30 * time.Millisecond)
	close(hold)
	wg.Wait()
	if pinnedErr != nil {
		t.Fatalf("pinned request failed: %v", pinnedErr)
	}
	if !errors.Is(deadlineErr, ErrDeadlineExceeded) {
		t.Fatalf("deadlined request got %v, want ErrDeadlineExceeded", deadlineErr)
	}
	if rep := s.Report(); rep.Expired != 1 {
		t.Fatalf("expired counter %d, want 1", rep.Expired)
	}
}

// TestServePlanCacheHitRatio serves a repeated-workload trace and checks
// the acceptance bar: hit ratio ≥ 90% and zero re-tuning probes after each
// key's first use.
func TestServePlanCacheHitRatio(t *testing.T) {
	s, err := New(Config{Streams: 2, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	trace := []Job{
		{Workload: "nn"},
		{Key: "synth-3", Source: synthSource(3), Outputs: []string{"b"}},
		{Key: "synth-7-opt", Source: synthSource(7), Outputs: []string{"b"}, Optimize: true},
	}
	// Warm each key once.
	for _, job := range trace {
		resp, err := s.Do(job)
		if err != nil {
			t.Fatal(err)
		}
		if resp.PlanCached {
			t.Fatalf("first use of %s reported a cache hit", resp.PlanKey)
		}
	}
	_, _, warmProbes := s.Planner().Stats()
	if warmProbes == 0 {
		t.Fatal("warmup spent no tuning probes; the trace does not exercise tuning")
	}
	// 19 rounds of 3 hits against 3 warm misses → 95% ratio; -short trims
	// to 10 rounds (30/33 ≈ 91%), still above the 90% bar.
	rounds := 19
	if testing.Short() {
		rounds = 10
	}
	for r := 0; r < rounds; r++ {
		for _, job := range trace {
			resp, err := s.Do(job)
			if err != nil {
				t.Fatal(err)
			}
			if !resp.PlanCached {
				t.Fatalf("round %d: %s missed the plan cache", r, resp.PlanKey)
			}
		}
	}
	hits, misses, probes := s.Planner().Stats()
	if probes != warmProbes {
		t.Fatalf("re-tuning after warmup: %d probes grew to %d", warmProbes, probes)
	}
	ratio := float64(hits) / float64(hits+misses)
	if ratio < 0.9 {
		t.Fatalf("plan-cache hit ratio %.2f < 0.90 (%d hits, %d misses)", ratio, hits, misses)
	}
	if rep := s.Report(); rep.PlanHitRatio != ratio {
		t.Fatalf("report hit ratio %v != planner ratio %v", rep.PlanHitRatio, ratio)
	}
}

// TestServeCloseServesQueued checks Close semantics: already-admitted
// requests are served, later submissions get ErrClosed.
func TestServeCloseServesQueued(t *testing.T) {
	hold := make(chan struct{})
	s, err := New(Config{Streams: 2, QueueDepth: 4, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.testHoldBatch = hold

	job := Job{Key: "synth-5", Source: synthSource(5), Outputs: []string{"b"}}
	var wg sync.WaitGroup
	errs := make([]error, 3)
	wg.Add(1)
	go func() { defer wg.Done(); _, errs[0] = s.Do(job) }()
	waitFor(t, func() bool {
		rep := s.Report()
		return rep.Admitted == 1 && rep.QueueDepth == 0
	})
	for i := 1; i < 3; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); _, errs[i] = s.Do(job) }(i)
	}
	waitFor(t, func() bool { return s.Report().QueueDepth == 2 })

	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	close(hold)
	<-closed
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("queued request %d not served across Close: %v", i, err)
		}
	}
	if _, err := s.Do(job); !errors.Is(err, ErrClosed) {
		t.Fatalf("Do after Close = %v, want ErrClosed", err)
	}
	if rep := s.Report(); rep.Completed != 3 {
		t.Fatalf("completed %d, want 3", rep.Completed)
	}
}

// TestServeBadJobsFailTyped checks that unroutable jobs are answered with
// their error (counted as failed), and shared-memory benchmarks are
// refused.
func TestServeBadJobsFailTyped(t *testing.T) {
	s, err := New(Config{Streams: 2, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Do(Job{Workload: "no-such-benchmark"}); err == nil {
		t.Fatal("unknown workload served without error")
	}
	if _, err := s.Do(Job{Workload: "ferret"}); err == nil {
		t.Fatal("shared-memory benchmark served without error")
	}
	if _, err := s.Do(Job{}); !errors.Is(err, ErrInvalidJob) {
		t.Fatalf("empty job = %v, want ErrInvalidJob", err)
	}
	rep := s.Report()
	if rep.Failed != 2 {
		t.Fatalf("failed counter %d, want 2", rep.Failed)
	}
	if rep.Invalid != 1 {
		t.Fatalf("invalid counter %d, want 1", rep.Invalid)
	}
}

// TestServeInvalidJobsRejectedBeforeAdmission is the ErrInvalidJob
// regression suite: every malformed-job shape is refused synchronously
// with the typed error, none is admitted or reaches the planner, and the
// queue stays untouched.
func TestServeInvalidJobsRejectedBeforeAdmission(t *testing.T) {
	s, err := New(Config{Streams: 2, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	bad := []struct {
		name string
		job  Job
	}{
		{"empty", Job{}},
		{"key-without-source", Job{Key: "k"}},
		{"source-without-key", Job{Source: synthSource(3)}},
		{"workload-and-source", Job{Workload: "nn", Key: "k", Source: synthSource(3)}},
		{"negative-deadline", Job{Workload: "nn", Deadline: -time.Second}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := s.Do(tc.job); !errors.Is(err, ErrInvalidJob) {
				t.Fatalf("Do(%s) = %v, want ErrInvalidJob", tc.name, err)
			}
		})
	}
	rep := s.Report()
	if rep.Invalid != int64(len(bad)) {
		t.Fatalf("invalid counter %d, want %d", rep.Invalid, len(bad))
	}
	if rep.Admitted != 0 || rep.Failed != 0 || rep.PlanMisses != 0 {
		t.Fatalf("invalid jobs leaked past admission: %+v", rep)
	}
	// A well-formed job on the same server still serves.
	if _, err := s.Do(Job{Workload: "nn"}); err != nil {
		t.Fatalf("valid job after invalid ones: %v", err)
	}
}

// waitFor polls a condition with a generous timeout; soak-safe under
// -race scheduling jitter.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 10s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeConfigValidation pins the constructor's error paths: negative
// knobs and an invalid runtime platform are rejected before any goroutine
// starts, and Close is idempotent.
func TestServeConfigValidation(t *testing.T) {
	if _, err := New(Config{QueueDepth: -1}); err == nil {
		t.Error("negative QueueDepth accepted")
	}
	if _, err := New(Config{MaxBatch: -2}); err == nil {
		t.Error("negative MaxBatch accepted")
	}
	// More streams than the device has cores: scheduler validation fails.
	if _, err := New(Config{Streams: 100000}); err == nil {
		t.Error("unpartitionable stream count accepted")
	}
	s, err := New(Config{Streams: 2, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // second Close must return, not hang or panic
}

// TestServeBadSourceFailsTyped covers the inline-source validation path:
// a job whose source does not compile is answered with the compile error.
func TestServeBadSourceFailsTyped(t *testing.T) {
	s, err := New(Config{Streams: 2, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Do(Job{Key: "broken", Source: "int main(void) { return }"}); err == nil {
		t.Fatal("uncompilable source served without error")
	}
	// The error is cached: the retry fails identically without rebuilding.
	_, misses1, _ := s.Planner().Stats()
	if _, err := s.Do(Job{Key: "broken", Source: "int main(void) { return }"}); err == nil {
		t.Fatal("uncompilable source served on retry")
	}
	hits, misses2, _ := s.Planner().Stats()
	if misses2 != misses1 || hits == 0 {
		t.Fatalf("failed plan rebuilt instead of served from cache: %d hits, misses %d -> %d", hits, misses1, misses2)
	}
}

// TestServePlanRemarksSurvivesCacheHits: the remark trail is recorded once,
// when the plan is built; every later cache hit surfaces it again in the
// server report with zero recompiles. The nn workload is chosen because its
// trail provably fired (reorder + stream under the default pipeline).
func TestServePlanRemarksSurvivesCacheHits(t *testing.T) {
	s, err := New(Config{Streams: 2, QueueDepth: 8, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const requests = 4
	for i := 0; i < requests; i++ {
		if _, err := s.Do(Job{Workload: "nn"}); err != nil {
			t.Fatal(err)
		}
	}
	_, misses, _ := s.Planner().Stats()
	if misses != 1 {
		t.Fatalf("plan rebuilt: %d misses for one key", misses)
	}
	rep := s.Report()
	if len(rep.Plans) != 1 {
		t.Fatalf("want 1 plan in report, got %d", len(rep.Plans))
	}
	p := rep.Plans[0]
	if p.Hits != requests-1 {
		t.Fatalf("plan hits = %d, want %d", p.Hits, requests-1)
	}
	if len(p.Remarks) == 0 {
		t.Fatal("cache-hit plan lost its remark trail")
	}
	if !p.Remarks.Has("stream") || !p.Remarks.Has("reorder") {
		t.Fatalf("nn plan trail missing expected applied remarks:\n%s", p.Remarks.Render())
	}
	if rep.Passes["streaming"].Applied == 0 || rep.Passes["regularize"].Applied == 0 {
		t.Fatalf("pass counters not derived from plan remarks: %+v", rep.Passes)
	}
	// The rendered report carries the trail too — operators read Format().
	text := rep.Format()
	for _, frag := range []string{"plan nn|", "applied", "passes:"} {
		if !strings.Contains(text, frag) {
			t.Fatalf("Format() missing %q:\n%s", frag, text)
		}
	}
}

// TestServeSteppedVirtualClockDeterministic pins the replay substrate the
// scenario engine builds on: a stepped server with an injected virtual
// clock answers a fixed submission sequence with a bit-identical
// ServerReport — including the latency histograms, which become virtual
// durations — across two independent runs, and deadlines are judged
// against the virtual clock, not the wall.
func TestServeSteppedVirtualClockDeterministic(t *testing.T) {
	run := func() ([]byte, []map[string][]float64) {
		now := time.Unix(0, 0)
		s, err := New(Config{
			Streams: 2, QueueDepth: 8, MaxBatch: 4,
			Stepped: true,
			Clock:   func() time.Time { return now },
		})
		if err != nil {
			t.Fatal(err)
		}
		var tickets []*Ticket
		for i := 0; i < 6; i++ {
			now = now.Add(time.Millisecond)
			job := Job{Key: "synth-3", Source: synthSource(3), Outputs: []string{"b"}}
			if i == 4 {
				job.Deadline = time.Millisecond // expires: dispatch happens 10ms later
			}
			tk, err := s.Enqueue(job)
			if err != nil {
				t.Fatalf("enqueue %d: %v", i, err)
			}
			tickets = append(tickets, tk)
		}
		now = now.Add(10 * time.Millisecond)
		served := 0
		for served < len(tickets) {
			n := s.StepBatch()
			if n == 0 {
				t.Fatalf("queue drained after %d of %d answers", served, len(tickets))
			}
			served += n
		}
		var outs []map[string][]float64
		for i, tk := range tickets {
			resp, err := tk.Wait()
			if i == 4 {
				if !errors.Is(err, ErrDeadlineExceeded) {
					t.Fatalf("request %d: err = %v, want virtual-clock deadline expiry", i, err)
				}
				outs = append(outs, nil)
				continue
			}
			if err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
			if resp.Latency <= 0 || resp.Latency > 20*time.Millisecond {
				t.Fatalf("request %d: latency %v is not on the virtual clock", i, resp.Latency)
			}
			outs = append(outs, resp.Outputs)
		}
		s.Close()
		rep := s.Report()
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return raw, outs
	}
	rep1, outs1 := run()
	rep2, outs2 := run()
	if string(rep1) != string(rep2) {
		t.Fatalf("stepped replays produced different reports:\n%s\n%s", rep1, rep2)
	}
	for i := range outs1 {
		if !outputsEqual(outs1[i], outs2[i]) {
			t.Fatalf("request %d outputs differ between replays", i)
		}
	}
}

func outputsEqual(a, b map[string][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for name, av := range a {
		bv, ok := b[name]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

// TestPlanCacheCachedErrorFreezesProbes replays the same failing job
// against a warm cache: the first build caches the error, every later
// submission must be answered from the cached entry without re-probing or
// re-building — the probe counter and miss counter stay frozen.
func TestPlanCacheCachedErrorFreezesProbes(t *testing.T) {
	s, err := New(Config{Streams: 2, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Warm the cache with a tuned plan so the probe counter is non-zero
	// and a regression that re-probes has something to move.
	if _, err := s.Do(Job{Key: "tuned", Source: synthSource(7), Outputs: []string{"b"}, Optimize: true}); err != nil {
		t.Fatal(err)
	}
	_, _, warmProbes := s.Planner().Stats()
	if warmProbes == 0 {
		t.Fatal("optimized job spent no probes; tuning not exercised")
	}

	// A job whose plan build fails: inline source that does not compile.
	failing := Job{Key: "broken", Source: "int main(void) { return 0", Outputs: []string{"b"}}
	var firstErr error
	if _, firstErr = s.Do(failing); firstErr == nil {
		t.Fatal("broken source served without error")
	}
	_, missesAfterFirst, _ := s.Planner().Stats()

	for i := 0; i < 5; i++ {
		_, err := s.Do(failing)
		if err == nil {
			t.Fatalf("replay %d: broken source served without error", i)
		}
		if err.Error() != firstErr.Error() {
			t.Fatalf("replay %d: error %q differs from cached %q", i, err, firstErr)
		}
	}
	hits, misses, probes := s.Planner().Stats()
	if probes != warmProbes {
		t.Fatalf("probe counter moved on cached-error replays: %d -> %d", warmProbes, probes)
	}
	if misses != missesAfterFirst {
		t.Fatalf("cached error rebuilt: misses %d -> %d", missesAfterFirst, misses)
	}
	if hits < 5 {
		t.Fatalf("cached-error replays counted %d hits, want >= 5", hits)
	}
}

// TestServeTunedPlans exercises the unified cost-model pipeline search end
// to end through the serving layer: a tuned server builds its plan within
// the probe budget, records the tuning decision (predicted vs measured
// cost) in the plan report under a "|tuned" cache key, returns the same
// values an untuned server does, and a second server sharing the learned
// model rebuilds the plan without spending a single probe.
func TestServeTunedPlans(t *testing.T) {
	model := tune.NewModel()
	s, err := New(Config{Streams: 2, QueueDepth: 8, MaxBatch: 4, Tune: true, TuneModel: model})
	if err != nil {
		t.Fatal(err)
	}
	tunedResp, err := s.Do(Job{Workload: "nn"})
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	s.Close()
	if len(rep.Plans) != 1 {
		t.Fatalf("want 1 plan, got %d", len(rep.Plans))
	}
	p := rep.Plans[0]
	if !strings.HasSuffix(p.Key, "|tuned") {
		t.Fatalf("tuned plan key %q missing |tuned marker", p.Key)
	}
	if p.Tuned == nil {
		t.Fatal("tuned plan carries no decision")
	}
	if p.Tuned.PredictedNs <= 0 || p.Tuned.MeasuredNs <= 0 {
		t.Fatalf("decision missing predicted/measured cost: %+v", p.Tuned)
	}
	if p.TuneProbes > tune.DefaultMaxProbes {
		t.Fatalf("probe budget overrun: %d > %d", p.TuneProbes, tune.DefaultMaxProbes)
	}
	if !p.Remarks.Has("select") {
		t.Fatalf("tuned plan trail missing the tune stage's select remark:\n%s", p.Remarks.Render())
	}
	if model.Len() == 0 {
		t.Fatal("tuning decision was not observed into the shared model")
	}

	// Semantics: the tuned pipeline must serve the same values as the
	// legacy path — transformations reshape timing, never outputs.
	plain, err := New(Config{Streams: 2, QueueDepth: 8, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	plainResp, err := plain.Do(Job{Workload: "nn"})
	plain.Close()
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range plainResp.Outputs {
		got, ok := tunedResp.Outputs[name]
		if !ok || len(got) != len(want) {
			t.Fatalf("tuned output %s missing or resized", name)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("tuned output %s[%d] = %v, want %v", name, i, got[i], want[i])
			}
		}
	}

	// Warm start: a fresh server sharing the model recognizes the exact
	// (workload, platform) pair and replays the decision with zero probes.
	warm, err := New(Config{Streams: 2, QueueDepth: 8, MaxBatch: 4, Tune: true, TuneModel: model})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Do(Job{Workload: "nn"}); err != nil {
		t.Fatal(err)
	}
	wrep := warm.Report()
	warm.Close()
	if len(wrep.Plans) != 1 {
		t.Fatalf("warm server: want 1 plan, got %d", len(wrep.Plans))
	}
	wp := wrep.Plans[0]
	if wp.TuneProbes != 0 {
		t.Fatalf("warm rebuild spent %d probes, want 0", wp.TuneProbes)
	}
	if wp.Tuned == nil || wp.Tuned.Source != "model" {
		t.Fatalf("warm rebuild not served from the model: %+v", wp.Tuned)
	}
}
