package shmem

import (
	"errors"
	"testing"
	"testing/quick"
)

func heap(segBytes int64) *Heap {
	return NewHeap(Config{SegmentBytes: segBytes})
}

func TestMallocBumpAllocates(t *testing.T) {
	h := heap(1024)
	p1, err := h.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := h.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if p1.BID != 0 || p2.BID != 0 {
		t.Fatalf("bids = %d,%d, want 0,0", p1.BID, p2.BID)
	}
	if p2.Addr != p1.Addr+100 {
		t.Fatalf("second object at %#x, want %#x", p2.Addr, p1.Addr+100)
	}
	if h.SegmentCount() != 1 || h.AllocCount() != 2 {
		t.Fatalf("segments=%d allocs=%d", h.SegmentCount(), h.AllocCount())
	}
}

func TestSegmentGrowthWithoutDataMovement(t *testing.T) {
	h := heap(256)
	var first Ptr
	for i := 0; i < 8; i++ {
		p, err := h.Malloc(100)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = p
		}
	}
	// 100-byte objects, 256-byte segments: 2 per segment, 8 objects -> 4 segments.
	if h.SegmentCount() != 4 {
		t.Fatalf("segments = %d, want 4", h.SegmentCount())
	}
	// Growth must not move earlier objects (§V-A).
	p, err := h.AddressOf(first.Addr)
	if err != nil || p != first {
		t.Fatalf("first object moved: %+v vs %+v (%v)", p, first, err)
	}
}

func TestMemoryProportionalWhenSmall(t *testing.T) {
	h := heap(4 << 20)
	if _, err := h.Malloc(1024); err != nil {
		t.Fatal(err)
	}
	if h.TotalReserved() != 4<<20 {
		t.Fatalf("reserved = %d, want one segment", h.TotalReserved())
	}
	if h.TotalUsed() != 1024 {
		t.Fatalf("used = %d, want 1024", h.TotalUsed())
	}
}

func TestMallocErrors(t *testing.T) {
	h := heap(1024)
	if _, err := h.Malloc(0); err == nil {
		t.Error("zero-size malloc accepted")
	}
	if _, err := h.Malloc(-5); err == nil {
		t.Error("negative malloc accepted")
	}
	if _, err := h.Malloc(2048); err == nil {
		t.Error("object larger than segment accepted")
	}
}

func TestBidSpaceExhaustion(t *testing.T) {
	h := heap(64)
	var err error
	for i := 0; i < 257; i++ {
		_, err = h.Malloc(64)
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrTooManyBuffers) {
		t.Fatalf("err = %v, want ErrTooManyBuffers", err)
	}
}

func TestPointerTranslation(t *testing.T) {
	h := heap(256)
	var ptrs []Ptr
	for i := 0; i < 6; i++ {
		p, err := h.Malloc(100)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	// Device bases: arbitrary distinct values per segment.
	bases := make([]uint64, h.SegmentCount())
	for i := range bases {
		bases[i] = uint64(0x10000000 + i*0x100000)
	}
	moved, err := h.CopyToDevice(bases)
	if err != nil {
		t.Fatal(err)
	}
	if moved != h.TotalUsed() {
		t.Fatalf("moved %d bytes, want used %d", moved, h.TotalUsed())
	}
	for _, p := range ptrs {
		dev, err := h.Translate(p)
		if err != nil {
			t.Fatal(err)
		}
		seg := h.Segments()[p.BID]
		want := seg.DevBase + (p.Addr - seg.Base)
		if dev != want {
			t.Fatalf("translate %+v = %#x, want %#x", p, dev, want)
		}
		// Linear translation must agree with bid-based translation.
		lin, err := h.TranslateLinear(p.Addr)
		if err != nil {
			t.Fatal(err)
		}
		if lin != dev {
			t.Fatalf("linear %#x != bid %#x", lin, dev)
		}
	}
}

func TestTranslateBeforeCopyFails(t *testing.T) {
	h := heap(256)
	p, _ := h.Malloc(10)
	if _, err := h.Translate(p); err == nil {
		t.Fatal("translate before CopyToDevice succeeded")
	}
	if _, err := h.DeltaTable(); err == nil {
		t.Fatal("DeltaTable before CopyToDevice succeeded")
	}
}

func TestDeltaStaleAfterNewAllocation(t *testing.T) {
	h := heap(256)
	h.Malloc(10)
	if _, err := h.CopyToDevice([]uint64{0x1000}); err != nil {
		t.Fatal(err)
	}
	h.Malloc(10) // invalidates the device copy
	p := Ptr{}
	if _, err := h.Translate(p); err == nil {
		t.Fatal("translation with stale delta table succeeded")
	}
}

func TestAddressOfDerivesBid(t *testing.T) {
	h := heap(128)
	h.Malloc(128) // fill segment 0
	p2, _ := h.Malloc(50)
	if p2.BID != 1 {
		t.Fatalf("second segment bid = %d, want 1", p2.BID)
	}
	got, err := h.AddressOf(p2.Addr + 10)
	if err != nil {
		t.Fatal(err)
	}
	if got.BID != 1 {
		t.Fatalf("AddressOf bid = %d, want 1", got.BID)
	}
	if _, err := h.AddressOf(3); err == nil {
		t.Fatal("AddressOf outside shared memory succeeded")
	}
}

func TestLinearSearchCostGrowsWithSegments(t *testing.T) {
	h := heap(64)
	for i := 0; i < 32; i++ {
		h.Malloc(64)
	}
	bases := make([]uint64, h.SegmentCount())
	for i := range bases {
		bases[i] = uint64(0x40000000 + i*0x100000)
	}
	h.CopyToDevice(bases)
	before := h.TranslationSearchSteps()
	// Translate an address in the last segment: the scan walks everything.
	last := h.Segments()[31]
	if _, err := h.TranslateLinear(last.Base); err != nil {
		t.Fatal(err)
	}
	steps := h.TranslationSearchSteps() - before
	if steps != 32 {
		t.Fatalf("linear search took %d steps, want 32", steps)
	}
	// The bid path takes none.
	before = h.TranslationSearchSteps()
	if _, err := h.Translate(Ptr{Addr: last.Base, BID: 31}); err != nil {
		t.Fatal(err)
	}
	if h.TranslationSearchSteps() != before {
		t.Fatal("bid-based translation performed a search")
	}
}

func TestPointerAssignmentStable(t *testing.T) {
	// Table I: `p1 = p2` is a plain copy on both host and device because
	// pointers always store host addresses.
	p2 := Ptr{Addr: 0xdead, BID: 3}
	p1 := p2
	if !DeviceAddrStable(p1, p2) {
		t.Fatal("pointer copy changed representation")
	}
}

func TestNilPointer(t *testing.T) {
	if !(Ptr{}).IsNil() {
		t.Fatal("zero pointer not nil")
	}
	if (Ptr{Addr: 1}).IsNil() {
		t.Fatal("non-zero pointer is nil")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero segment size accepted")
		}
	}()
	NewHeap(Config{})
}

// Property: objects never overlap and each lies inside its segment.
func TestNoOverlapProperty(t *testing.T) {
	f := func(sizesRaw []uint8) bool {
		h := heap(512)
		type obj struct {
			p    Ptr
			size int64
		}
		var objs []obj
		for _, s := range sizesRaw {
			size := int64(s%200) + 1
			p, err := h.Malloc(size)
			if err != nil {
				return errors.Is(err, ErrTooManyBuffers)
			}
			objs = append(objs, obj{p, size})
		}
		for i, a := range objs {
			seg := h.Segments()[a.p.BID]
			if a.p.Addr < seg.Base || a.p.Addr+uint64(a.size) > seg.End() {
				return false
			}
			for _, b := range objs[i+1:] {
				if a.p.Addr < b.p.Addr+uint64(b.size) && b.p.Addr < a.p.Addr+uint64(a.size) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: bid-based and linear translation always agree.
func TestTranslationAgreementProperty(t *testing.T) {
	f := func(sizesRaw []uint8, devSeed uint32) bool {
		h := heap(256)
		var ptrs []Ptr
		for _, s := range sizesRaw {
			p, err := h.Malloc(int64(s%100) + 1)
			if err != nil {
				return errors.Is(err, ErrTooManyBuffers)
			}
			ptrs = append(ptrs, p)
		}
		if len(ptrs) == 0 {
			return true
		}
		bases := make([]uint64, h.SegmentCount())
		for i := range bases {
			bases[i] = uint64(devSeed)<<12 + uint64(i)*uint64(h.cfg.SegmentBytes+64)
		}
		if _, err := h.CopyToDevice(bases); err != nil {
			return false
		}
		for _, p := range ptrs {
			a, err1 := h.Translate(p)
			b, err2 := h.TranslateLinear(p.Addr)
			if err1 != nil || err2 != nil || a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
