// Package shmem implements COMP's shared-memory mechanism for large
// pointer-based data structures (§V), replacing Intel MYO.
//
// Design, per the paper:
//
//   - Buffer allocation (§V-A): objects are allocated bump-style inside a
//     set of equal-sized segments. A new segment is created only when the
//     current one fills, so memory usage stays proportional to the data
//     when it is small, the whole device memory is usable when it is
//     large, and growth never moves data (unlike a realloc-and-copy
//     buffer, whose size is also bounded by the largest contiguous chunk
//     the OS will hand out).
//
//   - Pointer translation (§V-B, Table I): every shared pointer carries a
//     one-byte buffer id (bid) beside the address. Copying segments to the
//     device fills a delta table (device base − host base per segment);
//     dereferencing on the device adds delta[bid] to the stored host
//     address. Without the bid, translation must search the segment list.
package shmem

import (
	"errors"
	"fmt"
)

// ErrTooManyBuffers is returned when the 1-byte bid space is exhausted.
var ErrTooManyBuffers = errors.New("shmem: more than 256 segments")

// Config sizes the heap.
type Config struct {
	// SegmentBytes is the fixed size of each buffer (§V-A "predefined
	// size").
	SegmentBytes int64
}

// DefaultConfig uses 4 MiB segments, large enough to amortize DMA setup
// and small enough to keep unused reservations low.
func DefaultConfig() Config { return Config{SegmentBytes: 4 << 20} }

// Ptr is an augmented shared pointer: the host virtual address plus the id
// of the segment the pointee lives in (Table I).
type Ptr struct {
	Addr uint64
	BID  uint8
}

// IsNil reports whether the pointer is null.
func (p Ptr) IsNil() bool { return p.Addr == 0 }

// Segment is one preallocated buffer.
type Segment struct {
	ID   uint8
	Base uint64 // host base address
	Size int64
	Used int64
	// DevBase is the device copy's base address; zero before CopyToDevice.
	DevBase uint64
}

// End returns the first host address past the segment.
func (s *Segment) End() uint64 { return s.Base + uint64(s.Size) }

// Heap is the host-side shared allocator.
type Heap struct {
	cfg      Config
	segments []*Segment
	nextBase uint64
	allocs   int64
	// live maps the address of each outstanding allocation to its size;
	// Free validates against it and removes the entry.
	live       map[uint64]int64
	frees      int64
	freedBytes int64
	// delta[bid] = device base - host base, valid after CopyToDevice.
	delta     []int64
	deltaOK   bool
	translate int64 // count of translations, for diagnostics
	searches  int64 // count of linear-search steps (baseline strategy)
}

// NewHeap creates an empty heap. Host addresses are synthetic (the heap is
// simulated) but behave like real addresses: distinct, ordered, stable.
func NewHeap(cfg Config) *Heap {
	if cfg.SegmentBytes <= 0 {
		panic("shmem: segment size must be positive")
	}
	// Leave address 0 unused so Ptr{0,0} is a genuine null.
	return &Heap{cfg: cfg, nextBase: 1 << 20}
}

// SegmentCount returns the number of segments allocated so far.
func (h *Heap) SegmentCount() int { return len(h.segments) }

// AllocCount returns the number of Malloc calls.
func (h *Heap) AllocCount() int64 { return h.allocs }

// TotalReserved returns bytes reserved across all segments.
func (h *Heap) TotalReserved() int64 { return int64(len(h.segments)) * h.cfg.SegmentBytes }

// TotalUsed returns bytes actually occupied by objects.
func (h *Heap) TotalUsed() int64 {
	var n int64
	for _, s := range h.segments {
		n += s.Used
	}
	return n
}

// Segments returns the segment list (read-only use).
func (h *Heap) Segments() []*Segment { return h.segments }

func (h *Heap) addSegment() (*Segment, error) {
	if len(h.segments) >= 256 {
		return nil, ErrTooManyBuffers
	}
	s := &Segment{
		ID:   uint8(len(h.segments)),
		Base: h.nextBase,
		Size: h.cfg.SegmentBytes,
	}
	// Keep host segments non-adjacent so address arithmetic cannot
	// accidentally cross segments undetected.
	h.nextBase += uint64(h.cfg.SegmentBytes) + (1 << 20)
	h.segments = append(h.segments, s)
	return s, nil
}

// Malloc allocates size bytes of shared memory, returning an augmented
// pointer. Objects never span segments; a fresh segment is created when
// the current one cannot fit the request (§V-A: no data movement, no
// up-front reservation).
func (h *Heap) Malloc(size int64) (Ptr, error) {
	if size <= 0 {
		return Ptr{}, fmt.Errorf("shmem: invalid allocation size %d", size)
	}
	if size > h.cfg.SegmentBytes {
		return Ptr{}, fmt.Errorf("shmem: object of %d bytes exceeds segment size %d", size, h.cfg.SegmentBytes)
	}
	var seg *Segment
	if n := len(h.segments); n > 0 {
		last := h.segments[n-1]
		if last.Size-last.Used >= size {
			seg = last
		}
	}
	if seg == nil {
		var err error
		seg, err = h.addSegment()
		if err != nil {
			return Ptr{}, err
		}
	}
	p := Ptr{Addr: seg.Base + uint64(seg.Used), BID: seg.ID}
	seg.Used += size
	h.allocs++
	if h.live == nil {
		h.live = map[uint64]int64{}
	}
	h.live[p.Addr] = size
	h.deltaOK = false // device copy is stale
	return p, nil
}

// Free releases a shared object. Per §V-A the allocator is bump-style and
// never moves data, so Free is bookkeeping only: the address range is
// retired (double frees and wild pointers are detected) but not reused —
// segments are torn down wholesale when the heap is dropped, which is how
// the paper's offload sessions end. Freeing the null pointer is a no-op,
// matching free(NULL).
func (h *Heap) Free(p Ptr) error {
	if p.IsNil() {
		return nil
	}
	size, ok := h.live[p.Addr]
	if !ok {
		return fmt.Errorf("shmem: free of %#x: not a live shared object (wild pointer or double free)", p.Addr)
	}
	seg := h.findSegment(p.Addr)
	if seg == nil || seg.ID != p.BID {
		return fmt.Errorf("shmem: free of %#x: bid %d does not own the address", p.Addr, p.BID)
	}
	delete(h.live, p.Addr)
	h.frees++
	h.freedBytes += size
	return nil
}

// FreeCount returns the number of successful Free calls.
func (h *Heap) FreeCount() int64 { return h.frees }

// LiveBytes returns bytes occupied by not-yet-freed objects. TotalUsed
// still counts retired ranges: bump allocation never reuses them.
func (h *Heap) LiveBytes() int64 { return h.TotalUsed() - h.freedBytes }

// AddressOf implements Table I's `p = &obj`: it builds a pointer to a host
// address, deriving the bid from the owning segment (the obj.bid field in
// the paper's augmented objects).
func (h *Heap) AddressOf(addr uint64) (Ptr, error) {
	seg := h.findSegment(addr)
	if seg == nil {
		return Ptr{}, fmt.Errorf("shmem: address %#x is not in shared memory", addr)
	}
	return Ptr{Addr: addr, BID: seg.ID}, nil
}

// findSegment locates the segment containing a host address (linear scan;
// this is exactly the cost the bid field avoids on the hot path).
func (h *Heap) findSegment(addr uint64) *Segment {
	for _, s := range h.segments {
		h.searches++
		if addr >= s.Base && addr < s.End() {
			return s
		}
	}
	return nil
}

// CopyToDevice simulates copying every segment to device memory at the
// given base addresses and rebuilds the delta table. devBases must have
// one entry per segment. Returns the total bytes that must move (the
// caller charges DMA time for them).
func (h *Heap) CopyToDevice(devBases []uint64) (int64, error) {
	if len(devBases) != len(h.segments) {
		return 0, fmt.Errorf("shmem: %d device bases for %d segments", len(devBases), len(h.segments))
	}
	h.delta = make([]int64, len(h.segments))
	var bytes int64
	for i, s := range h.segments {
		s.DevBase = devBases[i]
		h.delta[i] = int64(devBases[i]) - int64(s.Base)
		bytes += s.Used
	}
	h.deltaOK = true
	return bytes, nil
}

// DeltaTable returns the translation table (device − host base per bid).
func (h *Heap) DeltaTable() ([]int64, error) {
	if !h.deltaOK {
		return nil, errors.New("shmem: delta table stale; call CopyToDevice first")
	}
	return h.delta, nil
}

// Translate implements the device-side dereference of Table I:
// *(p.addr + delta[p.bid]). Constant time thanks to the bid field.
func (h *Heap) Translate(p Ptr) (uint64, error) {
	if !h.deltaOK {
		return 0, errors.New("shmem: translate before CopyToDevice")
	}
	if int(p.BID) >= len(h.delta) {
		return 0, fmt.Errorf("shmem: pointer bid %d out of range", p.BID)
	}
	h.translate++
	return uint64(int64(p.Addr) + h.delta[p.BID]), nil
}

// TranslateLinear is the baseline §V-B strawman: identify the buffer by
// comparing against every segment's bounds, then apply its delta. Used by
// the ablation benchmark; TranslationSearchSteps exposes the cost.
func (h *Heap) TranslateLinear(addr uint64) (uint64, error) {
	if !h.deltaOK {
		return 0, errors.New("shmem: translate before CopyToDevice")
	}
	seg := h.findSegment(addr)
	if seg == nil {
		return 0, fmt.Errorf("shmem: address %#x is not in shared memory", addr)
	}
	h.translate++
	return uint64(int64(addr) + h.delta[seg.ID]), nil
}

// TranslationCount returns the number of pointer translations performed.
func (h *Heap) TranslationCount() int64 { return h.translate }

// TranslationSearchSteps returns the cumulative segment comparisons made
// by linear lookups (AddressOf and TranslateLinear).
func (h *Heap) TranslationSearchSteps() int64 { return h.searches }

// DeviceAddrStable verifies Table I's `p1 = p2` invariant: pointers copy
// bit-for-bit because they keep storing host addresses on both sides.
func DeviceAddrStable(p1, p2 Ptr) bool { return p1 == p2 }
