package shmem

import (
	"errors"
	"testing"
	"testing/quick"
)

// Property: a random interleaving of Malloc and Free round-trips — every
// live pointer frees exactly once, a second free of the same pointer is
// rejected, and frees never perturb later allocation or the translation of
// pointers that are still live. The ops stream drives a two-phase
// interpretation of each byte: low bits pick the size, the high bit picks
// "free the oldest live object" instead of allocating.
func TestAllocFreeTranslateRoundTripProperty(t *testing.T) {
	f := func(ops []uint8, devSeed uint32) bool {
		h := heap(512)
		var live []Ptr
		var freed []Ptr
		for _, op := range ops {
			if op&0x80 != 0 && len(live) > 0 {
				p := live[0]
				live = live[1:]
				if err := h.Free(p); err != nil {
					return false
				}
				freed = append(freed, p)
				continue
			}
			p, err := h.Malloc(int64(op&0x7f) + 1)
			if err != nil {
				return errors.Is(err, ErrTooManyBuffers)
			}
			live = append(live, p)
		}
		// Double frees and wild frees must be rejected, live frees accepted.
		for _, p := range freed {
			if h.Free(p) == nil {
				return false
			}
		}
		if h.Free(Ptr{Addr: 0xdead_beef, BID: 0}) == nil {
			return false
		}
		if h.FreeCount() != int64(len(freed)) {
			return false
		}
		if h.LiveBytes() > h.TotalUsed() || h.LiveBytes() < 0 {
			return false
		}
		// Translation of live pointers is unaffected by the frees: bid-based
		// and linear translation agree, and both land inside the pointer's
		// segment image on the device.
		if h.SegmentCount() == 0 {
			return true
		}
		bases := make([]uint64, h.SegmentCount())
		for i := range bases {
			bases[i] = 1<<32 + uint64(devSeed) + uint64(i)*uint64(h.cfg.SegmentBytes+128)
		}
		if _, err := h.CopyToDevice(bases); err != nil {
			return false
		}
		for _, p := range live {
			a, err1 := h.Translate(p)
			b, err2 := h.TranslateLinear(p.Addr)
			if err1 != nil || err2 != nil || a != b {
				return false
			}
			seg := h.Segments()[p.BID]
			if a < seg.DevBase || a >= seg.DevBase+uint64(seg.Size) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: segment growth never moves data. Whatever allocation sequence
// runs, the base address and id of every existing segment — and therefore
// the address every outstanding pointer stores — are identical before and
// after any number of later allocations force new segments.
func TestGrowthNeverMovesDataProperty(t *testing.T) {
	f := func(first, later []uint8) bool {
		h := heap(256)
		var ptrs []Ptr
		for _, s := range first {
			p, err := h.Malloc(int64(s%120) + 1)
			if err != nil {
				return errors.Is(err, ErrTooManyBuffers)
			}
			ptrs = append(ptrs, p)
		}
		type snap struct {
			base uint64
			id   uint8
		}
		before := make([]snap, h.SegmentCount())
		for i, s := range h.Segments() {
			before[i] = snap{s.Base, s.ID}
		}
		for _, s := range later {
			if _, err := h.Malloc(int64(s%120) + 1); err != nil {
				return errors.Is(err, ErrTooManyBuffers)
			}
		}
		for i, want := range before {
			s := h.Segments()[i]
			if s.Base != want.base || s.ID != want.id {
				return false
			}
		}
		for _, p := range ptrs {
			seg := h.Segments()[p.BID]
			if p.Addr < seg.Base || p.Addr >= seg.End() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// FuzzBidExhaustion drives the heap to (and past) the 256-segment bid
// limit with fuzzer-chosen segment sizes and allocation streams, checking
// the failure mode is exactly ErrTooManyBuffers and the heap stays
// consistent afterwards: ids dense, reservations accounted, no allocation
// admitted past the limit.
func FuzzBidExhaustion(f *testing.F) {
	f.Add(uint16(64), []byte{255, 255, 255, 255})
	f.Add(uint16(1), []byte{1, 1, 1, 1, 1, 1, 1, 1})
	f.Add(uint16(512), []byte{})
	f.Fuzz(func(t *testing.T, segBytesRaw uint16, sizes []byte) {
		segBytes := int64(segBytesRaw%1024) + 1
		h := heap(segBytes)
		for _, s := range sizes {
			size := int64(s)%segBytes + 1
			_, err := h.Malloc(size)
			if err != nil {
				if !errors.Is(err, ErrTooManyBuffers) {
					t.Fatalf("Malloc(%d) failed with %v, want ErrTooManyBuffers", size, err)
				}
				if h.SegmentCount() != 256 {
					t.Fatalf("bid exhaustion reported at %d segments", h.SegmentCount())
				}
			}
		}
		// Exhausted or not, the heap must be consistent.
		if n := h.SegmentCount(); n > 256 {
			t.Fatalf("%d segments exceed the 1-byte bid space", n)
		}
		for i, s := range h.Segments() {
			if int(s.ID) != i {
				t.Fatalf("segment %d has id %d; ids must stay dense", i, s.ID)
			}
			if s.Used > s.Size {
				t.Fatalf("segment %d overfilled: %d of %d", i, s.Used, s.Size)
			}
		}
		if h.TotalUsed() > h.TotalReserved() {
			t.Fatalf("used %d exceeds reserved %d", h.TotalUsed(), h.TotalReserved())
		}
	})
}
