package vm

import (
	"fmt"
	"math"

	"comp/internal/interp"
)

// runVecLoop executes one fused loop in blocked columnar batches, then
// falls through to the unchanged scalar head. Every bail-out path simply
// returns with nothing consumed: the scalar loop then runs (and faults)
// natively, so the tier never has to reproduce a fault itself. The batch
// is clamped so that every iteration it covers is one the scalar loop
// would have completed without faulting — ragged tails, out-of-range
// indices, and budget exhaustion all land in the scalar code.
func (m *machine) runVecLoop(ch *Chunk, d *VecLoopDesc, f []float64, r []*interp.Array) {
	if !m.colOn {
		return
	}
	if m.budgetOn && m.budget <= 0 {
		return
	}
	var lo float64
	if d.IdxSlot >= 0 {
		lo = f[d.IdxSlot]
	} else {
		lo = m.gval(d.IdxG)
	}
	// Non-integral or out-of-range starts (a negative index would fault
	// scalar-side on the first access) stay scalar.
	if lo != math.Trunc(lo) || lo < 0 || lo > 1<<31 {
		return
	}
	ilo := int64(lo)
	if cap(m.colArrs) < len(d.Sites) {
		m.colArrs = make([]*interp.Array, len(d.Sites))
	}
	arrs := m.colArrs[:len(d.Sites)]
	for i, s := range d.Sites {
		var a *interp.Array
		if s.Local {
			a = r[s.A]
		} else if m.onDevice {
			// Same device resolution as garr, but a missing buffer bails
			// to scalar, which throws the exact fault at the exact site.
			a = m.devArrs[s.A]
			if a == nil {
				a = m.p.DevBuf(m.mod.Globals[s.A].Name)
				if a != nil {
					m.devArrs[s.A] = a
				}
			}
		} else {
			a = m.mod.Globals[s.A].H.Arr()
		}
		if a == nil || a.Fields != 1 {
			return
		}
		arrs[i] = a
	}
	upper := m.evalBlock(ch, d.Upper, f, r)
	var guess float64
	if d.LE {
		guess = math.Floor(upper-lo) + 1
	} else {
		guess = math.Ceil(upper - lo)
	}
	if !(guess > 0) { // also rejects NaN bounds
		return
	}
	k := int64(1) << 31
	if guess < float64(k) {
		k = int64(guess)
	}
	// Clamp to the shortest site so a bounds fault replays scalar-side.
	for _, a := range arrs {
		if n := int64(a.Len()) - ilo; n < k {
			k = n
		}
	}
	if m.budgetOn && k > m.budget {
		k = m.budget
	}
	// Tighten against the exact scalar condition (float compare on the
	// last covered iteration) so the batch never runs an iteration the
	// scalar loop would not; the condition is monotone in i, so checking
	// the last lane covers them all.
	for k > 0 {
		last := float64(ilo + k - 1)
		if (d.LE && last <= upper) || (!d.LE && last < upper) {
			break
		}
		k--
	}
	if k <= 0 {
		return
	}
	m.colExec(ch, d, f, arrs, ilo, k)

	// Finalization: the same accounting K scalar iterations perform.
	// Work: condition + body + post charges per trip.
	m.bucket.Flops += float64(k) * d.PerIter.W
	m.bucket.Bytes += float64(k) * d.PerIter.B
	m.bucket.IrrBytes += float64(k) * d.PerIter.Irr
	// Budget: one spendIteration per trip (never faulting — k is clamped).
	if m.budgetOn {
		m.budget -= k
	}
	// Guard/iteration counters, matching OpGuardF/OpGuardPar/OpIterTick:
	// plain and inline-parallel loops bump the hidden guard slot; a
	// top-level parallel region counts iterations on the region instead.
	if d.Par {
		reg := m.regions[len(m.regions)-1]
		if reg.inline {
			f[d.GuardSlot] += float64(k)
		} else {
			reg.iters += k
		}
	} else {
		f[d.GuardSlot] += float64(k)
	}
	// Device-touch ranges: each global site saw exactly [ilo, ilo+k-1],
	// recorded in site order = the scalar first-touch order.
	if m.tracking {
		for i, s := range d.Sites {
			if !s.Local {
				m.touchDev(arrs[i], ilo)
				m.touchDev(arrs[i], ilo+k-1)
			}
		}
	}
	// Advance the induction variable past the batch; the scalar head
	// takes over from there (final failing condition check included).
	end := float64(ilo + k)
	if d.IdxSlot >= 0 {
		f[d.IdxSlot] = end
	} else {
		m.gstoreScalar(d.IdxG, end)
	}
}

// gstoreScalar writes a scalar global with OpStoreG's device-aware
// resolution (kernel stores create the device cell on demand).
func (m *machine) gstoreScalar(gi int32, v float64) {
	if m.onDevice {
		dc := &m.devCells[gi]
		if dc.cell == nil {
			dc.cell = m.p.EnsureDevScalar(m.mod.Globals[gi].Name)
			dc.known = true
		}
		dc.cell.V = v
		return
	}
	m.mod.Globals[gi].H.Cell().V = v
}

// colExec runs the column program over k iterations in blocks of colBlock.
func (m *machine) colExec(ch *Chunk, d *VecLoopDesc, f []float64, arrs []*interp.Array, ilo, k int64) {
	n := int(d.NRegs)
	for len(m.colPool) < n {
		m.colPool = append(m.colPool, make([]float64, colBlock))
	}
	if cap(m.colRegs) < n {
		m.colRegs = make([][]float64, n)
	}
	regs := m.colRegs[:n]
	// Broadcast loop-invariant scalars once per batch; the body cannot
	// write them (qualification rejects such loops).
	for _, im := range d.Imms {
		col := m.colPool[im.Dst]
		var val float64
		switch im.Kind {
		case vimConst:
			val = ch.Consts[im.A]
		case vimLocal:
			val = f[im.A]
		default:
			val = m.gval(im.A)
		}
		for j := range col {
			col[j] = val
		}
	}
	for done := int64(0); done < k; done += colBlock {
		bn := int(k - done)
		if bn > colBlock {
			bn = colBlock
		}
		base := int(ilo + done)
		// Restore register headers: cLoad rebinds views to fresh windows
		// each block; everything else reuses its pooled column.
		copy(regs, m.colPool[:n])
		if d.IotaReg >= 0 {
			col := regs[d.IotaReg]
			for j := 0; j < bn; j++ {
				col[j] = float64(base + j)
			}
		}
		for _, in := range d.Prog {
			m.colStep(in, regs, arrs, base, bn)
		}
	}
}

// colStep executes one column instruction over bn lanes. Lane semantics
// are copied from the scalar dispatch loop op for op (same conversions,
// same boolToF normalization), so values are bit-identical.
func (m *machine) colStep(in ColIns, regs [][]float64, arrs []*interp.Array, base, bn int) {
	switch in.Kind {
	case cLoad:
		a := arrs[in.Site]
		regs[in.Dst] = a.Data[base : base+bn]
	case cStore:
		a := arrs[in.Site]
		copy(a.Data[base:base+bn], regs[in.X][:bn])
	case cMov:
		copy(regs[in.Dst][:bn], regs[in.X][:bn])
	case cTrunc:
		d, x := regs[in.Dst], regs[in.X]
		for j := 0; j < bn; j++ {
			d[j] = math.Trunc(x[j])
		}
	case cNeg:
		d, x := regs[in.Dst], regs[in.X]
		for j := 0; j < bn; j++ {
			d[j] = -x[j]
		}
	case cNot:
		d, x := regs[in.Dst], regs[in.X]
		for j := 0; j < bn; j++ {
			d[j] = boolToF(x[j] == 0)
		}
	case cAdd:
		d, x, y := regs[in.Dst], regs[in.X], regs[in.Y]
		for j := 0; j < bn; j++ {
			d[j] = x[j] + y[j]
		}
	case cSub:
		d, x, y := regs[in.Dst], regs[in.X], regs[in.Y]
		for j := 0; j < bn; j++ {
			d[j] = x[j] - y[j]
		}
	case cMul:
		d, x, y := regs[in.Dst], regs[in.X], regs[in.Y]
		for j := 0; j < bn; j++ {
			d[j] = x[j] * y[j]
		}
	case cDivF:
		d, x, y := regs[in.Dst], regs[in.X], regs[in.Y]
		for j := 0; j < bn; j++ {
			d[j] = x[j] / y[j]
		}
	case cDivI:
		d, x, y := regs[in.Dst], regs[in.X], regs[in.Y]
		for j := 0; j < bn; j++ {
			d[j] = math.Trunc(x[j] / y[j])
		}
	case cMod:
		d, x, y := regs[in.Dst], regs[in.X], regs[in.Y]
		for j := 0; j < bn; j++ {
			d[j] = float64(int64(x[j]) % int64(y[j]))
		}
	case cShl:
		d, x, y := regs[in.Dst], regs[in.X], regs[in.Y]
		for j := 0; j < bn; j++ {
			d[j] = float64(int64(x[j]) << uint(int64(y[j])))
		}
	case cShr:
		d, x, y := regs[in.Dst], regs[in.X], regs[in.Y]
		for j := 0; j < bn; j++ {
			d[j] = float64(int64(x[j]) >> uint(int64(y[j])))
		}
	case cEq:
		d, x, y := regs[in.Dst], regs[in.X], regs[in.Y]
		for j := 0; j < bn; j++ {
			d[j] = boolToF(x[j] == y[j])
		}
	case cNe:
		d, x, y := regs[in.Dst], regs[in.X], regs[in.Y]
		for j := 0; j < bn; j++ {
			d[j] = boolToF(x[j] != y[j])
		}
	case cLt:
		d, x, y := regs[in.Dst], regs[in.X], regs[in.Y]
		for j := 0; j < bn; j++ {
			d[j] = boolToF(x[j] < y[j])
		}
	case cLe:
		d, x, y := regs[in.Dst], regs[in.X], regs[in.Y]
		for j := 0; j < bn; j++ {
			d[j] = boolToF(x[j] <= y[j])
		}
	case cGt:
		d, x, y := regs[in.Dst], regs[in.X], regs[in.Y]
		for j := 0; j < bn; j++ {
			d[j] = boolToF(x[j] > y[j])
		}
	case cGe:
		d, x, y := regs[in.Dst], regs[in.X], regs[in.Y]
		for j := 0; j < bn; j++ {
			d[j] = boolToF(x[j] >= y[j])
		}
	case cAndE:
		d, x, y := regs[in.Dst], regs[in.X], regs[in.Y]
		for j := 0; j < bn; j++ {
			d[j] = boolToF(x[j] != 0 && y[j] != 0)
		}
	case cOrE:
		d, x, y := regs[in.Dst], regs[in.X], regs[in.Y]
		for j := 0; j < bn; j++ {
			d[j] = boolToF(x[j] != 0 || y[j] != 0)
		}
	case cSel:
		d, x, y, z := regs[in.Dst], regs[in.X], regs[in.Y], regs[in.Z]
		for j := 0; j < bn; j++ {
			if x[j] != 0 {
				d[j] = y[j]
			} else {
				d[j] = z[j]
			}
		}
	case cSqrt:
		d, x := regs[in.Dst], regs[in.X]
		for j := 0; j < bn; j++ {
			d[j] = math.Sqrt(x[j])
		}
	case cExp:
		d, x := regs[in.Dst], regs[in.X]
		for j := 0; j < bn; j++ {
			d[j] = math.Exp(x[j])
		}
	case cLog:
		d, x := regs[in.Dst], regs[in.X]
		for j := 0; j < bn; j++ {
			d[j] = math.Log(x[j])
		}
	case cPow:
		d, x, y := regs[in.Dst], regs[in.X], regs[in.Y]
		for j := 0; j < bn; j++ {
			d[j] = math.Pow(x[j], y[j])
		}
	case cFabs:
		d, x := regs[in.Dst], regs[in.X]
		for j := 0; j < bn; j++ {
			d[j] = math.Abs(x[j])
		}
	case cFloor:
		d, x := regs[in.Dst], regs[in.X]
		for j := 0; j < bn; j++ {
			d[j] = math.Floor(x[j])
		}
	case cCeil:
		d, x := regs[in.Dst], regs[in.X]
		for j := 0; j < bn; j++ {
			d[j] = math.Ceil(x[j])
		}
	case cFmin:
		d, x, y := regs[in.Dst], regs[in.X], regs[in.Y]
		for j := 0; j < bn; j++ {
			d[j] = math.Min(x[j], y[j])
		}
	case cFmax:
		d, x, y := regs[in.Dst], regs[in.X], regs[in.Y]
		for j := 0; j < bn; j++ {
			d[j] = math.Max(x[j], y[j])
		}
	}
}

// ---- verification ----

// validateVecLoops holds every descriptor to the invariants the batch
// engine relies on for memory safety: register/site/imm indices in range,
// immediate registers never written by the program (a corrupted write
// could zero a "verified nonzero" divisor), integer division/modulus
// divisors nonzero constants, and the bound block pure and verifiable as
// a straight-line chunk.
func validateVecLoops(ch *Chunk, nGlobals, nFuncs int) error {
	for i, d := range ch.VecLoops {
		if err := validateVecLoop(ch, d, nGlobals, nFuncs); err != nil {
			return fmt.Errorf("vecloop %d: %w", i, err)
		}
	}
	return nil
}

func validateVecLoop(ch *Chunk, d *VecLoopDesc, nGlobals, nFuncs int) error {
	if (d.IdxSlot >= 0) == (d.IdxG >= 0) {
		return fmt.Errorf("index must bind exactly one of slot/global (slot %d, global %d)", d.IdxSlot, d.IdxG)
	}
	if d.IdxSlot >= 0 && int(d.IdxSlot) >= ch.NumSlots {
		return fmt.Errorf("index slot %d out of range [0,%d)", d.IdxSlot, ch.NumSlots)
	}
	if d.IdxG >= 0 && int(d.IdxG) >= nGlobals {
		return fmt.Errorf("index global %d out of range [0,%d)", d.IdxG, nGlobals)
	}
	if d.GuardSlot < 0 || int(d.GuardSlot) >= ch.NumSlots {
		return fmt.Errorf("guard slot %d out of range [0,%d)", d.GuardSlot, ch.NumSlots)
	}
	if d.NRegs < 0 {
		return fmt.Errorf("negative register count %d", d.NRegs)
	}
	immDst := make(map[int32]bool, len(d.Imms))
	constVal := map[int32]float64{}
	for i, im := range d.Imms {
		if im.Dst < 0 || im.Dst >= d.NRegs {
			return fmt.Errorf("imm %d: dst register %d out of range [0,%d)", i, im.Dst, d.NRegs)
		}
		if immDst[im.Dst] {
			return fmt.Errorf("imm %d: dst register %d written twice", i, im.Dst)
		}
		immDst[im.Dst] = true
		switch im.Kind {
		case vimConst:
			if im.A < 0 || int(im.A) >= len(ch.Consts) {
				return fmt.Errorf("imm %d: const %d out of range [0,%d)", i, im.A, len(ch.Consts))
			}
			constVal[im.Dst] = ch.Consts[im.A]
		case vimLocal:
			if im.A < 0 || int(im.A) >= ch.NumSlots {
				return fmt.Errorf("imm %d: slot %d out of range [0,%d)", i, im.A, ch.NumSlots)
			}
		case vimGlobal:
			if im.A < 0 || int(im.A) >= nGlobals {
				return fmt.Errorf("imm %d: global %d out of range [0,%d)", i, im.A, nGlobals)
			}
		default:
			return fmt.Errorf("imm %d: unknown kind %d", i, im.Kind)
		}
	}
	if d.IotaReg >= 0 {
		if d.IotaReg >= d.NRegs {
			return fmt.Errorf("iota register %d out of range [0,%d)", d.IotaReg, d.NRegs)
		}
		if immDst[d.IotaReg] {
			return fmt.Errorf("iota register %d collides with an immediate", d.IotaReg)
		}
	}
	for i, s := range d.Sites {
		if s.Local {
			if s.A < 0 || int(s.A) >= ch.RefSlots {
				return fmt.Errorf("site %d: ref slot %d out of range [0,%d)", i, s.A, ch.RefSlots)
			}
		} else if s.A < 0 || int(s.A) >= nGlobals {
			return fmt.Errorf("site %d: global %d out of range [0,%d)", i, s.A, nGlobals)
		}
	}
	for i, in := range d.Prog {
		if in.Kind < 0 || in.Kind >= cColCount {
			return fmt.Errorf("prog %d: unknown column op %d", i, in.Kind)
		}
		info := colInfo[in.Kind]
		if info.site && (in.Site < 0 || int(in.Site) >= len(d.Sites)) {
			return fmt.Errorf("prog %d (%s): site %d out of range [0,%d)", i, info.name, in.Site, len(d.Sites))
		}
		if info.hasDst {
			if in.Dst < 0 || in.Dst >= d.NRegs {
				return fmt.Errorf("prog %d (%s): dst register %d out of range [0,%d)", i, info.name, in.Dst, d.NRegs)
			}
			if immDst[in.Dst] {
				return fmt.Errorf("prog %d (%s): writes immediate register %d", i, info.name, in.Dst)
			}
		}
		args := [3]int32{in.X, in.Y, in.Z}
		for a := 0; a < info.args; a++ {
			if args[a] < 0 || args[a] >= d.NRegs {
				return fmt.Errorf("prog %d (%s): operand register %d out of range [0,%d)", i, info.name, args[a], d.NRegs)
			}
		}
		switch in.Kind {
		case cDivI:
			if v, ok := constVal[in.Y]; !ok || v == 0 {
				return fmt.Errorf("prog %d: integer division needs a nonzero constant divisor", i)
			}
		case cMod:
			if v, ok := constVal[in.Y]; !ok || int64(v) == 0 {
				return fmt.Errorf("prog %d: modulus needs a nonzero (as int64) constant divisor", i)
			}
		}
	}
	if len(d.Upper) == 0 {
		return fmt.Errorf("missing bound block")
	}
	for i, in := range d.Upper {
		switch in.Op {
		case OpConst, OpLoad, OpLoadG, OpAdd, OpSub, OpMul, OpNeg:
		default:
			return fmt.Errorf("bound instr %d: op %s not allowed in a bound block", i, in.Op)
		}
	}
	// The bound block executes through the regular dispatch loop against
	// the enclosing frame; verify it like a chunk of its own (the shadow
	// carries no VecLoops, so this cannot recurse).
	shadow := &Chunk{
		Name: ch.Name, NumSlots: ch.NumSlots, RefSlots: ch.RefSlots,
		Code: d.Upper, Consts: ch.Consts, Works: ch.Works, Positions: ch.Positions,
	}
	if _, _, err := analyzeChunk(shadow, nGlobals, nFuncs); err != nil {
		return fmt.Errorf("bound block: %w", err)
	}
	return nil
}
