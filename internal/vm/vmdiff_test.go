package vm_test

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"comp/internal/interp"
	"comp/internal/vm"
	"comp/internal/workloads"
)

// The vmdiff harness: every source that reaches the VM also runs through
// the tree-walker, and the two executions must agree bit-for-bit — printf
// output, every global scalar and array (host and device side), the error
// (or its absence), and the exact stream of Backend operations including
// the Work triples charged at each flush point.

// traceBackend records every backend call as a deterministic string so two
// runs can be compared event by event.
type traceBackend struct {
	events []string
}

func fmtWork(w interp.Work) string {
	return fmt.Sprintf("S(%x,%x,%x)V(%x,%x,%x)X(%x,%x,%x)it=%d",
		math.Float64bits(w.Serial.Flops), math.Float64bits(w.Serial.Bytes), math.Float64bits(w.Serial.IrrBytes),
		math.Float64bits(w.Vec.Flops), math.Float64bits(w.Vec.Bytes), math.Float64bits(w.Vec.IrrBytes),
		math.Float64bits(w.Scalar.Flops), math.Float64bits(w.Scalar.Bytes), math.Float64bits(w.Scalar.IrrBytes),
		w.ParIters)
}

func fmtSpecs(specs []interp.TransferSpec) string {
	var sb strings.Builder
	for _, s := range specs {
		fmt.Fprintf(&sb, "{%s dir=%d dest=%s n=%d b=%d ab=%d off=%d a=%v f=%v sc=%v}",
			s.Item.Name, s.Dir, s.Dest, s.Elems, s.Bytes, s.AllocBytes,
			s.DestOffsetBytes, s.Alloc, s.Free, s.Scalar)
	}
	return sb.String()
}

func (b *traceBackend) HostCompute(w interp.Work) {
	b.events = append(b.events, "host "+fmtWork(w))
}

func (b *traceBackend) Offload(op *interp.OffloadOp) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "offload wait=%q signal=%q persist=%v work=%s specs=%s touched=",
		op.Wait, op.Signal, op.Persist, fmtWork(op.Work), fmtSpecs(op.Specs))
	for _, r := range op.DevTouched {
		fmt.Fprintf(&sb, "[%s %d:%d]", r.Name, r.StartByte, r.EndByte)
	}
	b.events = append(b.events, sb.String())
	return nil
}

func (b *traceBackend) Transfer(op *interp.TransferOp) error {
	b.events = append(b.events, fmt.Sprintf("transfer wait=%q signal=%q specs=%s",
		op.Wait, op.Signal, fmtSpecs(op.Specs)))
	return nil
}

func (b *traceBackend) OffloadWait(tag string) {
	b.events = append(b.events, "wait "+tag)
}

// runResult captures everything observable about one execution.
type runResult struct {
	out     string
	globals string
	trace   []string
	err     error
}

// snapshotGlobals renders every global bit-exactly: scalar cells, host
// array payloads (with layout), and any device-resident copies.
func snapshotGlobals(p *interp.Program) string {
	var sb strings.Builder
	for _, name := range p.GlobalNames() {
		h, ok := p.Global(name)
		if !ok {
			continue
		}
		if !h.IsArray() {
			fmt.Fprintf(&sb, "%s=%x\n", name, math.Float64bits(h.Cell().V))
			continue
		}
		a := h.Arr()
		if a == nil {
			fmt.Fprintf(&sb, "%s=nil\n", name)
		} else {
			fmt.Fprintf(&sb, "%s fields=%d eb=%d [", name, a.Fields, a.ElemBytes)
			for _, v := range a.Data {
				fmt.Fprintf(&sb, "%x,", math.Float64bits(v))
			}
			sb.WriteString("]\n")
		}
		if dev := p.DeviceArray(name); dev != nil {
			fmt.Fprintf(&sb, "%s@dev [", name)
			for _, v := range dev {
				fmt.Fprintf(&sb, "%x,", math.Float64bits(v))
			}
			sb.WriteString("]\n")
		}
	}
	return sb.String()
}

// execProgram resets, seeds, and runs one compiled program against a
// recording backend.
func execProgram(p *interp.Program, setup func(*interp.Program) error, budget int64) *runResult {
	if budget > 0 {
		p.SetLoopBudget(budget)
	}
	res := &runResult{}
	if err := p.Reset(); err != nil {
		res.err = fmt.Errorf("reset: %v", err)
		return res
	}
	if setup != nil {
		if err := setup(p); err != nil {
			res.err = fmt.Errorf("setup: %v", err)
			return res
		}
	}
	tb := &traceBackend{}
	res.err = p.Run(tb)
	res.out = p.Output()
	res.trace = tb.events
	res.globals = snapshotGlobals(p)
	return res
}

// execSource compiles src and runs it on the requested engine
// ("interp", "vm", or "columnar"). The reference run pins the
// tree-walker explicitly so a process-wide vm.Install from another test
// can never contaminate the oracle.
func execSource(t *testing.T, src string, setup func(*interp.Program) error, mode string, budget int64) *runResult {
	t.Helper()
	p, err := interp.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	p.SetEngine(nil)
	switch mode {
	case vm.ExecInterp:
	case vm.ExecVM:
		if err := vm.Attach(p); err != nil {
			t.Fatalf("vm attach: %v", err)
		}
	case vm.ExecColumnar:
		if err := vm.AttachColumnar(p); err != nil {
			t.Fatalf("columnar attach: %v", err)
		}
	default:
		t.Fatalf("unknown exec mode %q", mode)
	}
	return execProgram(p, setup, budget)
}

func compareRuns(t *testing.T, ref, got *runResult) {
	t.Helper()
	compareRunsAs(t, ref, got, "vm")
}

func compareRunsAs(t *testing.T, ref, got *runResult, label string) {
	t.Helper()
	switch {
	case ref.err == nil && got.err != nil:
		t.Errorf("%s errored where the tree-walker succeeded: %v", label, got.err)
	case ref.err != nil && got.err == nil:
		t.Errorf("%s succeeded where the tree-walker errored: %v", label, ref.err)
	case ref.err != nil && got.err != nil && ref.err.Error() != got.err.Error():
		t.Errorf("error mismatch:\n  interp: %v\n  %s:     %v", ref.err, label, got.err)
	}
	if ref.out != got.out {
		t.Errorf("output mismatch:\n  interp: %q\n  %s:     %q", clip(ref.out), label, clip(got.out))
	}
	if ref.globals != got.globals {
		t.Errorf("globals mismatch:\n  interp: %s\n  %s:     %s",
			clip(firstDiffLine(ref.globals, got.globals)), label, clip(firstDiffLine(got.globals, ref.globals)))
	}
	for i := 0; i < len(ref.trace) || i < len(got.trace); i++ {
		var a, b string
		if i < len(ref.trace) {
			a = ref.trace[i]
		}
		if i < len(got.trace) {
			b = got.trace[i]
		}
		if a != b {
			t.Errorf("backend trace diverges at event %d:\n  interp: %s\n  %s:     %s", i, clip(a), label, clip(b))
			return
		}
	}
}

func clip(s string) string {
	if len(s) > 400 {
		return s[:400] + fmt.Sprintf("... (%d bytes)", len(s))
	}
	return s
}

// firstDiffLine returns the first line of a that differs from b's
// corresponding line, to keep array dumps readable in failures.
func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i, l := range al {
		if i >= len(bl) || bl[i] != l {
			return l
		}
	}
	return ""
}

// diffRun executes src on the tree-walker, the scalar VM, and the
// columnar VM, requiring all three bit-identical.
func diffRun(t *testing.T, src string, setup func(*interp.Program) error, budget int64) {
	t.Helper()
	ref := execSource(t, src, setup, vm.ExecInterp, budget)
	compareRunsAs(t, ref, execSource(t, src, setup, vm.ExecVM, budget), "vm")
	compareRunsAs(t, ref, execSource(t, src, setup, vm.ExecColumnar, budget), "columnar")
}

// TestVMDiffWorkloads runs every MiniC workload through both engines: the
// OpenMP-only CPU baseline and the offload (MIC) source. The two shared-
// memory benchmarks execute via internal/shmem, not interp.Program, so the
// MiniC sweep covers the remaining ten.
func TestVMDiffWorkloads(t *testing.T) {
	for _, b := range workloads.All() {
		if b.SharedMem {
			continue
		}
		b := b
		t.Run(b.Name+"/cpu", func(t *testing.T) {
			t.Parallel()
			src, err := b.CPUSource()
			if err != nil {
				t.Fatalf("cpu source: %v", err)
			}
			diffRun(t, src, b.Setup, 0)
		})
		t.Run(b.Name+"/mic", func(t *testing.T) {
			t.Parallel()
			diffRun(t, b.Source, b.Setup, 0)
		})
	}
}

// TestVMDiffTransformGoldens runs every checked-in transform golden — the
// exact sources the golden tests pin for streaming, merging, regularization
// and the combined pipeline — through both engines. The `// golden:` and
// `// applied:` header lines are ordinary line comments to the parser.
func TestVMDiffTransformGoldens(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "transform", "testdata", "golden", "*.c"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no transform goldens found (err=%v)", err)
	}
	for _, path := range files {
		path := path
		base := filepath.Base(path)
		wl := strings.SplitN(base, ".", 2)[0]
		b, err := workloads.Get(wl)
		if err != nil {
			t.Fatalf("golden %s names unknown workload: %v", base, err)
		}
		t.Run(strings.TrimSuffix(base, ".c"), func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			diffRun(t, string(data), b.Setup, 0)
		})
	}
}
